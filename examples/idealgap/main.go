// idealgap separates topology from routing: for the same skewed C-S demand
// it compares (i) the fluid-model ideal throughput on an equipment-matched
// DRing and leaf-spine (what the wires allow under perfect fractional
// routing, §2's model [13,22]) against (ii) the throughput the deployable
// oblivious schemes realize under max-min fairness. If the ideal ratio and
// the realized ratio agree, the flat network's win is a property of the
// wiring, not a routing artifact.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spineless"
)

func main() {
	log.SetFlags(0)

	rng := rand.New(rand.NewSource(5))
	fs, err := spineless.BuildFabrics(spineless.LeafSpineSpec{X: 12, Y: 4}, 0, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v vs %v\n\n", fs.DRing, fs.LeafSpine)

	// One rack of clients fanning out to many servers — the §3.1
	// ToR-bottleneck scenario — instantiated identically on both fabrics.
	c := fs.LeafSpineSpec.X
	s := 4 * c
	const linkGbps = 10.0

	ideal := func(g *spineless.Graph, seed int64) float64 {
		cs, err := spineless.CSModel(g, c, s, rand.New(rand.NewSource(seed)))
		if err != nil {
			log.Fatal(err)
		}
		m := spineless.CSMatrix(g, cs)
		lam, err := spineless.IdealThroughput(g, m, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		// λ is the routable fraction of the matrix per unit link capacity;
		// aggregate = λ × ΣW × linkRate.
		return lam * m.Total() * linkGbps
	}
	idealDR := ideal(fs.DRing, 1)
	idealLS := ideal(fs.LeafSpine, 1)
	fmt.Printf("ideal routing (fluid):   DRing %6.1f Gbps   leaf-spine %6.1f Gbps   ratio %.2f×\n",
		idealDR, idealLS, idealDR/idealLS)

	dr, err := spineless.NewCombo("DRing su2", fs.DRing, "su2")
	if err != nil {
		log.Fatal(err)
	}
	ls, err := spineless.NewCombo("leaf-spine ecmp", fs.LeafSpine, "ecmp")
	if err != nil {
		log.Fatal(err)
	}
	cfg := spineless.DefaultThroughputConfig()
	cfg.FlowsPerHost = 3
	realDR, err := spineless.CSThroughput(dr, c, s, cfg)
	if err != nil {
		log.Fatal(err)
	}
	realLS, err := spineless.CSThroughput(ls, c, s, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("realized (SU2/ECMP):     DRing %6.1f Gbps   leaf-spine %6.1f Gbps   ratio %.2f×\n",
		realDR/1e9, realLS/1e9, realDR/realLS)

	fmt.Printf("\nrouting efficiency (realized/ideal, ±FPTAS slack): DRing ≈%.0f%%, leaf-spine ≈%.0f%%\n",
		100*realDR/1e9/idealDR, 100*realLS/1e9/idealLS)
	fmt.Println("the flat network's advantage survives under ideal routing — it is the")
	fmt.Println("wiring (§3.1's UDF), and the oblivious schemes extract most of it.")
}
