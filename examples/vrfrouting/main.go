// vrfrouting demonstrates the §4 routing prototype end to end: it builds
// the VRF/BGP session graph for Shortest-Union(2) over a DRing, converges
// the path-vector protocol, verifies Theorem 1 and the FIB equivalence
// mechanically, and prints the generated Cisco-style configuration of one
// router — everything a network engineer needs to deploy the scheme on
// stock hardware.
package main

import (
	"fmt"
	"log"

	"spineless"
)

func main() {
	log.SetFlags(0)

	g, err := spineless.DRing(spineless.UniformDRing(6, 2, 24))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fabric: %v\n", g)

	const K = 2
	net, err := spineless.BuildBGP(g, K)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built VRF graph: %d routers × %d VRFs, %d eBGP sessions\n",
		g.N(), K, len(net.Sessions))

	rib, rounds, err := net.Converge()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("path-vector protocol converged in %d synchronous rounds\n", rounds)

	if err := spineless.VerifyTheorem1(net, rib); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Theorem 1 holds: routing distance = max(L, K) for every router pair")

	fib, err := spineless.NewShortestUnion(g, K)
	if err != nil {
		log.Fatal(err)
	}
	if err := spineless.CrossCheckBGPFib(net, rib, fib, true); err != nil {
		log.Fatal(err)
	}
	fmt.Println("converged BGP multipath state == Shortest-Union(2) forwarding state")

	// Adjacent racks get the paper's promised path diversity.
	fmt.Printf("\nadjacent racks 0→2 under the BGP-realized scheme:\n")
	for _, p := range fib.PathSet(0, 2, 0) {
		fmt.Printf("  path %v\n", p)
	}

	fmt.Printf("\n--- generated configuration for router 0 (truncated) ---\n")
	cfg := net.GenerateConfig(0)
	if len(cfg) > 1600 {
		cfg = cfg[:1600] + "\n... (truncated; see cmd/bgpgen -out to write all configs)\n"
	}
	fmt.Print(cfg)
}
