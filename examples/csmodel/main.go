// csmodel sweeps the C-S traffic model (§5.2/§6.2) over an
// equipment-matched DRing and leaf-spine pair and prints the throughput
// ratio heatmap — a miniature of the paper's Figure 5, showing the flat
// network masking ToR oversubscription for skewed patterns (|C| ≪ |S|).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spineless"
)

func main() {
	log.SetFlags(0)

	rng := rand.New(rand.NewSource(7))
	fs, err := spineless.BuildFabrics(spineless.LeafSpineSpec{X: 12, Y: 4}, 0, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DRing %v\nvs leaf-spine %v\n\n", fs.DRing, fs.LeafSpine)

	dring, err := spineless.NewCombo("DRing su2", fs.DRing, "su2")
	if err != nil {
		log.Fatal(err)
	}
	leafspine, err := spineless.NewCombo("leaf-spine ecmp", fs.LeafSpine, "ecmp")
	if err != nil {
		log.Fatal(err)
	}

	cfg := spineless.DefaultThroughputConfig()
	cfg.FlowsPerHost = 3
	ticks := []int{4, 12, 24, 48, 80}
	h, err := spineless.CSRatioHeatmap(dring, leafspine, ticks, ticks, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(h.String())

	// The §3.1 prediction: for ToR-bottlenecked (skewed) cells the ratio
	// approaches UDF = 2. C must fill at least one rack (fewer clients are
	// NIC-bottlenecked, where both fabrics tie); pick one rack's worth.
	c, s := ticks[1], ticks[len(ticks)-1]
	a, err := spineless.CSThroughput(dring, c, s, cfg)
	if err != nil {
		log.Fatal(err)
	}
	b, err := spineless.CSThroughput(leafspine, c, s, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("most skewed cell C=%d, S=%d: DRing %.1f Gbps vs leaf-spine %.1f Gbps (%.2f×)\n",
		c, s, a/1e9, b/1e9, a/b)
}
