// Quickstart: build a DRing, inspect its flatness, route it with
// Shortest-Union(2), and measure flow completion times for a small uniform
// workload in the packet-level simulator — the whole pipeline in ~60 lines.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"spineless"
)

func main() {
	log.SetFlags(0)

	// A DRing with 8 supernodes of 2 ToRs each on 24-port switches:
	// every ToR gets 4×2 = 8 network links and 16 servers.
	g, err := spineless.DRing(spineless.UniformDRing(8, 2, 24))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fabric: %v\n", g)
	fmt.Printf("every switch is a ToR: %d racks, %d servers each\n",
		len(g.Racks()), g.ServerCount(0))

	// Shortest-Union(2): ECMP plus all ≤2-hop paths (§4).
	su2, err := spineless.NewShortestUnion(g, 2)
	if err != nil {
		log.Fatal(err)
	}
	ecmpPaths := spineless.NewECMP(g).PathSet(0, 2, 0)
	su2Paths := su2.PathSet(0, 2, 0)
	fmt.Printf("adjacent racks 0→2: ECMP sees %d path(s), Shortest-Union(2) sees %d\n",
		len(ecmpPaths), len(su2Paths))

	// A uniform workload: 400 Pareto-sized flows arriving over 5 ms.
	rng := rand.New(rand.NewSource(42))
	flows, err := spineless.GenerateFlows(g, spineless.UniformTM(len(g.Racks())),
		spineless.GenFlowConfig(400, 5*time.Millisecond), rng)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate with TCP over 10 Gbps links.
	sim, err := spineless.NewSimulator(g, su2, spineless.DefaultNetConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(flows)
	if err != nil {
		log.Fatal(err)
	}
	st := spineless.SummarizeFCT(res.FCTNS)
	fmt.Printf("simulated %d flows: median FCT %.3f ms, p99 %.3f ms (%d drops, %d retransmits)\n",
		st.Count, st.MedianMS, st.P99MS, res.Stats.Drops, res.Stats.Retransmits)
}
