// dynamicnets explores the paper's §7 "Dynamic Networks based on flat
// topologies" question: when a reconfigurable fabric imposes transient
// topologies, is it better to reconfigure into flat DRings than into
// expander-like matchings at small scale? It compares slot-averaged
// max-min throughput and mean path length (the short-flow latency proxy)
// for a rotating DRing, rotor-style rotating matchings, and their static
// counterparts, all on identical ToR/server hardware.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spineless"
)

func main() {
	log.SetFlags(0)

	// 16 ToRs, 24-port switches, 8 network links + 16 servers per ToR.
	const (
		tors    = 16
		ports   = 24
		servers = 16
		degree  = 8
	)
	spec := spineless.UniformDRing(8, 2, ports) // 8 supernodes × 2 ToRs → degree 8

	rotDR, err := spineless.NewRotatingDRing(spec, 0)
	if err != nil {
		log.Fatal(err)
	}
	rotor, err := spineless.NewRotorMatchings(tors, degree, servers, ports, rotDR.Slots())
	if err != nil {
		log.Fatal(err)
	}
	staticDR, err := spineless.DRing(spec)
	if err != nil {
		log.Fatal(err)
	}

	// A skewed workload: two racks exchange heavy traffic plus background.
	rng := rand.New(rand.NewSource(8))
	var pairs [][2]int
	lo0, hi0 := staticDR.ServersOf(0)
	lo1, _ := staticDR.ServersOf(5)
	for s := lo0; s < hi0; s++ {
		pairs = append(pairs, [2]int{s, lo1 + (s - lo0)})
	}
	for i := 0; i < 48; i++ {
		a, b := rng.Intn(staticDR.Servers()), rng.Intn(staticDR.Servers())
		if staticDR.RackOf(a) != staticDR.RackOf(b) {
			pairs = append(pairs, [2]int{a, b})
		}
	}

	cfg := spineless.DefaultFlowConfig()
	for _, sched := range []spineless.DynamicSchedule{
		spineless.StaticSchedule(staticDR),
		rotDR,
		rotor,
	} {
		avg, _, err := spineless.DynamicAvgThroughput(sched, pairs, "su2", cfg)
		if err != nil {
			log.Fatal(err)
		}
		pl, err := spineless.DynamicAvgPathLength(sched)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s slots=%d  avg throughput %7.1f Gbps  avg path length %.3f\n",
			sched.Name(), sched.Slots(), avg/1e9, pl)
	}
	fmt.Println("\n§7 asks whether reconfiguring into flat networks (rotating DRing) can beat")
	fmt.Println("reconfiguring into expanders (rotor matchings) at small scale: here they are")
	fmt.Println("statistically equal — no expander premium at this size, which is exactly the")
	fmt.Println("paper's small-scale thesis carried over to the dynamic setting.")
}
