// fctstudy reproduces the paper's headline result in miniature (§6.1):
// under a skewed real-world-like workload, flat networks built from the
// same equipment as a leaf-spine deliver dramatically lower tail flow
// completion times. It runs the FB-skewed workload across all five
// Figure 4 combos on a scaled-down fabric trio and prints the comparison.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spineless"
)

func main() {
	log.SetFlags(0)

	rng := rand.New(rand.NewSource(11))
	fs, err := spineless.ScaledFabrics(4, rng) // leaf-spine(12,4): 192 servers
	if err != nil {
		log.Fatal(err)
	}
	combos, err := spineless.PaperCombos(fs)
	if err != nil {
		log.Fatal(err)
	}

	cfg := spineless.DefaultFCTConfig()
	cfg.WindowSec = 0.01
	cfg.Seed = 11

	fmt.Println("FB-skewed workload, 30% spine load, Pareto(100KB, 1.05) flows")
	fmt.Printf("%-28s %12s %12s %10s\n", "combo", "median (ms)", "p99 (ms)", "flows")
	var lsP99, bestFlat float64
	for _, c := range combos {
		res, err := spineless.RunFCT(fs, c, spineless.TMFBSkewed, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %12.3f %12.3f %10d\n",
			c.Label, res.Stats.MedianMS, res.Stats.P99MS, res.Flows)
		if c.Label == "leaf-spine (ecmp)" {
			lsP99 = res.Stats.P99MS
		} else if bestFlat <= 0 || res.Stats.P99MS < bestFlat {
			bestFlat = res.Stats.P99MS
		}
	}
	fmt.Printf("\ntail gain of the best flat combo over leaf-spine: %.2f×\n", lsP99/bestFlat)
	fmt.Println("(the paper reports up to 7× at full scale for this workload class)")
}
