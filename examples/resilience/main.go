// resilience explores the paper's §7 open questions about failures: how
// quickly the BGP/VRF control plane reconverges after links fail in a flat
// network, and what failures cost in path length, diversity and tail FCT.
package main

import (
	"fmt"
	"log"

	"spineless"
)

func main() {
	log.SetFlags(0)

	g, err := spineless.DRing(spineless.UniformDRing(8, 2, 24))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fabric: %v\n", g)
	fmt.Println("failing random links, reconverging BGP from the pre-failure RIB:")
	fmt.Println()

	cfg := spineless.DefaultFailureStudyConfig()
	cfg.Fractions = []float64{0, 0.02, 0.05, 0.10, 0.20}
	cfg.Flows = 250
	rows, err := spineless.FailureStudy(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("fail %4.0f%%: %2d links down, dilation %.3f (max %.2f), "+
			"SU(2) paths %.1f→%.1f (min %d), reconverged in %d rounds, p99 FCT %.3f ms\n",
			r.Fraction*100, r.FailedLinks, r.Paths.MeanDilation, r.Paths.MaxDilation,
			r.Diversity.MeanPathsBefore, r.Diversity.MeanPathsAfter, r.Diversity.MinPathsAfter,
			r.ReconvRounds, r.P99FCTms)
	}
	fmt.Println("\nflat networks degrade gracefully: every rack pair keeps multiple")
	fmt.Println("disjoint paths and the oblivious scheme needs only a local reconvergence.")
}
