// Benchmarks regenerating every table and figure of "Spineless Data
// Centers" at laptop scale, plus ablations of the design choices called out
// in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// BenchmarkFig4_* covers the seven Figure 4 workloads (median + p99 FCT
// across the five fabric × routing combos); BenchmarkFig5_* the four C-S
// heatmap panels; BenchmarkFig6 the scale sweep; BenchmarkUDF the §3.1
// analysis; BenchmarkTheorem1 the §4 verification. Each iteration runs the
// full (scaled-down) experiment; per-op time is the cost of regenerating
// that artifact. cmd/fig4, cmd/fig5 and cmd/fig6 run the same code at
// larger scale with reporting.
package spineless_test

import (
	"math/rand"
	"testing"
	"time"

	"spineless"
)

func benchFabrics(b *testing.B, seed int64) *spineless.FabricSet {
	b.Helper()
	fs, err := spineless.ScaledFabrics(8, rand.New(rand.NewSource(seed)))
	if err != nil {
		b.Fatal(err)
	}
	return fs
}

func benchFCTConfig() spineless.FCTConfig {
	cfg := spineless.DefaultFCTConfig()
	cfg.WindowSec = 0.004
	cfg.MaxFlows = 400
	cfg.Sizes = spineless.ParetoSizes(40e3, 1.05, 400e3)
	return cfg
}

// benchFig4 runs one Figure 4 workload across all five combos.
func benchFig4(b *testing.B, kind spineless.TMKind) {
	fs := benchFabrics(b, 1)
	combos, err := spineless.PaperCombos(fs)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchFCTConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range combos {
			res, err := spineless.RunFCT(fs, c, kind, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.Count == 0 {
				b.Fatal("no flows measured")
			}
		}
	}
}

func BenchmarkFig4_A2A(b *testing.B)         { benchFig4(b, spineless.TMA2A) }
func BenchmarkFig4_R2R(b *testing.B)         { benchFig4(b, spineless.TMR2R) }
func BenchmarkFig4_CSSkewed(b *testing.B)    { benchFig4(b, spineless.TMCSSkewed) }
func BenchmarkFig4_FBSkewed(b *testing.B)    { benchFig4(b, spineless.TMFBSkewed) }
func BenchmarkFig4_FBUniform(b *testing.B)   { benchFig4(b, spineless.TMFBUniform) }
func BenchmarkFig4_FBSkewedRP(b *testing.B)  { benchFig4(b, spineless.TMFBSkewedRP) }
func BenchmarkFig4_FBUniformRP(b *testing.B) { benchFig4(b, spineless.TMFBUniformRP) }

// benchFig5 fills one heatmap panel. workers < 0 keeps the config default
// (one worker per CPU).
func benchFig5(b *testing.B, scheme string, large bool, workers int) {
	fs := benchFabrics(b, 1)
	dr, err := spineless.NewCombo("DRing", fs.DRing, scheme)
	if err != nil {
		b.Fatal(err)
	}
	ls, err := spineless.NewCombo("leaf-spine", fs.LeafSpine, "ecmp")
	if err != nil {
		b.Fatal(err)
	}
	hosts := fs.DRing.Servers()
	ticks := []int{1, 2, hosts / 8, hosts / 5}
	if large {
		ticks = []int{hosts / 8, hosts / 4, hosts / 3, hosts / 2}
	}
	cfg := spineless.DefaultThroughputConfig()
	if workers >= 0 {
		cfg.Workers = workers
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := spineless.CSRatioHeatmap(dr, ls, ticks, ticks, cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = h
	}
}

func BenchmarkFig5_SmallECMP(b *testing.B) { benchFig5(b, "ecmp", false, -1) }
func BenchmarkFig5_SmallSU2(b *testing.B)  { benchFig5(b, "su2", false, -1) }
func BenchmarkFig5_LargeECMP(b *testing.B) { benchFig5(b, "ecmp", true, -1) }
func BenchmarkFig5_LargeSU2(b *testing.B)  { benchFig5(b, "su2", true, -1) }

// Serial vs parallel variants of the same panel: the outputs are
// bit-identical (see the equivalence tests in internal/core), so the pair
// isolates the wall-clock effect of the worker pool. On a single-core host
// the two are expected to tie.
func BenchmarkFig5_SmallSU2_Workers1(b *testing.B)   { benchFig5(b, "su2", false, 1) }
func BenchmarkFig5_SmallSU2_WorkersMax(b *testing.B) { benchFig5(b, "su2", false, 0) }

// BenchmarkFig6 runs a two-point scale sweep (DRing vs matched RRG).
func BenchmarkFig6(b *testing.B) {
	cfg := spineless.DefaultScaleConfig()
	cfg.TorsPerSupernode = 3
	cfg.Ports = 20
	cfg.FCT = benchFCTConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := spineless.ScaleSweep([]int{5, 8}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 2 {
			b.Fatal("missing points")
		}
	}
}

// BenchmarkUDF regenerates the §3.1 analysis (Table E4 in DESIGN.md).
func BenchmarkUDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, err := spineless.LeafSpine(spineless.LeafSpineSpec{X: 12, Y: 4})
		if err != nil {
			b.Fatal(err)
		}
		flat, err := spineless.Flatten(base, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		udf, err := spineless.UDF(base, flat)
		if err != nil {
			b.Fatal(err)
		}
		if udf < 1.8 || udf > 2.2 {
			b.Fatalf("UDF = %v", udf)
		}
	}
}

// BenchmarkTheorem1 converges the §4 BGP/VRF protocol and verifies both the
// theorem and the FIB equivalence (experiment E5).
func BenchmarkTheorem1(b *testing.B) {
	g, err := spineless.DRing(spineless.UniformDRing(6, 2, 24))
	if err != nil {
		b.Fatal(err)
	}
	fib, err := spineless.NewShortestUnion(g, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := spineless.BuildBGP(g, 2)
		if err != nil {
			b.Fatal(err)
		}
		rib, _, err := net.Converge()
		if err != nil {
			b.Fatal(err)
		}
		if err := spineless.VerifyTheorem1(net, rib); err != nil {
			b.Fatal(err)
		}
		if err := spineless.CrossCheckBGPFib(net, rib, fib, true); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §3) ---

// BenchmarkAblation_ShortestUnionK sweeps K: more VRF layers admit longer
// paths (more diversity, longer detours). Reported per-op time includes FIB
// construction and the FCT run on the rack-to-rack workload where K matters
// most.
func benchAblationK(b *testing.B, scheme string) {
	fs := benchFabrics(b, 1)
	cfg := benchFCTConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		combo, err := spineless.NewCombo(scheme, fs.DRing, scheme)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := spineless.RunFCT(fs, combo, spineless.TMR2R, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_K_ECMP(b *testing.B) { benchAblationK(b, "ecmp") }
func BenchmarkAblation_K_SU2(b *testing.B)  { benchAblationK(b, "su2") }
func BenchmarkAblation_K_SU3(b *testing.B)  { benchAblationK(b, "su3") }
func BenchmarkAblation_K_SU4(b *testing.B)  { benchAblationK(b, "su4") }

// BenchmarkAblation_PathPinning compares per-hop hashing (SU2) against
// per-flow pinning over k shortest paths (the Jellyfish baseline).
func BenchmarkAblation_PathPinning_KSP4(b *testing.B) { benchAblationK(b, "ksp4") }
func BenchmarkAblation_PathPinning_VLB(b *testing.B)  { benchAblationK(b, "vlb") }

// BenchmarkAblation_WeightedHashing: uniform vs path-count-weighted (WCMP)
// per-hop selection on the uneven DRing.
func BenchmarkAblation_Weighted_SU2(b *testing.B)  { benchAblationK(b, "wsu2") }
func BenchmarkAblation_Weighted_ECMP(b *testing.B) { benchAblationK(b, "wcmp") }

// BenchmarkAblation_Flowlets: flowlet switching [25] gives plain ECMP
// dynamic path diversity (the Kassing et al. mechanism §2 says is not
// commonly available) — compare against static per-flow hashing on the
// rack-to-rack workload.
func benchFlowlets(b *testing.B, flowlets bool) {
	fs := benchFabrics(b, 1)
	combo, err := spineless.NewCombo("dr", fs.DRing, "ecmp")
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchFCTConfig()
	if flowlets {
		cfg.Net = cfg.Net.WithFlowlets(0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spineless.RunFCT(fs, combo, spineless.TMR2R, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_Flowlets_Off(b *testing.B) { benchFlowlets(b, false) }
func BenchmarkAblation_Flowlets_On(b *testing.B)  { benchFlowlets(b, true) }

// BenchmarkAblation_QueueDepth measures tail sensitivity to drop-tail
// queue capacity.
func benchQueue(b *testing.B, pkts int) {
	fs := benchFabrics(b, 1)
	combo, err := spineless.NewCombo("dr", fs.DRing, "su2")
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchFCTConfig()
	cfg.Net.QueueBytes = int64(pkts) * 1500
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spineless.RunFCT(fs, combo, spineless.TMA2A, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_Queue25pkts(b *testing.B)  { benchQueue(b, 25) }
func BenchmarkAblation_Queue100pkts(b *testing.B) { benchQueue(b, 100) }
func BenchmarkAblation_Queue400pkts(b *testing.B) { benchQueue(b, 400) }

// BenchmarkAblation_SupernodeWidth varies n (ToRs per supernode) at fixed
// total ToR count: wider supernodes mean more disjoint paths (§4 promises
// n+1) but fewer server ports.
func benchWidth(b *testing.B, m, n int) {
	g, err := spineless.DRing(spineless.UniformDRing(m, n, 40))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fib, err := spineless.NewShortestUnion(g, 2)
		if err != nil {
			b.Fatal(err)
		}
		_ = fib.PathSet(0, n, 0)
	}
}

func BenchmarkAblation_Width_m12n2(b *testing.B) { benchWidth(b, 12, 2) }
func BenchmarkAblation_Width_m8n3(b *testing.B)  { benchWidth(b, 8, 3) }
func BenchmarkAblation_Width_m6n4(b *testing.B)  { benchWidth(b, 6, 4) }

// BenchmarkAblation_Transport compares plain TCP against DCTCP-style ECN on
// the skewed workload — a transport the paper's §2 classifies as
// non-standard for these DCs, included to quantify what deployability costs.
func benchTransport(b *testing.B, dctcp bool) {
	fs := benchFabrics(b, 1)
	combo, err := spineless.NewCombo("dr", fs.DRing, "su2")
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchFCTConfig()
	if dctcp {
		cfg.Net = cfg.Net.WithDCTCP()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spineless.RunFCT(fs, combo, spineless.TMFBSkewed, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_Transport_TCP(b *testing.B)   { benchTransport(b, false) }
func BenchmarkAblation_Transport_DCTCP(b *testing.B) { benchTransport(b, true) }

// --- Substrate microbenchmarks ---

// BenchmarkNetsimEvents measures raw simulator throughput (events/op noted
// via ns/op on a fixed workload).
func BenchmarkNetsimEvents(b *testing.B) {
	g, err := spineless.DRing(spineless.UniformDRing(6, 2, 24))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	gen := spineless.GenFlowConfig(200, 4*time.Millisecond)
	gen.Sizes = spineless.ParetoSizes(30e3, 1.05, 300e3)
	flows, err := spineless.GenerateFlows(g, spineless.UniformTM(len(g.Racks())), gen, rng)
	if err != nil {
		b.Fatal(err)
	}
	scheme := spineless.NewECMP(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := spineless.NewSimulator(g, scheme, spineless.DefaultNetConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(flows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetsimEventsTelemetry is BenchmarkNetsimEvents with a telemetry
// sink attached: the delta against the plain benchmark is the per-event
// cost of the digital twin (the six hooks index preallocated ring series
// under an uncontended mutex — the alloc delta per iteration is exactly the
// fixed attach-time sink construction, nothing per event).
func BenchmarkNetsimEventsTelemetry(b *testing.B) {
	g, err := spineless.DRing(spineless.UniformDRing(6, 2, 24))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	gen := spineless.GenFlowConfig(200, 4*time.Millisecond)
	gen.Sizes = spineless.ParetoSizes(30e3, 1.05, 300e3)
	flows, err := spineless.GenerateFlows(g, spineless.UniformTM(len(g.Racks())), gen, rng)
	if err != nil {
		b.Fatal(err)
	}
	scheme := spineless.NewECMP(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := spineless.NewSimulator(g, scheme, spineless.DefaultNetConfig())
		if err != nil {
			b.Fatal(err)
		}
		rec := spineless.NewTelemetryRecorder(spineless.TelemetryConfig{})
		if _, err := rec.Attach(sim, len(flows)); err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(flows); err != nil {
			b.Fatal(err)
		}
		if rec.Snapshot().Totals.TxBytes == 0 {
			b.Fatal("telemetry sink observed no traffic")
		}
	}
}

// BenchmarkFibConstruction measures Shortest-Union(2) FIB build cost at
// paper scale (80 switches, ~1k links).
func BenchmarkFibConstruction(b *testing.B) {
	fs, err := spineless.PaperFabrics(rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spineless.NewShortestUnion(fs.DRing, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPaperFabrics measures full-scale §5.1 trio construction.
func BenchmarkPaperFabrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := spineless.PaperFabrics(rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroburst runs the §3 microburst drain on the flat rewiring.
func BenchmarkMicroburst(b *testing.B) {
	fs := benchFabrics(b, 1)
	combo, err := spineless.NewCombo("rrg", fs.RRG, "su2")
	if err != nil {
		b.Fatal(err)
	}
	spec := spineless.DefaultBurst()
	spec.BurstBytes = 8 << 20
	spec.Fanout = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := spineless.RunBurst(combo, spec, spineless.DefaultNetConfig(), 1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Incomplete != 0 {
			b.Fatal("burst incomplete")
		}
	}
}

// BenchmarkIdealThroughput measures the fluid FPTAS on a paper-sized DRing
// with a uniform matrix (the §2 ideal-routing reference computation).
func BenchmarkIdealThroughput(b *testing.B) {
	g, err := spineless.DRing(spineless.UniformDRing(8, 2, 24))
	if err != nil {
		b.Fatal(err)
	}
	m := spineless.UniformTM(len(g.Racks()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spineless.IdealThroughput(g, m, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFailureStudy runs the §7 failure sweep (structure + BGP
// reconvergence + FCT replay) on a small DRing.
func BenchmarkFailureStudy(b *testing.B) {
	g, err := spineless.DRing(spineless.UniformDRing(6, 2, 20))
	if err != nil {
		b.Fatal(err)
	}
	cfg := spineless.DefaultFailureStudyConfig()
	cfg.Fractions = []float64{0.05}
	cfg.Flows = 80
	cfg.Samples = 24
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spineless.FailureStudy(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicSchedules compares slot-averaged throughput evaluation of
// the two §7 dynamic contenders.
func benchDynamic(b *testing.B, rotor bool) {
	spec := spineless.UniformDRing(8, 2, 24)
	var sched spineless.DynamicSchedule
	var err error
	if rotor {
		sched, err = spineless.NewRotorMatchings(16, 8, 16, 24, 3)
	} else {
		sched, err = spineless.NewRotatingDRing(spec, 3)
	}
	if err != nil {
		b.Fatal(err)
	}
	g := sched.Slot(0)
	rng := rand.New(rand.NewSource(2))
	var pairs [][2]int
	for len(pairs) < 48 {
		x, y := rng.Intn(g.Servers()), rng.Intn(g.Servers())
		if g.RackOf(x) != g.RackOf(y) {
			pairs = append(pairs, [2]int{x, y})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := spineless.DynamicAvgThroughput(sched, pairs, "su2", spineless.DefaultFlowConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynamic_RotatingDRing(b *testing.B)  { benchDynamic(b, false) }
func BenchmarkDynamic_RotorMatchings(b *testing.B) { benchDynamic(b, true) }

// BenchmarkBGPConvergePaperScale converges the full §5.1 DRing control
// plane (80 routers × 2 VRFs, ~8.5k sessions).
func BenchmarkBGPConvergePaperScale(b *testing.B) {
	fs, err := spineless.PaperFabrics(rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	net, err := spineless.BuildBGP(fs.DRing, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := net.Converge(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBGPReconvergeDelta reconverges the same paper-scale control
// plane after a single link failure, seeding from the pre-failure RIB and
// dirtying only the failure-incident routers. The ratio against
// BenchmarkBGPConvergePaperScale is the incremental-convergence win.
func BenchmarkBGPReconvergeDelta(b *testing.B) {
	fs, err := spineless.PaperFabrics(rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	net, err := spineless.BuildBGP(fs.DRing, 2)
	if err != nil {
		b.Fatal(err)
	}
	baseRib, _, err := net.Converge()
	if err != nil {
		b.Fatal(err)
	}
	failed := fs.DRing.Clone()
	nbr := fs.DRing.Neighbors(0)[0]
	for failed.RemoveLink(0, nbr) {
		// drop every parallel copy of the trunk, as a real failure would
	}
	failedNet, err := spineless.BuildBGP(failed, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := failedNet.ConvergeDirty(baseRib, []int{0, nbr}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Sharded packet engine ---

// benchNetsimSharded measures conservative-window engine throughput on the
// full-scale §5.1 DRing under a uniform Pareto workload. Every shard count
// runs the identical workload (results are byte-identical), so the ns/op
// ratios are the parallel speedup; on a single-vCPU host the workers
// multiplex one core and the ratio instead measures window-barrier
// overhead (see EXPERIMENTS.md).
func benchNetsimSharded(b *testing.B, shards int) {
	fs, err := spineless.PaperFabrics(rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	g := fs.DRing
	rng := rand.New(rand.NewSource(3))
	gen := spineless.GenFlowConfig(1200, 2*time.Millisecond)
	gen.Sizes = spineless.ParetoSizes(30e3, 1.05, 300e3)
	flows, err := spineless.GenerateFlows(g, spineless.UniformTM(len(g.Racks())), gen, rng)
	if err != nil {
		b.Fatal(err)
	}
	scheme, err := spineless.NewShortestUnion(g, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss, err := spineless.NewShardedSimulator(g, scheme, spineless.DefaultNetConfig(), shards)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ss.Run(flows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetsimEventsSharded1(b *testing.B) { benchNetsimSharded(b, 1) }
func BenchmarkNetsimEventsSharded2(b *testing.B) { benchNetsimSharded(b, 2) }
func BenchmarkNetsimEventsSharded4(b *testing.B) { benchNetsimSharded(b, 4) }
func BenchmarkNetsimEventsSharded8(b *testing.B) { benchNetsimSharded(b, 8) }

// benchBakeoff runs the full five-fabric bake-off matrix (7 cells: every
// fabric under SU(2) plus the two native schemes) at paper scale with the
// smoke-sized workload — the cost of regenerating the cmd/bakeoff
// scorecard. The shard count parameterizes the netsim engine inside every
// cell; results are byte-identical across them.
func benchBakeoff(b *testing.B, shards int) {
	cfg := spineless.BakeoffScaled(1)
	cfg.Util = 0.2
	cfg.WindowSec = 0.002
	cfg.MaxFlows = 200
	cfg.MaxPairs = 64
	cfg.LiveFlows = 120
	cfg.Shards = shards
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc, err := spineless.RunBakeoff(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(sc.Cells) != 7 {
			b.Fatalf("want 7 cells, got %d", len(sc.Cells))
		}
	}
}

func BenchmarkBakeoffShards1(b *testing.B)  { benchBakeoff(b, 1) }
func BenchmarkBakeoffShards16(b *testing.B) { benchBakeoff(b, 16) }
