// Command bgpgen generates the §4 routing prototype: Cisco-IOS-style
// configurations implementing Shortest-Union(K) with eBGP, ECMP and VRFs,
// plus a protocol-level verification that the converged routes satisfy
// Theorem 1 and realize exactly the Shortest-Union(K) path sets.
//
// This replaces the paper's GNS3/Cisco-7200 deployment with a simulated
// control plane; the emitted configs are what the paper's "simple script"
// would push to real switches.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"spineless/internal/bgp"
	"spineless/internal/core"
	"spineless/internal/routing"
	"spineless/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bgpgen: ")
	var (
		topoKind = flag.String("topo", "dring", "fabric: dring, leafspine, or rrg")
		m        = flag.Int("supernodes", 6, "dring: supernodes")
		n        = flag.Int("tors", 2, "dring: ToRs per supernode")
		ports    = flag.Int("ports", 24, "switch radix")
		x        = flag.Int("x", 8, "leafspine/rrg: servers per leaf")
		y        = flag.Int("y", 4, "leafspine/rrg: spines")
		k        = flag.Int("k", 2, "Shortest-Union K (number of VRFs)")
		verify   = flag.Bool("verify", true, "converge the protocol and verify Theorem 1 + FIB equivalence")
		outDir   = flag.String("out", "", "write one config file per router into this directory")
		router   = flag.Int("router", -1, "print the config of one router to stdout")
		seed     = flag.Int64("seed", 1, "random seed (rrg wiring)")
	)
	flag.Parse()

	g, err := buildTopo(*topoKind, *m, *n, *ports, *x, *y, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fabric: %v\n", g)

	net, err := bgp.Build(g, *k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VRFs per router: %d, eBGP sessions: %d\n", *k, len(net.Sessions))

	if *verify {
		rib, rounds, err := net.Converge()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("protocol converged in %d rounds\n", rounds)
		if err := bgp.VerifyTheorem1(net, rib); err != nil {
			log.Fatal(err)
		}
		fmt.Println("theorem 1 verified: VRF-graph distance = max(L, K) for all router pairs")
		fib, err := routing.NewShortestUnion(g, *k)
		if err != nil {
			log.Fatal(err)
		}
		strict := *k == 2
		if err := bgp.CrossCheckFib(net, rib, fib, strict); err != nil {
			log.Fatal(err)
		}
		if strict {
			fmt.Println("FIB check: BGP multipath sets exactly match Shortest-Union(2) forwarding state")
		} else {
			fmt.Printf("FIB check: BGP multipath sets are admissible Shortest-Union(%d) next hops\n", *k)
		}
	}

	if *router >= 0 {
		fmt.Println(net.GenerateConfig(*router))
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for name, cfg := range net.GenerateAll() {
			path := filepath.Join(*outDir, name+".cfg")
			if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("wrote %d router configs to %s\n", g.N(), *outDir)
	}
}

func buildTopo(kind string, m, n, ports, x, y int, seed int64) (*topology.Graph, error) {
	switch kind {
	case "dring":
		return topology.DRing(topology.Uniform(m, n, ports))
	case "leafspine":
		return topology.LeafSpine(topology.LeafSpineSpec{X: x, Y: y})
	case "rrg":
		fs, err := core.BuildFabrics(topology.LeafSpineSpec{X: x, Y: y}, 0, rand.New(rand.NewSource(seed)))
		if err != nil {
			return nil, err
		}
		return fs.RRG, nil
	default:
		return nil, fmt.Errorf("unknown topology %q", kind)
	}
}
