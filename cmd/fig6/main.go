// Command fig6 regenerates Figure 6 of "Spineless Data Centers": the
// effect of scale on the DRing. For each supernode count it builds the
// §6.3 DRing (6 ToRs per supernode, 60-port switches, 36 server links) and
// an equipment-matched RRG, runs uniform traffic through the packet
// simulator, and reports p99FCT(DRing)/p99FCT(RRG) — the ratio that climbs
// above 1 as the ring grows.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"spineless/internal/core"
	"spineless/internal/memo"
	"spineless/internal/metrics"
	"spineless/internal/parallel"
	"spineless/internal/prof"
	"spineless/internal/viz"
	"spineless/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fig6: ")
	var (
		sweep    = flag.String("supernodes", "7,9,11,13,15", "comma-separated supernode counts (paper: 42..90 racks)")
		tors     = flag.Int("tors", 6, "ToRs per supernode (§6.3 uses 6)")
		ports    = flag.Int("ports", 60, "switch radix (§6.3 uses 60)")
		scheme   = flag.String("scheme", "ecmp", "routing scheme for both fabrics (ecmp, su2, ...)")
		topo     = flag.String("topo", "dring", "numerator fabric: dring (paper), xpander, debruijn or rng (same equipment budget; denominator RRG is matched to it)")
		util     = flag.Float64("util", 0.5, "offered load per server as a fraction of half its NIC rate")
		window   = flag.Float64("window", 0.004, "flow arrival window, seconds")
		seed     = flag.Int64("seed", 1, "random seed")
		flows    = flag.Int("maxflows", 0, "cap on flows per point (0 = uncapped; capping skews per-server load across the sweep)")
		doAudit  = flag.Bool("audit", false, "run every sweep point under the runtime invariant auditor (violations abort)")
		svgOut   = flag.String("svg", "", "write fig6.svg into this directory")
		workers  = flag.Int("workers", 0, "parallel sweep-point workers (0 = one per CPU); results are identical at any value")
		shards   = flag.Int("shards", 0, "intra-trial netsim shards (0 = serial engine); results are identical at any count, incompatible with -audit")
		storeDir = flag.String("store", "", "content-addressed result cache directory; repeated runs reuse per-point results")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	counts, err := parseInts(*sweep)
	if err != nil {
		log.Fatal(err)
	}
	switch *topo {
	case "dring", "xpander", "debruijn", "rng":
	default:
		log.Fatalf("unknown topology %q (want dring, xpander, debruijn or rng)", *topo)
	}
	cfg := core.DefaultScaleConfig()
	cfg.TorsPerSupernode = *tors
	cfg.Ports = *ports
	cfg.Scheme = *scheme
	cfg.Topology = *topo
	cfg.FCT.Util = *util
	cfg.FCT.WindowSec = *window
	cfg.FCT.Seed = *seed
	cfg.FCT.MaxFlows = *flows
	cfg.FCT.Sizes = workload.PaperFlowSizes()
	cfg.FCT.Audit = *doAudit
	cfg.FCT.Shards = *shards
	cfg.Workers = *workers
	if *doAudit {
		if *shards > 0 {
			log.Fatal("-audit needs the serial engine's event stream; drop -shards")
		}
		log.Printf("invariant auditing enabled: any conservation/FIFO/TCP violation aborts the run")
	}

	fmt.Printf("%s(%d ToRs/supernode, %d ports) vs equipment-matched RRG, uniform traffic, %s routing, seed=%d\n\n",
		*topo, *tors, *ports, *scheme, *seed)
	var t metrics.Table
	t.AddRow("supernodes", "racks", "servers", fmt.Sprintf("p99 FCT(%s)/FCT(RRG)", *topo), "median ratio")
	var xs, p99s, medians []float64
	start := time.Now()
	cache, err := memo.Open(*storeDir, "fig6", log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()
	// Sweep points run in parallel across -workers and are cached one at a
	// time: each is independent and reseeds from the config, so a per-point
	// sweep is bit-identical to one ScaleSweep call over every count.
	pts := make([]core.ScalePoint, len(counts))
	err = parallel.ForEach(cfg.Workers, len(counts), func(i int) error {
		spec := fig6Point{
			V: 2, Topo: *topo, Supernodes: counts[i], Tors: *tors, Ports: *ports,
			Scheme: *scheme, Util: *util, WindowSec: *window,
			Seed: *seed, MaxFlows: *flows,
		}
		label := fmt.Sprintf("%d supernodes", counts[i])
		p, err := memo.Do(cache, label, spec, func() (core.ScalePoint, error) {
			one, err := core.ScaleSweep(counts[i:i+1], cfg)
			if err != nil {
				return core.ScalePoint{}, err
			}
			return one[0], nil
		})
		if err != nil {
			return err
		}
		pts[i] = p
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		t.AddRow(
			strconv.Itoa(p.Supernodes),
			strconv.Itoa(p.Racks),
			strconv.Itoa(p.Servers),
			fmt.Sprintf("%.3f", p.Ratio),
			fmt.Sprintf("%.3f", p.MedianRatio),
		)
		xs = append(xs, float64(p.Racks))
		p99s = append(p99s, p.Ratio)
		medians = append(medians, p.MedianRatio)
	}
	log.Printf("%d points done in %v", len(pts), time.Since(start).Round(time.Millisecond))
	fmt.Println(t.String())
	fmt.Printf("ratio > 1 means the %s's tail FCT is worse than the expander's (§6.3).\n", *topo)

	if *svgOut != "" {
		if err := os.MkdirAll(*svgOut, 0o755); err != nil {
			log.Fatal(err)
		}
		svg, err := viz.Lines("Effect of scale: DRing vs equivalent RRG (uniform traffic)",
			"racks", "FCT(DRing)/FCT(RRG)", []viz.Series{
				{Name: "p99", X: xs, Y: p99s},
				{Name: "median", X: xs, Y: medians},
			})
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*svgOut, "fig6.svg")
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", path)
	}
}

// fig6Point is the cache key for one sweep point: the numerator topology,
// its geometry, routing scheme, workload knobs and seed; nothing
// result-neutral. V bumped to 2 when the topology joined the key.
type fig6Point struct {
	V          int     `json:"v"`
	Topo       string  `json:"topo"`
	Supernodes int     `json:"supernodes"`
	Tors       int     `json:"tors"`
	Ports      int     `json:"ports"`
	Scheme     string  `json:"scheme"`
	Util       float64 `json:"util"`
	WindowSec  float64 `json:"window_sec"`
	Seed       int64   `json:"seed"`
	MaxFlows   int     `json:"max_flows,omitempty"`
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad supernode count %q", f)
		}
		if v < 5 {
			return nil, fmt.Errorf("supernode count %d < 5", v)
		}
		out = append(out, v)
	}
	return out, nil
}
