// Command fig4 regenerates Figure 4 of "Spineless Data Centers": median and
// 99th-percentile flow completion times for the seven §5.2 traffic matrices
// across the five fabric × routing combinations, measured in the
// packet-level TCP simulator at 30% spine load.
//
// By default it runs a proportionally scaled-down trio (leaf-spine(12,4))
// so a laptop regenerates the figure in minutes; -paper runs the full §5.1
// configuration (leaf-spine(48,16), 3072 servers), which takes much longer.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"path/filepath"
	"strings"
	"time"

	"spineless/internal/core"
	"spineless/internal/memo"
	"spineless/internal/metrics"
	"spineless/internal/parallel"
	"spineless/internal/prof"
	"spineless/internal/telemetry"
	"spineless/internal/trace"
	"spineless/internal/viz"
	"spineless/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fig4: ")
	var (
		paper    = flag.Bool("paper", false, "run the full-scale §5.1 configuration (slow)")
		scale    = flag.Int("scale", 4, "scale-down factor for the default run (divides 48 and 16)")
		util     = flag.Float64("util", 0.30, "offered load as a fraction of spine capacity")
		window   = flag.Float64("window", 0.01, "flow arrival window, seconds")
		seed     = flag.Int64("seed", 1, "random seed (run is fully deterministic given the seed)")
		maxFlows = flag.Int("maxflows", 0, "cap on generated flows per cell (0 = uncapped)")
		claim    = flag.Bool("claim", false, "also check the §6.1 'up to 7× lower FCT' claim on FB-skewed")
		dump     = flag.String("dump", "", "write per-flow FCT CSVs for every cell into this directory")
		svgOut   = flag.String("svg", "", "write fig4a.svg and fig4b.svg into this directory")
		doAudit  = flag.Bool("audit", false, "run every cell under the runtime invariant auditor (violations abort)")
		doTel    = flag.Bool("telemetry", false, "record per-link/per-flow telemetry and print a digest after the run (needs the serial engine; incompatible with -shards and -audit)")
		extra    = flag.String("extra", "", "comma-separated bake-off fabrics to append as extra columns: xpander, debruijn, rng (each with its native scheme)")
		trials   = flag.Int("trials", 1, "independently seeded arrival windows pooled per cell")
		workers  = flag.Int("workers", 0, "parallel workers per fan-out (0 = one per CPU); results are identical at any value")
		shards   = flag.Int("shards", 0, "intra-trial netsim shards (0 = serial engine); results are identical at any count, incompatible with -audit")
		storeDir = flag.String("store", "", "content-addressed result cache directory; repeated runs reuse per-cell results")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	rng := rand.New(rand.NewSource(*seed))
	var fs *core.FabricSet
	if *paper {
		fs, err = core.PaperFabrics(rng)
	} else {
		fs, err = core.ScaledFabrics(*scale, rng)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fabrics: %v | %v | %v\n", fs.LeafSpine, fs.RRG, fs.DRing)
	fmt.Printf("seed=%d util=%.2f window=%.3fs flow sizes: Pareto(mean=100KB, alpha=1.05)\n\n", *seed, *util, *window)

	combos, err := core.PaperCombos(fs)
	if err != nil {
		log.Fatal(err)
	}
	if *extra != "" {
		for _, name := range strings.Split(*extra, ",") {
			name = strings.TrimSpace(name)
			g, err := core.ExtraFabric(fs, name, *seed)
			if err != nil {
				log.Fatal(err)
			}
			scheme := map[string]string{"xpander": "su2", "debruijn": "selfroute", "rng": "spvlb"}[name]
			c, err := core.NewCombo(fmt.Sprintf("%s (%s)", name, scheme), g, scheme)
			if err != nil {
				log.Fatal(err)
			}
			combos = append(combos, c)
			fmt.Printf("extra fabric: %v\n", g)
		}
	}
	cfg := core.DefaultFCTConfig()
	cfg.Util = *util
	cfg.WindowSec = *window
	cfg.Seed = *seed
	cfg.MaxFlows = *maxFlows
	cfg.Trials = *trials
	cfg.Workers = *workers
	cfg.Sizes = workload.PaperFlowSizes()
	cfg.Audit = *doAudit
	cfg.Shards = *shards
	cfg.KeepFlows = *dump != ""
	if *doAudit {
		if *shards > 0 {
			log.Fatal("-audit needs the serial engine's event stream; drop -shards")
		}
		log.Printf("invariant auditing enabled: any conservation/FIFO/TCP violation aborts the run")
	}
	var rec *telemetry.Recorder
	if *doTel {
		if *shards > 0 {
			log.Fatal("-telemetry needs the serial engine's event stream; drop -shards")
		}
		if *doAudit {
			log.Fatal("-audit and -telemetry both need the simulator's single tracer slot; run them separately")
		}
		rec = telemetry.NewRecorder(telemetry.Config{})
		cfg.Telemetry = rec
	}
	if *dump != "" {
		if err := os.MkdirAll(*dump, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	cache, err := memo.Open(*storeDir, "fig4", log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()
	if cache != nil && cfg.KeepFlows {
		// Per-flow dumps would bloat cache entries by orders of magnitude;
		// run fresh instead.
		log.Printf("-dump requested: result cache bypassed for this run")
		cache = nil
	}
	if cache != nil && rec != nil {
		// Cache hits execute no simulation, so the digest would read as an
		// idle fabric; run fresh instead.
		log.Printf("-telemetry requested: result cache bypassed for this run")
		cache = nil
	}

	var median, p99 metrics.Table
	header := []string{"TM"}
	for _, c := range combos {
		header = append(header, c.Label)
	}
	median.AddRow(header...)
	p99.AddRow(header...)

	results := map[core.TMKind][]core.FCTResult{}
	for _, kind := range core.AllTMKinds() {
		start := time.Now()
		row, err := cachedFig4Row(cache, fs, combos, kind, cfg, *paper, *scale)
		if err != nil {
			log.Fatal(err)
		}
		results[kind] = row
		if *dump != "" {
			if err := dumpRow(*dump, kind, row); err != nil {
				log.Fatal(err)
			}
		}
		mcells, pcells := []string{string(kind)}, []string{string(kind)}
		for _, r := range row {
			mcells = append(mcells, fmt.Sprintf("%.3f", r.Stats.MedianMS))
			pcells = append(pcells, fmt.Sprintf("%.3f", r.Stats.P99MS))
			if r.Stats.Incomplete > 0 {
				log.Printf("warning: %s × %s left %d flows incomplete", r.Combo, kind, r.Stats.Incomplete)
			}
		}
		median.AddRow(mcells...)
		p99.AddRow(pcells...)
		log.Printf("%-14s done in %v (%d flows per combo)", kind, time.Since(start).Round(time.Millisecond), row[0].Flows)
	}

	fmt.Println("(a) Median FCT (ms)")
	fmt.Println(median.String())
	fmt.Println("(b) 99th percentile FCT (ms)")
	fmt.Println(p99.String())

	if rec != nil {
		// Cells span three differently shaped fabrics, so the merged
		// snapshot is totals-only (Mixed) by construction.
		fmt.Println(rec.Snapshot().Digest(5))
	}

	if *svgOut != "" {
		if err := os.MkdirAll(*svgOut, 0o755); err != nil {
			log.Fatal(err)
		}
		labels := make([]string, len(combos))
		for i, c := range combos {
			labels[i] = c.Label
		}
		for _, panel := range []struct {
			file, title string
			pick        func(core.FCTResult) float64
		}{
			{"fig4a.svg", "(a) Median FCT (ms)", func(r core.FCTResult) float64 { return r.Stats.MedianMS }},
			{"fig4b.svg", "(b) 99th percentile FCT (ms)", func(r core.FCTResult) float64 { return r.Stats.P99MS }},
		} {
			var groups []viz.BarGroup
			for _, kind := range core.AllTMKinds() {
				g := viz.BarGroup{Label: string(kind)}
				for _, r := range results[kind] {
					g.Values = append(g.Values, panel.pick(r))
				}
				groups = append(groups, g)
			}
			svg, err := viz.GroupedBars(panel.title, "FCT (ms)", labels, groups)
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(*svgOut, panel.file), []byte(svg), 0o644); err != nil {
				log.Fatal(err)
			}
		}
		log.Printf("wrote fig4a.svg and fig4b.svg to %s", *svgOut)
	}

	if *claim {
		ls := results[core.TMFBSkewed][0].Stats
		best := results[core.TMFBSkewed][1].Stats // DRing su2
		if rrg := results[core.TMFBSkewed][2].Stats; rrg.P99MS < best.P99MS {
			best = rrg
		}
		fmt.Printf("§6.1 claim check (FB-skewed, p99): leaf-spine %.3fms vs best flat %.3fms → %.2f× lower\n",
			ls.P99MS, best.P99MS, ls.P99MS/best.P99MS)
	}
	// No os.Exit here: the deferred profile flush must run.
}

// fig4Cell is the cache key for one (TM × combo) cell: every knob the
// cell's result depends on, and nothing else (workers, audit and profiling
// flags never change results, so they must not fragment the cache).
type fig4Cell struct {
	V         int     `json:"v"`
	Paper     bool    `json:"paper,omitempty"`
	Scale     int     `json:"scale,omitempty"`
	Combo     string  `json:"combo"`
	TM        string  `json:"tm"`
	Util      float64 `json:"util"`
	WindowSec float64 `json:"window_sec"`
	Seed      int64   `json:"seed"`
	Trials    int     `json:"trials,omitempty"`
	MaxFlows  int     `json:"max_flows,omitempty"`
}

// cachedFig4Row is core.Fig4Row with a per-cell result cache: each combo's
// cell is looked up (and on a miss computed and committed) independently,
// preserving Fig4Row's combo-level parallelism and bit-identical output —
// cells are independent because every RunFCT reseeds from cfg.Seed.
func cachedFig4Row(cache *memo.Cache, fs *core.FabricSet, combos []core.Combo, kind core.TMKind, cfg core.FCTConfig, paper bool, scale int) ([]core.FCTResult, error) {
	out := make([]core.FCTResult, len(combos))
	err := parallel.ForEach(cfg.Workers, len(combos), func(i int) error {
		spec := fig4Cell{
			V: 1, Paper: paper, Scale: scale, Combo: combos[i].Label,
			TM: string(kind), Util: cfg.Util, WindowSec: cfg.WindowSec,
			Seed: cfg.Seed, Trials: cfg.Trials, MaxFlows: cfg.MaxFlows,
		}
		label := fmt.Sprintf("%s × %s", combos[i].Label, kind)
		r, err := memo.Do(cache, label, spec, func() (core.FCTResult, error) {
			return core.RunFCT(fs, combos[i], kind, cfg)
		})
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// dumpRow writes one per-flow FCT CSV per combo for a workload.
func dumpRow(dir string, kind core.TMKind, row []core.FCTResult) error {
	for _, r := range row {
		name := fmt.Sprintf("%s_%s.csv", kind, sanitize(r.Combo))
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := trace.WriteFCTs(f, r.RawFlows, r.RawFCTNS); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		case r == ' ', r == '(', r == ')':
			// dropped
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
