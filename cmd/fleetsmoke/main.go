// Command fleetsmoke is the fleet's end-to-end fault-tolerance check: it
// boots a multi-process spinelessd fleet (each worker is this same binary
// re-executed with -worker), drives sustained load through a fleet
// coordinator while a chaos schedule kills, restarts, partitions and slows
// workers mid-flight, and then proves the robustness contract:
//
//   - zero lost jobs: every accepted submission reaches a terminal state;
//   - byte-identical results: every result equals an independent clean
//     in-process computation of the same spec;
//   - audits work across workers: sampled cache hits are re-executed on a
//     different worker with zero mismatches;
//   - overload sheds before it saturates: a flood draws 429s and never a
//     queue-full 503;
//   - workers drain cleanly: SIGTERM at the end exits 0 (run the smoke
//     under -race and this also shouts about data races).
//
// Exit status is non-zero if any assertion fails. This is the CI
// fleet-smoke job; it is also runnable by hand:
//
//	go run -race ./cmd/fleetsmoke -v
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"spineless/internal/fleet"
	"spineless/internal/fleet/chaos"
	"spineless/internal/jobs"
	"spineless/internal/retry"
	"spineless/internal/serve"
	"spineless/internal/store"
)

func main() {
	log.SetFlags(0)
	var (
		worker   = flag.Bool("worker", false, "internal: run as a fleet worker process")
		addr     = flag.String("addr", "", "worker listen address")
		storeDir = flag.String("store", "", "worker store directory")
		hb       = flag.Duration("hb", 200*time.Millisecond, "worker event-stream heartbeat")
		shed     = flag.Int("shed-depth", 8, "worker admission-control watermark")
		queue    = flag.Int("queue", 16, "worker queue depth")

		workers = flag.Int("n", 3, "fleet size")
		jobsN   = flag.Int("load", 18, "jobs submitted across the chaos window")
		seed    = flag.Int64("seed", 1, "chaos schedule seed")
		timeout = flag.Duration("timeout", 4*time.Minute, "overall smoke deadline")
		verbose = flag.Bool("v", false, "log coordinator and chaos activity")
	)
	flag.Parse()

	if *worker {
		if err := runWorker(*addr, *storeDir, *hb, *shed, *queue); err != nil {
			log.Fatalf("worker %s: %v", *addr, err)
		}
		return
	}
	log.SetPrefix("fleetsmoke: ")
	if err := run(*workers, *jobsN, *seed, *timeout, *verbose); err != nil {
		log.Fatal(err)
	}
	fmt.Println("fleetsmoke: OK")
}

// runWorker is the child-process mode: one spinelessd worker bound to a
// fixed address with a persistent store, draining on SIGTERM. The bind
// retries because a chaos restart can race the kernel releasing the dead
// predecessor's socket.
func runWorker(addr, storeDir string, hb time.Duration, shed, queue int) error {
	log.SetPrefix("worker " + addr + ": ")
	st, err := store.Open(storeDir, store.Options{})
	if err != nil {
		return err
	}
	m := jobs.New(st, jobs.Config{
		QueueDepth:   queue,
		ShedDepth:    shed,
		Executors:    2,
		TrialWorkers: 2,
	})
	var ln net.Listener
	for i := 0; ; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i >= 50 {
			return fmt.Errorf("binding %s: %w", addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	h := serve.New(m, nil)
	h.Heartbeat = hb
	srv := &http.Server{Handler: h}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	return m.Drain(shutdownCtx)
}

// procs supervises the worker processes so chaos can kill and restart them
// by index.
type procs struct {
	self  string
	addrs []string
	dirs  []string
	args  []string

	mu  sync.Mutex
	cmd []*exec.Cmd
}

func (p *procs) start(w int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.startLocked(w)
}

func (p *procs) startLocked(w int) error {
	args := append([]string{"-worker", "-addr", p.addrs[w], "-store", p.dirs[w]}, p.args...)
	cmd := exec.Command(p.self, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	p.cmd[w] = cmd
	return nil
}

func (p *procs) kill(w int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	cmd := p.cmd[w]
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("worker %d not running", w)
	}
	if err := cmd.Process.Kill(); err != nil {
		return err
	}
	_ = cmd.Wait() // reap; a SIGKILLed child's non-zero status is expected
	p.cmd[w] = nil
	return nil
}

// shutdown SIGTERMs every live worker and returns an error if any fails to
// drain and exit cleanly.
func (p *procs) shutdown() error {
	p.mu.Lock()
	cmds := append([]*exec.Cmd(nil), p.cmd...)
	p.mu.Unlock()
	var firstErr error
	for w, cmd := range cmds {
		if cmd == nil || cmd.Process == nil {
			continue
		}
		_ = cmd.Process.Signal(syscall.SIGTERM)
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("worker %d did not drain cleanly: %w", w, err)
		}
	}
	return firstErr
}

func run(n, load int, seed int64, timeout time.Duration, verbose bool) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	logf := func(string, ...any) {}
	if verbose {
		logf = log.Printf
	}

	self, err := os.Executable()
	if err != nil {
		return err
	}
	root, err := os.MkdirTemp("", "fleetsmoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	// Reserve one fixed port per worker: a restarted worker must come back
	// at the same URL, so :0 ephemeral binding is only used to pick them.
	p := &procs{self: self, cmd: make([]*exec.Cmd, n)}
	urls := make([]string, n)
	for w := 0; w < n; w++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		addrStr := ln.Addr().String()
		ln.Close()
		p.addrs = append(p.addrs, addrStr)
		dir := fmt.Sprintf("%s/worker%d", root, w)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		p.dirs = append(p.dirs, dir)
		urls[w] = "http://" + addrStr
	}
	for w := 0; w < n; w++ {
		if err := p.start(w); err != nil {
			return fmt.Errorf("starting worker %d: %w", w, err)
		}
	}
	defer p.shutdown()

	// The chaos plan, scaled to the load window: one worker SIGKILLed and
	// later restarted, one partitioned and healed, one slowed throughout.
	var sched chaos.Schedule
	sched.Seed = seed
	if n >= 2 {
		sched.Kill(1500*time.Millisecond, 1%n)
		sched.Restart(5*time.Second, 1%n)
	}
	if n >= 3 {
		sched.Partition(2500*time.Millisecond, 2)
		sched.Heal(6*time.Second, 2)
	}
	sched.Slow(500*time.Millisecond, 0, 0.5)
	sched.Heal(7*time.Second, 0)
	ctl, err := chaos.NewController(&sched, urls, chaos.Actions{
		Kill:    p.kill,
		Restart: p.start,
	}, log.Printf)
	if err != nil {
		return err
	}

	coord, err := fleet.New(fleet.Config{
		Workers:       urls,
		ProbeEvery:    150 * time.Millisecond,
		ProbeTimeout:  time.Second,
		SuspectAfter:  1,
		DeadAfter:     3,
		StreamSilence: 1500 * time.Millisecond,
		AuditEvery:    2,
		AuditTimeout:  time.Minute,
		RPC: retry.Policy{
			MaxAttempts:    4,
			BaseDelay:      50 * time.Millisecond,
			MaxDelay:       500 * time.Millisecond,
			AttemptTimeout: 5 * time.Second,
			Budget:         &retry.Budget{Ratio: 0.5, Burst: 50},
		},
		Client: &http.Client{Transport: ctl.Transport(nil)},
		Logf:   logf,
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	if err := waitHealthy(ctx, urls); err != nil {
		return err
	}
	log.Printf("%d workers up at %v", n, p.addrs)

	// Phase 1: sustained load under chaos. Submissions are staggered so
	// they straddle every scheduled fault; each Run must come back with the
	// same bytes a clean in-process execution of its spec produces.
	chaosDone := make(chan struct{})
	go func() { defer close(chaosDone); ctl.Play(ctx.Done()) }()

	type outcome struct {
		i   int
		res fleet.RunResult
		err error
	}
	results := make(chan outcome, load)
	var wg sync.WaitGroup
	for i := 0; i < load; i++ {
		sp, err := smokeSpec(int64(i+1), 20)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(i int, sp jobs.Spec) {
			defer wg.Done()
			res, err := coord.Run(ctx, sp)
			results <- outcome{i, res, err}
		}(i, sp)
		if err := retry.Sleep(ctx, 400*time.Millisecond); err != nil {
			return err
		}
	}
	wg.Wait()
	close(results)
	<-chaosDone

	lost, diverted := 0, 0
	byIdx := make([]fleet.RunResult, load)
	for o := range results {
		if o.err != nil {
			lost++
			log.Printf("LOST job %d: %v", o.i, o.err)
			continue
		}
		byIdx[o.i] = o.res
		if owner := coord.Rank(o.res.Hash)[0]; o.res.Worker != owner {
			diverted++ // the rendezvous owner was dead or dying; placement routed around it
		}
	}
	if lost > 0 {
		return fmt.Errorf("%d of %d jobs lost under chaos", lost, load)
	}
	repl := coord.Metrics().Replacements
	if repl == 0 && diverted == 0 {
		return fmt.Errorf("chaos never bit: no job was re-placed or diverted off its owner")
	}
	log.Printf("phase 1: all %d jobs terminal under chaos (replacements=%d, diverted=%d)", load, repl, diverted)

	// Byte-identical to a clean run, for every job.
	for i := 0; i < load; i++ {
		sp, _ := smokeSpec(int64(i+1), 20)
		clean, err := jobs.Execute(ctx, sp, 2, nil)
		if err != nil {
			return fmt.Errorf("clean run of job %d: %w", i, err)
		}
		want, err := json.Marshal(clean)
		if err != nil {
			return err
		}
		if string(byIdx[i].Bytes) != string(want) {
			return fmt.Errorf("job %d: chaos-run result differs from clean run\n got %s\nwant %s", i, byIdx[i].Bytes, want)
		}
	}
	log.Printf("phase 1: all %d results byte-identical to clean runs", load)

	// Phase 2: resubmit everything. The fleet is healed, so these are cache
	// hits, and every second one is audited on a *different* worker.
	for i := 0; i < load; i++ {
		sp, _ := smokeSpec(int64(i+1), 20)
		res, err := coord.Run(ctx, sp)
		if err != nil {
			return fmt.Errorf("resubmit job %d: %w", i, err)
		}
		if string(res.Bytes) != string(byIdx[i].Bytes) {
			return fmt.Errorf("resubmit job %d returned different bytes", i)
		}
	}
	coord.WaitAudits()
	m := coord.Metrics()
	if m.CacheHits == 0 {
		return fmt.Errorf("resubmission phase produced no cache hits (metrics %+v)", m)
	}
	if m.Audits == 0 {
		return fmt.Errorf("no cross-worker audits completed (metrics %+v)", m)
	}
	if m.AuditBad != 0 {
		return fmt.Errorf("%d cross-worker audit mismatches (metrics %+v)", m.AuditBad, m)
	}
	log.Printf("phase 2: %d cache hits, %d cross-worker audits, 0 mismatches", m.CacheHits, m.Audits)

	// Phase 3: overload one worker directly. Admission control must shed
	// with 429 before the queue saturates: some 429s, zero 503s.
	var tooMany, full, accepted int
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < 40; i++ {
		sp, err := smokeSpec(int64(1000+i), 40)
		if err != nil {
			return err
		}
		body, _ := json.Marshal(sp)
		resp, err := client.Post(urls[0]+"/v1/jobs", "application/json", strings.NewReader(string(body)))
		if err != nil {
			return fmt.Errorf("flood submit %d: %w", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusOK:
			accepted++
		case http.StatusTooManyRequests:
			tooMany++
		case http.StatusServiceUnavailable:
			full++
		default:
			return fmt.Errorf("flood submit %d: unexpected status %d", i, resp.StatusCode)
		}
	}
	if full > 0 {
		return fmt.Errorf("overload reached queue saturation: %d full-queue 503s (sheds=%d)", full, tooMany)
	}
	if tooMany == 0 {
		return fmt.Errorf("overload flood was never shed (accepted=%d)", accepted)
	}
	if accepted == 0 {
		return fmt.Errorf("overload shed everything; admission control is over-eager")
	}
	log.Printf("phase 3: flood of 40 → %d accepted, %d shed with 429, 0 queue-full 503s", accepted, tooMany)

	// Phase 4: graceful drain. SIGTERM everyone (including the worker still
	// digesting the flood) and require clean exits.
	if err := p.shutdown(); err != nil {
		return err
	}
	log.Printf("phase 4: all workers drained and exited 0")
	return nil
}

func waitHealthy(ctx context.Context, urls []string) error {
	client := &http.Client{Timeout: time.Second}
	for _, u := range urls {
		for {
			resp, err := client.Get(u + "/healthz")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if err := retry.Sleep(ctx, 100*time.Millisecond); err != nil {
				return fmt.Errorf("worker %s never became healthy: %w", u, err)
			}
		}
	}
	return nil
}

// smokeSpec is the same scaled-down Figure 4 cell the spinelessd smoke
// uses, with the seed varied per job so every job is distinct work.
func smokeSpec(seed int64, trials int) (jobs.Spec, error) {
	raw := `{"kind":"fct","topo":{"scale":8},"fabric":"rrg","scheme":"ecmp","tm":"A2A","util":0.2,"window_sec":0.002,"seed":1,"max_flows":40,"trials":2}`
	var sp jobs.Spec
	if err := json.Unmarshal([]byte(raw), &sp); err != nil {
		return sp, err
	}
	sp.Seed = seed
	sp.Trials = trials
	return sp.Normalized(), nil
}
