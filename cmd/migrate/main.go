// Command migrate plans the §5.1 rewiring as an operational runbook: a
// sequence of single cable moves from a live leaf-spine to its flat
// replacement (RRG or DRing) such that the fabric stays connected after
// every move, plus the server-port reassignments.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"spineless/internal/core"
	"spineless/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("migrate: ")
	var (
		paper  = flag.Bool("paper", false, "full-scale §5.1 fabrics")
		scale  = flag.Int("scale", 4, "scale-down factor")
		target = flag.String("to", "rrg", "target fabric: rrg or dring")
		seed   = flag.Int64("seed", 1, "random seed (rrg wiring)")
		show   = flag.Int("show", 12, "print at most this many steps (0 = all)")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var fs *core.FabricSet
	var err error
	if *paper {
		fs, err = core.PaperFabrics(rng)
	} else {
		fs, err = core.ScaledFabrics(*scale, rng)
	}
	if err != nil {
		log.Fatal(err)
	}
	var to *topology.Graph
	switch *target {
	case "rrg":
		to = fs.RRG
	case "dring":
		to = fs.DRing
	default:
		log.Fatalf("unknown target %q", *target)
	}

	plan, err := topology.PlanMigration(fs.LeafSpine, to)
	if err != nil {
		log.Fatal(err)
	}
	// Verify the plan before printing it as a runbook.
	if _, err := plan.Apply(fs.LeafSpine, to); err != nil {
		log.Fatalf("plan failed verification: %v", err)
	}

	fmt.Printf("migration: %v → %v\n", fs.LeafSpine, to)
	fmt.Printf("%d cable moves, %d server-port reassignments; fabric stays connected after every step\n\n",
		len(plan.Steps), plan.ServerMoves)
	limit := *show
	if limit == 0 || limit > len(plan.Steps) {
		limit = len(plan.Steps)
	}
	for i := 0; i < limit; i++ {
		s := plan.Steps[i]
		switch {
		case s.RemoveA >= 0 && s.AddA >= 0:
			fmt.Printf("step %4d: move cable  s%d—s%d  →  s%d—s%d\n", i+1, s.RemoveA, s.RemoveB, s.AddA, s.AddB)
		case s.AddA >= 0:
			fmt.Printf("step %4d: add cable            →  s%d—s%d\n", i+1, s.AddA, s.AddB)
		default:
			fmt.Printf("step %4d: remove cable s%d—s%d\n", i+1, s.RemoveA, s.RemoveB)
		}
	}
	if limit < len(plan.Steps) {
		fmt.Printf("... %d more steps (-show 0 prints all)\n", len(plan.Steps)-limit)
	}
}
