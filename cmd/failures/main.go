// Command failures runs the §7 "Impact of failures" studies the paper
// leaves as future work, in two modes.
//
// Static (default): sweep random link-failure fractions on a flat fabric
// and report path dilation, surviving Shortest-Union(K) path diversity,
// BGP reconvergence rounds (incremental, from the pre-failure RIB), and
// tail FCT on the degraded fabric.
//
// Live (-live): inject the failures *during* a packet-level run. Traffic
// blackholes into the stale FIB until detection plus BGP reconvergence
// completes (rounds × -round-delay), then live flows re-path onto the
// repaired FIB. Optional flapping (-flap) and gray links (-gray) model the
// operationally common non-clean failures. The table reports the measured
// blackhole window, RTO victims, and FCT inflation during vs. after the
// window.
//
// Failed trials (e.g. a draw that partitions the fabric) are reported and
// skipped; the sweep continues and the command exits non-zero with a
// summary of which fractions failed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"spineless/internal/core"
	"spineless/internal/resilience"
	"spineless/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("failures: ")
	var (
		topoKind  = flag.String("topo", "dring", "fabric: dring or rrg")
		m         = flag.Int("supernodes", 8, "dring supernodes")
		n         = flag.Int("tors", 2, "dring ToRs per supernode")
		ports     = flag.Int("ports", 24, "switch radix")
		k         = flag.Int("k", 2, "Shortest-Union K")
		fractions = flag.String("fractions", "0,0.01,0.05,0.10", "comma-separated link-failure fractions")
		flows     = flag.Int("flows", 300, "uniform-workload flows for FCT replay (0 = skip; live mode requires > 0)")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "parallel workers across fractions (0 = one per CPU); results are identical at any value")
		doAudit   = flag.Bool("audit", false, "run packet simulations under the runtime invariant auditor (violations fail the trial)")

		live     = flag.Bool("live", false, "inject failures during a packet-level run (transient study)")
		failAt   = flag.Duration("fail-at", 2*time.Millisecond, "live: absolute sim time of the failure")
		detect   = flag.Duration("detect", time.Millisecond, "live: failure-detection delay before reconvergence starts")
		roundDel = flag.Duration("round-delay", 500*time.Microsecond, "live: wall time per synchronous BGP reconvergence round")
		window   = flag.Duration("window", 20*time.Millisecond, "live: flow-arrival window")
		flap     = flag.Int("flap", 0, "live: number of failed trunks that flap instead of staying down")
		gray     = flag.Int("gray", 0, "live: number of surviving trunks turned gray at the failure")
		grayLoss = flag.Float64("gray-loss", 0.05, "live: per-packet loss probability on gray trunks")
		grayRate = flag.Float64("gray-rate", 1.0, "live: rate factor on gray trunks (1 = undegraded)")
		preserve = flag.Bool("preserve-connectivity", false, "live: redraw cut sets that would partition racks")
	)
	flag.Parse()

	var g *topology.Graph
	var err error
	switch *topoKind {
	case "dring":
		g, err = topology.DRing(topology.Uniform(*m, *n, *ports))
	case "rrg":
		dr, derr := topology.DRing(topology.Uniform(*m, *n, *ports))
		if derr != nil {
			log.Fatal(derr)
		}
		g, err = core.MatchedRRG(dr, rand.New(rand.NewSource(*seed)))
	default:
		log.Fatalf("unknown topology %q", *topoKind)
	}
	if err != nil {
		log.Fatal(err)
	}

	var fracs []float64
	for _, f := range strings.Split(*fractions, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			log.Fatalf("bad fraction %q", f)
		}
		fracs = append(fracs, v)
	}

	if *live {
		cfg := resilience.DefaultLiveConfig()
		cfg.K = *k
		cfg.Seed = *seed
		cfg.Flows = *flows
		cfg.FailAtNS = failAt.Nanoseconds()
		cfg.DetectionDelayNS = detect.Nanoseconds()
		cfg.RoundDelayNS = roundDel.Nanoseconds()
		cfg.WindowNS = window.Nanoseconds()
		cfg.FlapLinks = *flap
		cfg.GrayLinks = *gray
		cfg.GrayLoss = *grayLoss
		cfg.GrayRateFactor = *grayRate
		cfg.PreserveConnectivity = *preserve
		cfg.Workers = *workers
		cfg.Audit = *doAudit

		fmt.Printf("fabric: %v, Shortest-Union(%d), seed=%d\n", g, *k, *seed)
		fmt.Printf("live faults: fail at %v, detect %v, %v/round; flap=%d gray=%d (loss %.1f%%, rate ×%.2f)\n\n",
			*failAt, *detect, *roundDel, *flap, *gray, *grayLoss*100, *grayRate)
		rows, err := resilience.LiveSweep(g, cfg, fracs)
		fmt.Println(resilience.LiveTable(rows))
		fmt.Println("repair = fail-at + detect + reconv × round-delay; blackhole = measured first→last packet lost into a down link.")
		exitSweep(err)
		return
	}

	cfg := resilience.DefaultStudyConfig()
	cfg.K = *k
	cfg.Flows = *flows
	cfg.Seed = *seed
	cfg.Fractions = fracs
	cfg.Workers = *workers
	cfg.Audit = *doAudit

	fmt.Printf("fabric: %v, Shortest-Union(%d), seed=%d\n\n", g, *k, *seed)
	rows, err := resilience.Study(g, cfg)
	if rows != nil {
		fmt.Println(resilience.Table(rows))
		fmt.Println("reconv rounds = synchronous BGP rounds to re-settle from the pre-failure RIB.")
	}
	exitSweep(err)
}

// exitSweep reports a sweep's aggregated trial failures and exits non-zero
// if any trial (or the setup itself) failed.
func exitSweep(err error) {
	if err == nil {
		return
	}
	var terrs core.TrialErrors
	if errors.As(err, &terrs) {
		fmt.Fprintf(os.Stderr, "failures: %d trial(s) failed:\n", len(terrs))
		for _, te := range terrs {
			fmt.Fprintf(os.Stderr, "  %s\n", te.Error())
		}
	} else {
		fmt.Fprintf(os.Stderr, "failures: %v\n", err)
	}
	os.Exit(1)
}
