// Command failures runs the §7 "Impact of failures" studies the paper
// leaves as future work, in two modes.
//
// Static (default): sweep random link-failure fractions on a flat fabric
// and report path dilation, surviving Shortest-Union(K) path diversity,
// BGP reconvergence rounds (incremental, from the pre-failure RIB), and
// tail FCT on the degraded fabric.
//
// Live (-live): inject the failures *during* a packet-level run. Traffic
// blackholes into the stale FIB until detection plus BGP reconvergence
// completes (rounds × -round-delay), then live flows re-path onto the
// repaired FIB. Optional flapping (-flap) and gray links (-gray) model the
// operationally common non-clean failures. The table reports the measured
// blackhole window, RTO victims, and FCT inflation during vs. after the
// window.
//
// Failed trials (e.g. a draw that partitions the fabric) are reported and
// skipped; the sweep continues and the command exits non-zero with a
// summary of which fractions failed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"spineless/internal/core"
	"spineless/internal/memo"
	"spineless/internal/parallel"
	"spineless/internal/resilience"
	"spineless/internal/telemetry"
	"spineless/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("failures: ")
	var (
		topoKind  = flag.String("topo", "dring", "fabric: dring, rrg, xpander, debruijn or rng (non-dring fabrics match the dring's equipment)")
		m         = flag.Int("supernodes", 8, "dring supernodes")
		n         = flag.Int("tors", 2, "dring ToRs per supernode")
		ports     = flag.Int("ports", 24, "switch radix")
		k         = flag.Int("k", 2, "Shortest-Union K")
		fractions = flag.String("fractions", "0,0.01,0.05,0.10", "comma-separated link-failure fractions")
		flows     = flag.Int("flows", 300, "uniform-workload flows for FCT replay (0 = skip; live mode requires > 0)")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "parallel workers across fractions (0 = one per CPU); results are identical at any value")
		doAudit   = flag.Bool("audit", false, "run packet simulations under the runtime invariant auditor (violations fail the trial)")
		doTel     = flag.Bool("telemetry", false, "record per-link/per-flow telemetry and print a digest after the sweep (needs the serial engine; incompatible with -shards and -audit)")
		shards    = flag.Int("shards", 0, "intra-trial netsim shards (0 = serial engine); results are identical at any count, incompatible with -audit")
		storeDir  = flag.String("store", "", "content-addressed result cache directory; repeated runs reuse per-fraction rows")

		live     = flag.Bool("live", false, "inject failures during a packet-level run (transient study)")
		failAt   = flag.Duration("fail-at", 2*time.Millisecond, "live: absolute sim time of the failure")
		detect   = flag.Duration("detect", time.Millisecond, "live: failure-detection delay before reconvergence starts")
		roundDel = flag.Duration("round-delay", 500*time.Microsecond, "live: wall time per synchronous BGP reconvergence round")
		window   = flag.Duration("window", 20*time.Millisecond, "live: flow-arrival window")
		flap     = flag.Int("flap", 0, "live: number of failed trunks that flap instead of staying down")
		gray     = flag.Int("gray", 0, "live: number of surviving trunks turned gray at the failure")
		grayLoss = flag.Float64("gray-loss", 0.05, "live: per-packet loss probability on gray trunks")
		grayRate = flag.Float64("gray-rate", 1.0, "live: rate factor on gray trunks (1 = undegraded)")
		preserve = flag.Bool("preserve-connectivity", false, "live: redraw cut sets that would partition racks")
	)
	flag.Parse()

	var g *topology.Graph
	var err error
	switch *topoKind {
	case "dring":
		g, err = topology.DRing(topology.Uniform(*m, *n, *ports))
	case "rrg":
		dr, derr := topology.DRing(topology.Uniform(*m, *n, *ports))
		if derr != nil {
			log.Fatal(derr)
		}
		g, err = core.MatchedRRG(dr, rand.New(rand.NewSource(*seed)))
	case "xpander", "debruijn", "rng":
		// Bake-off fabrics on the dring's equipment budget: same switch
		// count, radix, server total and network-degree budget (uniform
		// dring degree is 4·tors). Resilience replay routes with SU(K) on
		// every fabric — selfroute has no reroute story by design.
		dr, derr := topology.DRing(topology.Uniform(*m, *n, *ports))
		if derr != nil {
			log.Fatal(derr)
		}
		g, err = core.FlatFabric(*topoKind, dr.N(), 4**n, *ports, dr.Servers(), rand.New(rand.NewSource(*seed)))
	default:
		log.Fatalf("unknown topology %q (want dring, rrg, xpander, debruijn or rng)", *topoKind)
	}
	if err != nil {
		log.Fatal(err)
	}

	var fracs []float64
	for _, f := range strings.Split(*fractions, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			log.Fatalf("bad fraction %q", f)
		}
		fracs = append(fracs, v)
	}

	cache, err := memo.Open(*storeDir, "failures", log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()
	base := cellSpec{
		V: 1, Topo: *topoKind, Supernodes: *m, Tors: *n, Ports: *ports,
		K: *k, Flows: *flows, Seed: *seed,
	}
	if *doAudit && *shards > 0 {
		log.Fatal("-audit needs the serial engine's event stream; drop -shards")
	}
	var rec *telemetry.Recorder
	if *doTel {
		if *shards > 0 {
			log.Fatal("-telemetry needs the serial engine's event stream; drop -shards")
		}
		if *doAudit {
			log.Fatal("-audit and -telemetry both need the simulator's single tracer slot; run them separately")
		}
		rec = telemetry.NewRecorder(telemetry.Config{})
		if cache != nil {
			// Cache hits execute no simulation, so the digest would read
			// as an idle fabric; run fresh instead. The deferred Close
			// still runs on the original handle.
			log.Printf("-telemetry requested: result cache bypassed for this run")
			cache = nil
		}
	}

	if *live {
		cfg := resilience.DefaultLiveConfig()
		cfg.K = *k
		cfg.Seed = *seed
		cfg.Flows = *flows
		cfg.FailAtNS = failAt.Nanoseconds()
		cfg.DetectionDelayNS = detect.Nanoseconds()
		cfg.RoundDelayNS = roundDel.Nanoseconds()
		cfg.WindowNS = window.Nanoseconds()
		cfg.FlapLinks = *flap
		cfg.GrayLinks = *gray
		cfg.GrayLoss = *grayLoss
		cfg.GrayRateFactor = *grayRate
		cfg.PreserveConnectivity = *preserve
		cfg.Workers = *workers
		cfg.Audit = *doAudit
		cfg.Shards = *shards
		cfg.Telemetry = rec

		fmt.Printf("fabric: %v, Shortest-Union(%d), seed=%d\n", g, *k, *seed)
		fmt.Printf("live faults: fail at %v, detect %v, %v/round; flap=%d gray=%d (loss %.1f%%, rate ×%.2f)\n\n",
			*failAt, *detect, *roundDel, *flap, *gray, *grayLoss*100, *grayRate)
		base.Mode = "live"
		base.FailAtNS = cfg.FailAtNS
		base.DetectNS = cfg.DetectionDelayNS
		base.RoundNS = cfg.RoundDelayNS
		base.WindowNS = cfg.WindowNS
		base.Flap = cfg.FlapLinks
		base.Gray = cfg.GrayLinks
		base.GrayLoss = cfg.GrayLoss
		base.GrayRate = cfg.GrayRateFactor
		base.Preserve = cfg.PreserveConnectivity
		rows, err := cachedLiveSweep(cache, g, cfg, fracs, base)
		fmt.Println(resilience.LiveTable(rows))
		fmt.Println("repair = fail-at + detect + reconv × round-delay; blackhole = measured first→last packet lost into a down link.")
		if rec != nil {
			fmt.Println(rec.Snapshot().Digest(5))
		}
		exitSweep(err)
		return
	}

	cfg := resilience.DefaultStudyConfig()
	cfg.K = *k
	cfg.Flows = *flows
	cfg.Seed = *seed
	cfg.Fractions = fracs
	cfg.Workers = *workers
	cfg.Audit = *doAudit
	cfg.Shards = *shards
	cfg.Telemetry = rec

	base.Mode = "static"
	fmt.Printf("fabric: %v, Shortest-Union(%d), seed=%d\n\n", g, *k, *seed)
	rows, err := cachedStudy(cache, g, cfg, base)
	if rows != nil {
		fmt.Println(resilience.Table(rows))
		fmt.Println("reconv rounds = synchronous BGP rounds to re-settle from the pre-failure RIB.")
	}
	if rec != nil {
		fmt.Println(rec.Snapshot().Digest(5))
	}
	exitSweep(err)
}

// cellSpec is the cache key for one fraction row: the fabric geometry,
// routing K, workload size, seed, fault schedule and the fraction itself.
// Failed rows are never cached — a draw that partitions the fabric reruns
// next time. Result-neutral knobs (workers, audit) are excluded.
type cellSpec struct {
	V          int     `json:"v"`
	Mode       string  `json:"mode"`
	Topo       string  `json:"topo"`
	Supernodes int     `json:"supernodes"`
	Tors       int     `json:"tors"`
	Ports      int     `json:"ports"`
	K          int     `json:"k"`
	Flows      int     `json:"flows"`
	Seed       int64   `json:"seed"`
	Fraction   float64 `json:"fraction"`
	FailAtNS   int64   `json:"fail_at_ns,omitempty"`
	DetectNS   int64   `json:"detect_ns,omitempty"`
	RoundNS    int64   `json:"round_ns,omitempty"`
	WindowNS   int64   `json:"window_ns,omitempty"`
	Flap       int     `json:"flap,omitempty"`
	Gray       int     `json:"gray,omitempty"`
	GrayLoss   float64 `json:"gray_loss,omitempty"`
	GrayRate   float64 `json:"gray_rate,omitempty"`
	Preserve   bool    `json:"preserve,omitempty"`
}

// cachedLiveSweep is resilience.LiveSweep with a per-fraction cache,
// preserving its semantics exactly: failed fractions contribute a
// TrialError and no row (and are never cached), rows keep fraction order.
func cachedLiveSweep(cache *memo.Cache, g *topology.Graph, cfg resilience.LiveConfig, fracs []float64, base cellSpec) ([]resilience.LiveResult, error) {
	results := make([]resilience.LiveResult, len(fracs))
	errs := make([]error, len(fracs))
	_ = parallel.ForEach(cfg.Workers, len(fracs), func(i int) error {
		c := cfg
		c.Fraction = fracs[i]
		spec := base
		spec.Fraction = fracs[i]
		label := fmt.Sprintf("fraction %.3f", fracs[i])
		errs[i] = core.Trial(label, func() error {
			var e error
			results[i], e = memo.Do(cache, label, spec, func() (resilience.LiveResult, error) {
				return resilience.RunLive(g, c)
			})
			return e
		})
		return nil
	})
	var rows []resilience.LiveResult
	var terrs core.TrialErrors
	for i, err := range errs {
		if err != nil {
			terrs = append(terrs, err.(core.TrialError))
			continue
		}
		rows = append(rows, results[i])
	}
	if len(terrs) > 0 {
		return rows, terrs
	}
	return rows, nil
}

// cachedStudy is resilience.Study with a per-fraction cache. Each miss runs
// a single-fraction Study (re-deriving the base FIB/RIB, which a hit skips
// entirely); failed fractions keep Study's semantics — an Err-marked row, a
// TrialError, and nothing cached.
func cachedStudy(cache *memo.Cache, g *topology.Graph, cfg resilience.StudyConfig, base cellSpec) ([]resilience.StudyRow, error) {
	if cache == nil {
		return resilience.Study(g, cfg)
	}
	rows := make([]resilience.StudyRow, len(cfg.Fractions))
	errs := make([]error, len(cfg.Fractions))
	_ = parallel.ForEach(cfg.Workers, len(cfg.Fractions), func(i int) error {
		f := cfg.Fractions[i]
		spec := base
		spec.Fraction = f
		row, err := memo.Do(cache, fmt.Sprintf("fraction %.3f", f), spec, func() (resilience.StudyRow, error) {
			single := cfg
			single.Fractions = []float64{f}
			rs, serr := resilience.Study(g, single)
			if serr != nil {
				return resilience.StudyRow{}, serr
			}
			return rs[0], nil
		})
		if err != nil {
			rows[i] = resilience.StudyRow{Fraction: f, Err: err}
			errs[i] = err
			return nil
		}
		rows[i] = row
		return nil
	})
	var terrs core.TrialErrors
	var fatal error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var sub core.TrialErrors
		if errors.As(err, &sub) {
			terrs = append(terrs, sub...)
		} else if fatal == nil {
			fatal = err // setup failure, not a per-trial one
		}
	}
	if fatal != nil {
		return rows, fatal
	}
	if len(terrs) > 0 {
		return rows, terrs
	}
	return rows, nil
}

// exitSweep reports a sweep's aggregated trial failures and exits non-zero
// if any trial (or the setup itself) failed.
func exitSweep(err error) {
	if err == nil {
		return
	}
	var terrs core.TrialErrors
	if errors.As(err, &terrs) {
		fmt.Fprintf(os.Stderr, "failures: %d trial(s) failed:\n", len(terrs))
		for _, te := range terrs {
			fmt.Fprintf(os.Stderr, "  %s\n", te.Error())
		}
	} else {
		fmt.Fprintf(os.Stderr, "failures: %v\n", err)
	}
	os.Exit(1)
}
