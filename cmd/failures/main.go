// Command failures runs the §7 "Impact of failures" study the paper leaves
// as future work: it sweeps random link-failure fractions on a flat fabric
// and reports path dilation, surviving Shortest-Union(K) path diversity,
// BGP reconvergence rounds (incremental, from the pre-failure RIB), and
// tail FCT on the degraded fabric.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"strings"

	"spineless/internal/core"
	"spineless/internal/resilience"
	"spineless/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("failures: ")
	var (
		topoKind  = flag.String("topo", "dring", "fabric: dring or rrg")
		m         = flag.Int("supernodes", 8, "dring supernodes")
		n         = flag.Int("tors", 2, "dring ToRs per supernode")
		ports     = flag.Int("ports", 24, "switch radix")
		k         = flag.Int("k", 2, "Shortest-Union K")
		fractions = flag.String("fractions", "0,0.01,0.05,0.10", "comma-separated link-failure fractions")
		flows     = flag.Int("flows", 300, "uniform-workload flows for FCT replay (0 = skip)")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var g *topology.Graph
	var err error
	switch *topoKind {
	case "dring":
		g, err = topology.DRing(topology.Uniform(*m, *n, *ports))
	case "rrg":
		dr, derr := topology.DRing(topology.Uniform(*m, *n, *ports))
		if derr != nil {
			log.Fatal(derr)
		}
		g, err = core.MatchedRRG(dr, rand.New(rand.NewSource(*seed)))
	default:
		log.Fatalf("unknown topology %q", *topoKind)
	}
	if err != nil {
		log.Fatal(err)
	}

	cfg := resilience.DefaultStudyConfig()
	cfg.K = *k
	cfg.Flows = *flows
	cfg.Seed = *seed
	cfg.Fractions = nil
	for _, f := range strings.Split(*fractions, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			log.Fatalf("bad fraction %q", f)
		}
		cfg.Fractions = append(cfg.Fractions, v)
	}

	fmt.Printf("fabric: %v, Shortest-Union(%d), seed=%d\n\n", g, *k, *seed)
	rows, err := resilience.Study(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(resilience.Table(rows))
	fmt.Println("reconv rounds = synchronous BGP rounds to re-settle from the pre-failure RIB.")
}
