// Command fig5 regenerates Figure 5 of "Spineless Data Centers": heatmaps
// of throughput(DRing)/throughput(leaf-spine) across the C-S model, for
// small and large C/S values and for both ECMP and Shortest-Union(2)
// routing (four panels), using the max-min fair flow-level model with
// long-running flows (§6.2).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"spineless/internal/audit"
	"spineless/internal/core"
	"spineless/internal/flowsim"
	"spineless/internal/memo"
	"spineless/internal/metrics"
	"spineless/internal/netsim"
	"spineless/internal/prof"
	"spineless/internal/viz"
	"spineless/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fig5: ")
	var (
		paper    = flag.Bool("paper", false, "full-scale §5.1 fabrics (C,S up to 1400 as in the paper)")
		scale    = flag.Int("scale", 4, "scale-down factor for the default run")
		seed     = flag.Int64("seed", 1, "random seed")
		density  = flag.Int("flows", 2, "long-running flows per host (sampling density)")
		csv      = flag.Bool("csv", false, "emit CSV instead of ASCII heatmaps")
		doAudit  = flag.Bool("audit", false, "cross-validate the flow-level model against netsim and the fluid bound first (violations abort)")
		svgOut   = flag.String("svg", "", "write fig5a..fig5d SVG heatmaps into this directory")
		workers  = flag.Int("workers", 0, "parallel workers per heatmap (0 = one per CPU); results are identical at any value")
		shards   = flag.Int("shards", 0, "intra-run netsim shards for the -audit differential's packet leg (0 = serial engine under the invariant auditor)")
		storeDir = flag.String("store", "", "content-addressed result cache directory; repeated runs reuse per-panel heatmaps")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()
	if *svgOut != "" {
		if err := os.MkdirAll(*svgOut, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(*seed))
	var fs *core.FabricSet
	if *paper {
		fs, err = core.PaperFabrics(rng)
	} else {
		fs, err = core.ScaledFabrics(*scale, rng)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fabrics: %v vs %v (seed=%d)\n\n", fs.DRing, fs.LeafSpine, *seed)

	if *doAudit {
		// Figure 5 is computed entirely in the flow-level model, so its
		// audit is differential: on each fabric × scheme the heatmap uses,
		// check netsim (under the invariant auditor), flowsim, and the
		// fluid FPTAS bound agree on a shared workload within the declared
		// tolerance bands.
		if err := auditModels(fs, *shards); err != nil {
			log.Fatal(err)
		}
		log.Printf("audit: netsim/flowsim/fluid agree on every fabric × scheme combination")
	}

	// Tick grids: the paper sweeps 20..260 (small) and 200..1400 (large) at
	// full scale; scaled runs shrink proportionally to the server count.
	// C and S must pack into disjoint rack sets, so their sum stays below
	// the host count with rack-granularity slack (the paper's 1400+1400
	// against 2988 servers leaves the same margin).
	hostCap := min(fs.DRing.Servers(), fs.LeafSpine.Servers())
	small := gridTicks(hostCap/150+1, hostCap/12, 5)
	large := gridTicks(hostCap/15, hostCap*45/100, 5)

	cfg := core.DefaultThroughputConfig()
	cfg.Seed = *seed
	cfg.FlowsPerHost = *density
	cfg.Workers = *workers

	cache, err := memo.Open(*storeDir, "fig5", log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()

	panels := []struct {
		name   string
		file   string
		scheme string
		ticks  []int
	}{
		{"(a) small values, ECMP", "fig5a.svg", "ecmp", small},
		{"(b) small values, shortest-union(2)", "fig5b.svg", "su2", small},
		{"(c) large values, ECMP", "fig5c.svg", "ecmp", large},
		{"(d) large values, shortest-union(2)", "fig5d.svg", "su2", large},
	}
	for _, p := range panels {
		dr, err := core.NewCombo("DRing", fs.DRing, p.scheme)
		if err != nil {
			log.Fatal(err)
		}
		ls, err := core.NewCombo("leaf-spine", fs.LeafSpine, "ecmp")
		if err != nil {
			log.Fatal(err)
		}
		spec := fig5Panel{
			V: 1, Paper: *paper, Scale: *scale, Scheme: p.scheme,
			Ticks: p.ticks, Seed: *seed, FlowsPerHost: *density,
		}
		h, err := memo.Do(cache, p.name, spec, func() (*metrics.Heatmap, error) {
			return core.CSRatioHeatmap(dr, ls, p.ticks, p.ticks, cfg)
		})
		if err != nil {
			log.Fatal(err)
		}
		h.Title = fmt.Sprintf("%s — throughput(DRing %s)/throughput(leaf-spine ecmp)", p.name, p.scheme)
		if *csv {
			fmt.Printf("# %s\n%s\n", h.Title, h.CSV())
		} else {
			fmt.Println(h.String())
		}
		if *svgOut != "" {
			svg, err := viz.HeatmapSVG(h.Title, h.XLabel, h.YLabel, h.XTicks, h.YTicks, h.Cells)
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(*svgOut, p.file), []byte(svg), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *svgOut != "" {
		log.Printf("wrote fig5a..d SVGs to %s", *svgOut)
	}
}

// auditModels runs the differential harness on every fabric × scheme
// combination the heatmaps use, with a simultaneous-start, equal-size
// workload spanning both host halves. shards > 0 runs the packet leg on
// the sharded engine, turning the tolerance bands into a cross-engine
// physics check.
func auditModels(fs *core.FabricSet, shards int) error {
	combos := []struct{ label, scheme string }{
		{"DRing", "ecmp"}, {"DRing", "su2"}, {"leaf-spine", "ecmp"},
	}
	for _, c := range combos {
		fabric := fs.DRing
		if c.label == "leaf-spine" {
			fabric = fs.LeafSpine
		}
		combo, err := core.NewCombo(c.label, fabric, c.scheme)
		if err != nil {
			return err
		}
		half := fabric.Servers() / 2
		n := min(2*half, 48)
		flows := make([]workload.Flow, n)
		for i := range flows {
			flows[i] = workload.Flow{
				ID: uint64(i), Src: i % half, Dst: half + (i+1)%half, SizeBytes: 300e3,
			}
		}
		rep, err := audit.Differential(fabric, combo.Scheme, flows, audit.DiffConfig{
			Net:    netsim.DefaultConfig(),
			Link:   flowsim.DefaultConfig(),
			Shards: shards,
		})
		if err != nil {
			return fmt.Errorf("audit %s × %s: %w", c.label, c.scheme, err)
		}
		if err := rep.Err(); err != nil {
			return fmt.Errorf("audit %s × %s: %w", c.label, c.scheme, err)
		}
		log.Printf("audit %s × %s: netsim %.2f Gbps, flowsim %.2f Gbps, fluid λ %.2f Gbps/flow",
			c.label, c.scheme, rep.NetsimBps/1e9, rep.FlowsimBps/1e9, rep.FluidLambdaBps/1e9)
	}
	return nil
}

// fig5Panel is the cache key for one heatmap panel: everything the panel
// depends on (fabric scale, routing scheme, tick grid, seed, sampling
// density) and nothing result-neutral (workers, audit, output format).
type fig5Panel struct {
	V            int    `json:"v"`
	Paper        bool   `json:"paper,omitempty"`
	Scale        int    `json:"scale,omitempty"`
	Scheme       string `json:"scheme"`
	Ticks        []int  `json:"ticks"`
	Seed         int64  `json:"seed"`
	FlowsPerHost int    `json:"flows_per_host"`
}

// gridTicks returns n evenly spaced integers in [lo, hi].
func gridTicks(lo, hi, n int) []int {
	if lo < 1 {
		lo = 1
	}
	if hi <= lo {
		hi = lo + n
	}
	out := make([]int, n)
	for i := range out {
		out[i] = lo + (hi-lo)*i/(n-1)
	}
	return out
}
