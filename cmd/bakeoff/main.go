// Command bakeoff races the flat-topology field — DRing, RRG, Xpander,
// De Bruijn and the AWS-style random neighbor graph — on one equipment
// budget and prints the ranked scorecard: UDF, median/p99 FCT, per-class
// SLA attainment, max-min throughput and live fault resilience per
// (fabric, routing scheme) cell, with per-metric winners and a spec hash
// that reproduces every byte.
//
// The default -scalex 2 runs at twice the paper's §6.3 scale (160 ToRs).
// -smoke runs the whole matrix at paper scale with a tiny workload and
// verifies the subsystem's contracts: byte-identical scorecards on 1 and 2
// netsim shards, no non-finite numbers, and a serial audited De Bruijn
// self-routing run — the gate wired into `make check` and CI.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"spineless/internal/bakeoff"
	"spineless/internal/prof"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bakeoff: ")
	var (
		scalex    = flag.Int("scalex", 2, "scale multiplier on the paper's §6.3 geometry (80 ToRs, 12 supernodes per unit)")
		ports     = flag.Int("ports", 64, "switch radix")
		topos     = flag.String("topos", "", "comma-separated fabric subset (default: all of dring,rrg,xpander,debruijn,rng)")
		schemes   = flag.String("schemes", "", "comma-separated routing schemes for every fabric (default: su2 everywhere plus each fabric's native scheme)")
		util      = flag.Float64("util", 0.30, "offered load as a fraction of half the aggregate server bandwidth")
		window    = flag.Float64("window", 0.004, "flow arrival window, seconds")
		maxflows  = flag.Int("maxflows", 5000, "cap on FCT flows per cell (0 = uncapped)")
		trials    = flag.Int("trials", 0, "independently seeded FCT arrival windows pooled per cell (0 or 1 = single window)")
		maxpairs  = flag.Int("maxpairs", 512, "cap on long flows in the throughput cell (0 = one per server)")
		liveflows = flag.Int("liveflows", 0, "flows in the resilience cell (0 = resilience default)")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "parallel cell workers (0 = one per CPU); results are identical at any value")
		shards    = flag.Int("shards", 0, "intra-cell netsim shards (0 = serial engine); results are identical at any count >= 1, incompatible with -audit")
		doAudit   = flag.Bool("audit", false, "run every packet simulation under the runtime invariant auditor (violations abort; needs the serial engine)")
		storeDir  = flag.String("store", "", "content-addressed result cache directory; repeated runs reuse finished cells")
		csvOut    = flag.String("csv", "", "write the scorecard CSV to this file")
		smoke     = flag.Bool("smoke", false, "run the CI smoke gate (tiny matrix; verifies shard invariance, completeness and an audited self-routing run) and exit")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	if *smoke {
		runSmoke()
		return
	}

	cfg := bakeoff.Scaled(*scalex)
	cfg.Ports = *ports
	cfg.Topos = splitList(*topos)
	cfg.Schemes = splitList(*schemes)
	cfg.Util = *util
	cfg.WindowSec = *window
	cfg.MaxFlows = *maxflows
	cfg.Trials = *trials
	cfg.MaxPairs = *maxpairs
	cfg.LiveFlows = *liveflows
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Shards = *shards
	cfg.Audit = *doAudit
	cfg.StoreDir = *storeDir
	cfg.Logf = log.Printf
	if *doAudit {
		log.Printf("invariant auditing enabled: any conservation/FIFO/TCP violation aborts the run")
	}

	start := time.Now()
	sc, err := bakeoff.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%d cells done in %v", len(sc.Cells), time.Since(start).Round(time.Millisecond))
	fmt.Print(sc.Table())
	if err := sc.CheckComplete(); err != nil {
		log.Fatal(err)
	}
	if *csvOut != "" {
		if err := os.WriteFile(*csvOut, []byte(sc.CSV()), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *csvOut)
	}
}

// runSmoke is the CI gate: the full five-fabric matrix at paper scale with
// a tiny workload, checked for shard invariance and completeness, plus a
// serial audited De Bruijn self-routing cell.
func runSmoke() {
	cfg := bakeoff.Scaled(1)
	cfg.Util = 0.2
	cfg.WindowSec = 0.002
	cfg.MaxFlows = 200
	cfg.MaxPairs = 64
	cfg.LiveFlows = 120

	start := time.Now()
	cfg.Shards = 1
	one, err := bakeoff.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Shards = 2
	two, err := bakeoff.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if one.Table() != two.Table() || one.CSV() != two.CSV() {
		log.Fatal("smoke: scorecard differs between -shards 1 and -shards 2")
	}
	if err := one.CheckComplete(); err != nil {
		log.Fatalf("smoke: %v", err)
	}
	if len(one.Cells) != 7 {
		log.Fatalf("smoke: want 7 cells (5 fabrics + 2 native schemes), got %d", len(one.Cells))
	}

	// De Bruijn self-routing under the runtime invariant auditor, serial
	// engine: shift-register routing with no FIB must be audit-clean.
	cfg.Shards = 0
	cfg.Audit = true
	cfg.Topos = []string{"debruijn"}
	cfg.Schemes = []string{"selfroute"}
	if _, err := bakeoff.Run(cfg); err != nil {
		log.Fatalf("smoke: audited self-routing run: %v", err)
	}

	fmt.Print(one.Table())
	fmt.Printf("smoke OK: %d cells byte-identical across shard counts, audited self-routing clean (%v)\n",
		len(one.Cells), time.Since(start).Round(time.Millisecond))
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
