// Command benchjson converts `go test -bench -benchmem` text output into a
// machine-readable JSON record, so benchmark baselines can be committed
// (BENCH_<pr>.json) and diffed across PRs. It reads the benchmark text from
// a file argument or stdin and annotates the record with the host shape the
// numbers were measured on — ns/op from a 1-core container and a 16-core
// workstation are not comparable, and the record must say which it was.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the committed benchmark baseline.
type Report struct {
	PR         int     `json:"pr"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	CPUs       int     `json:"cpus"`
	Benchmarks []Bench `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	pr := flag.Int("pr", 0, "PR number recorded in the baseline")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}

	rep := Report{
		PR:        *pr,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		b, ok := parseLine(sc.Text())
		if ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found in input")
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		fmt.Print(string(enc))
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d benchmarks to %s", len(rep.Benchmarks), *out)
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkNetsimEvents-8   500   2807038 ns/op   293160 B/op   2178 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped from the name. Lines without the
// Benchmark prefix (headers, PASS, ok) return ok=false.
func parseLine(line string) (Bench, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Bench{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: name, Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	if b.NsPerOp <= 0 {
		return Bench{}, false
	}
	return b, true
}
