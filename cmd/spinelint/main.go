// Command spinelint runs the reproduction's custom invariant checkers over
// Go packages: determinism contracts for the simulator packages, stable
// iteration order, library-safe error handling, and the bug classes this
// tree has hit before (see internal/lint and DESIGN.md §"Invariants").
//
// Usage:
//
//	spinelint [-list] [-checks id,id,...] [packages]
//
// Packages default to ./... . Exit status is 1 if any finding is reported,
// 2 on load errors. Suppress a single finding with a trailing or preceding
// //lint:allow <check> comment.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"spineless/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list available checks and exit")
	checks := flag.String("checks", "", "comma-separated check IDs to run (default: all)")
	flag.Parse()

	checkers := lint.DefaultCheckers()
	if *list {
		for _, c := range checkers {
			fmt.Printf("%-14s %s\n", c.Name(), c.Doc())
		}
		return
	}
	if *checks != "" {
		want := make(map[string]bool)
		for _, id := range strings.Split(*checks, ",") {
			want[strings.TrimSpace(id)] = true
		}
		var kept []lint.Checker
		for _, c := range checkers {
			if want[c.Name()] {
				kept = append(kept, c)
				delete(want, c.Name())
			}
		}
		if len(want) > 0 {
			unknown := make([]string, 0, len(want))
			for id := range want {
				unknown = append(unknown, id)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "spinelint: unknown checks %s (see -list)\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
		checkers = kept
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset, pkgs, err := lint.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spinelint:", err)
		os.Exit(2)
	}
	bad := false
	for _, p := range pkgs {
		pass := &lint.Pass{
			Fset:       fset,
			ImportPath: p.ImportPath,
			Files:      p.Files,
			Pkg:        p.Pkg,
			Info:       p.Info,
		}
		for _, f := range lint.Run(pass, checkers) {
			fmt.Println(f)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}
