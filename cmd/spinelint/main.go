// Command spinelint runs the reproduction's custom invariant checkers over
// Go packages: determinism contracts for the simulator packages, stable
// iteration order, library-safe error handling, and the bug classes this
// tree has hit before (see internal/lint and DESIGN.md §"Invariants").
//
// Per-package checkers run on each package independently; the whole-program
// checkers (detflow, hotpath) build a cross-package call graph over every
// loaded package first, so taint can follow a value through helper layers
// and package boundaries.
//
// Usage:
//
//	spinelint [-list] [-checks id,id,...] [-format text|json] [packages]
//
// Packages default to ./... . Exit status is 1 if any finding is reported,
// 2 on load errors. Suppress a single finding with a trailing or preceding
// //lint:allow <check> comment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"spineless/internal/lint"
)

// jsonFinding is the -format=json wire shape, consumed by the CI
// problem-matcher (.github/spinelint-problem-matcher.json).
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list available checks and exit")
	checks := flag.String("checks", "", "comma-separated check IDs to run (default: all)")
	format := flag.String("format", "text", "output format: text or json")
	flag.Parse()

	checkers := lint.DefaultCheckers()
	progCheckers := lint.DefaultProgramCheckers()
	if *list {
		for _, c := range checkers {
			fmt.Printf("%-14s %s\n", c.Name(), c.Doc())
		}
		for _, c := range progCheckers {
			fmt.Printf("%-14s %s\n", c.Name(), c.Doc())
		}
		return
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "spinelint: unknown -format %q (want text or json)\n", *format)
		os.Exit(2)
	}
	if *checks != "" {
		want := make(map[string]bool)
		for _, id := range strings.Split(*checks, ",") {
			want[strings.TrimSpace(id)] = true
		}
		var kept []lint.Checker
		for _, c := range checkers {
			if want[c.Name()] {
				kept = append(kept, c)
				delete(want, c.Name())
			}
		}
		var keptProg []lint.ProgramChecker
		for _, c := range progCheckers {
			if want[c.Name()] {
				keptProg = append(keptProg, c)
				delete(want, c.Name())
			}
		}
		if len(want) > 0 {
			unknown := make([]string, 0, len(want))
			for id := range want {
				unknown = append(unknown, id)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "spinelint: unknown checks %s (see -list)\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
		checkers, progCheckers = kept, keptProg
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset, pkgs, err := lint.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spinelint:", err)
		os.Exit(2)
	}
	prog := lint.NewProgram(fset, pkgs)
	findings := prog.Run(checkers, progCheckers)

	switch *format {
	case "json":
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:    f.Pos.Filename,
				Line:    f.Pos.Line,
				Col:     f.Pos.Column,
				Check:   f.Check,
				Message: f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "spinelint:", err)
			os.Exit(2)
		}
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
