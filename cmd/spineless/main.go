// Command spineless is the general driver for the reproduction: it
// inspects topologies (§5.1), reports the flatness analysis (§3.1), and
// dumps path sets under the routing schemes (§4).
//
// Subcommands:
//
//	spineless topo    [-paper] [-scale N] [-dot dir]          fabric inventory + path stats
//	spineless udf     [-x N -y N]                             §3.1 NSR/UDF table
//	spineless paths   [-scheme ...] -src A -dst B             admissible path sets
//	spineless cabling [-paper]                                §1 wiring & lifecycle comparison
//	spineless fct     [-fabric ...] [-tm KIND|@file.csv]      ad-hoc FCT experiment
//	spineless burst   [-mb N] [-fanout N]                     §3 microburst drain
//	spineless jobclass [-fabric ...] [-trials N]              Poisson job-class mix + SLA + telemetry
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"spineless/internal/core"
	"spineless/internal/metrics"
	"spineless/internal/netsim"
	"spineless/internal/routing"
	"spineless/internal/telemetry"
	"spineless/internal/topology"
	"spineless/internal/trace"
	"spineless/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spineless: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "topo":
		cmdTopo(os.Args[2:])
	case "udf":
		cmdUDF(os.Args[2:])
	case "paths":
		cmdPaths(os.Args[2:])
	case "cabling":
		cmdCabling(os.Args[2:])
	case "fct":
		cmdFCT(os.Args[2:])
	case "burst":
		cmdBurst(os.Args[2:])
	case "jobclass":
		cmdJobClass(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: spineless {topo|udf|paths|cabling|fct|burst|jobclass} [flags]")
	os.Exit(2)
}

// cmdJobClass runs the Poisson-arrival job-class workload — the
// training/batch/latency tiers a flat fabric multiplexes onto one layer —
// with a classed telemetry recorder attached, and reports per-class FCT
// percentiles, SLA attainment, and the twin's per-class goodput totals.
func cmdJobClass(args []string) {
	fl := flag.NewFlagSet("jobclass", flag.ExitOnError)
	fabric := fl.String("fabric", "dring", "fabric: dring, rrg, or leafspine (from the scaled trio)")
	scheme := fl.String("scheme", "su2", "routing: ecmp, suK, kspK, vlb")
	scale := fl.Int("scale", 4, "scale-down factor")
	paper := fl.Bool("paper", false, "full-scale §5.1 fabrics")
	window := fl.Float64("window", 0.005, "arrival window, seconds")
	util := fl.Float64("util", 0.3, "offered load fraction")
	seed := fl.Int64("seed", 1, "random seed")
	maxFlows := fl.Int("maxflows", 0, "expected flow cap (0 = derived from util)")
	trials := fl.Int("trials", 1, "independently seeded arrival windows pooled into one result")
	workers := fl.Int("workers", 0, "parallel trial workers (0 = one per CPU); results are identical at any value")
	_ = fl.Parse(args)

	rng := rand.New(rand.NewSource(*seed))
	var fs *core.FabricSet
	var err error
	if *paper {
		fs, err = core.PaperFabrics(rng)
	} else {
		fs, err = core.ScaledFabrics(*scale, rng)
	}
	if err != nil {
		log.Fatal(err)
	}
	var g *topology.Graph
	switch *fabric {
	case "dring":
		g = fs.DRing
	case "rrg":
		g = fs.RRG
	case "leafspine":
		g = fs.LeafSpine
	default:
		log.Fatalf("unknown fabric %q", *fabric)
	}
	combo, err := core.NewCombo(*fabric+" "+*scheme, g, *scheme)
	if err != nil {
		log.Fatal(err)
	}
	classes := workload.ThreeTier()
	cfg := core.DefaultFCTConfig()
	cfg.WindowSec = *window
	cfg.Util = *util
	cfg.Seed = *seed
	cfg.MaxFlows = *maxFlows
	cfg.Trials = *trials
	cfg.Workers = *workers
	cfg.JobClasses = classes
	rec := telemetry.NewRecorder(telemetry.Config{Classes: len(classes)})
	cfg.Telemetry = rec

	res, err := core.RunFCT(fs, combo, core.TMA2A, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %v: Poisson job-class mix, %d flows over %d trial(s)\n\n",
		combo.Scheme.Name(), g, res.Flows, *trials)
	fmt.Println(workload.ClassTable(res.Classes))
	fmt.Println("SLA attained counts incomplete flows as misses.")
	fmt.Println()
	fmt.Print(rec.Snapshot().Digest(5))
}

// cmdFCT runs an ad-hoc FCT experiment: any built-in workload, or an
// operator-supplied rack-level matrix CSV (see internal/trace), on any
// fabric × scheme combo.
func cmdFCT(args []string) {
	fl := flag.NewFlagSet("fct", flag.ExitOnError)
	fabric := fl.String("fabric", "dring", "fabric: dring, rrg, or leafspine (from the scaled trio)")
	scheme := fl.String("scheme", "su2", "routing: ecmp, suK, kspK, vlb")
	tmKind := fl.String("tm", "A2A", "workload kind (A2A, R2R, CS-skewed, FB-skewed, ...) or @file.csv for a matrix")
	scale := fl.Int("scale", 4, "scale-down factor")
	paper := fl.Bool("paper", false, "full-scale §5.1 fabrics")
	window := fl.Float64("window", 0.005, "arrival window, seconds")
	util := fl.Float64("util", 0.3, "offered load fraction")
	seed := fl.Int64("seed", 1, "random seed")
	maxFlows := fl.Int("maxflows", 0, "flow cap (0 = uncapped)")
	trials := fl.Int("trials", 1, "independently seeded arrival windows pooled into one result")
	workers := fl.Int("workers", 0, "parallel trial workers (0 = one per CPU); results are identical at any value")
	dctcp := fl.Bool("dctcp", false, "use DCTCP-style ECN transport instead of plain TCP")
	_ = fl.Parse(args)

	rng := rand.New(rand.NewSource(*seed))
	var fs *core.FabricSet
	var err error
	if *paper {
		fs, err = core.PaperFabrics(rng)
	} else {
		fs, err = core.ScaledFabrics(*scale, rng)
	}
	if err != nil {
		log.Fatal(err)
	}
	var g *topology.Graph
	switch *fabric {
	case "dring":
		g = fs.DRing
	case "rrg":
		g = fs.RRG
	case "leafspine":
		g = fs.LeafSpine
	default:
		log.Fatalf("unknown fabric %q", *fabric)
	}
	combo, err := core.NewCombo(*fabric+" "+*scheme, g, *scheme)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultFCTConfig()
	cfg.WindowSec = *window
	cfg.Util = *util
	cfg.Seed = *seed
	cfg.MaxFlows = *maxFlows
	cfg.Trials = *trials
	cfg.Workers = *workers
	if *dctcp {
		cfg.Net = cfg.Net.WithDCTCP()
	}

	var res core.FCTResult
	if strings.HasPrefix(*tmKind, "@") {
		f, err := os.Open(strings.TrimPrefix(*tmKind, "@"))
		if err != nil {
			log.Fatal(err)
		}
		m, err := trace.ReadMatrix(f, *tmKind)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		res, err = core.RunFCTMatrix(fs, combo, m, cfg)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		res, err = core.RunFCT(fs, combo, core.TMKind(*tmKind), cfg)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%s on %v, workload %s: %d flows\n", combo.Scheme.Name(), g, *tmKind, res.Flows)
	fmt.Printf("median %.3f ms, p99 %.3f ms, mean %.3f ms, max %.3f ms (%d incomplete)\n",
		res.Stats.MedianMS, res.Stats.P99MS, res.Stats.MeanMS, res.Stats.MaxMS, res.Stats.Incomplete)
	fmt.Printf("sim: %+v\n", res.SimStats)
}

// cmdBurst runs the §3 microburst drain experiment across the trio.
func cmdBurst(args []string) {
	fl := flag.NewFlagSet("burst", flag.ExitOnError)
	scale := fl.Int("scale", 4, "scale-down factor")
	paper := fl.Bool("paper", false, "full-scale §5.1 fabrics")
	mb := fl.Int64("mb", 32, "burst volume, MiB")
	fanout := fl.Int("fanout", 6, "destination racks")
	fpd := fl.Int("flows-per-dest", 6, "parallel flows per destination rack (the §3 claim needs moderate multiplexing: enough flows to balance links, few enough that TCP can open its window)")
	dctcp := fl.Bool("dctcp", false, "DCTCP-style ECN transport (keeps queues controlled so the fabric, not loss recovery, is the bottleneck)")
	seed := fl.Int64("seed", 1, "random seed")
	_ = fl.Parse(args)

	rng := rand.New(rand.NewSource(*seed))
	var fs *core.FabricSet
	var err error
	if *paper {
		fs, err = core.PaperFabrics(rng)
	} else {
		fs, err = core.ScaledFabrics(*scale, rng)
	}
	if err != nil {
		log.Fatal(err)
	}
	spec := workload.DefaultBurst()
	spec.BurstBytes = *mb << 20
	spec.Fanout = *fanout
	spec.FlowsPerDest = *fpd
	net := netsim.DefaultConfig()
	if *dctcp {
		net = net.WithDCTCP()
	}

	fmt.Printf("microburst: %d MiB from one rack to %d racks (§3)\n\n", *mb, *fanout)
	var t metrics.Table
	t.AddRow("combo", "drain (ms)", "burst p99 (ms)", "drops")
	for _, c := range []struct{ label, fabric, scheme string }{
		{"leaf-spine (ecmp)", "ls", "ecmp"},
		{"RRG (su2)", "rrg", "su2"},
		{"DRing (su2)", "dr", "su2"},
	} {
		var g *topology.Graph
		switch c.fabric {
		case "ls":
			g = fs.LeafSpine
		case "rrg":
			g = fs.RRG
		case "dr":
			g = fs.DRing
		}
		combo, err := core.NewCombo(c.label, g, c.scheme)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.RunBurst(combo, spec, net, *seed)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(c.label,
			fmt.Sprintf("%.2f", res.DrainMS),
			fmt.Sprintf("%.2f", res.BurstP99MS),
			fmt.Sprintf("%d", res.Stats.Drops))
	}
	fmt.Println(t.String())
	fmt.Println("flat ToRs evacuate the burst over all their network links (§3).")
}

// cmdCabling compares physical wiring and lifecycle complexity across the
// equipment-matched trio — the §1 deployment concern (wiring complexity
// blocked expander adoption) made measurable.
func cmdCabling(args []string) {
	fl := flag.NewFlagSet("cabling", flag.ExitOnError)
	paper := fl.Bool("paper", false, "full-scale §5.1 fabrics")
	scale := fl.Int("scale", 2, "scale-down factor")
	seed := fl.Int64("seed", 1, "random seed")
	_ = fl.Parse(args)

	rng := rand.New(rand.NewSource(*seed))
	var fs *core.FabricSet
	var err error
	if *paper {
		fs, err = core.PaperFabrics(rng)
	} else {
		fs, err = core.ScaledFabrics(*scale, rng)
	}
	if err != nil {
		log.Fatal(err)
	}
	group := fs.DRingSpec.Sizes[0]
	type row struct {
		g *topology.Graph
		p topology.Placement
	}
	rows := []row{
		{fs.LeafSpine, topology.LeafSpinePlacement(fs.LeafSpineSpec)},
		{fs.RRG, topology.RowPlacement(fs.RRG)},
		{fs.DRing, topology.RowPlacement(fs.DRing)},
	}
	var t metrics.Table
	t.AddRow("fabric", "links", "mean len", "max len", "long-haul", "trunks", "max trunk", "roles")
	for _, r := range rows {
		rep, err := topology.Cabling(r.g, r.p)
		if err != nil {
			log.Fatal(err)
		}
		trunks, maxTrunk, err := topology.GroupedBundles(r.g, r.p, group)
		if err != nil {
			log.Fatal(err)
		}
		life := topology.Lifecycle(r.g)
		t.AddRow(r.g.Name,
			fmt.Sprintf("%d", rep.Links),
			fmt.Sprintf("%.2f", rep.MeanLength),
			fmt.Sprintf("%d", rep.MaxLength),
			fmt.Sprintf("%d", rep.LongHaul),
			fmt.Sprintf("%d", trunks),
			fmt.Sprintf("%d", maxTrunk),
			fmt.Sprintf("%d", life.SwitchRoles),
		)
	}
	fmt.Printf("rack-row layout, trunking at supernode width %d (§1 wiring complexity)\n\n", group)
	fmt.Println(t.String())
	if life, err := topology.LifecycleDRing(fs.DRingSpec); err == nil {
		fmt.Printf("DRing expansion touches %d pre-existing switches per added supernode (seam-local).\n", life.ExpansionUnit)
	}
}

func cmdTopo(args []string) {
	fl := flag.NewFlagSet("topo", flag.ExitOnError)
	paper := fl.Bool("paper", false, "full-scale §5.1 fabrics")
	scale := fl.Int("scale", 4, "scale-down factor")
	seed := fl.Int64("seed", 1, "random seed")
	trials := fl.Int("bisection-trials", 4, "random bisection samples (0 = skip)")
	dot := fl.String("dot", "", "also write Graphviz DOT files for the trio into this directory")
	_ = fl.Parse(args)

	rng := rand.New(rand.NewSource(*seed))
	var fs *core.FabricSet
	var err error
	if *paper {
		fs, err = core.PaperFabrics(rng)
	} else {
		fs, err = core.ScaledFabrics(*scale, rng)
	}
	if err != nil {
		log.Fatal(err)
	}
	var t metrics.Table
	t.AddRow("fabric", "switches", "racks", "servers", "links", "diameter", "mean path", "NSR", "bisection(est)")
	for _, g := range []*topology.Graph{fs.LeafSpine, fs.RRG, fs.DRing} {
		st, err := topology.RackPathStats(g)
		if err != nil {
			log.Fatal(err)
		}
		nsr, err := topology.NSR(g)
		if err != nil {
			log.Fatal(err)
		}
		bis := "-"
		if *trials > 0 {
			bis = fmt.Sprintf("%d", topology.BisectionEstimate(g, *trials, rng))
		}
		t.AddRow(g.Name,
			fmt.Sprintf("%d", g.N()),
			fmt.Sprintf("%d", len(g.Racks())),
			fmt.Sprintf("%d", g.Servers()),
			fmt.Sprintf("%d", g.Links()),
			fmt.Sprintf("%d", st.Diameter),
			fmt.Sprintf("%.3f", st.Mean),
			fmt.Sprintf("%.3f", nsr.Mean),
			bis,
		)
	}
	fmt.Println(t.String())
	if *dot != "" {
		if err := os.MkdirAll(*dot, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, g := range []*topology.Graph{fs.LeafSpine, fs.RRG, fs.DRing} {
			f, err := os.Create(filepath.Join(*dot, sanitizeName(g.Name)+".dot"))
			if err != nil {
				log.Fatal(err)
			}
			if err := topology.WriteDOT(f, g); err != nil {
				log.Fatal(err)
			}
			f.Close()
		}
		fmt.Printf("wrote DOT files to %s\n", *dot)
	}
}

func sanitizeName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func cmdUDF(args []string) {
	fl := flag.NewFlagSet("udf", flag.ExitOnError)
	x := fl.Int("x", 48, "servers per leaf")
	y := fl.Int("y", 16, "spines")
	seed := fl.Int64("seed", 1, "random seed")
	_ = fl.Parse(args)

	specs := []topology.LeafSpineSpec{
		{X: *x, Y: *y},
		{X: *x / 2, Y: *y / 2},
		{X: *x, Y: *y / 2},
		{X: *x / 2, Y: *y},
	}
	var valid []topology.LeafSpineSpec
	for _, s := range specs {
		if s.Validate() == nil {
			valid = append(valid, s)
		}
	}
	rows, err := core.UDFStudy(valid, rand.New(rand.NewSource(*seed)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("§3.1: UDF(leaf-spine) = 2 for every (x, y); flat rewirings measured below.")
	fmt.Println(core.UDFTable(rows))
}

func cmdPaths(args []string) {
	fl := flag.NewFlagSet("paths", flag.ExitOnError)
	m := fl.Int("supernodes", 6, "dring supernodes")
	n := fl.Int("tors", 2, "dring ToRs per supernode")
	ports := fl.Int("ports", 24, "switch radix")
	scheme := fl.String("scheme", "su2", "routing scheme: ecmp, suK, kspK, vlb")
	src := fl.Int("src", 0, "source ToR")
	dst := fl.Int("dst", 1, "destination ToR")
	maxN := fl.Int("max", 20, "max paths to print")
	_ = fl.Parse(args)

	g, err := topology.DRing(topology.Uniform(*m, *n, *ports))
	if err != nil {
		log.Fatal(err)
	}
	combo, err := core.NewCombo("cli", g, *scheme)
	if err != nil {
		log.Fatal(err)
	}
	paths := combo.Scheme.PathSet(*src, *dst, *maxN)
	fmt.Printf("%s on %v: %d admissible path(s) %d→%d (showing ≤%d)\n",
		combo.Scheme.Name(), g, len(paths), *src, *dst, *maxN)
	for _, p := range paths {
		fmt.Printf("  %v (%d hops)\n", p, routing.PathLen(p))
	}
	disjoint := routing.GreedyDisjoint(paths)
	fmt.Printf("link-disjoint subset: %d (§4 claims ≥ n+1 = %d for DRing + SU(2))\n",
		len(disjoint), *n+1)
}
