// Command spinelessd serves the spineless experiment engine over HTTP: a
// bounded job queue with singleflight deduplication, NDJSON progress
// streaming, a content-addressed on-disk result cache, and Prometheus text
// metrics. See internal/serve for the API and DESIGN.md §10 for the
// protocol.
//
// SIGINT/SIGTERM trigger a graceful drain: the listener stops accepting,
// queued and running jobs finish (bounded by -drain-timeout, after which
// they are cancelled), the store index is flushed, and the process exits.
//
// -smoke runs a self-contained end-to-end check instead of serving: it
// boots the server on an ephemeral port, submits a tiny telemetry-enabled
// experiment twice through the real HTTP API, streams /v1/telemetry while
// the first run executes (the live twin must show the job's traffic), and
// verifies the second submission is a cache hit whose result bytes are
// identical to the first run's — with no new simulator work.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"spineless/internal/jobs"
	"spineless/internal/serve"
	"spineless/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spinelessd: ")
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		storeDir     = flag.String("store", "", "result store directory (empty = no cache, every job runs fresh)")
		storeMax     = flag.Int64("store-max-bytes", 1<<30, "result store size cap in bytes (0 = uncapped)")
		queueDepth   = flag.Int("queue", 64, "bounded queue depth; submissions beyond it get 503")
		shedDepth    = flag.Int("shed-depth", 48, "admission-control watermark: shed new submissions with 429 once the queue holds this many (0 = off; keep below -queue)")
		maxInflight  = flag.Int("max-inflight", 0, "cap on pending+running distinct specs; beyond it new specs get 429 (0 = uncapped)")
		executors    = flag.Int("jobs", 1, "jobs run concurrently")
		workers      = flag.Int("workers", 0, "trial-level workers per job (0 = one per CPU); never affects results")
		auditEvery   = flag.Int("audit-every", 16, "re-execute every Nth cache hit and verify it matches the stored result (0 = off)")
		heartbeat    = flag.Duration("heartbeat", serve.DefaultHeartbeat, "NDJSON event-stream keepalive comment period")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "max wait for in-flight jobs on shutdown")
		smoke        = flag.Bool("smoke", false, "run the end-to-end self-check and exit")
	)
	flag.Parse()

	if *smoke {
		if err := runSmoke(*workers, nil); err != nil {
			log.Fatal(err)
		}
		fmt.Println("smoke: OK")
		return
	}

	m, err := newManager(*storeDir, *storeMax, jobs.Config{
		QueueDepth:   *queueDepth,
		ShedDepth:    *shedDepth,
		MaxInflight:  *maxInflight,
		Executors:    *executors,
		TrialWorkers: *workers,
		AuditEvery:   *auditEvery,
		Logf:         log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	h := serve.New(m, log.Printf)
	h.Heartbeat = *heartbeat
	srv := &http.Server{Handler: h}
	log.Printf("listening on http://%s (store=%q queue=%d jobs=%d)", ln.Addr(), *storeDir, *queueDepth, *executors)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining jobs (up to %v)", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := m.Drain(shutdownCtx); err != nil {
		log.Printf("drain: %v", err)
		os.Exit(1)
	}
	log.Printf("drained cleanly")
}

func newManager(dir string, maxBytes int64, cfg jobs.Config) (*jobs.Manager, error) {
	var st *store.Store
	if dir != "" {
		var err error
		st, err = store.Open(dir, store.Options{MaxBytes: maxBytes})
		if err != nil {
			return nil, err
		}
	}
	return jobs.New(st, cfg), nil
}

// smokeSpec is the tiny experiment the self-check runs: a scaled-down
// Figure 4 cell small enough to finish in about a second. The first
// submission uses smokeTelemetrySpec — the same spec with live telemetry
// on — so the later plain resubmissions double as an end-to-end check that
// the telemetry flag is hash-exempt (they must hit the first run's cache
// entry).
const smokeSpec = `{"kind":"fct","topo":{"scale":8},"fabric":"rrg","scheme":"ecmp","tm":"A2A","util":0.2,"window_sec":0.002,"seed":1,"max_flows":40,"trials":2}`

var smokeTelemetrySpec = strings.Replace(smokeSpec, `{"kind":"fct"`, `{"kind":"fct","telemetry":true`, 1)

// runSmoke boots a server on an ephemeral port backed by a temp store and
// drives the real HTTP API: submit, wait via the event stream (which runs a
// fast heartbeat so the keepalive protocol is exercised too), fetch the
// result, resubmit twice, and prove the cache is both fast and *honest* —
// same hash, byte-identical result, hit counters incremented, zero new
// simulator events on the first hit, and a sampled re-execution audit on
// the second hit that must report zero mismatches. An audit mismatch is the
// one failure that means the store is lying, so it exits non-zero ahead of
// every other check.
//
// tamper, when non-nil, is called with the store and result hash between
// the first run and the resubmissions — the test hook that proves a
// corrupted entry actually trips the audit exit path.
func runSmoke(workers int, tamper func(st *store.Store, hash string) error) error {
	dir, err := os.MkdirTemp("", "spinelessd-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	// AuditEvery 2: the first cache hit stays audit-free (so the
	// hits-are-free check below sees unchanged sim-event counts), the
	// second takes the sampled re-execution.
	m := jobs.New(st, jobs.Config{
		QueueDepth:   4,
		Executors:    1,
		TrialWorkers: workers,
		AuditEvery:   2,
		Logf:         log.Printf,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	h := serve.New(m, nil)
	h.Heartbeat = 500 * time.Millisecond
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		m.Drain(ctx)
	}()

	c := smokeClient{base: base}
	sub1, err := c.submit(smokeSpec)
	if err != nil {
		return fmt.Errorf("first submit: %w", err)
	}
	if sub1.Cached {
		return errors.New("first submission claims to be cached")
	}
	log.Printf("smoke: submitted %s (hash %.12s), streaming events", sub1.Job, sub1.Hash)
	if err := c.waitDone(sub1.Job); err != nil {
		return err
	}
	res1, err := c.result(sub1.Hash)
	if err != nil {
		return fmt.Errorf("first result: %w", err)
	}
	events1, err := c.simEvents()
	if err != nil {
		return err
	}
	if events1 == 0 {
		return errors.New("first run reports zero simulator events")
	}

	if tamper != nil {
		if err := tamper(st, sub1.Hash); err != nil {
			return fmt.Errorf("tamper hook: %w", err)
		}
	}

	// First resubmission: a cache hit must cost zero simulator work.
	sub2, err := c.submit(smokeSpec)
	if err != nil {
		return fmt.Errorf("resubmit: %w", err)
	}
	if !sub2.Cached {
		return errors.New("resubmission was not served from the cache")
	}
	if sub2.Hash != sub1.Hash {
		return fmt.Errorf("hash changed across identical submissions: %s vs %s", sub1.Hash, sub2.Hash)
	}
	events2, err := c.simEvents()
	if err != nil {
		return err
	}
	if events2 != events1 {
		return fmt.Errorf("cache hit ran the simulator: events %d → %d", events1, events2)
	}

	// Second resubmission draws the sampled audit: a background
	// re-execution of the spec compared byte-for-byte against the store.
	if _, err := c.submit(smokeSpec); err != nil {
		return fmt.Errorf("audited resubmit: %w", err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		audits, err := c.metric("spinelessd_audit_runs_total")
		if err != nil {
			return err
		}
		if audits >= 1 {
			break
		}
		if time.Now().After(deadline) {
			return errors.New("sampled audit never completed")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if bad, err := c.metric("spinelessd_audit_mismatch_total"); err != nil {
		return err
	} else if bad > 0 {
		return fmt.Errorf("audit mismatch: %v cached result(s) differ from re-execution — the result store is not to be trusted", bad)
	}

	res2, err := c.result(sub2.Hash)
	if err != nil {
		return fmt.Errorf("second result: %w", err)
	}
	if string(res1) != string(res2) {
		return errors.New("cache hit returned different bytes than the original run")
	}
	hits, err := c.metric("spinelessd_cache_hits_total")
	if err != nil {
		return err
	}
	if int(hits) != 2 {
		return fmt.Errorf("cache hit counter = %v, want 2", hits)
	}
	log.Printf("smoke: cache verified — byte-identical result, audit clean, %d sim events saved per hit", events1)

	if err := smokeTelemetry(c, sub1.Hash); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	log.Printf("smoke: live telemetry verified — hash-exempt flag, job visible on the twin while running, hub idle after settle")
	return nil
}

// smokeTelemetry drives the digital-twin surface: the telemetry flag must
// be hash-exempt (its spec hits the plain run's cache entry), a slow
// telemetry-enabled run must appear on the /v1/telemetry stream with live
// traffic while it executes, and the hub must drain once the job settles.
func smokeTelemetry(c smokeClient, plainHash string) error {
	subT, err := c.submit(smokeTelemetrySpec)
	if err != nil {
		return fmt.Errorf("telemetry-spec submit: %w", err)
	}
	if !subT.Cached || subT.Hash != plainHash {
		return fmt.Errorf("telemetry flag fragments the cache: cached=%v hash %.12s vs %.12s",
			subT.Cached, subT.Hash, plainHash)
	}

	// A slow observed run (fresh seed, many trial windows) so the stream
	// has time to catch it live; cancelled once seen.
	slow := strings.Replace(smokeTelemetrySpec, `"trials":2`, `"trials":2000`, 1)
	slow = strings.Replace(slow, `"seed":1`, `"seed":7`, 1)
	telCtx, telCancel := context.WithCancel(context.Background())
	defer telCancel()
	subL, err := c.submit(slow)
	if err != nil {
		return fmt.Errorf("slow submit: %w", err)
	}
	if subL.Cached {
		return errors.New("fresh telemetry run claims to be cached")
	}
	telCh := make(chan error, 1)
	go func() { telCh <- c.watchTelemetry(telCtx, subL.Job) }()
	select {
	case err := <-telCh:
		if err != nil {
			return fmt.Errorf("stream: %w", err)
		}
	case <-time.After(time.Minute):
		telCancel()
		return errors.New("stream never showed the running job")
	}
	if err := c.cancel(subL.Job); err != nil {
		return fmt.Errorf("cancelling observed job: %w", err)
	}
	// Settled jobs leave the hub: a bounded poll must drain to idle.
	deadline := time.Now().Add(30 * time.Second)
	for {
		active, err := c.telemetryActive()
		if err != nil {
			return fmt.Errorf("poll: %w", err)
		}
		if active == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("hub still reports %d active jobs after settle", active)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
