package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"spineless/internal/jobs"
	"spineless/internal/serve"
)

// smokeClient is the minimal HTTP client the -smoke self-check drives the
// API with; keeping it in-process avoids a curl dependency in CI.
type smokeClient struct {
	base string
}

func (c smokeClient) submit(spec string) (serve.SubmitResponse, error) {
	var sr serve.SubmitResponse
	resp, err := http.Post(c.base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		return sr, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return sr, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return sr, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		return sr, err
	}
	return sr, nil
}

// waitDone follows the job's NDJSON event stream until the terminal event
// and fails unless the job ended done.
func (c smokeClient) waitDone(id string) error {
	client := &http.Client{Timeout: 5 * time.Minute}
	resp, err := client.Get(c.base + "/v1/jobs/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("events: status %d", resp.StatusCode)
	}
	var last jobs.Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ":") {
			continue // keepalive heartbeat comment, not an event
		}
		if err := json.Unmarshal([]byte(line), &last); err != nil {
			return fmt.Errorf("bad event line %q: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if last.State != jobs.StateDone {
		return fmt.Errorf("job %s ended %s (error %q)", id, last.State, last.Error)
	}
	return nil
}

func (c smokeClient) result(hash string) ([]byte, error) {
	resp, err := http.Get(c.base + "/v1/results/" + hash)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return body, nil
}

// metric scrapes /metrics and returns the value of an unlabelled series.
func (c smokeClient) metric(name string) (float64, error) {
	resp, err := http.Get(c.base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			return strconv.ParseFloat(strings.TrimSpace(rest), 64)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("metric %s not found", name)
}

// cancel issues DELETE /v1/jobs/{id}.
func (c smokeClient) cancel(id string) error {
	req, err := http.NewRequest(http.MethodDelete, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return nil
}

// watchTelemetry follows the /v1/telemetry NDJSON stream until a frame
// shows job transmitting traffic, then returns nil. Cancelled or ended
// streams return an error: the twin never showed the run.
func (c smokeClient) watchTelemetry(ctx context.Context, job string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/telemetry?interval_ms=20", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ":") {
			continue
		}
		var fr serve.TelemetryFrame
		if err := json.Unmarshal([]byte(line), &fr); err != nil {
			return fmt.Errorf("bad telemetry line %q: %v", line, err)
		}
		for _, j := range fr.Jobs {
			if j.Job == job && j.Totals.TxBytes > 0 {
				return nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("telemetry stream ended before job %s appeared with traffic", job)
}

// telemetryActive polls one bounded telemetry frame and returns its active
// job count.
func (c smokeClient) telemetryActive() (int, error) {
	resp, err := http.Get(c.base + "/v1/telemetry?frames=1")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	var fr serve.TelemetryFrame
	if err := json.Unmarshal([]byte(strings.TrimSpace(string(body))), &fr); err != nil {
		return 0, fmt.Errorf("bad telemetry frame %q: %v", body, err)
	}
	return fr.Active, nil
}

func (c smokeClient) simEvents() (uint64, error) {
	v, err := c.metric("spinelessd_sim_events_total")
	if err != nil {
		return 0, err
	}
	return uint64(v), nil
}
