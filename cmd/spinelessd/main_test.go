package main

import (
	"fmt"
	"strings"
	"testing"

	"spineless/internal/store"
)

// TestSmokeClean runs the -smoke self-check as CI does and expects it to
// pass end to end: run, cache hit, clean audit.
func TestSmokeClean(t *testing.T) {
	if err := runSmoke(2, nil); err != nil {
		t.Fatalf("clean smoke failed: %v", err)
	}
}

// TestSmokeFailsOnTamperedStore is the audit exit-path regression test: a
// corrupted store entry must make the smoke fail via the audit-mismatch
// check, not sneak through as a "verified" cache hit. This is the contract
// behind `spinelessd -smoke`'s non-zero exit on audit mismatch.
func TestSmokeFailsOnTamperedStore(t *testing.T) {
	err := runSmoke(2, func(st *store.Store, hash string) error {
		ent, ok := st.Get(hash)
		if !ok {
			return fmt.Errorf("store lost %s before tampering", hash)
		}
		tampered := append([]byte(nil), ent.Result...)
		tampered[len(tampered)/2] ^= 0x20
		st.Invalidate(hash)
		return st.Put(hash, ent.Spec, tampered)
	})
	if err == nil {
		t.Fatal("smoke passed over a tampered store entry")
	}
	if !strings.Contains(err.Error(), "audit mismatch") {
		t.Fatalf("smoke failed for the wrong reason: %v", err)
	}
}
