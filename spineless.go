// Package spineless reproduces "Spineless Data Centers" (Harsh, Abdu
// Jyothi, Godfrey — HotNets '20): flat topologies for moderate-scale data
// centers (the DRing and Jellyfish-style RRG rewirings of leaf-spine
// equipment), the Shortest-Union(K) oblivious routing scheme and its
// BGP/VRF realization, and the packet- and flow-level simulators needed to
// regenerate every figure in the paper's evaluation.
//
// This root package is a facade over the implementation packages; it
// re-exports the types a downstream user needs so that
//
//	import "spineless"
//
// is enough for the common workflows:
//
//	rng := rand.New(rand.NewSource(1))
//	fs, _ := spineless.BuildFabrics(spineless.LeafSpineSpec{X: 12, Y: 4}, 0, rng)
//	combo, _ := spineless.NewCombo("DRing su2", fs.DRing, "su2")
//	res, _ := spineless.RunFCT(fs, combo, spineless.TMFBSkewed, spineless.DefaultFCTConfig())
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for paper-versus-measured results.
package spineless

import (
	"math/rand"
	"time"

	"spineless/internal/audit"
	"spineless/internal/bakeoff"
	"spineless/internal/bgp"
	"spineless/internal/core"
	"spineless/internal/dynamic"
	"spineless/internal/flowsim"
	"spineless/internal/metrics"
	"spineless/internal/netsim"
	"spineless/internal/ospf"
	"spineless/internal/resilience"
	"spineless/internal/routing"
	"spineless/internal/telemetry"
	"spineless/internal/topology"
	"spineless/internal/workload"
)

// Topology construction (§3, §5.1).
type (
	// Graph is a switch-level fabric with servers attached to ToRs.
	Graph = topology.Graph
	// LeafSpineSpec describes a leaf-spine(x, y) network.
	LeafSpineSpec = topology.LeafSpineSpec
	// DRingSpec describes a DRing supergraph (§3.2).
	DRingSpec = topology.DRingSpec
	// NSRStats reports Network-Server Ratios (§3.1).
	NSRStats = topology.NSRStats
	// PathStats summarizes rack-to-rack shortest paths.
	PathStats = topology.PathStats
)

// Routing (§4).
type (
	// Scheme selects switch-level paths between racks.
	Scheme = routing.Scheme
	// Fib is ECMP or Shortest-Union(K) forwarding state.
	Fib = routing.Fib
)

// Simulation substrates (§5.3).
type (
	// NetConfig parameterizes the packet-level TCP simulator.
	NetConfig = netsim.Config
	// NetResults reports per-flow completion times.
	NetResults = netsim.Results
	// FlowConfig parameterizes the max-min throughput model.
	FlowConfig = flowsim.Config
)

// Runtime verification (DESIGN.md §9).
type (
	// Tracer observes packet-simulator data-plane events; a nil tracer
	// costs nothing.
	Tracer = netsim.Tracer
	// Auditor checks simulator invariants through the Tracer hooks.
	Auditor = audit.Auditor
	// DiffConfig parameterizes the netsim/flowsim/fluid cross-validation.
	DiffConfig = audit.DiffConfig
	// DiffReport holds the three models' throughputs and any violations.
	DiffReport = audit.DiffReport
)

// Telemetry (DESIGN.md §14).
type (
	// TelemetryConfig sizes a telemetry sink: bucket width, ring
	// retention, flow-class count.
	TelemetryConfig = telemetry.Config
	// TelemetryRecorder rolls Tracer events into a live fabric digital
	// twin; thread it through FCTConfig.Telemetry or attach it directly.
	TelemetryRecorder = telemetry.Recorder
	// TelemetrySnapshot is a merged, time-ordered view of the recorder's
	// retained window.
	TelemetrySnapshot = telemetry.Snapshot
)

// Workloads (§5.2).
type (
	// Matrix is a rack-level traffic matrix.
	Matrix = workload.Matrix
	// Flow is one host-to-host transfer.
	Flow = workload.Flow
	// CSSets is a C-S model instance.
	CSSets = workload.CSSets
)

// Experiments (§6).
type (
	// FabricSet is the §5.1 equipment-matched trio.
	FabricSet = core.FabricSet
	// Combo pairs a fabric with a routing scheme.
	Combo = core.Combo
	// TMKind names a Figure 4 workload.
	TMKind = core.TMKind
	// FCTConfig parameterizes Figure 4-style studies.
	FCTConfig = core.FCTConfig
	// FCTResult is one Figure 4 cell.
	FCTResult = core.FCTResult
	// FCTStats summarizes flow completion times.
	FCTStats = metrics.FCTStats
	// ScalePoint is one Figure 6 x-position.
	ScalePoint = core.ScalePoint
	// Heatmap is a Figure 5 panel.
	Heatmap = metrics.Heatmap
	// BGPNetwork is the §4 VRF/BGP session graph.
	BGPNetwork = bgp.Network
)

// Workload kind names (Figure 4, left to right).
const (
	TMA2A         = core.TMA2A
	TMR2R         = core.TMR2R
	TMCSSkewed    = core.TMCSSkewed
	TMFBSkewed    = core.TMFBSkewed
	TMFBUniform   = core.TMFBUniform
	TMFBSkewedRP  = core.TMFBSkewedRP
	TMFBUniformRP = core.TMFBUniformRP
)

// PaperLeafSpine is the §5.1 baseline: leaf-spine(48,16).
var PaperLeafSpine = topology.PaperLeafSpine

// LeafSpine builds a leaf-spine fabric.
func LeafSpine(spec LeafSpineSpec) (*Graph, error) { return topology.LeafSpine(spec) }

// DRing builds a DRing fabric.
func DRing(spec DRingSpec) (*Graph, error) { return topology.DRing(spec) }

// UniformDRing returns a spec with m supernodes of n ToRs on `ports`-port
// switches.
func UniformDRing(m, n, ports int) DRingSpec { return topology.Uniform(m, n, ports) }

// Flatten builds the flat rewiring F(T) of a baseline fabric (§3.1).
func Flatten(base *Graph, rng *rand.Rand) (*Graph, error) { return topology.Flatten(base, rng) }

// NewECMP builds shortest-path ECMP forwarding state.
func NewECMP(g *Graph) *Fib { return routing.NewECMP(g) }

// NewShortestUnion builds Shortest-Union(K) forwarding state (§4).
func NewShortestUnion(g *Graph, k int) (*Fib, error) { return routing.NewShortestUnion(g, k) }

// UDF computes the Uplink-to-Downlink Factor of baseline vs flat (§3.1).
func UDF(baseline, flat *Graph) (float64, error) { return topology.UDF(baseline, flat) }

// BuildFabrics constructs the equipment-matched trio; supernodes <= 0
// auto-selects the server-count-matching ring size.
func BuildFabrics(spec LeafSpineSpec, supernodes int, rng *rand.Rand) (*FabricSet, error) {
	return core.BuildFabrics(spec, supernodes, rng)
}

// PaperFabrics builds the exact §5.1 trio at full scale.
func PaperFabrics(rng *rand.Rand) (*FabricSet, error) { return core.PaperFabrics(rng) }

// ScaledFabrics builds a proportionally scaled-down trio (factor divides 48
// and 16) for fast experimentation.
func ScaledFabrics(factor int, rng *rand.Rand) (*FabricSet, error) {
	return core.ScaledFabrics(factor, rng)
}

// NewCombo pairs a fabric with a scheme by name: "ecmp", "su2".."su9",
// "ksp1".."ksp9", or "vlb".
func NewCombo(label string, g *Graph, scheme string) (Combo, error) {
	return core.NewCombo(label, g, scheme)
}

// PaperCombos returns the five Figure 4 fabric × routing combinations.
func PaperCombos(fs *FabricSet) ([]Combo, error) { return core.PaperCombos(fs) }

// DefaultFCTConfig mirrors the paper's §5/§6 settings.
func DefaultFCTConfig() FCTConfig { return core.DefaultFCTConfig() }

// RunFCT runs one Figure 4 cell: a workload on a combo, measured in the
// packet-level simulator.
func RunFCT(fs *FabricSet, combo Combo, kind TMKind, cfg FCTConfig) (FCTResult, error) {
	return core.RunFCT(fs, combo, kind, cfg)
}

// AllTMKinds lists the Figure 4 workloads in presentation order.
func AllTMKinds() []TMKind { return core.AllTMKinds() }

// CSThroughput measures aggregate max-min throughput of a C-S pattern.
func CSThroughput(combo Combo, c, s int, cfg core.ThroughputConfig) (float64, error) {
	return core.CSThroughput(combo, c, s, cfg)
}

// DefaultThroughputConfig returns the Figure 5 defaults.
func DefaultThroughputConfig() core.ThroughputConfig { return core.DefaultThroughputConfig() }

// CSRatioHeatmap fills one Figure 5 panel.
func CSRatioHeatmap(num, den Combo, clients, servers []int, cfg core.ThroughputConfig) (*Heatmap, error) {
	return core.CSRatioHeatmap(num, den, clients, servers, cfg)
}

// ScaleSweep runs the Figure 6 DRing-vs-RRG scale study.
func ScaleSweep(supernodeCounts []int, cfg core.ScaleConfig) ([]ScalePoint, error) {
	return core.ScaleSweep(supernodeCounts, cfg)
}

// DefaultScaleConfig returns the §6.3 sweep defaults.
func DefaultScaleConfig() core.ScaleConfig { return core.DefaultScaleConfig() }

// BuildBGP constructs the §4 VRF/BGP session graph for Shortest-Union(K).
func BuildBGP(g *Graph, k int) (*BGPNetwork, error) { return bgp.Build(g, k) }

// BGPRib is the converged routing state of a BGP network.
type BGPRib = bgp.Rib

// VerifyTheorem1 checks §4 Theorem 1 against a converged RIB.
func VerifyTheorem1(n *BGPNetwork, rib BGPRib) error { return bgp.VerifyTheorem1(n, rib) }

// CrossCheckBGPFib verifies the converged protocol next hops against the
// directly computed Shortest-Union(K) FIB (strict equality for K=2).
func CrossCheckBGPFib(n *BGPNetwork, rib BGPRib, fib *Fib, strict bool) error {
	return bgp.CrossCheckFib(n, rib, fib, strict)
}

// NewSimulator builds a packet-level TCP simulator over a fabric.
func NewSimulator(g *Graph, scheme Scheme, cfg NetConfig) (*netsim.Simulator, error) {
	return netsim.New(g, scheme, cfg)
}

// NewShardedSimulator builds the conservative-window parallel simulator
// with the given worker count (clamped to [1, 16]). Results are
// byte-identical at every shard count; DESIGN.md §13 documents its two
// micro-departures from the serial engine's event stream.
func NewShardedSimulator(g *Graph, scheme Scheme, cfg NetConfig, shards int) (*netsim.ShardedSimulator, error) {
	return netsim.NewSharded(g, scheme, cfg, shards)
}

// DefaultNetConfig returns the §5.3 packet-simulator defaults.
func DefaultNetConfig() NetConfig { return netsim.DefaultConfig() }

// AttachAuditor installs the runtime invariant auditor on a simulator
// before Run; Finish(results) reports every violation (DESIGN.md §9).
func AttachAuditor(sim *netsim.Simulator, flows []Flow) (*Auditor, error) {
	return audit.Attach(sim, flows)
}

// NewTelemetryRecorder builds a telemetry recorder; zero-value cfg fields
// take the package defaults (100µs buckets, 512-bucket window, 1 class).
func NewTelemetryRecorder(cfg TelemetryConfig) *TelemetryRecorder {
	return telemetry.NewRecorder(cfg)
}

// Differential cross-validates the packet, flow-level and fluid models on
// one workload and reports disagreements beyond the tolerance bands.
func Differential(g *Graph, scheme Scheme, flows []Flow, cfg DiffConfig) (DiffReport, error) {
	return audit.Differential(g, scheme, flows, cfg)
}

// SummarizeFCT converts per-flow nanosecond FCTs into statistics.
func SummarizeFCT(fctNS []int64) FCTStats { return metrics.SummarizeFCT(fctNS) }

// GenerateFlows draws flows from a rack-level matrix (§5.2).
func GenerateFlows(g *Graph, m *Matrix, cfg workload.GenConfig, rng *rand.Rand) ([]Flow, error) {
	return workload.GenerateFlows(g, m, cfg, rng)
}

// UniformTM returns the uniform/A2A matrix over n racks.
func UniformTM(n int) *Matrix { return workload.Uniform(n) }

// FBSkewedTM synthesizes the skewed Facebook-like matrix (§5.2).
func FBSkewedTM(n int, rng *rand.Rand) *Matrix { return workload.FBSkewed(n, rng) }

// PaperFlowSizes is the §5.2 Pareto(mean 100KB, alpha 1.05) distribution.
func PaperFlowSizes() workload.SizeDist { return workload.PaperFlowSizes() }

// GenFlowConfig is a convenience constructor for flow generation with the
// paper's flow-size distribution: n flows arriving uniformly over a window.
func GenFlowConfig(n int, window time.Duration) workload.GenConfig {
	return workload.GenConfig{Flows: n, Sizes: workload.PaperFlowSizes(), WindowNS: int64(window)}
}

// ParetoSizes returns a Pareto flow-size distribution with the given mean,
// shape and cap (bytes); cap 0 defaults to 10000× the mean.
func ParetoSizes(meanBytes, alpha float64, capBytes int64) workload.SizeDist {
	return workload.Pareto{MeanBytes: meanBytes, Alpha: alpha, Cap: capBytes}
}

// --- §7 future-work extensions, built out ---

// FailureStudyConfig parameterizes the link-failure sweep.
type FailureStudyConfig = resilience.StudyConfig

// FailureStudyRow is one failure-fraction outcome.
type FailureStudyRow = resilience.StudyRow

// DefaultFailureStudyConfig sweeps 1%, 5%, 10% link failures under SU(2).
func DefaultFailureStudyConfig() FailureStudyConfig { return resilience.DefaultStudyConfig() }

// FailureStudy measures path dilation, diversity loss, BGP reconvergence
// and FCT degradation under random link failures (§7 "Impact of failures").
func FailureStudy(g *Graph, cfg FailureStudyConfig) ([]FailureStudyRow, error) {
	return resilience.Study(g, cfg)
}

// NewAdaptiveCombo builds the §7 coarse-grained adaptive scheme: hot rack
// pairs (by demand concentration, plus all adjacent pairs with demand) use
// Shortest-Union(K); the rest use ECMP.
func NewAdaptiveCombo(label string, g *Graph, m *Matrix, cfg core.AdaptiveConfig) (Combo, error) {
	return core.NewAdaptiveCombo(label, g, m, cfg)
}

// DefaultAdaptiveConfig escalates pairs at ≥4× mean demand to SU(2).
func DefaultAdaptiveConfig() core.AdaptiveConfig { return core.DefaultAdaptiveConfig() }

// DragonflySpec describes a canonical Dragonfly fabric (§7 "other static
// networks").
type DragonflySpec = topology.DragonflySpec

// Dragonfly builds a flat Dragonfly fabric.
func Dragonfly(spec DragonflySpec) (*Graph, error) { return topology.Dragonfly(spec) }

// ExpandReport quantifies rewiring cost of incremental expansion (§3.2).
type ExpandReport = topology.ExpandReport

// ExpandDRing grows a DRing at the ring seam, reporting rewiring cost.
func ExpandDRing(old DRingSpec, extra []int) (*Graph, DRingSpec, ExpandReport, error) {
	return topology.ExpandDRing(old, extra)
}

// ExpandRRG grows a random regular graph Jellyfish-style.
func ExpandRRG(g *Graph, newSwitches, degree int, rng *rand.Rand) (*Graph, ExpandReport, error) {
	return topology.ExpandRRG(g, newSwitches, degree, rng)
}

// IdealThroughput computes the fluid-model maximum concurrent throughput of
// a rack-level matrix on a fabric (the §2 ideal-routing reference [13,22]).
// eps is the FPTAS accuracy (0 → 0.1).
func IdealThroughput(g *Graph, m *Matrix, eps float64) (float64, error) {
	return core.IdealThroughput(g, m, eps)
}

// NewWeighted wraps a FIB with WCMP-style path-count-weighted hashing.
func NewWeighted(fib *Fib) Scheme { return routing.NewWeighted(fib) }

// MigrationPlan is a connectivity-preserving rewiring sequence.
type MigrationPlan = topology.MigrationPlan

// PlanMigration orders the §5.1 rewiring (e.g. leaf-spine → flat) as single
// cable moves that never partition the fabric.
func PlanMigration(from, to *Graph) (MigrationPlan, error) {
	return topology.PlanMigration(from, to)
}

// OSPFDomain is a link-state control plane over a fabric (§2's "OSPF with
// ECMP" baseline).
type OSPFDomain = ospf.Domain

// NewOSPF builds an OSPF domain; call Flood to converge it.
func NewOSPF(g *Graph) *OSPFDomain { return ospf.New(g) }

// CSModel draws a §5.2 C-S instance: nClients hosts packed into the fewest
// racks, nServers hosts packed into the fewest remaining racks.
func CSModel(g *Graph, nClients, nServers int, rng *rand.Rand) (CSSets, error) {
	return workload.CSModel(g, nClients, nServers, rng)
}

// CSMatrix converts a C-S instance to a rack-level matrix on g.
func CSMatrix(g *Graph, cs CSSets) *Matrix { return workload.CSMatrix(g, cs) }

// DynamicSchedule is a time-slotted reconfigurable fabric (§7).
type DynamicSchedule = dynamic.Schedule

// StaticSchedule wraps a fixed fabric as a one-slot schedule.
func StaticSchedule(g *Graph) DynamicSchedule { return dynamic.Static{G: g} }

// NewRotatingDRing builds the §7 "reconfigure into another flat network"
// schedule; slots <= 0 selects full supernode-pair coverage.
func NewRotatingDRing(spec DRingSpec, slots int) (DynamicSchedule, error) {
	return dynamic.NewRotatingDRing(spec, slots)
}

// NewRotorMatchings builds a RotorNet-style rotating-matching schedule.
func NewRotorMatchings(tors, degree, serversPerTor, ports, slots int) (DynamicSchedule, error) {
	return dynamic.NewRotorMatchings(tors, degree, serversPerTor, ports, slots)
}

// DynamicAvgThroughput slot-averages max-min throughput over a schedule.
func DynamicAvgThroughput(s DynamicSchedule, pairs [][2]int, scheme string, cfg FlowConfig) (float64, []float64, error) {
	return dynamic.AvgThroughput(s, pairs, scheme, cfg)
}

// DynamicAvgPathLength slot-averages the mean rack-to-rack hop distance.
func DynamicAvgPathLength(s DynamicSchedule) (float64, error) {
	return dynamic.AvgPathLength(s)
}

// DefaultFlowConfig returns the 10 Gbps flow-level defaults.
func DefaultFlowConfig() FlowConfig { return flowsim.DefaultConfig() }

// RunBurst fires the §3 microburst at a combo and measures drain time.
func RunBurst(combo Combo, spec workload.BurstSpec, net NetConfig, seed int64) (core.BurstResult, error) {
	return core.RunBurst(combo, spec, net, seed)
}

// DefaultBurst is a 64 MB burst fanned out to 8 racks.
func DefaultBurst() workload.BurstSpec { return workload.DefaultBurst() }

// DeBruijnSpec sizes a De Bruijn fabric: Symbols^Digits switches with
// shift-register wiring (the "selfroute" scheme needs no FIB on it).
type DeBruijnSpec = topology.DeBruijnSpec

// NewDeBruijnFabric builds the undirected, degree-regularized De Bruijn
// fabric; construction is fully deterministic.
func NewDeBruijnFabric(spec DeBruijnSpec) (*Graph, error) { return topology.DeBruijn(spec) }

// FitDeBruijn picks the De Bruijn spec closest to an equipment budget.
func FitDeBruijn(switches, ports, wantDegree int) (DeBruijnSpec, error) {
	return topology.FitDeBruijn(switches, ports, wantDegree)
}

// RNGSpec sizes an AWS-style random neighbor graph (union of uniform
// perfect matchings; "spvlb" is its native routing scheme).
type RNGSpec = topology.RNGSpec

// NewRNGFabric builds the random neighbor graph from the seeded rng.
func NewRNGFabric(spec RNGSpec, rng *rand.Rand) (*Graph, error) { return topology.RNG(spec, rng) }

// BakeoffConfig parameterizes the flat-topology bake-off: every candidate
// fabric on one equipment budget, measured and ranked (cmd/bakeoff).
type BakeoffConfig = bakeoff.Config

// BakeoffScorecard is the ranked bake-off result with per-metric winners
// and the spec hash that reproduces it.
type BakeoffScorecard = bakeoff.Scorecard

// BakeoffScaled returns the bake-off configuration at x times the paper's
// §6.3 scale.
func BakeoffScaled(x int) BakeoffConfig { return bakeoff.Scaled(x) }

// RunBakeoff executes the bake-off matrix and returns the ranked
// scorecard; byte-identical at any worker count and any shard count >= 1.
func RunBakeoff(cfg BakeoffConfig) (*BakeoffScorecard, error) { return bakeoff.Run(cfg) }
