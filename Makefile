GO ?= go

# PR number stamped into the committed benchmark baseline (BENCH_$(BENCH_PR).json).
BENCH_PR ?= 10
# The key benchmarks the baseline records: the netsim hot path (serial,
# serial with a telemetry sink attached, and sharded at 1/2/4/8 workers),
# one Figure 4 row, the Figure 5 panel in serial and parallel variants, FIB
# construction, paper-scale BGP convergence (full and single-link-delta),
# and the flat-topology bake-off matrix on 1 and 16 netsim shards.
BENCH_RE = ^(BenchmarkNetsimEvents|BenchmarkNetsimEventsTelemetry|BenchmarkNetsimEventsSharded(1|2|4|8)|BenchmarkFig4_A2A|BenchmarkFig5_SmallSU2|BenchmarkFig5_SmallSU2_Workers1|BenchmarkFig5_SmallSU2_WorkersMax|BenchmarkFibConstruction|BenchmarkBGPConvergePaperScale|BenchmarkBGPReconvergeDelta|BenchmarkBakeoffShards(1|16))$$

.PHONY: check build test vet fmt lint race bench audit serve serve-smoke fleet-smoke bakeoff-smoke

# Full verification: everything CI and the roadmap's tier-1 gate expect.
check: build vet fmt lint race audit serve-smoke fleet-smoke bakeoff-smoke

# Run the experiment service on localhost with a persistent result cache
# (see DESIGN.md §10 and the README curl session).
serve:
	$(GO) run ./cmd/spinelessd -addr 127.0.0.1:8080 -store results/store

# End-to-end determinism-cache proof: build spinelessd, boot it on an
# ephemeral port with a throwaway store, push one tiny fig4-style cell
# through the HTTP API, and assert the second submit is a cache hit with
# byte-identical result JSON and zero new simulator events. Ends with the
# telemetry smoke: an observed run must appear with traffic on the
# /v1/telemetry stream and drain from it after cancel, and the telemetry
# flag must be hash-exempt (observed resubmit of a cached spec is a hit).
serve-smoke:
	@tmp=$$(mktemp -d) && \
	$(GO) build -o $$tmp/spinelessd ./cmd/spinelessd && \
	$$tmp/spinelessd -smoke; \
	rc=$$?; rm -rf $$tmp; exit $$rc

# Fleet fault-tolerance proof under the race detector: a multi-process
# worker fleet driven through kill/restart/partition/slow chaos while a
# coordinator places jobs; every job must land with byte-identical results,
# audits must cross workers cleanly, and overload must shed 429s before any
# queue-full 503. See DESIGN.md §11 and cmd/fleetsmoke.
fleet-smoke:
	$(GO) run -race ./cmd/fleetsmoke

# Flat-topology bake-off gate: the full five-fabric matrix at paper scale
# with a tiny workload — byte-identical scorecards on 1 and 2 netsim
# shards, no non-finite cells, and an audited De Bruijn self-routing run.
bakeoff-smoke:
	$(GO) run ./cmd/bakeoff -smoke >/dev/null

# Audited driver runs: every packet simulation under the runtime invariant
# auditor (internal/audit), plus fig5's netsim/flowsim/fluid differential
# cross-validation — small scales keep the gate fast. See DESIGN.md §9.
audit:
	$(GO) run ./cmd/fig4 -audit -scale 4 -window 0.002 -maxflows 120 >/dev/null
	$(GO) run ./cmd/fig5 -audit -scale 4 >/dev/null
	$(GO) run ./cmd/fig6 -audit -supernodes 5,6 -tors 3 -ports 20 >/dev/null
	$(GO) run ./cmd/failures -audit -live -flows 120 -fractions 0.05 >/dev/null
	$(GO) run ./cmd/failures -audit -flows 120 -fractions 0.05 >/dev/null

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Custom invariant checkers: per-package (determinism, maporder, nofatal,
# shadowbuiltin, floateq, nakedpanic, sharedrand, ctxleak, locks, goleak)
# plus the whole-program call-graph checkers (detflow, hotpath) — see
# DESIGN.md §7 and §12.
lint:
	$(GO) run ./cmd/spinelint ./...

race:
	$(GO) test -race ./...

# Record the benchmark baseline: run the key benchmarks with -benchmem and
# convert the output to BENCH_$(BENCH_PR).json (name, ns/op, B/op, allocs/op,
# host shape) via cmd/benchjson.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_RE)' -benchmem . | tee bench_raw.tmp
	$(GO) run ./cmd/benchjson -pr $(BENCH_PR) -o BENCH_$(BENCH_PR).json bench_raw.tmp
	@rm -f bench_raw.tmp
