GO ?= go

.PHONY: check build test vet fmt race

# Full verification: everything CI and the roadmap's tier-1 gate expect.
check: build vet fmt race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race ./...
