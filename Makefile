GO ?= go

.PHONY: check build test vet fmt lint race

# Full verification: everything CI and the roadmap's tier-1 gate expect.
check: build vet fmt lint race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Custom invariant checkers (determinism, maporder, nofatal, shadowbuiltin,
# floateq, nakedpanic) — see DESIGN.md "Invariants & static analysis".
lint:
	$(GO) run ./cmd/spinelint ./...

race:
	$(GO) test -race ./...
