module spineless

go 1.22
