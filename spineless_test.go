package spineless_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"spineless"
)

// TestFacadeEndToEnd drives the README quickstart path through the public
// API only: build the trio, route it, simulate a workload, measure.
func TestFacadeEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fs, err := spineless.BuildFabrics(spineless.LeafSpineSpec{X: 6, Y: 2}, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	combo, err := spineless.NewCombo("DRing su2", fs.DRing, "su2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := spineless.DefaultFCTConfig()
	cfg.WindowSec = 0.002
	cfg.MaxFlows = 100
	cfg.Sizes = spineless.ParetoSizes(20e3, 1.05, 200e3)
	res, err := spineless.RunFCT(fs, combo, spineless.TMFBSkewed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Count == 0 || res.Stats.Incomplete != 0 {
		t.Fatalf("facade FCT run broken: %+v", res.Stats)
	}
}

func TestFacadeUDFAndTheorem1(t *testing.T) {
	base, err := spineless.LeafSpine(spineless.LeafSpineSpec{X: 6, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := spineless.Flatten(base, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	udf, err := spineless.UDF(base, flat)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(udf-2) > 0.05 {
		t.Fatalf("UDF = %v", udf)
	}

	net, err := spineless.BuildBGP(flat, 2)
	if err != nil {
		t.Fatal(err)
	}
	rib, _, err := net.Converge()
	if err != nil {
		t.Fatal(err)
	}
	if err := spineless.VerifyTheorem1(net, rib); err != nil {
		t.Fatal(err)
	}
	fib, err := spineless.NewShortestUnion(flat, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := spineless.CrossCheckBGPFib(net, rib, fib, true); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSimulatorAndFlows(t *testing.T) {
	g, err := spineless.DRing(spineless.UniformDRing(6, 2, 20))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	flows, err := spineless.GenerateFlows(g, spineless.UniformTM(len(g.Racks())),
		spineless.GenFlowConfig(60, time.Millisecond), rng)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := spineless.NewSimulator(g, spineless.NewECMP(g), spineless.DefaultNetConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	st := spineless.SummarizeFCT(res.FCTNS)
	if st.Count != len(flows) {
		t.Fatalf("completed %d of %d", st.Count, len(flows))
	}
}

func TestFacadeExtensions(t *testing.T) {
	g, err := spineless.DRing(spineless.UniformDRing(6, 2, 20))
	if err != nil {
		t.Fatal(err)
	}
	// Failure study.
	cfg := spineless.DefaultFailureStudyConfig()
	cfg.Fractions = []float64{0.05}
	cfg.Flows = 40
	cfg.Samples = 10
	rows, err := spineless.FailureStudy(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatal("failure study empty")
	}
	// Ideal throughput.
	lam, err := spineless.IdealThroughput(g, spineless.UniformTM(len(g.Racks())), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if lam <= 0 {
		t.Fatalf("ideal λ = %v", lam)
	}
	// Migration.
	base, err := spineless.LeafSpine(spineless.LeafSpineSpec{X: 4, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := spineless.Flatten(base, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spineless.PlanMigration(base, flat); err != nil {
		t.Fatal(err)
	}
	// OSPF.
	d := spineless.NewOSPF(g.Clone())
	d.Flood()
	if !d.Converged() {
		t.Fatal("OSPF did not converge")
	}
	// Dynamic schedules.
	sched, err := spineless.NewRotatingDRing(spineless.UniformDRing(6, 2, 20), 2)
	if err != nil {
		t.Fatal(err)
	}
	if pl, err := spineless.DynamicAvgPathLength(sched); err != nil || pl <= 0 {
		t.Fatalf("dynamic path length: %v %v", pl, err)
	}
}
