package lint

import (
	"go/token"
	"go/types"
)

// ShadowBuiltin flags declarations that shadow the builtins cap, len, min,
// or max. A shadowed builtin keeps compiling while silently changing
// meaning further down the function — exactly the `cap` shadow PR 1 had to
// fix by hand in the packet simulator.
type ShadowBuiltin struct{}

func (*ShadowBuiltin) Name() string { return "shadowbuiltin" }
func (*ShadowBuiltin) Doc() string {
	return "flag declarations shadowing the builtins cap, len, min, max"
}

var shadowedBuiltins = map[string]bool{"cap": true, "len": true, "min": true, "max": true}

func (c *ShadowBuiltin) Run(p *Pass) {
	reported := make(map[token.Pos]bool)
	report := func(obj types.Object) {
		if obj == nil || !shadowedBuiltins[obj.Name()] || reported[obj.Pos()] {
			return
		}
		switch o := obj.(type) {
		case *types.Var:
			if o.IsField() {
				return // struct fields are always selector-qualified
			}
		case *types.Func:
			if sig, ok := o.Type().(*types.Signature); ok && sig.Recv() != nil {
				return // methods are always selector-qualified
			}
		case *types.Const, *types.TypeName, *types.PkgName:
		default:
			return
		}
		reported[obj.Pos()] = true
		p.Reportf(obj.Pos(), c.Name(), "declaration of %q shadows the builtin", obj.Name())
	}
	for _, obj := range p.Info.Defs {
		report(obj)
	}
	// The symbolic variable of a type switch (switch t := x.(type)) is not
	// in Defs; go/types records one implicit object per case clause, all at
	// the header position (hence the dedupe above).
	for _, obj := range p.Info.Implicits {
		report(obj)
	}
}
