package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata expected.txt golden files")

// fixtureCheckers returns the checkers a fixture directory exercises — the
// per-package and/or program checker whose ID matches the directory name,
// or the full default suites for the allow- and allowpkg-pragma fixtures.
func fixtureCheckers(t *testing.T, dir string) ([]Checker, []ProgramChecker) {
	all, allProg := DefaultCheckers(), DefaultProgramCheckers()
	if dir == "allow" || strings.HasPrefix(dir, "allowpkg") {
		return all, allProg
	}
	for _, c := range all {
		if c.Name() == dir {
			return []Checker{c}, nil
		}
	}
	for _, c := range allProg {
		if c.Name() == dir {
			return nil, []ProgramChecker{c}
		}
	}
	t.Fatalf("no checker matches fixture dir %q", dir)
	return nil, nil
}

// TestGolden pins every checker against its testdata fixture: the findings
// (file:line:col, ID, message) must match expected.txt exactly, so checker
// regressions are caught without depending on the real tree's state.
func TestGolden(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join("testdata", e.Name())
		if _, err := os.Stat(filepath.Join(dir, "expected.txt")); err != nil {
			continue // fixture-package container (e.g. callgraph/), not a golden dir
		}
		seen[e.Name()] = true
		t.Run(e.Name(), func(t *testing.T) {
			fset, pkg, err := LoadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			prog := NewProgram(fset, []*LoadedPackage{pkg})
			checkers, progCheckers := fixtureCheckers(t, e.Name())
			var b strings.Builder
			for _, f := range prog.Run(checkers, progCheckers) {
				// Render paths relative to the fixture dir so goldens are
				// machine-independent.
				fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n",
					filepath.Base(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Check, f.Message)
			}
			got := b.String()
			golden := filepath.Join(dir, "expected.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch (run `go test ./internal/lint -run Golden -update` after verifying):\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
	// Every checker must have a fixture: a new checker without goldens is
	// itself a regression.
	for _, c := range DefaultCheckers() {
		if !seen[c.Name()] {
			t.Errorf("checker %q has no testdata fixture", c.Name())
		}
	}
	for _, c := range DefaultProgramCheckers() {
		if !seen[c.Name()] {
			t.Errorf("program checker %q has no testdata fixture", c.Name())
		}
	}
}

// TestAllowPkgScopeAndDenial guards the package-scope pragma: in an
// ordinary package it suppresses exactly the named checks (no leak to
// others), while in a deny-listed package it is both ignored and reported.
func TestAllowPkgScopeAndDenial(t *testing.T) {
	run := func(dir string) []Finding {
		t.Helper()
		fset, pkg, err := LoadDir(filepath.Join("testdata", dir))
		if err != nil {
			t.Fatal(err)
		}
		pass := &Pass{Fset: fset, ImportPath: pkg.ImportPath, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info}
		return Run(pass, DefaultCheckers())
	}

	findings := run("allowpkg")
	if len(findings) != 1 || findings[0].Check != "floateq" {
		t.Fatalf("allowpkg: want exactly one floateq finding surviving, got %v", findings)
	}

	findings = run("allowpkgdeny")
	got := map[string]int{}
	for _, f := range findings {
		got[f.Check]++
	}
	if got["allowpkg"] != 1 || got["determinism"] != 1 || len(findings) != 2 {
		t.Fatalf("allowpkgdeny: want one refused-pragma and one determinism finding, got %v", findings)
	}
}

// TestAllowOnlySuppressesNamedCheck guards the pragma parser: an allow for
// one check must not suppress another on the same line.
func TestAllowOnlySuppressesNamedCheck(t *testing.T) {
	fset, pkg, err := LoadDir(filepath.Join("testdata", "allow"))
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{Fset: fset, ImportPath: pkg.ImportPath, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info}
	findings := Run(pass, DefaultCheckers())
	if len(findings) != 1 || findings[0].Check != "floateq" {
		t.Fatalf("want exactly one floateq finding surviving the pragmas, got %v", findings)
	}
}
