package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

const cgPkg = "spineless/internal/lint/testdata/callgraph/"

// loadCallgraphProg loads the two-package callgraph fixture.
func loadCallgraphProg(t *testing.T) *Program {
	t.Helper()
	fset, pkgs, err := Load(filepath.Join("testdata", "callgraph"), []string{"./a", "./b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("want 2 fixture packages, got %d", len(pkgs))
	}
	return NewProgram(fset, pkgs)
}

// TestCallGraph pins the builder's resolution rules on the synthetic
// fixture: static edges, conservative interface dispatch, method values,
// func-value (dynamic) calls, cross-package edges, and a cycle.
func TestCallGraph(t *testing.T) {
	prog := loadCallgraphProg(t)
	tests := []struct {
		caller string
		want   []string // FullNames that must appear among the callees
		kind   CallKind // expected kind of the edge carrying want[0]
	}{
		{
			caller: cgPkg + "a.Run",
			want:   []string{"(" + cgPkg + "a.Alpha).Do", "(" + cgPkg + "a.Beta).Do"},
			kind:   CallInterface,
		},
		{
			caller: cgPkg + "a.UseTwice",
			want:   []string{cgPkg + "a.Twice"},
			kind:   CallStatic,
		},
		{
			// Twice's f(x) resolves over the address-taken set: Inc (passed
			// in UseTwice) and Alpha.Do (taken as a method value).
			caller: cgPkg + "a.Twice",
			want:   []string{cgPkg + "a.Inc", "(" + cgPkg + "a.Alpha).Do"},
			kind:   CallDynamic,
		},
		{
			caller: cgPkg + "b.CrossStatic",
			want:   []string{cgPkg + "a.Inc"},
			kind:   CallStatic,
		},
		{
			caller: cgPkg + "b.CrossIface",
			want:   []string{cgPkg + "a.Run"},
			kind:   CallStatic,
		},
		{
			caller: cgPkg + "a.Even",
			want:   []string{cgPkg + "a.Odd"},
			kind:   CallStatic,
		},
		{
			caller: cgPkg + "a.Odd",
			want:   []string{cgPkg + "a.Even"},
			kind:   CallStatic,
		},
	}
	for _, tt := range tests {
		t.Run(strings.TrimPrefix(tt.caller, cgPkg), func(t *testing.T) {
			callees := prog.Graph.Callees(tt.caller)
			for _, w := range tt.want {
				if !containsStr(callees, w) {
					t.Errorf("callees of %s = %v; missing %s", tt.caller, callees, w)
				}
			}
			n := prog.Graph.Nodes[tt.caller]
			if n == nil {
				t.Fatalf("no node for %s", tt.caller)
			}
			found := false
			for _, site := range n.Calls {
				for _, c := range site.Callees {
					if c.Name == tt.want[0] && site.Kind == tt.kind {
						found = true
					}
				}
			}
			if !found {
				t.Errorf("no %v edge from %s to %s", tt.kind, tt.caller, tt.want[0])
			}
		})
	}

	// The cycle must also be visible through the In lists.
	even := prog.Graph.Nodes[cgPkg+"a.Even"]
	inNames := make([]string, 0, len(even.In))
	for _, n := range even.In {
		inNames = append(inNames, n.Name)
	}
	if !containsStr(inNames, cgPkg+"a.Odd") {
		t.Errorf("Even.In = %v; cycle edge from Odd missing", inNames)
	}
}

// TestCallGraphMethodValueAddressTaken pins that taking a method value puts
// the method in the address-taken set without creating a call edge at the
// take site.
func TestCallGraphMethodValueAddressTaken(t *testing.T) {
	prog := loadCallgraphProg(t)
	mv := prog.Graph.Nodes[cgPkg+"a.MethodValue"]
	if mv == nil {
		t.Fatal("no node for MethodValue")
	}
	for _, site := range mv.Calls {
		for _, c := range site.Callees {
			if c.Name == "("+cgPkg+"a.Alpha).Do" {
				t.Errorf("method-value take site produced a call edge to Alpha.Do")
			}
		}
	}
}

// TestDetFlowCrossPackage is the tentpole's reason to exist: time.Now in
// package a, laundered through two function calls and a package boundary,
// must still be flagged when it lands in package b's sink.
func TestDetFlowCrossPackage(t *testing.T) {
	prog := loadCallgraphProg(t)
	det := &DetFlow{SinkTypes: []string{"callgraph/b.Stats"}}
	findings := prog.Run(nil, []ProgramChecker{det})
	var hits []Finding
	for _, f := range findings {
		if f.Check == "detflow" && strings.HasSuffix(f.Pos.Filename, "b.go") {
			hits = append(hits, f)
		}
	}
	if len(hits) != 1 {
		t.Fatalf("want exactly 1 cross-package detflow finding in b.go, got %v", findings)
	}
	msg := hits[0].Message
	if !strings.Contains(msg, "time.Now") || !strings.Contains(msg, "via") {
		t.Errorf("finding should name the source and the laundering callee: %q", msg)
	}
}

func containsStr(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
