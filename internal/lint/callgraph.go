package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CallKind classifies how a call site was resolved.
type CallKind uint8

const (
	// CallStatic is a direct call of a named function or a method on a
	// concrete receiver: exactly one callee.
	CallStatic CallKind = iota
	// CallInterface is a method call through an interface value, resolved
	// conservatively to every program method with the same name and
	// signature (a CHA-style over-approximation: method sets are matched
	// structurally, not by proven implements-relations, because the
	// concrete types flow through export data where we no longer have
	// object identity).
	CallInterface
	// CallDynamic is a call through a func value (variable, field, stored
	// callback), resolved to every address-taken program function with an
	// identical signature string.
	CallDynamic
)

func (k CallKind) String() string {
	switch k {
	case CallStatic:
		return "static"
	case CallInterface:
		return "interface"
	case CallDynamic:
		return "dynamic"
	}
	return "unknown"
}

// Node is one function in the call graph. Fn is nil for functions with no
// source in the program (stdlib, export-data-only dependencies): they are
// boundaries, present so callers can still see the edge.
type Node struct {
	Name string // (*types.Func).FullName(), or "func literal @pos" (never for program nodes)
	Fn   *FuncInfo
	// Calls lists every call site textually inside this function's
	// declaration, including sites inside nested function literals (a
	// closure's calls are attributed to the function that creates it — a
	// deliberate over-approximation that keeps hot-path walks sound).
	Calls []*CallSite
	// In lists the distinct callers of this node.
	In []*Node
}

// CallSite is one resolved call expression.
type CallSite struct {
	Pos     token.Pos
	Call    *ast.CallExpr
	Kind    CallKind
	Callees []*Node
	// Go and Defer mark `go f()` / `defer f()` statements.
	Go, Defer bool
}

// CallGraph is the static, conservative whole-program call graph.
type CallGraph struct {
	Nodes map[string]*Node
	// Sites maps every classified call expression to its site, shared with
	// taint analysis so call resolution happens exactly once.
	Sites map[*ast.CallExpr]*CallSite
}

// Callees returns the resolved callee names of the named function, deduped.
func (g *CallGraph) Callees(caller string) []string {
	n := g.Nodes[caller]
	if n == nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	for _, s := range n.Calls {
		for _, c := range s.Callees {
			if !seen[c.Name] {
				seen[c.Name] = true
				out = append(out, c.Name)
			}
		}
	}
	return out
}

type graphBuilder struct {
	prog *Program
	g    *CallGraph
	// methodsBySig indexes every program method (concrete receiver) by
	// name + "|" + signature string, for interface-dispatch resolution.
	methodsBySig map[string][]*Node
	// addrTakenBySig indexes program functions referenced outside call
	// position (stored, passed, compared) by signature string, for
	// func-value call resolution.
	addrTakenBySig map[string][]*Node
}

func buildCallGraph(prog *Program) *CallGraph {
	b := &graphBuilder{
		prog:           prog,
		g:              &CallGraph{Nodes: make(map[string]*Node), Sites: make(map[*ast.CallExpr]*CallSite)},
		methodsBySig:   make(map[string][]*Node),
		addrTakenBySig: make(map[string][]*Node),
	}
	// Pass 1: one node per program function; index methods and
	// address-taken functions.
	for _, fi := range prog.Funcs {
		n := b.node(fi.Name)
		n.Fn = fi
		sig, ok := fi.Obj.Type().(*types.Signature)
		if !ok {
			continue
		}
		if sig.Recv() != nil && !types.IsInterface(sig.Recv().Type()) {
			key := fi.Obj.Name() + "|" + sigString(sig)
			b.methodsBySig[key] = append(b.methodsBySig[key], n)
		}
	}
	for _, p := range prog.Passes {
		b.collectAddrTaken(p)
	}
	// Pass 2: classify every call site.
	for _, fi := range prog.Funcs {
		b.walkFunc(fi)
	}
	return b.g
}

func (b *graphBuilder) node(name string) *Node {
	if n, ok := b.g.Nodes[name]; ok {
		return n
	}
	n := &Node{Name: name}
	b.g.Nodes[name] = n
	return n
}

// sigString renders a signature with full package-path qualifiers, no
// receiver, and no parameter names, so the "same function" seen from two
// packages' type universes — or through a func-typed variable whose
// parameters are unnamed — compares equal.
func sigString(sig *types.Signature) string {
	strip := func(t *types.Tuple) *types.Tuple {
		if t == nil || t.Len() == 0 {
			return t
		}
		vars := make([]*types.Var, t.Len())
		for i := 0; i < t.Len(); i++ {
			vars[i] = types.NewVar(token.NoPos, nil, "", t.At(i).Type())
		}
		return types.NewTuple(vars...)
	}
	noRecv := types.NewSignatureType(nil, nil, nil, strip(sig.Params()), strip(sig.Results()), sig.Variadic())
	return types.TypeString(noRecv, func(p *types.Package) string { return p.Path() })
}

// collectAddrTaken records every reference to a program function outside
// direct-call position: those are the functions a func-typed variable or
// field could hold.
func (b *graphBuilder) collectAddrTaken(p *Pass) {
	for _, f := range p.Files {
		// calleeIdents are identifiers appearing as the operator of a call;
		// they are uses, not address-taking.
		calleeIdents := make(map[*ast.Ident]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := unparen(call.Fun).(type) {
			case *ast.Ident:
				calleeIdents[fun] = true
			case *ast.SelectorExpr:
				calleeIdents[fun.Sel] = true
			case *ast.IndexExpr: // generic instantiation f[T](...)
				if id, ok := unparen(fun.X).(*ast.Ident); ok {
					calleeIdents[id] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || calleeIdents[id] {
				return true
			}
			fn, ok := p.Info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			node, ok := b.g.Nodes[fn.FullName()]
			if !ok {
				return true // no source in the program
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return true
			}
			key := sigString(sig)
			for _, have := range b.addrTakenBySig[key] {
				if have == node {
					return true
				}
			}
			b.addrTakenBySig[key] = append(b.addrTakenBySig[key], node)
			return true
		})
	}
}

// walkFunc classifies every call inside fi's declaration (nested literals
// included) and attaches the resulting sites to fi's node.
func (b *graphBuilder) walkFunc(fi *FuncInfo) {
	caller := b.g.Nodes[fi.Name]
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			b.site(caller, fi.Pass, n.Call, true, false)
		case *ast.DeferStmt:
			b.site(caller, fi.Pass, n.Call, false, true)
		case *ast.CallExpr:
			if b.g.Sites[n] == nil {
				b.site(caller, fi.Pass, n, false, false)
			}
		}
		return true
	})
}

func (b *graphBuilder) site(caller *Node, p *Pass, call *ast.CallExpr, isGo, isDefer bool) {
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	s := &CallSite{Pos: call.Lparen, Call: call, Go: isGo, Defer: isDefer}
	fun := unparen(call.Fun)
	if ix, ok := fun.(*ast.IndexExpr); ok { // generic instantiation
		fun = unparen(ix.X)
	}
	if ixl, ok := fun.(*ast.IndexListExpr); ok {
		fun = unparen(ixl.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := p.Info.Uses[fun].(type) {
		case *types.Func:
			s.Kind = CallStatic
			s.Callees = []*Node{b.node(obj.FullName())}
		case *types.Builtin, nil:
			return // builtin (len, append, ...) or unresolved
		default:
			b.dynamic(s, p, call) // func-typed variable
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				m := sel.Obj().(*types.Func)
				if sel.Kind() == types.MethodVal && types.IsInterface(sel.Recv()) {
					b.dispatch(s, m)
				} else {
					s.Kind = CallStatic
					s.Callees = []*Node{b.node(m.FullName())}
				}
			case types.FieldVal:
				b.dynamic(s, p, call) // calling a func-typed field
			}
		} else {
			// Package-qualified: pkg.F(...) or a package-level func var.
			switch obj := p.Info.Uses[fun.Sel].(type) {
			case *types.Func:
				s.Kind = CallStatic
				s.Callees = []*Node{b.node(obj.FullName())}
			default:
				b.dynamic(s, p, call)
			}
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: its body is already walked as part
		// of the enclosing function, so there is no separate callee.
		return
	default:
		b.dynamic(s, p, call)
	}
	b.g.Sites[call] = s
	caller.Calls = append(caller.Calls, s)
	for _, callee := range s.Callees {
		addCaller(callee, caller)
	}
}

// dispatch resolves an interface method call to every program method with
// the same name and signature.
func (b *graphBuilder) dispatch(s *CallSite, m *types.Func) {
	s.Kind = CallInterface
	sig, ok := m.Type().(*types.Signature)
	if !ok {
		return
	}
	key := m.Name() + "|" + sigString(sig)
	if cands := b.methodsBySig[key]; len(cands) > 0 {
		s.Callees = append([]*Node(nil), cands...)
		return
	}
	// No program implementation: keep the interface method itself as an
	// external boundary node.
	s.Callees = []*Node{b.node(m.FullName())}
}

// dynamic resolves a func-value call to every address-taken program
// function with the same signature string.
func (b *graphBuilder) dynamic(s *CallSite, p *Pass, call *ast.CallExpr) {
	s.Kind = CallDynamic
	tv, ok := p.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	s.Callees = append([]*Node(nil), b.addrTakenBySig[sigString(sig)]...)
}

func addCaller(callee, caller *Node) {
	for _, have := range callee.In {
		if have == caller {
			return
		}
	}
	callee.In = append(callee.In, caller)
}

// unparen strips parentheses (ast.Unparen needs go1.23; go.mod pins 1.22).
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
