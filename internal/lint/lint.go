// Package lint is a stdlib-only static-analysis framework enforcing the
// reproduction's source-level invariants: deterministic replay (no wall
// clock, no globally-seeded RNG, no environment-dependent logic in the
// simulator packages), stable iteration/output order, library-safe error
// handling, and a few bug classes this tree has actually hit (builtin
// shadowing, float equality, context-free panics).
//
// The framework is deliberately small: a Checker walks the type-checked AST
// of one package at a time and reports Findings. The driver (cmd/spinelint)
// loads packages and applies DefaultCheckers; golden-fixture tests in this
// package pin each checker's behaviour against testdata/.
//
// Findings can be suppressed at a single site with an escape-hatch comment
//
//	//lint:allow <check> [<check>...]
//
// placed on the offending line or on the line directly above it. A whole
// package can opt out of named checks with
//
//	//lint:allowpkg <check> [<check>...]
//
// in any file comment (conventionally the package doc, next to the written
// justification). Package-scope exemptions are refused — ignored, and
// themselves reported — inside the packages listed in AllowPkgDeny: the
// simulator's determinism is not exemptable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at one source position.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders a finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Pass is the per-package unit of work handed to every checker.
type Pass struct {
	Fset       *token.FileSet
	ImportPath string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info

	findings []Finding
}

// Reportf records a finding at pos for the named check.
func (p *Pass) Reportf(pos token.Pos, check, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:     p.Fset.Position(pos),
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// PkgQualifier resolves a selector qualifier (the x in x.Sel) to the import
// path of the package it names, or "" if x is not a package name.
func (p *Pass) PkgQualifier(x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// Checker is one invariant pass over a package.
type Checker interface {
	// Name is the stable check ID used in findings and allow pragmas.
	Name() string
	// Doc is a one-line rationale shown by `spinelint -list`.
	Doc() string
	Run(p *Pass)
}

// Run applies every checker to the package, drops findings suppressed by
// //lint:allow and //lint:allowpkg pragmas, and returns the rest sorted by
// position.
func Run(p *Pass, checkers []Checker) []Finding {
	for _, c := range checkers {
		c.Run(p)
	}
	return p.finish()
}

// finish filters the accumulated findings through the pragma layers and
// returns them sorted. It is the shared tail of both the per-package Run and
// the whole-program Program.Run, so //lint:allow works identically for
// single-package and cross-package checkers.
func (p *Pass) finish() []Finding {
	allowed := collectAllows(p)
	pkgAllowed := collectPkgAllows(p) // may report allowpkg findings
	var out []Finding
	for _, f := range p.findings {
		if f.Check != allowPkgCheck && pkgAllowed[f.Check] {
			continue
		}
		if allowed[allowKey{f.Pos.Filename, f.Pos.Line, f.Check}] ||
			allowed[allowKey{f.Pos.Filename, f.Pos.Line - 1, f.Check}] {
			continue
		}
		out = append(out, f)
	}
	p.findings = nil
	sortFindings(out)
	return out
}

func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}

type allowKey struct {
	file  string
	line  int
	check string
}

const (
	allowPrefix    = "//lint:allow"
	allowPkgPrefix = "//lint:allowpkg"
	// allowPkgCheck is the ID under which refused //lint:allowpkg pragmas
	// are themselves reported.
	allowPkgCheck = "allowpkg"
)

// collectAllows indexes every //lint:allow pragma by (file, line, check).
// A pragma suppresses findings for the listed checks on its own line and on
// the line below (so it can sit above the offending statement).
func collectAllows(p *Pass) map[allowKey]bool {
	allowed := make(map[allowKey]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok || strings.HasPrefix(rest, "pkg") {
					continue // not a pragma, or the package-scope form
				}
				pos := p.Fset.Position(c.Pos())
				for _, check := range strings.Fields(rest) {
					allowed[allowKey{pos.Filename, pos.Line, check}] = true
				}
			}
		}
	}
	return allowed
}

// AllowPkgDeny lists import-path substrings where //lint:allowpkg is
// refused: the packages whose seeded replay the whole reproduction rests
// on, plus the result store (a cache that is not byte-deterministic is a
// correctness bug, not an inconvenience). The fixture directory pins the
// refusal behaviour in the golden tests.
var AllowPkgDeny = []string{
	"internal/netsim",
	"internal/flowsim",
	"internal/topology",
	"internal/faults",
	"internal/resilience",
	"internal/workload",
	"internal/telemetry",
	"internal/core",
	"internal/store",
	"internal/routing",
	"internal/bakeoff",
	"lint/testdata/allowpkgdeny",
}

// collectPkgAllows gathers //lint:allowpkg pragmas. In a deny-listed
// package the pragma is ignored and reported as a finding; elsewhere the
// named checks are suppressed for the whole package.
func collectPkgAllows(p *Pass) map[string]bool {
	denied := inScope(p.ImportPath, AllowPkgDeny)
	allowed := make(map[string]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPkgPrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				if denied {
					p.Reportf(c.Pos(), allowPkgCheck,
						"package-scope lint exemption is not permitted in %s; use a per-line //lint:allow with justification", p.ImportPath)
					continue
				}
				for _, check := range strings.Fields(rest) {
					allowed[check] = true
				}
			}
		}
	}
	return allowed
}

// DefaultCheckers returns the full suite with the scopes used on this tree.
func DefaultCheckers() []Checker {
	return []Checker{
		&Determinism{Scope: SimulatorScope},
		&MapOrder{},
		&NoFatal{},
		&ShadowBuiltin{},
		&FloatEq{},
		&NakedPanic{},
		&SharedRand{},
		&CtxLeak{},
		&Locks{},
		&GoLeak{},
	}
}

// DefaultProgramCheckers returns the whole-program suite: the checkers that
// need the cross-package call graph and taint engine (see program.go).
func DefaultProgramCheckers() []ProgramChecker {
	return []ProgramChecker{
		&DetFlow{Scope: SimulatorScope},
		&HotPath{},
	}
}

// SimulatorScope lists the import-path substrings of the packages whose
// results must replay byte-identically from a seed (§5/§6 experiments and
// the PR-1 fault-injection replay). The lint fixtures are included so the
// real driver reproduces the golden findings.
var SimulatorScope = []string{
	"internal/netsim",
	"internal/flowsim",
	"internal/topology",
	"internal/faults",
	"internal/resilience",
	"internal/workload",
	// The telemetry twin is driven by the simulator's event stream, so its
	// series must replay byte-identically too (the /v1/telemetry wall-clock
	// pacing lives in serve, not here).
	"internal/telemetry",
	// The spinelessd layers: the store must be determinism-clean (its
	// logical clock exists precisely so it can be), while jobs and serve
	// carry an audited package-scope exemption for wall-clock telemetry.
	"internal/store",
	"internal/jobs",
	"internal/serve",
	// Routing path selection and the bake-off scorecard both feed seeded
	// replay: a path or a ranked cell that differs between runs breaks
	// the byte-identical contract.
	"internal/routing",
	"internal/bakeoff",
	"lint/testdata/",
}
