package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands outside test
// files. Accumulated rounding makes exact float comparison a latent
// correctness bug in throughput/UDF math; compare against a tolerance or
// restructure the guard as an inequality. Sites that genuinely need exact
// comparison (IEEE sentinels) can carry a //lint:allow floateq pragma.
type FloatEq struct{}

func (*FloatEq) Name() string { return "floateq" }
func (*FloatEq) Doc() string {
	return "flag ==/!= between floating-point operands outside tests"
}

func (c *FloatEq) Run(p *Pass) {
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isFloat(p.Info.TypeOf(be.X)) || isFloat(p.Info.TypeOf(be.Y)) {
				p.Reportf(be.Pos(), c.Name(),
					"floating-point %s comparison; use a tolerance or an inequality", be.Op)
			}
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
