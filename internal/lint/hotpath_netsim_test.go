package lint

import (
	"strings"
	"testing"
)

// TestHotPathNetsimAgreesWithAllocPins runs the hotpath checker over the
// real netsim package: the event-loop handlers are annotated //lint:hotpath,
// and netsim's TestNilTracerAddsNoAllocs / BenchmarkNetsimEvents pin the
// same property dynamically (AllocsPerRun), so the static walk reporting
// zero findings is the two tools agreeing, not the checker finding nothing
// to look at — the sanity assertions on the call graph rule the latter out.
func TestHotPathNetsimAgreesWithAllocPins(t *testing.T) {
	fset, pkgs, err := Load("../..", []string{"./internal/netsim"})
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram(fset, pkgs)

	const root = "(*spineless/internal/netsim.Simulator).sendSegment"
	if prog.Graph.Nodes[root] == nil {
		t.Fatalf("call graph has no node for %s; the walk would be vacuous", root)
	}
	callees := prog.Graph.Callees(root)
	for _, want := range []string{
		"(*spineless/internal/netsim.Simulator).alloc",
		"(*spineless/internal/netsim.Simulator).enterLink",
	} {
		found := false
		for _, c := range callees {
			if c == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("sendSegment's callees %v lack %s; hot-path reachability is broken", callees, want)
		}
	}

	var hot []string
	for _, f := range prog.Run(nil, []ProgramChecker{&HotPath{}}) {
		if f.Check == "hotpath" {
			hot = append(hot, f.String())
		}
	}
	if len(hot) > 0 {
		t.Errorf("hotpath findings on netsim contradict the AllocsPerRun pins:\n%s",
			strings.Join(hot, "\n"))
	}
}

// TestHotPathShardedAgreesWithAllocPins is the same two-tool agreement for
// the sharded engine's inner loop: vpSim.runWindow and drainRings are
// annotated //lint:hotpath, netsim's TestShardHotPathAddsNoAllocs pins the
// underlying primitives at zero allocations, and here the static walk over
// the same call graph must come back clean — after the sanity checks prove
// the walk actually reaches the packet and ring machinery.
func TestHotPathShardedAgreesWithAllocPins(t *testing.T) {
	fset, pkgs, err := Load("../..", []string{"./internal/netsim"})
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram(fset, pkgs)

	const root = "(*spineless/internal/netsim.vpSim).runWindow"
	if prog.Graph.Nodes[root] == nil {
		t.Fatalf("call graph has no node for %s; the walk would be vacuous", root)
	}
	wantReach := map[string]string{
		"(*spineless/internal/netsim.vpSim).deliver": root,
		"(*spineless/internal/netsim.vpSim).txDone":  root,
		"(*spineless/internal/netsim.vpSim).alloc":   "(*spineless/internal/netsim.vpSim).drainRings",
		"(*spineless/internal/netsim.spscRing).put":  "(*spineless/internal/netsim.vpSim).ringPut",
		"spineless/internal/netsim.heapPush":         "(*spineless/internal/netsim.vpSim).push",
	}
	for want, from := range wantReach {
		found := false
		for _, c := range prog.Graph.Callees(from) {
			if c == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s's callees %v lack %s; sharded hot-path reachability is broken",
				from, prog.Graph.Callees(from), want)
		}
	}

	var hot []string
	for _, f := range prog.Run(nil, []ProgramChecker{&HotPath{}}) {
		if f.Check == "hotpath" {
			hot = append(hot, f.String())
		}
	}
	if len(hot) > 0 {
		t.Errorf("hotpath findings on the sharded engine contradict TestShardHotPathAddsNoAllocs:\n%s",
			strings.Join(hot, "\n"))
	}
}
