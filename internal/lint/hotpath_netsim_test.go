package lint

import (
	"strings"
	"testing"
)

// TestHotPathNetsimAgreesWithAllocPins runs the hotpath checker over the
// real netsim package: the event-loop handlers are annotated //lint:hotpath,
// and netsim's TestNilTracerAddsNoAllocs / BenchmarkNetsimEvents pin the
// same property dynamically (AllocsPerRun), so the static walk reporting
// zero findings is the two tools agreeing, not the checker finding nothing
// to look at — the sanity assertions on the call graph rule the latter out.
func TestHotPathNetsimAgreesWithAllocPins(t *testing.T) {
	fset, pkgs, err := Load("../..", []string{"./internal/netsim"})
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram(fset, pkgs)

	const root = "(*spineless/internal/netsim.Simulator).sendSegment"
	if prog.Graph.Nodes[root] == nil {
		t.Fatalf("call graph has no node for %s; the walk would be vacuous", root)
	}
	callees := prog.Graph.Callees(root)
	for _, want := range []string{
		"(*spineless/internal/netsim.Simulator).alloc",
		"(*spineless/internal/netsim.Simulator).enterLink",
	} {
		found := false
		for _, c := range callees {
			if c == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("sendSegment's callees %v lack %s; hot-path reachability is broken", callees, want)
		}
	}

	var hot []string
	for _, f := range prog.Run(nil, []ProgramChecker{&HotPath{}}) {
		if f.Check == "hotpath" {
			hot = append(hot, f.String())
		}
	}
	if len(hot) > 0 {
		t.Errorf("hotpath findings on netsim contradict the AllocsPerRun pins:\n%s",
			strings.Join(hot, "\n"))
	}
}
