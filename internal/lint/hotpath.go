package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPath turns the simulator's AllocsPerRun benchmark pins into
// compile-time findings. A function annotated
//
//	//lint:hotpath
//
// (in its doc comment or on the line above the declaration) is a root: the
// checker walks the static call graph from every root and flags
// allocation-inducing constructs in every function reached — heap-escaping
// composite literals (&T{}, slice and map literals), make/new, closures,
// non-constant string concatenation, fmt calls, and concrete→interface
// conversions at assignments and call boundaries.
//
// Only statically-resolved edges are walked: an interface or func-value
// call is a traversal boundary (the tracer hooks, the routing scheme).
// That matches the benchmarks, which pin the nil-tracer fast path. A
// function annotated //lint:coldpath is skipped entirely — the escape
// hatch for invariant-violation reporting and other paths that only run
// when the simulation is already broken. Individual sanctioned allocations
// (lazy map init, pool refills) take //lint:allow hotpath.
type HotPath struct{}

func (*HotPath) Name() string { return "hotpath" }
func (*HotPath) Doc() string {
	return "functions reached from //lint:hotpath roots must not allocate"
}

const (
	hotPragma  = "//lint:hotpath"
	coldPragma = "//lint:coldpath"
)

func (c *HotPath) RunProgram(prog *Program) {
	roots, cold := collectPathPragmas(prog)
	if len(roots) == 0 {
		return
	}
	// BFS over static edges; remember which root first reached each
	// function for the message.
	reachedFrom := make(map[string]string)
	var queue []*Node
	for _, r := range roots {
		n := prog.Graph.Nodes[r]
		if n == nil || cold[r] {
			continue
		}
		if _, seen := reachedFrom[r]; !seen {
			reachedFrom[r] = r
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, site := range n.Calls {
			if site.Kind != CallStatic || site.Go || site.Defer {
				continue // dynamic dispatch and goroutine/defer hand-offs are boundaries
			}
			for _, callee := range site.Callees {
				if callee.Fn == nil || cold[callee.Name] {
					continue
				}
				if _, seen := reachedFrom[callee.Name]; seen {
					continue
				}
				reachedFrom[callee.Name] = reachedFrom[n.Name]
				queue = append(queue, callee)
			}
		}
	}
	for name, root := range reachedFrom {
		fi := prog.Funcs[name]
		if fi == nil {
			continue
		}
		c.checkFunc(prog, fi, root)
	}
}

// collectPathPragmas finds //lint:hotpath roots and //lint:coldpath stops,
// matching pragmas to the function declaration they document (doc comment
// or the line directly above the func keyword).
func collectPathPragmas(prog *Program) (roots []string, cold map[string]bool) {
	cold = make(map[string]bool)
	for _, p := range prog.Passes {
		for _, f := range p.Files {
			// Index pragma comment lines per file.
			pragmaLine := make(map[int]string)
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					text := strings.TrimSpace(cm.Text)
					if strings.HasPrefix(text, hotPragma) || strings.HasPrefix(text, coldPragma) {
						pragmaLine[prog.Fset.Position(cm.Pos()).Line] = text
					}
				}
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				text := ""
				if fd.Doc != nil {
					for _, cm := range fd.Doc.List {
						t := strings.TrimSpace(cm.Text)
						if strings.HasPrefix(t, hotPragma) || strings.HasPrefix(t, coldPragma) {
							text = t
						}
					}
				}
				if text == "" {
					text = pragmaLine[prog.Fset.Position(fd.Pos()).Line-1]
				}
				switch {
				case strings.HasPrefix(text, coldPragma):
					cold[obj.FullName()] = true
				case strings.HasPrefix(text, hotPragma):
					roots = append(roots, obj.FullName())
				}
			}
		}
	}
	return roots, cold
}

func (c *HotPath) checkFunc(prog *Program, fi *FuncInfo, root string) {
	p := fi.Pass
	suffix := ""
	if root != fi.Name {
		suffix = " (reached from " + shortName(root) + ")"
	}
	report := func(pos token.Pos, what string) {
		prog.Reportf(pos, c.Name(), "%s allocates on the hot path%s", what, suffix)
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "closure creation")
			return false // the closure body only runs through a dynamic call
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal (escapes to heap)")
					return false
				}
			}
		case *ast.CompositeLit:
			if t := p.Info.Types[n].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					report(n.Pos(), "slice literal")
				case *types.Map:
					report(n.Pos(), "map literal")
				}
			}
			// Struct value literals stay on the stack unless & is taken
			// (handled above); leave them alone.
		case *ast.CallExpr:
			c.checkCall(prog, p, n, report)
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := p.Info.Types[n].Type; t != nil && isString(t) {
					if tv, ok := p.Info.Types[n]; !ok || tv.Value == nil { // non-constant concat
						report(n.OpPos, "string concatenation")
					}
				}
			}
		}
		return true
	})
}

func (c *HotPath) checkCall(prog *Program, p *Pass, call *ast.CallExpr, report func(token.Pos, string)) {
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: concrete → interface boxes the value.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at := p.Info.Types[call.Args[0]].Type; at != nil && !types.IsInterface(at) {
				report(call.Pos(), "interface conversion (boxes the value)")
			}
		}
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "make":
			report(call.Pos(), "make")
			return
		case "new":
			report(call.Pos(), "new")
			return
		}
	}
	if fn := calleeFunc(p, call); fn != nil {
		if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
			report(call.Pos(), "fmt."+fn.Name()+" (formats and boxes arguments)")
			return
		}
	}
	// Concrete argument passed to an interface parameter of a static call:
	// the value is boxed at the call site.
	site := prog.Graph.Sites[call]
	if site == nil || site.Kind != CallStatic || len(site.Callees) != 1 {
		return
	}
	callee := site.Callees[0]
	var sig *types.Signature
	if callee.Fn != nil {
		sig, _ = callee.Fn.Obj.Type().(*types.Signature)
	} else if fn := calleeFunc(p, call); fn != nil {
		sig, _ = fn.Type().(*types.Signature)
	}
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break // variadic tail of an external call; fmt covered above
		}
		pt := sig.Params().At(i).Type()
		if sig.Variadic() && i == sig.Params().Len()-1 {
			break // variadic boxing is the callee's contract to avoid
		}
		if !types.IsInterface(pt) {
			continue
		}
		if at := p.Info.Types[arg].Type; at != nil && !types.IsInterface(at) && !isNil(p, arg) {
			report(arg.Pos(), "concrete value boxed into interface parameter")
		}
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isNil(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.IsNil()
}

// shortName trims the module path out of a FullName for messages.
func shortName(full string) string {
	i := strings.LastIndex(full, "/")
	if i < 0 {
		return full
	}
	// Keep a method's receiver prefix: "(*a/b/pkg.T).M" → "(*pkg.T).M".
	prefix := ""
	if strings.HasPrefix(full, "(*") {
		prefix = "(*"
	} else if strings.HasPrefix(full, "(") {
		prefix = "("
	}
	return prefix + full[i+1:]
}
