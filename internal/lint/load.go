package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// LoadedPackage is one type-checked package ready for checking.
type LoadedPackage struct {
	ImportPath string
	Pkg        *types.Package
	Files      []*ast.File
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns with the go tool, parses and type-checks every
// matched package from source, and resolves imports (stdlib and sibling
// packages alike) through compiled export data. It is stdlib-only: the heavy
// lifting — pattern expansion, build caching, export-data generation — is
// delegated to `go list -export`, which the go command guarantees to keep
// compatible with go/importer.
func Load(dir string, patterns []string) (*token.FileSet, []*LoadedPackage, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}

	exports := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*LoadedPackage
	for _, lp := range listed {
		if lp.DepOnly {
			continue
		}
		if lp.Error != nil {
			return nil, nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, pkg)
	}
	return fset, out, nil
}

// LoadDir loads the single package rooted at dir (used by fixture tests).
func LoadDir(dir string) (*token.FileSet, *LoadedPackage, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, nil, err
	}
	fset, pkgs, err := Load(filepath.Dir(abs), []string{"./" + filepath.Base(abs)})
	if err != nil {
		return nil, nil, err
	}
	if len(pkgs) != 1 {
		return nil, nil, fmt.Errorf("lint: %s: expected 1 package, got %d", dir, len(pkgs))
	}
	return fset, pkgs[0], nil
}

func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var out []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, lp listedPackage) (*LoadedPackage, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
	}
	return &LoadedPackage{ImportPath: lp.ImportPath, Pkg: pkg, Files: files, Info: info}, nil
}
