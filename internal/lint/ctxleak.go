package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxLeak flags context.WithCancel/WithTimeout/WithDeadline (and their
// Cause variants) whose cancel function is discarded or only ever invoked
// by a plain, non-deferred call in the same function. Every derived context
// owns resources (a timer, a propagation goroutine) released only by its
// cancel; a plain trailing cancel() leaks them on any early return or
// panic between the With* and the call. The fix is `defer cancel()` — or
// genuinely storing the cancel (field, argument, closure) when its
// lifetime really does extend past the function.
//
// `go vet`'s lostcancel overlaps on the discarded-cancel case; this check
// additionally demands the defer/store discipline on cancels that *are*
// nominally used, which is where this tree's leaks have hidden.
type CtxLeak struct{}

func (*CtxLeak) Name() string { return "ctxleak" }
func (*CtxLeak) Doc() string {
	return "require context cancel funcs to be deferred or stored, not just called inline"
}

// cancelSources are the context constructors whose final result is a
// cancel function that must be released.
var cancelSources = map[string]bool{
	"WithCancel":        true,
	"WithCancelCause":   true,
	"WithTimeout":       true,
	"WithTimeoutCause":  true,
	"WithDeadline":      true,
	"WithDeadlineCause": true,
}

func (c *CtxLeak) Run(p *Pass) {
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		// Walk with an ancestor stack so each assignment knows its
		// enclosing function (the scope the cancel must not escape
		// unreleased).
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.AssignStmt:
				c.checkAssign(p, n, enclosingFunc(stack[:len(stack)-1]))
			case *ast.ValueSpec:
				// var ctx, cancel = context.WithCancel(...) — same contract
				// as the := form.
				if len(n.Names) == 2 && len(n.Values) == 1 {
					c.checkBinding(p, n.Values[0], n.Names[1], true, enclosingFunc(stack[:len(stack)-1]))
				}
			}
			return true
		})
	}
}

// enclosingFunc returns the innermost FuncDecl/FuncLit in the ancestor
// stack, or nil at package scope.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

func funcBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

func (c *CtxLeak) checkAssign(p *Pass, as *ast.AssignStmt, fn ast.Node) {
	if len(as.Rhs) != 1 || len(as.Lhs) != 2 {
		return
	}
	id, ok := as.Lhs[1].(*ast.Ident)
	if !ok {
		return // stored straight into a field/index: a kept reference
	}
	c.checkBinding(p, as.Rhs[0], id, as.Tok == token.DEFINE, fn)
}

// checkBinding handles one binding of a context constructor's results to
// (ctx, cancel), from either an assignment or a var declaration.
func (c *CtxLeak) checkBinding(p *Pass, rhs ast.Expr, id *ast.Ident, define bool, fn ast.Node) {
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !cancelSources[sel.Sel.Name] || p.PkgQualifier(sel.X) != "context" {
		return
	}
	src := "context." + sel.Sel.Name

	if id.Name == "_" {
		p.Reportf(id.Pos(), c.Name(),
			"cancel from %s is discarded; the context's resources are never released — assign it and defer cancel()", src)
		return
	}
	var obj types.Object
	if define {
		obj = p.Info.Defs[id]
	} else {
		obj = p.Info.Uses[id]
	}
	if obj == nil || fn == nil {
		return // package-scope init: the cancel outlives every function
	}
	body := funcBody(fn)
	if body == nil {
		return
	}
	if !cancelReleased(p, body, obj, id) {
		p.Reportf(id.Pos(), c.Name(),
			"cancel %q from %s is neither deferred nor stored; an early return or panic leaks the context — defer %s()", id.Name, src, id.Name)
	}
}

// cancelReleased reports whether the cancel object has at least one use
// that outlives straight-line execution: a deferred call, capture by a
// nested closure, or any value use (argument, field, return, comparison).
// A plain `cancel()` statement in the same function is NOT enough — that
// is exactly the form an early return or panic skips.
func cancelReleased(p *Pass, body *ast.BlockStmt, obj types.Object, def *ast.Ident) bool {
	released := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if released {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == def || p.Info.Uses[id] != obj {
			return true
		}
		if useReleases(stack) {
			released = true
		}
		return true
	})
	return released
}

// useReleases classifies one use of the cancel identifier by its ancestor
// chain (stack ends with the identifier itself).
func useReleases(stack []ast.Node) bool {
	for _, n := range stack[:len(stack)-1] {
		switch n.(type) {
		case *ast.DeferStmt:
			return true // deferred (directly or inside a deferred closure)
		case *ast.FuncLit:
			// Captured by a nested closure: the closure value carries the
			// cancel beyond straight-line execution (watchdogs, cleanup
			// funcs). The closure's own discipline is its business.
			return true
		case *ast.CompositeLit:
			// Stored into a struct/slice/map literal (Worker{stop: cancel}):
			// the built value owns the cancel's lifetime from here on.
			return true
		}
	}
	// Plain call statement `cancel()`: parent chain is ... ExprStmt → CallExpr → Ident(Fun).
	if len(stack) >= 3 {
		if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == stack[len(stack)-1] {
			if _, ok := stack[len(stack)-3].(*ast.ExprStmt); ok {
				return false
			}
		}
	}
	// Anything else — passed as an argument, stored, returned, compared —
	// hands the reference onward.
	return true
}
