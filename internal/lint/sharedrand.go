package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SharedRand flags *rand.Rand values that cross a concurrency boundary: a
// generator captured by a `go func` literal, or captured/read (including
// through struct fields) by a worker literal handed to the internal/parallel
// fan-out engine. A rand.Rand is not safe for concurrent use, and even when
// externally locked it makes draw order depend on goroutine scheduling —
// silently breaking the repo's determinism contract that parallel output be
// byte-identical to serial. Workers must instead derive an independent seed
// per trial index (parallel.DeriveSeed) and build a private generator.
type SharedRand struct{}

func (*SharedRand) Name() string { return "sharedrand" }
func (*SharedRand) Doc() string {
	return "forbid *rand.Rand shared with goroutines or parallel fan-out workers"
}

func (c *SharedRand) Run(p *Pass) {
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					c.checkLit(p, lit, "goroutine")
				}
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok &&
					pkgPathContains(p.PkgQualifier(sel.X), "internal/parallel") {
					for _, arg := range n.Args {
						if lit, ok := arg.(*ast.FuncLit); ok {
							c.checkLit(p, lit, "parallel worker")
						}
					}
				}
			}
			return true
		})
	}
}

// checkLit reports every *rand.Rand the literal reaches from its enclosing
// scope — captured locals and parameters, package globals, and struct fields
// on captured receivers — once per (literal, object) at the first use.
func (c *SharedRand) checkLit(p *Pass, lit *ast.FuncLit, boundary string) {
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			v, ok := p.Info.Uses[n.Sel].(*types.Var)
			if !ok || !v.IsField() || seen[v] || !isRandPtr(v.Type()) {
				return true
			}
			// A field on a struct built inside the literal is worker-private.
			if root := rootIdent(n.X); root != nil {
				if obj := p.Info.Uses[root]; obj != nil && insideLit(obj, lit) {
					return true
				}
			}
			seen[v] = true
			p.Reportf(n.Sel.Pos(), c.Name(),
				"field %s (*rand.Rand) is read by a %s; derive a per-trial seed (parallel.DeriveSeed) and build a private generator", v.Name(), boundary)
		case *ast.Ident:
			v, ok := p.Info.Uses[n].(*types.Var)
			if !ok || v.IsField() || seen[v] || !isRandPtr(v.Type()) || insideLit(v, lit) {
				return true
			}
			seen[v] = true
			p.Reportf(n.Pos(), c.Name(),
				"%s captures %s (*rand.Rand) from the enclosing scope; derive a per-trial seed (parallel.DeriveSeed) and build a private generator", boundary, v.Name())
		}
		return true
	})
}

// insideLit reports whether obj is declared within the literal — worker-local
// state is fine; only values reaching in from outside are shared.
func insideLit(obj types.Object, lit *ast.FuncLit) bool {
	return obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
}

// rootIdent unwraps selector/index/paren chains to the base identifier of an
// access like h.inner.rng, or nil for non-ident bases (e.g. calls).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isRandPtr reports whether t is *math/rand.Rand (v1 or v2).
func isRandPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return obj.Name() == "Rand" && (path == "math/rand" || path == "math/rand/v2")
}

func pkgPathContains(path, sub string) bool {
	return path != "" && strings.Contains(path, sub)
}
