package lint

import (
	"go/ast"
	"go/types"
)

// Locks enforces mutex hygiene, per function:
//
//   - a Lock with no matching Unlock anywhere in the function;
//   - a return reached while the lock is still held, when the function
//     does unlock on other paths (the early-return leak a later refactor
//     introduces into manually-paired lock code);
//   - re-locking the same mutex while it is held (self-deadlock);
//   - a blocking operation — channel send/receive, select without default,
//     WaitGroup/Cond Wait, time.Sleep, an HTTP round trip — executed while
//     the lock is held, which turns one slow peer into a fleet-wide stall;
//   - sync.Mutex/RWMutex/WaitGroup/Once/Cond values copied by assignment
//     or range (the copylocks class; go vet overlaps on call arguments,
//     this covers the assignment/range forms in one place with our pragma
//     machinery).
//
// The path analysis is a forward walk from each Lock statement through the
// remainder of its enclosing blocks. It is deliberately conservative:
// branch/goto while held and loop bodies that unlock conditionally are
// treated as released rather than guessed at.
type Locks struct{}

func (*Locks) Name() string { return "locks" }
func (*Locks) Doc() string {
	return "locks must be released on every path and never held across blocking operations"
}

// lockMethods maps the sync method FullNames that acquire to the method
// names that release them. Keying on the method object (not the selector
// text) resolves promoted methods from embedded mutexes too.
var lockMethods = map[string]map[string]bool{
	"(*sync.Mutex).Lock":    {"Unlock": true},
	"(*sync.RWMutex).Lock":  {"Unlock": true},
	"(*sync.RWMutex).RLock": {"RUnlock": true},
}

// blockingCalls are operations that can park the goroutine indefinitely
// (or, for Sleep and HTTP, for an unbounded configured duration).
var blockingCalls = map[string]string{
	"(*sync.WaitGroup).Wait":  "WaitGroup.Wait",
	"(*sync.Cond).Wait":       "Cond.Wait",
	"time.Sleep":              "time.Sleep",
	"(*net/http.Client).Do":   "HTTP round trip",
	"(*net/http.Client).Get":  "HTTP round trip",
	"(*net/http.Client).Post": "HTTP round trip",
	"net/http.Get":            "HTTP round trip",
	"net/http.Post":           "HTTP round trip",
}

func (c *Locks) Run(p *Pass) {
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				c.checkFunc(p, body)
			}
			return true // literals nested inside are visited separately
		})
		c.checkCopies(p, f)
	}
}

// checkFunc analyzes every Lock site in one function body (nested literals
// excluded — they execute at a different time and are analyzed on their
// own visit).
func (c *Locks) checkFunc(p *Pass, body *ast.BlockStmt) {
	w := &lockWalker{p: p, c: c}
	w.findLocks(body, body.List)
}

type lockWalker struct {
	p *Pass
	c *Locks
}

// findLocks scans a statement list (recursing into nested blocks, but not
// nested function literals) for Lock calls, and runs the path analysis
// from each.
func (w *lockWalker) findLocks(body *ast.BlockStmt, stmts []ast.Stmt) {
	for i, s := range stmts {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if key, releases, ok := w.lockCall(s.X); ok {
				w.analyzeFrom(body, stmts[i+1:], s, key, releases)
			}
		case *ast.BlockStmt:
			w.findLocks(body, s.List)
		case *ast.IfStmt:
			w.findLocks(body, s.Body.List)
			if b, ok := s.Else.(*ast.BlockStmt); ok {
				w.findLocks(body, b.List)
			} else if e, ok := s.Else.(*ast.IfStmt); ok {
				w.findLocks(body, []ast.Stmt{e})
			}
		case *ast.ForStmt:
			w.findLocks(body, s.Body.List)
		case *ast.RangeStmt:
			w.findLocks(body, s.Body.List)
		case *ast.SwitchStmt:
			for _, cl := range s.Body.List {
				w.findLocks(body, cl.(*ast.CaseClause).Body)
			}
		case *ast.TypeSwitchStmt:
			for _, cl := range s.Body.List {
				w.findLocks(body, cl.(*ast.CaseClause).Body)
			}
		case *ast.SelectStmt:
			for _, cl := range s.Body.List {
				w.findLocks(body, cl.(*ast.CommClause).Body)
			}
		case *ast.LabeledStmt:
			w.findLocks(body, []ast.Stmt{s.Stmt})
		}
	}
}

// lockCall reports whether e is a call acquiring a sync lock; key is the
// receiver expression text ("m.mu"), releases the method names that free it.
func (w *lockWalker) lockCall(e ast.Expr) (key string, releases map[string]bool, ok bool) {
	call, okCall := e.(*ast.CallExpr)
	if !okCall {
		return "", nil, false
	}
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", nil, false
	}
	fn, okFn := w.p.Info.Uses[sel.Sel].(*types.Func)
	if !okFn {
		return "", nil, false
	}
	rel, isLock := lockMethods[fn.FullName()]
	if !isLock {
		return "", nil, false
	}
	return types.ExprString(sel.X), rel, true
}

// unlockCall reports whether e releases key.
func (w *lockWalker) unlockCall(e ast.Expr, key string, releases map[string]bool) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !releases[sel.Sel.Name] {
		return false
	}
	return types.ExprString(sel.X) == key
}

// pathState is the result of walking a statement sequence while holding a
// lock.
type pathState int

const (
	stillHeld  pathState = iota // fell through, lock held
	released                    // fell through, lock released (or deferred)
	terminated                  // no fallthrough (return/branch on every path)
)

// analyzeFrom walks the statements after one Lock call. anyUnlock gates
// the per-return findings: a function with zero unlocks gets exactly one
// finding at the Lock itself.
func (w *lockWalker) analyzeFrom(body *ast.BlockStmt, rest []ast.Stmt, lockStmt *ast.ExprStmt, key string, releases map[string]bool) {
	anyUnlock := false
	ast.Inspect(body, func(n ast.Node) bool {
		if e, ok := n.(*ast.ExprStmt); ok && w.unlockCall(e.X, key, releases) {
			anyUnlock = true
		}
		if d, ok := n.(*ast.DeferStmt); ok && w.deferReleases(d, key, releases) {
			anyUnlock = true
		}
		return true
	})
	if !anyUnlock {
		w.p.Reportf(lockStmt.Pos(), w.c.Name(),
			"%s.Lock() with no matching unlock in this function", key)
		return
	}
	w.walk(rest, walkCtx{key: key, releases: releases, anyUnlock: anyUnlock})
}

// walkCtx is the per-path state of the forward walk. deferred is set once a
// defer guarantees release at return — leak findings stop, but blocking-op
// findings continue, because the lock stays held until the function
// actually returns.
type walkCtx struct {
	key       string
	releases  map[string]bool
	anyUnlock bool
	deferred  bool
}

// walk processes a statement sequence with the lock held, reporting
// violations, and returns how the sequence left the lock.
func (w *lockWalker) walk(stmts []ast.Stmt, ctx walkCtx) pathState {
	for _, s := range stmts {
		// A blocking operation anywhere in this statement while held is a
		// finding regardless of how the paths merge afterwards.
		switch s := s.(type) {
		case *ast.ExprStmt:
			if w.unlockCall(s.X, ctx.key, ctx.releases) {
				return released
			}
			if k, _, ok := w.lockCall(s.X); ok && k == ctx.key {
				w.p.Reportf(s.Pos(), w.c.Name(),
					"%s locked again while already held: self-deadlock", ctx.key)
				return terminated
			}
			w.checkBlocking(s, ctx.key)
		case *ast.DeferStmt:
			if w.deferReleases(s, ctx.key, ctx.releases) {
				// Release is now guaranteed at return, but the lock stays
				// held until then: keep scanning for blocking operations.
				ctx.deferred = true
			}
		case *ast.ReturnStmt:
			w.checkBlocking(s, ctx.key)
			if !ctx.deferred && ctx.anyUnlock {
				w.p.Reportf(s.Pos(), w.c.Name(),
					"return while %s is held; this path never unlocks (use defer %s.Unlock())", ctx.key, ctx.key)
			}
			return terminated
		case *ast.BranchStmt:
			// break/continue/goto while held: the target may unlock; too
			// imprecise to report, but the sequence ends here.
			return terminated
		case *ast.IfStmt:
			w.checkBlocking(s.Cond, ctx.key)
			thenSt := w.walk(s.Body.List, ctx)
			elseSt := stillHeld
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseSt = w.walk(e.List, ctx)
			case *ast.IfStmt:
				elseSt = w.walk([]ast.Stmt{e}, ctx)
			}
			st := mergeBranches(thenSt, elseSt)
			if st != stillHeld {
				return st
			}
		case *ast.BlockStmt:
			st := w.walk(s.List, ctx)
			if st != stillHeld {
				return st
			}
		case *ast.SelectStmt:
			if !selectHasDefault(s) {
				w.p.Reportf(s.Pos(), w.c.Name(),
					"select with no default while %s is held blocks all other holders", ctx.key)
			}
			st := w.walkClauses(selectBodies(s), ctx)
			if st != stillHeld {
				return st
			}
		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			st := w.walkClauses(caseBodies(s), ctx)
			if st != stillHeld {
				return st
			}
		case *ast.ForStmt, *ast.RangeStmt:
			// Loops are walked only for blocking ops and unlocks; if the
			// body can unlock, treat the whole loop as released rather than
			// reason about iteration counts.
			var bodyStmts []ast.Stmt
			if f, ok := s.(*ast.ForStmt); ok {
				bodyStmts = f.Body.List
			} else {
				bodyStmts = s.(*ast.RangeStmt).Body.List
			}
			w.scanBlocking(bodyStmts, ctx.key)
			if w.containsUnlock(bodyStmts, ctx.key, ctx.releases) {
				return released
			}
		case *ast.LabeledStmt:
			st := w.walk([]ast.Stmt{s.Stmt}, ctx)
			if st != stillHeld {
				return st
			}
		case *ast.GoStmt:
			// The spawned goroutine runs concurrently; nothing it does
			// releases our hold. Its body is checked on its own visit.
		case *ast.SendStmt:
			w.checkBlocking(s, ctx.key)
		default:
			w.checkBlocking(s, ctx.key)
		}
	}
	if ctx.deferred {
		return released
	}
	return stillHeld
}

// walkClauses merges clause bodies like parallel branches: released only if
// every falling-through clause released; a missing default keeps the
// fallthrough path held.
func (w *lockWalker) walkClauses(bodies [][]ast.Stmt, ctx walkCtx) pathState {
	allReleased := len(bodies) > 0
	allTerminated := len(bodies) > 0
	for _, b := range bodies {
		st := w.walk(b, ctx)
		if st != released {
			allReleased = false
		}
		if st != terminated {
			allTerminated = false
		}
	}
	if allTerminated {
		return terminated
	}
	if allReleased {
		return released
	}
	return stillHeld
}

func mergeBranches(a, b pathState) pathState {
	if a == terminated {
		return b
	}
	if b == terminated {
		return a
	}
	if a == released && b == released {
		return released
	}
	return stillHeld
}

// deferReleases reports whether a defer statement releases key, directly
// (defer mu.Unlock()) or via a deferred closure containing the unlock.
func (w *lockWalker) deferReleases(d *ast.DeferStmt, key string, releases map[string]bool) bool {
	if w.unlockCall(d.Call, key, releases) {
		return true
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if e, ok := n.(*ast.ExprStmt); ok && w.unlockCall(e.X, key, releases) {
				found = true
			}
			return !found
		})
		return found
	}
	return false
}

func (w *lockWalker) containsUnlock(stmts []ast.Stmt, key string, releases map[string]bool) bool {
	found := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if e, ok := n.(*ast.ExprStmt); ok && w.unlockCall(e.X, key, releases) {
				found = true
			}
			return !found
		})
	}
	return found
}

// scanBlocking reports blocking operations anywhere in stmts (loop bodies,
// where the path walker does not descend statement-by-statement).
func (w *lockWalker) scanBlocking(stmts []ast.Stmt, key string) {
	for _, s := range stmts {
		w.checkBlocking(s, key)
	}
}

// checkBlocking reports channel operations and known blocking calls inside
// one statement or expression, skipping nested function literals.
func (w *lockWalker) checkBlocking(n ast.Node, key string) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			// Reported by the path walker itself (needs default-awareness);
			// don't descend into comm clauses from here.
			return false
		case *ast.SendStmt:
			w.p.Reportf(m.Arrow, w.c.Name(),
				"channel send while %s is held; a slow receiver stalls every other holder", key)
		case *ast.UnaryExpr:
			if m.Op.String() == "<-" {
				w.p.Reportf(m.OpPos, w.c.Name(),
					"channel receive while %s is held; a slow sender stalls every other holder", key)
			}
		case *ast.CallExpr:
			if sel, ok := m.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := w.p.Info.Uses[sel.Sel].(*types.Func); ok {
					if what, bad := blockingCalls[fn.FullName()]; bad {
						w.p.Reportf(m.Pos(), w.c.Name(),
							"%s while %s is held; one slow call stalls every other holder", what, key)
					}
				}
			} else if id, ok := m.Fun.(*ast.Ident); ok {
				if fn, ok := w.p.Info.Uses[id].(*types.Func); ok {
					if what, bad := blockingCalls[fn.FullName()]; bad {
						w.p.Reportf(m.Pos(), w.c.Name(),
							"%s while %s is held; one slow call stalls every other holder", what, key)
					}
				}
			}
		}
		return true
	})
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func selectBodies(s *ast.SelectStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, cl := range s.Body.List {
		out = append(out, cl.(*ast.CommClause).Body)
	}
	return out
}

func caseBodies(s ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	var list []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		list = s.Body.List
	case *ast.TypeSwitchStmt:
		list = s.Body.List
	}
	for _, cl := range list {
		out = append(out, cl.(*ast.CaseClause).Body)
	}
	return out
}

// checkCopies flags sync primitives copied by value through assignment,
// declaration, or range.
func (c *Locks) checkCopies(p *Pass, f *ast.File) {
	report := func(pos ast.Node, what string) {
		p.Reportf(pos.Pos(), c.Name(), "%s copies a lock by value; use a pointer", what)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				// `_ = x` is the silence-unused idiom: the copy is discarded,
				// not used, so there is no aliased lock to misuse.
				if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				if copiesLockValue(p, rhs) {
					report(n, "assignment")
				}
			}
		case *ast.RangeStmt:
			if n.Value == nil {
				return true
			}
			if t := p.Info.Types[n.X].Type; t != nil {
				var elem types.Type
				switch u := t.Underlying().(type) {
				case *types.Slice:
					elem = u.Elem()
				case *types.Array:
					elem = u.Elem()
				case *types.Map:
					elem = u.Elem()
				}
				if elem != nil && containsLockType(elem, 0) {
					report(n.Value, "range value")
				}
			}
		}
		return true
	})
}

// copiesLockValue reports whether evaluating e yields a by-value copy of a
// lock-containing type: a plain variable/field/deref read. Composite
// literals and function calls construct fresh values and are fine.
func copiesLockValue(p *Pass, e ast.Expr) bool {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return false
	}
	t := p.Info.Types[e].Type
	return t != nil && containsLockType(t, 0)
}

// containsLockType reports whether t transitively contains a sync
// primitive by value.
func containsLockType(t types.Type, depth int) bool {
	if depth > 4 {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" {
			switch named.Obj().Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockType(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsLockType(u.Elem(), depth+1)
	}
	return false
}
