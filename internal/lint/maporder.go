package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` over a map whose body leaks Go's randomized
// iteration order into something order-sensitive: appending to a slice that
// is never subsequently sorted, emitting output, or drawing from an RNG
// (which desynchronizes the stream between runs). The canonical safe shape —
// collect keys into a slice, sort, then iterate — is recognized and not
// flagged: an append target that is later passed to a sort.* or slices.*
// call in the same function is considered ordered.
type MapOrder struct{}

func (*MapOrder) Name() string { return "maporder" }
func (*MapOrder) Doc() string {
	return "flag map iteration whose order leaks into slices, output, or RNG draws"
}

func (m *MapOrder) Run(p *Pass) {
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			m.checkFunc(p, fd.Body)
		}
	}
}

// checkFunc scans one function body (including nested literals, which share
// the enclosing body for the "sorted later" test).
func (m *MapOrder) checkFunc(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		m.checkRange(p, body, rs)
		return true
	})
}

func (m *MapOrder) checkRange(p *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if isBuiltin(p, fun, "append") && len(call.Args) > 0 {
				if target, obj := identObj(p, call.Args[0]); obj != nil {
					// Slices declared inside the loop body are per-iteration
					// scratch; only order accumulated across iterations leaks.
					if obj.Pos() >= rs.Body.Pos() && obj.Pos() <= rs.Body.End() {
						return true
					}
					if !sortedAfter(p, funcBody, rs.End(), obj) {
						p.Reportf(call.Pos(), m.Name(),
							"append to %q inside map iteration without a later sort; slice order follows randomized map order", target.Name)
					}
				}
			}
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			switch p.PkgQualifier(fun.X) {
			case "fmt":
				if isEmit(name) {
					p.Reportf(call.Pos(), m.Name(),
						"fmt.%s inside map iteration emits output in randomized map order; sort keys first", name)
				}
				return true
			case "math/rand", "math/rand/v2":
				p.Reportf(call.Pos(), m.Name(),
					"rand.%s inside map iteration consumes RNG draws in randomized map order; sort keys first", name)
				return true
			}
			if isRandRandMethod(p, fun) {
				p.Reportf(call.Pos(), m.Name(),
					"RNG draw (%s) inside map iteration desynchronizes the seeded stream; sort keys first", name)
			}
		}
		return true
	})
}

func isEmit(name string) bool {
	switch name {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}

// isRandRandMethod reports whether sel is a method call on *math/rand.Rand.
func isRandRandMethod(p *Pass, sel *ast.SelectorExpr) bool {
	t := p.Info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg := named.Obj().Pkg().Path()
	return (pkg == "math/rand" || pkg == "math/rand/v2") && named.Obj().Name() == "Rand"
}

func isBuiltin(p *Pass, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	_, ok := p.Info.Uses[id].(*types.Builtin)
	return ok
}

// identObj unwraps an expression to a plain identifier and its object.
func identObj(p *Pass, e ast.Expr) (*ast.Ident, types.Object) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil, nil
	}
	return id, p.Info.ObjectOf(id)
}

// sortedAfter reports whether obj is handed to a sort.* or slices.* call
// after pos anywhere in the enclosing function body (including inside
// conversions such as sort.Sort(byLen(s))).
func sortedAfter(p *Pass, funcBody *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch p.PkgQualifier(sel.X) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && p.Info.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return true
	})
	return found
}
