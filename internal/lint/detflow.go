package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetFlow is the whole-program determinism checker: a nondeterministic
// source (wall clock, environment, global RNG, map-range order, goroutine
// completion order) must never reach a result-affecting sink inside the
// simulator scope — a write into a Stats/Results accumulator, or an
// argument that feeds the spec hash or the stored result bytes. The taint
// engine (taint.go) carries sources across any depth of helper calls,
// including cross-package ones, which is exactly the laundering the
// per-package determinism checker cannot see.
//
// Sanctioned flows take a //lint:allow detflow pragma with a written
// justification, same as every other checker.
type DetFlow struct {
	// Scope limits sink checking to packages whose import path contains one
	// of these substrings (defaults to SimulatorScope).
	Scope []string
	// SinkTypes are suffix-matched "pkgpath.TypeName" strings: writing a
	// tainted value into a field of (or constructing) one of these types is
	// a finding.
	SinkTypes []string
	// SinkFuncs are suffix-matched FullNames: passing a tainted argument to
	// one of these is a finding.
	SinkFuncs []string
}

func (*DetFlow) Name() string { return "detflow" }
func (*DetFlow) Doc() string {
	return "trace nondeterministic sources through the call graph; they must not reach result-affecting sinks"
}

// defaultSinkTypes are the accumulators whose bytes define an experiment's
// result. The fixture type is included so the golden tests exercise the
// real driver configuration (mirroring SimulatorScope's testdata entry).
var defaultSinkTypes = []string{
	"internal/netsim.Stats",
	"internal/netsim.Results",
	"internal/flowsim.Results",
	"internal/core.FCTResult",
	"internal/core.Result",
	"internal/resilience.LiveResult",
	"testdata/detflow.Stats",
}

// defaultSinkFuncs feed the spec hash or the stored result bytes.
var defaultSinkFuncs = []string{
	"internal/store.Key",
	"internal/store.Canonical",
	"internal/store.Store).Put",
	"internal/netsim.Stats).Accumulate",
	"testdata/detflow.Commit",
}

func (c *DetFlow) RunProgram(prog *Program) {
	scope := c.Scope
	if scope == nil {
		scope = SimulatorScope
	}
	sinkTypes := c.SinkTypes
	if sinkTypes == nil {
		sinkTypes = defaultSinkTypes
	}
	sinkFuncs := c.SinkFuncs
	if sinkFuncs == nil {
		sinkFuncs = defaultSinkFuncs
	}
	engine := newTaintEngine(prog)
	for _, fi := range prog.Funcs {
		if !inScope(fi.Pass.ImportPath, scope) || fi.Pass.InTestFile(fi.Decl.Pos()) {
			continue
		}
		c.checkFunc(prog, engine, fi, sinkTypes, sinkFuncs)
	}
}

func (c *DetFlow) checkFunc(prog *Program, engine *taintEngine, fi *FuncInfo, sinkTypes, sinkFuncs []string) {
	p := fi.Pass
	lt := engine.analyze(fi)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			c.checkAssign(prog, lt, p, n, sinkTypes)
		case *ast.CompositeLit:
			// Constructing a sink value with a tainted element.
			if t := p.Info.Types[n].Type; t != nil && typeMatches(t, sinkTypes) {
				for _, el := range n.Elts {
					v := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if src, tainted := lt.exprSource(p, v); tainted {
						prog.Reportf(v.Pos(), c.Name(),
							"nondeterministic value (%s) flows into result type %s", src, trimType(t))
					}
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(p, n)
			if fn == nil || !nameMatches(fn.FullName(), sinkFuncs) {
				return true
			}
			for _, arg := range n.Args {
				if src, tainted := lt.exprSource(p, arg); tainted {
					prog.Reportf(arg.Pos(), c.Name(),
						"nondeterministic value (%s) passed to result sink %s", src, fn.FullName())
				}
			}
		}
		return true
	})
}

// checkAssign flags a tainted RHS assigned into a sink-typed lvalue — a
// direct field write like stats.Events = x, or any write whose selector
// chain passes through a sink type.
func (c *DetFlow) checkAssign(prog *Program, lt *localTaint, p *Pass, as *ast.AssignStmt, sinkTypes []string) {
	for i, lhs := range as.Lhs {
		base, sinkT := sinkLvalue(p, lhs, sinkTypes)
		if !sinkT {
			continue
		}
		var rhs ast.Expr
		switch {
		case len(as.Rhs) == len(as.Lhs):
			rhs = as.Rhs[i]
		case len(as.Rhs) == 1:
			rhs = as.Rhs[0]
		default:
			continue
		}
		if src, tainted := lt.exprSource(p, rhs); tainted {
			prog.Reportf(as.Pos(), c.Name(),
				"nondeterministic value (%s) written into result sink %s", src, base)
		}
	}
}

// sinkLvalue reports whether the lvalue writes into a sink type, walking
// selector/index chains (stats.Hist[i].Count = ...), and names the sink.
func sinkLvalue(p *Pass, e ast.Expr, sinkTypes []string) (string, bool) {
	for {
		if t := p.Info.Types[e].Type; t != nil && typeMatches(t, sinkTypes) {
			return trimType(t), true
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return "", false
		}
	}
}

// typeMatches reports whether t (or its pointee) is one of the sink types,
// by "pkgpath.Name" suffix match.
func typeMatches(t types.Type, suffixes []string) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return nameMatches(obj.Pkg().Path()+"."+obj.Name(), suffixes)
}

func nameMatches(name string, suffixes []string) bool {
	for _, s := range suffixes {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}

// trimType renders a type name without the module prefix for messages.
func trimType(t types.Type) string {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			return pkg.Name() + "." + named.Obj().Name()
		}
		return named.Obj().Name()
	}
	return t.String()
}
