// Package goleak exercises the goleak checker: goroutines, tickers and
// timers need a termination signal.
package goleak

import (
	"context"
	"time"
)

// foreverLoop spawns a goroutine that can never exit.
func foreverLoop(work chan int) {
	go func() {
		for { // finding: no return/break/goto
			select {
			case v := <-work:
				_ = v
			default:
			}
		}
	}()
}

// ctxLoop exits when the context is cancelled: clean.
func ctxLoop(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}

// workerLoop exits when its work is exhausted: clean.
func workerLoop(n int, next func() int) {
	go func() {
		for {
			i := next()
			if i >= n {
				return
			}
		}
	}()
}

// unstoppedTicker never stops the ticker: the runtime timer leaks.
func unstoppedTicker(out chan time.Time) {
	t := time.NewTicker(time.Second) // finding: never Stop()ed
	for i := 0; i < 3; i++ {
		out <- <-t.C
	}
}

// stoppedTicker defers the Stop: clean.
func stoppedTicker(out chan time.Time) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for i := 0; i < 3; i++ {
		out <- <-t.C
	}
}

// escapingTimer hands the timer to its caller, which owns Stop: clean.
func escapingTimer() *time.Timer {
	t := time.NewTimer(time.Second)
	return t
}

// afterInLoop allocates one timer per iteration; none is reclaimed before
// it fires.
func afterInLoop(ctx context.Context, attempts int) error {
	for i := 0; i < attempts; i++ {
		select {
		case <-time.After(time.Minute): // finding: timer per iteration
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// afterOnce is outside any loop: clean (one timer, bounded life).
func afterOnce(ctx context.Context) error {
	select {
	case <-time.After(time.Minute):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// abandonedSend: the receiver can take ctx.Done and return, stranding the
// goroutine on the unbuffered send forever.
func abandonedSend(ctx context.Context, slow func() int) (int, error) {
	ch := make(chan int)
	go func() {
		ch <- slow() // finding: receiver can abandon
	}()
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// bufferedSend: capacity 1 lets the sender complete and exit regardless:
// clean.
func bufferedSend(ctx context.Context, slow func() int) (int, error) {
	ch := make(chan int, 1)
	go func() {
		ch <- slow()
	}()
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// guaranteedReceive: a plain receive always drains the sender: clean.
func guaranteedReceive(slow func() int) int {
	ch := make(chan int)
	go func() {
		ch <- slow()
	}()
	return <-ch
}
