// Package fixture exercises the //lint:allowpkg escape hatch: a
// package-scope pragma suppresses exactly the named checks everywhere in
// the package; every other check still fires, proving the exemption does
// not leak.
//
//lint:allowpkg determinism
package fixture

import "time"

func Suppressed() (int64, int64) {
	a := time.Now().UnixNano() // suppressed package-wide, no line pragma
	b := time.Now().UnixNano()
	return a, b
}

func StillCaught(x float64) bool {
	return x == 0 // finding: the pragma names a different check
}
