// Package sharedrand exercises the sharedrand checker: *rand.Rand values
// must not cross a concurrency boundary — neither captured by a goroutine
// literal nor captured/read through fields by an internal/parallel worker.
package sharedrand

import (
	"math/rand"

	"spineless/internal/parallel"
)

type harness struct {
	rng *rand.Rand
}

type nested struct {
	inner harness
}

var globalRNG = rand.New(rand.NewSource(7))

func bad(h *harness, n *nested) {
	shared := rand.New(rand.NewSource(1))
	go func() {
		_ = shared.Intn(10) // finding: captured by goroutine
		_ = shared.Intn(10) // deduped: same (literal, object), no second finding
	}()
	_ = parallel.ForEach(0, 4, func(i int) error {
		_ = shared.Int63()      // finding: captured by parallel worker (new literal)
		_ = h.rng.Intn(3)       // finding: field on captured receiver
		_ = n.inner.rng.Intn(3) // deduped: same field object as above
		_ = globalRNG.Intn(3)   // finding: package-global generator
		return nil
	})
}

func good(seed int64) {
	_ = parallel.ForEach(0, 4, func(i int) error {
		rng := rand.New(rand.NewSource(parallel.DeriveSeed(seed, i)))
		_ = rng.Intn(10) // worker-private generator: fine
		w := harness{rng: rng}
		_ = w.rng.Intn(10) // field on a worker-local struct: fine
		return nil
	})
	serial := rand.New(rand.NewSource(seed))
	_ = serial.Intn(10) // no concurrency boundary: fine
}

func allowed() {
	legacy := rand.New(rand.NewSource(3))
	go func() {
		//lint:allow sharedrand
		_ = legacy.Intn(10) // suppressed by the pragma above
	}()
}
