// Package fixture exercises the floateq checker: exact float comparison is
// a latent bug outside IEEE-sentinel checks.
package fixture

func Bad(a, b float64, c float32) bool {
	if a == b { // finding
		return true
	}
	return c != 0 // finding
}

func Good(a, b float64, i, j int) bool {
	const eps = 1e-9
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps && i == j // ok: int comparison
}
