// Package fixture exercises the determinism checker: wall-clock reads,
// package-global rand, and environment lookups are findings; explicitly
// seeded construction and method calls on a *rand.Rand are not.
package fixture

import (
	"math/rand"
	"os"
	"time"
)

func Bad() (int, int64, string) {
	t := time.Now().UnixNano()         // finding: wall clock
	d := time.Since(time.Unix(0, t))   // finding: wall clock (Since)
	n := rand.Intn(10)                 // finding: package-global source
	rand.Shuffle(n, func(i, j int) {}) // finding: package-global source
	env := os.Getenv("SEED")           // finding: environment-dependent
	return n, int64(d), env
}

func Good(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // ok: explicitly seeded
	return rng.Intn(10)                   // ok: method on *rand.Rand
}
