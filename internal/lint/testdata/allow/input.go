// Package fixture exercises the //lint:allow escape hatch: a pragma on the
// offending line or the line directly above suppresses exactly the named
// checks; everything else still fires.
package fixture

import "time"

func Suppressed() (int64, int64) {
	a := time.Now().UnixNano() //lint:allow determinism
	//lint:allow determinism
	b := time.Now().UnixNano()
	return a, b
}

func StillCaught(x float64) bool {
	//lint:allow determinism
	return x == 0 // finding: pragma names a different check
}
