// Package fixture exercises the nofatal checker: library packages must
// return errors, never exit the process.
package fixture

import (
	"fmt"
	"log"
	"os"
)

func Bad(err error) {
	if err != nil {
		log.Fatalf("boom: %v", err) // finding: exits from a library
	}
	os.Exit(1) // finding: exits from a library
}

func Good(err error) error {
	if err != nil {
		return fmt.Errorf("fixture: %w", err) // ok
	}
	return nil
}
