// Package fixture exercises the nakedpanic checker: panics in internal
// packages must name the failing subsystem.
package fixture

import "fmt"

func Bad(err error, x int) {
	if err != nil {
		panic(err) // finding: no context at all
	}
	if x < 0 {
		panic("negative x") // finding: missing package prefix
	}
}

func Good(x int) {
	if x < 0 {
		panic("fixture: negative x") // ok: package-prefixed literal
	}
	if x > 100 {
		panic(fmt.Sprintf("fixture: x=%d out of range", x)) // ok: prefixed format
	}
}
