// Package b imports package a to pin cross-package call-graph edges and
// cross-package taint propagation.
package b

import "spineless/internal/lint/testdata/callgraph/a"

// Stats is the sink type for the cross-package detflow test.
type Stats struct {
	Events int64
}

// CrossStatic is a plain cross-package static edge.
func CrossStatic(x int) int { return a.Inc(x) }

// CrossIface dispatches through a's interface from here.
func CrossIface(x int) int { return a.Run(a.Alpha{}, x) }

// Laundered re-exports a's nondeterminism through two package boundaries.
func Laundered() int64 { return a.Clock() }

// Write sends the laundered wall clock into the sink: the finding the
// per-package determinism checker structurally cannot see.
func Write(s *Stats) {
	s.Events = Laundered()
}
