// Package a is the callgraph-builder fixture: interface dispatch, func
// values, method values, a recursion cycle, and a tainted leaf for the
// cross-package detflow test (package b builds on it).
package a

import "time"

// Doer is implemented by Alpha and Beta; calls through it must resolve to
// both conservatively.
type Doer interface {
	Do(x int) int
}

type Alpha struct{}

func (Alpha) Do(x int) int { return x + 1 }

type Beta struct{}

func (Beta) Do(x int) int { return x * 2 }

// Run dispatches through the interface.
func Run(d Doer, x int) int { return d.Do(x) }

// Twice calls through a func value: dynamic resolution by signature over
// the address-taken set.
func Twice(f func(int) int, x int) int { return f(f(x)) }

// Inc is address-taken in UseTwice.
func Inc(x int) int { return x + 1 }

func UseTwice(x int) int { return Twice(Inc, x) }

// MethodValue takes Alpha.Do's method value, putting it in the
// address-taken set too.
func MethodValue(v Alpha) func(int) int { return v.Do }

// Even/Odd form a two-node cycle.
func Even(n int) bool {
	if n == 0 {
		return true
	}
	return Odd(n - 1)
}

func Odd(n int) bool {
	if n == 0 {
		return false
	}
	return Even(n - 1)
}

// Clock is nondeterministic: the cross-package taint chain starts here.
func Clock() int64 { return time.Now().UnixNano() }
