// Package fixture exercises the maporder checker: map-iteration order must
// not leak into slices, output, or RNG draws. The collect-then-sort idiom
// is recognized and allowed.
package fixture

import (
	"fmt"
	"math/rand"
	"sort"
)

func LeakySlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // finding: never sorted
	}
	return keys
}

func SortedSlice(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // ok: sorted below
	}
	sort.Strings(keys)
	return keys
}

func LeakyOutput(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // finding: output in map order
	}
}

func LeakyRNG(m map[string]int, rng *rand.Rand) int {
	s := 0
	for range m {
		s += rng.Intn(10) // finding: RNG draws in map order
	}
	return s
}

func ScratchSlice(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...) // ok: per-iteration scratch
		n += len(local)
	}
	return n
}
