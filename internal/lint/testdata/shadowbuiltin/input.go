// Package fixture exercises the shadowbuiltin checker: declarations named
// cap, len, min, or max silently change meaning downstream.
package fixture

func Bad(min int) int { // finding: param shadows min
	cap := 10 // finding: shadows cap
	var max = 20
	_ = max // finding above: var shadows max
	return min + cap
}

type row struct {
	len int // ok: struct fields are selector-qualified
}

func (r row) Len() int { return r.len } // ok

func Switch(v any) int {
	switch len := v.(type) { // finding: type-switch var shadows len
	case int:
		return len
	default:
		return 0
	}
}
