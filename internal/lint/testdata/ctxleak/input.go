// Package ctxleak exercises the ctxleak checker: a context cancel function
// must be deferred or stored; discarding it, never using it, or only
// calling it inline leaks the context's timer/goroutine on early returns
// and panics.
package ctxleak

import (
	"context"
	"time"
)

type server struct {
	stop context.CancelFunc
}

func discarded(ctx context.Context) context.Context {
	ctx, _ = context.WithTimeout(ctx, time.Second) // finding: cancel discarded
	return ctx
}

func inlineOnly(ctx context.Context, work func(context.Context) error) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second) // finding: only a plain call; work's error path skips nothing but a panic leaks
	if err := work(ctx); err != nil {
		return err // whoops: cancel never runs on this path
	}
	cancel()
	return nil
}

func deferred(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx) // ok: deferred
	defer cancel()
	<-ctx.Done()
	return nil
}

func deferredClosure(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second) // ok: called inside a deferred closure
	defer func() {
		cancel()
	}()
	<-ctx.Done()
	return nil
}

func storedField(ctx context.Context, s *server) context.Context {
	ctx, cancel := context.WithCancel(ctx) // ok: stored on a struct for later release
	s.stop = cancel
	return ctx
}

func storedFieldDirect(ctx context.Context, s *server) context.Context {
	ctx, s.stop = context.WithCancel(ctx) // ok: assigned straight into a field
	return ctx
}

func passedAlong(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx) // ok: handed to a watchdog
	t := time.AfterFunc(time.Second, cancel)
	defer t.Stop()
	<-ctx.Done()
	return nil
}

func capturedByGoroutine(ctx context.Context, done chan struct{}) context.Context {
	ctx, cancel := context.WithCancel(ctx) // ok: captured by a goroutine that owns the release
	go func() {
		<-done
		cancel()
	}()
	return ctx
}

func comparedThenCalled(ctx context.Context, ops []func(context.Context) error) error {
	var cancel context.CancelFunc
	for _, op := range ops {
		actx := ctx
		actx, cancel = context.WithTimeout(ctx, time.Second) // ok: nil-checked value use below
		err := op(actx)
		if cancel != nil {
			cancel()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func allowed(ctx context.Context) context.Context {
	ctx, _ = context.WithTimeout(ctx, time.Second) //lint:allow ctxleak
	return ctx
}

type watcher struct {
	ctx  context.Context
	stop context.CancelFunc
}

func storedInStructLiteral(ctx context.Context) *watcher {
	ctx, cancel := context.WithCancel(ctx) // ok: the literal owns the cancel's lifetime
	return &watcher{ctx: ctx, stop: cancel}
}

func storedInSliceLiteral(ctx context.Context) []context.CancelFunc {
	_, cancel := context.WithCancel(ctx) // ok: collected for later release
	return []context.CancelFunc{cancel}
}

func varDeclDiscarded(ctx context.Context) context.Context {
	var ctx2, _ = context.WithTimeout(ctx, time.Second) // finding: var-form discard
	return ctx2
}

func varDeclInlineOnly(ctx context.Context, work func(context.Context) error) error {
	var wctx, cancel = context.WithTimeout(ctx, time.Second) // finding: var-form, only a plain call
	if err := work(wctx); err != nil {
		return err
	}
	cancel()
	return nil
}

func varDeclDeferred(ctx context.Context) error {
	var wctx, cancel = context.WithCancel(ctx) // ok: deferred
	defer cancel()
	<-wctx.Done()
	return nil
}
