// Package hotpath exercises the hot-path allocation checker: functions
// reached from a //lint:hotpath root over static call edges must not
// allocate.
package hotpath

import "fmt"

type tracer interface {
	OnEvent(kind uint8)
}

type event struct {
	t    int64
	kind uint8
}

type sim struct {
	queue []event
	pool  []*event
	tr    tracer
	name  string
}

// step is the annotated inner loop.
//
//lint:hotpath
func step(s *sim, now int64) {
	ev := event{t: now} // value literal: stays on the stack, clean
	s.queue = append(s.queue, ev)
	boxed := &event{t: now} // finding: escaping composite literal
	_ = boxed
	s.helper(now)
	if s.tr != nil {
		s.tr.OnEvent(ev.kind) // interface call: traversal boundary, clean
	}
}

// helper is reached from step over a static edge.
func (s *sim) helper(now int64) {
	ids := []int64{now} // finding: slice literal, reached from step
	_ = ids
	s.deeper()
}

// deeper is two static edges from the root.
func (s *sim) deeper() {
	m := make(map[int64]int32) // finding: make, reached from step
	_ = m
	cb := func() {} // finding: closure creation
	_ = cb
}

// describe formats diagnostics; fmt and string concat both allocate.
//
//lint:hotpath
func describe(s *sim, id int64) string {
	label := s.name + ":" // finding: string concatenation
	report(id)
	return label
}

// report boxes its argument into fmt's variadic interface parameter.
func report(id int64) {
	fmt.Println(id) // finding: fmt call, reached from describe
}

// violate is diagnostics-only: //lint:coldpath stops the walk, so its fmt
// use is sanctioned wholesale.
//
//lint:coldpath
func violate(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

// lazyInit is the sanctioned-allocation shape: annotated per site.
//
//lint:hotpath
func lazyInit(s *sim) {
	if s.pool == nil {
		s.pool = make([]*event, 0, 64) //lint:allow hotpath (fixture: amortized pool refill)
	}
	violate("bad state %d", 1)
}

// cold is not reached from any root: its allocations are fine.
func cold() []int {
	return []int{1, 2, 3}
}
