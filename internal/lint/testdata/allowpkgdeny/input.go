// Package fixture sits on the AllowPkgDeny list, standing in for the
// simulator packages: its //lint:allowpkg pragma must be refused — both
// ignored (the determinism finding below still fires) and itself reported.
//
//lint:allowpkg determinism
package fixture

import "time"

func NotSuppressed() int64 {
	return time.Now().UnixNano() // finding: the package pragma was refused
}
