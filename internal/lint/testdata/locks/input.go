// Package locks exercises the locks checker: every Lock needs a matching
// unlock on every path, locks must not be held across blocking operations,
// and sync primitives must not be copied by value.
package locks

import (
	"net/http"
	"sync"
	"time"
)

type counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// noUnlock never releases: exactly one finding at the Lock.
func (c *counter) noUnlock() int {
	c.mu.Lock() // finding: no matching unlock
	return c.n
}

// earlyReturn unlocks on the happy path but leaks on the error path.
func (c *counter) earlyReturn(bad bool) int {
	c.mu.Lock()
	if bad {
		return -1 // finding: returns while held
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// deferred is the canonical clean shape.
func (c *counter) deferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// deferredClosure releases through a deferred closure: clean.
func (c *counter) deferredClosure() int {
	c.mu.Lock()
	defer func() {
		c.n++
		c.mu.Unlock()
	}()
	return c.n
}

// branchUnlock releases on every branch before returning: clean.
func (c *counter) branchUnlock(bad bool) int {
	c.mu.Lock()
	if bad {
		c.mu.Unlock()
		return -1
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// rlockPair pairs RLock with RUnlock: clean.
func (c *counter) rlockPair() int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.n
}

// rlockWrongUnlock pairs RLock with Unlock: the RLock is never released.
func (c *counter) rlockWrongUnlock() int {
	c.rw.RLock() // finding: no matching unlock (Unlock does not release RLock)
	n := c.n
	c.rw.Unlock()
	return n
}

// doubleLock re-acquires while held: self-deadlock.
func (c *counter) doubleLock() {
	c.mu.Lock()
	c.mu.Lock() // finding: self-deadlock
	c.mu.Unlock()
}

// sendWhileHeld blocks on a channel send with the lock held.
func (c *counter) sendWhileHeld(ch chan int) {
	c.mu.Lock()
	ch <- c.n // finding: send while held
	c.mu.Unlock()
}

// recvWhileHeld blocks on a receive with the lock held.
func (c *counter) recvWhileHeld(ch chan int) {
	c.mu.Lock()
	c.n = <-ch // finding: receive while held
	c.mu.Unlock()
}

// selectWhileHeld blocks on a no-default select with the lock held.
func (c *counter) selectWhileHeld(a, b chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select { // finding: select with no default while held
	case v := <-a:
		c.n = v
	case v := <-b:
		c.n = v
	}
}

// nonBlockingSelect has a default case: clean.
func (c *counter) nonBlockingSelect(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case ch <- c.n:
	default:
	}
}

// sleepWhileHeld parks every other holder for the duration.
func (c *counter) sleepWhileHeld() {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // finding: time.Sleep while held
	c.mu.Unlock()
}

// rpcWhileHeld holds the lock across an HTTP round trip.
func (c *counter) rpcWhileHeld(client *http.Client, req *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	client.Do(req) // finding: HTTP round trip while held
}

// unlockThenBlock releases before the blocking op: clean.
func (c *counter) unlockThenBlock(ch chan int) {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	ch <- n
}

// goroutineIsSeparate: channel ops inside a spawned goroutine run after
// Unlock, not under the lock. Clean for this checker.
func (c *counter) goroutineIsSeparate(ch chan int) {
	c.mu.Lock()
	n := c.n
	go func() {
		ch <- n
	}()
	c.mu.Unlock()
}

// copyByAssign copies a mutex-bearing struct by value.
func copyByAssign(src *counter) {
	dst := *src // finding: copies c.mu by value
	_ = dst
}

// copyByRange copies each element (and its mutex) per iteration.
func copyByRange(all []counter) int {
	total := 0
	for _, c := range all { // finding: range value copies the mutex
		total += c.n
	}
	return total
}

// rangeByIndex avoids the copy: clean.
func rangeByIndex(all []counter) int {
	total := 0
	for i := range all {
		total += all[i].n
	}
	return total
}
