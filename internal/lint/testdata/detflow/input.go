// Package detflow exercises the whole-program determinism-taint checker:
// nondeterministic sources must not reach the result accumulators, even
// through helper-function laundering.
package detflow

import (
	"math/rand"
	"time"
)

// Stats is this fixture's result sink type (registered in the checker's
// default sink list, mirroring netsim.Stats).
type Stats struct {
	Events int64
	Bytes  int64
}

// Commit is the fixture's sink function (mirroring store.Key).
func Commit(key int64) {}

// wallClock launders time.Now through one helper call.
func wallClock() int64 {
	return time.Now().UnixNano()
}

// twoDeep launders it through two.
func twoDeep() int64 {
	return wallClock()
}

// directWrite writes the clock straight into the sink.
func directWrite(s *Stats) {
	s.Events = time.Now().UnixNano() // finding: direct
}

// launderedWrite reaches the sink through the helper chain — the case the
// per-package determinism checker cannot see.
func launderedWrite(s *Stats) {
	s.Events = twoDeep() // finding: via summaries
}

// mapOrder taints the loop variables of a map range.
func mapOrder(s *Stats, weights map[int]int64) {
	for _, w := range weights {
		s.Bytes = w // finding: map iteration order
	}
}

// selectOrder taints values received in a multi-way select.
func selectOrder(s *Stats, a, b chan int64) {
	select {
	case v := <-a:
		s.Events = v // finding: completion order
	case v := <-b:
		s.Events = v // finding: completion order
	}
}

// globalRand draws from the shared process-global RNG.
func globalRand(s *Stats) {
	s.Bytes = rand.Int63() // finding: global RNG
}

// seededRand uses an explicitly-seeded generator: the sanctioned path.
func seededRand(s *Stats, seed int64) {
	r := rand.New(rand.NewSource(seed))
	s.Bytes = r.Int63()
}

// sinkArg passes a tainted value to a sink function.
func sinkArg() {
	Commit(wallClock()) // finding: tainted sink argument
}

// construct builds the sink with a tainted element.
func construct() Stats {
	return Stats{Events: wallClock()} // finding: tainted constructor element
}

// sanctioned carries a justified pragma: wall-clock telemetry that is
// deliberately excluded from result bytes would look like this.
func sanctioned(s *Stats) {
	s.Events = wallClock() //lint:allow detflow (fixture: justified exemption)
}

// deterministic flows only seed-derived values: clean.
func deterministic(s *Stats, seed int64) {
	s.Events = seed * 2
	s.Bytes = int64(len("payload"))
}
