package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// NakedPanic flags panic calls in internal packages whose argument does not
// carry a package-prefixed message ("<pkg>: ..."). A bare panic(err) that
// escapes an experiment run gives no hint which subsystem's invariant broke;
// panics are reserved for provably-unreachable states and must say whose
// state they are. Constructors that can actually fail should return errors.
type NakedPanic struct{}

func (*NakedPanic) Name() string { return "nakedpanic" }
func (*NakedPanic) Doc() string {
	return "flag panics in internal/ without a package-prefixed message"
}

func (c *NakedPanic) Run(p *Pass) {
	if !strings.Contains(p.ImportPath, "internal/") {
		return
	}
	prefix := p.Pkg.Name() + ": "
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || !isBuiltinPanic(p, id) || len(call.Args) != 1 {
				return true
			}
			if !hasPkgPrefix(call.Args[0], prefix) {
				p.Reportf(call.Pos(), c.Name(),
					"panic without a %q-prefixed message; name the failing invariant or return an error", prefix)
			}
			return true
		})
	}
}

func isBuiltinPanic(p *Pass, id *ast.Ident) bool {
	if id.Name != "panic" {
		return false
	}
	_, ok := p.Info.Uses[id].(*types.Builtin)
	return ok
}

// hasPkgPrefix accepts a string literal starting with the package prefix, or
// a fmt.Sprintf/fmt.Errorf call whose format string does.
func hasPkgPrefix(e ast.Expr, prefix string) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		s, err := strconv.Unquote(v.Value)
		return err == nil && strings.HasPrefix(s, prefix)
	case *ast.CallExpr:
		if len(v.Args) == 0 {
			return false
		}
		return hasPkgPrefix(v.Args[0], prefix)
	}
	return false
}
