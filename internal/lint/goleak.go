package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak flags goroutines and timers with no termination signal:
//
//   - a `go func(){ for { ... } }()` whose loop has no return, break, or
//     goto — the goroutine can never exit, so every spawn is a permanent
//     leak;
//   - time.NewTicker/NewTimer results that never escape the function and
//     are never Stop()ed — the runtime timer (and for tickers, its channel
//     sends) outlives the function forever;
//   - time.After inside a loop — each iteration allocates a runtime timer
//     that is not reclaimed until it fires, so a tight retry/poll loop with
//     long timeouts pins unbounded timer memory (use time.NewTimer with
//     Stop, or retry.Sleep);
//   - a send on an unbuffered locally-made channel from inside a spawned
//     goroutine, when every receive from that channel sits in a select
//     with other ways out — if the receiver takes the other case and
//     returns, the sender blocks forever.
type GoLeak struct{}

func (*GoLeak) Name() string { return "goleak" }
func (*GoLeak) Doc() string {
	return "goroutines, tickers and timers must have a termination signal"
}

func (c *GoLeak) Run(p *Pass) {
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				return true // handled by the enclosing visit's rules
			default:
				return true
			}
			if body != nil {
				c.checkFunc(p, body)
			}
			return true
		})
	}
}

func (c *GoLeak) checkFunc(p *Pass, body *ast.BlockStmt) {
	c.checkForeverLoops(p, body)
	c.checkUnstoppedTimers(p, body)
	c.checkTimeAfterInLoop(p, body)
	c.checkAbandonedSends(p, body)
}

// checkForeverLoops flags `go` statements whose function literal body is an
// unconditional for-loop with no exit.
func (c *GoLeak) checkForeverLoops(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if _, nested := m.(*ast.FuncLit); nested {
				return false
			}
			loop, ok := m.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				return true
			}
			if !hasExit(loop.Body) {
				p.Reportf(loop.For, c.Name(),
					"goroutine runs `for {}` with no return, break, or goto: it can never terminate — plumb a ctx/done signal")
				return false
			}
			return true
		})
		return true
	})
}

// hasExit reports whether a loop body contains any statement that can leave
// the loop: return, break, goto, panic, or os.Exit/log.Fatal (counting any
// break, even one that targets an inner statement — under-approximating
// keeps this rule free of false positives on worker loops).
func hasExit(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				found = true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Exit", "Fatal", "Fatalf", "Fatalln", "Goexit":
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// checkUnstoppedTimers flags `t := time.NewTicker/NewTimer(...)` where t
// neither escapes the function nor is ever Stop()ed.
func (c *GoLeak) checkUnstoppedTimers(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil {
			return true
		}
		full := fn.FullName()
		if full != "time.NewTicker" && full != "time.NewTimer" {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			p.Reportf(as.Pos(), c.Name(), "%s result discarded; the runtime timer can never be stopped", full)
			return true
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj == nil {
			return true
		}
		if !timerStoppedOrEscapes(p, body, obj, id) {
			p.Reportf(as.Pos(), c.Name(),
				"%s %q is never Stop()ed and never escapes; the runtime timer leaks — defer %s.Stop()", full, id.Name, id.Name)
		}
		return true
	})
}

// timerStoppedOrEscapes reports whether the timer object has a .Stop() call
// or escapes the function (returned, stored in a field/composite, passed as
// an argument) — either way it is not our leak to report.
func timerStoppedOrEscapes(p *Pass, body *ast.BlockStmt, obj types.Object, def *ast.Ident) bool {
	out := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if out {
			return true
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == def || p.Info.Uses[id] != obj {
			return true
		}
		// t.Stop() / t.Reset(...) — or any selector use: reading t.C is not
		// enough, so look specifically at the selector name.
		if len(stack) >= 2 {
			if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.X == id {
				if sel.Sel.Name == "Stop" {
					out = true
				}
				return true // t.C / t.Reset reads don't release or escape
			}
		}
		// Any non-selector use besides the definition: assignment to
		// something else, argument, return, composite literal — escapes.
		out = true
		return true
	})
	return out
}

// checkTimeAfterInLoop flags time.After calls lexically inside a loop.
func (c *GoLeak) checkTimeAfterInLoop(p *Pass, body *ast.BlockStmt) {
	var inLoop func(n ast.Node, depth int)
	inLoop = func(n ast.Node, depth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case nil:
				return true
			case *ast.ForStmt:
				if m != n {
					inLoop(m.Body, depth+1)
					return false
				}
			case *ast.RangeStmt:
				if m != n {
					inLoop(m.Body, depth+1)
					return false
				}
			case *ast.CallExpr:
				if depth > 0 {
					if fn := calleeFunc(p, m); fn != nil && fn.FullName() == "time.After" {
						p.Reportf(m.Pos(), c.Name(),
							"time.After in a loop allocates a timer every iteration that lives until it fires; reuse a timer (retry.Sleep / time.NewTimer+Stop)")
					}
				}
			}
			return true
		})
	}
	inLoop(body, 0)
}

// checkAbandonedSends flags sends from spawned goroutines on unbuffered
// local channels whose only receives can be abandoned.
func (c *GoLeak) checkAbandonedSends(p *Pass, body *ast.BlockStmt) {
	// Unbuffered channels made in this function.
	unbuffered := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 { // make(chan T) — no capacity arg
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "make" {
				continue
			}
			if t := p.Info.Types[call].Type; t == nil {
				continue
			} else if _, isChan := t.Underlying().(*types.Chan); !isChan {
				continue
			}
			if i < len(as.Lhs) {
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					if obj := p.Info.Defs[id]; obj != nil {
						unbuffered[obj] = true
					}
				}
			}
		}
		return true
	})
	if len(unbuffered) == 0 {
		return
	}
	// A plain (non-select) receive or a range over the channel guarantees a
	// receiver; a receive only inside a multi-way select can abandon the
	// sender.
	guaranteed := make(map[types.Object]bool)
	var mark func(n ast.Node, inSelectWithOut bool)
	mark = func(n ast.Node, inSelectWithOut bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.SelectStmt:
				abandonable := len(m.Body.List) >= 2 || selectHasDefault(m)
				for _, cl := range m.Body.List {
					mark(cl, abandonable)
				}
				return false
			case *ast.UnaryExpr:
				if m.Op == token.ARROW && !inSelectWithOut {
					if id, ok := unparen(m.X).(*ast.Ident); ok {
						if obj := p.Info.Uses[id]; obj != nil {
							guaranteed[obj] = true
						}
					}
				}
			case *ast.RangeStmt:
				if id, ok := unparen(m.X).(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil {
						guaranteed[obj] = true
					}
				}
			}
			return true
		})
	}
	mark(body, false)
	// Now find sends inside go statements on abandonable channels.
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			send, ok := m.(*ast.SendStmt)
			if !ok {
				return true
			}
			id, ok := unparen(send.Chan).(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.Uses[id]
			if obj == nil || !unbuffered[obj] || guaranteed[obj] {
				return true
			}
			p.Reportf(send.Arrow, c.Name(),
				"goroutine sends on unbuffered %q but every receiver can abandon it (select with other cases); the sender leaks — buffer the channel", id.Name)
			return false
		})
		return true
	})
}
