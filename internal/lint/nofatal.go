package lint

import (
	"go/ast"
	"strings"
)

// NoFatal forbids log.Fatal*/os.Exit outside package main (cmd/ tools and
// examples). A library that exits kills the whole experiment driver,
// skips deferred cleanup, and makes failure paths untestable; internal
// packages must return errors instead.
type NoFatal struct{}

func (*NoFatal) Name() string { return "nofatal" }
func (*NoFatal) Doc() string {
	return "forbid log.Fatal* and os.Exit outside package main"
}

func (c *NoFatal) Run(p *Pass) {
	if p.Pkg.Name() == "main" {
		return
	}
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch p.PkgQualifier(sel.X) {
			case "log":
				if strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic") {
					p.Reportf(call.Pos(), c.Name(),
						"log.%s in a library package; return an error instead", name)
				}
			case "os":
				if name == "Exit" {
					p.Reportf(call.Pos(), c.Name(),
						"os.Exit in a library package; return an error instead")
				}
			}
			return true
		})
	}
}
