package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Program is the whole-program unit of work: every loaded package's Pass,
// an index of all source functions keyed by their stable full name, and the
// static call graph over them. Per-package checkers see one Pass at a time;
// ProgramCheckers see everything, which is what lets a nondeterministic
// source laundered through a helper in another package still be traced to
// its sink.
//
// Cross-package object identity: each package is type-checked from source
// with its dependencies imported from compiled export data, so the same
// function is represented by *different* types.Func objects in different
// packages' type info. All program-level indexing therefore keys on
// (*types.Func).FullName() strings — e.g. "(*spineless/internal/jobs.Manager).Submit" —
// which are stable across that split.
type Program struct {
	Fset   *token.FileSet
	Passes []*Pass
	// Funcs indexes every function declared in the program (with a body) by
	// FullName.
	Funcs map[string]*FuncInfo
	// Graph is the static call graph; see callgraph.go for its resolution
	// rules and deliberate over-approximations.
	Graph *CallGraph

	byFile map[string]*Pass
}

// FuncInfo is one source function: its declaration, the Pass that owns it,
// and the types.Func object from that Pass's universe.
type FuncInfo struct {
	Name string // (*types.Func).FullName()
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pass *Pass
}

// ProgramChecker is a whole-program invariant pass. Findings are reported
// through Program.Reportf so the owning package's //lint:allow pragmas
// still apply.
type ProgramChecker interface {
	Name() string
	Doc() string
	RunProgram(prog *Program)
}

// NewProgram builds the program view over loaded packages: passes, the
// function index, and the call graph.
func NewProgram(fset *token.FileSet, pkgs []*LoadedPackage) *Program {
	prog := &Program{
		Fset:   fset,
		Funcs:  make(map[string]*FuncInfo),
		byFile: make(map[string]*Pass),
	}
	for _, lp := range pkgs {
		p := &Pass{
			Fset:       fset,
			ImportPath: lp.ImportPath,
			Files:      lp.Files,
			Pkg:        lp.Pkg,
			Info:       lp.Info,
		}
		prog.Passes = append(prog.Passes, p)
		for _, f := range p.Files {
			prog.byFile[fset.Position(f.Pos()).Filename] = p
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Name: obj.FullName(), Obj: obj, Decl: fd, Pass: p}
				prog.Funcs[fi.Name] = fi
			}
		}
	}
	prog.Graph = buildCallGraph(prog)
	return prog
}

// PassFor returns the Pass owning the file containing pos, or nil.
func (prog *Program) PassFor(pos token.Pos) *Pass {
	return prog.byFile[prog.Fset.Position(pos).Filename]
}

// Reportf records a program-level finding, routed to the Pass that owns the
// file at pos so per-line and per-package pragmas apply as usual.
func (prog *Program) Reportf(pos token.Pos, check, format string, args ...any) {
	p := prog.PassFor(pos)
	if p == nil && len(prog.Passes) > 0 {
		p = prog.Passes[0] // e.g. a position inside export data; shouldn't happen
	}
	if p != nil {
		p.Reportf(pos, check, format, args...)
	}
}

// Run applies per-package checkers to every pass and program checkers to
// the whole program, filters pragmas per package, and returns the merged
// findings sorted by position.
func (prog *Program) Run(checkers []Checker, progCheckers []ProgramChecker) []Finding {
	for _, p := range prog.Passes {
		for _, c := range checkers {
			c.Run(p)
		}
	}
	for _, c := range progCheckers {
		c.RunProgram(prog)
	}
	var out []Finding
	for _, p := range prog.Passes {
		out = append(out, p.finish()...)
	}
	sortFindings(out)
	return out
}
