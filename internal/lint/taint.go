package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file is the inter-procedural determinism-taint engine behind the
// detflow checker. Taint means "this value can differ between two runs of
// the same spec": wall-clock reads, environment reads, draws from the
// globally-seeded math/rand, map iteration order, and goroutine completion
// order (a select racing two real channels).
//
// The engine is deliberately coarse in a sound direction:
//
//   - function summaries record only "may return a tainted value" (any
//     result position) plus the originating source, computed to fixpoint
//     over the call graph so taint survives any depth of helper-function
//     laundering across packages;
//   - within a function, taint propagates through assignment chains and
//     composite expressions; a call is tainted if its callee is a source,
//     has a tainted summary, or — for interface/dynamic calls — if any
//     conservatively-resolved candidate does;
//   - taint does NOT propagate through parameters (a function that receives
//     a tainted argument is not summarized as tainted) or through the heap.
//     That is the documented precision floor: sources used on this tree are
//     leaf calls, so returning-position summaries catch the laundering
//     patterns that actually occur, without whole-heap alias analysis.

// taintSource describes why a value is nondeterministic.
type taintSource struct {
	Desc string // e.g. "time.Now", "map iteration order"
	Via  string // the function whose summary carried it here, if any
}

func (s taintSource) String() string {
	if s.Via != "" {
		return s.Desc + " via " + s.Via
	}
	return s.Desc
}

// directSources maps FullNames of nondeterministic leaf functions to their
// descriptions.
var directSources = map[string]string{
	"time.Now":       "time.Now",
	"time.Since":     "time.Since",
	"time.Until":     "time.Until",
	"os.Getenv":      "os.Getenv",
	"os.LookupEnv":   "os.LookupEnv",
	"os.Environ":     "os.Environ",
	"os.Hostname":    "os.Hostname",
	"os.Getpid":      "os.Getpid",
	"runtime.NumCPU": "runtime.NumCPU",
}

// funcSource reports the taint source a direct call of fn produces, or "".
// Package-level math/rand functions draw from the process-global RNG —
// shared, unseeded state — while methods on an explicitly-constructed
// *rand.Rand are the sanctioned seeded path and stay clean.
func funcSource(fn *types.Func) string {
	full := fn.FullName()
	if d, ok := directSources[full]; ok {
		return d
	}
	if pkg := fn.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "math/rand", "math/rand/v2":
			if !strings.HasPrefix(full, "(") && !strings.HasPrefix(fn.Name(), "New") {
				return full + " (global RNG)"
			}
		}
	}
	return ""
}

// taintEngine computes per-function summaries to fixpoint and exposes the
// per-function local analysis detflow's sink scan reuses.
type taintEngine struct {
	prog *Program
	// summaries maps FullName → source for functions that may return a
	// tainted value. Absence means "clean as far as we can prove".
	summaries map[string]taintSource
}

func newTaintEngine(prog *Program) *taintEngine {
	e := &taintEngine{prog: prog, summaries: make(map[string]taintSource)}
	// Fixpoint over the call graph: each round may publish new summaries,
	// which can make callers' returns tainted in the next round. Bounded by
	// the longest clean call chain; capped defensively.
	for round := 0; round < 32; round++ {
		changed := false
		for _, fi := range prog.Funcs {
			if _, done := e.summaries[fi.Name]; done {
				continue
			}
			lt := e.analyze(fi)
			if src, tainted := lt.returnsTainted(); tainted {
				e.summaries[fi.Name] = src
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return e
}

// callSource reports whether a call expression produces a tainted value,
// looking through the call graph's resolution of the site.
func (e *taintEngine) callSource(p *Pass, call *ast.CallExpr) (taintSource, bool) {
	// Direct source? Resolve the callee object syntactically first so
	// sources work even for calls the graph treats as external.
	if fn := calleeFunc(p, call); fn != nil {
		if d := funcSource(fn); d != "" {
			return taintSource{Desc: d}, true
		}
	}
	site := e.prog.Graph.Sites[call]
	if site == nil {
		return taintSource{}, false
	}
	for _, callee := range site.Callees {
		if s, ok := e.summaries[callee.Name]; ok {
			return taintSource{Desc: s.Desc, Via: callee.Name}, true
		}
		if callee.Fn == nil {
			if d, ok := directSources[callee.Name]; ok {
				return taintSource{Desc: d}, true
			}
		}
	}
	return taintSource{}, false
}

// calleeFunc resolves the called *types.Func of a direct call, or nil.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// localTaint is the intra-procedural result for one function: which
// variables hold nondeterministic values, and why.
type localTaint struct {
	engine *taintEngine
	fi     *FuncInfo
	vars   map[types.Object]taintSource
}

// analyze runs the assignment-chain propagation for fi to a local fixpoint.
// Map-range loop variables and select-clause receives are seeded as
// sources; assignments spread taint from any tainted RHS to all LHS.
func (e *taintEngine) analyze(fi *FuncInfo) *localTaint {
	lt := &localTaint{engine: e, fi: fi, vars: make(map[types.Object]taintSource)}
	p := fi.Pass
	for round := 0; round < 16; round++ {
		changed := false
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := p.Info.Types[n.X].Type; t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						src := taintSource{Desc: "map iteration order"}
						changed = lt.taintIdent(p, n.Key, src) || changed
						changed = lt.taintIdent(p, n.Value, src) || changed
					}
				}
			case *ast.SelectStmt:
				if countCommClauses(n) >= 2 {
					src := taintSource{Desc: "goroutine completion order (multi-way select)"}
					for _, cl := range n.Body.List {
						cc := cl.(*ast.CommClause)
						if as, ok := cc.Comm.(*ast.AssignStmt); ok {
							for _, lhs := range as.Lhs {
								changed = lt.taintIdent(p, lhs, src) || changed
							}
						}
					}
				}
			case *ast.AssignStmt:
				changed = lt.propagateAssign(p, n.Lhs, n.Rhs) || changed
			case *ast.ValueSpec:
				var lhs []ast.Expr
				for _, id := range n.Names {
					lhs = append(lhs, id)
				}
				changed = lt.propagateAssign(p, lhs, n.Values) || changed
			}
			return true
		})
		if !changed {
			break
		}
	}
	return lt
}

func countCommClauses(sel *ast.SelectStmt) int {
	n := 0
	for _, cl := range sel.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
			n++
		}
	}
	return n
}

// propagateAssign spreads taint across one assignment or declaration.
func (lt *localTaint) propagateAssign(p *Pass, lhs, rhs []ast.Expr) bool {
	changed := false
	if len(rhs) == 1 && len(lhs) > 1 {
		// Multi-value: one tainted producer taints every binding.
		if src, ok := lt.exprSource(p, rhs[0]); ok {
			for _, l := range lhs {
				changed = lt.taintIdent(p, l, src) || changed
			}
		}
		return changed
	}
	for i, l := range lhs {
		if i >= len(rhs) {
			break
		}
		if src, ok := lt.exprSource(p, rhs[i]); ok {
			changed = lt.taintIdent(p, l, src) || changed
		}
	}
	return changed
}

// taintIdent marks the object behind an identifier expression tainted.
func (lt *localTaint) taintIdent(p *Pass, e ast.Expr, src taintSource) bool {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := p.Info.Defs[id]
	if obj == nil {
		obj = p.Info.Uses[id]
	}
	if obj == nil {
		return false
	}
	if _, done := lt.vars[obj]; done {
		return false
	}
	lt.vars[obj] = src
	return true
}

// exprSource reports whether any part of e is tainted, and by what.
func (lt *localTaint) exprSource(p *Pass, e ast.Expr) (taintSource, bool) {
	var found taintSource
	ok := false
	ast.Inspect(e, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a closure value is not itself a tainted datum
		case *ast.CallExpr:
			if src, tainted := lt.engine.callSource(p, n); tainted {
				found, ok = src, true
				return false
			}
		case *ast.Ident:
			if obj := p.Info.Uses[n]; obj != nil {
				if src, tainted := lt.vars[obj]; tainted {
					found, ok = src, true
					return false
				}
			}
		}
		return true
	})
	return found, ok
}

// returnsTainted reports whether any return statement of the function (not
// of nested literals) returns a tainted expression.
func (lt *localTaint) returnsTainted() (taintSource, bool) {
	var found taintSource
	ok := false
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if ok {
				return false
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				return false // its returns are the closure's, not ours
			case *ast.ReturnStmt:
				for _, r := range m.Results {
					if src, tainted := lt.exprSource(lt.fi.Pass, r); tainted {
						found, ok = src, true
						return false
					}
				}
			}
			return true
		})
	}
	walk(lt.fi.Decl.Body)
	// Named results assigned a tainted value count too.
	if !ok && lt.fi.Decl.Type.Results != nil {
		for _, field := range lt.fi.Decl.Type.Results.List {
			for _, name := range field.Names {
				if obj := lt.fi.Pass.Info.Defs[name]; obj != nil {
					if src, tainted := lt.vars[obj]; tainted {
						return src, true
					}
				}
			}
		}
	}
	return found, ok
}
