package lint

import (
	"go/ast"
	"strings"
)

// Determinism forbids wall-clock reads, globally-seeded randomness, and
// environment-dependent logic inside the simulator packages. Every source of
// nondeterminism there silently corrupts seeded replay: FCT distributions
// stop being byte-identical across runs and paper comparisons (§3, §5)
// become unreproducible. Explicitly seeded RNG construction (rand.New,
// rand.NewSource) stays legal — the ban is on the package-global source and
// on anything whose value changes between two runs of the same seed.
type Determinism struct {
	// Scope holds import-path substrings; packages matching none are skipped.
	// An empty scope means every package is checked.
	Scope []string
}

func (*Determinism) Name() string { return "determinism" }
func (*Determinism) Doc() string {
	return "forbid time.Now, package-global math/rand, and os.Getenv in simulator packages"
}

// randConstructors are math/rand package-level functions that merely build
// explicitly-seeded generators and are therefore deterministic.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 seeded constructors.
	"NewPCG": true, "NewChaCha8": true,
}

func (d *Determinism) Run(p *Pass) {
	if !inScope(p.ImportPath, d.Scope) {
		return
	}
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch p.PkgQualifier(sel.X) {
			case "time":
				if name == "Now" || name == "Since" || name == "Until" {
					p.Reportf(call.Pos(), d.Name(),
						"time.%s reads the wall clock; thread simulated time explicitly", name)
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[name] {
					p.Reportf(call.Pos(), d.Name(),
						"rand.%s uses the package-global source; draw from an explicitly seeded *rand.Rand", name)
				}
			case "os":
				switch name {
				case "Getenv", "LookupEnv", "Environ", "ExpandEnv":
					p.Reportf(call.Pos(), d.Name(),
						"os.%s makes simulator behaviour depend on the environment; pass configuration explicitly", name)
				}
			}
			return true
		})
	}
}

func inScope(importPath string, scope []string) bool {
	if len(scope) == 0 {
		return true
	}
	for _, s := range scope {
		if strings.Contains(importPath, s) {
			return true
		}
	}
	return false
}
