package lint

import (
	"strings"
	"testing"
)

// TestHotPathTelemetryAgreesWithAllocPins runs the hotpath checker over the
// real telemetry package: the six Tracer hooks are annotated //lint:hotpath,
// and telemetry's TestTelemetryAddsNoAllocs pins the same property
// dynamically (AllocsPerRun), so the static walk reporting zero findings is
// the two tools agreeing. The sanity assertions prove the walk actually
// descends from the hooks into the ring machinery — a missing call edge
// would make a clean report vacuous.
func TestHotPathTelemetryAgreesWithAllocPins(t *testing.T) {
	fset, pkgs, err := Load("../..", []string{"./internal/telemetry"})
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram(fset, pkgs)

	wantReach := map[string]string{
		"(*spineless/internal/telemetry.Sink).bucket":  "(*spineless/internal/telemetry.Sink).OnTxStart",
		"(*spineless/internal/telemetry.Sink).advance": "(*spineless/internal/telemetry.Sink).bucket",
	}
	for want, from := range wantReach {
		if prog.Graph.Nodes[from] == nil {
			t.Fatalf("call graph has no node for %s; the walk would be vacuous", from)
		}
		found := false
		for _, c := range prog.Graph.Callees(from) {
			if c == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s's callees %v lack %s; telemetry hot-path reachability is broken",
				from, prog.Graph.Callees(from), want)
		}
	}
	for _, root := range []string{
		"(*spineless/internal/telemetry.Sink).OnEnqueue",
		"(*spineless/internal/telemetry.Sink).OnDeliver",
		"(*spineless/internal/telemetry.Sink).OnDrop",
		"(*spineless/internal/telemetry.Sink).OnCwnd",
		"(*spineless/internal/telemetry.Sink).OnStateChange",
	} {
		if prog.Graph.Nodes[root] == nil {
			t.Fatalf("call graph has no node for %s; the hook lost its annotation or was renamed", root)
		}
	}

	var hot []string
	for _, f := range prog.Run(nil, []ProgramChecker{&HotPath{}}) {
		if f.Check == "hotpath" {
			hot = append(hot, f.String())
		}
	}
	if len(hot) > 0 {
		t.Errorf("hotpath findings on telemetry contradict TestTelemetryAddsNoAllocs:\n%s",
			strings.Join(hot, "\n"))
	}
}
