// Package fleet turns N spinelessd worker processes into one fault-tolerant
// experiment service. A Coordinator places each job spec onto a worker by
// rendezvous hashing of the spec's content hash, watches worker health with
// a suspect/dead failure detector, re-places jobs off dead workers, reads
// results federatedly (owner store → peer read-through → recompute), and
// keeps the single-process guarantees alive across the fleet:
//
//   - Singleflight dedup survives distribution: concurrent submissions of
//     one spec hash coalesce onto one placement, whichever worker it lands
//     on.
//   - The sampled re-execution audit survives distribution — and gets
//     stronger: a cache hit served by its owner is re-executed on a
//     *different* worker, so a worker whose store (or simulator build) has
//     drifted cannot vouch for itself.
//
// Everything rides on the determinism contract: any worker, given a spec,
// produces byte-identical result JSON, so placement, re-placement and
// recompute are all interchangeable and the coordinator can check rather
// than trust.
//
// The package-scope determinism exemption matches internal/jobs and
// internal/serve: the coordinator is operational machinery (wall-clock
// probes, backoff timers); no simulation state flows through it — results
// are opaque bytes produced and verified elsewhere.
//
//lint:allowpkg determinism
package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"spineless/internal/jobs"
	"spineless/internal/retry"
	"spineless/internal/store"
)

// Config tunes a Coordinator.
type Config struct {
	// Workers are the worker base URLs ("http://host:port"); the index is
	// the worker ID everywhere (placement, health, metrics, chaos).
	Workers []string
	// ProbeEvery is the health-probe period per worker (default 500ms).
	ProbeEvery time.Duration
	// ProbeTimeout bounds one health probe (default 1s).
	ProbeTimeout time.Duration
	// SuspectAfter is the consecutive probe failures before a worker is
	// suspected (default 1); DeadAfter before it is declared dead and its
	// jobs re-placed (default 3). Any success resets to alive.
	SuspectAfter int
	DeadAfter    int
	// RPC retries worker submit/result calls: capped exponential backoff
	// with jitter derived deterministically from the spec hash.
	RPC retry.Policy
	// StreamSilence is the event-stream watchdog: a watch with no line
	// (event or heartbeat) for this long is abandoned and the job re-placed
	// (default 60s; keep it a few multiples of the workers' heartbeat).
	StreamSilence time.Duration
	// PlacementCycles bounds how many full passes over the worker set Run
	// makes before giving up (0 = keep trying until ctx expires).
	PlacementCycles int
	// AuditEvery cross-checks every Nth cache-hit Run on a different worker
	// than the one that served it (0 = off).
	AuditEvery int
	// AuditTimeout bounds one cross-worker audit run (default 2m).
	AuditTimeout time.Duration
	// Client issues all worker HTTP (default a plain &http.Client{}); the
	// chaos harness swaps in a fault-injecting transport here.
	Client *http.Client
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 1
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter + 2
	}
	if c.StreamSilence <= 0 {
		c.StreamSilence = 60 * time.Second
	}
	if c.AuditTimeout <= 0 {
		c.AuditTimeout = 2 * time.Minute
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Metrics is a snapshot of coordinator counters.
type Metrics struct {
	Placements   uint64 // runOn attempts started
	Replacements uint64 // placements abandoned and moved to another worker
	Deduped      uint64 // Runs coalesced onto an in-flight identical spec
	CacheHits    uint64 // placements served from a worker's store
	Audits       uint64 // cross-worker audit re-executions completed
	AuditSkipped uint64 // audits skipped (no second live worker)
	AuditBad     uint64 // audits whose bytes differed from the owner's
	FetchOwner   uint64 // federated reads served by the hash's owner
	FetchPeer    uint64 // federated reads served by a peer read-through
	FetchRecomp  uint64 // federated reads that had to recompute
	ProbeFails   uint64 // health probes failed
	WentSuspect  uint64 // alive→suspect transitions
	WentDead     uint64 // →dead transitions
	WentAlive    uint64 // recoveries back to alive
	Workers      []WorkerStatus
}

// WorkerStatus reports one worker's detector state.
type WorkerStatus struct {
	ID    int
	URL   string
	State WorkerState
	Fails int // consecutive probe failures
}

// RunResult is one completed fleet job.
type RunResult struct {
	Hash   string
	Bytes  []byte // the committed result JSON, byte-identical across workers
	Cached bool   // served from the placed worker's store
	Worker int    // worker that produced the bytes

	// Replacements counts workers abandoned before this one answered.
	Replacements int
}

// flight is one in-flight spec hash (fleet-level singleflight).
type flight struct {
	done chan struct{}
	res  RunResult
	err  error
}

// Coordinator owns placement, health and federation for one fleet.
type Coordinator struct {
	cfg    Config
	health []*workerHealth

	ctx     context.Context
	stop    context.CancelFunc
	probeWG sync.WaitGroup
	auditWG sync.WaitGroup

	mu      sync.Mutex
	flights map[string]*flight
	specs   map[string]jobs.Spec // hash → spec, for federated recompute
	hits    uint64               // cache-hit counter driving audit sampling
	m       Metrics
}

// New builds a Coordinator over cfg.Workers and starts its health probers.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, errors.New("fleet: no workers configured")
	}
	ctx, stop := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:     cfg,
		ctx:     ctx,
		stop:    stop,
		flights: map[string]*flight{},
		specs:   map[string]jobs.Spec{},
	}
	for i := range cfg.Workers {
		c.health = append(c.health, newWorkerHealth())
		c.probeWG.Add(1)
		go c.probeLoop(i)
	}
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Close stops the probers and waits for in-flight audits.
func (c *Coordinator) Close() {
	c.stop()
	c.probeWG.Wait()
	c.auditWG.Wait()
}

// WaitAudits blocks until every spawned cross-worker audit has finished —
// the fleet smoke's synchronization point before asserting audit counters.
func (c *Coordinator) WaitAudits() { c.auditWG.Wait() }

// Rank returns the worker indices in rendezvous order for a spec hash: the
// first entry is the hash's owner, the rest the re-placement/read-through
// order. Pure function of (hash, fleet size), so every coordinator (and
// every restart) agrees on placement without coordination.
func (c *Coordinator) Rank(hash string) []int {
	type scored struct {
		w     int
		score uint64
	}
	s := make([]scored, len(c.cfg.Workers))
	base := fnv64(hash)
	for i := range s {
		s[i] = scored{i, splitmix64(base + uint64(i)*0x9e3779b97f4a7c15)}
	}
	sort.Slice(s, func(a, b int) bool {
		if s[a].score != s[b].score {
			return s[a].score > s[b].score
		}
		return s[a].w < s[b].w
	})
	out := make([]int, len(s))
	for i, e := range s {
		out[i] = e.w
	}
	return out
}

// Run places sp on the fleet and returns its result bytes, surviving worker
// death by re-placement. Concurrent Runs of the same spec coalesce onto one
// placement. The returned bytes are the worker-committed result JSON —
// byte-identical no matter which worker (or how many attempts) produced it.
func (c *Coordinator) Run(ctx context.Context, sp jobs.Spec) (RunResult, error) {
	sp = sp.Normalized()
	if err := sp.Validate(); err != nil {
		return RunResult{}, err
	}
	hash, err := store.Key(sp)
	if err != nil {
		return RunResult{}, err
	}

	c.mu.Lock()
	if f := c.flights[hash]; f != nil {
		c.m.Deduped++
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.res, f.err
		case <-ctx.Done():
			return RunResult{}, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[hash] = f
	c.specs[hash] = sp
	c.mu.Unlock()

	res, rerr := c.runFlight(ctx, hash, sp)
	f.res, f.err = res, rerr
	close(f.done)
	c.mu.Lock()
	delete(c.flights, hash) // later Runs re-place (and hit a worker cache)
	c.mu.Unlock()
	return res, rerr
}

// runFlight walks workers in rendezvous order until one completes the job,
// skipping dead workers and backing off between full passes so a fleet in
// the middle of a chaos event is retried rather than failed.
func (c *Coordinator) runFlight(ctx context.Context, hash string, sp jobs.Spec) (RunResult, error) {
	replacements := 0
	var lastErr error
	for cycle := 1; ; cycle++ {
		tried := 0
		for _, w := range c.Rank(hash) {
			if err := ctx.Err(); err != nil {
				return RunResult{}, flightErr(err, lastErr)
			}
			if c.health[w].State() == Dead {
				continue
			}
			tried++
			c.count(func(m *Metrics) { m.Placements++ })
			res, err := c.runOn(ctx, w, hash, sp, false)
			if err == nil {
				res.Replacements = replacements
				return res, nil
			}
			if retry.IsPermanent(err) || ctx.Err() != nil {
				return RunResult{}, flightErr(err, nil)
			}
			lastErr = err
			replacements++
			c.count(func(m *Metrics) { m.Replacements++ })
			c.logf("fleet: job %.12s re-placing off worker %d: %v", hash, w, err)
		}
		if c.cfg.PlacementCycles > 0 && cycle >= c.cfg.PlacementCycles {
			return RunResult{}, flightErr(fmt.Errorf("fleet: no worker completed job %.12s after %d cycles", hash, cycle), lastErr)
		}
		if tried == 0 {
			c.logf("fleet: job %.12s waiting: every worker is dead", hash)
		}
		// Full pass failed (or everyone is dead): back off deterministically
		// on the spec hash and try again — chaos restarts workers.
		if err := retry.Sleep(ctx, c.cfg.RPC.Delay(hash, cycle)); err != nil {
			return RunResult{}, flightErr(err, lastErr)
		}
	}
}

func flightErr(err, last error) error {
	if last != nil {
		return fmt.Errorf("%w (last worker error: %v)", err, last)
	}
	return err
}

// runOn drives one placement attempt on worker w: submit (with retry),
// watch the event stream to the terminal state, fetch the result bytes.
// isAudit marks audit re-executions, which never spawn further audits —
// otherwise a cache-hit audit would audit itself forever.
func (c *Coordinator) runOn(ctx context.Context, w int, hash string, sp jobs.Spec, isAudit bool) (RunResult, error) {
	base := c.cfg.Workers[w]
	sub, err := c.submit(ctx, base, hash, sp)
	if err != nil {
		return RunResult{}, err
	}
	if sub.Hash != hash {
		return RunResult{}, retry.Permanent(fmt.Errorf("fleet: worker %d hashed spec to %.12s, coordinator to %.12s", w, sub.Hash, hash))
	}
	if !sub.Cached {
		ev, err := c.watch(ctx, base, sub.Job)
		if err != nil {
			return RunResult{}, err
		}
		switch ev.State {
		case jobs.StateDone:
		case jobs.StateFailed:
			// Deterministic failure: every worker would fail identically.
			return RunResult{}, retry.Permanent(fmt.Errorf("fleet: job %.12s failed on worker %d: %s", hash, w, ev.Error))
		default:
			// Cancelled (worker draining): someone else can still run it.
			return RunResult{}, fmt.Errorf("fleet: job %.12s ended %s on worker %d", hash, ev.State, w)
		}
	}
	raw, err := c.result(ctx, base, hash)
	if err != nil {
		// Deliberately not %w: a missing/unfetchable result is this
		// worker's problem (e.g. it restarted with an empty store between
		// finishing and our fetch) — re-place rather than fail the flight.
		return RunResult{}, fmt.Errorf("fleet: fetching result: %v", err)
	}
	res := RunResult{Hash: hash, Bytes: raw, Cached: sub.Cached, Worker: w}
	if sub.Cached && !isAudit {
		c.count(func(m *Metrics) { m.CacheHits++ })
		c.maybeAudit(hash, sp, w, raw)
	}
	return res, nil
}

// maybeAudit re-executes every AuditEvery-th cache hit on a different
// worker than the one that served it and compares bytes. Distribution is
// the point: the owner's store cannot corroborate itself, so a corrupted
// entry (or a worker whose binary has drifted out of determinism) is caught
// by an independent machine.
func (c *Coordinator) maybeAudit(hash string, sp jobs.Spec, owner int, ownerBytes []byte) {
	if c.cfg.AuditEvery <= 0 {
		return
	}
	c.mu.Lock()
	c.hits++
	due := c.hits%uint64(c.cfg.AuditEvery) == 0
	c.mu.Unlock()
	if !due {
		return
	}
	var auditor = -1
	for _, w := range c.Rank(hash)[1:] { // never the owner's own rank-0 slot
		if w != owner && c.health[w].State() != Dead {
			auditor = w
			break
		}
	}
	if auditor < 0 {
		c.count(func(m *Metrics) { m.AuditSkipped++ })
		c.logf("fleet: audit %.12s skipped: no live worker besides owner %d", hash, owner)
		return
	}
	c.auditWG.Add(1)
	go func() {
		defer c.auditWG.Done()
		ctx, cancel := context.WithTimeout(c.ctx, c.cfg.AuditTimeout)
		defer cancel()
		res, err := c.runOn(ctx, auditor, hash, sp, true)
		if err != nil {
			c.count(func(m *Metrics) { m.AuditSkipped++ })
			c.logf("fleet: audit %.12s on worker %d did not complete: %v", hash, auditor, err)
			return
		}
		c.count(func(m *Metrics) { m.Audits++ })
		if string(res.Bytes) != string(ownerBytes) {
			c.count(func(m *Metrics) { m.AuditBad++ })
			c.logf("fleet: audit %.12s MISMATCH — worker %d's re-execution differs from owner %d's cached result", hash, auditor, owner)
			return
		}
		c.logf("fleet: audit %.12s ok — worker %d independently reproduced owner %d's bytes", hash, auditor, owner)
	}()
}

// Fetch is the federated result read: the hash's owner first (its store
// almost always has it), then peer read-through in rendezvous order, then —
// if the coordinator knows the spec — recompute via Run. The bytes are
// identical whichever path serves them; only latency differs.
func (c *Coordinator) Fetch(ctx context.Context, hash string) ([]byte, error) {
	if !store.ValidKey(hash) {
		return nil, retry.Permanent(fmt.Errorf("fleet: malformed hash %q", hash))
	}
	for i, w := range c.Rank(hash) {
		if c.health[w].State() == Dead {
			continue
		}
		raw, err := c.resultOnce(ctx, c.cfg.Workers[w], hash)
		if err == nil {
			if i == 0 {
				c.count(func(m *Metrics) { m.FetchOwner++ })
			} else {
				c.count(func(m *Metrics) { m.FetchPeer++ })
			}
			return raw, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	c.mu.Lock()
	sp, known := c.specs[hash]
	c.mu.Unlock()
	if !known {
		return nil, fmt.Errorf("fleet: no worker holds %.12s and its spec is unknown", hash)
	}
	c.count(func(m *Metrics) { m.FetchRecomp++ })
	res, err := c.Run(ctx, sp)
	if err != nil {
		return nil, err
	}
	return res.Bytes, nil
}

// Metrics returns a counter snapshot including per-worker detector states.
func (c *Coordinator) Metrics() Metrics {
	c.mu.Lock()
	m := c.m
	c.mu.Unlock()
	m.Workers = make([]WorkerStatus, len(c.health))
	for i, h := range c.health {
		st, fails := h.Snapshot()
		m.Workers[i] = WorkerStatus{ID: i, URL: c.cfg.Workers[i], State: st, Fails: fails}
	}
	return m
}

func (c *Coordinator) count(f func(*Metrics)) {
	c.mu.Lock()
	f(&c.m)
	c.mu.Unlock()
}

// fnv64 is FNV-1a; splitmix64 the avalanche finalizer shared with
// internal/parallel's seed derivation and internal/retry's jitter.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
