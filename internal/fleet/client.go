package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"spineless/internal/jobs"
	"spineless/internal/retry"
	"spineless/internal/serve"
)

// submitResp mirrors serve.SubmitResponse — aliased so the wire contract
// lives in one place.
type submitResp = serve.SubmitResponse

// submit POSTs the spec to a worker under the retry policy, jittered
// deterministically on the spec hash. 429/503 are retryable (the worker is
// shedding or full — exactly what backoff is for); 4xx spec rejections are
// permanent.
func (c *Coordinator) submit(ctx context.Context, base, hash string, sp jobs.Spec) (submitResp, error) {
	body, err := json.Marshal(sp)
	if err != nil {
		return submitResp{}, retry.Permanent(err)
	}
	var out submitResp
	err = c.cfg.RPC.Do(ctx, hash, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return retry.Permanent(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.cfg.Client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if err != nil {
			return err
		}
		switch {
		case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted:
			return json.Unmarshal(raw, &out)
		case resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable ||
			resp.StatusCode >= 500:
			return fmt.Errorf("fleet: submit to %s: %s: %s", base, resp.Status, strings.TrimSpace(string(raw)))
		default:
			return retry.Permanent(fmt.Errorf("fleet: submit to %s: %s: %s", base, resp.Status, strings.TrimSpace(string(raw))))
		}
	})
	return out, err
}

// watch follows a job's NDJSON event stream until a terminal event. A
// watchdog abandons the stream after StreamSilence with no line at all —
// the worker's heartbeat comments keep a healthy-but-slow stream alive, so
// silence means the worker (or the path to it) is gone.
func (c *Coordinator) watch(ctx context.Context, base, jobID string) (jobs.Event, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/jobs/%s/events", base, jobID), nil)
	if err != nil {
		return jobs.Event{}, retry.Permanent(err)
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return jobs.Event{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return jobs.Event{}, fmt.Errorf("fleet: watch %s job %s: %s: %s", base, jobID, resp.Status, strings.TrimSpace(string(raw)))
	}

	// Watchdog: every line (event or heartbeat) rearms it; silence past
	// StreamSilence cancels the request, failing the read below.
	dog := time.AfterFunc(c.cfg.StreamSilence, cancel)
	defer dog.Stop()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		dog.Reset(c.cfg.StreamSilence)
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ":") {
			continue // heartbeat comment
		}
		var ev jobs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return jobs.Event{}, fmt.Errorf("fleet: watch %s job %s: bad event %q: %v", base, jobID, line, err)
		}
		if ev.State.Terminal() {
			return ev, nil
		}
	}
	if err := sc.Err(); err != nil {
		return jobs.Event{}, fmt.Errorf("fleet: watch %s job %s: stream broke: %w", base, jobID, err)
	}
	return jobs.Event{}, fmt.Errorf("fleet: watch %s job %s: stream ended before a terminal event", base, jobID)
}

// result fetches committed result bytes under the retry policy.
func (c *Coordinator) result(ctx context.Context, base, hash string) ([]byte, error) {
	var out []byte
	err := c.cfg.RPC.Do(ctx, hash, func(ctx context.Context) error {
		raw, err := c.resultOnce(ctx, base, hash)
		if err != nil {
			return err
		}
		out = raw
		return nil
	})
	return out, err
}

// resultOnce is one GET /v1/results/{hash}; 404 is permanent (the worker
// answered authoritatively: not in my store) so federated reads fall
// through to the next peer instead of hammering one.
func (c *Coordinator) resultOnce(ctx context.Context, base, hash string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/results/"+hash, nil)
	if err != nil {
		return nil, retry.Permanent(err)
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return raw, nil
	case http.StatusNotFound:
		return nil, retry.Permanent(fmt.Errorf("fleet: %s does not hold %.12s", base, hash))
	default:
		return nil, fmt.Errorf("fleet: result %.12s from %s: %s", hash, base, resp.Status)
	}
}
