package fleet

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"spineless/internal/jobs"
	"spineless/internal/retry"
	"spineless/internal/serve"
	"spineless/internal/store"
)

// testWorker is one in-process spinelessd worker: its own store, manager
// and HTTP server — the same isolation a separate process would have,
// minus the fork.
type testWorker struct {
	ts *httptest.Server
	m  *jobs.Manager
	st *store.Store
}

func newWorker(t *testing.T, cfg jobs.Config) *testWorker {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := jobs.New(st, cfg)
	srv := serve.New(m, nil)
	srv.Heartbeat = 50 * time.Millisecond
	ts := httptest.NewServer(srv)
	w := &testWorker{ts: ts, m: m, st: st}
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		m.Drain(ctx)
	})
	return w
}

func newFleet(t *testing.T, n int, cfg jobs.Config, mut func(*Config)) (*Coordinator, []*testWorker) {
	t.Helper()
	workers := make([]*testWorker, n)
	urls := make([]string, n)
	for i := range workers {
		workers[i] = newWorker(t, cfg)
		urls[i] = workers[i].ts.URL
	}
	fcfg := Config{
		Workers:       urls,
		ProbeEvery:    25 * time.Millisecond,
		ProbeTimeout:  250 * time.Millisecond,
		SuspectAfter:  1,
		DeadAfter:     3,
		StreamSilence: 2 * time.Second,
		RPC: retry.Policy{
			MaxAttempts:    3,
			BaseDelay:      10 * time.Millisecond,
			MaxDelay:       100 * time.Millisecond,
			AttemptTimeout: 2 * time.Second,
		},
		Logf: t.Logf,
	}
	if mut != nil {
		mut(&fcfg)
	}
	c, err := New(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, workers
}

func spec(t *testing.T, seed int64, trials int) jobs.Spec {
	t.Helper()
	var sp jobs.Spec
	raw := `{"kind":"fct","topo":{"scale":8},"fabric":"rrg","scheme":"ecmp","tm":"A2A","util":0.2,"window_sec":0.002,"seed":1,"max_flows":40,"trials":2}`
	if err := json.Unmarshal([]byte(raw), &sp); err != nil {
		t.Fatal(err)
	}
	sp.Seed = seed
	sp.Trials = trials
	return sp.Normalized()
}

func workerCfg() jobs.Config {
	return jobs.Config{QueueDepth: 8, Executors: 2, TrialWorkers: 1}
}

// TestRankDeterministicAndSpread pins the placement function: stable across
// calls, a permutation of the worker set, and not degenerate (different
// hashes land on different owners).
func TestRankDeterministicAndSpread(t *testing.T) {
	c := &Coordinator{cfg: Config{Workers: make([]string, 5)}.withDefaults()}
	owners := map[int]bool{}
	for _, h := range []string{"aaaa", "bbbb", "cccc", "dddd", "eeee", "ffff", "0123"} {
		r1, r2 := c.Rank(h), c.Rank(h)
		if len(r1) != 5 {
			t.Fatalf("rank(%s) = %v, want 5 entries", h, r1)
		}
		seen := map[int]bool{}
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("rank(%s) unstable: %v vs %v", h, r1, r2)
			}
			seen[r1[i]] = true
		}
		if len(seen) != 5 {
			t.Fatalf("rank(%s) = %v is not a permutation", h, r1)
		}
		owners[r1[0]] = true
	}
	if len(owners) < 2 {
		t.Fatalf("7 hashes all owned by one worker: degenerate placement")
	}
}

// TestRunPlacesOnOwnerAndDedupes: concurrent Runs of one spec coalesce onto
// a single placement on the rendezvous owner, and all callers get identical
// bytes.
func TestRunPlacesOnOwnerAndDedupes(t *testing.T) {
	c, workers := newFleet(t, 3, workerCfg(), nil)
	sp := spec(t, 42, 3)
	hash, err := store.Key(sp)
	if err != nil {
		t.Fatal(err)
	}
	owner := c.Rank(hash)[0]

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	type out struct {
		res RunResult
		err error
	}
	results := make(chan out, 3)
	for i := 0; i < 3; i++ {
		go func() {
			res, err := c.Run(ctx, sp)
			results <- out{res, err}
		}()
	}
	var first []byte
	for i := 0; i < 3; i++ {
		o := <-results
		if o.err != nil {
			t.Fatalf("run %d: %v", i, o.err)
		}
		if o.res.Worker != owner {
			t.Errorf("run %d placed on worker %d, want owner %d", i, o.res.Worker, owner)
		}
		if first == nil {
			first = o.res.Bytes
		} else if string(o.res.Bytes) != string(first) {
			t.Errorf("run %d bytes differ from first run", i)
		}
	}
	m := c.Metrics()
	if m.Deduped != 2 {
		t.Errorf("Deduped = %d, want 2", m.Deduped)
	}
	// Exactly the owner's manager saw the job.
	for i, w := range workers {
		want := uint64(0)
		if i == owner {
			want = 1
		}
		if got := w.m.Snapshot().Submitted; got != want {
			t.Errorf("worker %d Submitted = %d, want %d", i, got, want)
		}
	}
	if len(first) == 0 {
		t.Fatal("empty result bytes")
	}
}

// TestReplacementOnWorkerDeath kills the owner mid-run and expects the
// coordinator to finish the job on another worker with identical bytes to a
// clean computation.
func TestReplacementOnWorkerDeath(t *testing.T) {
	c, workers := newFleet(t, 3, workerCfg(), func(f *Config) {
		f.StreamSilence = 750 * time.Millisecond
	})
	sp := spec(t, 7, 150) // slow enough to be mid-flight when the owner dies
	hash, err := store.Key(sp)
	if err != nil {
		t.Fatal(err)
	}
	owner := c.Rank(hash)[0]

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	done := make(chan struct{})
	var res RunResult
	var runErr error
	go func() {
		defer close(done)
		res, runErr = c.Run(ctx, sp)
	}()

	// Wait for the owner to accept the job, then kill it.
	deadline := time.Now().Add(30 * time.Second)
	for workers[owner].m.Snapshot().Submitted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("owner never saw the job")
		}
		time.Sleep(10 * time.Millisecond)
	}
	workers[owner].ts.CloseClientConnections()
	workers[owner].ts.Close()

	<-done
	if runErr != nil {
		t.Fatalf("run after owner death: %v", runErr)
	}
	if res.Worker == owner {
		t.Fatalf("result attributed to the dead owner %d", owner)
	}
	if res.Replacements == 0 {
		t.Error("expected at least one re-placement")
	}

	// The survivor's bytes must equal an independent clean computation.
	clean, err := jobs.Execute(ctx, sp.Normalized(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(clean)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Bytes) != string(want) {
		t.Errorf("re-placed result differs from clean run:\n got %s\nwant %s", res.Bytes, want)
	}

	// The failure detector must eventually declare the worker dead.
	deadline = time.Now().Add(30 * time.Second)
	for {
		if st := c.Metrics().Workers[owner].State; st == Dead {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker %d never declared dead (state %s)", owner, c.Metrics().Workers[owner].State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFederatedFetch: owner hit, then peer/recompute fallback once the
// owner is gone — same bytes on every path.
func TestFederatedFetch(t *testing.T) {
	c, workers := newFleet(t, 3, workerCfg(), nil)
	sp := spec(t, 11, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	res, err := c.Run(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Fetch(ctx, res.Hash)
	if err != nil {
		t.Fatalf("fetch with owner alive: %v", err)
	}
	if string(got) != string(res.Bytes) {
		t.Error("owner fetch bytes differ")
	}
	if m := c.Metrics(); m.FetchOwner != 1 {
		t.Errorf("FetchOwner = %d, want 1", m.FetchOwner)
	}

	// Kill the worker that holds the result; a fetch must now either
	// read-through to a peer (none has it) or recompute — and still return
	// identical bytes.
	workers[res.Worker].ts.Close()
	got, err = c.Fetch(ctx, res.Hash)
	if err != nil {
		t.Fatalf("fetch with owner dead: %v", err)
	}
	if string(got) != string(res.Bytes) {
		t.Error("failover fetch bytes differ")
	}
	if m := c.Metrics(); m.FetchRecomp != 1 {
		t.Errorf("FetchRecomp = %d, want 1 (metrics: %+v)", m.FetchRecomp, m)
	}
}

// TestCrossWorkerAudit: a cache hit served by its owner is re-executed on a
// different worker; tampering with the owner's store is caught as a
// mismatch by the independent re-execution.
func TestCrossWorkerAudit(t *testing.T) {
	c, workers := newFleet(t, 3, workerCfg(), func(f *Config) {
		f.AuditEvery = 1
	})
	sp := spec(t, 23, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	res1, err := c.Run(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Cached {
		t.Fatal("first run reported cached")
	}
	res2, err := c.Run(ctx, sp) // flight closed → re-placed → owner cache hit
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Fatal("second run not served from cache")
	}
	c.WaitAudits()
	m := c.Metrics()
	if m.Audits != 1 || m.AuditBad != 0 {
		t.Fatalf("clean audit: Audits=%d AuditBad=%d, want 1/0", m.Audits, m.AuditBad)
	}

	// Tamper with the owner's cached entry. The owner happily serves the
	// corrupt bytes — only the cross-worker re-execution can notice.
	ent, ok := workers[res1.Worker].st.Get(res1.Hash)
	if !ok {
		t.Fatalf("owner %d store lost %s", res1.Worker, res1.Hash)
	}
	var tampered []byte
	tampered = append(tampered, ent.Result...)
	tampered[len(tampered)/2] ^= 0x20
	workers[res1.Worker].st.Invalidate(res1.Hash)
	if err := workers[res1.Worker].st.Put(res1.Hash, ent.Spec, tampered); err != nil {
		t.Fatal(err)
	}

	res3, err := c.Run(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	if !res3.Cached {
		t.Fatal("tampered run not served from cache")
	}
	if string(res3.Bytes) == string(res1.Bytes) {
		t.Fatal("tampering did not take")
	}
	c.WaitAudits()
	m = c.Metrics()
	if m.AuditBad != 1 {
		t.Fatalf("AuditBad = %d after tamper, want 1 (metrics: %+v)", m.AuditBad, m)
	}
}

// TestRunPermanentErrorNotRetried: an invalid spec fails immediately, with
// no placements at all.
func TestRunPermanentErrorNotRetried(t *testing.T) {
	c, _ := newFleet(t, 2, workerCfg(), nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sp := spec(t, 1, 2)
	sp.Kind = "warp"
	if _, err := c.Run(ctx, sp); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if m := c.Metrics(); m.Placements != 0 {
		t.Errorf("Placements = %d for an invalid spec, want 0", m.Placements)
	}
}
