package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestScheduleMapsToFaultEvents(t *testing.T) {
	var s Schedule
	s.Seed = 7
	s.Kill(100*time.Millisecond, 0)
	s.Restart(300*time.Millisecond, 0)
	s.Partition(50*time.Millisecond, 1)
	s.Heal(200*time.Millisecond, 1)
	s.Slow(10*time.Millisecond, 2, 0.5)
	s.Lossy(20*time.Millisecond, 2, 0.25)
	if err := s.Validate(); err != nil {
		t.Fatalf("schedule failed the simulator's own validation: %v", err)
	}
	sorted := s.Sorted()
	if len(sorted) != 6 {
		t.Fatalf("got %d events, want 6", len(sorted))
	}
	if sorted[0].TimeNS != int64(10*time.Millisecond) || workerOf(sorted[0]) != 2 {
		t.Errorf("first sorted event = %+v, want the t=10ms slow on worker 2", sorted[0])
	}
	for i, e := range sorted {
		if e.A != Coordinator && e.B != Coordinator {
			t.Errorf("event %d (%+v) has no coordinator endpoint", i, e)
		}
	}
}

func TestControllerPlayAndTransport(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer backend.Close()
	urls := []string{backend.URL, "http://127.0.0.1:1"} // worker 1 never dialed

	var s Schedule
	s.Kill(0, 1)
	s.Restart(10*time.Millisecond, 1)
	s.Partition(20*time.Millisecond, 0)

	var mu sync.Mutex
	var killed, restarted []int
	ctl, err := NewController(&s, urls, Actions{
		Kill:    func(w int) error { mu.Lock(); killed = append(killed, w); mu.Unlock(); return nil },
		Restart: func(w int) error { mu.Lock(); restarted = append(restarted, w); mu.Unlock(); return nil },
	}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}

	client := &http.Client{Transport: ctl.Transport(nil)}
	if resp, err := client.Get(backend.URL); err != nil {
		t.Fatalf("pre-chaos request: %v", err)
	} else {
		resp.Body.Close()
	}

	done := make(chan struct{})
	ctl.Play(done) // schedule spans 20ms; Play returns when exhausted
	close(done)

	mu.Lock()
	if len(killed) != 1 || killed[0] != 1 || len(restarted) != 1 || restarted[0] != 1 {
		t.Errorf("killed=%v restarted=%v, want [1]/[1]", killed, restarted)
	}
	mu.Unlock()
	if !ctl.Partitioned(0) {
		t.Fatal("worker 0 not partitioned after Play")
	}
	if _, err := client.Get(backend.URL); err == nil {
		t.Fatal("request into a partition succeeded")
	}

	// Heal and verify traffic flows again.
	var heal Schedule
	heal.Heal(0, 0)
	// Reuse apply directly: the controller owns the live state.
	for _, e := range heal.Sorted() {
		ctl.apply(e)
	}
	if ctl.Partitioned(0) {
		t.Fatal("worker 0 still partitioned after heal")
	}
	if resp, err := client.Get(backend.URL); err != nil {
		t.Fatalf("post-heal request: %v", err)
	} else {
		resp.Body.Close()
	}
}

func TestValidateRejectsUnknownWorker(t *testing.T) {
	var s Schedule
	s.Kill(0, 5)
	if _, err := NewController(&s, []string{"http://127.0.0.1:1"}, Actions{}, nil); err == nil {
		t.Fatal("controller accepted an event for a worker outside the fleet")
	}
}

func TestSlowTransportDelays(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer backend.Close()
	var s Schedule
	s.Slow(0, 0, 0.25) // 25ms * (1/0.25 - 1) = 75ms injected
	ctl, err := NewController(&s, []string{backend.URL}, Actions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range s.Sorted() {
		ctl.apply(e)
	}
	client := &http.Client{Transport: ctl.Transport(nil)}
	start := time.Now()
	resp, err := client.Get(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("slowed request took %v, want ≥ 50ms of injected delay", d)
	}
}
