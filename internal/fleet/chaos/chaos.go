// Package chaos injects worker-level faults into a running fleet, reusing
// the internal/faults schedule machinery that the packet simulator uses for
// link failures. The mapping treats each worker's connection to the
// coordinator as a link to a pseudo-node:
//
//	Kill(t, w)      = LinkDown  (w, Coordinator)  — SIGKILL the process
//	Restart(t, w)   = LinkUp    (w, Coordinator)  — relaunch it
//	Partition(t, w) = GraySet   loss ≈ 1          — process alive, unreachable
//	Heal(t, w)      = GrayClear                   — reachable again
//	Slow(t, w, f)   = GraySet   rate factor f     — every RPC delayed
//
// Times are wall-clock nanosecond offsets from Play's start (the simulator
// reads the same field as sim time; the schedule is pure data either way).
// A Schedule is seeded and sorted exactly like a simulator fault plan, so a
// chaos run is as reproducible as the wall clock allows: the *decisions*
// (who dies when, which request a gray link eats) are deterministic even
// though process scheduling is not.
//
// Process control stays outside: Play calls the Actions callbacks; the
// Transport wrapper enforces partitions/slowness on the coordinator's own
// HTTP client, so no iptables (or privileges) are needed.
//
//lint:allowpkg determinism
package chaos

import (
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"time"

	"spineless/internal/faults"
)

// Coordinator is the pseudo-node every worker "links" to. Large enough to
// never collide with a worker index, small enough to survive Validate.
const Coordinator = 1 << 30

// PartitionLoss is the gray-loss probability that means "total partition".
// faults.Validate requires LossProb < 1; the transport treats anything at
// or above this as a full cut rather than flipping coins.
const PartitionLoss = 0.999

// Schedule is a fleet fault plan: a faults.Schedule whose links are
// (worker, Coordinator) pairs, with fleet-flavoured builders on top. The
// embedded Sorted/Validate/Seed behave exactly as for simulator schedules.
type Schedule struct {
	faults.Schedule
}

// Kill schedules worker w's process to be killed at wall offset t.
func (s *Schedule) Kill(t time.Duration, w int) {
	s.Cut(int64(t), w, Coordinator)
}

// Restart schedules worker w's process to be relaunched at wall offset t.
func (s *Schedule) Restart(t time.Duration, w int) {
	s.Restore(int64(t), w, Coordinator)
}

// Partition makes worker w unreachable from the coordinator at t: the
// process keeps running (and keeps its jobs) — only the network dies.
func (s *Schedule) Partition(t time.Duration, w int) {
	s.Gray(int64(t), w, Coordinator, PartitionLoss, 1)
}

// Heal reconnects a partitioned or slowed worker at t.
func (s *Schedule) Heal(t time.Duration, w int) {
	s.ClearGray(int64(t), w, Coordinator)
}

// Slow degrades worker w's RPC path from t: every request is delayed in
// proportion to 1/factor - 1 (factor in (0,1]; smaller = slower).
func (s *Schedule) Slow(t time.Duration, w int, factor float64) {
	s.Gray(int64(t), w, Coordinator, 0, factor)
}

// Lossy drops each request to worker w independently with probability p
// (p < PartitionLoss), using coin flips derived from the schedule seed.
func (s *Schedule) Lossy(t time.Duration, w int, p float64) {
	s.Gray(int64(t), w, Coordinator, p, 1)
}

// workerOf extracts the worker endpoint of a chaos event.
func workerOf(e faults.Event) int {
	if e.A == Coordinator {
		return e.B
	}
	return e.A
}

// Actions are the process-control callbacks Play drives. Kill must not
// return until the process is dead; Restart must not return until the
// worker is relaunched (it need not be healthy yet — the fleet's failure
// detector owns that question).
type Actions struct {
	Kill    func(w int) error
	Restart func(w int) error
}

// Controller plays a Schedule against a fleet and enforces its network
// faults on the coordinator's HTTP transport.
type Controller struct {
	sched   *Schedule
	acts    Actions
	workers map[string]int // URL host → worker index
	logf    func(format string, args ...any)

	// slowUnit is the injected delay per unit of (1/factor - 1); the
	// default 25ms makes factor 0.5 add 25ms and factor 0.1 add 225ms.
	slowUnit time.Duration

	mu   sync.Mutex
	cut  map[int]bool    // partitioned workers
	loss map[int]float64 // probabilistic drop
	slow map[int]float64 // rate factor < 1
	rng  uint64          // deterministic coin state, from Schedule.Seed
}

// NewController validates the schedule against the worker set and builds a
// controller. workerURLs are the fleet's base URLs, indexed by worker ID —
// the same slice handed to fleet.Config.
func NewController(s *Schedule, workerURLs []string, acts Actions, logf func(string, ...any)) (*Controller, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	hosts := map[string]int{}
	for i, raw := range workerURLs {
		u, err := url.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("chaos: worker %d URL %q: %v", i, raw, err)
		}
		hosts[u.Host] = i
	}
	for i, e := range s.Events {
		w := workerOf(e)
		if w < 0 || w >= len(workerURLs) {
			return nil, fmt.Errorf("chaos: event %d (%s) targets worker %d of %d", i, e.Kind, w, len(workerURLs))
		}
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Controller{
		sched:    s,
		acts:     acts,
		workers:  hosts,
		logf:     logf,
		slowUnit: 25 * time.Millisecond,
		cut:      map[int]bool{},
		loss:     map[int]float64{},
		slow:     map[int]float64{},
		rng:      splitmix64(uint64(s.Seed)),
	}, nil
}

// Play applies the schedule's events at their wall-clock offsets from now,
// returning when the schedule is exhausted or done is closed. Run it in its
// own goroutine alongside the load.
func (c *Controller) Play(done <-chan struct{}) {
	start := time.Now()
	for _, e := range c.sched.Sorted() {
		at := start.Add(time.Duration(e.TimeNS))
		if d := time.Until(at); d > 0 {
			// One timer per event, released on early exit: time.After here
			// would leave the abandoned timer pending until it fired.
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-done:
				t.Stop()
				return
			}
		}
		c.apply(e)
	}
}

func (c *Controller) apply(e faults.Event) {
	w := workerOf(e)
	switch e.Kind {
	case faults.LinkDown:
		c.logf("chaos: t=%v kill worker %d", time.Duration(e.TimeNS), w)
		if c.acts.Kill != nil {
			if err := c.acts.Kill(w); err != nil {
				c.logf("chaos: kill worker %d: %v", w, err)
			}
		}
	case faults.LinkUp:
		c.logf("chaos: t=%v restart worker %d", time.Duration(e.TimeNS), w)
		if c.acts.Restart != nil {
			if err := c.acts.Restart(w); err != nil {
				c.logf("chaos: restart worker %d: %v", w, err)
			}
		}
	case faults.GraySet:
		c.mu.Lock()
		switch {
		case e.LossProb >= PartitionLoss:
			c.cut[w] = true
			c.logf("chaos: t=%v partition worker %d", time.Duration(e.TimeNS), w)
		case e.LossProb > 0:
			c.loss[w] = e.LossProb
			c.logf("chaos: t=%v worker %d lossy p=%.2f", time.Duration(e.TimeNS), w, e.LossProb)
		}
		if e.RateFactor > 0 && e.RateFactor < 1 {
			c.slow[w] = e.RateFactor
			c.logf("chaos: t=%v worker %d slowed x%.2f", time.Duration(e.TimeNS), w, e.RateFactor)
		}
		c.mu.Unlock()
	case faults.GrayClear:
		c.mu.Lock()
		delete(c.cut, w)
		delete(c.loss, w)
		delete(c.slow, w)
		c.mu.Unlock()
		c.logf("chaos: t=%v heal worker %d", time.Duration(e.TimeNS), w)
	}
}

// Partitioned reports whether w is currently network-partitioned (tests).
func (c *Controller) Partitioned(w int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cut[w]
}

// errPartitioned is returned for requests into a partition — a transport
// error, exactly what a real unreachable host produces.
type errPartitioned struct{ w int }

func (e errPartitioned) Error() string {
	return fmt.Sprintf("chaos: worker %d is partitioned", e.w)
}

type transport struct {
	c    *Controller
	next http.RoundTripper
}

// Transport wraps next so requests to faulted workers fail or stall
// according to the live schedule state. Hand the result to the fleet
// coordinator's http.Client.
func (c *Controller) Transport(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return transport{c: c, next: next}
}

func (t transport) RoundTrip(req *http.Request) (*http.Response, error) {
	c := t.c
	w, tracked := c.workers[req.URL.Host]
	if !tracked {
		return t.next.RoundTrip(req)
	}
	c.mu.Lock()
	cut := c.cut[w]
	p := c.loss[w]
	factor := c.slow[w]
	drop := false
	if !cut && p > 0 {
		c.rng = splitmix64(c.rng)
		drop = float64(c.rng>>11)/float64(1<<53) < p
	}
	c.mu.Unlock()
	if cut || drop {
		return nil, errPartitioned{w}
	}
	if factor > 0 && factor < 1 {
		delay := time.Duration(float64(c.slowUnit) * (1/factor - 1))
		select {
		case <-time.After(delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	return t.next.RoundTrip(req)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
