package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// WorkerState is one failure-detector state. Workers start Alive; probe
// failures walk them Alive → Suspect → Dead, and any single success snaps
// them straight back to Alive. Suspect is advisory (placement still tries
// suspects — the RPC itself is the tiebreaker); Dead workers are skipped by
// placement and federated reads until the prober sees them answer again.
type WorkerState int32

const (
	Alive WorkerState = iota
	Suspect
	Dead
)

func (s WorkerState) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("WorkerState(%d)", int32(s))
	}
}

type workerHealth struct {
	mu    sync.Mutex
	state WorkerState
	fails int // consecutive probe failures
}

func newWorkerHealth() *workerHealth { return &workerHealth{} }

func (h *workerHealth) State() WorkerState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

func (h *workerHealth) Snapshot() (WorkerState, int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state, h.fails
}

// observe folds one probe outcome into the detector and reports a
// transition (old != new).
func (h *workerHealth) observe(ok bool, suspectAfter, deadAfter int) (old, now WorkerState) {
	h.mu.Lock()
	defer h.mu.Unlock()
	old = h.state
	if ok {
		h.fails = 0
		h.state = Alive
	} else {
		h.fails++
		switch {
		case h.fails >= deadAfter:
			h.state = Dead
		case h.fails >= suspectAfter:
			h.state = Suspect
		}
	}
	return old, h.state
}

// probeLoop is the per-worker health prober: GET /healthz every ProbeEvery,
// feed the outcome to the detector, log transitions.
func (c *Coordinator) probeLoop(w int) {
	defer c.probeWG.Done()
	t := time.NewTicker(c.cfg.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
		}
		ok := c.probe(w)
		if !ok {
			c.count(func(m *Metrics) { m.ProbeFails++ })
		}
		old, now := c.health[w].observe(ok, c.cfg.SuspectAfter, c.cfg.DeadAfter)
		if old == now {
			continue
		}
		switch now {
		case Suspect:
			c.count(func(m *Metrics) { m.WentSuspect++ })
		case Dead:
			c.count(func(m *Metrics) { m.WentDead++ })
		case Alive:
			c.count(func(m *Metrics) { m.WentAlive++ })
		}
		c.logf("fleet: worker %d (%s) %s -> %s", w, c.cfg.Workers[w], old, now)
	}
}

func (c *Coordinator) probe(w int) bool {
	ctx, cancel := context.WithTimeout(c.ctx, c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.Workers[w]+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	return resp.StatusCode == http.StatusOK
}
