package routing

import (
	"fmt"

	"spineless/internal/topology"
)

// DeBruijn is shift-register self-routing on a De Bruijn fabric
// (arXiv:1610.03245): a path from src to dst is read directly off the node
// labels by shifting dst's base-k digits into src one at a time, skipping
// the digits that already overlap. No FIB is constructed and no per-pair
// state is stored — the entire scheme is the graph handle plus a power
// table, which is what makes the topology's routing "free" at any scale.
//
// The walk uses only the directed shift edges the builder is guaranteed to
// retain (regularization never removes them), so every emitted path exists
// in the fabric. The number of shift steps before loop splicing equals the
// directed De Bruijn distance: Digits minus the longest suffix of src that
// prefixes dst. Self-routing is single-path — flowID is ignored, which the
// Scheme contract permits — and assumes an intact fabric; under failures it
// has no reroute story, which is exactly the trade the bake-off measures.
//
// Immutable after construction (Scheme concurrency contract).
type DeBruijn struct {
	g      *topology.Graph
	k      int   // alphabet size
	digits int   // label length
	n      int   // switch count, k^digits
	pow    []int // pow[i] = k^i, i in [0, digits]
}

// NewDeBruijn builds the self-routing scheme for a fabric built by
// topology.DeBruijn, recovering (Symbols, Digits) from the shift edges via
// topology.InferDeBruijn. It fails with a clear error on any other graph —
// self-routing is meaningless without the label structure.
func NewDeBruijn(g *topology.Graph) (*DeBruijn, error) {
	spec, ok := topology.InferDeBruijn(g)
	if !ok {
		return nil, fmt.Errorf("routing: graph %q is not a De Bruijn fabric; selfroute needs shift edges", g.Name)
	}
	s := &DeBruijn{g: g, k: spec.Symbols, digits: spec.Digits, n: g.N()}
	s.pow = make([]int, spec.Digits+1)
	s.pow[0] = 1
	for i := 1; i <= spec.Digits; i++ {
		s.pow[i] = s.pow[i-1] * spec.Symbols
	}
	return s, nil
}

// Name implements Scheme.
func (s *DeBruijn) Name() string { return "selfroute" }

// Steps returns the number of directed shift steps self-routing takes from
// src to dst before loop splicing: Digits minus the longest overlap between
// src's suffix and dst's prefix. This equals the directed De Bruijn graph
// distance (the test suite pins that against BFS).
func (s *DeBruijn) Steps(src, dst int) int {
	return s.digits - s.overlap(src, dst)
}

// overlap returns the largest j such that the last j digits of src equal
// the first j digits of dst.
func (s *DeBruijn) overlap(src, dst int) int {
	for j := s.digits; j > 0; j-- {
		if src%s.pow[j] == dst/s.pow[s.digits-j] {
			return j
		}
	}
	return 0
}

// Path implements Scheme. flowID is unused: shift-register routing is
// single-path by nature.
func (s *DeBruijn) Path(src, dst int, flowID uint64) []int {
	buf := make([]int, 0, s.digits+1)
	return s.AppendPath(buf, src, dst)
}

// AppendPath appends the self-routed path from src to dst onto buf and
// returns the extended slice. With a caller-provided buffer of capacity
// Digits+1 it performs no allocation — this is the forwarding-decision
// equivalent, exercised per flow by the simulator, and stays on the
// zero-alloc discipline the netsim hot path uses (see the AllocsPerRun pin
// in the tests).
//
//lint:hotpath
func (s *DeBruijn) AppendPath(buf []int, src, dst int) []int {
	start := len(buf)
	buf = append(buf, src)
	if src == dst {
		return buf
	}
	// Shift dst's digits in, most significant of the non-overlapping tail
	// first. Steps where the label does not change (shifting an all-equal
	// label's own symbol in) are skipped rather than emitted — the fabric
	// has no self-loops.
	cur := src
	for i := s.digits - s.overlap(src, dst); i > 0; i-- {
		digit := dst / s.pow[i-1] % s.k
		next := (cur*s.k + digit) % s.n
		if next == cur {
			continue
		}
		buf = append(buf, next)
		cur = next
	}
	// Splice out switch-level loops in place (a real FIB would forward on
	// from the repeat): keep the first occurrence, drop the excursion. The
	// walk is at most Digits+1 entries, so the quadratic scan is cheap and —
	// unlike SpliceLoops — allocation-free.
	walk := buf[start:]
	for i := 0; i < len(walk); i++ {
		for j := len(walk) - 1; j > i; j-- {
			if walk[j] == walk[i] {
				walk = append(walk[:i], walk[j:]...)
				break
			}
		}
	}
	return buf[:start+len(walk)]
}

// PathSet implements Scheme. Self-routing admits one walk per overlap
// length (taking the "long way" with a smaller overlap re-derives a valid
// shift walk), so PathSet enumerates those from shortest up, deduplicating
// identical spliced paths.
func (s *DeBruijn) PathSet(src, dst, maxPaths int) [][]int {
	if src == dst {
		return [][]int{{src}}
	}
	var out [][]int
	for j := s.overlap(src, dst); j >= 0; j-- {
		p := s.pathWithOverlap(src, dst, j)
		if p == nil || containsPath(out, p) {
			continue
		}
		out = append(out, p)
		if maxPaths > 0 && len(out) >= maxPaths {
			break
		}
	}
	return out
}

// pathWithOverlap routes src→dst pretending the label overlap is exactly j.
func (s *DeBruijn) pathWithOverlap(src, dst, j int) []int {
	buf := make([]int, 0, s.digits-j+1)
	buf = append(buf, src)
	cur := src
	for i := s.digits - j; i > 0; i-- {
		digit := dst / s.pow[i-1] % s.k
		next := (cur*s.k + digit) % s.n
		if next == cur {
			continue
		}
		buf = append(buf, next)
		cur = next
	}
	if cur != dst {
		return nil
	}
	return SpliceLoops(buf)
}

var _ Scheme = (*DeBruijn)(nil)
