package routing

import (
	"testing"

	"spineless/internal/topology"
)

func tvTestGraphs(t *testing.T) (*topology.Graph, *topology.Graph) {
	t.Helper()
	g := topology.New("tri", 3, 4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if err := g.AddLink(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for v := 0; v < 3; v++ {
		g.SetServers(v, 1)
	}
	cut := g.Clone()
	cut.RemoveLink(0, 2)
	return g, cut
}

func TestTimeVaryingPhases(t *testing.T) {
	g, cut := tvTestGraphs(t)
	pre, post := NewECMP(g), NewECMP(cut)
	tv, err := NewTimeVarying(Phase{0, pre}, Phase{5e6, post})
	if err != nil {
		t.Fatal(err)
	}
	if tv.SchemeAt(0) != Scheme(pre) || tv.SchemeAt(4_999_999) != Scheme(pre) {
		t.Fatal("pre-failure phase not served before the boundary")
	}
	if tv.SchemeAt(5e6) != Scheme(post) || tv.SchemeAt(1e9) != Scheme(post) {
		t.Fatal("repaired phase not served at/after the boundary")
	}
	bs := tv.Boundaries()
	if len(bs) != 1 || bs[0] != 5e6 {
		t.Fatalf("boundaries = %v", bs)
	}
	// Time-unaware callers see the stale (initial) path set: 0→2 direct.
	p := tv.Path(0, 2, 1)
	if len(p) != 2 {
		t.Fatalf("initial-phase path = %v, want the direct link", p)
	}
	// The repaired phase detours.
	p = tv.SchemeAt(5e6).Path(0, 2, 1)
	if len(p) != 3 {
		t.Fatalf("repaired path = %v, want the 0-1-2 detour", p)
	}
	if tv.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestTimeVaryingValidation(t *testing.T) {
	g, _ := tvTestGraphs(t)
	e := NewECMP(g)
	if _, err := NewTimeVarying(); err == nil {
		t.Fatal("empty phase list accepted")
	}
	if _, err := NewTimeVarying(Phase{5, e}); err == nil {
		t.Fatal("first phase not at 0 accepted")
	}
	if _, err := NewTimeVarying(Phase{0, e}, Phase{0, e}); err == nil {
		t.Fatal("non-increasing starts accepted")
	}
	if _, err := NewTimeVarying(Phase{0, nil}); err == nil {
		t.Fatal("nil scheme accepted")
	}
}
