package routing

// GreedyDisjoint returns a maximal (greedy) subset of the given paths that
// are pairwise link-disjoint, preferring shorter paths. The result size is a
// lower bound on the number of link-disjoint admissible paths; §4 claims
// Shortest-Union(2) provides at least n+1 disjoint paths between any two
// DRing racks (n = ToRs per supernode), which tests verify with this.
func GreedyDisjoint(paths [][]int) [][]int {
	// Stable selection: shorter paths first, then input order.
	idx := make([]int, len(paths))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && len(paths[idx[j]]) < len(paths[idx[j-1]]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	used := make(map[[2]int]bool)
	var out [][]int
	for _, i := range idx {
		p := paths[i]
		ok := true
		for h := 0; h+1 < len(p); h++ {
			if used[edgeKey(p[h], p[h+1])] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for h := 0; h+1 < len(p); h++ {
			used[edgeKey(p[h], p[h+1])] = true
		}
		out = append(out, p)
	}
	return out
}
