package routing

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"spineless/internal/topology"
)

// TestFibParallelBuildEqualsSerial pins the determinism-under-parallelism
// contract for FIB construction: the Shortest-Union state assembled with one
// worker must be bit-identical to the state assembled with all CPUs.
func TestFibParallelBuildEqualsSerial(t *testing.T) {
	g, err := topology.DRing(topology.Uniform(6, 2, 20))
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(1)
	serial, err := NewShortestUnion(g, 2)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewShortestUnion(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatal("parallel FIB construction differs from serial")
	}
	eSerial := func() *Fib {
		prev := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(prev)
		return NewECMP(g)
	}()
	if !reflect.DeepEqual(eSerial, NewECMP(g)) {
		t.Fatal("parallel ECMP construction differs from serial")
	}
}

// TestKSPConcurrentReaders hammers a shared KSP scheme from many goroutines
// (run under -race in make check) and cross-checks every answer against a
// private serially-filled instance.
func TestKSPConcurrentReaders(t *testing.T) {
	g, err := topology.DRing(topology.Uniform(5, 2, 16))
	if err != nil {
		t.Fatal(err)
	}
	shared, err := NewKSP(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewKSP(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	var wg sync.WaitGroup
	errc := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				src, dst := rng.Intn(n), rng.Intn(n)
				if p := shared.Path(src, dst, uint64(i)); p != nil {
					if p[0] != src || p[len(p)-1] != dst {
						errc <- "malformed path under concurrency"
						return
					}
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			for _, id := range []uint64{1, 7, 42} {
				if got, want := shared.Path(src, dst, id), ref.Path(src, dst, id); !reflect.DeepEqual(got, want) {
					t.Fatalf("Path(%d,%d,%d): concurrent-filled cache %v != serial %v", src, dst, id, got, want)
				}
			}
		}
	}
}

// TestKSPPrewarmInvisible verifies prewarming changes no routing output.
func TestKSPPrewarmInvisible(t *testing.T) {
	g, err := topology.DRing(topology.Uniform(5, 2, 16))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewKSP(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	warm.Prewarm()
	cold, err := NewKSP(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	var _ Prewarmer = warm
	for src := 0; src < g.N(); src++ {
		for dst := 0; dst < g.N(); dst++ {
			if !reflect.DeepEqual(warm.Path(src, dst, 9), cold.Path(src, dst, 9)) {
				t.Fatalf("prewarm changed Path(%d,%d)", src, dst)
			}
			if !reflect.DeepEqual(warm.PathSet(src, dst, 0), cold.PathSet(src, dst, 0)) {
				t.Fatalf("prewarm changed PathSet(%d,%d)", src, dst)
			}
		}
	}
}
