package routing

import (
	"spineless/internal/topology"
)

// VLB is Valiant load balancing: each flow is bounced through a hashed
// intermediate switch using shortest paths on both legs. The paper's §2
// discusses the ECMP/VLB hybrid of Kassing et al. [15]; pure VLB is the
// oblivious extreme and serves as an ablation baseline here.
type VLB struct {
	g    *topology.Graph
	ecmp *Fib
}

// NewVLB builds a VLB scheme over g, reusing ECMP forwarding per leg.
func NewVLB(g *topology.Graph) *VLB {
	return &VLB{g: g, ecmp: NewECMP(g)}
}

// Name implements Scheme.
func (s *VLB) Name() string { return "vlb" }

// Path implements Scheme. The intermediate switch is chosen by flow hash
// (excluding src and dst); the two shortest-path legs are then ECMP-hashed.
// Any switch-level loop created by the concatenation is spliced out, which
// is what a real FIB would do (the packet would simply be forwarded on).
func (s *VLB) Path(src, dst int, flowID uint64) []int {
	if src == dst {
		return []int{src}
	}
	mid := s.intermediate(src, dst, flowID)
	if mid < 0 {
		return s.ecmp.Path(src, dst, flowID)
	}
	a := s.ecmp.Path(src, mid, flowID)
	b := s.ecmp.Path(mid, dst, splitmix64(flowID))
	if a == nil || b == nil {
		return nil
	}
	return SpliceLoops(append(a, b[1:]...))
}

// PathSet implements Scheme. VLB admits, for every intermediate m, the
// concatenation of shortest paths src→m→dst; enumerating all is exponential,
// so PathSet samples one spliced path per intermediate.
func (s *VLB) PathSet(src, dst, maxPaths int) [][]int {
	if src == dst {
		return [][]int{{src}}
	}
	var out [][]int
	for m := 0; m < s.g.N(); m++ {
		if m == src || m == dst {
			continue
		}
		a := s.ecmp.Path(src, m, uint64(m))
		b := s.ecmp.Path(m, dst, uint64(m)+1)
		if a == nil || b == nil {
			continue
		}
		out = append(out, SpliceLoops(append(a, b[1:]...)))
		if maxPaths > 0 && len(out) >= maxPaths {
			break
		}
	}
	return out
}

func (s *VLB) intermediate(src, dst int, flowID uint64) int {
	n := s.g.N()
	if n <= 2 {
		return -1
	}
	m := hashChoice(splitmix64(flowID^0x1b0), 0, src, n)
	for m == src || m == dst {
		m = (m + 1) % n
	}
	return m
}

// SpliceLoops removes switch-level loops from a walk by keeping only the
// last occurrence of each repeated switch, yielding a simple path with the
// same endpoints.
func SpliceLoops(walk []int) []int {
	last := make(map[int]int, len(walk))
	for i, v := range walk {
		last[v] = i
	}
	out := make([]int, 0, len(walk))
	for i := 0; i < len(walk); i++ {
		v := walk[i]
		out = append(out, v)
		if j := last[v]; j > i {
			i = j // skip the loop; v already emitted once
		}
	}
	return out
}

var _ Scheme = (*VLB)(nil)
