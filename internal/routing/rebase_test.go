package routing

import (
	"math/rand"
	"reflect"
	"testing"

	"spineless/internal/topology"
)

// rebaseEqual asserts the delta-built FIB matches a from-scratch build on
// the new fabric, column by column — the Rebase bit-identity contract.
func rebaseEqual(t *testing.T, name string, got, want *Fib) {
	t.Helper()
	if !reflect.DeepEqual(got.ctg, want.ctg) {
		t.Fatalf("%s: Rebase ctg differs from fresh build", name)
	}
	if !reflect.DeepEqual(got.next, want.next) {
		t.Fatalf("%s: Rebase next-hop sets differ from fresh build", name)
	}
	if !reflect.DeepEqual(got.npaths, want.npaths) {
		t.Fatalf("%s: Rebase path counts differ from fresh build", name)
	}
}

// TestRebaseMatchesFreshBuild cuts single links, double links, and one
// parallel-trunk copy across DRing and RRG fabrics, for ECMP and
// Shortest-Union, and requires the rebased FIB to be bit-identical to a
// fresh build — while actually sharing the unaffected columns.
func TestRebaseMatchesFreshBuild(t *testing.T) {
	fabrics := map[string]*topology.Graph{}
	dring, err := topology.DRing(topology.Uniform(6, 3, 20))
	if err != nil {
		t.Fatal(err)
	}
	fabrics["dring"] = dring
	rrg, err := topology.RegularRRG("rrg", 16, 4, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	fabrics["rrg"] = rrg

	build := func(g *topology.Graph, k int) *Fib {
		if k == 0 {
			return NewECMP(g)
		}
		f, err := NewShortestUnion(g, k)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	for name, g := range fabrics {
		for _, k := range []int{0, 2, 3} {
			base := build(g, k)
			for _, cuts := range [][]int{{0}, {0, 5}} {
				failed := g.Clone()
				for _, u := range cuts {
					if !failed.RemoveLink(u, g.Neighbors(u)[0]) {
						t.Fatalf("link at %d not present", u)
					}
				}
				got, err := base.Rebase(failed)
				if err != nil {
					t.Fatal(err)
				}
				rebaseEqual(t, name, got, build(failed, k))
				shared := 0
				for d := 0; d < g.N(); d++ {
					if &got.ctg[d][0] == &base.ctg[d][0] {
						shared++
					}
				}
				// K=3 on a 16-switch fabric admits tight arcs almost
				// everywhere, so only the low-K cases guarantee sharing.
				if name == "rrg" && len(cuts) == 1 && k < 3 && shared == 0 {
					t.Fatalf("%s K=%d: single-link Rebase shared no columns — the delta test never passes", name, k)
				}
			}
		}
	}
}

// TestRebaseParallelTrunk pins the multiset diff: dropping one copy of a
// parallel trunk keeps the adjacency but changes next-hop multiplicity, so
// Rebase must rebuild the destinations the trunk serves.
func TestRebaseParallelTrunk(t *testing.T) {
	g := topology.New("trunked", 4, 8)
	for v := 0; v < 4; v++ {
		g.SetServers(v, 1)
	}
	for _, e := range [][2]int{{0, 1}, {0, 1} /* parallel copy */, {1, 2}, {2, 3}, {3, 0}} {
		if err := g.AddLink(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	base := NewECMP(g)

	thinned := g.Clone()
	if !thinned.RemoveLink(0, 1) {
		t.Fatal("trunk copy not present")
	}
	got, err := base.Rebase(thinned)
	if err != nil {
		t.Fatal(err)
	}
	rebaseEqual(t, "trunk", got, NewECMP(thinned))
	if len(base.next[1][base.vnode(0, 0)]) != 2 || len(got.next[1][got.vnode(0, 0)]) != 1 {
		t.Fatalf("trunk multiplicity not reflected in next-hop sets: %d → %d",
			len(base.next[1][base.vnode(0, 0)]), len(got.next[1][got.vnode(0, 0)]))
	}
}

// TestRebaseRestoresLinks covers the addition direction: rebasing the
// failed FIB back onto the healthy fabric must reproduce the healthy build.
func TestRebaseRestoresLinks(t *testing.T) {
	g, err := topology.DRing(topology.Uniform(5, 2, 16))
	if err != nil {
		t.Fatal(err)
	}
	failed := g.Clone()
	if !failed.RemoveLink(0, g.Neighbors(0)[0]) {
		t.Fatal("link not present")
	}
	fsu, err := NewShortestUnion(failed, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fsu.Rebase(g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewShortestUnion(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	rebaseEqual(t, "restore", got, want)
}

// TestRebaseRejectsDifferentSwitchSet pins the guard rail.
func TestRebaseRejectsDifferentSwitchSet(t *testing.T) {
	g, err := topology.DRing(topology.Uniform(5, 2, 16))
	if err != nil {
		t.Fatal(err)
	}
	other, err := topology.DRing(topology.Uniform(6, 2, 16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewECMP(g).Rebase(other); err == nil {
		t.Fatal("switch-count mismatch accepted")
	}
}
