package routing

import (
	"testing"

	"spineless/internal/topology"
)

// TestECMPDistanceEqualsPhysical pins Fib.Distance semantics for ECMP.
func TestECMPDistanceEqualsPhysical(t *testing.T) {
	g, _ := smallDRing(t)
	f := NewECMP(g)
	dist := topology.AllPairsDistances(g)
	for a := 0; a < g.N(); a++ {
		for b := 0; b < g.N(); b++ {
			if f.Distance(a, b) != dist[a][b] {
				t.Fatalf("Distance(%d,%d) = %d, want %d", a, b, f.Distance(a, b), dist[a][b])
			}
		}
	}
}

// TestHashSpreadsFlows checks per-hop hashing spreads flows across the
// equal-cost set rather than collapsing onto one path.
func TestHashSpreadsFlows(t *testing.T) {
	g, err := topology.LeafSpine(topology.LeafSpineSpec{X: 4, Y: 8})
	if err != nil {
		t.Fatal(err)
	}
	f := NewECMP(g)
	counts := map[int]int{}
	const flows = 4000
	for id := uint64(0); id < flows; id++ {
		p := f.Path(0, 1, id)
		counts[p[1]]++ // the spine chosen
	}
	if len(counts) != 8 {
		t.Fatalf("flows used %d of 8 spines", len(counts))
	}
	for spine, c := range counts {
		frac := float64(c) / flows
		if frac < 0.125/2 || frac > 0.125*2 {
			t.Fatalf("spine %d got %.3f of flows, want ≈0.125", spine, frac)
		}
	}
}

// TestSU2EqualsECMPForDistantPairs: Shortest-Union(2) and ECMP admit the
// same path sets whenever the racks are ≥ 3 apart (no ≤2-hop paths exist
// beyond the shortest ones... and shortest > 2 means the union adds
// nothing).
func TestSU2EqualsECMPForDistantPairs(t *testing.T) {
	// A long thin DRing has pairs at distance ≥ 3.
	g, err := topology.DRing(topology.Uniform(14, 1, 10))
	if err != nil {
		t.Fatal(err)
	}
	ecmp := NewECMP(g)
	su2, err := NewShortestUnion(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	dist := topology.AllPairsDistances(g)
	checked := 0
	for a := 0; a < g.N(); a++ {
		for b := 0; b < g.N(); b++ {
			if dist[a][b] < 3 {
				continue
			}
			pe := ecmp.PathSet(a, b, 0)
			ps := su2.PathSet(a, b, 0)
			if len(pe) != len(ps) {
				t.Fatalf("pair (%d,%d) at distance %d: ecmp %d paths, su2 %d",
					a, b, dist[a][b], len(pe), len(ps))
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no distant pairs in the test fabric")
	}
}

// TestKSPContainsAllShortest: the k-shortest set must start with every
// shortest path when k is large enough.
func TestKSPContainsAllShortest(t *testing.T) {
	g, _ := smallDRing(t)
	ecmp := NewECMP(g)
	for _, pair := range [][2]int{{0, 7}, {2, 11}, {5, 16}} {
		shortest := ecmp.PathSet(pair[0], pair[1], 0)
		k := len(shortest) + 4
		ksp := YenKSP(g, pair[0], pair[1], k)
		if len(ksp) < len(shortest) {
			t.Fatalf("pair %v: ksp found %d < %d shortest", pair, len(ksp), len(shortest))
		}
		for i := 0; i < len(shortest); i++ {
			if PathLen(ksp[i]) != PathLen(shortest[0]) {
				t.Fatalf("pair %v: ksp[%d] has length %d, want shortest %d",
					pair, i, PathLen(ksp[i]), PathLen(shortest[0]))
			}
		}
	}
}

// TestFibOnFatTree: the generic machinery handles 3-tier trees: leaf pairs
// in different pods have (k/2)² shortest paths.
func TestFibOnFatTree(t *testing.T) {
	g, err := topology.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	f := NewECMP(g)
	// Edge 0 (pod 0) to edge 2 (pod 1): 4 core paths.
	paths := f.PathSet(0, 2, 0)
	if len(paths) != 4 {
		t.Fatalf("cross-pod paths = %d, want 4", len(paths))
	}
	for _, p := range paths {
		if PathLen(p) != 4 {
			t.Fatalf("cross-pod path %v not 4 hops", p)
		}
	}
	// Same pod: 2 aggregation paths of 2 hops.
	paths = f.PathSet(0, 1, 0)
	if len(paths) != 2 || PathLen(paths[0]) != 2 {
		t.Fatalf("intra-pod paths = %v", paths)
	}
}
