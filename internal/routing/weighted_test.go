package routing

import (
	"testing"

	"spineless/internal/topology"
)

func TestWeightedPathValid(t *testing.T) {
	g, _ := smallDRing(t)
	fib, err := NewShortestUnion(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWeighted(fib)
	if w.Name() != "wcmp(shortest-union(2))" {
		t.Fatalf("name = %q", w.Name())
	}
	for flow := uint64(0); flow < 300; flow++ {
		src, dst := int(flow)%g.N(), int(flow*5+2)%g.N()
		if src == dst {
			if p := w.Path(src, dst, flow); len(p) != 1 {
				t.Fatal("self path broken")
			}
			continue
		}
		p := w.Path(src, dst, flow)
		if err := CheckPath(p, src, dst); err != nil {
			t.Fatalf("flow %d: %v", flow, err)
		}
		if PathLen(p) > fib.Distance(src, dst) {
			t.Fatalf("flow %d: weighted path %v exceeds max(L,K)", flow, p)
		}
	}
}

// TestWeightedBalancesUnevenPaths: on a fabric where one next hop leads to
// many more admissible paths than another, weighting shifts flows toward
// it in proportion.
func TestWeightedBalancesUnevenPaths(t *testing.T) {
	// src 0 connects to hub 1 (which fans out to 4 middle nodes reaching
	// dst) and to lone 6 (single path to dst). Uniform ECMP sends half the
	// flows via 6; weighted sends ~4/5 via the hub.
	g := topology.New("uneven", 8, 10)
	mustLink(t, g, 0, 1) // hub
	mustLink(t, g, 0, 6) // lone
	for m := 2; m <= 5; m++ {
		mustLink(t, g, 1, m)
		mustLink(t, g, m, 7)
	}
	mustLink(t, g, 6, 7)
	// dst = 7: paths 0-1-m-7 (4 of them, length 3) and 0-6-7 (length 2).
	// Shortest is length 2 via 6; use SU(3) so all five are admissible.
	fib, err := NewShortestUnion(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	uni := 0
	wgt := 0
	w := NewWeighted(fib)
	const flows = 4000
	for id := uint64(0); id < flows; id++ {
		if fib.Path(0, 7, id)[1] == 1 {
			uni++
		}
		if w.Path(0, 7, id)[1] == 1 {
			wgt++
		}
	}
	uniFrac := float64(uni) / flows
	wgtFrac := float64(wgt) / flows
	if uniFrac < 0.4 || uniFrac > 0.6 {
		t.Fatalf("uniform hub fraction = %v, want ≈0.5", uniFrac)
	}
	if wgtFrac < 0.7 || wgtFrac > 0.9 {
		t.Fatalf("weighted hub fraction = %v, want ≈0.8", wgtFrac)
	}
}

func mustLink(t *testing.T, g *topology.Graph, a, b int) {
	t.Helper()
	if err := g.AddLink(a, b); err != nil {
		t.Fatal(err)
	}
}
