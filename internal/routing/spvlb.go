package routing

import (
	"spineless/internal/topology"
)

// NewSPVLB builds the RNG fabric's native scheme (arXiv:2604.15261):
// shortest-path ECMP with a Valiant fallback for diversity-starved pairs.
// Random-neighbor graphs have excellent average path diversity but no
// structural guarantee per pair; the AWS design routes on shortest paths
// where ECMP has real fan-out and bounces through an intermediate where it
// does not, buying worst-case spread for a constant stretch on the few
// poor pairs.
//
// The diversity predicate — "does ECMP offer at least two first-hop
// choices?" — is evaluated per rack pair at construction time and frozen
// into a bitmap, so the result is an immutable Adaptive composition of two
// immutable schemes and inherits the Scheme concurrency contract for free.
func NewSPVLB(g *topology.Graph) *Adaptive {
	ecmp := NewECMP(g)
	n := g.N()
	starved := make([]bool, n*n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src != dst {
				starved[src*n+dst] = len(ecmp.NextHopRouters(src, dst)) < 2
			}
		}
	}
	return NewAdaptive("spvlb", ecmp, NewVLB(g), func(src, dst int) bool {
		return starved[src*n+dst]
	})
}
