package routing

import "testing"

func TestAdaptiveDelegation(t *testing.T) {
	g, _ := smallDRing(t)
	ecmp := NewECMP(g)
	su2, err := NewShortestUnion(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Route pairs involving rack 0 via SU(2), everything else via ECMP.
	ad := NewAdaptive("adaptive-test", ecmp, su2, func(src, dst int) bool {
		return src == 0 || dst == 0
	})
	if ad.Name() != "adaptive-test" {
		t.Fatalf("name = %q", ad.Name())
	}
	// ToR 0 and 3 are adjacent: SU(2) gives multiple paths, ECMP one.
	if n := len(ad.PathSet(0, 3, 0)); n < 2 {
		t.Fatalf("hot pair paths = %d, want SU(2) diversity", n)
	}
	// 3 and 6 are adjacent but cold: must behave like ECMP (one path).
	if !g.HasLink(3, 6) {
		t.Fatal("expected adjacency 3-6")
	}
	if n := len(ad.PathSet(3, 6, 0)); n != 1 {
		t.Fatalf("cold adjacent pair paths = %d, want 1", n)
	}
	// Path() delegates consistently with PathSet().
	for f := uint64(0); f < 20; f++ {
		if err := CheckPath(ad.Path(0, 3, f), 0, 3); err != nil {
			t.Fatal(err)
		}
		p := ad.Path(3, 6, f)
		if len(p) != 2 {
			t.Fatalf("cold pair took non-direct path %v", p)
		}
	}
}
