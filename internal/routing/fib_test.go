package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spineless/internal/topology"
)

func testRNG() *rand.Rand { return rand.New(rand.NewSource(7)) }

func smallDRing(t *testing.T) (*topology.Graph, topology.DRingSpec) {
	t.Helper()
	spec := topology.Uniform(6, 3, 20)
	g, err := topology.DRing(spec)
	if err != nil {
		t.Fatal(err)
	}
	return g, spec
}

func smallLeafSpine(t *testing.T) *topology.Graph {
	t.Helper()
	g, err := topology.LeafSpine(topology.LeafSpineSpec{X: 6, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestECMPLeafSpinePaths(t *testing.T) {
	g := smallLeafSpine(t)
	f := NewECMP(g)
	// Between two leaves: all paths are leaf→spine→leaf; exactly y=2 paths.
	paths := f.PathSet(0, 1, 0)
	if len(paths) != 2 {
		t.Fatalf("ECMP paths(0,1) = %d, want 2", len(paths))
	}
	for _, p := range paths {
		if err := CheckPath(p, 0, 1); err != nil {
			t.Fatal(err)
		}
		if PathLen(p) != 2 {
			t.Fatalf("path %v has length %d, want 2", p, PathLen(p))
		}
		if p[1] < 8 { // spines are ids 8..9
			t.Fatalf("path %v does not transit a spine", p)
		}
	}
}

func TestECMPPathDeterministic(t *testing.T) {
	g, _ := smallDRing(t)
	f := NewECMP(g)
	for flow := uint64(0); flow < 50; flow++ {
		p1 := f.Path(0, 9, flow)
		p2 := f.Path(0, 9, flow)
		if len(p1) != len(p2) {
			t.Fatalf("nondeterministic path for flow %d", flow)
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("nondeterministic path for flow %d: %v vs %v", flow, p1, p2)
			}
		}
		if err := CheckPath(p1, 0, 9); err != nil {
			t.Fatal(err)
		}
	}
}

func TestECMPPathIsShortest(t *testing.T) {
	g, _ := smallDRing(t)
	f := NewECMP(g)
	dist := topology.AllPairsDistances(g)
	for src := 0; src < g.N(); src++ {
		for dst := 0; dst < g.N(); dst++ {
			p := f.Path(src, dst, 12345)
			if PathLen(p) != dist[src][dst] {
				t.Fatalf("ECMP path %d→%d has %d hops, shortest is %d",
					src, dst, PathLen(p), dist[src][dst])
			}
		}
	}
}

func TestECMPSelfPath(t *testing.T) {
	g, _ := smallDRing(t)
	f := NewECMP(g)
	p := f.Path(3, 3, 9)
	if len(p) != 1 || p[0] != 3 {
		t.Fatalf("self path = %v", p)
	}
	ps := f.PathSet(3, 3, 0)
	if len(ps) != 1 || len(ps[0]) != 1 {
		t.Fatalf("self path set = %v", ps)
	}
}

func TestShortestUnionRejectsBadK(t *testing.T) {
	g, _ := smallDRing(t)
	if _, err := NewShortestUnion(g, 1); err == nil {
		t.Fatal("K=1 accepted")
	}
	if _, err := NewShortestUnion(g, 1000); err == nil {
		t.Fatal("absurd K accepted")
	}
}

// TestTheorem1 pins §4 Theorem 1: the VRF-graph distance between delivery
// nodes equals max(L, K) for every router pair and K ∈ {2, 3, 4}.
func TestTheorem1(t *testing.T) {
	topos := map[string]*topology.Graph{}
	g, _ := smallDRing(t)
	topos["dring"] = g
	topos["leafspine"] = smallLeafSpine(t)
	rrg, err := topology.RegularRRG("rrg", 16, 4, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	topos["rrg"] = rrg

	for name, g := range topos {
		dist := topology.AllPairsDistances(g)
		for _, K := range []int{2, 3, 4} {
			f, err := NewShortestUnion(g, K)
			if err != nil {
				t.Fatal(err)
			}
			for src := 0; src < g.N(); src++ {
				for dst := 0; dst < g.N(); dst++ {
					if src == dst {
						continue
					}
					want := max(dist[src][dst], K)
					if got := f.Distance(src, dst); got != want {
						t.Fatalf("%s K=%d: VRF distance %d→%d = %d, want max(%d,%d)=%d",
							name, K, src, dst, got, dist[src][dst], K, want)
					}
				}
			}
		}
	}
}

// TestShortestUnionPathSet pins the path-set semantics: all simple paths of
// length ≤ K plus all shortest paths, and nothing else.
func TestShortestUnionPathSet(t *testing.T) {
	g, _ := smallDRing(t)
	K := 2
	f, err := NewShortestUnion(g, K)
	if err != nil {
		t.Fatal(err)
	}
	dist := topology.AllPairsDistances(g)
	for src := 0; src < g.N(); src++ {
		for dst := 0; dst < g.N(); dst++ {
			if src == dst {
				continue
			}
			got := f.PathSet(src, dst, 0)
			want := enumerateSU(g, src, dst, K, dist[src][dst])
			if len(got) != len(want) {
				t.Fatalf("SU(2) path count %d→%d = %d, want %d", src, dst, len(got), len(want))
			}
			wantSet := map[string]bool{}
			for _, p := range want {
				wantSet[pathKey(p)] = true
			}
			for _, p := range got {
				if err := CheckPath(p, src, dst); err != nil {
					t.Fatal(err)
				}
				if !wantSet[pathKey(p)] {
					t.Fatalf("SU(2) admitted unexpected path %v for %d→%d", p, src, dst)
				}
			}
		}
	}
}

// enumerateSU brute-forces the Shortest-Union(K) path set: every simple
// path with length ≤ K or length == shortest distance.
func enumerateSU(g *topology.Graph, src, dst, K, shortest int) [][]int {
	limit := max(K, shortest)
	var out [][]int
	onPath := map[int]bool{src: true}
	cur := []int{src}
	var dfs func(v int)
	dfs = func(v int) {
		if len(cur)-1 > limit {
			return
		}
		if v == dst {
			l := len(cur) - 1
			if l <= K || l == shortest {
				out = append(out, append([]int(nil), cur...))
			}
			return
		}
		seen := map[int]bool{}
		for _, w := range g.Neighbors(v) {
			if onPath[w] || seen[w] {
				continue
			}
			seen[w] = true
			onPath[w] = true
			cur = append(cur, w)
			dfs(w)
			cur = cur[:len(cur)-1]
			delete(onPath, w)
		}
	}
	dfs(src)
	return out
}

func pathKey(p []int) string {
	b := make([]byte, 0, len(p)*3)
	for _, v := range p {
		b = append(b, byte(v), byte(v>>8), ',')
	}
	return string(b)
}

// TestAdjacentRacksGainPaths pins the §4 motivation: directly-connected
// racks have exactly one shortest path, and SU(2) opens up length-2 paths.
func TestAdjacentRacksGainPaths(t *testing.T) {
	g, spec := smallDRing(t)
	ecmp := NewECMP(g)
	su2, err := NewShortestUnion(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// ToR 0 (supernode 0) and ToR 3 (supernode 1) are adjacent.
	if !g.HasLink(0, 3) {
		t.Fatal("expected direct link 0-3")
	}
	if n := len(ecmp.PathSet(0, 3, 0)); n != 1 {
		t.Fatalf("ECMP paths between adjacent racks = %d, want 1", n)
	}
	su := su2.PathSet(0, 3, 0)
	if len(su) <= 1 {
		t.Fatalf("SU(2) paths between adjacent racks = %d, want > 1", len(su))
	}
	// §4: SU(2) provides at least n+1 link-disjoint paths (n = supernode
	// width) between any two racks.
	n := spec.Sizes[0]
	for src := 0; src < g.N(); src++ {
		for dst := 0; dst < g.N(); dst++ {
			if src == dst {
				continue
			}
			dis := GreedyDisjoint(su2.PathSet(src, dst, 0))
			if len(dis) < n+1 {
				t.Fatalf("SU(2) disjoint paths %d→%d = %d, want >= %d", src, dst, len(dis), n+1)
			}
		}
	}
}

func TestShortestUnionPathValid(t *testing.T) {
	g, _ := smallDRing(t)
	f, err := NewShortestUnion(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	for flow := uint64(0); flow < 200; flow++ {
		src, dst := int(flow)%g.N(), int(flow*7+3)%g.N()
		if src == dst {
			continue
		}
		p := f.Path(src, dst, flow)
		if err := CheckPath(p, src, dst); err != nil {
			t.Fatalf("flow %d: %v", flow, err)
		}
		if PathLen(p) > 2 && PathLen(p) > f.Distance(src, dst) {
			t.Fatalf("flow %d path %v longer than max(L,K)", flow, p)
		}
	}
}

func TestShortestUnionQuickTheorem1(t *testing.T) {
	// Property over random regular graphs: VRF distance == max(L, K).
	f := func(seed int64, kRaw uint8) bool {
		K := 2 + int(kRaw%3)
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.RegularRRG("q", 12, 3, rng)
		if err != nil || !g.Connected() {
			return true // skip rare disconnected instances
		}
		fib, err := NewShortestUnion(g, K)
		if err != nil {
			return false
		}
		dist := topology.AllPairsDistances(g)
		for s := 0; s < g.N(); s++ {
			for d := 0; d < g.N(); d++ {
				if s == d {
					continue
				}
				if fib.Distance(s, d) != max(dist[s][d], K) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNextHopRouters(t *testing.T) {
	g := smallLeafSpine(t)
	f := NewECMP(g)
	nh := f.NextHopRouters(0, 1)
	if len(nh) != 2 {
		t.Fatalf("next hops = %v, want both spines", nh)
	}
	for _, r := range nh {
		if r < 8 {
			t.Fatalf("next hop %d is not a spine", r)
		}
	}
	if f.NextHopRouters(0, 0) != nil {
		t.Fatal("self next hops should be nil")
	}
}

func TestPathSetCap(t *testing.T) {
	g, _ := smallDRing(t)
	f, err := NewShortestUnion(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	capped := f.PathSet(0, 9, 2)
	if len(capped) != 2 {
		t.Fatalf("capped path set size = %d, want 2", len(capped))
	}
}
