// Package routing implements the data-plane routing schemes evaluated in
// "Spineless Data Centers": standard shortest-path ECMP and the paper's
// Shortest-Union(K) scheme (§4), realized exactly as the paper's VRF/BGP
// design — a K-layer virtual graph whose equal-cost shortest paths are the
// union of all shortest physical paths and all physical paths of length ≤ K.
// K-shortest-path routing (the Jellyfish baseline) and Valiant load balancing
// are provided as comparison schemes.
//
// All schemes expose oblivious, per-flow forwarding: Path(src, dst, flowID)
// deterministically selects one admissible switch-level path by hashing the
// flow id at every hop, mirroring hop-by-hop ECMP hashing in real switches.
package routing

import "fmt"

// Scheme selects switch-level paths between racks.
//
// Concurrency contract: once constructed, a Scheme must be safe for
// concurrent Path/PathSet calls — the parallel trial engine shares one
// scheme instance across every worker of a fan-out. The implementations in
// this package satisfy it as follows:
//
//   - Fib, Weighted, VLB: immutable after construction; lookups read only
//     precomputed slices.
//   - KSP: the lazily-filled path cache is mutex-guarded, with computation
//     outside the lock; Prewarm turns parallel phases into pure cache hits.
//   - Adaptive: immutable composition — safe iff base, alt and the useAlt
//     predicate are.
//   - DeBruijn: immutable after construction; Path derives the route from
//     node labels alone (no FIB, no cache, flowID unused).
//   - SPVLB (via NewSPVLB): an Adaptive over ECMP and VLB with a frozen
//     per-pair diversity bitmap; immutable composition.
//   - TimeVarying: phase schedule is immutable; SchemeAt is a read.
//
// New implementations must either be immutable after construction or guard
// every mutation; per-call mutable state (e.g. an embedded *rand.Rand) is
// forbidden — it would also break seeded replay (see internal/parallel).
type Scheme interface {
	// Name identifies the scheme (e.g. "ecmp", "shortest-union(2)").
	Name() string

	// Path returns the switch path a flow with the given id takes from the
	// src switch to the dst switch, inclusive of both endpoints. For
	// src == dst it returns [src]. The same (src, dst, flowID) always yields
	// the same path.
	Path(src, dst int, flowID uint64) []int

	// PathSet enumerates the admissible paths from src to dst, up to maxPaths
	// entries (0 means no cap). Paths include both endpoints.
	PathSet(src, dst, maxPaths int) [][]int
}

// Prewarmer is implemented by schemes that can precompute lazily-built
// state (today: KSP's path cache). Fan-out harnesses call it once before
// sharing the scheme across workers so the parallel phase runs lock-free.
// Prewarming must never change routing output.
type Prewarmer interface {
	Prewarm()
}

// splitmix64 is the per-hop hash used for ECMP-style flow placement.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashChoice maps (flowID, hop, node) to an index in [0, n).
func hashChoice(flowID uint64, hop, node, n int) int {
	if n <= 1 {
		return 0
	}
	h := splitmix64(flowID ^ splitmix64(uint64(hop)<<32|uint64(uint32(node))))
	return int(h % uint64(n))
}

// PathLen returns the hop count of a switch path (#switches - 1).
func PathLen(p []int) int { return len(p) - 1 }

// CheckPath validates that a path is simple at the switch level and starts
// and ends at the given endpoints.
func CheckPath(p []int, src, dst int) error {
	if len(p) == 0 {
		return fmt.Errorf("routing: empty path")
	}
	if p[0] != src || p[len(p)-1] != dst {
		return fmt.Errorf("routing: path %v does not connect %d to %d", p, src, dst)
	}
	seen := make(map[int]bool, len(p))
	for _, v := range p {
		if seen[v] {
			return fmt.Errorf("routing: path %v revisits switch %d", p, v)
		}
		seen[v] = true
	}
	return nil
}
