package routing

import (
	"math/rand"
	"testing"

	"spineless/internal/topology"
)

func buildDeBruijn(t testing.TB, spec topology.DeBruijnSpec) (*topology.Graph, *DeBruijn) {
	t.Helper()
	g, err := topology.DeBruijn(spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewDeBruijn(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, s
}

// directedShiftBFS computes single-source distances over the *directed*
// De Bruijn shift edges v → (v·k + y) mod N, independently of the scheme
// under test.
func directedShiftBFS(n, k, src int) []int {
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for y := 0; y < k; y++ {
			if w := (v*k + y) % n; dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// TestDeBruijnStepsMatchBFS is the satellite "self-routing path equals
// Dijkstra length" spot check: the shift-register walk length (before loop
// splicing) must equal the directed De Bruijn distance for every pair, and
// the emitted (spliced, undirected) path must be bracketed by the
// undirected BFS distance below and the walk length above.
func TestDeBruijnStepsMatchBFS(t *testing.T) {
	for _, spec := range []topology.DeBruijnSpec{
		{Symbols: 2, Digits: 4, Ports: 8},
		{Symbols: 3, Digits: 3, Ports: 10},
		{Symbols: 4, Digits: 2, Ports: 12},
	} {
		g, s := buildDeBruijn(t, spec)
		n := g.N()
		for src := 0; src < n; src++ {
			dist := directedShiftBFS(n, spec.Symbols, src)
			undirected := topology.BFS(g, src)
			for dst := 0; dst < n; dst++ {
				if steps := s.Steps(src, dst); steps != dist[dst] {
					t.Fatalf("%s: Steps(%d,%d) = %d, directed BFS says %d", g.Name, src, dst, steps, dist[dst])
				}
				p := s.Path(src, dst, 0)
				if err := CheckPath(p, src, dst); err != nil {
					t.Fatalf("%s: %v", g.Name, err)
				}
				if l := PathLen(p); l > dist[dst] || l < undirected[dst] {
					t.Fatalf("%s: path %d→%d has %d hops, want within [%d, %d]", g.Name, src, dst, l, undirected[dst], dist[dst])
				}
			}
		}
	}
}

// TestDeBruijnPathsUseRealLinks: every hop of every emitted path must be a
// link that exists in the fabric — self-routing never consults the graph,
// so this pins that the label arithmetic and the builder agree. Also pins
// flowID independence (self-routing is single-path) and PathSet validity.
func TestDeBruijnPathsUseRealLinks(t *testing.T) {
	g, s := buildDeBruijn(t, topology.DeBruijnSpec{Symbols: 3, Digits: 3, Ports: 10})
	n := g.N()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			p := s.Path(src, dst, 1)
			for i := 1; i < len(p); i++ {
				if !g.HasLink(p[i-1], p[i]) {
					t.Fatalf("path %d→%d uses nonexistent link %d-%d", src, dst, p[i-1], p[i])
				}
			}
			if q := s.Path(src, dst, 0xdeadbeef); len(q) != len(p) {
				t.Fatalf("path %d→%d depends on flowID", src, dst)
			}
			for _, q := range s.PathSet(src, dst, 4) {
				if err := CheckPath(q, src, dst); err != nil {
					t.Fatal(err)
				}
				for i := 1; i < len(q); i++ {
					if !g.HasLink(q[i-1], q[i]) {
						t.Fatalf("PathSet %d→%d uses nonexistent link %d-%d", src, dst, q[i-1], q[i])
					}
				}
			}
		}
	}
}

// TestNewDeBruijnRejectsOtherFabrics: constructing the self-routing scheme
// on a fabric without shift structure must fail loudly, not route garbage.
func TestNewDeBruijnRejectsOtherFabrics(t *testing.T) {
	g, err := topology.DRing(topology.Uniform(8, 2, 24))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDeBruijn(g); err == nil {
		t.Fatal("NewDeBruijn(dring) succeeded, want error")
	}
}

// TestDeBruijnAppendPathAllocs is the AllocsPerRun pin tied to the
// //lint:hotpath annotation on AppendPath: with a caller-provided buffer it
// must not allocate at all.
func TestDeBruijnAppendPathAllocs(t *testing.T) {
	_, s := buildDeBruijn(t, topology.DeBruijnSpec{Symbols: 4, Digits: 3, Ports: 12})
	buf := make([]int, 0, 8)
	src, dst := 5, 62
	if allocs := testing.AllocsPerRun(200, func() {
		buf = s.AppendPath(buf[:0], src, dst)
		src, dst = dst, src
	}); allocs != 0 {
		t.Fatalf("AppendPath allocates %.1f objects per run, want 0", allocs)
	}
}

// TestSPVLBContract pins the RNG fabric's native scheme: valid simple paths
// over real links for every pair, deterministic per (src, dst, flowID).
func TestSPVLBContract(t *testing.T) {
	g, err := topology.RNG(topology.RNGSpec{Switches: 20, Degree: 4, Ports: 10}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSPVLB(g)
	if s.Name() != "spvlb" {
		t.Fatalf("Name = %q", s.Name())
	}
	for src := 0; src < g.N(); src++ {
		for dst := 0; dst < g.N(); dst++ {
			for _, flow := range []uint64{1, 99} {
				p := s.Path(src, dst, flow)
				if err := CheckPath(p, src, dst); err != nil {
					t.Fatal(err)
				}
				for i := 1; i < len(p); i++ {
					if !g.HasLink(p[i-1], p[i]) {
						t.Fatalf("spvlb path %d→%d uses nonexistent link %d-%d", src, dst, p[i-1], p[i])
					}
				}
				q := s.Path(src, dst, flow)
				if len(q) != len(p) {
					t.Fatalf("spvlb path %d→%d nondeterministic", src, dst)
				}
				for i := range p {
					if p[i] != q[i] {
						t.Fatalf("spvlb path %d→%d nondeterministic", src, dst)
					}
				}
			}
		}
	}
}
