package routing

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"spineless/internal/parallel"
	"spineless/internal/topology"
)

// Fib is forwarding state for ECMP or Shortest-Union(K) over a fabric.
//
// It materializes the paper's §4 VRF construction as a K-layer virtual
// graph. Virtual node (layer l, router r) models VRF l+1 on router r; hosts
// sit in VRF K. For every directed physical link u→v the virtual links are
//
//	(VRF K, u) → (VRF i, v)  cost i,  i = 1..K   (path admission)
//	(VRF i, u) → (VRF i+1, v) cost 1,  i < K      (ascent toward delivery)
//	(VRF 1, u) → (VRF 1, v)  cost 1              (transit floor)
//
// with delivery at (VRF K, dst). Equal-cost shortest paths in this graph are
// exactly the Shortest-Union(K) path set: every physical path of length ≤ K
// plus every shortest physical path (Theorem 1: the (VRF K,src)→(VRF K,dst)
// distance is max(L, K) where L is the physical distance). ECMP is the
// degenerate single-layer, unit-cost instance.
type Fib struct {
	g      *topology.Graph
	name   string
	K      int // 0 for plain ECMP
	layers int
	n      int

	// Reversed virtual adjacency: for Dijkstra from the delivery node.
	rev [][]varc
	// Forward virtual adjacency: for next-hop extraction.
	fwd [][]varc

	// Per destination switch: cost-to-go and equal-cost next hops.
	ctg  [][]int32
	next [][][]int32
	// npaths[dst][vnode] counts min-cost virtual paths from vnode to the
	// delivery node (saturating), for weighted next-hop selection.
	npaths [][]int64
}

type varc struct {
	to   int32
	cost int8
}

// NewECMP builds standard shortest-path ECMP forwarding state for g.
func NewECMP(g *topology.Graph) *Fib {
	f := &Fib{g: g, name: "ecmp", K: 0, layers: 1, n: g.N()}
	f.buildEdges()
	f.buildAll()
	return f
}

// NewShortestUnion builds Shortest-Union(K) forwarding state for g. K must
// be at least 2 (K=1 is plain ECMP; use NewECMP).
func NewShortestUnion(g *topology.Graph, k int) (*Fib, error) {
	if k < 2 {
		return nil, fmt.Errorf("routing: shortest-union requires K >= 2, got %d", k)
	}
	if k > 120 {
		return nil, fmt.Errorf("routing: K = %d too large", k)
	}
	f := &Fib{g: g, name: fmt.Sprintf("shortest-union(%d)", k), K: k, layers: k, n: g.N()}
	f.buildEdges()
	f.buildAll()
	return f, nil
}

// Name implements Scheme.
func (f *Fib) Name() string { return f.name }

// Graph returns the fabric this FIB routes.
func (f *Fib) Graph() *topology.Graph { return f.g }

func (f *Fib) vnode(layer, router int) int { return layer*f.n + router }
func (f *Fib) router(vn int) int           { return vn % f.n }

// deliveryLayer is the layer hosting servers (VRF K).
func (f *Fib) deliveryLayer() int { return f.layers - 1 }

func (f *Fib) addArc(from, to, cost int) {
	f.fwd[from] = append(f.fwd[from], varc{to: int32(to), cost: int8(cost)})
	f.rev[to] = append(f.rev[to], varc{to: int32(from), cost: int8(cost)})
}

// pairArcs emits the virtual arcs one occurrence of the directed physical
// adjacency u→w induces — the single source of truth shared by buildEdges
// and Rebase's arc diff.
func (f *Fib) pairArcs(u, w int, emit func(x, y, cost int)) {
	if f.K == 0 {
		emit(f.vnode(0, u), f.vnode(0, w), 1)
		return
	}
	top := f.deliveryLayer()
	// (VRF K, u) → (VRF i, w) cost i.
	for i := 1; i <= f.K; i++ {
		emit(f.vnode(top, u), f.vnode(i-1, w), i)
	}
	// (VRF i, u) → (VRF i+1, w) cost 1 for i < K.
	for l := 0; l < top; l++ {
		emit(f.vnode(l, u), f.vnode(l+1, w), 1)
	}
	// (VRF 1, u) → (VRF 1, w) cost 1.
	emit(f.vnode(0, u), f.vnode(0, w), 1)
}

func (f *Fib) buildEdges() {
	v := f.layers * f.n
	f.fwd = make([][]varc, v)
	f.rev = make([][]varc, v)
	for u := 0; u < f.n; u++ {
		for _, w := range f.g.Neighbors(u) {
			f.pairArcs(u, w, f.addArc)
		}
	}
}

// buildAll computes per-destination forwarding state. Destinations are
// independent — buildDst(dst) reads only the immutable virtual adjacency and
// writes only slot dst of ctg/next/npaths — so the loop fans out across
// CPUs. Each destination's Dijkstra is internally deterministic, which makes
// the assembled FIB bit-identical at any worker count.
func (f *Fib) buildAll() {
	f.ctg = make([][]int32, f.n)
	f.next = make([][][]int32, f.n)
	f.npaths = make([][]int64, f.n)
	_ = parallel.ForEach(0, f.n, func(dst int) error {
		f.buildDst(dst)
		return nil
	})
}

// buildDst runs Dijkstra over reversed virtual arcs from the delivery node
// of dst, then records every arc on an equal-cost shortest path.
func (f *Fib) buildDst(dst int) {
	v := f.layers * f.n
	const inf = int32(math.MaxInt32 / 2)
	ctg := make([]int32, v)
	for i := range ctg {
		ctg[i] = inf
	}
	target := f.vnode(f.deliveryLayer(), dst)
	ctg[target] = 0
	pq := &vheap{{node: int32(target), dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(vitem)
		if it.dist > ctg[it.node] {
			continue
		}
		for _, a := range f.rev[it.node] {
			nd := it.dist + int32(a.cost)
			if nd < ctg[a.to] {
				ctg[a.to] = nd
				heap.Push(pq, vitem{node: a.to, dist: nd})
			}
		}
	}
	next := make([][]int32, v)
	for u := 0; u < v; u++ {
		if ctg[u] >= inf || u == target {
			continue
		}
		for _, a := range f.fwd[u] {
			if ctg[u] == int32(a.cost)+ctg[a.to] {
				next[u] = append(next[u], a.to)
			}
		}
	}
	f.ctg[dst] = ctg
	f.next[dst] = next

	// Count min-cost paths: cost-to-go strictly decreases along equal-cost
	// arcs, so processing vnodes by increasing ctg is a topological order.
	counts := make([]int64, v)
	counts[target] = 1
	order := make([]int32, 0, v)
	for u := 0; u < v; u++ {
		if ctg[u] < inf {
			order = append(order, int32(u))
		}
	}
	// Equal-cost vnodes are frequent; break ties on vnode id so the
	// processing order (and any float accumulation downstream) is a total
	// order independent of the unstable-sort permutation.
	sort.SliceStable(order, func(a, b int) bool {
		if ctg[order[a]] != ctg[order[b]] {
			return ctg[order[a]] < ctg[order[b]]
		}
		return order[a] < order[b]
	})
	const saturate = int64(1) << 40
	for _, u := range order {
		if u == int32(target) {
			continue
		}
		var c int64
		for _, nh := range next[u] {
			c += counts[nh]
			if c >= saturate {
				c = saturate
				break
			}
		}
		counts[u] = c
	}
	f.npaths[dst] = counts
}

// deltaArc is one virtual arc a link change adds to or removes from the
// virtual graph, with the tightness test Rebase runs per destination.
type deltaArc struct {
	x, y    int32
	cost    int32
	removed bool
}

// Rebase builds forwarding state for g2 — the same fabric with some links
// changed — by reusing every per-destination column of this FIB the changes
// provably cannot affect, and re-running Dijkstra only for the rest. The
// returned Fib is independent of this one for all queries (columns are
// immutable after build; unaffected ones are shared, not copied), and is
// bit-identical to a from-scratch build on g2.
//
// The affectedness test is per destination d, against this FIB's cost-to-go:
// a removed virtual arc x→y matters iff it is tight (ctg[x] == cost+ctg[y] —
// it carries an equal-cost shortest path, so next sets or distances change);
// an added arc matters iff ctg[x] >= cost+ctg[y] (it creates a shorter or
// tying path). If no changed arc passes its test for d, every shortest path
// and tight-arc set for d is untouched and the old column is reused —
// reconvergence work is proportional to the affected region, not the fabric.
//
// The affectedness test has two parts, run against this FIB's cost-to-go.
// First, distance validity: a removed virtual arc x→y matters iff it is
// tight (ctg[x] == cost+ctg[y] — it carried an equal-cost shortest path), an
// added arc iff it strictly improves (ctg[x] > cost+ctg[y]); if neither
// fires, every shortest distance for d is unchanged. Second, order: hashed
// next-hop choice indexes into next[·], whose order follows adjacency order,
// and RemoveLink swap-removes — it reorders the endpoint's whole neighbor
// list. So for every router whose adjacency sequence changed, the tight-arc
// sequences at its vnodes are compared between old and new adjacency; any
// difference (content or order, including parallel-trunk multiplicity)
// forces a rebuild. g2 must have the same switch count as the original.
func (f *Fib) Rebase(g2 *topology.Graph) (*Fib, error) {
	if g2.N() != f.n {
		return nil, fmt.Errorf("routing: Rebase needs an identical switch set (have %d switches, got %d)", f.n, g2.N())
	}
	nf := &Fib{g: g2, name: f.name, K: f.K, layers: f.layers, n: f.n}
	nf.buildEdges()

	var delta []deltaArc
	var seqVnodes []int32
	for u := 0; u < f.n; u++ {
		old, now := f.g.Neighbors(u), g2.Neighbors(u)
		if sameIntSeq(old, now) {
			continue
		}
		for l := 0; l < f.layers; l++ {
			seqVnodes = append(seqVnodes, int32(f.vnode(l, u)))
		}
		for _, w := range diffOccurrences(old, now) {
			f.pairArcs(u, w, func(x, y, cost int) {
				delta = append(delta, deltaArc{x: int32(x), y: int32(y), cost: int32(cost), removed: true})
			})
		}
		for _, w := range diffOccurrences(now, old) {
			f.pairArcs(u, w, func(x, y, cost int) {
				delta = append(delta, deltaArc{x: int32(x), y: int32(y), cost: int32(cost)})
			})
		}
	}

	nf.ctg = make([][]int32, f.n)
	nf.next = make([][][]int32, f.n)
	nf.npaths = make([][]int64, f.n)
	_ = parallel.ForEach(0, f.n, func(dst int) error {
		if f.dstAffected(nf, dst, delta, seqVnodes) {
			nf.buildDst(dst)
		} else {
			nf.ctg[dst] = f.ctg[dst]
			nf.next[dst] = f.next[dst]
			nf.npaths[dst] = f.npaths[dst]
		}
		return nil
	})
	return nf, nil
}

func sameIntSeq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffOccurrences returns the neighbors (one entry per surplus copy) that a
// has more occurrences of than b.
func diffOccurrences(a, b []int) []int {
	counts := map[int]int{}
	for _, w := range a {
		counts[w]++
	}
	for _, w := range b {
		counts[w]--
	}
	var out []int
	for _, w := range a { // iterate a, not the map, for determinism
		if counts[w] > 0 {
			counts[w]--
			out = append(out, w)
		}
	}
	return out
}

// dstAffected reports whether the link changes can alter destination dst's
// forwarding column. The order of checks matters: the sequence comparison
// trusts this FIB's ctg for the new graph, which the distance checks
// establish by returning early when any distance could move.
func (f *Fib) dstAffected(nf *Fib, dst int, delta []deltaArc, seqVnodes []int32) bool {
	ctg := f.ctg[dst]
	for _, a := range delta {
		d := a.cost + ctg[a.y] // ctg is capped at MaxInt32/2, no overflow
		if a.removed {
			if ctg[a.x] == d {
				return true
			}
		} else if ctg[a.x] > d {
			return true
		}
	}
	const inf = int32(math.MaxInt32 / 2)
	target := int32(f.vnode(f.deliveryLayer(), dst))
	for _, x := range seqVnodes {
		if ctg[x] >= inf || x == target {
			continue // buildDst records no next hops here in either build
		}
		oldF, newF := f.fwd[x], nf.fwd[x]
		i := 0
		mismatch := false
		for _, a := range newF {
			if ctg[x] != int32(a.cost)+ctg[a.to] {
				continue
			}
			for i < len(oldF) && ctg[x] != int32(oldF[i].cost)+ctg[oldF[i].to] {
				i++
			}
			if i >= len(oldF) || oldF[i] != a {
				mismatch = true
				break
			}
			i++
		}
		if !mismatch {
			for ; i < len(oldF); i++ {
				if ctg[x] == int32(oldF[i].cost)+ctg[oldF[i].to] {
					mismatch = true
					break
				}
			}
		}
		if mismatch {
			return true
		}
	}
	return false
}

type vitem struct {
	node int32
	dist int32
}

type vheap []vitem

func (h vheap) Len() int            { return len(h) }
func (h vheap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h vheap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *vheap) Push(x interface{}) { *h = append(*h, x.(vitem)) }
func (h *vheap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Distance returns the virtual-graph distance from src's delivery node to
// dst's delivery node: the physical hop distance for ECMP, and max(L, K)
// for Shortest-Union(K) (§4, Theorem 1). It returns -1 if unreachable.
func (f *Fib) Distance(src, dst int) int {
	d := f.ctg[dst][f.vnode(f.deliveryLayer(), src)]
	if d >= math.MaxInt32/2 {
		return -1
	}
	return int(d)
}

// Path implements Scheme: hop-by-hop equal-cost selection hashed on flowID.
func (f *Fib) Path(src, dst int, flowID uint64) []int {
	if src == dst {
		return []int{src}
	}
	target := f.vnode(f.deliveryLayer(), dst)
	state := f.vnode(f.deliveryLayer(), src)
	path := []int{src}
	next := f.next[dst]
	for hop := 0; state != target; hop++ {
		nh := next[state]
		if len(nh) == 0 {
			return nil // unreachable
		}
		state = int(nh[hashChoice(flowID, hop, f.router(state), len(nh))])
		path = append(path, f.router(state))
		if hop > f.layers*f.n {
			panic("routing: forwarding walk did not terminate")
		}
	}
	return path
}

// PathSet implements Scheme: it enumerates the admissible physical paths by
// depth-first search over the equal-cost next-hop DAG, rejecting walks that
// revisit a router (BGP's AS-path loop prevention) and deduplicating
// physical paths (beyond distance K a physical path is realizable through
// more than one VRF layer schedule — e.g. 2→1→2→1→2 and 2→1→1→1→2 both
// cost L — which weights forwarding but must not inflate the enumeration).
// maxPaths caps the result; 0 means unlimited.
func (f *Fib) PathSet(src, dst, maxPaths int) [][]int {
	if src == dst {
		return [][]int{{src}}
	}
	target := f.vnode(f.deliveryLayer(), dst)
	start := f.vnode(f.deliveryLayer(), src)
	next := f.next[dst]

	var out [][]int
	seen := map[string]bool{}
	onPath := map[int]bool{src: true}
	cur := []int{src}
	var dfs func(state int) bool
	dfs = func(state int) bool {
		if state == target {
			k := physPathKey(cur)
			if !seen[k] {
				seen[k] = true
				out = append(out, append([]int(nil), cur...))
			}
			return maxPaths == 0 || len(out) < maxPaths
		}
		for _, nh := range next[state] {
			r := f.router(int(nh))
			if onPath[r] {
				continue
			}
			onPath[r] = true
			cur = append(cur, r)
			ok := dfs(int(nh))
			cur = cur[:len(cur)-1]
			delete(onPath, r)
			if !ok {
				return false
			}
		}
		return true
	}
	dfs(start)
	return out
}

func physPathKey(p []int) string {
	b := make([]byte, 0, len(p)*3)
	for _, v := range p {
		b = append(b, byte(v), byte(v>>8), byte(v>>16))
	}
	return string(b)
}

// NextHopRouters returns the distinct physical next-hop switches a packet
// at src may use toward dst (layer-collapsed), useful for diagnostics.
func (f *Fib) NextHopRouters(src, dst int) []int {
	if src == dst {
		return nil
	}
	seen := map[int]bool{}
	var out []int
	for _, nh := range f.next[dst][f.vnode(f.deliveryLayer(), src)] {
		r := f.router(int(nh))
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// Weighted wraps a Fib with WCMP-style forwarding: at every hop the next
// hop is chosen with probability proportional to the number of admissible
// min-cost paths through it, instead of uniformly. On fabrics with uneven
// path multiplicity (the §5.1 DRing's supernodes differ by one ToR) uniform
// hashing overloads the sparse directions; weighting restores balance.
// PathSet semantics are identical to the underlying Fib's.
type Weighted struct{ *Fib }

// NewWeighted wraps fib with path-count-weighted hashing.
func NewWeighted(fib *Fib) Weighted { return Weighted{fib} }

// Name implements Scheme.
func (w Weighted) Name() string { return "wcmp(" + w.Fib.Name() + ")" }

// Path implements Scheme with weighted per-hop selection.
func (w Weighted) Path(src, dst int, flowID uint64) []int {
	f := w.Fib
	if src == dst {
		return []int{src}
	}
	target := f.vnode(f.deliveryLayer(), dst)
	state := f.vnode(f.deliveryLayer(), src)
	path := []int{src}
	next := f.next[dst]
	counts := f.npaths[dst]
	for hop := 0; state != target; hop++ {
		nh := next[state]
		if len(nh) == 0 {
			return nil
		}
		var total int64
		for _, x := range nh {
			total += counts[x]
		}
		var pick int32
		if total <= 0 {
			pick = nh[hashChoice(flowID, hop, f.router(state), len(nh))]
		} else {
			r := int64(splitmix64(flowID^splitmix64(uint64(hop)<<32|uint64(uint32(f.router(state))))) % uint64(total))
			for _, x := range nh {
				r -= counts[x]
				if r < 0 {
					pick = x
					break
				}
			}
		}
		state = int(pick)
		path = append(path, f.router(state))
		if hop > f.layers*f.n {
			panic("routing: weighted walk did not terminate")
		}
	}
	return path
}

var _ Scheme = Weighted{}

// VNode is a (VRF, router) pair in the virtual forwarding graph. VRF is
// 1-based as in the paper; plain ECMP has a single VRF 1.
type VNode struct {
	VRF    int
	Router int
}

// VirtualNextHops returns the equal-cost next hops at (vrf, router) toward
// dst in the virtual graph, for cross-validation against the BGP control
// plane. VRFs are 1-based; for ECMP the only valid vrf is 1.
func (f *Fib) VirtualNextHops(vrf, router, dst int) []VNode {
	layer := vrf - 1
	if layer < 0 || layer >= f.layers {
		return nil
	}
	var out []VNode
	seen := map[int]bool{}
	for _, nh := range f.next[dst][f.vnode(layer, router)] {
		if seen[int(nh)] {
			continue // parallel links duplicate virtual arcs
		}
		seen[int(nh)] = true
		out = append(out, VNode{VRF: int(nh)/f.n + 1, Router: f.router(int(nh))})
	}
	return out
}

// K returns the scheme's K (0 for plain ECMP).
func (f *Fib) SchemeK() int { return f.K }

var _ Scheme = (*Fib)(nil)
