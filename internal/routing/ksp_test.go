package routing

import (
	"testing"

	"spineless/internal/topology"
)

func TestYenKSPLeafSpine(t *testing.T) {
	g := smallLeafSpine(t)
	paths := YenKSP(g, 0, 1, 4)
	// Exactly 2 loopless 2-hop paths exist; the next shortest are 4-hop
	// (leaf→spine→leaf→spine→leaf).
	if len(paths) != 4 {
		t.Fatalf("got %d paths, want 4", len(paths))
	}
	if PathLen(paths[0]) != 2 || PathLen(paths[1]) != 2 {
		t.Fatalf("first two paths not 2-hop: %v", paths[:2])
	}
	if PathLen(paths[2]) != 4 || PathLen(paths[3]) != 4 {
		t.Fatalf("paths 3,4 not 4-hop: %v", paths[2:])
	}
	for _, p := range paths {
		if err := CheckPath(p, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
}

func TestYenKSPOrderingAndUniqueness(t *testing.T) {
	g, _ := smallDRing(t)
	paths := YenKSP(g, 0, 9, 12)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	seen := map[string]bool{}
	prev := 0
	for _, p := range paths {
		if err := CheckPath(p, 0, 9); err != nil {
			t.Fatal(err)
		}
		if PathLen(p) < prev {
			t.Fatalf("paths not ordered by length: %v", paths)
		}
		prev = PathLen(p)
		k := pathKey(p)
		if seen[k] {
			t.Fatalf("duplicate path %v", p)
		}
		seen[k] = true
	}
}

func TestYenKSPUnreachable(t *testing.T) {
	g := topology.New("disc", 4, 2)
	if err := g.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if p := YenKSP(g, 0, 3, 3); p != nil {
		t.Fatalf("paths to unreachable node: %v", p)
	}
}

func TestKSPScheme(t *testing.T) {
	g, _ := smallDRing(t)
	s, err := NewKSP(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "ksp(4)" {
		t.Fatalf("name = %q", s.Name())
	}
	if _, err := NewKSP(g, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	set := s.PathSet(0, 9, 0)
	if len(set) != 4 {
		t.Fatalf("path set size = %d, want 4", len(set))
	}
	// Flows spread across the k paths and are pinned deterministically.
	used := map[string]bool{}
	for flow := uint64(0); flow < 64; flow++ {
		p := s.Path(0, 9, flow)
		if err := CheckPath(p, 0, 9); err != nil {
			t.Fatal(err)
		}
		used[pathKey(p)] = true
		q := s.Path(0, 9, flow)
		if pathKey(q) != pathKey(p) {
			t.Fatal("flow not pinned")
		}
	}
	if len(used) < 2 {
		t.Fatalf("flows used only %d distinct paths", len(used))
	}
	if p := s.Path(5, 5, 1); len(p) != 1 || p[0] != 5 {
		t.Fatalf("self path = %v", p)
	}
	if set := s.PathSet(0, 9, 2); len(set) != 2 {
		t.Fatalf("capped path set = %d, want 2", len(set))
	}
}

func TestVLBScheme(t *testing.T) {
	g, _ := smallDRing(t)
	s := NewVLB(g)
	if s.Name() != "vlb" {
		t.Fatalf("name = %q", s.Name())
	}
	for flow := uint64(0); flow < 100; flow++ {
		src, dst := int(flow)%g.N(), int(3*flow+1)%g.N()
		if src == dst {
			continue
		}
		p := s.Path(src, dst, flow)
		if err := CheckPath(p, src, dst); err != nil {
			t.Fatalf("flow %d: %v", flow, err)
		}
	}
	if p := s.Path(2, 2, 5); len(p) != 1 {
		t.Fatalf("self path = %v", p)
	}
	set := s.PathSet(0, 9, 5)
	if len(set) != 5 {
		t.Fatalf("capped VLB path set = %d, want 5", len(set))
	}
	for _, p := range set {
		if err := CheckPath(p, 0, 9); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSpliceLoops(t *testing.T) {
	cases := []struct {
		in, want []int
	}{
		{[]int{0, 1, 2}, []int{0, 1, 2}},
		{[]int{0, 1, 0, 2}, []int{0, 2}},
		{[]int{0, 1, 2, 1, 3}, []int{0, 1, 3}},
		{[]int{5}, []int{5}},
		{[]int{0, 1, 2, 0, 1, 3}, []int{0, 1, 3}},
	}
	for _, c := range cases {
		got := SpliceLoops(append([]int(nil), c.in...))
		if len(got) != len(c.want) {
			t.Fatalf("SpliceLoops(%v) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("SpliceLoops(%v) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestGreedyDisjoint(t *testing.T) {
	paths := [][]int{
		{0, 1, 2},
		{0, 3, 2},
		{0, 1, 3, 2}, // shares 0-1
		{0, 4, 2},
	}
	got := GreedyDisjoint(paths)
	if len(got) != 3 {
		t.Fatalf("disjoint count = %d, want 3", len(got))
	}
	used := map[[2]int]bool{}
	for _, p := range got {
		for h := 0; h+1 < len(p); h++ {
			k := edgeKey(p[h], p[h+1])
			if used[k] {
				t.Fatalf("paths share edge %v", k)
			}
			used[k] = true
		}
	}
}

func TestCheckPath(t *testing.T) {
	if err := CheckPath(nil, 0, 1); err == nil {
		t.Fatal("empty path accepted")
	}
	if err := CheckPath([]int{0, 2}, 0, 1); err == nil {
		t.Fatal("wrong endpoint accepted")
	}
	if err := CheckPath([]int{0, 2, 0, 1}, 0, 1); err == nil {
		t.Fatal("loop accepted")
	}
	if err := CheckPath([]int{0, 2, 1}, 0, 1); err != nil {
		t.Fatal(err)
	}
}
