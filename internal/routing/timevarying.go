package routing

import (
	"fmt"
	"sort"
	"strings"
)

// TimeScheme is a Scheme whose forwarding state changes at known simulated
// times — the control-plane view of a failure transient: the stale
// pre-failure FIB serves lookups until reconvergence completes, then the
// repaired FIB takes over. The packet simulator detects this interface and
// re-resolves live flows at each boundary.
type TimeScheme interface {
	Scheme
	// SchemeAt returns the scheme in force at simulated time tNS.
	SchemeAt(tNS int64) Scheme
	// Boundaries lists the phase-change times, ascending, excluding the
	// initial phase's start.
	Boundaries() []int64
}

// Phase is one routing regime: Scheme serves lookups from StartNS until the
// next phase begins.
type Phase struct {
	StartNS int64
	Scheme  Scheme
}

// TimeVarying is the concrete multi-phase TimeScheme. Its plain Scheme
// methods (Path, PathSet) serve the initial phase, so time-unaware callers
// see the pre-failure behavior.
type TimeVarying struct {
	phases []Phase
}

// NewTimeVarying builds a time-varying scheme from its phases. The first
// phase must start at 0 and starts must be strictly increasing.
func NewTimeVarying(phases ...Phase) (*TimeVarying, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("routing: time-varying scheme needs at least one phase")
	}
	if phases[0].StartNS != 0 {
		return nil, fmt.Errorf("routing: first phase starts at %d, want 0", phases[0].StartNS)
	}
	for i, p := range phases {
		if p.Scheme == nil {
			return nil, fmt.Errorf("routing: phase %d has a nil scheme", i)
		}
		if i > 0 && p.StartNS <= phases[i-1].StartNS {
			return nil, fmt.Errorf("routing: phase %d start %d not after phase %d start %d",
				i, p.StartNS, i-1, phases[i-1].StartNS)
		}
	}
	return &TimeVarying{phases: append([]Phase(nil), phases...)}, nil
}

// Name implements Scheme.
func (tv *TimeVarying) Name() string {
	parts := make([]string, len(tv.phases))
	for i, p := range tv.phases {
		parts[i] = p.Scheme.Name()
	}
	return "time-varying(" + strings.Join(parts, "→") + ")"
}

// Path implements Scheme, serving the initial phase.
func (tv *TimeVarying) Path(src, dst int, flowID uint64) []int {
	return tv.phases[0].Scheme.Path(src, dst, flowID)
}

// PathSet implements Scheme, serving the initial phase.
func (tv *TimeVarying) PathSet(src, dst, maxPaths int) [][]int {
	return tv.phases[0].Scheme.PathSet(src, dst, maxPaths)
}

// SchemeAt implements TimeScheme.
func (tv *TimeVarying) SchemeAt(tNS int64) Scheme {
	i := sort.Search(len(tv.phases), func(i int) bool { return tv.phases[i].StartNS > tNS }) - 1
	if i < 0 {
		i = 0
	}
	return tv.phases[i].Scheme
}

// Boundaries implements TimeScheme.
func (tv *TimeVarying) Boundaries() []int64 {
	out := make([]int64, 0, len(tv.phases)-1)
	for _, p := range tv.phases[1:] {
		out = append(out, p.StartNS)
	}
	return out
}

var _ TimeScheme = (*TimeVarying)(nil)
