package routing

import (
	"fmt"
	"sort"
	"sync"

	"spineless/internal/parallel"
	"spineless/internal/topology"
)

// KSP is k-shortest-path routing, the scheme Jellyfish [23] pairs with
// MPTCP. Each rack pair uses its k shortest loopless paths (Yen's
// algorithm, unit weights); a flow is pinned to one of them by hash.
type KSP struct {
	g *topology.Graph
	k int

	mu    sync.Mutex
	cache map[[2]int][][]int
}

// NewKSP builds a k-shortest-path scheme over g. Path sets are computed
// lazily per rack pair and memoized.
func NewKSP(g *topology.Graph, k int) (*KSP, error) {
	if k < 1 {
		return nil, fmt.Errorf("routing: ksp requires k >= 1, got %d", k)
	}
	return &KSP{g: g, k: k, cache: make(map[[2]int][][]int)}, nil
}

// Name implements Scheme.
func (s *KSP) Name() string { return fmt.Sprintf("ksp(%d)", s.k) }

// Path implements Scheme: flows are pinned to one of the k paths by hash.
func (s *KSP) Path(src, dst int, flowID uint64) []int {
	if src == dst {
		return []int{src}
	}
	paths := s.paths(src, dst)
	if len(paths) == 0 {
		return nil
	}
	return paths[hashChoice(flowID, 0, src, len(paths))]
}

// PathSet implements Scheme.
func (s *KSP) PathSet(src, dst, maxPaths int) [][]int {
	if src == dst {
		return [][]int{{src}}
	}
	paths := s.paths(src, dst)
	if maxPaths > 0 && len(paths) > maxPaths {
		paths = paths[:maxPaths]
	}
	out := make([][]int, len(paths))
	for i, p := range paths {
		out[i] = append([]int(nil), p...)
	}
	return out
}

// paths returns the memoized k-shortest-path set for (src, dst). The lock
// covers only cache access, never the Yen computation: concurrent readers of
// a shared KSP scheme (parallel trials all route through one FIB-like
// object) would otherwise serialize on every miss. Two workers that race on
// the same cold pair both run YenKSP — it is deterministic, so whichever
// insert lands is byte-identical to the other.
func (s *KSP) paths(src, dst int) [][]int {
	key := [2]int{src, dst}
	s.mu.Lock()
	p, ok := s.cache[key]
	s.mu.Unlock()
	if ok {
		return p
	}
	p = YenKSP(s.g, src, dst, s.k)
	s.mu.Lock()
	if prev, ok := s.cache[key]; ok {
		p = prev // keep the first insert so callers share one backing array
	} else {
		s.cache[key] = p
	}
	s.mu.Unlock()
	return p
}

// Prewarm fills the path cache for every ordered switch pair, in parallel.
// Called before a fan-out shares this scheme across workers, it turns every
// subsequent Path/PathSet into a pure cache hit, so the mutex never becomes
// a contention point mid-experiment. Prewarming is semantically invisible:
// cache state never affects routing output.
func (s *KSP) Prewarm() {
	n := s.g.N()
	_ = parallel.ForEach(0, n, func(src int) error {
		for dst := 0; dst < n; dst++ {
			if dst != src {
				s.paths(src, dst)
			}
		}
		return nil
	})
}

// YenKSP returns up to k shortest loopless switch paths from src to dst
// using Yen's algorithm over unit-weight links. Paths are ordered by length
// (ties broken deterministically by lexicographic order).
func YenKSP(g *topology.Graph, src, dst, k int) [][]int {
	first := bfsPath(g, src, dst, nil, nil)
	if first == nil {
		return nil
	}
	accepted := [][]int{first}
	var candidates [][]int

	for len(accepted) < k {
		prev := accepted[len(accepted)-1]
		for i := 0; i < len(prev)-1; i++ {
			spur := prev[i]
			root := prev[:i+1]

			bannedEdges := make(map[[2]int]bool)
			for _, p := range accepted {
				if len(p) > i && equalPrefix(p, root) {
					bannedEdges[edgeKey(p[i], p[i+1])] = true
				}
			}
			bannedNodes := make(map[int]bool, i)
			for _, v := range root[:len(root)-1] {
				bannedNodes[v] = true
			}

			tail := bfsPath(g, spur, dst, bannedNodes, bannedEdges)
			if tail == nil {
				continue
			}
			cand := append(append([]int(nil), root[:len(root)-1]...), tail...)
			if !containsPath(accepted, cand) && !containsPath(candidates, cand) {
				candidates = append(candidates, cand)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			if len(candidates[a]) != len(candidates[b]) {
				return len(candidates[a]) < len(candidates[b])
			}
			return lexLess(candidates[a], candidates[b])
		})
		accepted = append(accepted, candidates[0])
		candidates = candidates[1:]
	}
	return accepted
}

func edgeKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

func equalPrefix(p, prefix []int) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i, v := range prefix {
		if p[i] != v {
			return false
		}
	}
	return true
}

func containsPath(set [][]int, p []int) bool {
	for _, q := range set {
		if len(q) == len(p) {
			same := true
			for i := range q {
				if q[i] != p[i] {
					same = false
					break
				}
			}
			if same {
				return true
			}
		}
	}
	return false
}

func lexLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// bfsPath finds one shortest path avoiding banned nodes and edges, with
// deterministic tie-breaking (lowest neighbor id first).
func bfsPath(g *topology.Graph, src, dst int, bannedNodes map[int]bool, bannedEdges map[[2]int]bool) []int {
	if src == dst {
		return []int{src}
	}
	if bannedNodes[src] || bannedNodes[dst] {
		return nil
	}
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		// Deterministic order: sort a copy of the adjacency.
		nb := append([]int(nil), g.Neighbors(v)...)
		sort.Ints(nb)
		for _, w := range nb {
			if parent[w] >= 0 || bannedNodes[w] || bannedEdges[edgeKey(v, w)] {
				continue
			}
			parent[w] = v
			if w == dst {
				var path []int
				for x := dst; x != src; x = parent[x] {
					path = append(path, x)
				}
				path = append(path, src)
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, w)
		}
	}
	return nil
}

var _ Scheme = (*KSP)(nil)
