package routing

// Adaptive is the §7 "coarse-grained adaptive routing" direction: it
// delegates each rack pair to one of two oblivious schemes based on a
// coarse, control-plane-time predicate (e.g. demand concentration measured
// from the DC's utilization). Hot pairs get the alternative scheme's extra
// path diversity; everything else keeps the base scheme's short paths.
//
// The composition stays oblivious at forwarding time — the predicate is
// evaluated when the scheme is built, not per packet — so it remains
// deployable with the same BGP/VRF machinery (hot prefixes are simply
// announced through the extra VRFs).
type Adaptive struct {
	name   string
	base   Scheme
	alt    Scheme
	useAlt func(src, dst int) bool
}

// NewAdaptive composes base and alt under a per-rack-pair predicate.
func NewAdaptive(name string, base, alt Scheme, useAlt func(src, dst int) bool) *Adaptive {
	return &Adaptive{name: name, base: base, alt: alt, useAlt: useAlt}
}

// Name implements Scheme.
func (a *Adaptive) Name() string { return a.name }

// Path implements Scheme.
func (a *Adaptive) Path(src, dst int, flowID uint64) []int {
	if a.useAlt(src, dst) {
		return a.alt.Path(src, dst, flowID)
	}
	return a.base.Path(src, dst, flowID)
}

// PathSet implements Scheme.
func (a *Adaptive) PathSet(src, dst, maxPaths int) [][]int {
	if a.useAlt(src, dst) {
		return a.alt.PathSet(src, dst, maxPaths)
	}
	return a.base.PathSet(src, dst, maxPaths)
}

var _ Scheme = (*Adaptive)(nil)
