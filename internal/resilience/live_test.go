package resilience

import (
	"reflect"
	"testing"

	"spineless/internal/core"
)

func liveTestConfig() LiveConfig {
	cfg := DefaultLiveConfig()
	cfg.Flows = 300
	cfg.PreserveConnectivity = true
	return cfg
}

func TestRunLiveBlackholeWindowTracksReconvergence(t *testing.T) {
	g := ringFabric(t)
	cfg := liveTestConfig()
	res, err := RunLive(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedPairs == 0 || res.FailedLinks < res.FailedPairs {
		t.Fatalf("no failures injected: %+v", res)
	}
	if res.ReconvRounds < 2 {
		t.Fatalf("reconvergence rounds = %d, want >= 2 after real failures", res.ReconvRounds)
	}
	if res.Blackholed == 0 || res.MeasuredBlackholeNS == 0 {
		t.Fatalf("no blackhole transient observed: %+v", res)
	}
	// The data plane's measured outage must track the configured one
	// (detection + rounds × per-round delay) within one RTO.
	configured := res.RepairNS - cfg.FailAtNS
	tol := int64(cfg.Net.MinRTO)
	diff := res.MeasuredBlackholeNS - configured
	if diff < -tol || diff > tol {
		t.Fatalf("measured blackhole %d ns vs configured %d ns (tolerance %d)",
			res.MeasuredBlackholeNS, configured, tol)
	}
	if res.FlowsWithRTO == 0 {
		t.Fatal("no flow hit an RTO during the transient")
	}
	if res.Reroutes == 0 {
		t.Fatal("no live flow re-pathed at the repair")
	}
	if res.Transient.During.Count == 0 || res.Transient.After.Count == 0 {
		t.Fatalf("transient buckets empty: %+v", res.Transient)
	}
	if res.Incomplete != 0 {
		t.Fatalf("%d flows never completed on a connectivity-preserving cut", res.Incomplete)
	}
}

func TestRunLiveWindowScalesWithRoundDelay(t *testing.T) {
	g := ringFabric(t)
	fast := liveTestConfig()
	fast.RoundDelayNS = 2e5
	slow := liveTestConfig()
	slow.RoundDelayNS = 2e6
	rFast, err := RunLive(g, fast)
	if err != nil {
		t.Fatal(err)
	}
	rSlow, err := RunLive(g, slow)
	if err != nil {
		t.Fatal(err)
	}
	if rSlow.RepairNS <= rFast.RepairNS {
		t.Fatalf("repair time did not grow with round delay: %d vs %d", rSlow.RepairNS, rFast.RepairNS)
	}
	if rSlow.MeasuredBlackholeNS <= rFast.MeasuredBlackholeNS {
		t.Fatalf("measured window did not track round delay: %d vs %d",
			rSlow.MeasuredBlackholeNS, rFast.MeasuredBlackholeNS)
	}
}

func TestRunLiveDeterministic(t *testing.T) {
	g := ringFabric(t)
	cfg := liveTestConfig()
	cfg.FlapLinks = 1
	cfg.GrayLinks = 2
	a, err := RunLive(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLive(ringFabric(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("live runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Flapping != 1 || a.Gray != 2 {
		t.Fatalf("flap/gray not injected: %+v", a)
	}
	if a.GrayDrops == 0 {
		t.Fatal("gray links dropped nothing")
	}
}

func TestLiveSweepDegradesGracefully(t *testing.T) {
	g := ringFabric(t)
	cfg := liveTestConfig()
	cfg.Flows = 120
	// Fraction 1.0 cannot preserve connectivity: that trial must fail alone
	// while 5% still produces a row.
	rows, err := LiveSweep(g, cfg, []float64{0.05, 1.0})
	if err == nil {
		t.Fatal("impossible fraction did not surface an error")
	}
	terrs, ok := err.(core.TrialErrors)
	if !ok || len(terrs) != 1 {
		t.Fatalf("want 1 aggregated trial error, got %v", err)
	}
	if len(rows) != 1 || rows[0].Fraction != 0.05 {
		t.Fatalf("surviving rows = %+v", rows)
	}
	if LiveTable(rows) == "" {
		t.Fatal("empty live table")
	}
}

func TestRunLiveRejectsBadConfig(t *testing.T) {
	g := ringFabric(t)
	for _, mod := range []func(*LiveConfig){
		func(c *LiveConfig) { c.K = 1 },
		func(c *LiveConfig) { c.Flows = 0 },
		func(c *LiveConfig) { c.WindowNS = 0 },
		func(c *LiveConfig) { c.RoundDelayNS = -1 },
	} {
		cfg := liveTestConfig()
		mod(&cfg)
		if _, err := RunLive(g, cfg); err == nil {
			t.Fatalf("bad config accepted: %+v", cfg)
		}
	}
}
