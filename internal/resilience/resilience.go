// Package resilience studies the paper's §7 "Impact of failures" questions:
// how quickly routing converges to alternative paths when links fail in a
// flat network, and what failures do to path length, path diversity, and
// flow completion times. Nothing here is in the paper's evaluation — it is
// the future-work direction built out so the open questions can actually be
// measured.
package resilience

import (
	"fmt"
	"math/rand"

	"spineless/internal/topology"
)

// Failure is one failed physical link.
type Failure struct {
	A, B int
}

// FailRandomLinks returns a copy of g with a fraction of its network links
// removed (uniformly at random, without replacement), plus the failed
// links. Host links never fail. fraction is clamped to [0, 1].
func FailRandomLinks(g *topology.Graph, fraction float64, rng *rand.Rand) (*topology.Graph, []Failure, error) {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	type edge struct{ a, b int }
	var edges []edge
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if v < w {
				edges = append(edges, edge{v, w})
			}
		}
	}
	k := int(float64(len(edges))*fraction + 0.5)
	if k > len(edges) {
		k = len(edges)
	}
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	out := g.Clone()
	out.Name = fmt.Sprintf("%s-f%.3f", g.Name, fraction)
	failures := make([]Failure, 0, k)
	for _, e := range edges[:k] {
		if !out.RemoveLink(e.a, e.b) {
			return nil, nil, fmt.Errorf("resilience: failed to remove link %d-%d", e.a, e.b)
		}
		failures = append(failures, Failure{A: e.a, B: e.b})
	}
	return out, failures, nil
}

// PathReport compares rack-to-rack shortest paths before and after failures.
type PathReport struct {
	// Disconnected counts ordered rack pairs that lost all connectivity.
	Disconnected int
	// Pairs is the total ordered rack pairs considered.
	Pairs int
	// MeanDilation is the mean of dist_after/dist_before over still
	// connected pairs (1.0 = no stretch).
	MeanDilation float64
	// MaxDilation is the worst stretch observed.
	MaxDilation float64
}

// ComparePaths measures the dilation failures introduce.
func ComparePaths(before, after *topology.Graph) (PathReport, error) {
	if before.N() != after.N() {
		return PathReport{}, fmt.Errorf("resilience: graphs differ in size")
	}
	racks := before.Racks()
	var rep PathReport
	sum := 0.0
	counted := 0
	for _, r := range racks {
		db := topology.BFS(before, r)
		da := topology.BFS(after, r)
		for _, q := range racks {
			if q == r {
				continue
			}
			rep.Pairs++
			if db[q] < 0 {
				continue // was never connected; not a failure effect
			}
			if da[q] < 0 {
				rep.Disconnected++
				continue
			}
			d := float64(da[q]) / float64(db[q])
			sum += d
			counted++
			if d > rep.MaxDilation {
				rep.MaxDilation = d
			}
		}
	}
	if counted > 0 {
		rep.MeanDilation = sum / float64(counted)
	}
	return rep, nil
}

// DiversityReport summarizes multipath degradation under a routing scheme.
type DiversityReport struct {
	// MeanPathsBefore/After are average admissible-path counts over sampled
	// rack pairs.
	MeanPathsBefore, MeanPathsAfter float64
	// MinPathsAfter is the worst-case surviving diversity.
	MinPathsAfter int
}

// PathSetCounter is the subset of routing.Scheme needed here (avoids a
// dependency cycle and lets tests substitute fakes).
type PathSetCounter interface {
	PathSet(src, dst, max int) [][]int
}

// CompareDiversity samples rack pairs and reports admissible path counts
// under schemes built for the before/after fabrics.
func CompareDiversity(before, after *topology.Graph, sBefore, sAfter PathSetCounter, samples int, rng *rand.Rand) DiversityReport {
	racks := before.Racks()
	rep := DiversityReport{MinPathsAfter: int(^uint(0) >> 1)}
	if len(racks) < 2 || samples <= 0 {
		rep.MinPathsAfter = 0
		return rep
	}
	const cap = 64
	sb, sa := 0, 0
	for i := 0; i < samples; i++ {
		src := racks[rng.Intn(len(racks))]
		dst := racks[rng.Intn(len(racks))]
		for dst == src {
			dst = racks[rng.Intn(len(racks))]
		}
		nb := len(sBefore.PathSet(src, dst, cap))
		na := len(sAfter.PathSet(src, dst, cap))
		sb += nb
		sa += na
		if na < rep.MinPathsAfter {
			rep.MinPathsAfter = na
		}
	}
	rep.MeanPathsBefore = float64(sb) / float64(samples)
	rep.MeanPathsAfter = float64(sa) / float64(samples)
	return rep
}
