// Package resilience studies the paper's §7 "Impact of failures" questions:
// how quickly routing converges to alternative paths when links fail in a
// flat network, and what failures do to path length, path diversity, and
// flow completion times. Nothing here is in the paper's evaluation — it is
// the future-work direction built out so the open questions can actually be
// measured.
package resilience

import (
	"fmt"
	"math/rand"

	"spineless/internal/topology"
)

// Failure is one failed physical link.
type Failure struct {
	A, B int
}

// FailOptions tunes FailRandomLinksOpt.
type FailOptions struct {
	// PreserveConnectivity rejects (and re-draws) cut sets that disconnect
	// any rack pair, so dilation studies can isolate path stretch from
	// outright partition. Draws stay deterministic: each attempt consumes
	// one shuffle from the caller's rng.
	PreserveConnectivity bool
	// MaxAttempts bounds the re-draws (0 picks 100). Exhausting it returns
	// an error rather than a silently partitioned fabric.
	MaxAttempts int
}

// FailRandomLinks returns a copy of g with a fraction of its network links
// removed (uniformly at random, without replacement), plus the failed
// links. Host links never fail. fraction is clamped to [0, 1].
func FailRandomLinks(g *topology.Graph, fraction float64, rng *rand.Rand) (*topology.Graph, []Failure, error) {
	return FailRandomLinksOpt(g, fraction, rng, FailOptions{})
}

// FailRandomLinksOpt is FailRandomLinks with explicit options.
func FailRandomLinksOpt(g *topology.Graph, fraction float64, rng *rand.Rand, opt FailOptions) (*topology.Graph, []Failure, error) {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	type edge struct{ a, b int }
	var edges []edge
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if v < w {
				edges = append(edges, edge{v, w})
			}
		}
	}
	k := int(float64(len(edges))*fraction + 0.5)
	if k > len(edges) {
		k = len(edges)
	}
	attempts := opt.MaxAttempts
	if attempts <= 0 {
		attempts = 100
	}
	if !opt.PreserveConnectivity {
		attempts = 1
	}
	for try := 0; try < attempts; try++ {
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		out := g.Clone()
		out.Name = fmt.Sprintf("%s-f%.3f", g.Name, fraction)
		failures := make([]Failure, 0, k)
		for _, e := range edges[:k] {
			if !out.RemoveLink(e.a, e.b) {
				return nil, nil, fmt.Errorf("resilience: failed to remove link %d-%d", e.a, e.b)
			}
			failures = append(failures, Failure{A: e.a, B: e.b})
		}
		if opt.PreserveConnectivity && !racksConnected(out) {
			continue
		}
		return out, failures, nil
	}
	return nil, nil, fmt.Errorf("resilience: no connectivity-preserving cut of %d links found in %d attempts", k, attempts)
}

// racksConnected reports whether every rack can reach every other rack
// (weaker than full switch connectivity: a stranded rackless switch is
// harmless).
func racksConnected(g *topology.Graph) bool {
	racks := g.Racks()
	if len(racks) < 2 {
		return true
	}
	dist := topology.BFS(g, racks[0])
	for _, r := range racks[1:] {
		if dist[r] < 0 {
			return false
		}
	}
	return true
}

// PathReport compares rack-to-rack shortest paths before and after failures.
type PathReport struct {
	// Disconnected counts ordered rack pairs that lost all connectivity.
	Disconnected int
	// Pairs is the total ordered rack pairs considered.
	Pairs int
	// MeanDilation is the mean of dist_after/dist_before over still
	// connected pairs (1.0 = no stretch).
	MeanDilation float64
	// MaxDilation is the worst stretch observed.
	MaxDilation float64
}

// ComparePaths measures the dilation failures introduce.
func ComparePaths(before, after *topology.Graph) (PathReport, error) {
	if before.N() != after.N() {
		return PathReport{}, fmt.Errorf("resilience: graphs differ in size")
	}
	racks := before.Racks()
	var rep PathReport
	sum := 0.0
	counted := 0
	for _, r := range racks {
		db := topology.BFS(before, r)
		da := topology.BFS(after, r)
		for _, q := range racks {
			if q == r {
				continue
			}
			rep.Pairs++
			if db[q] < 0 {
				continue // was never connected; not a failure effect
			}
			if da[q] < 0 {
				rep.Disconnected++
				continue
			}
			d := float64(da[q]) / float64(db[q])
			sum += d
			counted++
			if d > rep.MaxDilation {
				rep.MaxDilation = d
			}
		}
	}
	if counted > 0 {
		rep.MeanDilation = sum / float64(counted)
	}
	return rep, nil
}

// DiversityReport summarizes multipath degradation under a routing scheme.
type DiversityReport struct {
	// MeanPathsBefore/After are average admissible-path counts over sampled
	// rack pairs.
	MeanPathsBefore, MeanPathsAfter float64
	// MinPathsAfter is the worst-case surviving diversity.
	MinPathsAfter int
}

// PathSetCounter is the subset of routing.Scheme needed here (avoids a
// dependency cycle and lets tests substitute fakes).
type PathSetCounter interface {
	PathSet(src, dst, maxPaths int) [][]int
}

// DefaultPathSetCap bounds path-set enumeration per sampled pair when the
// caller passes pathCap <= 0 to CompareDiversity.
const DefaultPathSetCap = 64

// CompareDiversity samples rack pairs and reports admissible path counts
// under schemes built for the before/after fabrics. pathCap bounds the
// per-pair enumeration (<= 0 selects DefaultPathSetCap).
func CompareDiversity(before, after *topology.Graph, sBefore, sAfter PathSetCounter, samples, pathCap int, rng *rand.Rand) DiversityReport {
	racks := before.Racks()
	rep := DiversityReport{MinPathsAfter: int(^uint(0) >> 1)}
	if len(racks) < 2 || samples <= 0 {
		rep.MinPathsAfter = 0
		return rep
	}
	if pathCap <= 0 {
		pathCap = DefaultPathSetCap
	}
	sb, sa := 0, 0
	for i := 0; i < samples; i++ {
		src := racks[rng.Intn(len(racks))]
		dst := racks[rng.Intn(len(racks))]
		for dst == src {
			dst = racks[rng.Intn(len(racks))]
		}
		nb := len(sBefore.PathSet(src, dst, pathCap))
		na := len(sAfter.PathSet(src, dst, pathCap))
		sb += nb
		sa += na
		if na < rep.MinPathsAfter {
			rep.MinPathsAfter = na
		}
	}
	rep.MeanPathsBefore = float64(sb) / float64(samples)
	rep.MeanPathsAfter = float64(sa) / float64(samples)
	return rep
}
