package resilience

import (
	"strings"
	"testing"

	"spineless/internal/netsim"
	"spineless/internal/telemetry"
)

// TestLiveTelemetryDropSeriesMatchesTransient cross-checks the two
// observability paths against each other on one fault-schedule run: the
// telemetry blackhole drop-rate series must show the outage exactly inside
// the window where metrics.SummarizeTransient places it ([FailAtNS,
// RepairNS], the During bucket), and the series total must equal the
// simulator's own blackhole counter.
func TestLiveTelemetryDropSeriesMatchesTransient(t *testing.T) {
	g := ringFabric(t)
	cfg := liveTestConfig()
	rec := telemetry.NewRecorder(telemetry.Config{BucketNS: 100_000, Buckets: 1024})
	cfg.Telemetry = rec

	res, err := RunLive(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blackholed == 0 {
		t.Fatalf("no blackhole transient to cross-check: %+v", res)
	}
	if res.Transient.During.Count == 0 {
		t.Fatalf("transient During bucket empty: %+v", res.Transient)
	}

	sn := rec.Snapshot()
	if sn.Buckets() == 0 {
		t.Fatal("telemetry window empty")
	}
	reason := int(netsim.DropBlackhole)
	var total uint64
	first, last := int64(-1), int64(-1)
	for i, d := range sn.Drops[reason] {
		if d == 0 {
			continue
		}
		total += d
		b := sn.FirstBucket + int64(i)
		if first < 0 {
			first = b
		}
		last = b
	}
	if total != res.Blackholed {
		t.Fatalf("telemetry series holds %d blackhole drops, simulator counted %d", total, res.Blackholed)
	}

	// The series outage window must sit exactly where SummarizeTransient
	// puts the During bucket: nothing blackholes before the failure, and
	// nothing after the repair beyond bucket-edge rounding.
	firstNS := first * sn.BucketNS
	lastNS := (last + 1) * sn.BucketNS
	if firstNS < cfg.FailAtNS-sn.BucketNS || firstNS > cfg.FailAtNS+res.RepairNS {
		t.Fatalf("first blackhole bucket at %d ns, failure injected at %d ns", firstNS, cfg.FailAtNS)
	}
	if lastNS > res.RepairNS+sn.BucketNS {
		t.Fatalf("blackhole drops continue to %d ns, past the repair at %d ns", lastNS, res.RepairNS)
	}

	// And the series' own window width must agree with the data plane's
	// first-to-last measurement already validated against reconvergence.
	seriesSpan := (last - first + 1) * sn.BucketNS
	if res.MeasuredBlackholeNS > seriesSpan || seriesSpan-res.MeasuredBlackholeNS > 2*sn.BucketNS {
		t.Fatalf("series outage span %d ns vs measured blackhole window %d ns (bucket %d ns)",
			seriesSpan, res.MeasuredBlackholeNS, sn.BucketNS)
	}

	// Fault injection is visible in link state too.
	if sn.Totals.LinkEvents == 0 {
		t.Fatal("no link state changes recorded during a fault run")
	}
	if sn.Totals.DropsBlackhole != res.Blackholed || sn.Totals.DropsGray != res.GrayDrops {
		t.Fatalf("totals disagree with run stats: %+v vs %+v", sn.Totals, res)
	}
}

// TestLiveTelemetryShardsRejected is the failing-before guard test for the
// resilience Live path.
func TestLiveTelemetryShardsRejected(t *testing.T) {
	g := ringFabric(t)
	cfg := liveTestConfig()
	cfg.Shards = 2
	cfg.Telemetry = telemetry.NewRecorder(telemetry.Config{})
	if _, err := RunLive(g, cfg); err == nil {
		t.Fatal("Shards>0 with Telemetry accepted — the tracer would be silently ignored")
	} else if !strings.Contains(err.Error(), "serial engine") {
		t.Fatalf("unhelpful error: %v", err)
	}
	cfg.Shards = 0
	cfg.Audit = true
	if _, err := RunLive(g, cfg); err == nil {
		t.Fatal("Audit+Telemetry accepted")
	}
}

// TestStudyTelemetryShardsRejected covers the Study sweep layer.
func TestStudyTelemetryShardsRejected(t *testing.T) {
	g := ringFabric(t)
	cfg := DefaultStudyConfig()
	cfg.Flows = 50
	cfg.Shards = 2
	cfg.Telemetry = telemetry.NewRecorder(telemetry.Config{})
	if _, err := Study(g, cfg); err == nil {
		t.Fatal("Shards>0 with Telemetry accepted in Study")
	}
	cfg.Shards = 0
	cfg.Audit = true
	if _, err := Study(g, cfg); err == nil {
		t.Fatal("Audit+Telemetry accepted in Study")
	}
}

// TestStudyTelemetryBindsPerFraction: each fraction's replay gets a sink
// and the merged snapshot covers the whole sweep.
func TestStudyTelemetryBindsPerFraction(t *testing.T) {
	g := ringFabric(t)
	cfg := DefaultStudyConfig()
	cfg.Fractions = []float64{0.02, 0.05}
	cfg.Flows = 80
	rec := telemetry.NewRecorder(telemetry.Config{})
	cfg.Telemetry = rec
	rows, err := Study(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rec.Sinks() != 2 {
		t.Fatalf("%d sinks bound, want one per fraction replay", rec.Sinks())
	}
	if sn := rec.Snapshot(); sn.Totals.TxBytes == 0 {
		t.Fatal("merged study snapshot has no traffic")
	}
}
