package resilience

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"spineless/internal/bgp"
	"spineless/internal/routing"
	"spineless/internal/topology"
)

func testRNG() *rand.Rand { return rand.New(rand.NewSource(13)) }

func ringFabric(t *testing.T) *topology.Graph {
	t.Helper()
	g, err := topology.DRing(topology.Uniform(6, 2, 20))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFailRandomLinksCounts(t *testing.T) {
	g := ringFabric(t)
	before := g.Links()
	failed, fs, err := FailRandomLinks(g, 0.25, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	want := int(float64(before)*0.25 + 0.5)
	if len(fs) != want {
		t.Fatalf("failed %d links, want %d", len(fs), want)
	}
	if failed.Links() != before-want {
		t.Fatalf("remaining links = %d", failed.Links())
	}
	// Original untouched.
	if g.Links() != before {
		t.Fatal("original fabric mutated")
	}
	if err := failed.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFailRandomLinksClamps(t *testing.T) {
	g := ringFabric(t)
	all, fs, err := FailRandomLinks(g, 2.0, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if all.Links() != 0 || len(fs) != g.Links() {
		t.Fatal("fraction > 1 not clamped to all links")
	}
	none, fs2, err := FailRandomLinks(g, -1, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if none.Links() != g.Links() || len(fs2) != 0 {
		t.Fatal("negative fraction not clamped to none")
	}
}

func TestFailRandomLinksQuick(t *testing.T) {
	f := func(seed int64, fRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.DRing(topology.Uniform(5, 2, 20))
		if err != nil {
			return false
		}
		frac := float64(fRaw) / 255
		failed, fs, err := FailRandomLinks(g, frac, rng)
		if err != nil {
			return false
		}
		return failed.Links()+len(fs) == g.Links() && failed.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFailRandomLinksPreserveConnectivity(t *testing.T) {
	// A 4-rack ring: any single-link cut keeps it connected, but heavy
	// fractions partition it easily without the option.
	g := topology.New("ring4", 4, 4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if err := g.AddLink(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for v := 0; v < 4; v++ {
		g.SetServers(v, 1)
	}
	opt := FailOptions{PreserveConnectivity: true}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		failed, fs, err := FailRandomLinksOpt(g, 0.25, rng, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(fs) != 1 {
			t.Fatalf("seed %d: failed %d links, want 1", seed, len(fs))
		}
		if !racksConnected(failed) {
			t.Fatalf("seed %d: PreserveConnectivity returned a partitioned fabric", seed)
		}
	}
	// With a chord added, some 2-link cuts partition (isolating a rack) and
	// some don't; every accepted draw must be connected.
	chord := g.Clone()
	if err := chord.AddLink(0, 2); err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		failed, fs, err := FailRandomLinksOpt(chord, 0.4, rng, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(fs) != 2 {
			t.Fatalf("seed %d: failed %d links, want 2", seed, len(fs))
		}
		if !racksConnected(failed) {
			t.Fatalf("seed %d: partitioned despite PreserveConnectivity", seed)
		}
	}
	// Impossible demand (all links) must error, not loop or partition.
	if _, _, err := FailRandomLinksOpt(g, 1.0, testRNG(), FailOptions{PreserveConnectivity: true, MaxAttempts: 5}); err == nil {
		t.Fatal("connectivity-preserving cut of every link accepted")
	}
	// Default behavior is unchanged: the same seed yields the same draw
	// with and without the zero options.
	a, fsA, err := FailRandomLinks(ringFabric(t), 0.25, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	b, fsB, err := FailRandomLinksOpt(ringFabric(t), 0.25, testRNG(), FailOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Links() != b.Links() || len(fsA) != len(fsB) {
		t.Fatal("zero-option draw differs from FailRandomLinks")
	}
	for i := range fsA {
		if fsA[i] != fsB[i] {
			t.Fatalf("draw diverged at %d: %+v vs %+v", i, fsA[i], fsB[i])
		}
	}
}

func TestComparePathsNoFailures(t *testing.T) {
	g := ringFabric(t)
	rep, err := ComparePaths(g, g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Disconnected != 0 || math.Abs(rep.MeanDilation-1) > 1e-9 || rep.MaxDilation != 1 {
		t.Fatalf("identity comparison = %+v", rep)
	}
}

func TestComparePathsDetectsDilationAndPartition(t *testing.T) {
	// Path 0-1-2 with shortcut 0-2: removing the shortcut dilates 0→2 to 2.
	g := topology.New("tri", 3, 4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if err := g.AddLink(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g.SetServers(0, 1)
	g.SetServers(1, 1)
	g.SetServers(2, 1)
	after := g.Clone()
	after.RemoveLink(0, 2)
	rep, err := ComparePaths(g, after)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxDilation != 2 {
		t.Fatalf("max dilation = %v, want 2", rep.MaxDilation)
	}
	// Now partition node 2 entirely.
	after.RemoveLink(1, 2)
	rep, err = ComparePaths(g, after)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Disconnected != 4 { // (0,2),(2,0),(1,2),(2,1)
		t.Fatalf("disconnected = %d, want 4", rep.Disconnected)
	}
}

func TestComparePathsSizeMismatch(t *testing.T) {
	if _, err := ComparePaths(topology.New("a", 2, 1), topology.New("b", 3, 1)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestCompareDiversity(t *testing.T) {
	g := ringFabric(t)
	failed, _, err := FailRandomLinks(g, 0.15, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if !failed.Connected() {
		t.Skip("sampled failure disconnected the tiny fabric")
	}
	sb, err := routing.NewShortestUnion(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := routing.NewShortestUnion(failed, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep := CompareDiversity(g, failed, sb, sa, 40, 0, testRNG())
	if rep.MeanPathsBefore <= 0 || rep.MeanPathsAfter <= 0 {
		t.Fatalf("diversity = %+v", rep)
	}
	if rep.MeanPathsAfter > rep.MeanPathsBefore {
		t.Fatalf("failures increased diversity: %+v", rep)
	}
	if rep.MinPathsAfter < 1 {
		t.Fatalf("connected fabric has pair with no paths: %+v", rep)
	}
}

func TestBGPReconvergenceAfterFailure(t *testing.T) {
	g := ringFabric(t)
	net, err := bgp.Build(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	rib, fresh, err := net.Converge()
	if err != nil {
		t.Fatal(err)
	}
	// Re-converging from the fixpoint on the same fabric is immediate.
	_, again, err := net.ConvergeFrom(rib)
	if err != nil {
		t.Fatal(err)
	}
	if again != 1 {
		t.Fatalf("fixpoint reconvergence took %d rounds, want 1", again)
	}
	// After failing links, reconvergence from stale state must still land on
	// a Theorem-1-correct RIB.
	failed, _, err := FailRandomLinks(g, 0.1, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if !failed.Connected() {
		t.Skip("failure disconnected the tiny fabric")
	}
	failedNet, err := bgp.Build(failed, 2)
	if err != nil {
		t.Fatal(err)
	}
	rib2, rounds, err := failedNet.ConvergeFrom(rib)
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 2 {
		t.Fatalf("reconvergence after failure took %d rounds (< fresh %d is fine, but 1 is suspicious)", rounds, fresh)
	}
	if err := bgp.VerifyTheorem1(failedNet, rib2); err != nil {
		t.Fatal(err)
	}
	// Incremental reconvergence should match a fresh convergence's RIB.
	ribFresh, _, err := failedNet.Converge()
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range failedNet.Nodes() {
		for d := 0; d < failed.N(); d++ {
			if rib2[node][d].ASPathLen != ribFresh[node][d].ASPathLen {
				t.Fatalf("incremental RIB differs from fresh at %v→r%d: %d vs %d",
					node, d, rib2[node][d].ASPathLen, ribFresh[node][d].ASPathLen)
			}
		}
	}
}

func TestStudyEndToEnd(t *testing.T) {
	g := ringFabric(t)
	cfg := DefaultStudyConfig()
	cfg.Fractions = []float64{0, 0.05}
	cfg.Flows = 60
	cfg.Samples = 20
	rows, err := Study(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	zero := rows[0]
	if zero.FailedLinks != 0 || !zero.Connected || math.Abs(zero.Paths.MeanDilation-1) > 1e-9 {
		t.Fatalf("zero-failure row = %+v", zero)
	}
	if zero.ReconvRounds != 1 {
		t.Fatalf("zero-failure reconvergence rounds = %d", zero.ReconvRounds)
	}
	some := rows[1]
	if some.FailedLinks == 0 {
		t.Fatal("5% failures removed no links")
	}
	if some.Connected && some.P99FCTms <= 0 {
		t.Fatalf("missing FCT on connected degraded fabric: %+v", some)
	}
	if Table(rows) == "" {
		t.Fatal("empty table")
	}
}

func TestStudyRejectsBadK(t *testing.T) {
	g := ringFabric(t)
	cfg := DefaultStudyConfig()
	cfg.K = 1
	if _, err := Study(g, cfg); err == nil {
		t.Fatal("K=1 accepted")
	}
}
