package resilience

import (
	"fmt"
	"math/rand"

	"spineless/internal/audit"
	"spineless/internal/bgp"
	"spineless/internal/core"
	"spineless/internal/metrics"
	"spineless/internal/netsim"
	"spineless/internal/parallel"
	"spineless/internal/routing"
	"spineless/internal/telemetry"
	"spineless/internal/topology"
	"spineless/internal/workload"
)

// StudyConfig parameterizes a failure sweep on one fabric.
type StudyConfig struct {
	// Fractions are the link-failure rates to sweep (e.g. 0.01, 0.05, 0.10).
	Fractions []float64
	// K is the Shortest-Union K used for routing and BGP (≥2).
	K int
	// Flows is the uniform-workload flow count for the FCT measurement
	// (0 skips the packet simulation).
	Flows int
	// Samples is the rack-pair sample count for diversity measurement.
	Samples int
	// Net configures the packet simulator.
	Net netsim.Config
	// Seed drives failure selection and workloads.
	Seed int64
	// Workers bounds fraction-level parallelism (0 = one per CPU). Every
	// fraction reseeds independently from Seed and shares only immutable
	// base state, so the sweep is bit-identical at any worker count.
	Workers int
	// Audit runs each fraction's FCT replay under the runtime invariant
	// auditor (internal/audit); violations fail that fraction's trial.
	Audit bool
	// Shards > 0 runs each fraction's FCT replay on the sharded
	// conservative-window engine with that many workers. Results are
	// byte-identical at every shard count; incompatible with Audit, which
	// observes the serial engine's event stream.
	Shards int
	// Telemetry, when non-nil, binds one telemetry sink per fraction's FCT
	// replay (fractions share the fabric, so the merged snapshot is
	// well-formed). Purely observational. Incompatible with Shards and
	// with Audit — see core.FCTConfig.Telemetry.
	Telemetry *telemetry.Recorder
}

// DefaultStudyConfig sweeps 1%, 5% and 10% link failures under SU(2).
func DefaultStudyConfig() StudyConfig {
	return StudyConfig{
		Fractions: []float64{0.01, 0.05, 0.10},
		K:         2,
		Flows:     200,
		Samples:   64,
		Net:       netsim.DefaultConfig(),
		Seed:      1,
	}
}

// StudyRow is the outcome at one failure fraction.
type StudyRow struct {
	Fraction     float64
	FailedLinks  int
	Connected    bool
	Paths        PathReport
	Diversity    DiversityReport
	ReconvRounds int // BGP rounds to reconverge from the pre-failure RIB
	P99FCTms     float64
	MedianFCTms  float64
	Incomplete   int
	// Err marks a trial that failed (panic or error) while the rest of the
	// sweep continued; its metric fields are zero.
	Err error
}

// Study sweeps failure fractions on fabric g: for each fraction it fails
// links, measures path dilation and multipath degradation, reconverges the
// §4 BGP control plane from the pre-failure RIB (counting rounds), and —
// when cfg.Flows > 0 — replays a uniform workload through the packet
// simulator on the degraded fabric.
func Study(g *topology.Graph, cfg StudyConfig) ([]StudyRow, error) {
	if cfg.K < 2 {
		return nil, fmt.Errorf("resilience: K must be >= 2")
	}
	if cfg.Shards > 0 && cfg.Telemetry != nil {
		return nil, fmt.Errorf("resilience: Telemetry needs the serial engine's event stream; set Shards=0")
	}
	if cfg.Audit && cfg.Telemetry != nil {
		return nil, fmt.Errorf("resilience: Audit and Telemetry both need the simulator's single tracer slot; run them separately")
	}
	baseFib, err := routing.NewShortestUnion(g, cfg.K)
	if err != nil {
		return nil, err
	}
	baseNet, err := bgp.Build(g, cfg.K)
	if err != nil {
		return nil, err
	}
	baseRib, _, err := baseNet.Converge()
	if err != nil {
		return nil, err
	}

	// Fractions are independent trials: each reseeds from cfg.Seed and
	// reads only the immutable baseFib/baseRib (ConvergeDirty never writes
	// through prev's slices). Each writes its own row slot and error
	// slot, so rows and the TrialErrors order match the serial sweep at
	// any worker count.
	rows := make([]StudyRow, len(cfg.Fractions))
	errs := make([]error, len(cfg.Fractions))
	_ = parallel.ForEach(cfg.Workers, len(cfg.Fractions), func(i int) error {
		f := cfg.Fractions[i]
		rows[i] = StudyRow{Fraction: f}
		err := core.Trial(fmt.Sprintf("fraction %.3f", f), func() error {
			return studyFraction(g, cfg, f, baseFib, baseRib, &rows[i])
		})
		if err != nil {
			// Graceful degradation: the trial failed alone; the sweep
			// continues on the remaining fractions.
			rows[i].Err = err
			errs[i] = err
		}
		return nil
	})
	var terrs core.TrialErrors
	for _, err := range errs {
		if err != nil {
			terrs = append(terrs, err.(core.TrialError))
		}
	}
	if len(terrs) > 0 {
		return rows, terrs
	}
	return rows, nil
}

// studyFraction measures one failure fraction into row. It runs inside
// core.Trial, so panics in the substrates mark the trial failed instead of
// aborting the sweep.
func studyFraction(g *topology.Graph, cfg StudyConfig, f float64, baseFib *routing.Fib, baseRib bgp.Rib, row *StudyRow) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	failed, failures, err := FailRandomLinks(g, f, rng)
	if err != nil {
		return err
	}
	row.FailedLinks = len(failures)
	row.Connected = failed.Connected()

	row.Paths, err = ComparePaths(g, failed)
	if err != nil {
		return err
	}
	if !row.Connected {
		// Partitioned fabric: routing state is still well-defined per
		// component, but the FCT replay would block forever; report the
		// structural metrics only.
		return nil
	}

	// Incremental recomputation against the immutable base state: Rebase
	// shares the unaffected FIB columns, ConvergeDirty reconverges from the
	// failure-incident routers only. Both are bit-identical to full builds.
	failedFib, err := baseFib.Rebase(failed)
	if err != nil {
		return err
	}
	row.Diversity = CompareDiversity(g, failed, baseFib, failedFib, cfg.Samples, 0, rng)

	failedNet, err := bgp.Build(failed, cfg.K)
	if err != nil {
		return err
	}
	dirty := make([]int, 0, 2*len(failures))
	for _, fl := range failures {
		dirty = append(dirty, fl.A, fl.B)
	}
	rib, rounds, err := failedNet.ConvergeDirty(baseRib, dirty)
	if err != nil {
		return err
	}
	row.ReconvRounds = rounds
	if err := bgp.VerifyTheorem1(failedNet, rib); err != nil {
		return fmt.Errorf("resilience: post-failure routing broken: %w", err)
	}

	if cfg.Flows > 0 {
		st, err := replayUniform(failed, failedFib, cfg, rng)
		if err != nil {
			return err
		}
		row.P99FCTms = st.P99MS
		row.MedianFCTms = st.MedianMS
		row.Incomplete = st.Incomplete
	}
	return nil
}

func replayUniform(g *topology.Graph, scheme routing.Scheme, cfg StudyConfig, rng *rand.Rand) (metrics.FCTStats, error) {
	flows, err := workload.GenerateFlows(g, workload.Uniform(len(g.Racks())), workload.GenConfig{
		Flows:    cfg.Flows,
		Sizes:    workload.Pareto{MeanBytes: 30e3, Alpha: 1.05, Cap: 300e3},
		WindowNS: 4e6,
	}, rng)
	if err != nil {
		return metrics.FCTStats{}, err
	}
	if cfg.Shards > 0 {
		if cfg.Audit {
			return metrics.FCTStats{}, fmt.Errorf("resilience: Audit needs the serial engine's event stream; set Shards=0")
		}
		if cfg.Telemetry != nil {
			return metrics.FCTStats{}, fmt.Errorf("resilience: Telemetry needs the serial engine's event stream; set Shards=0")
		}
		ss, err := netsim.NewSharded(g, scheme, cfg.Net, cfg.Shards)
		if err != nil {
			return metrics.FCTStats{}, err
		}
		res, err := ss.Run(flows)
		if err != nil {
			return metrics.FCTStats{}, err
		}
		return metrics.SummarizeFCT(res.FCTNS), nil
	}
	sim, err := netsim.New(g, scheme, cfg.Net)
	if err != nil {
		return metrics.FCTStats{}, err
	}
	var aud *audit.Auditor
	if cfg.Audit {
		if aud, err = audit.Attach(sim, flows); err != nil {
			return metrics.FCTStats{}, err
		}
	}
	if cfg.Telemetry != nil {
		if _, err = cfg.Telemetry.Attach(sim, len(flows)); err != nil {
			return metrics.FCTStats{}, err
		}
	}
	res, err := sim.Run(flows)
	if err != nil {
		return metrics.FCTStats{}, err
	}
	if aud != nil {
		if err := aud.Finish(res); err != nil {
			return metrics.FCTStats{}, err
		}
	}
	return metrics.SummarizeFCT(res.FCTNS), nil
}

// Table renders a failure study. Failed trials render as a single-cell
// error row so partial sweeps stay legible.
func Table(rows []StudyRow) string {
	var t metrics.Table
	t.AddRow("fail%", "links", "connected", "dilation(mean)", "dilation(max)",
		"paths before", "paths after", "min paths", "reconv rounds", "p99 FCT ms")
	for _, r := range rows {
		if r.Err != nil {
			t.AddRow(fmt.Sprintf("%.1f%%", r.Fraction*100), "FAILED: "+r.Err.Error())
			continue
		}
		t.AddRow(
			fmt.Sprintf("%.1f%%", r.Fraction*100),
			fmt.Sprintf("%d", r.FailedLinks),
			fmt.Sprintf("%v", r.Connected),
			fmt.Sprintf("%.3f", r.Paths.MeanDilation),
			fmt.Sprintf("%.2f", r.Paths.MaxDilation),
			fmt.Sprintf("%.1f", r.Diversity.MeanPathsBefore),
			fmt.Sprintf("%.1f", r.Diversity.MeanPathsAfter),
			fmt.Sprintf("%d", r.Diversity.MinPathsAfter),
			fmt.Sprintf("%d", r.ReconvRounds),
			fmt.Sprintf("%.3f", r.P99FCTms),
		)
	}
	return t.String()
}
