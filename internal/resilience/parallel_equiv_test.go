package resilience

import (
	"reflect"
	"testing"
)

// These tests pin the determinism-under-parallelism contract of the failure
// sweeps: the same config at workers=1 and workers=8 must produce identical
// rows (and identical aggregated trial errors, in fraction order).

func TestStudyParallelEqualsSerial(t *testing.T) {
	g := ringFabric(t)
	cfg := DefaultStudyConfig()
	cfg.Fractions = []float64{0, 0.05, 0.10}
	cfg.Flows = 60
	cfg.Samples = 20

	cfg.Workers = 1
	serial, err := Study(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, err := Study(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("Study: workers=8 differs from workers=1\nserial: %+v\npar:    %+v", serial, par)
	}
}

func TestLiveSweepParallelEqualsSerial(t *testing.T) {
	g := ringFabric(t)
	cfg := liveTestConfig()
	cfg.Flows = 120
	// Fraction 1.0 fails (cannot preserve connectivity): the parallel sweep
	// must keep the failed-fraction semantics — error aggregated, row
	// omitted — in the same order as the serial sweep.
	fractions := []float64{0.05, 1.0}

	cfg.Workers = 1
	serialRows, serialErr := LiveSweep(g, cfg, fractions)
	if serialErr == nil {
		t.Fatal("impossible fraction did not surface an error")
	}
	cfg.Workers = 8
	parRows, parErr := LiveSweep(g, cfg, fractions)
	if parErr == nil {
		t.Fatal("impossible fraction did not surface an error in parallel")
	}
	if !reflect.DeepEqual(serialRows, parRows) {
		t.Fatalf("LiveSweep rows: workers=8 differs from workers=1\nserial: %+v\npar:    %+v", serialRows, parRows)
	}
	if serialErr.Error() != parErr.Error() {
		t.Fatalf("LiveSweep errors differ:\nserial: %v\npar:    %v", serialErr, parErr)
	}
}
