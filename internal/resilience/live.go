package resilience

import (
	"fmt"
	"math/rand"

	"spineless/internal/audit"
	"spineless/internal/bgp"
	"spineless/internal/core"
	"spineless/internal/faults"
	"spineless/internal/metrics"
	"spineless/internal/netsim"
	"spineless/internal/parallel"
	"spineless/internal/routing"
	"spineless/internal/telemetry"
	"spineless/internal/topology"
	"spineless/internal/workload"
)

// LiveConfig parameterizes one live fault-injection run: links fail while
// the packet simulation is in flight, the stale Shortest-Union FIB serves
// (and blackholes) traffic until detection plus BGP reconvergence
// completes, then the repaired FIB takes over and live flows re-path.
type LiveConfig struct {
	// K is the Shortest-Union K used for routing and BGP (>= 2).
	K int
	// Fraction is the fraction of distinct switch pairs whose trunks fail
	// (every parallel copy of a drawn pair is cut, modeling a cable-bundle
	// failure).
	Fraction float64
	// FailAtNS is the absolute sim time of the failure.
	FailAtNS int64
	// DetectionDelayNS models session-timeout detection before
	// reconvergence starts.
	DetectionDelayNS int64
	// RoundDelayNS is the wall time ascribed to one synchronous BGP round;
	// the repair lands at FailAt + Detection + rounds × RoundDelay, with
	// rounds measured by bgp.ConvergeFrom on the pre-failure RIB.
	RoundDelayNS int64

	// FlapLinks makes the first n failed pairs flap (down/up cycles)
	// instead of staying down: FlapCycles outages of FlapDownNS separated
	// by FlapUpNS of service.
	FlapLinks  int
	FlapDownNS int64
	FlapUpNS   int64
	FlapCycles int

	// GrayLinks turns n surviving pairs gray at FailAtNS: per-packet loss
	// GrayLoss and rate scaled by GrayRateFactor, never detected and never
	// routed around.
	GrayLinks      int
	GrayLoss       float64
	GrayRateFactor float64

	// Flows and WindowNS shape the uniform workload: WindowNS should
	// extend well past the repair so the After bucket is populated.
	Flows    int
	WindowNS int64

	// PreserveConnectivity redraws cut sets that would partition racks.
	PreserveConnectivity bool

	// Net configures the packet simulator.
	Net netsim.Config
	// Seed drives failure selection, the workload and gray-loss draws.
	Seed int64
	// Workers bounds fraction-level parallelism in LiveSweep (0 = one per
	// CPU). Fractions are fully independent runs, so the sweep is
	// bit-identical at any worker count.
	Workers int
	// Audit runs the packet simulation under the runtime invariant auditor
	// (internal/audit); any violation fails the run. Results are unchanged.
	Audit bool
	// Shards > 0 runs the packet simulation on the sharded
	// conservative-window engine with that many workers. Byte-identical at
	// every shard count >= 1, but a distinct engine from the serial one
	// (DESIGN.md §13 documents the two partition-local departures), so
	// compare sharded runs with sharded runs. Incompatible with Audit.
	Shards int
	// Telemetry, when non-nil, binds a telemetry sink to the run so the
	// outage is observable as time series (blackhole drop rate, link
	// utilization) alongside the end-of-run transient summary. Purely
	// observational. Incompatible with Shards and with Audit — see
	// core.FCTConfig.Telemetry.
	Telemetry *telemetry.Recorder
}

// DefaultLiveConfig fails 5% of trunks 2 ms into a 20 ms run, with 1 ms
// detection and 0.5 ms per reconvergence round.
func DefaultLiveConfig() LiveConfig {
	return LiveConfig{
		K:                2,
		Fraction:         0.05,
		FailAtNS:         2e6,
		DetectionDelayNS: 1e6,
		RoundDelayNS:     5e5,
		FlapDownNS:       1e6,
		FlapUpNS:         1e6,
		FlapCycles:       3,
		GrayLoss:         0.05,
		GrayRateFactor:   1,
		Flows:            400,
		WindowNS:         20e6,
		Net:              netsim.DefaultConfig(),
		Seed:             1,
	}
}

// LiveResult is the measured transient of one live run.
type LiveResult struct {
	Fraction    float64
	FailedPairs int // distinct switch pairs cut (incl. flapping ones)
	FailedLinks int // physical links those pairs carried
	Flapping    int
	Gray        int

	// ReconvRounds and RepairNS are the control-plane side: BGP rounds to
	// re-settle from the pre-failure RIB and the resulting repair time.
	ReconvRounds int
	RepairNS     int64

	// MeasuredBlackholeNS spans first to last packet lost into a down
	// link — the data-plane's own measurement of the outage window.
	MeasuredBlackholeNS int64

	Blackholed   uint64
	GrayDrops    uint64
	Reroutes     uint64
	Timeouts     uint64
	FlowsWithRTO int
	Completed    int
	Incomplete   int

	Transient metrics.TransientReport
}

// RunLive executes one live fault-injection experiment on fabric g.
func RunLive(g *topology.Graph, cfg LiveConfig) (LiveResult, error) {
	if cfg.K < 2 {
		return LiveResult{}, fmt.Errorf("resilience: K must be >= 2")
	}
	if cfg.Flows <= 0 || cfg.WindowNS <= 0 {
		return LiveResult{}, fmt.Errorf("resilience: live run needs flows and a positive window")
	}
	if cfg.FailAtNS < 0 || cfg.DetectionDelayNS < 0 || cfg.RoundDelayNS < 0 {
		return LiveResult{}, fmt.Errorf("resilience: negative fault timing")
	}
	if cfg.Shards > 0 && cfg.Telemetry != nil {
		return LiveResult{}, fmt.Errorf("resilience: Telemetry needs the serial engine's event stream; set Shards=0")
	}
	if cfg.Audit && cfg.Telemetry != nil {
		return LiveResult{}, fmt.Errorf("resilience: Audit and Telemetry both need the simulator's single tracer slot; run them separately")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	baseFib, err := routing.NewShortestUnion(g, cfg.K)
	if err != nil {
		return LiveResult{}, err
	}
	baseNet, err := bgp.Build(g, cfg.K)
	if err != nil {
		return LiveResult{}, err
	}
	baseRib, _, err := baseNet.Converge()
	if err != nil {
		return LiveResult{}, err
	}

	failedG, pairs, removed, err := failRandomPairs(g, cfg.Fraction, rng, cfg.PreserveConnectivity)
	if err != nil {
		return LiveResult{}, err
	}
	res := LiveResult{Fraction: cfg.Fraction, FailedPairs: len(pairs), FailedLinks: removed}

	// The failed fabric differs from g only at the drawn pairs, so both the
	// FIB and the BGP reconvergence go through the incremental paths: Rebase
	// shares every unaffected per-destination column, and ConvergeDirty
	// seeds the dirty set with just the failure-incident routers. Both are
	// bit-identical (state and round counts) to the from-scratch versions.
	failedFib, err := baseFib.Rebase(failedG)
	if err != nil {
		return LiveResult{}, err
	}
	failedNet, err := bgp.Build(failedG, cfg.K)
	if err != nil {
		return LiveResult{}, err
	}
	dirty := make([]int, 0, 2*len(pairs))
	for _, p := range pairs {
		dirty = append(dirty, p.A, p.B)
	}
	rib, rounds, err := failedNet.ConvergeDirty(baseRib, dirty)
	if err != nil {
		return LiveResult{}, err
	}
	if failedG.Connected() {
		if err := bgp.VerifyTheorem1(failedNet, rib); err != nil {
			return LiveResult{}, fmt.Errorf("resilience: post-failure routing broken: %w", err)
		}
	}
	res.ReconvRounds = rounds
	res.RepairNS = cfg.FailAtNS + cfg.DetectionDelayNS + int64(rounds)*cfg.RoundDelayNS

	tv, err := routing.NewTimeVarying(
		routing.Phase{StartNS: 0, Scheme: baseFib},
		routing.Phase{StartNS: res.RepairNS, Scheme: failedFib},
	)
	if err != nil {
		return LiveResult{}, err
	}

	sched := &faults.Schedule{Seed: cfg.Seed}
	flapping := min(cfg.FlapLinks, len(pairs))
	res.Flapping = flapping
	for i, p := range pairs {
		if i < flapping && cfg.FlapCycles > 0 {
			sched.Flap(p.A, p.B, cfg.FailAtNS, cfg.FlapDownNS, cfg.FlapUpNS, cfg.FlapCycles)
		} else {
			sched.Cut(cfg.FailAtNS, p.A, p.B)
		}
	}
	grays := pickGrayPairs(failedG, cfg.GrayLinks, rng)
	res.Gray = len(grays)
	for _, p := range grays {
		sched.Gray(cfg.FailAtNS, p.A, p.B, cfg.GrayLoss, cfg.GrayRateFactor)
	}

	flows, err := workload.GenerateFlows(g, workload.Uniform(len(g.Racks())), workload.GenConfig{
		Flows:    cfg.Flows,
		Sizes:    workload.Pareto{MeanBytes: 30e3, Alpha: 1.05, Cap: 300e3},
		WindowNS: cfg.WindowNS,
	}, rng)
	if err != nil {
		return LiveResult{}, err
	}

	var out netsim.Results
	if cfg.Shards > 0 {
		if cfg.Audit {
			return LiveResult{}, fmt.Errorf("resilience: Audit needs the serial engine; set Shards=0")
		}
		ss, err := netsim.NewSharded(g, tv, cfg.Net, cfg.Shards)
		if err != nil {
			return LiveResult{}, err
		}
		if err := ss.InstallFaults(sched); err != nil {
			return LiveResult{}, err
		}
		if out, err = ss.Run(flows); err != nil {
			return LiveResult{}, err
		}
	} else {
		sim, err := netsim.New(g, tv, cfg.Net)
		if err != nil {
			return LiveResult{}, err
		}
		if err := sim.InstallFaults(sched); err != nil {
			return LiveResult{}, err
		}
		var aud *audit.Auditor
		if cfg.Audit {
			if aud, err = audit.Attach(sim, flows); err != nil {
				return LiveResult{}, err
			}
		}
		if cfg.Telemetry != nil {
			if _, err = cfg.Telemetry.Attach(sim, len(flows)); err != nil {
				return LiveResult{}, err
			}
		}
		if out, err = sim.Run(flows); err != nil {
			return LiveResult{}, err
		}
		if aud != nil {
			if err := aud.Finish(out); err != nil {
				return LiveResult{}, fmt.Errorf("resilience: live run at fraction %.3f: %w", cfg.Fraction, err)
			}
		}
	}

	res.Blackholed = out.Stats.Blackholed
	res.GrayDrops = out.Stats.GrayDrops
	res.Reroutes = out.Stats.Reroutes
	res.Timeouts = out.Stats.Timeouts
	res.FlowsWithRTO = out.FlowsWithRTO
	res.Completed = out.Completed
	res.Incomplete = len(flows) - out.Completed
	if out.BlackholeFirstNS >= 0 {
		res.MeasuredBlackholeNS = out.BlackholeLastNS - out.BlackholeFirstNS
	}
	starts := make([]int64, len(flows))
	for i, f := range flows {
		starts[i] = f.StartNS
	}
	res.Transient = metrics.SummarizeTransient(starts, out.FCTNS, cfg.FailAtNS, res.RepairNS)
	return res, nil
}

// LiveSweep runs RunLive at each failure fraction, isolating trials with
// core.Trial so one pathological draw (e.g. a partitioned fabric) marks
// that fraction failed and the sweep continues. The returned error, if
// non-nil, is a core.TrialErrors listing the failed fractions; rows for
// successful fractions are always returned.
func LiveSweep(g *topology.Graph, cfg LiveConfig, fractions []float64) ([]LiveResult, error) {
	// Each fraction is a self-contained RunLive (own rng, own FIBs); slots
	// are filled by index and compacted afterwards, preserving the serial
	// semantics exactly: failed fractions contribute a TrialError and no
	// row, and both lists keep fraction order at any worker count.
	results := make([]LiveResult, len(fractions))
	errs := make([]error, len(fractions))
	_ = parallel.ForEach(cfg.Workers, len(fractions), func(i int) error {
		c := cfg
		c.Fraction = fractions[i]
		errs[i] = core.Trial(fmt.Sprintf("fraction %.3f", fractions[i]), func() error {
			var e error
			results[i], e = RunLive(g, c)
			return e
		})
		return nil
	})
	var rows []LiveResult
	var terrs core.TrialErrors
	for i, err := range errs {
		if err != nil {
			terrs = append(terrs, err.(core.TrialError))
			continue
		}
		rows = append(rows, results[i])
	}
	if len(terrs) > 0 {
		return rows, terrs
	}
	return rows, nil
}

// failRandomPairs cuts a fraction of the distinct linked switch pairs,
// removing every parallel copy of each drawn pair (a trunk failure). When
// preserve is set, draws that disconnect any rack pair are rejected and
// redrawn, deterministically consuming the rng.
func failRandomPairs(g *topology.Graph, fraction float64, rng *rand.Rand, preserve bool) (*topology.Graph, []Failure, int, error) {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	pairs := distinctPairs(g)
	k := int(float64(len(pairs))*fraction + 0.5)
	if k > len(pairs) {
		k = len(pairs)
	}
	attempts := 1
	if preserve {
		attempts = 100
	}
	for try := 0; try < attempts; try++ {
		rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
		out := g.Clone()
		out.Name = fmt.Sprintf("%s-live-f%.3f", g.Name, fraction)
		removed := 0
		for _, p := range pairs[:k] {
			for out.RemoveLink(p.A, p.B) {
				removed++
			}
		}
		if preserve && !racksConnected(out) {
			continue
		}
		return out, append([]Failure(nil), pairs[:k]...), removed, nil
	}
	return nil, nil, 0, fmt.Errorf("resilience: no connectivity-preserving cut of %d pairs found", k)
}

// pickGrayPairs selects n distinct surviving linked pairs to turn gray.
func pickGrayPairs(g *topology.Graph, n int, rng *rand.Rand) []Failure {
	if n <= 0 {
		return nil
	}
	pairs := distinctPairs(g)
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	if n > len(pairs) {
		n = len(pairs)
	}
	return pairs[:n]
}

func distinctPairs(g *topology.Graph) []Failure {
	var out []Failure
	seen := make(map[[2]int]bool)
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if v < w && !seen[[2]int{v, w}] {
				seen[[2]int{v, w}] = true
				out = append(out, Failure{A: v, B: w})
			}
		}
	}
	return out
}

// LiveTable renders a live sweep.
func LiveTable(rows []LiveResult) string {
	var t metrics.Table
	t.AddRow("fail%", "pairs", "links", "reconv", "repair ms", "blackhole ms", "blackholed",
		"gray drops", "rto flows", "rerouted", "p99 during ms", "p99 after ms", "inflation", "incomplete")
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%.1f%%", r.Fraction*100),
			fmt.Sprintf("%d", r.FailedPairs),
			fmt.Sprintf("%d", r.FailedLinks),
			fmt.Sprintf("%d", r.ReconvRounds),
			fmt.Sprintf("%.2f", float64(r.RepairNS)/1e6),
			fmt.Sprintf("%.2f", float64(r.MeasuredBlackholeNS)/1e6),
			fmt.Sprintf("%d", r.Blackholed),
			fmt.Sprintf("%d", r.GrayDrops),
			fmt.Sprintf("%d", r.FlowsWithRTO),
			fmt.Sprintf("%d", r.Reroutes),
			fmt.Sprintf("%.3f", r.Transient.During.P99MS),
			fmt.Sprintf("%.3f", r.Transient.After.P99MS),
			fmt.Sprintf("%.2f×", r.Transient.InflationP99),
			fmt.Sprintf("%d", r.Incomplete),
		)
	}
	return t.String()
}
