package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	if got := Percentile(vals, 50); got != 3 {
		t.Fatalf("p50 = %v, want 3", got)
	}
	if got := Percentile(vals, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(vals, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(vals, 25); got != 2 {
		t.Fatalf("p25 = %v, want 2", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile not NaN")
	}
	// Interpolation: p50 of {1,2} = 1.5.
	if got := Percentile([]float64{2, 1}, 50); got != 1.5 {
		t.Fatalf("p50 of pair = %v, want 1.5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	vals := []float64{3, 1, 2}
	Percentile(vals, 50)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestPercentileQuickMonotone(t *testing.T) {
	f := func(raw []float64, aRaw, bRaw uint8) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		a, b := float64(aRaw)*100/255, float64(bRaw)*100/255
		if a > b {
			a, b = b, a
		}
		pa, pb := Percentile(vals, a), Percentile(vals, b)
		if pa > pb {
			return false
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		return pa >= sorted[0] && pb <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeFCT(t *testing.T) {
	fcts := []int64{1e6, 2e6, 3e6, -1, 4e6} // ms: 1,2,3,4 + one incomplete
	st := SummarizeFCT(fcts)
	if st.Count != 4 || st.Incomplete != 1 {
		t.Fatalf("count=%d incomplete=%d", st.Count, st.Incomplete)
	}
	if st.MedianMS != 2.5 || st.MaxMS != 4 || st.MeanMS != 2.5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.P99MS < 3.9 || st.P99MS > 4 {
		t.Fatalf("p99 = %v", st.P99MS)
	}
}

func TestSummarizeFCTAllIncomplete(t *testing.T) {
	st := SummarizeFCT([]int64{-1, -1})
	if st.Count != 0 || st.Incomplete != 2 || !math.IsNaN(st.MedianMS) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTableAlignment(t *testing.T) {
	var tb Table
	tb.AddRow("name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "22")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("no header rule:\n%s", s)
	}
	if !strings.Contains(lines[3], "longer-name  22") {
		t.Fatalf("misaligned:\n%s", s)
	}
	var empty Table
	if empty.String() != "" {
		t.Fatal("empty table should render empty")
	}
}

func TestTableAddRowf(t *testing.T) {
	var tb Table
	tb.AddRowf("%.2f", 1.0, 2.5)
	if !strings.Contains(tb.String(), "1.00  2.50") {
		t.Fatalf("AddRowf output: %q", tb.String())
	}
}

func TestHeatmap(t *testing.T) {
	h := NewHeatmap("test", "servers", "clients", []int{10, 20}, []int{5, 15})
	h.Set(0, 0, 0.5)
	h.Set(1, 0, 1.1)
	h.Set(0, 1, 1.5)
	h.Set(1, 1, 2.0)
	csv := h.CSV()
	if !strings.Contains(csv, "clients\\servers,10,20") {
		t.Fatalf("csv header: %q", csv)
	}
	if !strings.Contains(csv, "5,0.5000,1.1000") {
		t.Fatalf("csv row: %q", csv)
	}
	ascii := h.String()
	for _, g := range []string{". ", "+ ", "* ", "# "} {
		if !strings.Contains(ascii, g) {
			t.Fatalf("ascii missing glyph %q:\n%s", g, ascii)
		}
	}
	// Unset cell renders as NaN.
	h2 := NewHeatmap("", "x", "y", []int{1}, []int{1})
	if !strings.Contains(h2.String(), "? ") {
		t.Fatal("NaN glyph missing")
	}
}

// TestHeatmapCSVUnsetCells is the regression test for the NaN-cell bug:
// a partially filled heatmap used to render unset cells as literal "NaN",
// which poisons spreadsheet and numeric-CSV readers. Unset cells must
// become empty fields while set cells keep their numeric form.
func TestHeatmapCSVUnsetCells(t *testing.T) {
	h := NewHeatmap("partial", "t_us", "link", []int{100, 200, 300}, []int{7, 9})
	h.Set(0, 0, 0.25)
	h.Set(2, 1, 1.0)
	csv := h.CSV()
	if strings.Contains(csv, "NaN") {
		t.Fatalf("CSV leaks literal NaN:\n%s", csv)
	}
	if !strings.Contains(csv, "7,0.2500,,\n") {
		t.Fatalf("row 7 should keep its set cell and empty the rest:\n%s", csv)
	}
	if !strings.Contains(csv, "9,,,1.0000\n") {
		t.Fatalf("row 9 should have two empty fields then the set cell:\n%s", csv)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(4, 2) != 2 {
		t.Fatal("ratio broken")
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Fatal("divide by zero not NaN")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if c.At(0) != 0 || c.At(2) != 0.5 || c.At(4) != 1 || c.At(10) != 1 {
		t.Fatalf("At values wrong: %v %v %v %v", c.At(0), c.At(2), c.At(4), c.At(10))
	}
	if c.Quantile(0.5) != 2.5 {
		t.Fatalf("median = %v", c.Quantile(0.5))
	}
	xs, ys := c.Points(4)
	if len(xs) != 4 || xs[0] != 1 || xs[3] != 4 {
		t.Fatalf("points xs = %v", xs)
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1] {
			t.Fatalf("CDF not monotone: %v", ys)
		}
	}
	if !math.IsNaN(NewCDF(nil).At(1)) {
		t.Fatal("empty CDF should be NaN")
	}
	// Degenerate single-value sample.
	xs, ys = NewCDF([]float64{5, 5}).Points(3)
	if len(xs) != 2 || ys[0] != 1 {
		t.Fatalf("degenerate points: %v %v", xs, ys)
	}
}

func TestCDFQuickMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		c := NewCDF(vals)
		prev := -1.0
		for _, v := range vals {
			p := c.At(v)
			if p <= 0 || p > 1 {
				return false
			}
			_ = prev
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableUnicodeAlignment(t *testing.T) {
	// "λ/ε" is 3 runes but 6 UTF-8 bytes: byte-counted widths would pad the
	// column 3 cells too wide and misalign every following column.
	var tb Table
	tb.AddRow("λ/ε", "x")
	tb.AddRow("abc", "y")
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), tb.String())
	}
	header, row := lines[0], lines[2]
	if hx, rx := strings.IndexRune(header, 'x'), strings.IndexRune(row, 'y'); hx < 0 || rx < 0 ||
		len([]rune(header[:hx])) != len([]rune(row[:strings.IndexRune(row, 'y')])) {
		t.Fatalf("second column misaligned (x at %d, y at %d):\n%s", hx, rx, tb.String())
	}
	_ = row
}

func TestHeatmapEmptyTicksDoNotPanic(t *testing.T) {
	for _, h := range []*Heatmap{
		NewHeatmap("t", "x", "y", nil, nil),
		NewHeatmap("t", "x", "y", []int{1, 2}, nil),
		NewHeatmap("t", "x", "y", nil, []int{1, 2}),
	} {
		if s := h.String(); s == "" {
			t.Fatalf("empty heatmap rendered nothing (x=%d y=%d ticks)", len(h.XTicks), len(h.YTicks))
		}
		if c := h.CSV(); !strings.HasPrefix(c, "y\\x") {
			t.Fatalf("empty heatmap CSV lost its header: %q", c)
		}
	}
}
