package metrics

import (
	"math"
	"testing"
)

func TestSummarizeTransientBuckets(t *testing.T) {
	// Window [100, 200): flows at 50 (before), 150 (during), 250 (after).
	starts := []int64{50, 150, 250, 199, 200}
	fcts := []int64{1e6, 4e6, 2e6, -1, 2e6}
	rep := SummarizeTransient(starts, fcts, 100, 200)
	if rep.Before.Count != 1 || rep.During.Count != 1 || rep.After.Count != 2 {
		t.Fatalf("bucket counts: before=%d during=%d after=%d",
			rep.Before.Count, rep.During.Count, rep.After.Count)
	}
	if rep.During.Incomplete != 1 {
		t.Fatalf("incomplete during = %d, want 1", rep.During.Incomplete)
	}
	// During median 4 ms vs after median 2 ms → 2× inflation.
	if math.Abs(rep.InflationP50-2) > 1e-9 {
		t.Fatalf("p50 inflation = %v, want 2", rep.InflationP50)
	}
	if math.Abs(rep.InflationP99-2) > 1e-9 {
		t.Fatalf("p99 inflation = %v, want 2", rep.InflationP99)
	}
}

func TestSummarizeTransientEmptyBuckets(t *testing.T) {
	rep := SummarizeTransient([]int64{10}, []int64{1e6}, 100, 200)
	if rep.Before.Count != 1 || rep.During.Count != 0 || rep.After.Count != 0 {
		t.Fatalf("bucket counts wrong: %+v", rep)
	}
	if !math.IsNaN(rep.InflationP50) || !math.IsNaN(rep.InflationP99) {
		t.Fatalf("inflation over empty buckets should be NaN, got %v / %v",
			rep.InflationP50, rep.InflationP99)
	}
}
