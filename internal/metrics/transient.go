package metrics

import "math"

// TransientReport splits per-flow completion times around a disruption
// window (failure → reconvergence complete) to expose the transient cost
// that steady-state comparisons hide: flows launched into the stale FIB
// during the window pay blackhole + RTO penalties that flows starting after
// the repair never see.
type TransientReport struct {
	// Before/During/After summarize flows by start time: before the window,
	// inside [windowStart, windowEnd), and at or after windowEnd.
	Before, During, After FCTStats

	// InflationP50 and InflationP99 are the During/After percentile ratios
	// (NaN when either bucket is empty) — the measured FCT cost of living
	// through the reconvergence window.
	InflationP50, InflationP99 float64
}

// SummarizeTransient buckets flows by their start time relative to the
// disruption window and reports per-bucket FCT statistics plus the
// during-vs-after inflation. startNS and fctNS are parallel slices; fctNS
// entries of -1 mark incomplete flows (counted, excluded from percentiles).
func SummarizeTransient(startNS, fctNS []int64, windowStartNS, windowEndNS int64) TransientReport {
	var before, during, after []int64
	for i, st := range startNS {
		switch {
		case st < windowStartNS:
			before = append(before, fctNS[i])
		case st < windowEndNS:
			during = append(during, fctNS[i])
		default:
			after = append(after, fctNS[i])
		}
	}
	rep := TransientReport{
		Before: SummarizeFCT(before),
		During: SummarizeFCT(during),
		After:  SummarizeFCT(after),
	}
	rep.InflationP50 = inflation(rep.During.MedianMS, rep.After.MedianMS)
	rep.InflationP99 = inflation(rep.During.P99MS, rep.After.P99MS)
	return rep
}

func inflation(during, after float64) float64 {
	if math.IsNaN(during) || math.IsNaN(after) || after <= 0 {
		return math.NaN()
	}
	return during / after
}
