// Package metrics provides the small statistics and rendering toolkit the
// experiment harnesses share: percentiles, FCT summaries, aligned tables
// and heatmaps (Figure 5 is a heatmap; Figures 4 and 6 are built from FCT
// percentiles).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"unicode/utf8"
)

// Percentile returns the p-th percentile (0..100) of values using linear
// interpolation between order statistics. It returns NaN for empty input.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// FCTStats summarizes flow completion times.
type FCTStats struct {
	Count      int
	Incomplete int
	MedianMS   float64
	P99MS      float64
	MeanMS     float64
	MaxMS      float64
}

// SummarizeFCT converts per-flow nanosecond FCTs (-1 = incomplete) into
// millisecond statistics. Incomplete flows are counted but excluded from
// the percentiles.
func SummarizeFCT(fctNS []int64) FCTStats {
	var done []float64
	st := FCTStats{}
	for _, v := range fctNS {
		if v < 0 {
			st.Incomplete++
			continue
		}
		done = append(done, float64(v)/1e6)
	}
	st.Count = len(done)
	if len(done) == 0 {
		st.MedianMS, st.P99MS, st.MeanMS, st.MaxMS = math.NaN(), math.NaN(), math.NaN(), math.NaN()
		return st
	}
	st.MedianMS = Percentile(done, 50)
	st.P99MS = Percentile(done, 99)
	sum, mx := 0.0, 0.0
	for _, v := range done {
		sum += v
		mx = math.Max(mx, v)
	}
	st.MeanMS = sum / float64(len(done))
	st.MaxMS = mx
	return st
}

// Table renders rows of cells as an aligned text table. The first row is
// the header, separated by a rule.
type Table struct {
	rows [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row where each cell is a formatted value.
func (t *Table) AddRowf(format string, cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf(format, c)
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	if len(t.rows) == 0 {
		return ""
	}
	widths := map[int]int{}
	for _, r := range t.rows {
		for i, c := range r {
			// Rune count, not byte length: fmt's %-*s pads to a rune
			// width, so byte-counted widths misalign non-ASCII headers.
			if n := utf8.RuneCountInString(c); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	for ri, r := range t.rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
		if ri == 0 {
			total := 0
			for i := 0; i < len(r); i++ {
				total += widths[i] + 2
			}
			b.WriteString(strings.Repeat("-", max(total-2, 1)))
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Heatmap is a 2D grid of values with axis tick labels — the shape of the
// paper's Figure 5 panels.
type Heatmap struct {
	Title  string
	XLabel string
	YLabel string
	XTicks []int
	YTicks []int
	// Cells[y][x] follows YTicks/XTicks ordering.
	Cells [][]float64
}

// NewHeatmap allocates a heatmap with NaN cells.
func NewHeatmap(title, xlabel, ylabel string, xticks, yticks []int) *Heatmap {
	cells := make([][]float64, len(yticks))
	for i := range cells {
		cells[i] = make([]float64, len(xticks))
		for j := range cells[i] {
			cells[i][j] = math.NaN()
		}
	}
	return &Heatmap{Title: title, XLabel: xlabel, YLabel: ylabel,
		XTicks: append([]int(nil), xticks...), YTicks: append([]int(nil), yticks...), Cells: cells}
}

// Set assigns the cell at (xi, yi) tick indices.
func (h *Heatmap) Set(xi, yi int, v float64) { h.Cells[yi][xi] = v }

// empty reports whether the heatmap has no cells to render; String and CSV
// degrade to a header-only rendering rather than indexing empty tick slices.
func (h *Heatmap) empty() bool {
	return len(h.XTicks) == 0 || len(h.YTicks) == 0
}

// CSV renders the heatmap as comma-separated values with axis headers.
func (h *Heatmap) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\\%s", h.YLabel, h.XLabel)
	if h.empty() {
		b.WriteString("\n")
		return b.String()
	}
	for _, x := range h.XTicks {
		fmt.Fprintf(&b, ",%d", x)
	}
	b.WriteString("\n")
	for yi, y := range h.YTicks {
		fmt.Fprintf(&b, "%d", y)
		for xi := range h.XTicks {
			// Unset cells (NaN since NewHeatmap) render as empty fields:
			// a literal "NaN" poisons spreadsheet and numeric-CSV readers.
			if v := h.Cells[yi][xi]; math.IsNaN(v) {
				b.WriteString(",")
			} else {
				fmt.Fprintf(&b, ",%.4f", v)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// String renders an ASCII view: one glyph per cell bucketed by value, so
// the ratio structure of Figure 5 is visible in a terminal.
func (h *Heatmap) String() string {
	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "%s\n", h.Title)
	}
	fmt.Fprintf(&b, "%s ↓ / %s →\n", h.YLabel, h.XLabel)
	if h.empty() {
		b.WriteString("(no cells)\n")
		return b.String()
	}
	for yi := len(h.YTicks) - 1; yi >= 0; yi-- {
		fmt.Fprintf(&b, "%6d |", h.YTicks[yi])
		for xi := range h.XTicks {
			b.WriteString(glyph(h.Cells[yi][xi]))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%6s  ", "")
	for range h.XTicks {
		b.WriteString("--")
	}
	fmt.Fprintf(&b, "\n%6s  %d..%d\n", "", h.XTicks[0], h.XTicks[len(h.XTicks)-1])
	b.WriteString("legend: '. '<0.75  '- '<1.0  '+ '<1.25  '* '<1.75  '# '>=1.75  '? 'NaN\n")
	return b.String()
}

func glyph(v float64) string {
	switch {
	case math.IsNaN(v):
		return "? "
	case v < 0.75:
		return ". "
	case v < 1.0:
		return "- "
	case v < 1.25:
		return "+ "
	case v < 1.75:
		return "* "
	default:
		return "# "
	}
}

// Ratio returns a/b, or NaN when b is zero.
func Ratio(a, b float64) float64 {
	// Exact zero is the spec here: any other b must divide through.
	if b == 0 { //lint:allow floateq
		return math.NaN()
	}
	return a / b
}

// CDF is an empirical cumulative distribution over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds the empirical CDF of the samples (copied and sorted).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (q in [0,1]).
func (c *CDF) Quantile(q float64) float64 {
	return Percentile(c.sorted, q*100)
}

// Points returns n evenly spaced (x, P(X<=x)) pairs spanning the sample —
// ready for a line chart of the FCT distribution.
func (c *CDF) Points(n int) (xs, ys []float64) {
	if len(c.sorted) == 0 || n < 2 {
		return nil, nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	if hi <= lo {
		return []float64{lo, hi}, []float64{1, 1}
	}
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		xs = append(xs, x)
		ys = append(ys, c.At(x))
	}
	return xs, ys
}
