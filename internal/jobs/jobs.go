package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"spineless/internal/store"
	"spineless/internal/telemetry"
)

// State is a job's lifecycle position. The machine is strictly forward:
//
//	pending → running → done | failed
//	pending → cancelled            (cancelled before a worker claimed it)
//	running → cancelled            (context cancelled mid-run)
//
// plus the short-circuit path for cache hits, which are born done.
type State string

const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// ErrQueueFull is returned by Submit when the bounded queue has no room;
// the HTTP layer maps it to 503 + Retry-After.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrOverloaded is returned by Submit when admission control sheds the
// request: the queue or in-flight population crossed its watermark, so the
// manager refuses new work *before* the queue saturates. The HTTP layer
// maps it to 429 + Retry-After — clients back off while already-admitted
// jobs keep their latency instead of everyone collapsing together.
var ErrOverloaded = errors.New("jobs: overloaded, shedding new submissions")

// ErrDraining is returned by Submit once shutdown has begun.
var ErrDraining = errors.New("jobs: shutting down")

// Event is one NDJSON progress record streamed to watchers.
type Event struct {
	Job       string `json:"job"`
	Hash      string `json:"hash"`
	State     State  `json:"state"`
	Done      int    `json:"done_trials"`
	Total     int    `json:"total_trials"`
	FromCache bool   `json:"from_cache,omitempty"`
	Error     string `json:"error,omitempty"`
}

// Status is a point-in-time job snapshot (the GET /v1/jobs/{id} body).
type Status struct {
	ID        string `json:"id"`
	Hash      string `json:"hash"`
	State     State  `json:"state"`
	Spec      Spec   `json:"spec"`
	Done      int    `json:"done_trials"`
	Total     int    `json:"total_trials"`
	FromCache bool   `json:"from_cache,omitempty"`
	Error     string `json:"error,omitempty"`
	// ElapsedMS is wall time from submission to now (or to completion).
	ElapsedMS int64 `json:"elapsed_ms"`
}

// Job is one submitted experiment.
type Job struct {
	ID   string
	Hash string
	Spec Spec // normalized

	m *Manager

	mu          sync.Mutex
	state       State
	done, total int
	fromCache   bool
	result      json.RawMessage
	errMsg      string
	created     time.Time
	finished    time.Time
	cancelRun   context.CancelFunc // set while running
	subs        map[int]chan Event
	nextSub     int
	terminal    chan struct{}
}

// Config tunes a Manager.
type Config struct {
	// QueueDepth bounds the pending-job queue (default 64). Submissions
	// beyond it fail fast with ErrQueueFull instead of queueing unboundedly.
	QueueDepth int
	// Executors is the number of jobs run concurrently (default 1: one
	// experiment at a time, each internally parallel across TrialWorkers).
	Executors int
	// TrialWorkers bounds each job's internal trial parallelism
	// (0 = one per CPU). A pure throughput knob; never affects results.
	TrialWorkers int
	// ShedDepth is the admission-control watermark on queue depth: once the
	// pending queue holds at least this many jobs, new submissions are shed
	// with ErrOverloaded instead of being allowed to fill the queue to the
	// ErrQueueFull wall (0 = shedding off). Keep it below QueueDepth so
	// well-behaved clients see 429 and back off before anyone sees 503.
	ShedDepth int
	// MaxInflight caps the pending+running job population (the singleflight
	// set); beyond it new distinct specs are shed with ErrOverloaded
	// (0 = uncapped). Dedup onto an in-flight job and cache hits are never
	// shed — they add no load.
	MaxInflight int
	// AuditEvery re-executes every Nth cache hit and compares the fresh
	// result byte-for-byte against the stored one (0 = off). A mismatch
	// invalidates the entry and increments the audit_mismatch counter —
	// the runtime proof that a hit is semantically identical to a re-run.
	AuditEvery int
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Metrics is a snapshot of manager counters for the /metrics endpoint.
type Metrics struct {
	QueueDepth    int
	QueueCapacity int
	Submitted     uint64
	Deduped       uint64
	Rejected      uint64
	Shed          uint64
	ByState       map[State]uint64 // terminal tallies plus current pending/running
	CacheHits     uint64
	CacheMisses   uint64
	Audits        uint64
	AuditSkipped  uint64
	AuditMismatch uint64
	SimEvents     uint64
	BusySeconds   float64
	// LatencyBuckets[i] counts completed jobs with run latency ≤
	// LatencyBoundsMS[i] (cumulative, Prometheus histogram convention);
	// the final bucket is +Inf.
	LatencyBoundsMS []float64
	LatencyBuckets  []uint64
	LatencyCount    uint64
	LatencySumMS    float64
}

// LatencyBoundsMS are the histogram bucket upper bounds in milliseconds.
var LatencyBoundsMS = []float64{10, 30, 100, 300, 1000, 3000, 10000, 30000, 100000}

// Manager owns the queue, the executors and the result store.
type Manager struct {
	st  *store.Store
	cfg Config
	hub *telemetry.Hub

	ctx    context.Context
	stop   context.CancelFunc
	wg     sync.WaitGroup
	queue  chan *Job
	drainM sync.Mutex // serializes Submit's enqueue against Drain's close
	drain  bool

	mu          sync.Mutex
	seq         int
	jobs        map[string]*Job
	inflight    map[string]*Job // pending/running jobs by spec hash (singleflight)
	auditActive bool
	submitted   uint64
	deduped     uint64
	rejected    uint64
	shed        uint64
	terminals   map[State]uint64
	hits        uint64
	misses      uint64
	audits      uint64
	auditSkip   uint64
	auditBad    uint64
	simEvents   uint64
	busyNS      int64
	latBkt      []uint64
	latCount    uint64
	latSumMS    float64
}

// New builds a Manager over st (which may be nil: every submission then
// runs fresh and nothing is cached) and starts its executors.
func New(st *store.Store, cfg Config) *Manager {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Executors <= 0 {
		cfg.Executors = 1
	}
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		st:        st,
		cfg:       cfg,
		hub:       telemetry.NewHub(),
		ctx:       ctx,
		stop:      stop,
		queue:     make(chan *Job, cfg.QueueDepth),
		jobs:      map[string]*Job{},
		inflight:  map[string]*Job{},
		terminals: map[State]uint64{},
		latBkt:    make([]uint64, len(LatencyBoundsMS)+1),
	}
	for i := 0; i < cfg.Executors; i++ {
		m.wg.Add(1)
		go m.executor()
	}
	return m
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// Submit validates, normalizes and hashes sp, then either returns the
// in-flight job already computing that hash (singleflight), a born-done job
// served from the cache, or a freshly enqueued pending job. The bool
// reports whether the result was served from the cache.
func (m *Manager) Submit(sp Spec) (*Job, bool, error) {
	sp = sp.Normalized()
	if err := sp.Validate(); err != nil {
		return nil, false, err
	}
	hash, err := sp.Hash()
	if err != nil {
		return nil, false, err
	}

	m.mu.Lock()
	if j := m.inflight[hash]; j != nil {
		m.deduped++
		m.mu.Unlock()
		return j, false, nil
	}
	m.mu.Unlock()

	// Cache lookup happens outside m.mu: store.Get does disk I/O.
	if m.st != nil {
		if e, ok := m.st.Get(hash); ok {
			j := m.newJob(hash, sp)
			j.state = StateDone
			j.fromCache = true
			j.result = e.Result
			j.done, j.total = totalTrials(sp), totalTrials(sp)
			j.finished = time.Now()
			close(j.terminal)
			m.mu.Lock()
			m.hits++
			m.terminals[StateDone]++
			m.jobs[j.ID] = j
			hitNo := m.hits
			m.mu.Unlock()
			m.logf("job %s: cache hit for %s", j.ID, shortHash(hash))
			m.maybeAudit(hitNo, hash, sp)
			return j, true, nil
		}
		m.mu.Lock()
		m.misses++
		m.mu.Unlock()
	}

	// Admission control: shed fresh work at the watermarks, after the free
	// paths (dedup, cache hit) have had their chance. Shedding here — with
	// queue headroom still left — is what keeps admitted jobs' latency
	// bounded under overload; the ErrQueueFull wall below is the backstop.
	if depth := len(m.queue); m.cfg.ShedDepth > 0 && depth >= m.cfg.ShedDepth {
		m.shedOne(hash, fmt.Sprintf("queue depth %d >= watermark %d", depth, m.cfg.ShedDepth))
		return nil, false, ErrOverloaded
	}
	if m.cfg.MaxInflight > 0 {
		m.mu.Lock()
		n := len(m.inflight)
		m.mu.Unlock()
		if n >= m.cfg.MaxInflight {
			m.shedOne(hash, fmt.Sprintf("inflight %d >= cap %d", n, m.cfg.MaxInflight))
			return nil, false, ErrOverloaded
		}
	}

	j := m.newJob(hash, sp)
	j.state = StatePending
	j.total = totalTrials(sp)

	m.drainM.Lock()
	if m.drain {
		m.drainM.Unlock()
		return nil, false, ErrDraining
	}
	select {
	case m.queue <- j:
		m.drainM.Unlock()
	default:
		m.drainM.Unlock()
		m.mu.Lock()
		m.rejected++
		m.mu.Unlock()
		return nil, false, ErrQueueFull
	}

	m.mu.Lock()
	m.submitted++
	m.jobs[j.ID] = j
	m.inflight[hash] = j
	m.mu.Unlock()
	m.logf("job %s: queued %s kind=%s", j.ID, shortHash(hash), sp.Kind)
	return j, false, nil
}

// shedOne counts and logs one shed submission.
func (m *Manager) shedOne(hash, why string) {
	m.mu.Lock()
	m.shed++
	m.mu.Unlock()
	m.logf("shed %s: %s", shortHash(hash), why)
}

func (m *Manager) newJob(hash string, sp Spec) *Job {
	m.mu.Lock()
	m.seq++
	id := fmt.Sprintf("j%06d", m.seq)
	m.mu.Unlock()
	return &Job{
		ID:       id,
		Hash:     hash,
		Spec:     sp,
		m:        m,
		created:  time.Now(),
		subs:     map[int]chan Event{},
		terminal: make(chan struct{}),
	}
}

// totalTrials is the progress denominator a spec implies.
func totalTrials(sp Spec) int {
	if sp.Kind == "fct" && sp.Trials > 1 {
		return sp.Trials
	}
	return 1
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job. Pending jobs cancel immediately;
// running jobs get their context cancelled and settle when the trial loop
// notices. Terminal jobs are left alone (returns false).
func (m *Manager) Cancel(id string) bool {
	j, ok := m.Get(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	switch j.state {
	case StatePending:
		j.settleLocked(StateCancelled, nil, context.Canceled.Error())
		j.mu.Unlock()
		return true
	case StateRunning:
		if j.cancelRun != nil {
			j.cancelRun()
		}
		j.mu.Unlock()
		return true
	default:
		j.mu.Unlock()
		return false
	}
}

// Store exposes the underlying result store (may be nil).
func (m *Manager) Store() *store.Store { return m.st }

// Hub exposes the live telemetry hub: one recorder per telemetry-enabled
// running job, registered under the job ID for the duration of its run.
func (m *Manager) Hub() *telemetry.Hub { return m.hub }

// executor pulls jobs off the bounded queue and runs them.
func (m *Manager) executor() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

func (m *Manager) runJob(j *Job) {
	ctx, cancel := context.WithCancel(m.ctx)
	j.mu.Lock()
	if j.state != StatePending { // cancelled while queued
		j.mu.Unlock()
		cancel()
		return
	}
	j.state = StateRunning
	j.cancelRun = cancel
	j.publishLocked()
	j.mu.Unlock()

	// Telemetry-enabled jobs publish a live recorder on the hub for the
	// duration of the run; /v1/telemetry streams it. Released on settle —
	// the twin mirrors running fabric state, not history (results carry
	// the durable outcome).
	var rec *telemetry.Recorder
	if j.Spec.Telemetry {
		rec = telemetry.NewRecorder(telemetry.Config{})
		release := m.hub.Register(j.ID, rec)
		defer release()
	}

	start := time.Now()
	res, err := ExecuteObserved(ctx, j.Spec, m.cfg.TrialWorkers, rec, func(done, total int) {
		j.progress(done, total)
	})
	elapsed := time.Since(start)
	cancel()

	switch {
	case err == nil:
		raw, merr := json.Marshal(res)
		if merr != nil {
			j.settle(StateFailed, nil, fmt.Sprintf("encoding result: %v", merr))
			break
		}
		if m.st != nil {
			// Commit the hash preimage, not the submitted spec: Put verifies
			// the archived spec hashes to the key, and hash-exempt fields
			// (Shards, Telemetry) would break that and lose the entry.
			specRaw, cerr := store.Canonical(j.Spec.HashForm())
			if cerr == nil {
				if perr := m.st.Put(j.Hash, specRaw, raw); perr != nil {
					m.logf("job %s: store put failed: %v", j.ID, perr)
				}
			}
		}
		j.settle(StateDone, raw, "")
	case errors.Is(err, context.Canceled):
		j.settle(StateCancelled, nil, context.Canceled.Error())
	default:
		j.settle(StateFailed, nil, err.Error())
	}

	m.mu.Lock()
	m.busyNS += elapsed.Nanoseconds()
	m.simEvents += res.SimEvents()
	ms := float64(elapsed.Nanoseconds()) / 1e6
	idx := len(LatencyBoundsMS)
	for i, b := range LatencyBoundsMS {
		if ms <= b {
			idx = i
			break
		}
	}
	m.latBkt[idx]++
	m.latCount++
	m.latSumMS += ms
	m.mu.Unlock()
	m.logf("job %s: %s in %v", j.ID, j.State(), elapsed.Round(time.Millisecond))
}

// maybeAudit re-executes every cfg.AuditEvery-th cache hit in the
// background and compares the fresh bytes to the stored entry. The check
// runs outside the bounded queue so user submissions are never displaced,
// but at most one audit runs at a time (later triggers are skipped and
// counted while one is active).
func (m *Manager) maybeAudit(hitNo uint64, hash string, sp Spec) {
	if m.cfg.AuditEvery <= 0 || m.st == nil || hitNo%uint64(m.cfg.AuditEvery) != 0 {
		return
	}
	m.mu.Lock()
	if m.auditActive {
		m.auditSkip++
		m.mu.Unlock()
		return
	}
	m.auditActive = true
	m.mu.Unlock()

	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer func() {
			m.mu.Lock()
			m.auditActive = false
			m.mu.Unlock()
		}()
		res, err := Execute(m.ctx, sp, m.cfg.TrialWorkers, nil)
		if err != nil {
			m.logf("audit %s: re-execution failed: %v", shortHash(hash), err)
			return
		}
		fresh, err := json.Marshal(res)
		if err != nil {
			return
		}
		e, ok := m.st.Get(hash)
		if !ok {
			return // evicted meanwhile
		}
		m.mu.Lock()
		m.audits++
		m.mu.Unlock()
		if string(fresh) != string(e.Result) {
			m.mu.Lock()
			m.auditBad++
			m.mu.Unlock()
			m.st.Invalidate(hash)
			m.logf("audit %s: MISMATCH — stored result differs from re-execution; entry invalidated", shortHash(hash))
			return
		}
		m.logf("audit %s: re-execution matches stored result", shortHash(hash))
	}()
}

// Drain stops accepting new jobs, waits for queued and running work (and
// any in-flight audit) to finish, flushes the store index, and returns.
// The context bounds the wait; on expiry running jobs are cancelled and
// waited for briefly.
func (m *Manager) Drain(ctx context.Context) error {
	m.drainM.Lock()
	if !m.drain {
		m.drain = true
		close(m.queue)
	}
	m.drainM.Unlock()

	finished := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(finished)
	}()
	var err error
	select {
	case <-finished:
	case <-ctx.Done():
		m.stop() // cancel running jobs
		<-finished
		err = ctx.Err()
	}
	m.stop()
	if m.st != nil {
		if cerr := m.st.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Snapshot returns current metrics.
func (m *Manager) Snapshot() Metrics {
	// Lock order is j.mu → m.mu (settleLocked); collect the job list under
	// m.mu, then query states unlocked, to avoid inverting it.
	m.mu.Lock()
	live := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		live = append(live, j)
	}
	m.mu.Unlock()
	sort.Slice(live, func(a, b int) bool { return live[a].ID < live[b].ID })
	by := map[State]uint64{}
	for _, j := range live {
		switch j.State() {
		case StatePending:
			by[StatePending]++
		case StateRunning:
			by[StateRunning]++
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	for s, n := range m.terminals {
		by[s] = n
	}
	bkt := make([]uint64, len(m.latBkt))
	copy(bkt, m.latBkt)
	// Cumulative buckets, Prometheus style.
	for i := 1; i < len(bkt); i++ {
		bkt[i] += bkt[i-1]
	}
	return Metrics{
		QueueDepth:      len(m.queue),
		QueueCapacity:   m.cfg.QueueDepth,
		Submitted:       m.submitted,
		Deduped:         m.deduped,
		Rejected:        m.rejected,
		Shed:            m.shed,
		ByState:         by,
		CacheHits:       m.hits,
		CacheMisses:     m.misses,
		Audits:          m.audits,
		AuditSkipped:    m.auditSkip,
		AuditMismatch:   m.auditBad,
		SimEvents:       m.simEvents,
		BusySeconds:     float64(m.busyNS) / 1e9,
		LatencyBoundsMS: LatencyBoundsMS,
		LatencyBuckets:  bkt,
		LatencyCount:    m.latCount,
		LatencySumMS:    m.latSumMS,
	}
}

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

// --- Job methods ---

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Status snapshots the job for the HTTP layer.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	return Status{
		ID:        j.ID,
		Hash:      j.Hash,
		State:     j.state,
		Spec:      j.Spec,
		Done:      j.done,
		Total:     j.total,
		FromCache: j.fromCache,
		Error:     j.errMsg,
		ElapsedMS: end.Sub(j.created).Milliseconds(),
	}
}

// Result returns the committed result bytes of a done job.
func (j *Job) Result() (json.RawMessage, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, false
	}
	return j.result, true
}

// Terminal returns a channel closed when the job reaches a final state.
func (j *Job) Terminal() <-chan struct{} { return j.terminal }

// Subscribers returns the number of live event subscriptions — the
// observable the NDJSON disconnect tests hang on: a dead client's
// subscription must be released, not leak until the job settles.
func (j *Job) Subscribers() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.subs)
}

// Subscribe registers an events channel. The returned cancel func must be
// called to release it. The current state is delivered immediately; the
// channel is closed once the job settles (after the final event).
func (j *Job) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 16)
	j.mu.Lock()
	id := j.nextSub
	j.nextSub++
	ch <- j.eventLocked() //lint:allow locks (ch is fresh with cap 16 and unshared until registration below: the send cannot block)
	if j.state.Terminal() {
		close(ch)
		j.mu.Unlock()
		return ch, func() {}
	}
	j.subs[id] = ch
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		if _, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(ch)
		}
		j.mu.Unlock()
	}
}

func (j *Job) eventLocked() Event {
	return Event{
		Job:       j.ID,
		Hash:      j.Hash,
		State:     j.state,
		Done:      j.done,
		Total:     j.total,
		FromCache: j.fromCache,
		Error:     j.errMsg,
	}
}

// publishLocked fans the current state out to subscribers; a slow
// subscriber loses intermediate progress events (its buffer bounds memory)
// but never the terminal event, which arrives via channel close + Status.
func (j *Job) publishLocked() {
	ev := j.eventLocked()
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

func (j *Job) progress(done, total int) {
	j.mu.Lock()
	if done > j.done {
		j.done = done
	}
	j.total = total
	j.publishLocked()
	j.mu.Unlock()
}

func (j *Job) settle(st State, result json.RawMessage, errMsg string) {
	j.mu.Lock()
	j.settleLocked(st, result, errMsg)
	j.mu.Unlock()
}

// settleLocked moves the job to a terminal state exactly once, delivers
// the final event, closes subscriber channels and releases the
// singleflight slot.
func (j *Job) settleLocked(st State, result json.RawMessage, errMsg string) {
	if j.state.Terminal() {
		return
	}
	j.state = st
	j.result = result
	j.errMsg = errMsg
	j.finished = time.Now()
	if st == StateDone && j.total > j.done {
		j.done = j.total
	}
	ev := j.eventLocked()
	for id, ch := range j.subs {
		select {
		case ch <- ev:
		default:
			// Buffer full of stale progress: drain one slot so the
			// terminal event always fits.
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- ev:
			default:
			}
		}
		close(ch)
		delete(j.subs, id)
	}
	close(j.terminal)

	m := j.m
	m.mu.Lock()
	if m.inflight[j.Hash] == j {
		delete(m.inflight, j.Hash)
	}
	m.terminals[st]++
	m.mu.Unlock()
}
