package jobs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"spineless/internal/store"
)

// tinySpec is a spec small enough to run in well under a second.
func tinySpec() Spec {
	return Spec{
		Kind:      "fct",
		Topo:      TopoSpec{Scale: 8},
		Fabric:    "rrg",
		Scheme:    "ecmp",
		TM:        "A2A",
		Util:      0.2,
		WindowSec: 0.002,
		Seed:      1,
		MaxFlows:  40,
	}
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := New(st, cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Drain(ctx)
	})
	return m
}

func waitTerminal(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Terminal():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s never settled (state %s)", j.ID, j.State())
	}
}

func TestSpecNormalizeHashStable(t *testing.T) {
	a := Spec{Kind: "fct", Topo: TopoSpec{Scale: 4}, Fabric: "dring", Scheme: "su2", TM: "A2A", Util: 0.30, WindowSec: 0.01, Seed: 5}
	b := Spec{Seed: 5} // all defaults
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("explicit defaults hash differently: %s vs %s", ha, hb)
	}
	c := a
	c.Seed = 6
	hc, err := c.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hc == ha {
		t.Fatal("different seeds share a hash")
	}
}

// TestSpecHashShardExemption pins the shard-count cache exemption: every
// positive shard count shares one key (results are shard-count-invariant),
// but the serial engine keys separately from the sharded one.
func TestSpecHashShardExemption(t *testing.T) {
	base := Spec{Seed: 5}
	h0, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	sharded := base
	sharded.Shards = 2
	h2, err := sharded.Hash()
	if err != nil {
		t.Fatal(err)
	}
	sharded.Shards = 8
	h8, err := sharded.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h8 {
		t.Fatalf("shard counts fragment the cache: %s vs %s", h2, h8)
	}
	if h0 == h2 {
		t.Fatal("serial and sharded engines share a cache key")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Kind: "nope"},
		{Kind: "fct", Fabric: "mesh"},
		{Kind: "fct", Topo: TopoSpec{Scale: 5}},
		{Kind: "fct", Util: -1},
		{Kind: "live"}, // no fault schedule
		{Kind: "live", Fabric: "leafspine", Faults: &FaultSpec{Fraction: 0.05}},
	}
	for i, sp := range bad {
		if err := sp.Normalized().Validate(); err == nil {
			t.Errorf("bad spec %d validated: %+v", i, sp)
		}
	}
	if err := tinySpec().Normalized().Validate(); err != nil {
		t.Fatalf("tiny spec rejected: %v", err)
	}
	live := Spec{Kind: "live", Faults: &FaultSpec{Fraction: 0.05, Flows: 50, WindowNS: 5e6}}
	if err := live.Normalized().Validate(); err != nil {
		t.Fatalf("live spec rejected: %v", err)
	}
}

// TestSpecValidateBakeoffFabrics pins the bake-off wiring at the fleet
// layer: the three extra flat fabrics validate and execute for fct runs
// (all three were "unknown fabric" before the bake-off PR), an unknown name
// is still rejected with the full menu, and live runs still accept only the
// fabrics with a reroute story.
func TestSpecValidateBakeoffFabrics(t *testing.T) {
	for _, fabric := range []string{"xpander", "debruijn", "rng"} {
		sp := tinySpec()
		sp.Fabric = fabric
		sp.Scheme = "ecmp"
		sp = sp.Normalized()
		if err := sp.Validate(); err != nil {
			t.Fatalf("fct fabric %q rejected: %v", fabric, err)
		}
		res, err := Execute(context.Background(), sp, 1, nil)
		if err != nil {
			t.Fatalf("fct fabric %q failed to execute: %v", fabric, err)
		}
		if res.FCT == nil || res.FCT.Flows == 0 {
			t.Fatalf("fct fabric %q produced no flows", fabric)
		}
	}
	sp := tinySpec()
	sp.Fabric = "mesh"
	err := sp.Normalized().Validate()
	if err == nil {
		t.Fatal("unknown fabric validated")
	}
	for _, want := range []string{"mesh", "xpander", "debruijn", "rng"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("unknown-fabric error %q does not mention %q", err, want)
		}
	}
	live := Spec{Kind: "live", Fabric: "debruijn", Faults: &FaultSpec{Fraction: 0.05, Flows: 50, WindowNS: 5e6}}
	if err := live.Normalized().Validate(); err == nil {
		t.Fatal("live run on a fabric without a reroute story validated")
	}
}

// TestSubmitRunHitDedup is the core lifecycle test: first submission runs,
// second is a cache hit with byte-identical result, and a concurrent
// identical submission shares the in-flight job.
func TestSubmitRunHitDedup(t *testing.T) {
	m := newTestManager(t, Config{QueueDepth: 4, Executors: 1})

	j1, cached, err := m.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first submission reported cached")
	}
	// An identical spec submitted while j1 is pending/running dedups onto
	// the same job (singleflight), not a new one.
	j1b, _, err := m.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if j1b.ID != j1.ID {
		t.Fatalf("in-flight dedup failed: %s vs %s", j1b.ID, j1.ID)
	}

	waitTerminal(t, j1)
	if st := j1.State(); st != StateDone {
		t.Fatalf("job state %s: %+v", st, j1.Status())
	}
	res1, ok := j1.Result()
	if !ok || len(res1) == 0 {
		t.Fatal("done job has no result")
	}

	j2, cached, err := m.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("second submission missed the cache")
	}
	res2, ok := j2.Result()
	if !ok {
		t.Fatal("cached job has no result")
	}
	if string(res1) != string(res2) {
		t.Fatal("cached result is not byte-identical to the computed one")
	}
	var decoded Result
	if err := json.Unmarshal(res2, &decoded); err != nil {
		t.Fatalf("result not decodable: %v", err)
	}
	if decoded.FCT == nil || decoded.FCT.Flows == 0 {
		t.Fatalf("degenerate result: %+v", decoded)
	}

	snap := m.Snapshot()
	if snap.CacheHits != 1 || snap.CacheMisses != 1 {
		t.Fatalf("cache counters: %+v", snap)
	}
	if snap.Deduped != 1 {
		t.Fatalf("dedup counter = %d, want 1", snap.Deduped)
	}
}

func TestQueueBounded(t *testing.T) {
	// Executor 1, depth 1: with one slow job running and one queued, a
	// third distinct submission must be rejected with ErrQueueFull.
	m := newTestManager(t, Config{QueueDepth: 1, Executors: 1})
	specN := func(seed int64) Spec {
		sp := tinySpec()
		sp.Seed = seed
		// Slow enough that j1 is still running when the third submit
		// lands, whatever the scheduler does.
		sp.Trials = 500
		return sp
	}
	j1, _, err := m.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the executor to claim j1 so the queue slot frees.
	deadline := time.Now().Add(10 * time.Second)
	for j1.State() == StatePending && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	j2, _, err := m.Submit(specN(2))
	if err != nil {
		t.Fatalf("second submit should queue: %v", err)
	}
	if _, _, err := m.Submit(specN(3)); err != ErrQueueFull {
		t.Fatalf("third submit: err = %v, want ErrQueueFull", err)
	}
	snap := m.Snapshot()
	if snap.Rejected != 1 {
		t.Fatalf("rejected counter = %d", snap.Rejected)
	}
	// Cancel the slow jobs so the cleanup Drain returns promptly.
	m.Cancel(j1.ID)
	m.Cancel(j2.ID)
}

// TestShedWatermarks pins admission control: beyond ShedDepth new distinct
// specs get ErrOverloaded (429, not 503), while the zero-load paths — dedup
// onto an in-flight job and cache hits — are never shed.
func TestShedWatermarks(t *testing.T) {
	m := newTestManager(t, Config{QueueDepth: 8, ShedDepth: 1, Executors: 1})
	specN := func(seed int64) Spec {
		sp := tinySpec()
		sp.Seed = seed
		sp.Trials = 500 // slow enough to stay running for the whole test
		return sp
	}
	j1, _, err := m.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for j1.State() == StatePending && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	j2, _, err := m.Submit(specN(2)) // occupies the queue: depth 1 == watermark
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Submit(specN(3)); err != ErrOverloaded {
		t.Fatalf("submit past watermark: err = %v, want ErrOverloaded", err)
	}
	// Dedup onto the queued job still works while shedding.
	jd, _, err := m.Submit(specN(2))
	if err != nil || jd.ID != j2.ID {
		t.Fatalf("dedup while shedding: j=%v err=%v", jd, err)
	}
	snap := m.Snapshot()
	if snap.Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", snap.Shed)
	}
	if snap.Rejected != 0 {
		t.Fatalf("queue-full rejections = %d; shedding must fire first", snap.Rejected)
	}
	m.Cancel(j1.ID)
	m.Cancel(j2.ID)
}

// TestMaxInflightSheds pins the in-flight watermark: the pending+running
// population is capped even when the queue itself still has room.
func TestMaxInflightSheds(t *testing.T) {
	m := newTestManager(t, Config{QueueDepth: 8, MaxInflight: 1, Executors: 1})
	slow := tinySpec()
	slow.Seed = 50
	slow.Trials = 500
	j1, _, err := m.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	next := tinySpec()
	next.Seed = 51
	if _, _, err := m.Submit(next); err != ErrOverloaded {
		t.Fatalf("submit past inflight cap: err = %v, want ErrOverloaded", err)
	}
	m.Cancel(j1.ID)
}

// TestDrainUnderLoad is the SIGTERM story with the queue full: the drain
// must finish every admitted job (running and queued), refuse new ones with
// ErrDraining, and deliver a terminal event to every subscriber.
func TestDrainUnderLoad(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := New(st, Config{QueueDepth: 4, Executors: 1, TrialWorkers: 1})

	specN := func(seed int64) Spec {
		sp := tinySpec()
		sp.Seed = seed
		sp.MaxFlows = 20
		return sp
	}
	var admitted []*Job
	var streams []<-chan Event
	// One running + a full queue of four.
	for seed := int64(60); len(admitted) < 5; seed++ {
		j, _, err := m.Submit(specN(seed))
		if err != nil {
			t.Fatalf("fill submit (seed %d): %v", seed, err)
		}
		ch, stop := j.Subscribe()
		defer stop()
		admitted = append(admitted, j)
		streams = append(streams, ch)
		if len(admitted) == 1 {
			// Wait for the executor to claim the first job so the queue's
			// four slots are all free for the rest.
			deadline := time.Now().Add(10 * time.Second)
			for j.State() == StatePending && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
		}
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		drained <- m.Drain(ctx)
	}()

	// New work must bounce with ErrDraining while the drain runs. Drain
	// flips the flag under its lock before waiting, but give the goroutine a
	// moment to get there.
	deadline := time.Now().Add(10 * time.Second)
	for probe := int64(100); ; probe++ {
		// Fresh seed each probe: an admitted probe that finishes would turn
		// later identical submits into free cache hits, masking ErrDraining.
		_, _, err := m.Submit(specN(probe))
		if err == ErrDraining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submit during drain: err = %v, want ErrDraining", err)
		}
		time.Sleep(time.Millisecond)
	}

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i, j := range admitted {
		if st := j.State(); st != StateDone {
			t.Fatalf("admitted job %d ended %s, want done", i, st)
		}
	}
	// Every subscriber got a terminal event before its channel closed.
	for i, ch := range streams {
		var last Event
		got := false
		for ev := range ch {
			last, got = ev, true
		}
		if !got || !last.State.Terminal() {
			t.Fatalf("stream %d ended without a terminal event (last %+v)", i, last)
		}
	}
}

func TestCancelPendingAndRunning(t *testing.T) {
	m := newTestManager(t, Config{QueueDepth: 4, Executors: 1})
	slow := tinySpec()
	slow.Trials = 500
	slow.Seed = 10

	j1, _, err := m.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	pend := tinySpec()
	pend.Seed = 11
	j2, _, err := m.Submit(pend)
	if err != nil {
		t.Fatal(err)
	}
	// j2 sits behind j1 on the single executor: cancel it while pending.
	if !m.Cancel(j2.ID) {
		t.Fatal("cancel pending failed")
	}
	waitTerminal(t, j2)
	if st := j2.State(); st != StateCancelled {
		t.Fatalf("pending cancel: state %s", st)
	}

	// Cancel j1 mid-run.
	deadline := time.Now().Add(10 * time.Second)
	for j1.State() == StatePending && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !m.Cancel(j1.ID) {
		t.Fatal("cancel running failed")
	}
	waitTerminal(t, j1)
	if st := j1.State(); st != StateCancelled {
		t.Fatalf("running cancel: state %s", st)
	}
	if _, ok := j1.Result(); ok {
		t.Fatal("cancelled job has a result")
	}
	// A cancelled spec must not have been cached: resubmission runs fresh.
	j3, cached, err := m.Submit(pend)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("cancelled job's spec was served from cache")
	}
	waitTerminal(t, j3)
	if j3.State() != StateDone {
		t.Fatalf("resubmission state %s", j3.State())
	}
}

func TestProgressEvents(t *testing.T) {
	m := newTestManager(t, Config{QueueDepth: 4, Executors: 1, TrialWorkers: 1})
	sp := tinySpec()
	sp.Trials = 3
	sp.Seed = 20
	j, _, err := m.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	ch, stop := j.Subscribe()
	defer stop()
	var last Event
	sawProgress := false
	for ev := range ch {
		if ev.Done > 0 && !ev.State.Terminal() {
			sawProgress = true
		}
		if ev.Done < last.Done {
			t.Fatalf("progress went backwards: %d after %d", ev.Done, last.Done)
		}
		last = ev
	}
	waitTerminal(t, j)
	if !sawProgress {
		t.Error("no intermediate progress event observed")
	}
	st := j.Status()
	if st.Done != 3 || st.Total != 3 {
		t.Fatalf("final progress %d/%d, want 3/3", st.Done, st.Total)
	}
}

// TestAuditHookDetectsTamperedEntry proves the sampled re-execution audit:
// a cache entry whose stored result was tampered with (simulating silent
// corruption or a determinism regression) is detected on the audited hit
// and invalidated.
func TestAuditHookDetectsTamperedEntry(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := New(st, Config{QueueDepth: 4, Executors: 1, AuditEvery: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Drain(ctx)
	}()

	sp := tinySpec()
	sp.Seed = 30
	j, _, err := m.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if j.State() != StateDone {
		t.Fatalf("state %s", j.State())
	}

	// Tamper: overwrite the stored result with different (valid) JSON.
	hash := j.Hash
	specRaw, err := store.Canonical(sp.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(hash, specRaw, json.RawMessage(`{"kind":"fct","fct":null}`)); err != nil {
		t.Fatal(err)
	}

	// The next hit serves the tampered bytes but triggers the audit, which
	// must flag the mismatch and invalidate the entry.
	if _, cached, err := m.Submit(sp); err != nil || !cached {
		t.Fatalf("expected cache hit: cached=%v err=%v", cached, err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if snap := m.Snapshot(); snap.AuditMismatch == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	snap := m.Snapshot()
	if snap.AuditMismatch != 1 {
		t.Fatalf("audit mismatch not detected: %+v", snap)
	}
	if st.Len() != 0 {
		t.Fatal("tampered entry not invalidated")
	}
}

func TestDrainRejectsNewWork(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := New(st, Config{QueueDepth: 4, Executors: 1})
	sp := tinySpec()
	sp.Seed = 40
	j, _, err := m.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if j.State() != StateDone {
		t.Fatalf("queued job not finished by drain: %s", j.State())
	}
	if _, _, err := m.Submit(tinySpec()); err != ErrDraining {
		t.Fatalf("submit after drain: %v, want ErrDraining", err)
	}
}

// TestSpecTelemetryValidationAndHash pins the jobs-layer half of the
// Shards+tracer guard (failing-before: Telemetry used to be silently
// meaningless with Shards>0) and the cache-key exemption: observation
// must not fragment the store.
func TestSpecTelemetryValidationAndHash(t *testing.T) {
	sp := tinySpec()
	sp.Telemetry = true
	sp.Shards = 2
	if err := sp.Normalized().Validate(); err == nil {
		t.Fatal("telemetry+shards validated — the recorder would observe nothing")
	} else if !strings.Contains(err.Error(), "serial engine") {
		t.Fatalf("unhelpful error: %v", err)
	}
	sp.Shards = 0
	if err := sp.Normalized().Validate(); err != nil {
		t.Fatalf("telemetry on the serial engine rejected: %v", err)
	}

	plain := tinySpec()
	h1, err := plain.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := sp.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("telemetry flag fragments the cache key")
	}
}

// TestTelemetryJobPublishesOnHub: a telemetry-enabled job registers a live
// recorder under its ID for the duration of the run and releases it on
// settle; the recorder sees the run's traffic.
func TestTelemetryJobPublishesOnHub(t *testing.T) {
	m := newTestManager(t, Config{QueueDepth: 4, Executors: 1, TrialWorkers: 1})

	// A slow job (many trial windows) so its hub registration is observable
	// while it runs.
	slow := tinySpec()
	slow.Telemetry = true
	slow.Trials = 500
	j, cached, err := m.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("fresh telemetry job served from cache")
	}
	deadline := time.Now().Add(30 * time.Second)
	for m.Hub().Get(j.ID) == nil && time.Now().Before(deadline) {
		select {
		case <-j.Terminal():
			t.Fatalf("job settled before its recorder ever appeared on the hub (%+v)", j.Status())
		default:
		}
		time.Sleep(time.Millisecond)
	}
	rec := m.Hub().Get(j.ID)
	if rec == nil {
		t.Fatal("recorder never appeared on the hub while the job ran")
	}
	// The live twin fills in while trials execute.
	for rec.Snapshot().Totals.TxBytes == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if rec.Snapshot().Totals.TxBytes == 0 {
		t.Fatal("live recorder saw no traffic")
	}
	// Released on settle: the twin only mirrors running jobs.
	m.Cancel(j.ID)
	waitTerminal(t, j)
	for m.Hub().Active() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := m.Hub().Active(); n != 0 {
		t.Fatalf("%d recorders still on the hub after settle", n)
	}

	// A completed telemetry job shares its cache entry with the unobserved
	// form of the same spec.
	quick := tinySpec()
	quick.Telemetry = true
	jq, _, err := m.Submit(quick)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, jq)
	if st := jq.Status(); st.State != StateDone {
		t.Fatalf("job ended %s (%s)", st.State, st.Error)
	}
	if _, cached, err := m.Submit(tinySpec()); err != nil || !cached {
		t.Fatalf("unobserved resubmit: cached=%v err=%v", cached, err)
	}
}

// TestShardedJobResultIsCached is the failing-before regression for the
// hash-preimage store bug: runJob used to commit the submitted spec, whose
// Shards field does not survive the hash exemption, so store.Put's
// spec-hashes-to-key check failed and sharded results were silently never
// cached.
func TestShardedJobResultIsCached(t *testing.T) {
	m := newTestManager(t, Config{QueueDepth: 4, Executors: 1, TrialWorkers: 1})
	sp := tinySpec()
	sp.Shards = 2
	j, cached, err := m.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("fresh sharded job served from cache")
	}
	waitTerminal(t, j)
	if st := j.Status(); st.State != StateDone {
		t.Fatalf("job ended %s (%s)", st.State, st.Error)
	}
	// Any positive shard count shares the entry.
	sp.Shards = 4
	if _, cached, err := m.Submit(sp); err != nil || !cached {
		t.Fatalf("sharded resubmit: cached=%v err=%v", cached, err)
	}
}
