package jobs

import (
	"context"
	"fmt"
	"math/rand"

	"spineless/internal/core"
	"spineless/internal/netsim"
	"spineless/internal/resilience"
	"spineless/internal/telemetry"
	"spineless/internal/topology"
)

// Result is the JSON document a job commits to the store: exactly one of
// the per-kind payloads, tagged by the kind that produced it.
type Result struct {
	Kind string                 `json:"kind"`
	FCT  *core.FCTResult        `json:"fct,omitempty"`
	Live *resilience.LiveResult `json:"live,omitempty"`
}

// SimEvents reports how many packet-simulator events the run processed —
// the raw material of the /metrics event-throughput gauge. Live results do
// not expose a raw event counter and report zero.
func (r Result) SimEvents() uint64 {
	if r.FCT != nil {
		return r.FCT.SimStats.Events
	}
	return 0
}

// Execute runs a normalized, validated spec to completion. workers bounds
// trial-level parallelism (0 = one per CPU); onTrial receives monotonic
// progress from the trial loop; ctx cancels between trials. Neither
// workers, onTrial nor ctx can affect the result of a run that completes —
// that is the determinism contract the result cache relies on.
func Execute(ctx context.Context, sp Spec, workers int, onTrial func(done, total int)) (Result, error) {
	return ExecuteObserved(ctx, sp, workers, nil, onTrial)
}

// ExecuteObserved is Execute with a telemetry recorder attached to the
// run's simulators (nil = unobserved, identical to Execute). The recorder
// is write-only for the run and read-concurrently by streamers; like
// workers and onTrial, it cannot affect the result — observation is the
// one side effect the determinism contract permits.
func ExecuteObserved(ctx context.Context, sp Spec, workers int, rec *telemetry.Recorder, onTrial func(done, total int)) (Result, error) {
	switch sp.Kind {
	case "fct":
		res, err := executeFCT(ctx, sp, workers, rec, onTrial)
		if err != nil {
			return Result{}, err
		}
		return Result{Kind: sp.Kind, FCT: res}, nil
	case "live":
		res, err := executeLive(ctx, sp, rec, onTrial)
		if err != nil {
			return Result{}, err
		}
		return Result{Kind: sp.Kind, Live: res}, nil
	}
	return Result{}, fmt.Errorf("jobs: unknown kind %q", sp.Kind)
}

func executeFCT(ctx context.Context, sp Spec, workers int, rec *telemetry.Recorder, onTrial func(done, total int)) (*core.FCTResult, error) {
	rng := rand.New(rand.NewSource(sp.Seed))
	var fs *core.FabricSet
	var err error
	if sp.Topo.Paper {
		fs, err = core.PaperFabrics(rng)
	} else {
		fs, err = core.ScaledFabrics(sp.Topo.Scale, rng)
	}
	if err != nil {
		return nil, err
	}
	var fabric = fs.DRing
	switch sp.Fabric {
	case "leafspine":
		fabric = fs.LeafSpine
	case "rrg":
		fabric = fs.RRG
	case "xpander", "debruijn", "rng":
		// A bake-off fabric on the trio's equipment budget, seeded from the
		// spec so the wiring is part of the cell identity.
		fabric, err = core.ExtraFabric(fs, sp.Fabric, sp.Seed)
		if err != nil {
			return nil, err
		}
	}
	combo, err := core.NewCombo(sp.Fabric+" ("+sp.Scheme+")", fabric, sp.Scheme)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultFCTConfig()
	cfg.Util = sp.Util
	cfg.WindowSec = sp.WindowSec
	cfg.Seed = sp.Seed
	cfg.Trials = sp.Trials
	cfg.MaxFlows = sp.MaxFlows
	cfg.Shards = sp.Shards
	cfg.Workers = workers
	cfg.Ctx = ctx
	cfg.OnTrial = onTrial
	cfg.Telemetry = rec
	res, err := core.RunFCT(fs, combo, core.TMKind(sp.TM), cfg)
	if err != nil {
		return nil, err
	}
	return &res, nil
}

func executeLive(ctx context.Context, sp Spec, rec *telemetry.Recorder, onTrial func(done, total int)) (*resilience.LiveResult, error) {
	// RunLive is a single indivisible trial: honor cancellation at the
	// boundary and report one unit of progress on completion.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g, err := topology.DRing(topology.Uniform(sp.Topo.Supernodes, sp.Topo.Tors, sp.Topo.Ports))
	if err != nil {
		return nil, err
	}
	if sp.Fabric == "rrg" {
		g, err = core.MatchedRRG(g, rand.New(rand.NewSource(sp.Seed)))
		if err != nil {
			return nil, err
		}
	}
	f := sp.Faults
	cfg := resilience.DefaultLiveConfig()
	cfg.K = f.K
	cfg.Fraction = f.Fraction
	cfg.FailAtNS = f.FailAtNS
	cfg.DetectionDelayNS = f.DetectionDelayNS
	cfg.RoundDelayNS = f.RoundDelayNS
	cfg.FlapLinks = f.FlapLinks
	cfg.FlapDownNS = f.FlapDownNS
	cfg.FlapUpNS = f.FlapUpNS
	cfg.FlapCycles = f.FlapCycles
	cfg.GrayLinks = f.GrayLinks
	cfg.GrayLoss = f.GrayLoss
	cfg.GrayRateFactor = f.GrayRateFactor
	cfg.Flows = f.Flows
	cfg.WindowNS = f.WindowNS
	cfg.PreserveConnectivity = f.PreserveConnectivity
	cfg.Net = netsim.DefaultConfig()
	cfg.Seed = sp.Seed
	cfg.Shards = sp.Shards
	cfg.Telemetry = rec
	res, err := resilience.RunLive(g, cfg)
	if err != nil {
		return nil, err
	}
	if onTrial != nil {
		onTrial(1, 1)
	}
	return &res, nil
}

// defaultFaults exposes resilience's defaults to spec normalization.
func defaultFaults() resilience.LiveConfig { return resilience.DefaultLiveConfig() }
