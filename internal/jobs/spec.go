// Package jobs is spinelessd's execution layer: a bounded job queue over
// the deterministic experiment engine (internal/core, internal/resilience)
// with per-job cancellation, singleflight deduplication of identical specs,
// monotonic progress published from the trial loop, and a content-addressed
// result cache (internal/store) whose hits are periodically re-executed to
// audit the determinism contract the cache depends on.
//
// The package-scope determinism exemption above is deliberate and narrow:
// the job layer measures wall-clock latency and timestamps job lifecycles,
// which is operational telemetry, not simulation state. Everything a job
// *computes* flows through the simulator packages, which remain fully
// locked down — a spec and seed still replay byte-identically.
//
//lint:allowpkg determinism
package jobs

import (
	"fmt"

	"spineless/internal/core"
	"spineless/internal/store"
)

// SpecVersion identifies the spec schema; it is part of the hash preimage,
// so bumping it (on any semantics change) retires every cached result.
const SpecVersion = 1

// Spec is the full description of one experiment: everything the run
// depends on — topology, fabric/routing combo, workload, fault schedule,
// seed, trials — and nothing it doesn't (worker counts and audit flags are
// deliberately absent: they never affect results, so they must not
// fragment the cache). Its canonical JSON encoding is the store key.
type Spec struct {
	// Version pins the spec schema (must be SpecVersion).
	Version int `json:"v"`
	// Kind selects the experiment: "fct" (a Figure 4-style cell) or
	// "live" (a PR-1 live fault-injection run).
	Kind string `json:"kind"`
	// Topo shapes the fabric.
	Topo TopoSpec `json:"topo"`
	// Fabric picks the substrate: the §5.1 trio "leafspine", "rrg" or
	// "dring", or a bake-off flat fabric "xpander", "debruijn" or "rng"
	// built on the same equipment budget (core.ExtraFabric).
	Fabric string `json:"fabric"`
	// Scheme is the routing scheme name (core.NewCombo syntax: "ecmp",
	// "su2", "wcmp", "vlb", "ksp3", ...). Live runs use Shortest-Union(K)
	// from Faults.K instead.
	Scheme string `json:"scheme,omitempty"`
	// TM names the traffic matrix for fct runs (core.AllTMKinds).
	TM string `json:"tm,omitempty"`
	// Util is the offered load for fct runs (fraction of spine capacity).
	Util float64 `json:"util,omitempty"`
	// WindowSec is the fct flow-arrival window in seconds.
	WindowSec float64 `json:"window_sec,omitempty"`
	// Seed drives all sampling.
	Seed int64 `json:"seed"`
	// Trials pools this many independently seeded arrival windows.
	Trials int `json:"trials,omitempty"`
	// MaxFlows caps generated flows per window (0 = uncapped).
	MaxFlows int `json:"max_flows,omitempty"`
	// Shards > 0 runs packet simulations on the sharded conservative-window
	// engine with that many workers (netsim.NewSharded). Results are
	// byte-identical at every positive shard count, so the store key
	// collapses all of them to 1 — different counts share cache entries and
	// dedupe in flight. Serial (0) keys separately: the sharded engine has
	// two documented micro-departures from the serial event stream
	// (DESIGN.md §13), so the two engines must not share
	// determinism-audited cache entries.
	Shards int `json:"shards,omitempty"`
	// Telemetry attaches a live telemetry recorder to the run and publishes
	// it on /v1/telemetry while the job executes. Purely observational: it
	// never affects results, so — like worker counts — it is exempt from the
	// store key. A cache hit executes nothing and therefore streams nothing.
	// Requires the serial engine (Shards == 0): the sharded engine has no
	// tracer slot, and a silently event-less recorder would be a lie.
	Telemetry bool `json:"telemetry,omitempty"`
	// Faults is the live-run fault schedule (required iff Kind == "live").
	Faults *FaultSpec `json:"faults,omitempty"`
}

// TopoSpec shapes the fabric. For fct runs it selects the §5.1 trio:
// Paper, or the proportionally scaled-down trio at Scale. For live runs it
// is the standalone uniform DRing geometry (Supernodes × Tors switches of
// Ports ports) that cmd/failures uses, with Fabric choosing the DRing
// itself or its equipment-matched RRG.
type TopoSpec struct {
	Paper      bool `json:"paper,omitempty"`
	Scale      int  `json:"scale,omitempty"`
	Supernodes int  `json:"supernodes,omitempty"`
	Tors       int  `json:"tors,omitempty"`
	Ports      int  `json:"ports,omitempty"`
}

// FaultSpec is the live fault schedule (mirrors resilience.LiveConfig; see
// PR 1). Zero-valued timing fields inherit resilience.DefaultLiveConfig.
type FaultSpec struct {
	K                    int     `json:"k,omitempty"`
	Fraction             float64 `json:"fraction"`
	FailAtNS             int64   `json:"fail_at_ns,omitempty"`
	DetectionDelayNS     int64   `json:"detection_delay_ns,omitempty"`
	RoundDelayNS         int64   `json:"round_delay_ns,omitempty"`
	FlapLinks            int     `json:"flap_links,omitempty"`
	FlapDownNS           int64   `json:"flap_down_ns,omitempty"`
	FlapUpNS             int64   `json:"flap_up_ns,omitempty"`
	FlapCycles           int     `json:"flap_cycles,omitempty"`
	GrayLinks            int     `json:"gray_links,omitempty"`
	GrayLoss             float64 `json:"gray_loss,omitempty"`
	GrayRateFactor       float64 `json:"gray_rate_factor,omitempty"`
	Flows                int     `json:"flows,omitempty"`
	WindowNS             int64   `json:"window_ns,omitempty"`
	PreserveConnectivity bool    `json:"preserve_connectivity,omitempty"`
}

// Normalized returns the spec with defaults filled in, so that a spec
// submitted with and without an explicit default value hashes identically.
// Hashing always happens on the normalized form.
func (s Spec) Normalized() Spec {
	s.Version = SpecVersion
	if s.Kind == "" {
		s.Kind = "fct"
	}
	if s.Shards < 0 {
		s.Shards = 0
	}
	switch s.Kind {
	case "fct":
		if !s.Topo.Paper && s.Topo.Scale == 0 {
			s.Topo.Scale = 4
		}
		if s.Topo.Paper {
			s.Topo.Scale = 0
		}
		s.Topo.Supernodes, s.Topo.Tors, s.Topo.Ports = 0, 0, 0
		if s.Fabric == "" {
			s.Fabric = "dring"
		}
		if s.Scheme == "" {
			s.Scheme = "su2"
		}
		if s.TM == "" {
			s.TM = string(core.TMA2A)
		}
		// Exact-zero means "omitted from the JSON spec", not a tolerance.
		if s.Util == 0 { //lint:allow floateq
			s.Util = 0.30
		}
		if s.WindowSec == 0 { //lint:allow floateq
			s.WindowSec = 0.01
		}
		if s.Trials <= 1 {
			s.Trials = 0
		}
		s.Faults = nil
	case "live":
		if s.Topo.Supernodes == 0 {
			s.Topo.Supernodes = 8
		}
		if s.Topo.Tors == 0 {
			s.Topo.Tors = 2
		}
		if s.Topo.Ports == 0 {
			s.Topo.Ports = 24
		}
		s.Topo.Paper, s.Topo.Scale = false, 0
		if s.Fabric == "" {
			s.Fabric = "dring"
		}
		s.Scheme, s.TM, s.Util, s.WindowSec, s.Trials, s.MaxFlows = "", "", 0, 0, 0, 0
		if s.Faults != nil {
			f := *s.Faults
			d := defaultFaults()
			if f.K == 0 {
				f.K = d.K
			}
			if f.FailAtNS == 0 {
				f.FailAtNS = d.FailAtNS
			}
			if f.DetectionDelayNS == 0 {
				f.DetectionDelayNS = d.DetectionDelayNS
			}
			if f.RoundDelayNS == 0 {
				f.RoundDelayNS = d.RoundDelayNS
			}
			if f.FlapDownNS == 0 {
				f.FlapDownNS = d.FlapDownNS
			}
			if f.FlapUpNS == 0 {
				f.FlapUpNS = d.FlapUpNS
			}
			if f.FlapCycles == 0 {
				f.FlapCycles = d.FlapCycles
			}
			// As above: exact zero marks an omitted JSON field.
			if f.GrayLoss == 0 { //lint:allow floateq
				f.GrayLoss = d.GrayLoss
			}
			if f.GrayRateFactor == 0 { //lint:allow floateq
				f.GrayRateFactor = d.GrayRateFactor
			}
			if f.Flows == 0 {
				f.Flows = d.Flows
			}
			if f.WindowNS == 0 {
				f.WindowNS = d.WindowNS
			}
			s.Faults = &f
		}
	}
	return s
}

// Validate rejects specs the runner cannot execute. It operates on the
// normalized form.
func (s Spec) Validate() error {
	if s.Version != SpecVersion {
		return fmt.Errorf("jobs: unsupported spec version %d (want %d)", s.Version, SpecVersion)
	}
	if s.Telemetry && s.Shards > 0 {
		return fmt.Errorf("jobs: telemetry needs the serial engine's event stream; set shards=0")
	}
	switch s.Kind {
	case "fct":
		switch s.Fabric {
		case "leafspine", "rrg", "dring", "xpander", "debruijn", "rng":
		default:
			return fmt.Errorf("jobs: unknown fabric %q (want leafspine, rrg, dring, xpander, debruijn or rng)", s.Fabric)
		}
		if !s.Topo.Paper {
			f := s.Topo.Scale
			if f < 1 || 48%f != 0 || 16%f != 0 {
				return fmt.Errorf("jobs: scale %d must divide 48 and 16", f)
			}
		}
		if !validTM(s.TM) {
			return fmt.Errorf("jobs: unknown traffic matrix %q", s.TM)
		}
		if s.Util <= 0 || s.Util > 10 {
			return fmt.Errorf("jobs: util %v out of range (0, 10]", s.Util)
		}
		if s.WindowSec <= 0 || s.WindowSec > 10 {
			return fmt.Errorf("jobs: window %vs out of range (0, 10]", s.WindowSec)
		}
		if s.Trials < 0 {
			return fmt.Errorf("jobs: negative trials %d", s.Trials)
		}
		if s.MaxFlows < 0 {
			return fmt.Errorf("jobs: negative max_flows %d", s.MaxFlows)
		}
	case "live":
		switch s.Fabric {
		case "rrg", "dring":
		default:
			return fmt.Errorf("jobs: live runs support fabric dring or rrg, not %q", s.Fabric)
		}
		if s.Topo.Supernodes < 5 {
			return fmt.Errorf("jobs: live supernodes %d < 5", s.Topo.Supernodes)
		}
		if s.Topo.Tors < 1 || s.Topo.Ports < 4*s.Topo.Tors {
			return fmt.Errorf("jobs: infeasible live geometry %d ToRs × %d ports", s.Topo.Tors, s.Topo.Ports)
		}
		if s.Faults == nil {
			return fmt.Errorf("jobs: live spec needs a fault schedule")
		}
		if s.Faults.Fraction < 0 || s.Faults.Fraction > 1 {
			return fmt.Errorf("jobs: fault fraction %v out of [0, 1]", s.Faults.Fraction)
		}
	default:
		return fmt.Errorf("jobs: unknown kind %q (want fct or live)", s.Kind)
	}
	return nil
}

// Hash returns the spec's store key (normalizing first). The shard count
// is exempt from the preimage beyond the engine choice: every Shards > 0
// hashes as Shards = 1, because the sharded engine's results are
// shard-count-invariant by construction. Telemetry is exempt entirely:
// observation never changes what a run computes, so an observed and an
// unobserved run must share one cache entry.
func (s Spec) Hash() (string, error) {
	return store.Key(s.HashForm())
}

// HashForm returns the normalized spec with the hash exemptions applied —
// the exact preimage of Hash. Store writers must commit this form, not the
// submitted spec: store.Put verifies the spec it archives hashes to the
// entry key, so an exempted field left in place (a sharded or telemetry
// run) would fail the write and silently leave the result uncached.
func (s Spec) HashForm() Spec {
	n := s.Normalized()
	if n.Shards > 0 {
		n.Shards = 1
	}
	n.Telemetry = false
	return n
}

func validTM(tm string) bool {
	for _, k := range core.AllTMKinds() {
		if string(k) == tm {
			return true
		}
	}
	return false
}
