package telemetry

import (
	"fmt"
	"sync"

	"spineless/internal/netsim"
)

// Recorder is the caller-facing handle threaded through config layers
// (core.FCTConfig.Telemetry, resilience.LiveConfig.Telemetry): the caller
// builds it with just a Config — before fabric shape or flow count are
// known — and the run layer binds one Sink per simulator via Attach.
// Snapshot merges across every sink bound so far, live, so a service can
// stream a multi-trial run while it executes.
type Recorder struct {
	cfg Config

	mu      sync.Mutex
	sinks   []*Sink
	classOf func(flow int) uint8
}

// NewRecorder builds a recorder; cfg zero values take the package
// defaults (100µs buckets, 512-bucket window, 1 class).
func NewRecorder(cfg Config) *Recorder {
	return &Recorder{cfg: cfg.withDefaults()}
}

// Config returns the recorder's resolved configuration.
func (r *Recorder) Config() Config { return r.cfg }

// SetClassOf installs the flow→class attribution used by subsequently
// attached sinks: classOf is called once per flow index at attach time.
// Call it before the run starts; nil reverts to single-class attribution.
func (r *Recorder) SetClassOf(classOf func(flow int) uint8) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.classOf = classOf
}

// Attach builds a sink shaped to sim's fabric and a run of flows flows,
// installs it as sim's tracer, and registers it for Snapshot merging.
// Parallel trials may attach concurrently; each gets its own sink. Class
// attribution comes from SetClassOf (nil = single class).
func (r *Recorder) Attach(sim *netsim.Simulator, flows int) (*Sink, error) {
	r.mu.Lock()
	classFn := r.classOf
	r.mu.Unlock()
	var classOf []uint8
	if classFn != nil {
		classOf = make([]uint8, flows)
		for i := range classOf {
			classOf[i] = classFn(i)
		}
	}
	return r.attach(sim, flows, classOf)
}

// AttachClassed is Attach with an explicit per-run flow→class slice — the
// form used by job-class trials, whose class assignments differ per trial
// window (a recorder-global SetClassOf cannot express that without racing
// parallel trials).
func (r *Recorder) AttachClassed(sim *netsim.Simulator, classOf []uint8) (*Sink, error) {
	return r.attach(sim, len(classOf), classOf)
}

func (r *Recorder) attach(sim *netsim.Simulator, flows int, classOf []uint8) (*Sink, error) {
	links := sim.NumLinks()
	rates := make([]float64, links)
	for i := range rates {
		rates[i] = sim.LinkRateBps(int32(i))
	}
	sink, err := NewSink(r.cfg, links, rates, flows, classOf)
	if err != nil {
		return nil, err
	}
	if err := sim.SetTracer(sink); err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	r.mu.Lock()
	r.sinks = append(r.sinks, sink)
	r.mu.Unlock()
	return sink, nil
}

// Sinks returns how many sinks have been attached so far.
func (r *Recorder) Sinks() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sinks)
}

// Snapshot merges the retained windows of every attached sink (trial
// series sum, queue peaks max — see Snapshot.Merge). Sinks bound to
// fabrics with different link counts — a resilience Study replaying each
// fraction on its own degraded fabric — cannot share per-link series; the
// merge then degrades to lifetime totals only and marks the snapshot
// Mixed. It is safe during runs in flight; with no sinks attached yet it
// returns an empty snapshot.
func (r *Recorder) Snapshot() *Snapshot {
	r.mu.Lock()
	sinks := append([]*Sink(nil), r.sinks...)
	r.mu.Unlock()
	if len(sinks) == 0 {
		return &Snapshot{BucketNS: r.cfg.BucketNS, Classes: r.cfg.Classes}
	}
	out := sinks[0].Snapshot()
	for _, s := range sinks[1:] {
		next := s.Snapshot()
		if out.Mixed || !out.SameShape(next) {
			if !out.Mixed {
				out = &Snapshot{BucketNS: out.BucketNS, Classes: out.Classes, Mixed: true, Totals: out.Totals}
			}
			out.AddTotals(next.Totals)
			continue
		}
		// Same shape: Merge cannot fail.
		if err := out.Merge(next); err != nil {
			panic(fmt.Sprintf("telemetry: merge of same-shape snapshots failed: %v", err))
		}
	}
	return out
}
