package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"spineless/internal/metrics"
)

// Totals are a sink's lifetime counters, immune to ring eviction.
type Totals struct {
	TxBytes        uint64   `json:"tx_bytes"`
	DropsQueue     uint64   `json:"drops_queue"`
	DropsGray      uint64   `json:"drops_gray"`
	DropsBlackhole uint64   `json:"drops_blackhole"`
	GoodputBytes   []uint64 `json:"goodput_bytes_by_class"`
	PeakQueueBytes int64    `json:"peak_queue_bytes"`
	CwndUpdates    uint64   `json:"cwnd_updates"`
	LinkEvents     uint64   `json:"link_events"`
	LinksDown      int      `json:"links_down"`
}

// Drops returns the per-reason totals indexed by netsim.DropReason.
func (t Totals) Drops() [NumDropReasons]uint64 {
	return [NumDropReasons]uint64{t.DropsQueue, t.DropsGray, t.DropsBlackhole}
}

// Snapshot is a copied, time-ordered view of a sink's retained window:
// series[i] covers absolute bucket FirstBucket+i, i.e. simulated time
// [(FirstBucket+i)·BucketNS, (FirstBucket+i+1)·BucketNS). A snapshot is a
// plain value — safe to read, merge, or marshal while the run continues.
type Snapshot struct {
	BucketNS    int64 `json:"bucket_ns"`
	FirstBucket int64 `json:"first_bucket"`
	Links       int   `json:"links"`
	Classes     int   `json:"classes"`

	// TxBytes[link][i] and QueuePeak[link][i] are per-link series;
	// Drops[reason][i] is indexed by netsim.DropReason; Goodput[class][i]
	// by flow class.
	TxBytes   [][]int64  `json:"tx_bytes,omitempty"`
	QueuePeak [][]int64  `json:"queue_peak,omitempty"`
	Drops     [][]uint64 `json:"drops,omitempty"`
	Goodput   [][]int64  `json:"goodput,omitempty"`

	// RateBps is the per-link nominal capacity used by utilization
	// renderings (nil when the sink was built without rates).
	RateBps []float64 `json:"-"`

	// Mixed marks a merge across sinks whose fabrics had different link
	// counts (e.g. a resilience Study whose fractions replay on different
	// degraded fabrics): per-link series are meaningless across such runs
	// and are dropped; Totals still aggregate.
	Mixed bool `json:"mixed,omitempty"`

	Totals Totals `json:"totals"`
}

// SameShape reports whether two snapshots' series are commensurable:
// equal bucket width, link count and class count.
func (sn *Snapshot) SameShape(other *Snapshot) bool {
	return sn.BucketNS == other.BucketNS && sn.Links == other.Links && sn.Classes == other.Classes
}

// Buckets returns the number of retained buckets in the snapshot's series.
func (sn *Snapshot) Buckets() int {
	if len(sn.Drops) > 0 {
		return len(sn.Drops[0])
	}
	return 0
}

// Snapshot copies the sink's retained window. It takes the sink's mutex,
// so it is safe concurrently with a run in flight; cost is O(window), off
// the hot path.
func (s *Sink) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()

	sn := &Snapshot{
		BucketNS: s.cfg.BucketNS,
		Links:    s.links,
		Classes:  s.cfg.Classes,
		RateBps:  s.rateBps,
		Totals: Totals{
			TxBytes:        s.totTx,
			DropsQueue:     s.totDrops[0],
			DropsGray:      s.totDrops[1],
			DropsBlackhole: s.totDrops[2],
			GoodputBytes:   append([]uint64(nil), s.totGoodput...),
			PeakQueueBytes: s.peakQueue,
			CwndUpdates:    s.cwndUpdates,
			LinkEvents:     s.linkEvents,
			LinksDown:      s.linksDown,
		},
	}
	if s.head < 0 {
		return sn
	}
	first := s.head - int64(s.cfg.Buckets) + 1
	if first < 0 {
		first = 0
	}
	n := int(s.head - first + 1)
	sn.FirstBucket = first

	sn.TxBytes = make([][]int64, s.links)
	sn.QueuePeak = make([][]int64, s.links)
	for l := 0; l < s.links; l++ {
		sn.TxBytes[l] = make([]int64, n)
		sn.QueuePeak[l] = make([]int64, n)
	}
	sn.Drops = make([][]uint64, NumDropReasons)
	for r := range sn.Drops {
		sn.Drops[r] = make([]uint64, n)
	}
	sn.Goodput = make([][]int64, s.cfg.Classes)
	for c := range sn.Goodput {
		sn.Goodput[c] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		slot := (first + int64(i)) % int64(s.cfg.Buckets)
		for l := 0; l < s.links; l++ {
			sn.TxBytes[l][i] = s.txBytes[slot*int64(s.links)+int64(l)]
			sn.QueuePeak[l][i] = s.queuePeak[slot*int64(s.links)+int64(l)]
		}
		for r := 0; r < NumDropReasons; r++ {
			sn.Drops[r][i] = s.drops[slot*NumDropReasons+int64(r)]
		}
		for c := 0; c < s.cfg.Classes; c++ {
			sn.Goodput[c][i] = s.goodput[slot*int64(s.cfg.Classes)+int64(c)]
		}
	}
	return sn
}

// Merge folds other into sn: counters (tx, drops, goodput) sum, queue
// peaks take the max — the convention for pooling trials that share a time
// origin (core.FCTConfig.Trials reruns the same window with per-trial
// seeds, so summed series read as aggregate offered load). The merged
// window is the union of both windows. Shapes (bucket width, link and
// class counts) must match.
func (sn *Snapshot) Merge(other *Snapshot) error {
	if other == nil {
		return nil
	}
	if !sn.SameShape(other) {
		return fmt.Errorf("telemetry: merging mismatched snapshots (bucket %d/%d ns, %d/%d links, %d/%d classes)",
			sn.BucketNS, other.BucketNS, sn.Links, other.Links, sn.Classes, other.Classes)
	}
	if other.Buckets() > 0 {
		if sn.Buckets() == 0 {
			sn.FirstBucket = other.FirstBucket
		}
		first := min64(sn.FirstBucket, other.FirstBucket)
		last := max64(sn.FirstBucket+int64(sn.Buckets()), other.FirstBucket+int64(other.Buckets())) - 1
		n := int(last - first + 1)
		sn.TxBytes = mergeI64(sn.TxBytes, sn.FirstBucket, other.TxBytes, other.FirstBucket, first, n, false)
		sn.QueuePeak = mergeI64(sn.QueuePeak, sn.FirstBucket, other.QueuePeak, other.FirstBucket, first, n, true)
		sn.Drops = mergeU64(sn.Drops, sn.FirstBucket, other.Drops, other.FirstBucket, first, n)
		sn.Goodput = mergeI64(sn.Goodput, sn.FirstBucket, other.Goodput, other.FirstBucket, first, n, false)
		sn.FirstBucket = first
	}
	if sn.RateBps == nil {
		sn.RateBps = other.RateBps
	}
	sn.AddTotals(other.Totals)
	return nil
}

// AddTotals folds other's lifetime counters into sn's (sums, except queue
// peak which takes the max) without touching the series — the shape-free
// half of Merge.
func (sn *Snapshot) AddTotals(other Totals) {
	sn.Totals.TxBytes += other.TxBytes
	sn.Totals.DropsQueue += other.DropsQueue
	sn.Totals.DropsGray += other.DropsGray
	sn.Totals.DropsBlackhole += other.DropsBlackhole
	if len(sn.Totals.GoodputBytes) < len(other.GoodputBytes) {
		g := make([]uint64, len(other.GoodputBytes))
		copy(g, sn.Totals.GoodputBytes)
		sn.Totals.GoodputBytes = g
	}
	for c, v := range other.GoodputBytes {
		sn.Totals.GoodputBytes[c] += v
	}
	if other.PeakQueueBytes > sn.Totals.PeakQueueBytes {
		sn.Totals.PeakQueueBytes = other.PeakQueueBytes
	}
	sn.Totals.CwndUpdates += other.CwndUpdates
	sn.Totals.LinkEvents += other.LinkEvents
	sn.Totals.LinksDown += other.LinksDown
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// mergeI64 re-bases both series groups onto the window [first, first+n)
// and folds b into a (sum, or max when usePeak).
func mergeI64(a [][]int64, aFirst int64, b [][]int64, bFirst int64, first int64, n int, usePeak bool) [][]int64 {
	rows := len(a)
	if len(b) > rows {
		rows = len(b)
	}
	out := make([][]int64, rows)
	for r := range out {
		out[r] = make([]int64, n)
		if r < len(a) {
			copy(out[r][aFirst-first:], a[r])
		}
		if r < len(b) {
			off := bFirst - first
			for i, v := range b[r] {
				if usePeak {
					if v > out[r][off+int64(i)] {
						out[r][off+int64(i)] = v
					}
				} else {
					out[r][off+int64(i)] += v
				}
			}
		}
	}
	return out
}

func mergeU64(a [][]uint64, aFirst int64, b [][]uint64, bFirst int64, first int64, n int) [][]uint64 {
	rows := len(a)
	if len(b) > rows {
		rows = len(b)
	}
	out := make([][]uint64, rows)
	for r := range out {
		out[r] = make([]uint64, n)
		if r < len(a) {
			copy(out[r][aFirst-first:], a[r])
		}
		if r < len(b) {
			off := bFirst - first
			for i, v := range b[r] {
				out[r][off+int64(i)] += v
			}
		}
	}
	return out
}

// Utilization returns link l's series as a fraction of nominal capacity
// (nil when the snapshot has no link rates or no window).
func (sn *Snapshot) Utilization(l int) []float64 {
	if sn.RateBps == nil || sn.Buckets() == 0 || l < 0 || l >= len(sn.TxBytes) {
		return nil
	}
	bucketSec := float64(sn.BucketNS) / 1e9
	out := make([]float64, sn.Buckets())
	for i, tx := range sn.TxBytes[l] {
		out[i] = float64(tx) * 8 / (sn.RateBps[l] * bucketSec)
	}
	return out
}

// DropRate returns the per-second drop rate series for one reason.
func (sn *Snapshot) DropRate(reason int) []float64 {
	if reason < 0 || reason >= len(sn.Drops) {
		return nil
	}
	bucketSec := float64(sn.BucketNS) / 1e9
	out := make([]float64, len(sn.Drops[reason]))
	for i, d := range sn.Drops[reason] {
		out[i] = float64(d) / bucketSec
	}
	return out
}

// TopLinks returns the ids of the n busiest links by retained tx bytes,
// busiest first (ties break toward the lower id, keeping the ordering
// deterministic).
func (sn *Snapshot) TopLinks(n int) []int {
	type lt struct {
		id int
		tx int64
	}
	all := make([]lt, len(sn.TxBytes))
	for l, series := range sn.TxBytes {
		var t int64
		for _, v := range series {
			t += v
		}
		all[l] = lt{id: l, tx: t}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].tx != all[j].tx {
			return all[i].tx > all[j].tx
		}
		return all[i].id < all[j].id
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].id
	}
	return out
}

// Digest renders a human-readable run summary: lifetime totals, per-class
// goodput, and the topN busiest links' mean/peak utilization over the
// retained window. Mixed snapshots (sinks from differently shaped fabrics)
// carry no per-link series, so the digest degrades to totals only — the
// same degradation Snapshot.Merge applies.
func (sn *Snapshot) Digest(topN int) string {
	var b strings.Builder
	t := sn.Totals
	fmt.Fprintf(&b, "telemetry: tx %s, drops queue=%d gray=%d blackhole=%d, peak queue %s, cwnd updates %d, links down %d\n",
		fmtBytes(t.TxBytes), t.DropsQueue, t.DropsGray, t.DropsBlackhole,
		fmtBytes(uint64(t.PeakQueueBytes)), t.CwndUpdates, t.LinksDown)
	if len(t.GoodputBytes) > 1 {
		b.WriteString("goodput by class:")
		for c, g := range t.GoodputBytes {
			fmt.Fprintf(&b, " [%d]=%s", c, fmtBytes(g))
		}
		b.WriteByte('\n')
	}
	if sn.Mixed {
		b.WriteString("per-link series unavailable: merged sinks span differently shaped fabrics\n")
		return b.String()
	}
	if sn.Buckets() == 0 {
		b.WriteString("no retained window (no packets observed)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "retained window: %d buckets × %s from t=%s\n",
		sn.Buckets(), fmtDur(sn.BucketNS), fmtDur(sn.FirstBucket*sn.BucketNS))
	links := sn.TopLinks(topN)
	for _, l := range links {
		u := sn.Utilization(l)
		var mean, peak float64
		for _, v := range u {
			mean += v
			if v > peak {
				peak = v
			}
		}
		if len(u) > 0 {
			mean /= float64(len(u))
		}
		fmt.Fprintf(&b, "  link %4d: mean util %5.1f%%  peak %5.1f%%\n", l, mean*100, peak*100)
	}
	return b.String()
}

func fmtBytes(v uint64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(v)/(1<<10))
	}
	return fmt.Sprintf("%dB", v)
}

func fmtDur(ns int64) string { return time.Duration(ns).String() }

// UtilHeatmap renders the maxLinks busiest links' utilization over the
// retained window as a metrics.Heatmap: Y is the link id, X the bucket's
// start time in microseconds, cells the fraction of nominal capacity.
// Links never observed transmitting stay unset (empty CSV fields).
func (sn *Snapshot) UtilHeatmap(title string, maxLinks int) *metrics.Heatmap {
	links := sn.TopLinks(maxLinks)
	n := sn.Buckets()
	xt := make([]int, n)
	for i := range xt {
		xt[i] = int((sn.FirstBucket + int64(i)) * sn.BucketNS / 1000)
	}
	h := metrics.NewHeatmap(title, "t_us", "link", xt, links)
	for yi, l := range links {
		u := sn.Utilization(l)
		for xi := 0; xi < n && xi < len(u); xi++ {
			if sn.TxBytes[l][xi] > 0 {
				h.Set(xi, yi, u[xi])
			}
		}
	}
	return h
}
