package telemetry

import (
	"sort"
	"sync"
)

// Hub is the service-side registry of live recorders: spinelessd registers
// one recorder per telemetry-enabled running job, and the /v1/telemetry
// stream snapshots the hub on every frame. Registration is keyed by job id;
// entries unregister when the job settles (the release func), so the hub
// only ever holds runs in flight.
type Hub struct {
	mu   sync.Mutex
	recs map[string]*Recorder
}

// NewHub builds an empty hub.
func NewHub() *Hub {
	return &Hub{recs: make(map[string]*Recorder)}
}

// Register adds rec under id and returns a release func that removes it
// (idempotent). A second Register with the same id replaces the first; the
// first's release then only removes its own registration.
func (h *Hub) Register(id string, rec *Recorder) func() {
	h.mu.Lock()
	h.recs[id] = rec
	h.mu.Unlock()
	return func() {
		h.mu.Lock()
		if h.recs[id] == rec {
			delete(h.recs, id)
		}
		h.mu.Unlock()
	}
}

// Active returns the number of registered recorders.
func (h *Hub) Active() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.recs)
}

// Entry is one job's live telemetry in a hub snapshot.
type Entry struct {
	ID   string
	Snap *Snapshot
}

// Snapshot captures every registered recorder, sorted by id so frames are
// stable for consumers and tests.
func (h *Hub) Snapshot() []Entry {
	h.mu.Lock()
	ids := make([]string, 0, len(h.recs))
	recs := make([]*Recorder, 0, len(h.recs))
	for id := range h.recs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		recs = append(recs, h.recs[id])
	}
	h.mu.Unlock()

	out := make([]Entry, len(ids))
	for i, id := range ids {
		out[i] = Entry{ID: id, Snap: recs[i].Snapshot()}
	}
	return out
}

// Get returns the recorder registered under id, or nil.
func (h *Hub) Get(id string) *Recorder {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.recs[id]
}
