// Package telemetry rolls the netsim Tracer event stream into a live
// fabric digital twin: fixed-width time-bucket series of per-link
// utilization, queue depth, drops by reason, and per-flow-class goodput,
// held in a ring buffer so a long run retains a sliding window instead of
// growing without bound.
//
// The hot path — the six Tracer hooks — allocates nothing: every series is
// preallocated at attach time from the simulator's link count and the
// run's flow count, and each hook only indexes and adds. The claim is
// pinned dynamically by TestTelemetryAddsNoAllocs (AllocsPerRun, mirroring
// the nil-tracer pin) and statically by spinelint's hotpath checker (the
// hooks are //lint:hotpath roots). A mutex guards the bucket state so a
// concurrent reader (the spinelessd /v1/telemetry stream) can Snapshot a
// run in flight; locking an uncontended mutex does not allocate, and the
// simulator drives all hooks from one goroutine.
//
// See DESIGN.md §14.
package telemetry

import (
	"fmt"
	"sync"

	"spineless/internal/netsim"
)

// NumDropReasons is the size of the netsim.DropReason taxonomy
// (queue / gray / blackhole).
const NumDropReasons = 3

// Config sizes a telemetry sink.
type Config struct {
	// BucketNS is the series bucket width in simulated nanoseconds
	// (default 100µs).
	BucketNS int64
	// Buckets is the ring retention window in buckets (default 512):
	// events older than Buckets×BucketNS behind the newest bucket are
	// evicted, so a sink's memory is fixed regardless of run length.
	Buckets int
	// Classes is the number of flow classes attributed separately in the
	// goodput series (default 1). Class ids come from the classOf slice
	// passed at attach time; a nil classOf puts every flow in class 0.
	Classes int
}

func (c Config) withDefaults() Config {
	if c.BucketNS <= 0 {
		c.BucketNS = 100_000
	}
	if c.Buckets <= 0 {
		c.Buckets = 512
	}
	if c.Classes <= 0 {
		c.Classes = 1
	}
	return c
}

// Sink implements netsim.Tracer over preallocated ring-buffer series for
// one simulator run. Build one with NewSink (or Recorder.Attach, which
// also installs it) before Run; read it with Snapshot at any time,
// including concurrently with the run.
type Sink struct {
	mu  sync.Mutex
	cfg Config

	links   int
	rateBps []float64 // per-link nominal capacity, bits/sec

	// head is the highest absolute bucket index seen (-1 before the first
	// event). The ring retains absolute buckets (head-Buckets, head]; slot
	// layout is [slot*width + column] so advancing the ring clears one
	// contiguous span per series.
	head      int64
	txBytes   []int64  // [slot*links + link]
	queuePeak []int64  // [slot*links + link] max FIFO bytes observed
	drops     []uint64 // [slot*NumDropReasons + reason]
	goodput   []int64  // [slot*classes + class] cumulative-ack advance

	lastAck []int64 // per flow: highest cumulative ack delivered
	classOf []uint8 // per flow class id (nil = all class 0)
	down    []bool  // per link: current fault-injected down state

	// Lifetime totals, unaffected by ring eviction.
	totTx       uint64
	totDrops    [NumDropReasons]uint64
	totGoodput  []uint64 // per class
	peakQueue   int64
	cwndUpdates uint64
	linkEvents  uint64
	linksDown   int
	late        uint64 // events behind the retention window, ignored
}

var _ netsim.Tracer = (*Sink)(nil)

// NewSink builds a sink for a fabric with links unidirectional links
// (rateBps[i] is link i's nominal capacity in bits/sec; nil skips
// utilization normalization) and a run of flows flows. classOf maps each
// flow to its class id; nil assigns every flow class 0.
func NewSink(cfg Config, links int, rateBps []float64, flows int, classOf []uint8) (*Sink, error) {
	cfg = cfg.withDefaults()
	if links <= 0 {
		return nil, fmt.Errorf("telemetry: need a positive link count, got %d", links)
	}
	if rateBps != nil && len(rateBps) != links {
		return nil, fmt.Errorf("telemetry: %d link rates for %d links", len(rateBps), links)
	}
	if classOf != nil && len(classOf) != flows {
		return nil, fmt.Errorf("telemetry: classOf covers %d of %d flows", len(classOf), flows)
	}
	for i, c := range classOf {
		if int(c) >= cfg.Classes {
			return nil, fmt.Errorf("telemetry: flow %d has class %d but the sink holds %d classes", i, c, cfg.Classes)
		}
	}
	return &Sink{
		cfg:        cfg,
		links:      links,
		rateBps:    rateBps,
		head:       -1,
		txBytes:    make([]int64, cfg.Buckets*links),
		queuePeak:  make([]int64, cfg.Buckets*links),
		drops:      make([]uint64, cfg.Buckets*NumDropReasons),
		goodput:    make([]int64, cfg.Buckets*cfg.Classes),
		lastAck:    make([]int64, flows),
		classOf:    classOf,
		down:       make([]bool, links),
		totGoodput: make([]uint64, cfg.Classes),
	}, nil
}

// bucket maps nowNS to its ring slot, advancing (and clearing) the ring
// when nowNS opens a new bucket. The second return is false for events
// behind the retention window, which are counted and dropped. Callers hold
// s.mu.
//
//lint:hotpath
func (s *Sink) bucket(nowNS int64) (int64, bool) {
	b := nowNS / s.cfg.BucketNS
	if b > s.head {
		s.advance(b)
	}
	if b <= s.head-int64(s.cfg.Buckets) {
		s.late++
		return 0, false
	}
	return b % int64(s.cfg.Buckets), true
}

// advance moves the ring head forward to absolute bucket b, clearing every
// slot that enters the window. A jump of more than Buckets clears each
// slot exactly once.
//
//lint:hotpath
func (s *Sink) advance(b int64) {
	n := int64(s.cfg.Buckets)
	from := s.head + 1
	if b-from >= n {
		from = b - n + 1
	}
	for h := from; h <= b; h++ {
		slot := h % n
		clear(s.txBytes[slot*int64(s.links) : (slot+1)*int64(s.links)])
		clear(s.queuePeak[slot*int64(s.links) : (slot+1)*int64(s.links)])
		clear(s.drops[slot*NumDropReasons : (slot+1)*NumDropReasons])
		clear(s.goodput[slot*int64(s.cfg.Classes) : (slot+1)*int64(s.cfg.Classes)])
	}
	s.head = b
}

// OnEnqueue records the link's post-acceptance FIFO occupancy into the
// bucket's queue-depth peak.
//
//lint:hotpath
func (s *Sink) OnEnqueue(nowNS int64, link, flow int32, hop int, isAck bool, wireBytes int32, queueBytes int64, queueCount int) {
	s.mu.Lock()
	if slot, ok := s.bucket(nowNS); ok {
		i := slot*int64(s.links) + int64(link)
		if queueBytes > s.queuePeak[i] {
			s.queuePeak[i] = queueBytes
		}
	}
	if queueBytes > s.peakQueue {
		s.peakQueue = queueBytes
	}
	s.mu.Unlock()
}

// OnTxStart attributes the frame's wire bytes to the link's utilization
// bucket at serialization start.
//
//lint:hotpath
func (s *Sink) OnTxStart(nowNS int64, link, flow int32, isAck bool, wireBytes int32) {
	s.mu.Lock()
	if slot, ok := s.bucket(nowNS); ok {
		s.txBytes[slot*int64(s.links)+int64(link)] += int64(wireBytes)
	}
	s.totTx += uint64(wireBytes)
	s.mu.Unlock()
}

// OnDeliver turns delivered ACKs into goodput: an ACK reaching the sender
// carries the receiver's cumulative ack in seq, so the advance over the
// flow's previous high-water mark is exactly the payload newly accepted
// in-order — retransmitted and out-of-order bytes are not double counted.
// The advance is attributed to the flow's class bucket.
//
//lint:hotpath
func (s *Sink) OnDeliver(nowNS int64, flow int32, isAck bool, seq int64) {
	if !isAck {
		return
	}
	s.mu.Lock()
	adv := seq - s.lastAck[flow]
	if adv > 0 {
		s.lastAck[flow] = seq
		class := int64(0)
		if s.classOf != nil {
			class = int64(s.classOf[flow])
		}
		if slot, ok := s.bucket(nowNS); ok {
			s.goodput[slot*int64(s.cfg.Classes)+class] += adv
		}
		s.totGoodput[class] += uint64(adv)
	}
	s.mu.Unlock()
}

// OnDrop counts the loss into the bucket's per-reason drop series.
//
//lint:hotpath
func (s *Sink) OnDrop(nowNS int64, link, flow int32, isAck bool, reason netsim.DropReason) {
	s.mu.Lock()
	if slot, ok := s.bucket(nowNS); ok {
		s.drops[slot*NumDropReasons+int64(reason)]++
	}
	s.totDrops[reason]++
	s.mu.Unlock()
}

// OnCwnd counts sender control-state updates; per-flow cwnd series are out
// of scope for the fabric twin (they are O(flows), not O(links)).
//
//lint:hotpath
func (s *Sink) OnCwnd(nowNS int64, flow int32, cwnd float64, sndUna, sndNxt int64) {
	s.mu.Lock()
	s.cwndUpdates++
	s.mu.Unlock()
}

// OnStateChange tracks fault-injected link transitions so the twin can
// report how many links are down right now.
//
//lint:hotpath
func (s *Sink) OnStateChange(nowNS int64, link int32, down bool, lossProb, rateFactor float64) {
	s.mu.Lock()
	s.linkEvents++
	if down != s.down[link] {
		s.down[link] = down
		if down {
			s.linksDown++
		} else {
			s.linksDown--
		}
	}
	s.mu.Unlock()
}

// LateEvents returns how many events arrived behind the retention window
// and were dropped from the series (they still count in lifetime totals).
func (s *Sink) LateEvents() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.late
}
