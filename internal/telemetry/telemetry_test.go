package telemetry

import (
	"strings"
	"testing"

	"spineless/internal/netsim"
	"spineless/internal/routing"
	"spineless/internal/topology"
	"spineless/internal/workload"
)

// pairFabric builds a two-rack fabric with `links` parallel trunk links
// and `hosts` servers per rack (the netsim test fabric).
func pairFabric(t *testing.T, links, hosts int) *topology.Graph {
	t.Helper()
	g := topology.New("pair", 2, links+hosts)
	for i := 0; i < links; i++ {
		if err := g.AddLink(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	g.SetServers(0, hosts)
	g.SetServers(1, hosts)
	return g
}

func crossFlows(n int, sizeBytes int64) []workload.Flow {
	var flows []workload.Flow
	for i := 0; i < n; i++ {
		flows = append(flows, workload.Flow{
			ID: uint64(i), Src: i % 4, Dst: 4 + (i+1)%4,
			SizeBytes: sizeBytes, StartNS: int64(i) * 10_000,
		})
	}
	return flows
}

// TestTelemetryAddsNoAllocs pins the telemetry hot path at zero extra
// allocations: a run observed by a preallocated Sink must allocate exactly
// as much as the same run with no tracer. This is the AllocsPerRun twin of
// the nil-tracer pin in netsim (TestNilTracerAddsNoAllocs) and of the
// static spinelint hotpath walk over the Sink's hook methods.
func TestTelemetryAddsNoAllocs(t *testing.T) {
	g := pairFabric(t, 2, 4)
	flows := crossFlows(12, 40e3)

	probe, err := netsim.New(g, routing.NewECMP(g), netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rates := make([]float64, probe.NumLinks())
	for i := range rates {
		rates[i] = probe.LinkRateBps(int32(i))
	}
	sink, err := NewSink(Config{BucketNS: 50_000, Buckets: 128}, probe.NumLinks(), rates, len(flows), nil)
	if err != nil {
		t.Fatal(err)
	}

	run := func(tr netsim.Tracer) float64 {
		return testing.AllocsPerRun(5, func() {
			sim, err := netsim.New(g, routing.NewECMP(g), netsim.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if tr != nil {
				if err := sim.SetTracer(tr); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := sim.Run(flows); err != nil {
				t.Fatal(err)
			}
		})
	}
	bare := run(nil)
	observed := run(sink)
	if sink.Snapshot().Totals.TxBytes == 0 {
		t.Fatal("sink never observed a transmission — the comparison is vacuous")
	}
	if int64(bare) != int64(observed) {
		t.Fatalf("bare run allocates %.0f, telemetry-observed run %.0f — the sink hot path allocates",
			bare, observed)
	}
}

// TestSinkSeriesAccounting cross-checks the rolled-up series against the
// simulator's own counters on a clean run: utilization bytes equal every
// OnTxStart, and class-0 goodput equals the bytes of every completed flow
// exactly once (cumulative-ack advance cannot double-count retransmits).
func TestSinkSeriesAccounting(t *testing.T) {
	g := pairFabric(t, 2, 4)
	flows := crossFlows(8, 60e3)
	sim, err := netsim.New(g, routing.NewECMP(g), netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(Config{BucketNS: 100_000, Buckets: 4096})
	if _, err := rec.Attach(sim, len(flows)); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(flows) {
		t.Fatalf("only %d/%d flows completed", res.Completed, len(flows))
	}

	sn := rec.Snapshot()
	if sn.Buckets() == 0 {
		t.Fatal("empty snapshot window")
	}

	var wantGoodput uint64
	for _, f := range flows {
		wantGoodput += uint64(f.SizeBytes)
	}
	if got := sn.Totals.GoodputBytes[0]; got != wantGoodput {
		t.Fatalf("class-0 goodput %d, want the %d completed payload bytes", got, wantGoodput)
	}

	// The retention window covers the whole short run, so series sums must
	// equal lifetime totals.
	var seriesTx int64
	for _, link := range sn.TxBytes {
		for _, v := range link {
			seriesTx += v
		}
	}
	if uint64(seriesTx) != sn.Totals.TxBytes {
		t.Fatalf("retained tx series sums to %d, lifetime total %d", seriesTx, sn.Totals.TxBytes)
	}
	var seriesGoodput int64
	for _, v := range sn.Goodput[0] {
		seriesGoodput += v
	}
	if uint64(seriesGoodput) != wantGoodput {
		t.Fatalf("retained goodput series sums to %d, want %d", seriesGoodput, wantGoodput)
	}
	if sn.Totals.DropsQueue != res.Stats.Drops ||
		sn.Totals.DropsGray != res.Stats.GrayDrops ||
		sn.Totals.DropsBlackhole != res.Stats.Blackholed {
		t.Fatalf("drop totals (%d,%d,%d) disagree with simulator stats (%d,%d,%d)",
			sn.Totals.DropsQueue, sn.Totals.DropsGray, sn.Totals.DropsBlackhole,
			res.Stats.Drops, res.Stats.GrayDrops, res.Stats.Blackholed)
	}
	if sink := rec.Snapshot(); sink.Totals.PeakQueueBytes < 0 {
		t.Fatal("negative queue peak")
	}
}

// TestRingEviction runs long enough to wrap a tiny ring: the snapshot
// window must stay capped at Buckets, cover the newest buckets, and the
// lifetime totals must exceed what the retained window still holds.
func TestRingEviction(t *testing.T) {
	g := pairFabric(t, 1, 2)
	flows := []workload.Flow{{ID: 0, Src: 0, Dst: 2, SizeBytes: 400e3}}
	sim, err := netsim.New(g, routing.NewECMP(g), netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sink, err := NewSink(Config{BucketNS: 10_000, Buckets: 4}, sim.NumLinks(), nil, len(flows), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.SetTracer(sink); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("flow incomplete: %+v", res)
	}
	if res.FCTNS[0] <= 4*10_000 {
		t.Fatalf("run too short (%d ns) to wrap a 4×10µs ring", res.FCTNS[0])
	}
	sn := sink.Snapshot()
	if sn.Buckets() != 4 {
		t.Fatalf("retained window %d buckets, want the ring size 4", sn.Buckets())
	}
	var retained int64
	for _, link := range sn.TxBytes {
		for _, v := range link {
			retained += v
		}
	}
	if uint64(retained) >= sn.Totals.TxBytes {
		t.Fatalf("retained %d bytes >= lifetime %d — nothing was evicted", retained, sn.Totals.TxBytes)
	}
	wantFirst := sn.FirstBucket + int64(sn.Buckets()) - 1
	if lastBucket := res.FCTNS[0] / 10_000; wantFirst > lastBucket {
		t.Fatalf("window head bucket %d is past the run's last event bucket %d", wantFirst, lastBucket)
	}
	if sink.LateEvents() != 0 {
		t.Fatalf("%d late events on a monotone serial run", sink.LateEvents())
	}
}

// TestSnapshotMerge drives two hand-fed sinks and checks the trial-pooling
// convention: counters sum, queue peaks max, windows union.
func TestSnapshotMerge(t *testing.T) {
	mk := func() *Sink {
		s, err := NewSink(Config{BucketNS: 100, Buckets: 8, Classes: 2}, 2, nil, 4, []uint8{0, 1, 0, 1})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()

	a.OnTxStart(50, 0, 0, false, 1000)            // bucket 0, link 0
	a.OnEnqueue(50, 0, 0, 0, false, 1000, 900, 1) // queue peak 900
	a.OnDeliver(150, 1, true, 500)                // bucket 1, class 1 goodput
	a.OnDrop(150, 1, 0, false, netsim.DropQueue)

	b.OnTxStart(250, 0, 0, false, 2000)             // bucket 2, link 0
	b.OnEnqueue(250, 0, 0, 0, false, 2000, 1500, 2) // queue peak 1500
	b.OnDeliver(150, 2, true, 300)                  // bucket 1, class 0
	b.OnDrop(250, 1, 0, false, netsim.DropBlackhole)

	sn := a.Snapshot()
	if err := sn.Merge(b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if sn.FirstBucket != 0 || sn.Buckets() != 3 {
		t.Fatalf("merged window [%d,+%d), want [0,+3)", sn.FirstBucket, sn.Buckets())
	}
	if sn.TxBytes[0][0] != 1000 || sn.TxBytes[0][2] != 2000 {
		t.Fatalf("tx series %v, want 1000@0 and 2000@2", sn.TxBytes[0])
	}
	if sn.QueuePeak[0][0] != 900 || sn.QueuePeak[0][2] != 1500 {
		t.Fatalf("queue peak series %v", sn.QueuePeak[0])
	}
	if sn.Goodput[0][1] != 300 || sn.Goodput[1][1] != 500 {
		t.Fatalf("goodput by class %v / %v", sn.Goodput[0], sn.Goodput[1])
	}
	if sn.Drops[int(netsim.DropQueue)][1] != 1 || sn.Drops[int(netsim.DropBlackhole)][2] != 1 {
		t.Fatalf("drop series %v", sn.Drops)
	}
	if sn.Totals.TxBytes != 3000 || sn.Totals.PeakQueueBytes != 1500 {
		t.Fatalf("totals %+v", sn.Totals)
	}
	if sn.Totals.GoodputBytes[0] != 300 || sn.Totals.GoodputBytes[1] != 500 {
		t.Fatalf("goodput totals %v", sn.Totals.GoodputBytes)
	}

	// Shape mismatches are refused, not silently mangled.
	odd, err := NewSink(Config{BucketNS: 100, Buckets: 8}, 3, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sn.Merge(odd.Snapshot()); err == nil {
		t.Fatal("merging a 3-link snapshot into a 2-link one succeeded")
	}
}

// TestClassAttribution checks per-class goodput through Recorder.SetClassOf
// on a real run: both classes earn goodput and the classes partition the
// completed bytes exactly.
func TestClassAttribution(t *testing.T) {
	g := pairFabric(t, 2, 4)
	flows := crossFlows(8, 50e3)
	sim, err := netsim.New(g, routing.NewECMP(g), netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(Config{Classes: 2})
	rec.SetClassOf(func(flow int) uint8 { return uint8(flow % 2) })
	if _, err := rec.Attach(sim, len(flows)); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(flows) {
		t.Fatalf("only %d/%d flows completed", res.Completed, len(flows))
	}
	sn := rec.Snapshot()
	var want uint64
	for _, f := range flows {
		want += uint64(f.SizeBytes)
	}
	if sn.Totals.GoodputBytes[0] == 0 || sn.Totals.GoodputBytes[1] == 0 {
		t.Fatalf("a class earned no goodput: %v", sn.Totals.GoodputBytes)
	}
	if got := sn.Totals.GoodputBytes[0] + sn.Totals.GoodputBytes[1]; got != want {
		t.Fatalf("classes sum to %d goodput bytes, want %d", got, want)
	}
}

// TestUtilHeatmapRendersEmptyCells ties the twin to the Heatmap CSV fix:
// links that never transmitted stay unset and render as empty CSV fields,
// not literal NaN.
func TestUtilHeatmapRendersEmptyCells(t *testing.T) {
	sink, err := NewSink(Config{BucketNS: 100, Buckets: 8}, 2, []float64{8e11, 8e11}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	sink.OnTxStart(50, 0, 0, false, 1000) // only link 0, bucket 0
	sink.OnTxStart(150, 0, 0, false, 1000)
	h := sink.Snapshot().UtilHeatmap("util", 2)
	csv := "\n" + h.CSV()
	if want := "\n0,0.1000,0.1000\n"; !strings.Contains(csv, want) {
		t.Fatalf("heatmap CSV missing utilization row %q:%s", want, csv)
	}
	if want := "\n1,,\n"; !strings.Contains(csv, want) {
		t.Fatalf("idle link should render empty cells, got:%s", csv)
	}
}
