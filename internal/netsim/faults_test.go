package netsim

import (
	"math/rand"
	"testing"

	"spineless/internal/faults"
	"spineless/internal/routing"
	"spineless/internal/topology"
	"spineless/internal/workload"
)

// triangleFabric: switches 0-1-2 fully meshed, one server on 0 and one on 2,
// so the direct 0-2 link is the shortest path and 0-1-2 the detour.
func triangleFabric(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.New("tri", 3, 4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if err := g.AddLink(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g.SetServers(0, 1)
	g.SetServers(2, 1)
	return g
}

func TestLinkDownBlackholesUntilRepair(t *testing.T) {
	g := triangleFabric(t)
	size := int64(4 << 20) // ≈3.5 ms at 10 Gbps: still running at the cut
	flows := []workload.Flow{{ID: 1, Src: 0, Dst: 1, SizeBytes: size}}

	base := runFlows(t, g, routing.NewECMP(g), DefaultConfig(), flows)
	if base.Completed != 1 {
		t.Fatalf("baseline incomplete: %+v", base)
	}

	const failAt, repairAt = int64(1e6), int64(3e6)
	degraded := g.Clone()
	degraded.RemoveLink(0, 2)
	tv, err := routing.NewTimeVarying(
		routing.Phase{StartNS: 0, Scheme: routing.NewECMP(g)},
		routing.Phase{StartNS: repairAt, Scheme: routing.NewECMP(degraded)},
	)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(g, tv, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sched := &faults.Schedule{Seed: 7}
	sched.Cut(failAt, 0, 2)
	if err := sim.InstallFaults(sched); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("flow never recovered from the cut: %+v", res)
	}
	if res.Stats.Blackholed == 0 {
		t.Fatal("no packets blackholed into the down link")
	}
	if res.Stats.Reroutes != 1 {
		t.Fatalf("reroutes = %d, want 1", res.Stats.Reroutes)
	}
	if res.FlowsWithRTO != 1 {
		t.Fatalf("flows with RTO = %d, want 1", res.FlowsWithRTO)
	}
	if res.FCTNS[0] <= base.FCTNS[0] {
		t.Fatalf("transient was free: FCT %d <= baseline %d", res.FCTNS[0], base.FCTNS[0])
	}
	if res.BlackholeFirstNS < failAt {
		t.Fatalf("blackhole before the cut: %d < %d", res.BlackholeFirstNS, failAt)
	}
	// The blackhole must end within one max RTO of the repair: after the
	// repair, the next timeout retransmits onto the detour.
	maxRTO := int64(DefaultConfig().MaxRTO)
	if res.BlackholeLastNS > repairAt+maxRTO {
		t.Fatalf("blackhole persisted past repair: %d > %d", res.BlackholeLastNS, repairAt+maxRTO)
	}
}

func TestGrayLossAndRateDegradation(t *testing.T) {
	g := pairFabric(t, 1, 1)
	size := int64(1 << 20)
	flows := []workload.Flow{{ID: 1, Src: 0, Dst: 1, SizeBytes: size}}
	base := runFlows(t, g, routing.NewECMP(g), DefaultConfig(), flows)

	// 5% loss at nominal rate: the flow completes but pays retransmits.
	sim, err := New(g, routing.NewECMP(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sched := &faults.Schedule{Seed: 3}
	sched.Gray(0, 0, 1, 0.05, 1)
	if err := sim.InstallFaults(sched); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("gray loss killed the flow: %+v", res)
	}
	if res.Stats.GrayDrops == 0 {
		t.Fatal("5% loss dropped nothing")
	}
	if res.FCTNS[0] <= base.FCTNS[0] {
		t.Fatalf("gray loss was free: %d <= %d", res.FCTNS[0], base.FCTNS[0])
	}

	// Rate degraded to 25% without loss: FCT stretches roughly 4×.
	sim2, err := New(g, routing.NewECMP(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sched2 := &faults.Schedule{Seed: 3}
	sched2.Gray(0, 0, 1, 0, 0.25)
	if err := sim2.InstallFaults(sched2); err != nil {
		t.Fatal(err)
	}
	res2, err := sim2.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Completed != 1 {
		t.Fatalf("degraded link killed the flow: %+v", res2)
	}
	if res2.Stats.GrayDrops != 0 {
		t.Fatalf("pure rate degradation dropped %d packets", res2.Stats.GrayDrops)
	}
	ratio := float64(res2.FCTNS[0]) / float64(base.FCTNS[0])
	if ratio < 3 || ratio > 5.5 {
		t.Fatalf("25%% rate gave %.2f× FCT, want ≈4×", ratio)
	}
}

func TestFlappingLinkRecoversBetweenOutages(t *testing.T) {
	g := triangleFabric(t)
	size := int64(8 << 20)
	flows := []workload.Flow{{ID: 1, Src: 0, Dst: 1, SizeBytes: size}}
	sim, err := New(g, routing.NewECMP(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sched := &faults.Schedule{Seed: 1}
	sched.Flap(0, 2, 1e6, 5e5, 2e6, 3) // three 0.5 ms outages, 2 ms up between
	if err := sim.InstallFaults(sched); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("flow never finished around the flaps: %+v", res)
	}
	if res.Stats.Blackholed == 0 {
		t.Fatal("flapping link blackholed nothing")
	}
}

// TestFaultScheduleDeterminism is the reproducibility contract: the same
// seed and schedule — including a flapping link and a gray 5%-loss link —
// produce byte-identical FCTs and stats across two fresh runs.
func TestFaultScheduleDeterminism(t *testing.T) {
	build := func() (Results, []int64) {
		g, err := topology.DRing(topology.Uniform(6, 2, 20))
		if err != nil {
			t.Fatal(err)
		}
		fib, err := routing.NewShortestUnion(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		degraded := g.Clone()
		degraded.RemoveLink(0, 2)
		dfib, err := routing.NewShortestUnion(degraded, 2)
		if err != nil {
			t.Fatal(err)
		}
		tv, err := routing.NewTimeVarying(
			routing.Phase{StartNS: 0, Scheme: fib},
			routing.Phase{StartNS: 4e6, Scheme: dfib},
		)
		if err != nil {
			t.Fatal(err)
		}
		flows, err := workload.GenerateFlows(g, workload.Uniform(len(g.Racks())), workload.GenConfig{
			Flows:    150,
			Sizes:    workload.Pareto{MeanBytes: 30e3, Alpha: 1.05, Cap: 300e3},
			WindowNS: 8e6,
		}, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		sched := &faults.Schedule{Seed: 42}
		sched.Cut(2e6, 0, 2)
		sched.Flap(1, 5, 2e6, 5e5, 5e5, 3) // flapping link
		sched.Gray(2e6, 3, 7, 0.05, 1)     // gray link: 5% loss
		sched.Gray(2e6, 4, 8, 0.02, 0.5)   // gray link: loss + half rate
		sim, err := New(g, tv, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.InstallFaults(sched); err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(flows)
		if err != nil {
			t.Fatal(err)
		}
		return res, res.FCTNS
	}
	resA, fctA := build()
	resB, fctB := build()
	for i := range fctA {
		if fctA[i] != fctB[i] {
			t.Fatalf("FCT diverged at flow %d: %d vs %d", i, fctA[i], fctB[i])
		}
	}
	if resA.Stats != resB.Stats {
		t.Fatalf("stats diverged:\n%+v\n%+v", resA.Stats, resB.Stats)
	}
	if resA.BlackholeFirstNS != resB.BlackholeFirstNS || resA.BlackholeLastNS != resB.BlackholeLastNS {
		t.Fatal("blackhole window diverged")
	}
	if resA.Stats.Blackholed == 0 || resA.Stats.GrayDrops == 0 {
		t.Fatalf("faults not exercised: %+v", resA.Stats)
	}
}

func TestInstallFaultsValidation(t *testing.T) {
	g := pairFabric(t, 1, 1)
	sim, err := New(g, routing.NewECMP(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := &faults.Schedule{}
	bad.Cut(0, 0, 5) // no such link
	if err := sim.InstallFaults(bad); err == nil {
		t.Fatal("fault on non-existent link accepted")
	}
	worse := &faults.Schedule{}
	worse.Gray(0, 0, 1, 1.5, 1) // loss prob out of range
	if err := sim.InstallFaults(worse); err == nil {
		t.Fatal("loss probability 1.5 accepted")
	}
	ok := &faults.Schedule{}
	ok.Cut(1e6, 0, 1)
	if err := sim.InstallFaults(ok); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run([]workload.Flow{{ID: 1, Src: 0, Dst: 1, SizeBytes: 1000}}); err != nil {
		t.Fatal(err)
	}
	if err := sim.InstallFaults(ok); err == nil {
		t.Fatal("InstallFaults after Run accepted")
	}
}
