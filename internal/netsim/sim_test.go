package netsim

import (
	"math/rand"
	"testing"
	"time"

	"spineless/internal/routing"
	"spineless/internal/topology"
	"spineless/internal/workload"
)

// pairFabric: two ToRs joined by `links` parallel links, `hosts` servers each.
func pairFabric(t *testing.T, links, hosts int) *topology.Graph {
	t.Helper()
	g := topology.New("pair", 2, links+hosts)
	for i := 0; i < links; i++ {
		if err := g.AddLink(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	g.SetServers(0, hosts)
	g.SetServers(1, hosts)
	return g
}

func runFlows(t *testing.T, g *topology.Graph, scheme routing.Scheme, cfg Config, flows []workload.Flow) Results {
	t.Helper()
	sim, err := New(g, scheme, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSingleFlowNearLineRate(t *testing.T) {
	g := pairFabric(t, 1, 2)
	cfg := DefaultConfig()
	size := int64(4 << 20) // 4 MB
	res := runFlows(t, g, routing.NewECMP(g), cfg, []workload.Flow{
		{ID: 1, Src: 0, Dst: 2, SizeBytes: size},
	})
	if res.Completed != 1 {
		t.Fatalf("flow incomplete: %+v", res)
	}
	fct := res.FCTNS[0]
	// Ideal serialization at 10 Gbps with 40B headers per 1460B payload.
	ideal := float64(size) * (1500.0 / 1460.0) * 8 / 10e9 * 1e9
	if float64(fct) < ideal {
		t.Fatalf("FCT %.3fms beats line rate %.3fms", float64(fct)/1e6, ideal/1e6)
	}
	if float64(fct) > 2*ideal {
		t.Fatalf("FCT %.3fms more than 2× ideal %.3fms for an uncontended flow", float64(fct)/1e6, ideal/1e6)
	}
}

func TestDeterminism(t *testing.T) {
	g := pairFabric(t, 2, 8)
	var flows []workload.Flow
	for i := 0; i < 40; i++ {
		flows = append(flows, workload.Flow{
			ID: uint64(i), Src: i % 8, Dst: 8 + (i+3)%8,
			SizeBytes: int64(20e3 + 1000*i), StartNS: int64(i) * 5000,
		})
	}
	a := runFlows(t, g, routing.NewECMP(g), DefaultConfig(), flows)
	b := runFlows(t, g, routing.NewECMP(g), DefaultConfig(), flows)
	for i := range a.FCTNS {
		if a.FCTNS[i] != b.FCTNS[i] {
			t.Fatalf("run diverged at flow %d: %d vs %d", i, a.FCTNS[i], b.FCTNS[i])
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	g := pairFabric(t, 1, 2)
	size := int64(2 << 20)
	flows := []workload.Flow{
		{ID: 1, Src: 0, Dst: 2, SizeBytes: size},
		{ID: 2, Src: 1, Dst: 3, SizeBytes: size},
	}
	res := runFlows(t, g, routing.NewECMP(g), DefaultConfig(), flows)
	if res.Completed != 2 {
		t.Fatalf("completed = %d", res.Completed)
	}
	// Two equal flows through one 10G link: each should take roughly twice
	// the solo time; total goodput near line rate.
	last := max(res.FCTNS[0], res.FCTNS[1])
	goodput := float64(2*size) * 8 / (float64(last) / 1e9)
	if goodput > 10e9 {
		t.Fatalf("goodput %v exceeds link rate", goodput)
	}
	if goodput < 5e9 {
		t.Fatalf("goodput %v under 50%% of link rate — sharing is broken", goodput)
	}
	// Neither flow should be starved: FCTs within 2× of each other.
	lo, hi := res.FCTNS[0], res.FCTNS[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if float64(hi) > 2.5*float64(lo) {
		t.Fatalf("unfair FCTs: %v vs %v", lo, hi)
	}
}

func TestIncastCompletesWithDrops(t *testing.T) {
	// 16 senders, one receiver host: heavy incast must drop packets yet all
	// flows complete via retransmission.
	g := topology.New("incast", 5, 32)
	for r := 1; r < 5; r++ {
		if err := g.AddLink(0, r); err != nil {
			t.Fatal(err)
		}
	}
	g.SetServers(0, 1)
	for r := 1; r < 5; r++ {
		g.SetServers(r, 4)
	}
	var flows []workload.Flow
	for i := 0; i < 16; i++ {
		flows = append(flows, workload.Flow{
			ID: uint64(i), Src: 1 + i, Dst: 0, SizeBytes: 400e3,
		})
	}
	res := runFlows(t, g, routing.NewECMP(g), DefaultConfig(), flows)
	if res.Completed != 16 {
		t.Fatalf("completed = %d/16 (stats %+v)", res.Completed, res.Stats)
	}
	if res.Stats.Drops == 0 {
		t.Fatal("incast produced no drops — queueing model suspect")
	}
	if res.Stats.Retransmits == 0 {
		t.Fatal("drops without retransmits — recovery suspect")
	}
}

func TestECMPSpreadsAcrossSpines(t *testing.T) {
	spec := topology.LeafSpineSpec{X: 4, Y: 4}
	g, err := topology.LeafSpine(spec)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(g, routing.NewECMP(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var flows []workload.Flow
	for i := 0; i < 64; i++ {
		flows = append(flows, workload.Flow{
			ID: uint64(i), Src: i % 4, Dst: 4 + i%4, SizeBytes: 50e3,
		})
	}
	if _, err := sim.Run(flows); err != nil {
		t.Fatal(err)
	}
	// Leaf 0 is switch 0; spines are switches 8..11. Traffic from leaf 0
	// must appear on more than one spine uplink.
	used := 0
	for sp := 8; sp < 12; sp++ {
		if sim.NetLinkTx(0, sp) > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("ECMP used %d of 4 uplinks", used)
	}
}

func TestIntraRackFlow(t *testing.T) {
	g := pairFabric(t, 1, 4)
	// Hosts 0 and 1 are both on ToR 0.
	res := runFlows(t, g, routing.NewECMP(g), DefaultConfig(), []workload.Flow{
		{ID: 1, Src: 0, Dst: 1, SizeBytes: 100e3},
	})
	if res.Completed != 1 {
		t.Fatal("intra-rack flow incomplete")
	}
	if res.FCTNS[0] <= 0 {
		t.Fatalf("FCT = %d", res.FCTNS[0])
	}
}

func TestMaxSimTimeTruncates(t *testing.T) {
	g := pairFabric(t, 1, 2)
	cfg := DefaultConfig()
	cfg.MaxSimTime = 10 * time.Microsecond
	res := runFlows(t, g, routing.NewECMP(g), cfg, []workload.Flow{
		{ID: 1, Src: 0, Dst: 2, SizeBytes: 100 << 20},
	})
	if res.Completed != 0 {
		t.Fatal("giant flow completed in 10µs")
	}
	if res.FCTNS[0] != -1 {
		t.Fatalf("FCT = %d, want -1", res.FCTNS[0])
	}
}

func TestRunValidation(t *testing.T) {
	g := pairFabric(t, 1, 2)
	sim, err := New(g, routing.NewECMP(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(nil); err == nil {
		t.Fatal("empty flow list accepted")
	}
	if _, err := sim.Run([]workload.Flow{{Src: 0, Dst: 0, SizeBytes: 1}}); err == nil {
		t.Fatal("host-local flow accepted")
	}
	if _, err := sim.Run([]workload.Flow{{Src: 0, Dst: 2, SizeBytes: 0}}); err == nil {
		t.Fatal("empty flow accepted")
	}
	if _, err := sim.Run([]workload.Flow{{Src: 0, Dst: 99, SizeBytes: 1}}); err == nil {
		t.Fatal("out-of-range host accepted")
	}
	// Double Run.
	if _, err := sim.Run([]workload.Flow{{Src: 0, Dst: 2, SizeBytes: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run([]workload.Flow{{Src: 0, Dst: 2, SizeBytes: 1}}); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	g := pairFabric(t, 1, 2)
	bad := []func(*Config){
		func(c *Config) { c.LinkRateBps = 0 },
		func(c *Config) { c.MSS = 0 },
		func(c *Config) { c.QueueBytes = 10 },
		func(c *Config) { c.InitCwnd = 0 },
		func(c *Config) { c.MinRTO = 0 },
		func(c *Config) { c.MaxRTO = time.Microsecond },
		func(c *Config) { c.MaxSimTime = 0 },
		func(c *Config) { c.AckBytes = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := New(g, routing.NewECMP(g), cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	g := pairFabric(t, 1, 2)
	size := int64(1 << 20)
	res := runFlows(t, g, routing.NewECMP(g), DefaultConfig(), []workload.Flow{
		{ID: 1, Src: 0, Dst: 2, SizeBytes: size},
	})
	minSegs := uint64(size / 1460)
	if res.Stats.DataPackets < minSegs {
		t.Fatalf("data packets %d < segments %d", res.Stats.DataPackets, minSegs)
	}
	if res.Stats.AckPackets == 0 || res.Stats.Events == 0 {
		t.Fatalf("stats not populated: %+v", res.Stats)
	}
}

func TestParetoWorkloadOnDRing(t *testing.T) {
	// End-to-end smoke: DRing + SU(2) + Pareto flows all complete.
	g, err := topology.DRing(topology.Uniform(6, 2, 12))
	if err != nil {
		t.Fatal(err)
	}
	su2, err := routing.NewShortestUnion(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := testRand()
	m := workload.Uniform(len(g.Racks()))
	flows, err := workload.GenerateFlows(g, m, workload.GenConfig{
		Flows:    150,
		Sizes:    workload.Pareto{MeanBytes: 30e3, Alpha: 1.05, Cap: 300e3},
		WindowNS: int64(2 * time.Millisecond),
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res := runFlows(t, g, su2, DefaultConfig(), flows)
	if res.Completed != len(flows) {
		t.Fatalf("completed %d/%d (stats %+v)", res.Completed, len(flows), res.Stats)
	}
}

func testRand() *rand.Rand { return rand.New(rand.NewSource(21)) }
