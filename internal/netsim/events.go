package netsim

// Event kinds.
const (
	evStart   uint8 = iota // a flow begins (idx = flow)
	evTxDone               // a link finished serializing pkt (idx = link)
	evDeliver              // pkt arrives after propagation
	evRTO                  // a flow's retransmission timer fires (idx = flow)
	evFault                // the next batch of scheduled fault events applies
	evReroute              // a time-varying routing phase boundary is reached

	// evRecvStart is used only by the sharded engine: the receiver half of a
	// flow resolves its ACK path in the partition owning the destination
	// rack. The serial Simulator never schedules it.
	evRecvStart
)

// event is one scheduled occurrence. seq breaks time ties so the event
// order (and hence the whole simulation) is deterministic.
type event struct {
	t     int64
	seq   uint64
	kind  uint8
	idx   int32
	epoch uint64
	pkt   *packet
}

// eventHeap is a binary min-heap ordered by (t, seq). A hand-rolled heap
// avoids container/heap's interface boxing on the simulator's hottest path.
type eventHeap []event

// heapPush/heapPop are engine-agnostic: the serial Simulator and the sharded
// engine's per-partition sub-simulators both layer their own seq assignment
// on top.

//lint:hotpath
func heapPush(h *eventHeap, ev event) {
	*h = append(*h, ev)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less((*h)[i], (*h)[parent]) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

//lint:hotpath
func heapPop(h *eventHeap) event {
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	(*h)[last] = event{} // release pkt pointer
	*h = (*h)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && less((*h)[l], (*h)[smallest]) {
			smallest = l
		}
		if r < last && less((*h)[r], (*h)[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}

//lint:hotpath
func (s *Simulator) push(ev event) {
	ev.seq = s.nextSeq()
	heapPush(&s.events, ev)
}

//lint:hotpath
func (s *Simulator) pop() event {
	return heapPop(&s.events)
}

func less(a, b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

func (s *Simulator) nextSeq() uint64 {
	s.seqCounter++
	return s.seqCounter
}
