package netsim

// ringItem is one cross-partition packet handoff: an evDeliver that fires at
// t in the destination VP. The packet travels by value — the producer frees
// its *packet back to its own pool immediately after the copy, the consumer
// re-materializes it from its own pool — so packet pools stay VP-local and
// no pooled pointer ever crosses a partition. The links slice inside the
// copy is shared, which is safe: expanded paths are immutable once built
// (reroutes install a fresh slice, they never edit the old one).
type ringItem struct {
	t   int64
	pkt packet
}

// spscRing is the single-producer/single-consumer handoff queue between one
// ordered VP pair. It is double-buffered by window parity instead of using
// atomics: during window k the producer appends to bufs[k&1] while the
// consumer drains (and truncates) bufs[1-(k&1)], which was filled during
// window k-1. The coordinator's barrier between windows publishes every
// producer write before any consumer read — each window boundary is a
// channel send/receive pair, so the race detector sees the happens-before
// edge — leaving the hot path itself lock-free and atomics-free.
//
// Buffers grow geometrically and are reused across windows, so steady-state
// handoff does not allocate.
type spscRing struct {
	bufs [2][]ringItem
}

// put appends a handoff firing at t. Called only by the producer VP, only
// during its processing phase.
//
//lint:hotpath
func (r *spscRing) put(parity int, t int64, pkt *packet) {
	r.bufs[parity] = append(r.bufs[parity], ringItem{t: t, pkt: *pkt})
}

// take returns the buffer filled in the previous window. Called only by the
// consumer VP, only during its drain phase.
func (r *spscRing) take(parity int) []ringItem {
	return r.bufs[parity]
}

// reset truncates the drained buffer for reuse two windows later.
func (r *spscRing) reset(parity int) {
	r.bufs[parity] = r.bufs[parity][:0]
}
