package netsim

import (
	"testing"
	"time"

	"spineless/internal/routing"
	"spineless/internal/topology"
	"spineless/internal/workload"
)

// countTracer is an allocation-free Tracer that only counts invocations —
// the cheapest possible observer, used to show the hooks themselves do not
// allocate.
type countTracer struct {
	calls uint64
}

func (c *countTracer) OnEnqueue(int64, int32, int32, int, bool, int32, int64, int) { c.calls++ }
func (c *countTracer) OnTxStart(int64, int32, int32, bool, int32)                  { c.calls++ }
func (c *countTracer) OnDeliver(int64, int32, bool, int64)                         { c.calls++ }
func (c *countTracer) OnDrop(int64, int32, int32, bool, DropReason)                { c.calls++ }
func (c *countTracer) OnCwnd(int64, int32, float64, int64, int64)                  { c.calls++ }
func (c *countTracer) OnStateChange(int64, int32, bool, float64, float64)          { c.calls++ }

// TestNilTracerAddsNoAllocs pins the disabled-tracing path at zero extra
// allocations: a run with no tracer must allocate exactly as much as the
// same run observed by an allocation-free tracer, proving the hooks pass
// scalars only and the nil check is the whole cost of the feature. The
// absolute hot-path baseline (930 allocs/op) is pinned separately by
// BenchmarkNetsimEvents against BENCH_3.json.
func TestNilTracerAddsNoAllocs(t *testing.T) {
	g := pairFabric(t, 2, 4)
	var flows []workload.Flow
	for i := 0; i < 12; i++ {
		flows = append(flows, workload.Flow{
			ID: uint64(i), Src: i % 4, Dst: 4 + (i+1)%4,
			SizeBytes: 40e3, StartNS: int64(i) * 10_000,
		})
	}
	counter := &countTracer{}
	run := func(tr Tracer) float64 {
		return testing.AllocsPerRun(5, func() {
			sim, err := New(g, routing.NewECMP(g), DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if tr != nil {
				if err := sim.SetTracer(tr); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := sim.Run(flows); err != nil {
				t.Fatal(err)
			}
		})
	}
	nilAllocs := run(nil)
	tracedAllocs := run(counter)
	if counter.calls == 0 {
		t.Fatal("tracer hooks never fired — the comparison is vacuous")
	}
	if int64(nilAllocs) != int64(tracedAllocs) {
		t.Fatalf("nil-tracer run allocates %.0f, traced run %.0f — hooks are no longer allocation-free",
			nilAllocs, tracedAllocs)
	}
}

// TestFlowletRehashTrunkedPair is the regression test for the negative
// path-hash index: the flowlet rehash spec.ID ^ (flowletID·0x9e3779b97f4a7c15)
// sets the hash's top bit, and the old int conversion before the modulo
// produced a negative index into the parallel-link copies of a trunked pair
// (panic: index out of range [-1]).
func TestFlowletRehashTrunkedPair(t *testing.T) {
	g := pairFabric(t, 2, 2)
	cfg := DefaultConfig().WithFlowlets(time.Nanosecond)
	res := runFlows(t, g, routing.NewECMP(g), cfg, []workload.Flow{
		{ID: 0, Src: 0, Dst: 2, SizeBytes: 500e3},
	})
	if res.Completed != 1 {
		t.Fatalf("flow incomplete: %+v", res)
	}
	if res.Stats.FlowletSwitches == 0 {
		t.Fatal("no flowlet switches fired — the regression trigger is gone")
	}
}

// TestStartDuringPartitionCompletes is the regression test for reroute()
// stranding flows whose racks were unreachable when they started: phase 0
// has no route between the racks (the flow starts with nil paths), phase 1
// restores it. The flow must initialize its sender at the boundary and
// complete, instead of staying stranded forever.
func TestStartDuringPartitionCompletes(t *testing.T) {
	g := pairFabric(t, 1, 2)
	part := topology.New("partitioned", 2, 3)
	part.SetServers(0, 2)
	part.SetServers(1, 2)
	tv, err := routing.NewTimeVarying(
		routing.Phase{StartNS: 0, Scheme: routing.NewECMP(part)},
		routing.Phase{StartNS: 1_000_000, Scheme: routing.NewECMP(g)},
	)
	if err != nil {
		t.Fatal(err)
	}
	res := runFlows(t, g, tv, DefaultConfig(), []workload.Flow{
		{ID: 1, Src: 0, Dst: 2, SizeBytes: 100e3, StartNS: 0},
	})
	if res.Completed != 1 {
		t.Fatalf("start-during-partition flow never completed: %+v", res)
	}
	if res.FCTNS[0] < 1_000_000 {
		t.Fatalf("FCT %d ns is before the repair boundary — partition phase was not in force", res.FCTNS[0])
	}
	if res.Stats.Reroutes == 0 {
		t.Fatal("no reroutes recorded at the repair boundary")
	}
}
