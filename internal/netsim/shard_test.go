package netsim

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"spineless/internal/faults"
	"spineless/internal/routing"
	"spineless/internal/topology"
	"spineless/internal/workload"
)

// These tests pin the sharded engine's determinism contract, mirroring the
// PR 3 workers tests in internal/core: the same fabric, scheme, config,
// flows and fault schedule run at shards=1 and shards=N must produce
// bit-identical Results — Stats counters, per-flow FCTs, blackhole window
// and all. Run them under -race (make check does) to certify the window
// protocol's happens-before edges as well as its value determinism.

func shardTestFabrics(t *testing.T) map[string]*topology.Graph {
	t.Helper()
	out := map[string]*topology.Graph{}

	dring, err := topology.DRing(topology.Uniform(6, 2, 24))
	if err != nil {
		t.Fatal(err)
	}
	out["dring"] = dring

	degs := make([]int, 18)
	for i := range degs {
		degs[i] = 5
	}
	rrg, err := topology.RRG("rrg18", degs, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < rrg.N(); v++ {
		rrg.SetServers(v, 2)
	}
	out["rrg"] = rrg

	xp, err := topology.Xpander(16, 4, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < xp.N(); v++ {
		xp.SetServers(v, 2)
	}
	out["xpander"] = xp
	return out
}

func shardTestFlows(t *testing.T, g *topology.Graph, n int, seed int64) []workload.Flow {
	t.Helper()
	gen := workload.GenConfig{
		Flows:    n,
		WindowNS: int64(2 * time.Millisecond),
		Sizes:    workload.Pareto{MeanBytes: 20e3, Alpha: 1.05, Cap: 200e3},
	}
	flows, err := workload.GenerateFlows(g, workload.Uniform(len(g.Racks())), gen, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return flows
}

func runSharded(t *testing.T, g *topology.Graph, scheme routing.Scheme, cfg Config,
	flows []workload.Flow, sched *faults.Schedule, shards int) Results {
	t.Helper()
	ss, err := NewSharded(g, scheme, cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.InstallFaults(sched); err != nil {
		t.Fatal(err)
	}
	res, err := ss.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShardedInvariantAcrossShardCounts is the headline equivalence matrix:
// DRing, RRG and Xpander fabrics, plain TCP and DCTCP+flowlets, compared at
// shards ∈ {2, 3, 4, 8} against shards=1.
func TestShardedInvariantAcrossShardCounts(t *testing.T) {
	cfgPlain := DefaultConfig()
	cfgPlain.MaxSimTime = 50 * time.Millisecond
	cfgDctcp := cfgPlain.WithDCTCP().WithFlowlets(0)
	for name, g := range shardTestFabrics(t) {
		for _, tc := range []struct {
			transport string
			cfg       Config
		}{{"reno", cfgPlain}, {"dctcp-flowlet", cfgDctcp}} {
			scheme := routing.NewECMP(g)
			flows := shardTestFlows(t, g, 150, 11)
			base := runSharded(t, g, scheme, tc.cfg, flows, nil, 1)
			if base.Completed == 0 || base.Stats.DataPackets == 0 {
				t.Fatalf("%s/%s: degenerate baseline %+v", name, tc.transport, base.Stats)
			}
			for _, shards := range []int{2, 3, 4, 8} {
				got := runSharded(t, g, scheme, tc.cfg, flows, nil, shards)
				if !reflect.DeepEqual(base, got) {
					t.Fatalf("%s/%s: shards=%d differs from shards=1\nbase: %+v\ngot:  %+v",
						name, tc.transport, shards, base, got)
				}
			}
		}
	}
}

// TestShardedInvariantWithFaults adds the mid-run fault schedule case: a
// link cut during the window plus a gray failure, with a time-varying
// scheme swapping to the post-failure FIB at the repair boundary — the full
// resilience/live.go shape. Blackholes, gray drops and reroutes must all be
// byte-identical across shard counts.
func TestShardedInvariantWithFaults(t *testing.T) {
	g, err := topology.DRing(topology.Uniform(6, 2, 24))
	if err != nil {
		t.Fatal(err)
	}
	su, err := routing.NewShortestUnion(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	failed := g.Clone()
	a, b := 0, g.Neighbors(0)[0]
	if !failed.RemoveLink(a, b) {
		t.Fatalf("link %d-%d not present", a, b)
	}
	failedSU, err := routing.NewShortestUnion(failed, 2)
	if err != nil {
		t.Fatal(err)
	}
	const failNS, repairNS = 200_000, 900_000
	tv, err := routing.NewTimeVarying(
		routing.Phase{StartNS: 0, Scheme: su},
		routing.Phase{StartNS: repairNS, Scheme: failedSU},
	)
	if err != nil {
		t.Fatal(err)
	}
	var sched faults.Schedule
	sched.Seed = 42
	sched.Cut(failNS, a, b)
	c, d := 3, g.Neighbors(3)[0]
	sched.Gray(300_000, c, d, 0.02, 0.5)
	sched.ClearGray(1_500_000, c, d)

	cfg := DefaultConfig()
	cfg.MaxSimTime = 50 * time.Millisecond
	flows := shardTestFlows(t, g, 200, 23)
	base := runSharded(t, g, tv, cfg, flows, &sched, 1)
	if base.Stats.Blackholed == 0 && base.Stats.GrayDrops == 0 {
		t.Fatalf("fault schedule had no observable effect: %+v", base.Stats)
	}
	if base.Stats.Reroutes == 0 {
		t.Fatalf("no reroutes at the phase boundary: %+v", base.Stats)
	}
	for _, shards := range []int{2, 4, 8} {
		got := runSharded(t, g, tv, cfg, flows, &sched, shards)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("faulted run: shards=%d differs from shards=1\nbase: %+v\ngot:  %+v",
				shards, base, got)
		}
	}
}

// TestShardedRepeatable pins run-to-run determinism at a fixed shard count.
func TestShardedRepeatable(t *testing.T) {
	g, err := topology.DRing(topology.Uniform(5, 2, 24))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxSimTime = 50 * time.Millisecond
	flows := shardTestFlows(t, g, 120, 5)
	scheme := routing.NewECMP(g)
	first := runSharded(t, g, scheme, cfg, flows, nil, 4)
	second := runSharded(t, g, scheme, cfg, flows, nil, 4)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("same shard count, different results:\n%+v\n%+v", first, second)
	}
}

// TestShardedPhysicsSanity cross-checks the sharded engine against known
// physics on an uncontended path, the same bound the serial engine's
// TestSingleFlowNearLineRate pins: an isolated flow must finish no faster
// than line rate and within 2× of ideal.
func TestShardedPhysicsSanity(t *testing.T) {
	g := pairFabric(t, 1, 2)
	cfg := DefaultConfig()
	size := int64(4 << 20)
	ss, err := NewSharded(g, routing.NewECMP(g), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ss.Run([]workload.Flow{{ID: 1, Src: 0, Dst: 2, SizeBytes: size}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("flow incomplete: %+v", res)
	}
	fct := float64(res.FCTNS[0])
	ideal := float64(size) * (1500.0 / 1460.0) * 8 / 10e9 * 1e9
	if fct < ideal {
		t.Fatalf("FCT %.3fms beats line rate %.3fms", fct/1e6, ideal/1e6)
	}
	if fct > 2*ideal {
		t.Fatalf("FCT %.3fms more than 2× ideal %.3fms for an uncontended flow", fct/1e6, ideal/1e6)
	}
}

// TestShardedRejectsBadConfig pins the constructor's guard rails: the
// lookahead bound needs a positive link delay, and Run is once-only.
func TestShardedRejectsBadConfig(t *testing.T) {
	g := pairFabric(t, 1, 2)
	cfg := DefaultConfig()
	cfg.LinkDelayNS = 0
	if _, err := NewSharded(g, routing.NewECMP(g), cfg, 2); err == nil {
		t.Fatal("zero LinkDelayNS accepted — lookahead bound would be empty")
	}
	ss, err := NewSharded(g, routing.NewECMP(g), DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	flows := []workload.Flow{{ID: 1, Src: 0, Dst: 2, SizeBytes: 10_000}}
	if _, err := ss.Run(flows); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Run(flows); err == nil {
		t.Fatal("second Run accepted")
	}
}
