package netsim

import (
	"testing"
	"time"

	"spineless/internal/routing"
	"spineless/internal/topology"
	"spineless/internal/workload"
)

func TestFlowletSwitchingMovesPaths(t *testing.T) {
	// Leaf-spine with 4 spines: a paused flow should eventually re-hash
	// onto a different spine.
	g, err := topology.LeafSpine(topology.LeafSpineSpec{X: 4, Y: 4})
	if err != nil {
		t.Fatal(err)
	}
	// A continuous TCP stream rarely idles, so use a flowlet timeout below
	// the ack-clocking gap: with cwnd 2 the sender stalls ~an RTT between
	// windows, and every stall re-hashes the path (the packet-spray limit
	// of flowlet switching). This exercises the gap detection and re-hash
	// deterministically.
	cfg := DefaultConfig().WithFlowlets(2 * time.Microsecond)
	cfg.InitCwnd = 2
	cfg.InitSsthresh = 2 // hold the window small so stalls persist
	sim, err := New(g, routing.NewECMP(g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run([]workload.Flow{{ID: 1, Src: 0, Dst: 4, SizeBytes: 600e3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("flow incomplete: %+v", res.Stats)
	}
	// Gaps exist only while the window is below the BDP (once the pipe
	// fills, the stream is continuous and the flowlet never ends), so a
	// handful of early-ramp switches is the expected physics.
	if res.Stats.FlowletSwitches < 5 {
		t.Fatalf("expected several flowlet switches, got %d", res.Stats.FlowletSwitches)
	}
	// The re-hashes must spread traffic over the spines.
	used := 0
	for sp := 8; sp < 12; sp++ {
		if sim.NetLinkTx(0, sp) > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("flowlet switching never moved the flow (used %d spines)", used)
	}
}

func TestNoFlowletSwitchingStaysPinned(t *testing.T) {
	g, err := topology.LeafSpine(topology.LeafSpineSpec{X: 4, Y: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig() // FlowletTimeout = 0: per-flow pinning
	cfg.QueueBytes = 2 * 1500
	cfg.InitCwnd = 64
	sim, err := New(g, routing.NewECMP(g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run([]workload.Flow{{ID: 1, Src: 0, Dst: 4, SizeBytes: 600e3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatal("incomplete")
	}
	used := 0
	for sp := 8; sp < 12; sp++ {
		if sim.NetLinkTx(0, sp) > 0 {
			used++
		}
	}
	if used != 1 {
		t.Fatalf("pinned flow used %d spines, want 1", used)
	}
}

func TestFlowletDeterminism(t *testing.T) {
	g1, _ := topology.LeafSpine(topology.LeafSpineSpec{X: 4, Y: 2})
	g2, _ := topology.LeafSpine(topology.LeafSpineSpec{X: 4, Y: 2})
	cfg := DefaultConfig().WithFlowlets(0)
	var flows []workload.Flow
	for i := 0; i < 12; i++ {
		flows = append(flows, workload.Flow{
			ID: uint64(i), Src: i % 4, Dst: 4 + (i+1)%4,
			SizeBytes: 200e3, StartNS: int64(i) * 4000,
		})
	}
	a := runFlows(t, g1, routing.NewECMP(g1), cfg, flows)
	b := runFlows(t, g2, routing.NewECMP(g2), cfg, flows)
	if a.Stats != b.Stats {
		t.Fatalf("flowlet runs diverged: %+v vs %+v", a.Stats, b.Stats)
	}
}
