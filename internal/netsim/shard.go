package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"spineless/internal/faults"
	"spineless/internal/routing"
	"spineless/internal/topology"
	"spineless/internal/workload"
)

// ShardedSimulator is the conservative parallel counterpart of Simulator:
// the fabric is split into shardVPs virtual partitions (see partition.go),
// each with its own event heap, packet pool, path arena, RNG stream and
// Stats accumulator, and P worker goroutines execute the partitions in
// lock-step lookahead windows of Config.LinkDelayNS. Cross-partition packet
// handoff goes through per-pair SPSC rings (ring.go) drained at window
// barriers in (time, source VP, ring position) order, so the merged event
// order is a total order independent of the worker count.
//
// Results are byte-identical for every shards value: shards only sets how
// many goroutines multiplex the fixed partitions. Relative to the serial
// Simulator the engine makes two deliberately small semantic departures,
// both partition-local and therefore shard-count-invariant (DESIGN.md §13):
// a receiver keeps acknowledging late retransmissions after its sender has
// finished (real receivers cannot see the sender's state either), and
// gray-failure loss draws come from per-partition RNG streams instead of
// one global stream.
//
// The sharded engine does not support tracers or the audit harness — those
// observe a single totally-ordered event stream. Use the serial Simulator
// (shards=0 throughout the config plumbing) for audited runs.
type ShardedSimulator struct {
	g      *topology.Graph
	scheme routing.Scheme
	cfg    Config
	tv     routing.TimeScheme

	workers   int
	lookahead int64

	// Shared immutable fabric tables, laid out exactly as in Simulator.
	nSwitch  int
	nlStart  []int32
	nlLinks  []int32
	hostUp   []int32
	hostDown []int32

	// links[i] is touched only by the goroutine running linkOwner[i]'s VP;
	// window barriers order those accesses across goroutines.
	links     []link
	linkOwner []uint8

	// Flow state, split at the wire: the sender half (congestion control,
	// retransmission, FCT) lives in the VP of the source rack, the receiver
	// half (reassembly, ACK path) in the VP of the destination rack. specs
	// is immutable shared input.
	specs []workload.Flow
	snd   []senderState
	rcv   []recvState

	vps   [shardVPs]vpSim
	rings [shardVPs * shardVPs]spscRing

	ran bool
}

// senderState is the source-side half of a flow: everything the serial
// flowState keeps except reassembly. Each element is owned by the VP of the
// flow's source rack.
type senderState struct {
	dataLinks []int32

	sndUna, sndNxt int64
	cwnd, ssthresh float64
	dupacks        int
	inRecovery     bool
	recover        int64
	srtt, rttvar   float64
	rto            int64
	rtoEpoch       uint64

	alpha       float64
	ceAcked     int64
	ceMarked    int64
	ceWindowEnd int64

	lastSendNS int64
	flowletID  uint64

	started bool
	done    bool
	rtoHit  bool
	fct     int64
}

// recvState is the destination-side half: reassembly cursor, out-of-order
// buffer and the ACK return path. Owned by the VP of the destination rack.
type recvState struct {
	ackLinks []int32
	rcvNxt   int64
	ooo      map[int64]int32
	started  bool
}

// vpSim is one virtual partition's sequential sub-simulator. All its fields
// are touched only by the worker goroutine that owns the partition during a
// window; the coordinator reads them only between windows.
type vpSim struct {
	id int
	ss *ShardedSimulator

	events     eventHeap
	seqCounter uint64
	now        int64
	maxT       int64
	parity     int

	pool      []*packet
	poolChunk []packet
	poolNext  int

	arena     []int32
	arenaNext int

	faultEvents []faults.Event // events touching links this VP owns
	faultIdx    int
	rng         *rand.Rand

	activeScheme routing.Scheme

	// flowsSnd/flowsRcv list the flows whose sender/receiver half this VP
	// owns, in ascending flow order, for reroute sweeps.
	flowsSnd []int32
	flowsRcv []int32

	stats          Stats
	blackholeFirst int64
	blackholeLast  int64

	doneDelta   int   // completions since the last window report
	producedMin int64 // min handoff time pushed into rings this window
}

// NewSharded builds a sharded simulator for fabric g routed by scheme,
// executed by `shards` worker goroutines (clamped to [1, 16], the fixed
// virtual-partition count). Results are identical for every shards value.
func NewSharded(g *topology.Graph, scheme routing.Scheme, cfg Config, shards int) (*ShardedSimulator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.LinkDelayNS < 1 {
		return nil, fmt.Errorf("netsim: sharded engine needs LinkDelayNS >= 1 (the lookahead bound), got %d", cfg.LinkDelayNS)
	}
	if shards < 1 {
		shards = 1
	}
	if shards > shardVPs {
		shards = shardVPs
	}
	g.Reindex() // RackOf must be a pure read once workers fork
	ss := &ShardedSimulator{g: g, scheme: scheme, cfg: cfg,
		workers: shards, lookahead: cfg.LinkDelayNS}
	if tv, ok := scheme.(routing.TimeScheme); ok {
		ss.tv = tv
	}

	addLink := func(rateBps float64, delayNS int64, owner uint8) int32 {
		id := int32(len(ss.links))
		ss.links = append(ss.links, link{
			bytesPerNS:        rateBps / 8 / 1e9,
			nominalBytesPerNS: rateBps / 8 / 1e9,
			delayNS:           delayNS,
			capBytes:          cfg.QueueBytes,
		})
		ss.linkOwner = append(ss.linkOwner, owner)
		return id
	}
	// Same two-pass prefix-sum adjacency as the serial New, so per-pair copy
	// order — and hence flow hashing — matches across engines.
	ns := g.N()
	ss.nSwitch = ns
	ss.nlStart = make([]int32, ns*ns+1)
	for u := 0; u < ns; u++ {
		for _, v := range g.Neighbors(u) {
			ss.nlStart[u*ns+v+1]++
		}
	}
	for i := 1; i < len(ss.nlStart); i++ {
		ss.nlStart[i] += ss.nlStart[i-1]
	}
	ss.nlLinks = make([]int32, ss.nlStart[len(ss.nlStart)-1])
	ss.links = make([]link, 0, len(ss.nlLinks)+2*g.Servers())
	ss.linkOwner = make([]uint8, 0, cap(ss.links))
	fill := make([]int32, ns*ns)
	for u := 0; u < ns; u++ {
		for _, v := range g.Neighbors(u) {
			k := u*ns + v
			ss.nlLinks[ss.nlStart[k]+fill[k]] = addLink(cfg.LinkRateBps, cfg.LinkDelayNS, vpOfSwitch(u))
			fill[k]++
		}
	}
	n := g.Servers()
	ss.hostUp = make([]int32, n)
	ss.hostDown = make([]int32, n)
	for h := 0; h < n; h++ {
		owner := vpOfSwitch(g.RackOf(h))
		ss.hostUp[h] = addLink(cfg.hostRate(), cfg.hostDelay(), owner)
		ss.hostDown[h] = addLink(cfg.hostRate(), cfg.hostDelay(), owner)
	}

	for vp := range ss.vps {
		v := &ss.vps[vp]
		v.id = vp
		v.ss = ss
		v.maxT = int64(cfg.MaxSimTime)
		v.blackholeFirst = -1
		v.blackholeLast = -1
		v.activeScheme = scheme
		if ss.tv != nil {
			v.activeScheme = ss.tv.SchemeAt(0)
		}
	}
	return ss, nil
}

// SetTracer always fails: the sharded engine has no single totally-ordered
// event stream for a Tracer to observe (events interleave across partition
// heaps inside a lookahead window). Before this method existed, a tracer
// wired through a config layer that forgot to guard Shards>0 was silently
// ignored; now the engine itself rejects the attachment, and every config
// layer (core, resilience, audit, jobs) mirrors the error up front. Use the
// serial Simulator (Shards=0) for traced or audited runs.
func (ss *ShardedSimulator) SetTracer(Tracer) error {
	return fmt.Errorf("netsim: the sharded engine does not support tracers; set Shards=0")
}

// InstallFaults arms a fault schedule. Validation matches the serial
// engine; each event is then filed with the partitions owning the affected
// link directions, and each partition draws gray-failure losses from its
// own RNG stream seeded by (schedule seed, partition id).
func (ss *ShardedSimulator) InstallFaults(sched *faults.Schedule) error {
	if sched == nil {
		return nil
	}
	if ss.ran {
		return fmt.Errorf("netsim: InstallFaults after Run")
	}
	if err := sched.Validate(); err != nil {
		return err
	}
	events := sched.Sorted()
	for _, e := range events {
		if e.A < 0 || e.B < 0 || e.A >= ss.nSwitch || e.B >= ss.nSwitch ||
			len(ss.pairLinks(e.A, e.B)) == 0 {
			return fmt.Errorf("netsim: fault %s on non-existent link %d-%d", e.Kind, e.A, e.B)
		}
	}
	for vp := range ss.vps {
		ss.vps[vp].faultEvents = nil
		ss.vps[vp].faultIdx = 0
		ss.vps[vp].rng = rand.New(rand.NewSource(int64(uint64(sched.Seed) ^ (uint64(vp)+1)*0x9e3779b97f4a7c15)))
	}
	for _, e := range events {
		a, b := vpOfSwitch(e.A), vpOfSwitch(e.B)
		ss.vps[a].faultEvents = append(ss.vps[a].faultEvents, e)
		if b != a {
			ss.vps[b].faultEvents = append(ss.vps[b].faultEvents, e)
		}
	}
	return nil
}

type windowCmd struct {
	w1     int64 // exclusive upper bound on event times this window
	parity int
}

type windowReply struct {
	minNext   int64 // min over heap tops and ring handoffs produced
	maxNow    int64
	doneDelta int
}

// Run simulates the flows to completion (or MaxSimTime) under the window
// protocol and returns per-flow results. Run may be called once.
func (ss *ShardedSimulator) Run(flows []workload.Flow) (Results, error) {
	if ss.ran {
		return Results{}, fmt.Errorf("netsim: Run called twice")
	}
	if len(flows) == 0 {
		return Results{}, fmt.Errorf("netsim: no flows")
	}
	for i, f := range flows {
		if f.SizeBytes <= 0 {
			return Results{}, fmt.Errorf("netsim: flow %d has size %d", i, f.SizeBytes)
		}
		if f.Src == f.Dst {
			return Results{}, fmt.Errorf("netsim: flow %d is host-local", i)
		}
		if f.Src < 0 || f.Src >= ss.g.Servers() || f.Dst < 0 || f.Dst >= ss.g.Servers() {
			return Results{}, fmt.Errorf("netsim: flow %d endpoints out of range", i)
		}
	}
	ss.ran = true
	ss.specs = flows
	ss.snd = make([]senderState, len(flows))
	ss.rcv = make([]recvState, len(flows))
	for i, f := range flows {
		ss.snd[i].fct = -1
		sv := &ss.vps[vpOfSwitch(ss.g.RackOf(f.Src))]
		rv := &ss.vps[vpOfSwitch(ss.g.RackOf(f.Dst))]
		sv.flowsSnd = append(sv.flowsSnd, int32(i))
		rv.flowsRcv = append(rv.flowsRcv, int32(i))
		sv.push(event{t: f.StartNS, kind: evStart, idx: int32(i)})
		rv.push(event{t: f.StartNS, kind: evRecvStart, idx: int32(i)})
	}
	for vp := range ss.vps {
		v := &ss.vps[vp]
		if len(v.faultEvents) > 0 {
			v.push(event{t: v.faultEvents[0].TimeNS, kind: evFault})
		}
		if ss.tv != nil {
			for _, b := range ss.tv.Boundaries() {
				v.push(event{t: b, kind: evReroute})
			}
		}
	}

	p := ss.workers
	cmds := make([]chan windowCmd, p)
	replies := make(chan windowReply, p)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		cmds[w] = make(chan windowCmd, 1)
		var mine []*vpSim
		for vp := w; vp < shardVPs; vp += p {
			mine = append(mine, &ss.vps[vp])
		}
		wg.Add(1)
		go func(mine []*vpSim, c chan windowCmd) {
			defer wg.Done()
			ss.worker(mine, c, replies)
		}(mine, cmds[w])
	}

	maxT := int64(ss.cfg.MaxSimTime)
	w0 := int64(math.MaxInt64)
	for vp := range ss.vps {
		if h := ss.vps[vp].events; len(h) > 0 && h[0].t < w0 {
			w0 = h[0].t
		}
	}
	done := 0
	endNS := int64(0)
	for round := 0; ; round++ {
		if done >= len(flows) || w0 == math.MaxInt64 || w0 > maxT {
			break
		}
		cmd := windowCmd{w1: w0 + ss.lookahead, parity: round & 1}
		for w := 0; w < p; w++ {
			cmds[w] <- cmd
		}
		gMin := int64(math.MaxInt64)
		for i := 0; i < p; i++ {
			r := <-replies
			done += r.doneDelta
			if r.minNext < gMin {
				gMin = r.minNext
			}
			if r.maxNow > endNS {
				endNS = r.maxNow
			}
		}
		w0 = gMin
	}
	for w := 0; w < p; w++ {
		close(cmds[w])
	}
	wg.Wait()

	res := Results{FCTNS: make([]int64, len(flows)), EndNS: endNS,
		BlackholeFirstNS: -1, BlackholeLastNS: -1}
	for vp := range ss.vps {
		v := &ss.vps[vp]
		res.Stats.Accumulate(v.stats)
		if v.blackholeFirst >= 0 &&
			(res.BlackholeFirstNS < 0 || v.blackholeFirst < res.BlackholeFirstNS) {
			res.BlackholeFirstNS = v.blackholeFirst
		}
		if v.blackholeLast > res.BlackholeLastNS {
			res.BlackholeLastNS = v.blackholeLast
		}
	}
	for i := range ss.snd {
		res.FCTNS[i] = ss.snd[i].fct
		if ss.snd[i].done {
			res.Completed++
		}
		if ss.snd[i].rtoHit {
			res.FlowsWithRTO++
		}
	}
	return res, nil
}

// worker executes one goroutine's share of partitions, one lookahead window
// per command: drain last window's incoming rings, run local events below
// the window bound, report the new horizon.
func (ss *ShardedSimulator) worker(mine []*vpSim, cmds <-chan windowCmd, replies chan<- windowReply) {
	for cmd := range cmds {
		rep := windowReply{minNext: math.MaxInt64}
		for _, v := range mine {
			v.parity = cmd.parity
			v.producedMin = math.MaxInt64
			v.drainRings(1 - cmd.parity)
			v.runWindow(cmd.w1)
			rep.doneDelta += v.doneDelta
			v.doneDelta = 0
			if len(v.events) > 0 && v.events[0].t < rep.minNext {
				rep.minNext = v.events[0].t
			}
			if v.producedMin < rep.minNext {
				rep.minNext = v.producedMin
			}
			if v.now > rep.maxNow {
				rep.maxNow = v.now
			}
		}
		replies <- rep
	}
}

// drainRings merges the handoffs every peer produced for this VP last
// window into the local heap. The per-source buffers are time-sorted by
// construction (producers emit in event order with a constant delay), so a
// 16-way head scan with strict-less comparison yields the deterministic
// (time, source VP, ring position) total order the determinism contract
// requires. Packets are re-materialized from the local pool.
//
//lint:hotpath
func (v *vpSim) drainRings(parity int) {
	var heads [shardVPs][]ringItem
	any := false
	for src := 0; src < shardVPs; src++ {
		r := &v.ss.rings[src*shardVPs+v.id]
		heads[src] = r.take(parity)
		if len(heads[src]) > 0 {
			any = true
		}
	}
	if any {
		for {
			best := -1
			var bt int64
			for src := 0; src < shardVPs; src++ {
				if len(heads[src]) > 0 && (best < 0 || heads[src][0].t < bt) {
					best = src
					bt = heads[src][0].t
				}
			}
			if best < 0 {
				break
			}
			it := &heads[best][0]
			heads[best] = heads[best][1:]
			p := v.alloc()
			*p = it.pkt
			p.pooled = false
			p.qnext = nil
			v.push(event{t: it.t, kind: evDeliver, pkt: p})
		}
	}
	for src := 0; src < shardVPs; src++ {
		v.ss.rings[src*shardVPs+v.id].reset(parity)
	}
}

// runWindow executes every local event strictly below w1 (and within the
// simulation horizon). This is the sharded engine's inner loop.
//
//lint:hotpath
func (v *vpSim) runWindow(w1 int64) {
	for len(v.events) > 0 {
		if v.events[0].t >= w1 || v.events[0].t > v.maxT {
			break
		}
		ev := v.pop()
		v.now = ev.t
		v.stats.Events++
		switch ev.kind {
		case evStart:
			v.startSender(ev.idx)
		case evRecvStart:
			v.startRecv(ev.idx)
		case evTxDone:
			v.txDone(ev.idx, ev.pkt)
		case evDeliver:
			v.deliver(ev.pkt)
		case evRTO:
			v.timeout(ev.idx, ev.epoch)
		case evFault:
			v.applyDueFaults()
		case evReroute:
			v.reroute()
		}
	}
}

//lint:hotpath
func (v *vpSim) push(ev event) {
	v.seqCounter++
	ev.seq = v.seqCounter
	heapPush(&v.events, ev)
}

//lint:hotpath
func (v *vpSim) pop() event {
	return heapPop(&v.events)
}

func (v *vpSim) pairLinks(u, w int) []int32 {
	k := u*v.ss.nSwitch + w
	return v.ss.nlLinks[v.ss.nlStart[k]:v.ss.nlStart[k+1]]
}

func (ss *ShardedSimulator) pairLinks(u, v int) []int32 {
	k := u*ss.nSwitch + v
	return ss.nlLinks[ss.nlStart[k]:ss.nlStart[k+1]]
}

// allocLinkIDs mirrors the serial arena carve, per partition.
func (v *vpSim) allocLinkIDs(n int) []int32 {
	if v.arenaNext+n > len(v.arena) {
		sz := linkIDArenaChunk
		if n > sz {
			sz = n
		}
		v.arena = make([]int32, sz) //lint:allow hotpath (arena refill: one allocation per 4096 link ids, amortized away)
		v.arenaNext = 0
	}
	out := v.arena[v.arenaNext : v.arenaNext : v.arenaNext+n]
	v.arenaNext += n
	return out
}

func (v *vpSim) expandPath(srcHost, dstHost int, swPath []int, flowID uint64) []int32 {
	ss := v.ss
	out := v.allocLinkIDs(len(swPath) + 1)
	out = append(out, ss.hostUp[srcHost])
	for h := 0; h+1 < len(swPath); h++ {
		copies := v.pairLinks(swPath[h], swPath[h+1])
		out = append(out, copies[(flowID>>uint(h%32))%uint64(len(copies))])
	}
	out = append(out, ss.hostDown[dstHost])
	return out
}

// startSender resolves the data path and begins transmitting — the sender
// half of the serial startFlow. The reverse-path lookup is repeated here
// purely for its nil-ness: the serial engine refuses to start a flow whose
// ACK path is unreachable, and both halves must agree on that decision.
func (v *vpSim) startSender(idx int32) {
	sn := &v.ss.snd[idx]
	if sn.started {
		return
	}
	sn.started = true
	spec := v.ss.specs[idx]
	srcRack, dstRack := v.ss.g.RackOf(spec.Src), v.ss.g.RackOf(spec.Dst)
	fwd := v.activeScheme.Path(srcRack, dstRack, spec.ID)
	rev := v.activeScheme.Path(dstRack, srcRack, spec.ID^0x5ca1ab1e)
	if fwd == nil || rev == nil {
		return // unreachable racks: the flow stays incomplete
	}
	sn.dataLinks = v.expandPath(spec.Src, spec.Dst, fwd, spec.ID)
	v.initSender(sn)
	v.trySend(sn, idx)
}

// startRecv resolves the ACK return path — the receiver half of startFlow,
// executed in the destination rack's partition at the same simulated time
// (both partitions see the same activeScheme at any instant, so the two
// halves of the decision agree).
func (v *vpSim) startRecv(idx int32) {
	rc := &v.ss.rcv[idx]
	if rc.started {
		return
	}
	rc.started = true
	spec := v.ss.specs[idx]
	srcRack, dstRack := v.ss.g.RackOf(spec.Src), v.ss.g.RackOf(spec.Dst)
	fwd := v.activeScheme.Path(srcRack, dstRack, spec.ID)
	rev := v.activeScheme.Path(dstRack, srcRack, spec.ID^0x5ca1ab1e)
	if fwd == nil || rev == nil {
		return
	}
	rc.ackLinks = v.expandPath(spec.Dst, spec.Src, rev, spec.ID^0x5ca1ab1e)
}

func (v *vpSim) initSender(sn *senderState) {
	sn.cwnd = v.ss.cfg.InitCwnd
	sn.ssthresh = math.MaxFloat64
	if v.ss.cfg.InitSsthresh > 0 {
		sn.ssthresh = v.ss.cfg.InitSsthresh
	}
	sn.rto = int64(v.ss.cfg.MinRTO)
}

//lint:hotpath
func (v *vpSim) trySend(sn *senderState, idx int32) {
	mss := int64(v.ss.cfg.MSS)
	size := v.ss.specs[idx].SizeBytes
	for sn.sndNxt < size && sn.sndNxt-sn.sndUna < int64(sn.cwnd*float64(mss)) {
		v.sendSegment(sn, idx, sn.sndNxt)
		sn.sndNxt += min(mss, size-sn.sndNxt)
	}
	if sn.sndNxt > sn.sndUna {
		v.armRTO(sn, idx)
	}
}

//lint:hotpath
func (v *vpSim) sendSegment(sn *senderState, idx int32, seq int64) {
	spec := &v.ss.specs[idx]
	if t := int64(v.ss.cfg.FlowletTimeout); t > 0 {
		if sn.lastSendNS > 0 && v.now-sn.lastSendNS > t {
			sn.flowletID++
			v.stats.FlowletSwitches++
			srcRack, dstRack := v.ss.g.RackOf(spec.Src), v.ss.g.RackOf(spec.Dst)
			h := spec.ID ^ (sn.flowletID * 0x9e3779b97f4a7c15)
			if fwd := v.activeScheme.Path(srcRack, dstRack, h); fwd != nil {
				sn.dataLinks = v.expandPath(spec.Src, spec.Dst, fwd, h)
			}
		}
		sn.lastSendNS = v.now
	}
	payload := min(int64(v.ss.cfg.MSS), spec.SizeBytes-seq)
	p := v.alloc()
	p.flow = idx
	p.hop = 0
	p.isAck = false
	p.ce = false
	p.seq = seq
	p.payload = int32(payload)
	p.wireSize = int32(payload) + int32(v.ss.cfg.HeaderBytes)
	p.echo = v.now
	p.links = sn.dataLinks
	v.stats.DataPackets++
	v.enterLink(p)
}

//lint:hotpath
func (v *vpSim) sendAck(rc *recvState, idx int32, echo int64, ce bool) {
	if rc.ackLinks == nil {
		return // defensive: no return path resolved (unreachable at start)
	}
	p := v.alloc()
	p.flow = idx
	p.hop = 0
	p.isAck = true
	p.ce = ce
	p.seq = rc.rcvNxt
	p.payload = 0
	p.wireSize = int32(v.ss.cfg.AckBytes)
	p.echo = echo
	p.links = rc.ackLinks
	v.stats.AckPackets++
	v.enterLink(p)
}

//lint:hotpath
func (v *vpSim) enterLink(p *packet) {
	id := p.links[p.hop]
	l := &v.ss.links[id]
	if l.down {
		v.blackhole(p)
		return
	}
	if l.lossProb > 0 && v.rng.Float64() < l.lossProb {
		v.stats.GrayDrops++
		v.free(p)
		return
	}
	if v.ss.cfg.ECN && !p.isAck && !p.ce && l.queueBytes >= v.ss.cfg.ECNThresholdBytes {
		p.ce = true
		v.stats.ECNMarks++
	}
	if !l.busy {
		l.busy = true
		v.push(event{t: v.now + l.txTimeNS(p.wireSize), kind: evTxDone, idx: id, pkt: p})
		return
	}
	if !l.push(p) {
		v.stats.Drops++
		v.free(p)
		return
	}
}

//lint:hotpath
func (v *vpSim) txDone(linkID int32, p *packet) {
	l := &v.ss.links[linkID]
	if l.down {
		v.blackhole(p)
		for l.queued() > 0 {
			v.blackhole(l.pop())
		}
		l.busy = false
		return
	}
	l.txBytes += uint64(p.wireSize)
	t := v.now + l.delayNS
	// The delivery executes in the partition owning the next link (or, on
	// the final hop, this one — host downlinks are endpoint-owned).
	dst := v.ss.linkOwner[linkID]
	if int(p.hop)+1 < len(p.links) {
		dst = v.ss.linkOwner[p.links[p.hop+1]]
	}
	if int(dst) == v.id {
		v.push(event{t: t, kind: evDeliver, pkt: p})
	} else {
		v.ringPut(dst, t, p)
	}
	if l.queued() > 0 {
		next := l.pop()
		v.push(event{t: v.now + l.txTimeNS(next.wireSize), kind: evTxDone, idx: linkID, pkt: next})
	} else {
		l.busy = false
	}
}

// ringPut hands a delivery to another partition: copy the packet into the
// pair's ring, note the handoff time for the coordinator's horizon, and
// recycle the local packet.
//
//lint:hotpath
func (v *vpSim) ringPut(dst uint8, t int64, p *packet) {
	v.ss.rings[v.id*shardVPs+int(dst)].put(v.parity, t, p)
	if t < v.producedMin {
		v.producedMin = t
	}
	v.free(p)
}

//lint:hotpath
func (v *vpSim) deliver(p *packet) {
	p.hop++
	if int(p.hop) < len(p.links) {
		v.enterLink(p)
		return
	}
	idx := p.flow
	if p.isAck {
		ack, echo, ce := p.seq, p.echo, p.ce
		v.free(p)
		v.handleAck(&v.ss.snd[idx], idx, ack, echo, ce)
		return
	}
	// Receiver side. Unlike the serial engine there is no sender-done check:
	// the receiver half cannot see the sender half's state, so it keeps
	// acknowledging late retransmissions — shard-count-invariant either way.
	rc := &v.ss.rcv[idx]
	seq, payload, echo, ce := p.seq, int64(p.payload), p.echo, p.ce
	v.free(p)
	if seq == rc.rcvNxt {
		rc.rcvNxt += payload
		for {
			pl, ok := rc.ooo[rc.rcvNxt]
			if !ok {
				break
			}
			delete(rc.ooo, rc.rcvNxt)
			rc.rcvNxt += int64(pl)
		}
	} else if seq > rc.rcvNxt {
		if rc.ooo == nil {
			rc.ooo = make(map[int64]int32, 8) //lint:allow hotpath (lazy: only the first reordered packet of a flow pays)
		}
		rc.ooo[seq] = int32(payload)
	}
	v.sendAck(rc, idx, echo, ce)
}

//lint:hotpath
func (v *vpSim) handleAck(sn *senderState, idx int32, ack, echo int64, ce bool) {
	if sn.done {
		return
	}
	v.updateRTT(sn, v.now-echo)
	mss := float64(v.ss.cfg.MSS)
	switch {
	case ack > sn.sndUna:
		ackedBytes := ack - sn.sndUna
		sn.sndUna = ack
		if sn.sndNxt < sn.sndUna {
			sn.sndNxt = sn.sndUna
		}
		sn.dupacks = 0
		if v.ss.cfg.ECN {
			v.dctcpUpdate(sn, ackedBytes, ce)
		}
		if sn.inRecovery {
			if ack >= sn.recover {
				sn.inRecovery = false
				sn.cwnd = sn.ssthresh
			} else {
				v.stats.Retransmits++
				v.sendSegment(sn, idx, sn.sndUna)
			}
		} else {
			ackedSegs := float64(ackedBytes) / mss
			if sn.cwnd < sn.ssthresh {
				sn.cwnd += ackedSegs
			} else {
				sn.cwnd += ackedSegs / sn.cwnd
			}
		}
		if sn.sndUna >= v.ss.specs[idx].SizeBytes {
			sn.done = true
			sn.fct = v.now - v.ss.specs[idx].StartNS
			sn.rtoEpoch++ // cancel timer
			v.doneDelta++
			return
		}
		v.armRTO(sn, idx)
		v.trySend(sn, idx)
	case ack == sn.sndUna && sn.sndNxt > sn.sndUna:
		sn.dupacks++
		if sn.inRecovery {
			sn.cwnd++
			v.trySend(sn, idx)
		} else if sn.dupacks == 3 {
			flightSegs := float64(sn.sndNxt-sn.sndUna) / mss
			sn.ssthresh = math.Max(flightSegs/2, 2)
			sn.recover = sn.sndNxt
			sn.inRecovery = true
			sn.cwnd = sn.ssthresh + 3
			v.stats.Retransmits++
			v.sendSegment(sn, idx, sn.sndUna)
			v.armRTO(sn, idx)
		}
	}
}

//lint:hotpath
func (v *vpSim) timeout(idx int32, epoch uint64) {
	sn := &v.ss.snd[idx]
	if sn.done || epoch != sn.rtoEpoch || sn.sndNxt == sn.sndUna {
		return
	}
	v.stats.Timeouts++
	sn.rtoHit = true
	flightSegs := float64(sn.sndNxt-sn.sndUna) / float64(v.ss.cfg.MSS)
	sn.ssthresh = math.Max(flightSegs/2, 2)
	sn.cwnd = 1
	sn.inRecovery = false
	sn.dupacks = 0
	sn.sndNxt = sn.sndUna
	sn.rto = min(2*sn.rto, int64(v.ss.cfg.MaxRTO))
	v.stats.Retransmits++
	v.trySend(sn, idx)
}

func (v *vpSim) dctcpUpdate(sn *senderState, ackedBytes int64, ce bool) {
	sn.ceAcked += ackedBytes
	if ce {
		sn.ceMarked += ackedBytes
	}
	if sn.sndUna < sn.ceWindowEnd {
		return
	}
	if sn.ceAcked > 0 {
		frac := float64(sn.ceMarked) / float64(sn.ceAcked)
		g := v.ss.cfg.DCTCPGain
		sn.alpha = (1-g)*sn.alpha + g*frac
		if sn.ceMarked > 0 && !sn.inRecovery {
			sn.cwnd *= 1 - sn.alpha/2
			if sn.cwnd < 1 {
				sn.cwnd = 1
			}
		}
	}
	sn.ceAcked, sn.ceMarked = 0, 0
	sn.ceWindowEnd = sn.sndNxt
}

func (v *vpSim) updateRTT(sn *senderState, sample int64) {
	if sample <= 0 {
		sample = 1
	}
	sa := float64(sample)
	if sn.srtt <= 0 {
		sn.srtt = sa
		sn.rttvar = sa / 2
	} else {
		d := sn.srtt - sa
		if d < 0 {
			d = -d
		}
		sn.rttvar = 0.75*sn.rttvar + 0.25*d
		sn.srtt = 0.875*sn.srtt + 0.125*sa
	}
	rto := int64(sn.srtt + 4*sn.rttvar)
	sn.rto = max(int64(v.ss.cfg.MinRTO), min(rto, int64(v.ss.cfg.MaxRTO)))
}

func (v *vpSim) armRTO(sn *senderState, idx int32) {
	sn.rtoEpoch++
	v.push(event{t: v.now + sn.rto, kind: evRTO, idx: idx, epoch: sn.rtoEpoch})
}

func (v *vpSim) applyDueFaults() {
	for v.faultIdx < len(v.faultEvents) && v.faultEvents[v.faultIdx].TimeNS <= v.now {
		v.applyFault(v.faultEvents[v.faultIdx])
		v.faultIdx++
	}
	if v.faultIdx < len(v.faultEvents) {
		v.push(event{t: v.faultEvents[v.faultIdx].TimeNS, kind: evFault})
	}
}

// applyFault applies the directions of a fault event whose links this
// partition owns; the peer partition applies the opposite directions at the
// same simulated time from its own filed copy.
func (v *vpSim) applyFault(e faults.Event) {
	for _, key := range [2][2]int{{e.A, e.B}, {e.B, e.A}} {
		for _, id := range v.pairLinks(key[0], key[1]) {
			if int(v.ss.linkOwner[id]) != v.id {
				continue
			}
			l := &v.ss.links[id]
			switch e.Kind {
			case faults.LinkDown:
				l.down = true
				for l.queued() > 0 {
					v.blackhole(l.pop())
				}
			case faults.LinkUp:
				l.down = false
			case faults.GraySet:
				l.lossProb = e.LossProb
				l.bytesPerNS = l.nominalBytesPerNS * e.RateFactor
			case faults.GrayClear:
				l.lossProb = 0
				l.bytesPerNS = l.nominalBytesPerNS
			}
		}
	}
}

//lint:hotpath
func (v *vpSim) blackhole(p *packet) {
	v.stats.Blackholed++
	if v.blackholeFirst < 0 {
		v.blackholeFirst = v.now
	}
	v.blackholeLast = v.now
	v.free(p)
}

// reroute advances this partition's scheme phase and re-resolves the flow
// halves it owns, mirroring the serial reroute flow by flow: the sender
// half re-expands data paths (counting Reroutes and restarting stranded
// flows), the receiver half re-expands ACK paths. Path reachability is
// flow-hash-independent, so the two halves agree on which flows re-path.
func (v *vpSim) reroute() {
	v.activeScheme = v.ss.tv.SchemeAt(v.now)
	for _, i := range v.flowsSnd {
		sn := &v.ss.snd[i]
		if !sn.started || sn.done {
			continue
		}
		spec := v.ss.specs[i]
		srcRack, dstRack := v.ss.g.RackOf(spec.Src), v.ss.g.RackOf(spec.Dst)
		h := spec.ID ^ (sn.flowletID * 0x9e3779b97f4a7c15)
		fwd := v.activeScheme.Path(srcRack, dstRack, h)
		rev := v.activeScheme.Path(dstRack, srcRack, spec.ID^0x5ca1ab1e)
		if fwd == nil || rev == nil {
			continue // keep the stale path (genuinely partitioned fabric)
		}
		stranded := sn.dataLinks == nil
		sn.dataLinks = v.expandPath(spec.Src, spec.Dst, fwd, h)
		v.stats.Reroutes++
		if stranded {
			v.initSender(sn)
			v.trySend(sn, i)
		}
	}
	for _, i := range v.flowsRcv {
		rc := &v.ss.rcv[i]
		if !rc.started {
			continue
		}
		spec := v.ss.specs[i]
		srcRack, dstRack := v.ss.g.RackOf(spec.Src), v.ss.g.RackOf(spec.Dst)
		fwd := v.activeScheme.Path(srcRack, dstRack, spec.ID)
		rev := v.activeScheme.Path(dstRack, srcRack, spec.ID^0x5ca1ab1e)
		if fwd == nil || rev == nil {
			continue
		}
		rc.ackLinks = v.expandPath(spec.Dst, spec.Src, rev, spec.ID^0x5ca1ab1e)
	}
}

//lint:hotpath
func (v *vpSim) alloc() *packet {
	if n := len(v.pool); n > 0 {
		p := v.pool[n-1]
		v.pool = v.pool[:n-1]
		p.pooled = false
		return p
	}
	if v.poolNext == len(v.poolChunk) {
		v.poolChunk = make([]packet, poolChunkSize) //lint:allow hotpath (pool refill: one allocation per 256 packets, amortized away)
		v.poolNext = 0
	}
	p := &v.poolChunk[v.poolNext]
	v.poolNext++
	return p
}

//lint:hotpath
func (v *vpSim) free(p *packet) {
	if p.pooled {
		return
	}
	p.pooled = true
	p.links = nil
	v.pool = append(v.pool, p)
}
