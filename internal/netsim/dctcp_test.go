package netsim

import (
	"testing"

	"spineless/internal/routing"
	"spineless/internal/workload"
)

func TestDCTCPConfigValidation(t *testing.T) {
	g := pairFabric(t, 1, 2)
	cfg := DefaultConfig().WithDCTCP()
	if _, err := New(g, routing.NewECMP(g), cfg); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.ECNThresholdBytes = 0
	if _, err := New(g, routing.NewECMP(g), bad); err == nil {
		t.Fatal("zero ECN threshold accepted")
	}
	bad = cfg
	bad.DCTCPGain = 2
	if _, err := New(g, routing.NewECMP(g), bad); err == nil {
		t.Fatal("gain > 1 accepted")
	}
}

func TestDCTCPMarksUnderCongestion(t *testing.T) {
	g := pairFabric(t, 1, 8)
	cfg := DefaultConfig().WithDCTCP()
	var flows []workload.Flow
	for i := 0; i < 8; i++ {
		flows = append(flows, workload.Flow{
			ID: uint64(i), Src: i, Dst: 8 + i, SizeBytes: 1 << 20,
		})
	}
	res := runFlows(t, g, routing.NewECMP(g), cfg, flows)
	if res.Completed != 8 {
		t.Fatalf("completed %d/8", res.Completed)
	}
	if res.Stats.ECNMarks == 0 {
		t.Fatal("8:1 overload produced no ECN marks")
	}
}

func TestDCTCPNoMarksUncontended(t *testing.T) {
	g := pairFabric(t, 1, 2)
	cfg := DefaultConfig().WithDCTCP()
	res := runFlows(t, g, routing.NewECMP(g), cfg, []workload.Flow{
		{ID: 1, Src: 0, Dst: 2, SizeBytes: 1 << 20},
	})
	if res.Completed != 1 {
		t.Fatal("incomplete")
	}
	// One flow capped by InitSsthresh=64 segments never builds a 20-packet
	// standing queue on an empty 10G path... except transiently in slow
	// start; tolerate a tiny number of marks but no loss.
	if res.Stats.Drops != 0 {
		t.Fatalf("uncontended DCTCP flow dropped packets: %+v", res.Stats)
	}
}

// TestDCTCPShrinksQueuesVsTCP pins DCTCP's reason to exist: same overload,
// far fewer drops than loss-based TCP with the same buffers.
func TestDCTCPShrinksQueuesVsTCP(t *testing.T) {
	mk := func(cfg Config) Stats {
		g := pairFabric(t, 1, 12)
		var flows []workload.Flow
		for i := 0; i < 12; i++ {
			flows = append(flows, workload.Flow{
				ID: uint64(i), Src: i, Dst: 12 + i, SizeBytes: 800e3,
			})
		}
		res := runFlows(t, g, routing.NewECMP(g), cfg, flows)
		if res.Completed != 12 {
			t.Fatalf("completed %d/12", res.Completed)
		}
		return res.Stats
	}
	plain := mk(DefaultConfig())
	dctcp := mk(DefaultConfig().WithDCTCP())
	if plain.Drops == 0 {
		t.Fatal("baseline TCP saw no drops under 12:1 sharing — overload too weak")
	}
	if dctcp.Drops >= plain.Drops {
		t.Fatalf("DCTCP drops %d not fewer than TCP %d", dctcp.Drops, plain.Drops)
	}
	if dctcp.ECNMarks == 0 {
		t.Fatal("DCTCP run recorded no marks")
	}
}

func TestDCTCPDeterministic(t *testing.T) {
	cfg := DefaultConfig().WithDCTCP()
	g1 := pairFabric(t, 2, 6)
	g2 := pairFabric(t, 2, 6)
	var flows []workload.Flow
	for i := 0; i < 12; i++ {
		flows = append(flows, workload.Flow{
			ID: uint64(i), Src: i % 6, Dst: 6 + (i+1)%6, SizeBytes: 300e3, StartNS: int64(i) * 3000,
		})
	}
	a := runFlows(t, g1, routing.NewECMP(g1), cfg, flows)
	b := runFlows(t, g2, routing.NewECMP(g2), cfg, flows)
	if a.Stats != b.Stats {
		t.Fatalf("DCTCP nondeterministic: %+v vs %+v", a.Stats, b.Stats)
	}
}
