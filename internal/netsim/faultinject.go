package netsim

import (
	"fmt"
	"math/rand"

	"spineless/internal/faults"
)

// InstallFaults arms a fault schedule on the simulator. It must be called
// before Run. Events are applied in (time, insertion) order; gray-failure
// loss draws come from a rand.Rand seeded with the schedule's Seed, so runs
// are reproducible byte for byte. Host links cannot fail: every event must
// name an existing switch-to-switch link, and a LinkDown/GraySet affects
// all parallel copies in both directions.
func (s *Simulator) InstallFaults(sched *faults.Schedule) error {
	if sched == nil {
		return nil
	}
	if len(s.flows) != 0 {
		return fmt.Errorf("netsim: InstallFaults after Run")
	}
	if err := sched.Validate(); err != nil {
		return err
	}
	events := sched.Sorted()
	for _, e := range events {
		if e.A < 0 || e.B < 0 || e.A >= s.nSwitch || e.B >= s.nSwitch ||
			len(s.pairLinks(e.A, e.B)) == 0 {
			return fmt.Errorf("netsim: fault %s on non-existent link %d-%d", e.Kind, e.A, e.B)
		}
	}
	s.faultEvents = events
	s.faultIdx = 0
	s.faultRNG = rand.New(rand.NewSource(sched.Seed))
	return nil
}

// applyDueFaults applies every scheduled event at or before now, then
// re-arms the evFault timer for the next one.
func (s *Simulator) applyDueFaults() {
	for s.faultIdx < len(s.faultEvents) && s.faultEvents[s.faultIdx].TimeNS <= s.now {
		s.applyFault(s.faultEvents[s.faultIdx])
		s.faultIdx++
	}
	if s.faultIdx < len(s.faultEvents) {
		s.push(event{t: s.faultEvents[s.faultIdx].TimeNS, kind: evFault})
	}
}

func (s *Simulator) applyFault(e faults.Event) {
	for _, key := range [2][2]int{{e.A, e.B}, {e.B, e.A}} {
		for _, id := range s.pairLinks(key[0], key[1]) {
			l := &s.links[id]
			switch e.Kind {
			case faults.LinkDown:
				l.down = true
				for l.queued() > 0 {
					s.blackhole(id, l.pop())
				}
			case faults.LinkUp:
				l.down = false
			case faults.GraySet:
				l.lossProb = e.LossProb
				l.bytesPerNS = l.nominalBytesPerNS * e.RateFactor
			case faults.GrayClear:
				l.lossProb = 0
				l.bytesPerNS = l.nominalBytesPerNS
			}
			if s.tracer != nil {
				s.tracer.OnStateChange(s.now, id, l.down, l.lossProb, l.bytesPerNS/l.nominalBytesPerNS)
			}
		}
	}
}

// blackhole discards a packet lost into down link id, tracking the
// observed blackhole window.
func (s *Simulator) blackhole(id int32, p *packet) {
	s.stats.Blackholed++
	if s.blackholeFirst < 0 {
		s.blackholeFirst = s.now
	}
	s.blackholeLast = s.now
	if s.tracer != nil {
		s.tracer.OnDrop(s.now, id, p.flow, p.isAck, DropBlackhole)
	}
	s.free(p)
}

// reroute advances the time-varying scheme to the current phase and
// re-resolves every live flow's paths on it — the moment reconvergence
// completes and the repaired FIB is installed fabric-wide. Flows whose
// rack pair is unreachable under the new scheme keep their stale paths
// (and keep blackholing), mirroring a genuinely partitioned fabric.
// A flow that started while its racks were unreachable (nil paths) is
// re-resolved too: once a boundary restores reachability it initializes
// its sender and begins transmitting, instead of staying stranded forever.
func (s *Simulator) reroute() {
	s.activeScheme = s.tv.SchemeAt(s.now)
	for i := range s.flows {
		f := &s.flows[i]
		if !f.started || f.done {
			continue
		}
		spec := f.spec
		srcRack, dstRack := s.g.RackOf(spec.Src), s.g.RackOf(spec.Dst)
		h := spec.ID ^ (f.flowletID * 0x9e3779b97f4a7c15)
		fwd := s.activeScheme.Path(srcRack, dstRack, h)
		rev := s.activeScheme.Path(dstRack, srcRack, spec.ID^0x5ca1ab1e)
		if fwd == nil || rev == nil {
			continue
		}
		stranded := f.dataLinks == nil
		f.dataLinks = s.expandPath(spec.Src, spec.Dst, fwd, h)
		f.ackLinks = s.expandPath(spec.Dst, spec.Src, rev, spec.ID^0x5ca1ab1e)
		s.stats.Reroutes++
		if stranded {
			idx := int32(i)
			s.initSender(f, idx)
			s.trySend(f, idx)
		}
	}
}
