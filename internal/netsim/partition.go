package netsim

// Virtual partitioning for the sharded engine.
//
// The fabric is cut into a FIXED number of virtual partitions (VPs),
// independent of how many worker goroutines actually run. Each VP owns a
// subset of switches: every directed network link u→v belongs to the VP of
// its tail switch u, and a server's host links (and the transport endpoint
// state attached to them) belong to the VP of its rack. A run with P workers
// multiplexes the 16 VPs onto P goroutines round-robin (vp mod P).
//
// Fixing the partition count is what makes results shard-count-invariant by
// construction: the event partition, per-VP event order, per-VP sequence
// numbers, per-VP RNG streams and the window/merge schedule depend only on
// the VP layout, never on P. P is a pure throughput knob — the same contract
// internal/parallel documents for trial fan-out, enforced here inside a
// single trial.
//
// The ownership rule also fixes the lookahead bound. A packet finishing
// serialization on link u→v is delivered delayNS later to the head of its
// next link v→w (owned by the VP of v) or to its destination endpoint
// (owned by the VP of the destination rack, which is v). Host links never
// cross a VP boundary — hostUp[h] delivers into a link whose tail is h's
// rack, and hostDown[h] delivers to h itself — so every cross-VP hop is a
// switch-to-switch propagation of exactly Config.LinkDelayNS. That delay is
// therefore a hard lower bound on how far ahead of its neighbors any VP can
// generate work, i.e. the conservative lookahead window.

// shardVPs is the fixed virtual-partition count. 16 caps useful parallelism
// well above the shard counts benchmarked (2/4/8) while keeping the
// per-pair ring matrix (shardVPs²) trivially small.
const shardVPs = 16

// vpOfSwitch maps a switch to its owning virtual partition.
func vpOfSwitch(sw int) uint8 { return uint8(sw % shardVPs) }
