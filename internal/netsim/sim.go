package netsim

import (
	"fmt"
	"math"
	"math/rand"

	"spineless/internal/faults"
	"spineless/internal/routing"
	"spineless/internal/topology"
	"spineless/internal/workload"
)

// Simulator runs packet-level TCP simulations over one fabric and routing
// scheme. It is single-goroutine and fully deterministic: the same fabric,
// scheme, config, flow list and fault schedule always produce identical
// results (gray-failure loss draws come from the schedule's own seed).
type Simulator struct {
	g      *topology.Graph
	scheme routing.Scheme
	cfg    Config

	// activeScheme is the scheme serving new path lookups right now. It
	// starts as scheme (or a TimeScheme's phase 0) and advances at evReroute
	// boundaries, replaying BGP reconvergence: flows keep their stale paths
	// until the boundary, then re-resolve onto the repaired FIB.
	activeScheme routing.Scheme
	tv           routing.TimeScheme

	links []link
	// Dense directed-pair adjacency: the parallel link ids of switch pair
	// (u, v) are nlLinks[nlStart[u*nSwitch+v] : nlStart[u*nSwitch+v+1]].
	// Flat prefix-sum indexing replaces the former map[[2]int][]int32 — the
	// lookup sits on the path-expansion hot path, and the map cost both a
	// hash per hop and one heap allocation per directed link at construction.
	nSwitch  int
	nlStart  []int32
	nlLinks  []int32
	hostUp   []int32
	hostDown []int32

	faultEvents    []faults.Event
	faultIdx       int
	faultRNG       *rand.Rand
	blackholeFirst int64
	blackholeLast  int64

	flows []flowState
	done  int

	events     eventHeap
	seqCounter uint64
	now        int64

	// Free packets are handed out from pool; refills come from poolChunk,
	// a block allocation that amortizes one heap object over many packets.
	pool      []*packet
	poolChunk []packet
	poolNext  int

	// arena backs expandPath's per-flow link-id slices.
	arena     []int32
	arenaNext int

	// tracer, when non-nil, observes the data plane (see Tracer). Every
	// hook sits behind a nil check so the disabled path costs nothing.
	tracer Tracer
	// allocCount/freeCount track pooled-packet issuance so audited runs
	// can account for packets still in flight at the end of a run.
	allocCount uint64
	freeCount  uint64
	// violations collects internal invariant breaches (double frees,
	// non-monotone event times) observed while a tracer is installed.
	violations []string

	stats Stats
}

// Stats aggregates data-plane counters across a run.
type Stats struct {
	Events          uint64
	DataPackets     uint64
	AckPackets      uint64
	Retransmits     uint64
	Timeouts        uint64
	Drops           uint64
	ECNMarks        uint64
	FlowletSwitches uint64

	// Fault-injection counters (zero without an installed schedule).
	Blackholed uint64 // packets lost into a down link (stale-FIB blackhole)
	GrayDrops  uint64 // packets lost to gray-failure random loss
	Reroutes   uint64 // live flows re-pathed at a routing phase boundary
}

// Accumulate adds o's counters into s — used to pool the per-trial stats of
// a multi-window experiment into one aggregate.
func (s *Stats) Accumulate(o Stats) {
	s.Events += o.Events
	s.DataPackets += o.DataPackets
	s.AckPackets += o.AckPackets
	s.Retransmits += o.Retransmits
	s.Timeouts += o.Timeouts
	s.Drops += o.Drops
	s.ECNMarks += o.ECNMarks
	s.FlowletSwitches += o.FlowletSwitches
	s.Blackholed += o.Blackholed
	s.GrayDrops += o.GrayDrops
	s.Reroutes += o.Reroutes
}

// Results reports per-flow outcomes of a run.
type Results struct {
	// FCTNS[i] is flow i's completion time in ns, or -1 if it did not finish
	// before MaxSimTime.
	FCTNS     []int64
	Completed int
	EndNS     int64
	Stats     Stats

	// BlackholeFirstNS/BlackholeLastNS bracket the observed blackhole
	// window (-1 when no packet was blackholed): the span between the first
	// and last packet lost into a down link.
	BlackholeFirstNS int64
	BlackholeLastNS  int64
	// FlowsWithRTO counts flows that hit at least one retransmission
	// timeout — the transport-visible victims of the transient.
	FlowsWithRTO int
}

type flowState struct {
	spec      workload.Flow
	dataLinks []int32
	ackLinks  []int32

	// Sender.
	sndUna, sndNxt int64
	cwnd, ssthresh float64 // segments
	dupacks        int
	inRecovery     bool
	recover        int64
	srtt, rttvar   float64 // ns
	rto            int64   // ns
	rtoEpoch       uint64

	// DCTCP state (ECN configs only).
	alpha       float64
	ceAcked     int64 // bytes acked in the current observation window
	ceMarked    int64 // of which were CE-marked
	ceWindowEnd int64 // window boundary (sequence number)

	// Flowlet state (FlowletTimeout configs only).
	lastSendNS int64
	flowletID  uint64

	// Receiver.
	rcvNxt int64
	ooo    map[int64]int32 // seq → payload bytes

	started bool
	done    bool
	rtoHit  bool
	fct     int64
}

// New builds a simulator for fabric g routed by scheme.
func New(g *topology.Graph, scheme routing.Scheme, cfg Config) (*Simulator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Simulator{g: g, scheme: scheme, cfg: cfg,
		blackholeFirst: -1, blackholeLast: -1}
	s.activeScheme = scheme
	if tv, ok := scheme.(routing.TimeScheme); ok {
		s.tv = tv
		s.activeScheme = tv.SchemeAt(0)
	}
	addLink := func(rateBps float64, delayNS int64) int32 {
		id := int32(len(s.links))
		s.links = append(s.links, link{
			bytesPerNS:        rateBps / 8 / 1e9,
			nominalBytesPerNS: rateBps / 8 / 1e9,
			delayNS:           delayNS,
			capBytes:          cfg.QueueBytes,
		})
		return id
	}
	// Two passes build the prefix-sum adjacency without per-pair slices:
	// count parallel copies per directed pair, then assign link ids in the
	// same (u, neighbor-order) sequence the map-based construction used, so
	// per-pair copy order — and hence flow hashing — is unchanged.
	ns := g.N()
	s.nSwitch = ns
	s.nlStart = make([]int32, ns*ns+1)
	for u := 0; u < ns; u++ {
		for _, v := range g.Neighbors(u) {
			s.nlStart[u*ns+v+1]++
		}
	}
	for i := 1; i < len(s.nlStart); i++ {
		s.nlStart[i] += s.nlStart[i-1]
	}
	s.nlLinks = make([]int32, s.nlStart[len(s.nlStart)-1])
	s.links = make([]link, 0, len(s.nlLinks)+2*g.Servers())
	fill := make([]int32, ns*ns)
	for u := 0; u < ns; u++ {
		for _, v := range g.Neighbors(u) {
			k := u*ns + v
			s.nlLinks[s.nlStart[k]+fill[k]] = addLink(cfg.LinkRateBps, cfg.LinkDelayNS)
			fill[k]++
		}
	}
	n := g.Servers()
	s.hostUp = make([]int32, n)
	s.hostDown = make([]int32, n)
	for h := 0; h < n; h++ {
		s.hostUp[h] = addLink(cfg.hostRate(), cfg.hostDelay())
		s.hostDown[h] = addLink(cfg.hostRate(), cfg.hostDelay())
	}
	return s, nil
}

// Run simulates the given flows to completion (or MaxSimTime) and returns
// per-flow completion times. Run may be called once per Simulator.
func (s *Simulator) Run(flows []workload.Flow) (Results, error) {
	if len(s.flows) != 0 {
		return Results{}, fmt.Errorf("netsim: Run called twice")
	}
	if len(flows) == 0 {
		return Results{}, fmt.Errorf("netsim: no flows")
	}
	for i, f := range flows {
		if f.SizeBytes <= 0 {
			return Results{}, fmt.Errorf("netsim: flow %d has size %d", i, f.SizeBytes)
		}
		if f.Src == f.Dst {
			return Results{}, fmt.Errorf("netsim: flow %d is host-local", i)
		}
		if f.Src < 0 || f.Src >= s.g.Servers() || f.Dst < 0 || f.Dst >= s.g.Servers() {
			return Results{}, fmt.Errorf("netsim: flow %d endpoints out of range", i)
		}
	}
	s.flows = make([]flowState, len(flows))
	s.events = make(eventHeap, 0, 4*len(flows)+64)
	for i, f := range flows {
		s.flows[i].spec = f
		s.flows[i].fct = -1
		s.push(event{t: f.StartNS, kind: evStart, idx: int32(i)})
	}
	if len(s.faultEvents) > 0 {
		s.push(event{t: s.faultEvents[0].TimeNS, kind: evFault})
	}
	if s.tv != nil {
		for _, b := range s.tv.Boundaries() {
			s.push(event{t: b, kind: evReroute})
		}
	}
	maxT := int64(s.cfg.MaxSimTime)
	for len(s.events) > 0 && s.done < len(s.flows) {
		ev := s.pop()
		if ev.t > maxT {
			break
		}
		if s.tracer != nil && ev.t < s.now {
			s.violate("event time moved backwards: %d after %d (kind %d)", ev.t, s.now, ev.kind)
		}
		s.now = ev.t
		s.stats.Events++
		switch ev.kind {
		case evStart:
			s.startFlow(ev.idx)
		case evTxDone:
			s.txDone(ev.idx, ev.pkt)
		case evDeliver:
			s.deliver(ev.pkt)
		case evRTO:
			s.timeout(ev.idx, ev.epoch)
		case evFault:
			s.applyDueFaults()
		case evReroute:
			s.reroute()
		}
	}
	// Drops are counted at the drop site (enterLink), so s.stats is already
	// complete — no per-link summation pass that could disagree with
	// Simulator.stats or LinkDrops().
	res := Results{FCTNS: make([]int64, len(flows)), EndNS: s.now, Stats: s.stats,
		BlackholeFirstNS: s.blackholeFirst, BlackholeLastNS: s.blackholeLast}
	for i := range s.flows {
		res.FCTNS[i] = s.flows[i].fct
		if s.flows[i].done {
			res.Completed++
		}
		if s.flows[i].rtoHit {
			res.FlowsWithRTO++
		}
	}
	return res, nil
}

func (s *Simulator) startFlow(idx int32) {
	f := &s.flows[idx]
	if f.started {
		return
	}
	f.started = true
	spec := f.spec
	srcRack, dstRack := s.g.RackOf(spec.Src), s.g.RackOf(spec.Dst)
	fwd := s.activeScheme.Path(srcRack, dstRack, spec.ID)
	rev := s.activeScheme.Path(dstRack, srcRack, spec.ID^0x5ca1ab1e)
	if fwd == nil || rev == nil {
		// Unreachable racks: leave the flow incomplete forever.
		return
	}
	f.dataLinks = s.expandPath(spec.Src, spec.Dst, fwd, spec.ID)
	f.ackLinks = s.expandPath(spec.Dst, spec.Src, rev, spec.ID^0x5ca1ab1e)
	s.initSender(f, idx)
	s.trySend(f, idx)
}

// initSender arms a flow's congestion-control state for its first send —
// at startFlow, or at a reroute boundary for a flow whose racks were
// unreachable when it started.
func (s *Simulator) initSender(f *flowState, idx int32) {
	f.cwnd = s.cfg.InitCwnd
	f.ssthresh = math.MaxFloat64
	if s.cfg.InitSsthresh > 0 {
		f.ssthresh = s.cfg.InitSsthresh
	}
	f.rto = int64(s.cfg.MinRTO)
	if s.tracer != nil {
		s.tracer.OnCwnd(s.now, idx, f.cwnd, f.sndUna, f.sndNxt)
	}
}

// pairLinks returns the parallel link ids of the directed switch pair u→v
// (empty when no link exists).
func (s *Simulator) pairLinks(u, v int) []int32 {
	k := u*s.nSwitch + v
	return s.nlLinks[s.nlStart[k]:s.nlStart[k+1]]
}

// allocLinkIDs hands out a zero-length slice with capacity n carved from a
// chunked arena, so per-flow path expansion does not hit the heap. The
// capacity is exact: an append past n would fall back to a fresh heap slice
// rather than trample the arena neighbor.
func (s *Simulator) allocLinkIDs(n int) []int32 {
	if s.arenaNext+n > len(s.arena) {
		sz := linkIDArenaChunk
		if n > sz {
			sz = n
		}
		s.arena = make([]int32, sz) //lint:allow hotpath (arena refill: one allocation per 4096 link ids, amortized away)
		s.arenaNext = 0
	}
	out := s.arena[s.arenaNext : s.arenaNext : s.arenaNext+n]
	s.arenaNext += n
	return out
}

// linkIDArenaChunk is the arena block size (int32s) for expanded paths.
const linkIDArenaChunk = 4096

// expandPath converts a switch path into the directed link sequence
// host-uplink, network links (hashing across parallel copies), host-downlink.
func (s *Simulator) expandPath(srcHost, dstHost int, swPath []int, flowID uint64) []int32 {
	out := s.allocLinkIDs(len(swPath) + 1)
	out = append(out, s.hostUp[srcHost])
	for h := 0; h+1 < len(swPath); h++ {
		copies := s.pairLinks(swPath[h], swPath[h+1])
		// The modulo must stay in uint64: converting the shifted hash to
		// int first yields a negative index whenever the top bit is set
		// (reachable via the flowlet rehash on any trunked pair).
		out = append(out, copies[(flowID>>uint(h%32))%uint64(len(copies))])
	}
	out = append(out, s.hostDown[dstHost])
	return out
}

// trySend transmits new segments while the congestion window allows.
//
//lint:hotpath
func (s *Simulator) trySend(f *flowState, idx int32) {
	mss := int64(s.cfg.MSS)
	for f.sndNxt < f.spec.SizeBytes && f.sndNxt-f.sndUna < int64(f.cwnd*float64(mss)) {
		s.sendSegment(f, idx, f.sndNxt)
		f.sndNxt += min(mss, f.spec.SizeBytes-f.sndNxt)
	}
	if f.sndNxt > f.sndUna {
		s.armRTO(f, idx)
	}
}

//lint:hotpath
func (s *Simulator) sendSegment(f *flowState, idx int32, seq int64) {
	if t := int64(s.cfg.FlowletTimeout); t > 0 {
		// Flowlet switching [25]: an idle gap longer than the timeout lets
		// the next burst re-hash onto a (possibly) different path.
		if f.lastSendNS > 0 && s.now-f.lastSendNS > t {
			f.flowletID++
			s.stats.FlowletSwitches++
			spec := f.spec
			srcRack, dstRack := s.g.RackOf(spec.Src), s.g.RackOf(spec.Dst)
			h := spec.ID ^ (f.flowletID * 0x9e3779b97f4a7c15)
			if fwd := s.activeScheme.Path(srcRack, dstRack, h); fwd != nil {
				f.dataLinks = s.expandPath(spec.Src, spec.Dst, fwd, h)
			}
		}
		f.lastSendNS = s.now
	}
	payload := min(int64(s.cfg.MSS), f.spec.SizeBytes-seq)
	p := s.alloc()
	p.flow = idx
	p.hop = 0
	p.isAck = false
	p.ce = false
	p.seq = seq
	p.payload = int32(payload)
	p.wireSize = int32(payload) + int32(s.cfg.HeaderBytes)
	p.echo = s.now
	p.links = f.dataLinks
	s.stats.DataPackets++
	s.enterLink(p)
}

//lint:hotpath
func (s *Simulator) sendAck(f *flowState, idx int32, echo int64, ce bool) {
	p := s.alloc()
	p.flow = idx
	p.hop = 0
	p.isAck = true
	p.ce = ce
	p.seq = f.rcvNxt
	p.payload = 0
	p.wireSize = int32(s.cfg.AckBytes)
	p.echo = echo
	p.links = f.ackLinks
	s.stats.AckPackets++
	s.enterLink(p)
}

//lint:hotpath
func (s *Simulator) enterLink(p *packet) {
	id := p.links[p.hop]
	l := &s.links[id]
	if l.down {
		s.blackhole(id, p)
		return
	}
	if l.lossProb > 0 && s.faultRNG.Float64() < l.lossProb {
		s.stats.GrayDrops++
		if s.tracer != nil {
			s.tracer.OnDrop(s.now, id, p.flow, p.isAck, DropGray)
		}
		s.free(p)
		return
	}
	if s.cfg.ECN && !p.isAck && !p.ce && l.queueBytes >= s.cfg.ECNThresholdBytes {
		// DCTCP-style instantaneous-queue marking at enqueue.
		p.ce = true
		s.stats.ECNMarks++
	}
	if !l.busy {
		l.busy = true
		if s.tracer != nil {
			s.tracer.OnEnqueue(s.now, id, p.flow, int(p.hop), p.isAck, p.wireSize, l.queueBytes, l.qCount)
			s.tracer.OnTxStart(s.now, id, p.flow, p.isAck, p.wireSize)
		}
		s.push(event{t: s.now + l.txTimeNS(p.wireSize), kind: evTxDone, idx: id, pkt: p})
		return
	}
	if !l.push(p) {
		// Drop-tail overflow: counted here, at the drop site, so the
		// aggregate can never disagree with the per-link counters.
		s.stats.Drops++
		if s.tracer != nil {
			s.tracer.OnDrop(s.now, id, p.flow, p.isAck, DropQueue)
		}
		s.free(p)
		return
	}
	if s.tracer != nil {
		s.tracer.OnEnqueue(s.now, id, p.flow, int(p.hop), p.isAck, p.wireSize, l.queueBytes, l.qCount)
	}
}

//lint:hotpath
func (s *Simulator) txDone(linkID int32, p *packet) {
	l := &s.links[linkID]
	if l.down {
		// The link was cut mid-serialization: the frame and anything still
		// queued are lost.
		s.blackhole(linkID, p)
		for l.queued() > 0 {
			s.blackhole(linkID, l.pop())
		}
		l.busy = false
		return
	}
	l.txBytes += uint64(p.wireSize)
	s.push(event{t: s.now + l.delayNS, kind: evDeliver, pkt: p})
	if l.queued() > 0 {
		next := l.pop()
		if s.tracer != nil {
			s.tracer.OnTxStart(s.now, linkID, next.flow, next.isAck, next.wireSize)
		}
		s.push(event{t: s.now + l.txTimeNS(next.wireSize), kind: evTxDone, idx: linkID, pkt: next})
	} else {
		l.busy = false
	}
}

//lint:hotpath
func (s *Simulator) deliver(p *packet) {
	p.hop++
	if int(p.hop) < len(p.links) {
		s.enterLink(p)
		return
	}
	idx := p.flow
	f := &s.flows[idx]
	if s.tracer != nil {
		s.tracer.OnDeliver(s.now, idx, p.isAck, p.seq)
	}
	if p.isAck {
		ack, echo, ce := p.seq, p.echo, p.ce
		s.free(p)
		s.handleAck(f, idx, ack, echo, ce)
		return
	}
	// Receiver side.
	seq, payload, echo, ce := p.seq, int64(p.payload), p.echo, p.ce
	s.free(p)
	if f.done {
		return
	}
	if seq == f.rcvNxt {
		f.rcvNxt += payload
		for {
			pl, ok := f.ooo[f.rcvNxt]
			if !ok {
				break
			}
			delete(f.ooo, f.rcvNxt)
			f.rcvNxt += int64(pl)
		}
	} else if seq > f.rcvNxt {
		if f.ooo == nil {
			// Allocated on first reordering only: in-order flows — the
			// common case — never pay for the map.
			f.ooo = make(map[int64]int32, 8) //lint:allow hotpath (lazy: only the first reordered packet of a flow pays)
		}
		f.ooo[seq] = int32(payload)
	}
	s.sendAck(f, idx, echo, ce)
}

//lint:hotpath
func (s *Simulator) handleAck(f *flowState, idx int32, ack, echo int64, ce bool) {
	if f.done {
		return
	}
	s.updateRTT(f, s.now-echo)
	mss := float64(s.cfg.MSS)
	switch {
	case ack > f.sndUna:
		ackedBytes := ack - f.sndUna
		f.sndUna = ack
		if f.sndNxt < f.sndUna {
			// A pre-timeout segment was acked after go-back-N rewound sndNxt.
			f.sndNxt = f.sndUna
		}
		f.dupacks = 0
		if s.cfg.ECN {
			s.dctcpUpdate(f, ackedBytes, ce)
		}
		if f.inRecovery {
			if ack >= f.recover {
				f.inRecovery = false
				f.cwnd = f.ssthresh
			} else {
				// NewReno partial ack: the next hole is lost too.
				s.stats.Retransmits++
				s.sendSegment(f, idx, f.sndUna)
			}
		} else {
			ackedSegs := float64(ackedBytes) / mss
			if f.cwnd < f.ssthresh {
				f.cwnd += ackedSegs // slow start
			} else {
				f.cwnd += ackedSegs / f.cwnd // congestion avoidance
			}
		}
		if f.sndUna >= f.spec.SizeBytes {
			f.done = true
			f.fct = s.now - f.spec.StartNS
			f.rtoEpoch++ // cancel timer
			s.done++
			if s.tracer != nil {
				s.tracer.OnCwnd(s.now, idx, f.cwnd, f.sndUna, f.sndNxt)
			}
			return
		}
		s.armRTO(f, idx)
		s.trySend(f, idx)
	case ack == f.sndUna && f.sndNxt > f.sndUna:
		f.dupacks++
		if f.inRecovery {
			f.cwnd++ // inflate per extra dupack
			s.trySend(f, idx)
		} else if f.dupacks == 3 {
			flightSegs := float64(f.sndNxt-f.sndUna) / mss
			f.ssthresh = math.Max(flightSegs/2, 2)
			f.recover = f.sndNxt
			f.inRecovery = true
			f.cwnd = f.ssthresh + 3
			s.stats.Retransmits++
			s.sendSegment(f, idx, f.sndUna)
			s.armRTO(f, idx)
		}
	}
	if s.tracer != nil {
		s.tracer.OnCwnd(s.now, idx, f.cwnd, f.sndUna, f.sndNxt)
	}
}

//lint:hotpath
func (s *Simulator) timeout(idx int32, epoch uint64) {
	f := &s.flows[idx]
	if f.done || epoch != f.rtoEpoch || f.sndNxt == f.sndUna {
		return
	}
	s.stats.Timeouts++
	f.rtoHit = true
	flightSegs := float64(f.sndNxt-f.sndUna) / float64(s.cfg.MSS)
	f.ssthresh = math.Max(flightSegs/2, 2)
	f.cwnd = 1
	f.inRecovery = false
	f.dupacks = 0
	f.sndNxt = f.sndUna // go-back-N from the hole
	f.rto = min(2*f.rto, int64(s.cfg.MaxRTO))
	s.stats.Retransmits++
	if s.tracer != nil {
		s.tracer.OnCwnd(s.now, idx, f.cwnd, f.sndUna, f.sndNxt)
	}
	s.trySend(f, idx)
}

// dctcpUpdate runs the DCTCP control law once per observation window: α is
// the EWMA of the marked byte fraction, and any marking in a window scales
// cwnd by (1 − α/2).
func (s *Simulator) dctcpUpdate(f *flowState, ackedBytes int64, ce bool) {
	f.ceAcked += ackedBytes
	if ce {
		f.ceMarked += ackedBytes
	}
	if f.sndUna < f.ceWindowEnd {
		return
	}
	if f.ceAcked > 0 {
		frac := float64(f.ceMarked) / float64(f.ceAcked)
		g := s.cfg.DCTCPGain
		f.alpha = (1-g)*f.alpha + g*frac
		if f.ceMarked > 0 && !f.inRecovery {
			f.cwnd *= 1 - f.alpha/2
			if f.cwnd < 1 {
				f.cwnd = 1
			}
		}
	}
	f.ceAcked, f.ceMarked = 0, 0
	f.ceWindowEnd = f.sndNxt
}

func (s *Simulator) updateRTT(f *flowState, sample int64) {
	if sample <= 0 {
		sample = 1
	}
	sa := float64(sample)
	if f.srtt <= 0 {
		f.srtt = sa
		f.rttvar = sa / 2
	} else {
		d := f.srtt - sa
		if d < 0 {
			d = -d
		}
		f.rttvar = 0.75*f.rttvar + 0.25*d
		f.srtt = 0.875*f.srtt + 0.125*sa
	}
	rto := int64(f.srtt + 4*f.rttvar)
	f.rto = max(int64(s.cfg.MinRTO), min(rto, int64(s.cfg.MaxRTO)))
}

// armRTO (re)schedules the retransmission timer: the epoch bump invalidates
// any previously scheduled firing.
func (s *Simulator) armRTO(f *flowState, idx int32) {
	f.rtoEpoch++
	s.push(event{t: s.now + f.rto, kind: evRTO, idx: idx, epoch: f.rtoEpoch})
}

//lint:hotpath
func (s *Simulator) alloc() *packet {
	s.allocCount++
	if n := len(s.pool); n > 0 {
		p := s.pool[n-1]
		s.pool = s.pool[:n-1]
		p.pooled = false
		return p
	}
	// Pool dry: carve the next packet out of the current block. Earlier
	// blocks stay alive through the pointers already circulating, so growth
	// costs one allocation per poolChunkSize packets instead of one each.
	if s.poolNext == len(s.poolChunk) {
		s.poolChunk = make([]packet, poolChunkSize) //lint:allow hotpath (pool refill: one allocation per 256 packets, amortized away)
		s.poolNext = 0
	}
	p := &s.poolChunk[s.poolNext]
	s.poolNext++
	return p
}

// poolChunkSize is the packet-pool block size; 256 packets ≈ 16 KiB.
const poolChunkSize = 256

//lint:hotpath
func (s *Simulator) free(p *packet) {
	if p.pooled {
		// Double free: the packet is already in the pool. Handing it out
		// twice would silently corrupt two flows' state; record the breach
		// (audited runs fail on it) and drop the duplicate free.
		if s.tracer != nil {
			s.violate("packet double-freed (flow %d, seq %d, ack=%v)", p.flow, p.seq, p.isAck)
		}
		return
	}
	p.pooled = true
	s.freeCount++
	p.links = nil
	s.pool = append(s.pool, p)
}

// LinkDrops returns the total packets dropped at queues (diagnostics).
func (s *Simulator) LinkDrops() uint64 {
	var d uint64
	for i := range s.links {
		d += s.links[i].drops
	}
	return d
}

// NumLinks returns the number of unidirectional links in the built fabric
// (host uplinks and downlinks plus every parallel copy of each switch
// link). The link ids passed to Tracer hooks index this range.
func (s *Simulator) NumLinks() int { return len(s.links) }

// LinkRateBps returns the nominal (fault-free) capacity of link id in bits
// per second — the denominator for turning observed tx bytes into
// utilization. Gray-failure rate derating does not change the nominal rate.
func (s *Simulator) LinkRateBps(id int32) float64 {
	return s.links[id].nominalBytesPerNS * 8e9
}

// NetLinkTx returns the bytes transmitted on the directed switch link u→v,
// summed over parallel copies. It reports 0 for non-existent links.
func (s *Simulator) NetLinkTx(u, v int) uint64 {
	if u < 0 || v < 0 || u >= s.nSwitch || v >= s.nSwitch {
		return 0
	}
	var t uint64
	for _, id := range s.pairLinks(u, v) {
		t += s.links[id].txBytes
	}
	return t
}
