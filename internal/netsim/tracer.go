package netsim

import "fmt"

// DropReason classifies a packet loss for tracing.
type DropReason uint8

const (
	// DropQueue is a drop-tail loss: the egress FIFO had no room.
	DropQueue DropReason = iota
	// DropGray is a gray-failure loss: the link's random per-packet loss
	// fired.
	DropGray
	// DropBlackhole is a packet lost into a down link (stale-FIB blackhole).
	DropBlackhole
)

// String names the reason for violation messages.
func (r DropReason) String() string {
	switch r {
	case DropQueue:
		return "queue"
	case DropGray:
		return "gray"
	case DropBlackhole:
		return "blackhole"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// Tracer observes the simulator's data plane. All hooks receive scalar
// arguments only, so an implementation can run allocation-free; the
// simulator calls each hook behind a single nil check, so a nil tracer —
// the default — costs nothing on the hot path (see the allocation pin in
// tracer_test.go and BenchmarkNetsimEvents).
//
// Hook order within one simulated instant follows the event order of the
// run, which is deterministic; a tracer therefore observes an identical
// call sequence on identical inputs. Tracers must not call back into the
// Simulator's mutating API.
type Tracer interface {
	// OnEnqueue fires when a packet is accepted by a link's egress port,
	// whether it starts serializing immediately or waits in the FIFO.
	// hop 0 is the packet's injection at its source host uplink.
	// queueBytes/queueCount report the FIFO occupancy after acceptance
	// (0/0 when the packet went straight to the transmitter).
	OnEnqueue(nowNS int64, link, flow int32, hop int, isAck bool, wireBytes int32, queueBytes int64, queueCount int)
	// OnTxStart fires when a link begins serializing a packet.
	OnTxStart(nowNS int64, link, flow int32, isAck bool, wireBytes int32)
	// OnDeliver fires when a packet is consumed at its destination host
	// (final hop) — not at intermediate hops.
	OnDeliver(nowNS int64, flow int32, isAck bool, seq int64)
	// OnDrop fires when a packet is lost, with the loss reason and the
	// link it was lost at.
	OnDrop(nowNS int64, link, flow int32, isAck bool, reason DropReason)
	// OnCwnd fires after a sender's control state changes (flow start,
	// ACK processing, timeout).
	OnCwnd(nowNS int64, flow int32, cwnd float64, sndUna, sndNxt int64)
	// OnStateChange fires when fault injection alters a link: down/up
	// transitions and gray-failure loss/rate settings.
	OnStateChange(nowNS int64, link int32, down bool, lossProb, rateFactor float64)
}

// SetTracer installs t as the run's tracer. It must be called before Run;
// passing nil keeps tracing disabled (the default).
func (s *Simulator) SetTracer(t Tracer) error {
	if len(s.flows) != 0 {
		return fmt.Errorf("netsim: SetTracer after Run")
	}
	s.tracer = t
	return nil
}

// maxViolations caps the self-audit violation log so a systematically
// broken run cannot grow memory without bound.
const maxViolations = 100

// violate records an internal invariant violation. Violations are only
// collected while a tracer is installed (audited runs), so its fmt cost
// never touches an untraced run.
//
//lint:coldpath
func (s *Simulator) violate(format string, args ...interface{}) {
	if len(s.violations) >= maxViolations {
		return
	}
	s.violations = append(s.violations, fmt.Sprintf(format, args...))
}

// PacketsInFlight returns the number of pooled packets currently issued and
// not yet freed — packets sitting in queues, serializing, or propagating.
func (s *Simulator) PacketsInFlight() uint64 {
	return s.allocCount - s.freeCount
}

// Stats returns the run's aggregate counters so far (equal to
// Results.Stats after Run).
func (s *Simulator) Stats() Stats { return s.stats }

// SelfAudit cross-checks the simulator's internal accounting and returns
// any violations found (nil when clean). It verifies, for every link, that
// the cached queueBytes/qCount match a walk of the intrusive FIFO (and that
// head/tail pointers are consistent), and that the aggregate drop counter
// matches the per-link counters. Violations recorded during the run
// (double frees, non-monotone event times) are included. Safe to call at
// any point; the invariant auditor calls it at fault boundaries and at the
// end of the run.
func (s *Simulator) SelfAudit() []string {
	var out []string
	for i := range s.links {
		l := &s.links[i]
		var bytes int64
		n := 0
		var last *packet
		for p := l.qHead; p != nil; p = p.qnext {
			bytes += int64(p.wireSize)
			n++
			last = p
			if n > l.qCount+1 {
				// Cycle or runaway chain: stop walking.
				out = append(out, fmt.Sprintf("link %d: FIFO chain exceeds qCount=%d", i, l.qCount))
				break
			}
		}
		if n != l.qCount {
			out = append(out, fmt.Sprintf("link %d: qCount=%d but FIFO holds %d packets", i, l.qCount, n))
		}
		if bytes != l.queueBytes {
			out = append(out, fmt.Sprintf("link %d: queueBytes=%d but FIFO holds %d bytes", i, l.queueBytes, bytes))
		}
		if last != l.qTail {
			out = append(out, fmt.Sprintf("link %d: qTail does not terminate the FIFO chain", i))
		}
		if (l.qHead == nil) != (l.qTail == nil) {
			out = append(out, fmt.Sprintf("link %d: qHead/qTail nil-ness disagrees", i))
		}
	}
	if ld := s.LinkDrops(); s.stats.Drops != ld {
		out = append(out, fmt.Sprintf("stats.Drops=%d but per-link drop counters sum to %d", s.stats.Drops, ld))
	}
	out = append(out, s.violations...)
	return out
}
