package netsim

import (
	"testing"
	"time"

	"spineless/internal/routing"
	"spineless/internal/workload"
)

// TestSlowStartRampLossless checks that an uncontended flow's completion
// time tracks slow-start arithmetic: roughly log2(size/initcwnd·MSS) RTTs
// of ramp plus serialization at line rate.
func TestSlowStartRampLossless(t *testing.T) {
	g := pairFabric(t, 1, 2)
	cfg := DefaultConfig()
	cfg.InitCwnd = 2
	size := int64(512 * 1460) // 512 segments
	res := runFlows(t, g, routing.NewECMP(g), cfg, []workload.Flow{
		{ID: 1, Src: 0, Dst: 2, SizeBytes: size},
	})
	if res.Completed != 1 {
		t.Fatal("incomplete")
	}
	// Serialization: 512 × 1500B at 10 Gbps ≈ 614 µs. Ramp from cwnd 2 to
	// BDP doubles per RTT (~3 hops × 1 µs ≈ small); total must be within
	// ~40% of serialization since ramp overlaps little here.
	ser := 512.0 * 1500 * 8 / 10e9 * 1e9
	if f := float64(res.FCTNS[0]); f < ser || f > 1.4*ser {
		t.Fatalf("FCT %v ns vs serialization %v ns", f, ser)
	}
	if res.Stats.Retransmits != 0 || res.Stats.Drops != 0 {
		t.Fatalf("lossless path saw loss: %+v", res.Stats)
	}
}

// TestFastRetransmitNotTimeout drops occur under moderate multiplexing but
// recovery should be dominated by fast retransmit, not RTO.
func TestFastRetransmitNotTimeout(t *testing.T) {
	g := pairFabric(t, 1, 6)
	cfg := DefaultConfig()
	cfg.QueueBytes = 20 * 1500 // shallow queue to force drops
	var flows []workload.Flow
	for i := 0; i < 6; i++ {
		flows = append(flows, workload.Flow{
			ID: uint64(i), Src: i, Dst: 6 + i, SizeBytes: 2 << 20,
		})
	}
	res := runFlows(t, g, routing.NewECMP(g), cfg, flows)
	if res.Completed != 6 {
		t.Fatalf("completed %d/6", res.Completed)
	}
	if res.Stats.Drops == 0 {
		t.Fatal("expected drops with shallow queues")
	}
	if res.Stats.Retransmits == 0 {
		t.Fatal("no retransmits despite drops")
	}
	if res.Stats.Timeouts*5 > res.Stats.Retransmits {
		t.Fatalf("recovery is timeout-dominated: %+v", res.Stats)
	}
}

// TestGoodputConservation verifies delivered bytes equal flow sizes: the
// receiver-side cumulative ack discipline cannot complete a flow without
// every byte arriving.
func TestGoodputConservation(t *testing.T) {
	g := pairFabric(t, 2, 4)
	cfg := DefaultConfig()
	cfg.QueueBytes = 10 * 1500 // heavy loss
	var flows []workload.Flow
	var total int64
	for i := 0; i < 8; i++ {
		sz := int64(100e3 + 40e3*int64(i))
		total += sz
		flows = append(flows, workload.Flow{
			ID: uint64(i), Src: i % 4, Dst: 4 + i%4, SizeBytes: sz,
		})
	}
	res := runFlows(t, g, routing.NewECMP(g), cfg, flows)
	if res.Completed != 8 {
		t.Fatalf("completed %d/8 (%+v)", res.Completed, res.Stats)
	}
	// Data packets sent must cover at least total/MSS segments (more with
	// retransmissions), and the simulator must have dropped some.
	minSegs := uint64(total / 1460)
	if res.Stats.DataPackets < minSegs {
		t.Fatalf("sent %d data packets < %d segments", res.Stats.DataPackets, minSegs)
	}
	if res.Stats.Drops == 0 {
		t.Fatal("expected loss under 10-packet queues")
	}
}

// TestRTOBackstop: with a queue too small for even one window, dupacks may
// never arrive; RTO must still complete the flow.
func TestRTOBackstop(t *testing.T) {
	g := pairFabric(t, 1, 2)
	cfg := DefaultConfig()
	cfg.QueueBytes = 2 * 1500
	cfg.InitCwnd = 64 // blast far beyond the queue
	res := runFlows(t, g, routing.NewECMP(g), cfg, []workload.Flow{
		{ID: 1, Src: 0, Dst: 2, SizeBytes: 600e3},
	})
	if res.Completed != 1 {
		t.Fatalf("flow never completed: %+v", res.Stats)
	}
	if res.Stats.Timeouts == 0 {
		t.Fatal("expected at least one RTO with a 2-packet queue and cwnd 64")
	}
}

// TestFCTMonotoneInSize: larger flows on an identical quiet path take
// longer.
func TestFCTMonotoneInSize(t *testing.T) {
	sizes := []int64{10e3, 100e3, 1e6, 10e6}
	var prev int64
	for _, sz := range sizes {
		g := pairFabric(t, 1, 2)
		res := runFlows(t, g, routing.NewECMP(g), DefaultConfig(), []workload.Flow{
			{ID: 1, Src: 0, Dst: 2, SizeBytes: sz},
		})
		if res.Completed != 1 {
			t.Fatalf("size %d incomplete", sz)
		}
		if res.FCTNS[0] <= prev {
			t.Fatalf("FCT not monotone: size %d → %d ns (prev %d)", sz, res.FCTNS[0], prev)
		}
		prev = res.FCTNS[0]
	}
}

// TestStartTimeOffsetsRespected: a flow cannot finish before it starts, and
// staggered identical flows on disjoint host pairs keep their stagger.
func TestStartTimeOffsetsRespected(t *testing.T) {
	g := pairFabric(t, 4, 4)
	delay := int64(2 * time.Millisecond)
	flows := []workload.Flow{
		{ID: 1, Src: 0, Dst: 4, SizeBytes: 50e3, StartNS: 0},
		{ID: 2, Src: 1, Dst: 5, SizeBytes: 50e3, StartNS: delay},
	}
	sim, err := New(g, routing.NewECMP(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Fatal("incomplete")
	}
	// FCT excludes the start offset; with disjoint paths both should be
	// nearly identical.
	d := res.FCTNS[0] - res.FCTNS[1]
	if d < 0 {
		d = -d
	}
	if float64(d) > 0.2*float64(res.FCTNS[0]) {
		t.Fatalf("staggered equal flows diverged: %v vs %v", res.FCTNS[0], res.FCTNS[1])
	}
	if res.EndNS < delay {
		t.Fatalf("simulation ended at %d before second flow started", res.EndNS)
	}
}

// TestAckPathCongestionAffectsFlow: reverse-direction bulk traffic congests
// the ACK path and must slow the forward flow measurably (ack clocking).
func TestAckPathCongestion(t *testing.T) {
	g := pairFabric(t, 1, 4)
	solo := runFlows(t, g, routing.NewECMP(g), DefaultConfig(), []workload.Flow{
		{ID: 1, Src: 0, Dst: 4, SizeBytes: 2 << 20},
	})
	g2 := pairFabric(t, 1, 4)
	both := runFlows(t, g2, routing.NewECMP(g2), DefaultConfig(), []workload.Flow{
		{ID: 1, Src: 0, Dst: 4, SizeBytes: 2 << 20},
		{ID: 2, Src: 5, Dst: 1, SizeBytes: 2 << 20}, // reverse direction
	})
	if solo.Completed != 1 || both.Completed != 2 {
		t.Fatal("incomplete")
	}
	if both.FCTNS[0] < solo.FCTNS[0] {
		t.Fatalf("reverse traffic sped up the flow: %v vs %v", both.FCTNS[0], solo.FCTNS[0])
	}
}

// TestHostLinkSerialization: two flows from the same host share its NIC
// even when the fabric has spare capacity.
func TestHostLinkSharing(t *testing.T) {
	g := pairFabric(t, 4, 4) // 4 parallel inter-ToR links: fabric not limiting
	flows := []workload.Flow{
		{ID: 1, Src: 0, Dst: 4, SizeBytes: 1 << 20},
		{ID: 2, Src: 0, Dst: 5, SizeBytes: 1 << 20}, // same source host
	}
	res := runFlows(t, g, routing.NewECMP(g), DefaultConfig(), flows)
	if res.Completed != 2 {
		t.Fatal("incomplete")
	}
	// Sharing one 10G NIC, combined goodput ≤ 10G.
	last := max(res.FCTNS[0], res.FCTNS[1])
	goodput := float64(2<<20) * 8 / (float64(last) / 1e9)
	if goodput > 10e9 {
		t.Fatalf("goodput %v exceeds the shared host NIC", goodput)
	}
}
