// Package netsim is a deterministic packet-level discrete-event simulator
// for data-center fabrics: store-and-forward links with drop-tail FIFO
// queues, TCP Reno/NewReno senders, and per-flow multipath routing supplied
// by a routing.Scheme. It stands in for the htsim-based simulator the paper
// uses (§5.3); see DESIGN.md for the substitution argument.
package netsim

import (
	"fmt"
	"time"
)

// Config sets the fabric and transport parameters. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	LinkRateBps float64 // switch-to-switch link rate
	HostRateBps float64 // server NIC rate; 0 = LinkRateBps

	LinkDelayNS int64 // per-hop propagation + switching latency
	HostDelayNS int64 // host-to-ToR latency; 0 = LinkDelayNS

	QueueBytes int64 // drop-tail queue capacity per egress port

	MSS         int     // TCP max segment payload, bytes
	HeaderBytes int     // L2-L4 header overhead per data segment
	AckBytes    int     // wire size of a pure ACK
	InitCwnd    float64 // initial congestion window, segments
	// InitSsthresh caps slow start (segments). Without SACK, a deep
	// slow-start overshoot burst-drops tens of segments and NewReno then
	// recovers one hole per RTT; real stacks temper this with ssthresh
	// caching/HyStart. 0 means effectively unbounded.
	InitSsthresh float64
	MinRTO       time.Duration
	MaxRTO       time.Duration

	MaxSimTime time.Duration // safety stop; flows unfinished then are marked incomplete

	// ECN enables DCTCP-style transport: switches mark packets (CE) when
	// the instantaneous egress queue exceeds ECNThresholdBytes, receivers
	// echo the marks per packet, and senders scale cwnd by (1 − α/2) once
	// per window, where α is the EWMA (gain DCTCPGain) of the marked
	// fraction. Loss handling is unchanged. This is an extension beyond the
	// paper (which uses plain TCP, §5.3) used for transport ablations.
	ECN               bool
	ECNThresholdBytes int64   // default 30 KB (≈20 packets)
	DCTCPGain         float64 // default 1/16

	// FlowletTimeout, when positive, enables flowlet switching [25]: if a
	// flow pauses longer than this gap, its next burst may take a different
	// path (the flowlet id feeds the path hash). §2 lists flowlet switching
	// among the non-standard mechanisms earlier expander designs required;
	// it is implemented here as an ablation. A gap exceeding the path-delay
	// skew keeps reordering rare, exactly as Sinha et al. argue.
	FlowletTimeout time.Duration
}

// DefaultConfig mirrors the paper's setup (§5.3): 10 Gbps links and TCP,
// with htsim-typical 100-packet queues, 1 µs hop latency and 1 ms min RTO.
func DefaultConfig() Config {
	return Config{
		LinkRateBps:  10e9,
		LinkDelayNS:  1000,
		QueueBytes:   100 * 1500,
		MSS:          1460,
		HeaderBytes:  40,
		AckBytes:     40,
		InitCwnd:     10,
		InitSsthresh: 64,
		MinRTO:       time.Millisecond,
		MaxRTO:       200 * time.Millisecond,
		MaxSimTime:   20 * time.Second,
	}
}

func (c Config) validate() error {
	if c.LinkRateBps <= 0 {
		return fmt.Errorf("netsim: LinkRateBps must be positive")
	}
	if c.MSS <= 0 || c.HeaderBytes < 0 || c.AckBytes <= 0 {
		return fmt.Errorf("netsim: bad packet sizing (MSS=%d header=%d ack=%d)", c.MSS, c.HeaderBytes, c.AckBytes)
	}
	if c.QueueBytes < int64(c.MSS+c.HeaderBytes) {
		return fmt.Errorf("netsim: queue smaller than one segment")
	}
	if c.InitCwnd < 1 {
		return fmt.Errorf("netsim: InitCwnd must be >= 1")
	}
	if c.MinRTO <= 0 || c.MaxRTO < c.MinRTO {
		return fmt.Errorf("netsim: bad RTO bounds")
	}
	if c.MaxSimTime <= 0 {
		return fmt.Errorf("netsim: MaxSimTime must be positive")
	}
	if c.ECN {
		if c.ECNThresholdBytes <= 0 {
			return fmt.Errorf("netsim: ECN enabled with non-positive threshold")
		}
		if c.DCTCPGain <= 0 || c.DCTCPGain > 1 {
			return fmt.Errorf("netsim: DCTCPGain must be in (0, 1]")
		}
	}
	return nil
}

// WithDCTCP returns a copy of c with DCTCP-style ECN enabled at the
// conventional 20-packet marking threshold and gain 1/16.
func (c Config) WithDCTCP() Config {
	c.ECN = true
	c.ECNThresholdBytes = 20 * int64(c.MSS+c.HeaderBytes)
	c.DCTCPGain = 1.0 / 16
	return c
}

// WithFlowlets returns a copy of c with flowlet switching at the given
// idle-gap timeout (0 picks 100 µs, a few fabric RTTs).
func (c Config) WithFlowlets(timeout time.Duration) Config {
	if timeout <= 0 {
		timeout = 100 * time.Microsecond
	}
	c.FlowletTimeout = timeout
	return c
}

func (c Config) hostRate() float64 {
	if c.HostRateBps > 0 {
		return c.HostRateBps
	}
	return c.LinkRateBps
}

func (c Config) hostDelay() int64 {
	if c.HostDelayNS > 0 {
		return c.HostDelayNS
	}
	return c.LinkDelayNS
}
