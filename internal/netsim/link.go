package netsim

// packet is one frame in flight. Packets are pooled; never retain one after
// handing it back to the simulator.
type packet struct {
	flow     int32
	hop      int32
	wireSize int32 // bytes on the wire
	isAck    bool
	ce       bool  // data: congestion-experienced mark; ack: echoed mark
	pooled   bool  // in the free pool — set by free, cleared by alloc
	seq      int64 // data: first payload byte; ack: cumulative ack
	payload  int32 // data bytes carried (0 for ACKs)
	echo     int64 // data: send timestamp; ack: echoed timestamp
	links    []int32
	qnext    *packet // intrusive link-FIFO chain; nil when not queued
}

// link is one directed egress port: a drop-tail FIFO feeding a transmitter.
// Fault injection can mark a link down (packets blackhole), degrade its rate
// (bytesPerNS drops below nominalBytesPerNS) or make it gray (random loss).
// The FIFO is an intrusive list threaded through packet.qnext, so queueing
// never allocates — the former []*packet ring was the simulator's largest
// steady-state allocation source.
type link struct {
	bytesPerNS        float64
	nominalBytesPerNS float64
	delayNS           int64
	capBytes          int64

	down     bool
	lossProb float64

	queueBytes int64
	qHead      *packet // next to transmit
	qTail      *packet
	qCount     int
	busy       bool

	drops   uint64
	txBytes uint64
}

func (l *link) txTimeNS(wire int32) int64 {
	return int64(float64(wire)/l.bytesPerNS + 0.5)
}

// push appends p to the queue, returning false (drop) on overflow.
func (l *link) push(p *packet) bool {
	if l.queueBytes+int64(p.wireSize) > l.capBytes {
		l.drops++
		return false
	}
	l.queueBytes += int64(p.wireSize)
	p.qnext = nil
	if l.qTail == nil {
		l.qHead = p
	} else {
		l.qTail.qnext = p
	}
	l.qTail = p
	l.qCount++
	return true
}

// pop removes the head of the queue.
func (l *link) pop() *packet {
	p := l.qHead
	l.qHead = p.qnext
	if l.qHead == nil {
		l.qTail = nil
	}
	p.qnext = nil
	l.qCount--
	l.queueBytes -= int64(p.wireSize)
	return p
}

func (l *link) queued() int { return l.qCount }
