package netsim

import (
	"testing"

	"spineless/internal/routing"
)

// TestShardHotPathAddsNoAllocs pins the sharded engine's per-event
// primitives — heap push/pop, packet pool alloc/free, and the cross-partition
// ring put/take/reset cycle — at zero steady-state allocations, the runtime
// complement of spinelint's static //lint:hotpath walk over runWindow and
// drainRings. Warmup grows every buffer (heap backing array, pool chunk,
// ring buffers) to capacity first; after that, one full handoff round trip
// must not touch the allocator at all.
func TestShardHotPathAddsNoAllocs(t *testing.T) {
	g := pairFabric(t, 1, 2)
	ss, err := NewSharded(g, routing.NewECMP(g), DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	v := &ss.vps[0]
	r := &ss.rings[0*shardVPs+1]

	const n = 64
	warm := make([]*packet, 0, n)
	for i := 0; i < n; i++ {
		warm = append(warm, v.alloc())
	}
	for _, p := range warm {
		v.free(p)
	}
	for i := 0; i < n; i++ {
		p := v.alloc()
		r.put(0, int64(i), p)
		v.free(p)
		v.push(event{t: int64(i), kind: evDeliver})
	}
	for len(v.events) > 0 {
		v.pop()
	}
	r.reset(0)

	allocs := testing.AllocsPerRun(200, func() {
		p := v.alloc()
		r.put(0, 1, p)
		v.free(p)
		v.push(event{t: 2, kind: evRTO})
		v.push(event{t: 1, kind: evRTO})
		if ev := v.pop(); ev.t != 1 {
			t.Fatalf("heap order broken: popped t=%d", ev.t)
		}
		v.pop()
		if items := r.take(0); len(items) != 1 {
			t.Fatalf("ring lost the handoff: %d items", len(items))
		}
		r.reset(0)
	})
	if allocs != 0 {
		t.Fatalf("sharded hot-path primitives allocate %.1f per round trip; want 0", allocs)
	}
}
