// Package dynamic explores the paper's §7 "Dynamic Networks based on flat
// topologies" question: reconfigurable fabrics (RotorNet [19], Opera [18])
// impose transient topologies with their moving links — Opera makes every
// transient an expander; the paper asks "how much improvement can be gained
// by reconfiguring links to obtain another flat network instead of an
// expander" at small scale.
//
// This package models the idealized time-slotted view: server attachment is
// fixed, the inter-ToR wiring changes per slot according to a Schedule, and
// long-running throughput is the slot average of the max-min allocation
// (reconfiguration penalties are out of scope — both contenders pay them
// equally). Two schedules are provided: rotating DRings (each slot is a
// DRing with shifted ring offsets) and rotor-style rotating matchings (each
// slot is a union of perfect matchings — transient expander-ish wiring).
package dynamic

import (
	"fmt"

	"spineless/internal/flowsim"
	"spineless/internal/routing"
	"spineless/internal/topology"
)

// Schedule yields the fabric present during each time slot. Every slot must
// keep the same switch count and per-switch server counts so host ids are
// stable across slots.
type Schedule interface {
	Name() string
	Slots() int
	Slot(i int) *topology.Graph
}

// Static wraps a fixed fabric as a one-slot schedule.
type Static struct{ G *topology.Graph }

// Name implements Schedule.
func (s Static) Name() string { return "static(" + s.G.Name + ")" }

// Slots implements Schedule.
func (s Static) Slots() int { return 1 }

// Slot implements Schedule.
func (s Static) Slot(int) *topology.Graph { return s.G }

// Validate checks the cross-slot invariants of any schedule.
func Validate(s Schedule) error {
	if s.Slots() < 1 {
		return fmt.Errorf("dynamic: schedule %q has no slots", s.Name())
	}
	base := s.Slot(0)
	for i := 0; i < s.Slots(); i++ {
		g := s.Slot(i)
		if err := g.Validate(); err != nil {
			return fmt.Errorf("dynamic: slot %d: %w", i, err)
		}
		if g.N() != base.N() {
			return fmt.Errorf("dynamic: slot %d has %d switches, slot 0 has %d", i, g.N(), base.N())
		}
		for v := 0; v < g.N(); v++ {
			if g.ServerCount(v) != base.ServerCount(v) {
				return fmt.Errorf("dynamic: slot %d moves servers at switch %d", i, v)
			}
		}
	}
	return nil
}

// AvgThroughput routes the host pairs in every slot with the named scheme
// ("ecmp" or "suK") rebuilt per slot, and returns the slot-averaged
// aggregate max-min throughput plus the per-slot values.
func AvgThroughput(s Schedule, pairs [][2]int, scheme string, cfg flowsim.Config) (avg float64, perSlot []float64, err error) {
	if err := Validate(s); err != nil {
		return 0, nil, err
	}
	perSlot = make([]float64, s.Slots())
	for i := 0; i < s.Slots(); i++ {
		g := s.Slot(i)
		sch, err := buildScheme(g, scheme)
		if err != nil {
			return 0, nil, err
		}
		_, agg, err := flowsim.Throughput(g, sch, pairs, cfg)
		if err != nil {
			return 0, nil, fmt.Errorf("dynamic: slot %d: %w", i, err)
		}
		perSlot[i] = agg
		avg += agg
	}
	avg /= float64(s.Slots())
	return avg, perSlot, nil
}

// AvgPathLength returns the slot-averaged mean rack-to-rack hop distance —
// the latency proxy for short flows, which must use whatever paths the
// current slot offers (Opera's latency argument).
func AvgPathLength(s Schedule) (float64, error) {
	if err := Validate(s); err != nil {
		return 0, err
	}
	sum := 0.0
	for i := 0; i < s.Slots(); i++ {
		st, err := topology.RackPathStats(s.Slot(i))
		if err != nil {
			return 0, fmt.Errorf("dynamic: slot %d: %w", i, err)
		}
		sum += st.Mean
	}
	return sum / float64(s.Slots()), nil
}

func buildScheme(g *topology.Graph, name string) (routing.Scheme, error) {
	switch {
	case name == "ecmp":
		return routing.NewECMP(g), nil
	case len(name) == 3 && name[:2] == "su":
		return routing.NewShortestUnion(g, int(name[2]-'0'))
	default:
		return nil, fmt.Errorf("dynamic: unknown scheme %q", name)
	}
}
