package dynamic

import (
	"math/rand"
	"testing"

	"spineless/internal/flowsim"
	"spineless/internal/topology"
)

func TestStaticSchedule(t *testing.T) {
	g, err := topology.DRing(topology.Uniform(6, 2, 20))
	if err != nil {
		t.Fatal(err)
	}
	s := Static{G: g}
	if err := Validate(s); err != nil {
		t.Fatal(err)
	}
	if s.Slots() != 1 || s.Slot(0) != g {
		t.Fatal("static schedule broken")
	}
}

func TestRotatingDRingSlots(t *testing.T) {
	spec := topology.Uniform(8, 2, 24)
	r, err := NewRotatingDRing(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Slots() != 3 { // ⌈(8−2)/2⌉ = 3
		t.Fatalf("slots = %d, want 3", r.Slots())
	}
	if err := Validate(r); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.Slots(); i++ {
		g := r.Slot(i)
		if !g.Connected() {
			t.Fatalf("slot %d disconnected", i)
		}
		// Port budget preserved: every ToR has the same total degree.
		for v := 0; v < g.N(); v++ {
			if g.NetworkDegree(v)+g.ServerCount(v) != spec.Ports {
				t.Fatalf("slot %d switch %d port budget broken", i, v)
			}
		}
	}
	// Slot 0 must be the plain DRing wiring.
	plain, err := topology.DRing(spec)
	if err != nil {
		t.Fatal(err)
	}
	g0 := r.Slot(0)
	for a := 0; a < plain.N(); a++ {
		for b := a + 1; b < plain.N(); b++ {
			if plain.HasLink(a, b) != g0.HasLink(a, b) {
				t.Fatalf("slot 0 differs from static DRing at %d-%d", a, b)
			}
		}
	}
}

func TestRotatingDRingCoversAllSupernodePairs(t *testing.T) {
	spec := topology.Uniform(9, 1, 20)
	r, err := NewRotatingDRing(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With 1 ToR per supernode, ToR id == supernode. Union of adjacency
	// over all slots must cover every pair.
	covered := map[[2]int]bool{}
	for i := 0; i < r.Slots(); i++ {
		g := r.Slot(i)
		for a := 0; a < g.N(); a++ {
			for b := a + 1; b < g.N(); b++ {
				if g.HasLink(a, b) {
					covered[[2]int{a, b}] = true
				}
			}
		}
	}
	want := 9 * 8 / 2
	if len(covered) != want {
		t.Fatalf("covered %d supernode pairs, want %d", len(covered), want)
	}
}

func TestRotorMatchingsStructure(t *testing.T) {
	r, err := NewRotorMatchings(10, 3, 5, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(r); err != nil {
		t.Fatal(err)
	}
	if r.Slots() != 3 { // ⌈9/3⌉
		t.Fatalf("slots = %d, want 3", r.Slots())
	}
	for i := 0; i < r.Slots(); i++ {
		g := r.Slot(i)
		for v := 0; v < g.N(); v++ {
			if g.NetworkDegree(v) != 3 {
				t.Fatalf("slot %d switch %d degree %d, want 3", i, v, g.NetworkDegree(v))
			}
		}
	}
	// Union over all slots covers every ToR pair exactly once (9 rounds of
	// the circle method are a 1-factorization of K10).
	covered := map[[2]int]int{}
	for i := 0; i < r.Slots(); i++ {
		g := r.Slot(i)
		for a := 0; a < g.N(); a++ {
			for _, b := range g.Neighbors(a) {
				if a < b {
					covered[[2]int{a, b}]++
				}
			}
		}
	}
	if len(covered) != 45 {
		t.Fatalf("covered %d pairs, want 45", len(covered))
	}
	for pair, c := range covered {
		if c != 1 {
			t.Fatalf("pair %v wired %d times across the cycle", pair, c)
		}
	}
}

func TestRotorMatchingsValidation(t *testing.T) {
	if _, err := NewRotorMatchings(7, 2, 2, 8, 0); err == nil {
		t.Fatal("odd ToR count accepted")
	}
	if _, err := NewRotorMatchings(8, 0, 2, 8, 0); err == nil {
		t.Fatal("zero degree accepted")
	}
	if _, err := NewRotorMatchings(8, 4, 6, 8, 0); err == nil {
		t.Fatal("port overflow accepted")
	}
}

func TestTournamentRoundIsPerfectMatching(t *testing.T) {
	n := 12
	for r := 0; r < n-1; r++ {
		pairs := tournamentRound(n, r)
		if len(pairs) != n/2 {
			t.Fatalf("round %d has %d pairs", r, len(pairs))
		}
		seen := map[int]bool{}
		for _, p := range pairs {
			if p[0] == p[1] || seen[p[0]] || seen[p[1]] {
				t.Fatalf("round %d not a matching: %v", r, pairs)
			}
			seen[p[0]] = true
			seen[p[1]] = true
		}
		if len(seen) != n {
			t.Fatalf("round %d covers %d ToRs", r, len(seen))
		}
	}
}

func TestAvgThroughputAndPathLength(t *testing.T) {
	spec := topology.Uniform(8, 2, 24)
	rot, err := NewRotatingDRing(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := rot.Slot(0)
	rng := rand.New(rand.NewSource(4))
	var pairs [][2]int
	for i := 0; i < 64; i++ {
		a, b := rng.Intn(g.Servers()), rng.Intn(g.Servers())
		if g.RackOf(a) == g.RackOf(b) {
			continue
		}
		pairs = append(pairs, [2]int{a, b})
	}
	avg, perSlot, err := AvgThroughput(rot, pairs, "su2", flowsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if avg <= 0 || len(perSlot) != rot.Slots() {
		t.Fatalf("avg=%v slots=%d", avg, len(perSlot))
	}
	// Static one-slot schedule must equal its own slot value.
	sAvg, _, err := AvgThroughput(Static{G: g}, pairs, "su2", flowsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sAvg != perSlot[0] {
		t.Fatalf("static avg %v != slot-0 value %v", sAvg, perSlot[0])
	}
	pl, err := AvgPathLength(rot)
	if err != nil {
		t.Fatal(err)
	}
	if pl < 1 || pl > 3 {
		t.Fatalf("avg path length = %v", pl)
	}
	if _, _, err := AvgThroughput(rot, pairs, "warp", flowsim.DefaultConfig()); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
