package dynamic

import (
	"fmt"

	"spineless/internal/topology"
)

// RotatingDRing is a schedule whose every slot is a DRing over the same
// ToRs with shifted ring offsets: slot s connects supernode i to
// i + (1+2s) and i + (2+2s) (mod m). Over ⌈(m−2)/2⌉ slots every supernode
// pair becomes adjacent at least once — the "reconfigure into another flat
// network" contender of §7.
type RotatingDRing struct {
	spec  topology.DRingSpec
	slots int
	cache []*topology.Graph
}

// NewRotatingDRing builds the schedule; slots ≤ 0 selects full coverage
// (⌈(m−2)/2⌉ slots).
func NewRotatingDRing(spec topology.DRingSpec, slots int) (*RotatingDRing, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := spec.Supernodes()
	if slots <= 0 {
		slots = (m - 1) / 2
	}
	r := &RotatingDRing{spec: spec, slots: slots, cache: make([]*topology.Graph, slots)}
	for s := 0; s < slots; s++ {
		g, err := dringOffsets(spec, 1+2*s, 2+2*s)
		if err != nil {
			return nil, fmt.Errorf("dynamic: slot %d: %w", s, err)
		}
		r.cache[s] = g
	}
	return r, nil
}

// Name implements Schedule.
func (r *RotatingDRing) Name() string {
	return fmt.Sprintf("rotating-dring(m=%d)", r.spec.Supernodes())
}

// Slots implements Schedule.
func (r *RotatingDRing) Slots() int { return r.slots }

// Slot implements Schedule.
func (r *RotatingDRing) Slot(i int) *topology.Graph { return r.cache[i] }

// dringOffsets builds a DRing variant whose ring offsets are o1 and o2
// instead of 1 and 2. Offsets are reduced mod m; if they coincide (or
// mirror, o2 ≡ m−o1) the wiring doubles into parallel links, preserving the
// port budget.
func dringOffsets(spec topology.DRingSpec, o1, o2 int) (*topology.Graph, error) {
	m := spec.Supernodes()
	o1, o2 = ((o1-1)%(m-1))+1, ((o2-1)%(m-1))+1 // keep in [1, m-1]
	g := topology.New(fmt.Sprintf("dring-off(%d,%d)", o1, o2), spec.Switches(), spec.Ports)
	base := make([]int, m+1)
	for i, n := range spec.Sizes {
		base[i+1] = base[i] + n
	}
	for i := 0; i < m; i++ {
		for _, off := range []int{o1, o2} {
			j := (i + off) % m
			if j == i {
				return nil, fmt.Errorf("offset %d degenerates", off)
			}
			for a := base[i]; a < base[i+1]; a++ {
				for b := base[j]; b < base[j+1]; b++ {
					if err := g.AddLink(a, b); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		s := spec.Ports - g.NetworkDegree(v)
		if s < 0 {
			return nil, fmt.Errorf("offset pair (%d,%d) exceeds radix at ToR %d", o1, o2, v)
		}
		g.SetServers(v, s)
	}
	return g, nil
}

// RotorMatchings is a RotorNet-style schedule: every ToR has `degree`
// network ports; slot s wires them as `degree` disjoint perfect matchings
// drawn from the round-robin tournament rotation, so over N−1 rounds every
// ToR pair is directly connected — transient expander-ish wiring.
type RotorMatchings struct {
	name  string
	slots int
	cache []*topology.Graph
}

// NewRotorMatchings builds the schedule on n ToRs (n even) with the given
// per-ToR degree, serversPerTor and radix.
func NewRotorMatchings(n, degree, serversPerTor, ports, slots int) (*RotorMatchings, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("dynamic: rotor needs an even ToR count, got %d", n)
	}
	if degree < 1 || degree >= n {
		return nil, fmt.Errorf("dynamic: rotor degree %d infeasible", degree)
	}
	if degree+serversPerTor > ports {
		return nil, fmt.Errorf("dynamic: degree %d + servers %d exceeds radix %d", degree, serversPerTor, ports)
	}
	if slots <= 0 {
		slots = (n - 1 + degree - 1) / degree // full pair coverage
	}
	r := &RotorMatchings{name: fmt.Sprintf("rotor(n=%d,d=%d)", n, degree), slots: slots}
	round := 0
	for s := 0; s < slots; s++ {
		g := topology.New(fmt.Sprintf("rotor-slot%d", s), n, ports)
		for v := 0; v < n; v++ {
			g.SetServers(v, serversPerTor)
		}
		for d := 0; d < degree; d++ {
			for _, pair := range tournamentRound(n, round%(n-1)) {
				if err := g.AddLink(pair[0], pair[1]); err != nil {
					return nil, err
				}
			}
			round++
		}
		r.cache = append(r.cache, g)
	}
	return r, nil
}

// tournamentRound returns the perfect matching of round r in the circle
// method: ToR n−1 is fixed, ToRs 0..n−2 rotate.
func tournamentRound(n, r int) [][2]int {
	m := n - 1
	out := make([][2]int, 0, n/2)
	// Fixed player pairs with position r.
	out = append(out, [2]int{n - 1, r})
	for k := 1; k <= (n-2)/2; k++ {
		a := (r + k) % m
		b := (r - k + m) % m
		out = append(out, [2]int{a, b})
	}
	return out
}

// Name implements Schedule.
func (r *RotorMatchings) Name() string { return r.name }

// Slots implements Schedule.
func (r *RotorMatchings) Slots() int { return r.slots }

// Slot implements Schedule.
func (r *RotorMatchings) Slot(i int) *topology.Graph { return r.cache[i] }
