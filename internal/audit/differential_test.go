package audit

import (
	"strings"
	"testing"

	"spineless/internal/flowsim"
	"spineless/internal/netsim"
	"spineless/internal/routing"
	"spineless/internal/telemetry"
	"spineless/internal/topology"
	"spineless/internal/workload"
)

// diffWorkload builds a simultaneous-start, equal-size workload: one flow
// from every host in rack 0's half to a partner in the other half.
func diffWorkload(g *topology.Graph, n int, size int64) []workload.Flow {
	half := g.Servers() / 2
	flows := make([]workload.Flow, 0, n)
	for i := 0; i < n; i++ {
		flows = append(flows, workload.Flow{
			ID: uint64(i), Src: i % half, Dst: half + (i+1)%half, SizeBytes: size,
		})
	}
	return flows
}

func TestDifferentialCleanPair(t *testing.T) {
	g := topology.New("pair", 2, 6)
	for i := 0; i < 2; i++ {
		if err := g.AddLink(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	g.SetServers(0, 4)
	g.SetServers(1, 4)
	rep, err := Differential(g, routing.NewECMP(g), diffWorkload(g, 8, 500e3), DiffConfig{
		Net:  netsim.DefaultConfig(),
		Link: flowsim.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("differential violations on a healthy pair fabric: %v", err)
	}
	if rep.NetsimBps <= 0 || rep.FlowsimBps <= 0 || rep.FluidLambdaBps <= 0 {
		t.Fatalf("missing model outputs: %+v", rep)
	}
	if rep.FlowsimMinBps > rep.FluidUpperBps*1.01 {
		t.Fatalf("flowsim min %.3g above fluid bound %.3g", rep.FlowsimMinBps, rep.FluidUpperBps)
	}
}

func TestDifferentialCleanDRing(t *testing.T) {
	g, err := topology.DRing(topology.Uniform(6, 2, 24))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Differential(g, routing.NewECMP(g), diffWorkload(g, 24, 300e3), DiffConfig{
		Net:  netsim.DefaultConfig(),
		Link: flowsim.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("differential violations on a healthy DRing: %v", err)
	}
}

func TestDifferentialFlagsBandBreach(t *testing.T) {
	g := topology.New("pair", 2, 3)
	if err := g.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	g.SetServers(0, 2)
	g.SetServers(1, 2)
	// A band no packet simulator can hit: any real run must breach it.
	rep, err := Differential(g, routing.NewECMP(g), diffWorkload(g, 4, 200e3), DiffConfig{
		Net:         netsim.DefaultConfig(),
		Link:        flowsim.DefaultConfig(),
		GoodputBand: [2]float64{5, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	repErr := rep.Err()
	if repErr == nil {
		t.Fatal("impossible goodput band not flagged")
	}
	if !strings.Contains(repErr.Error(), "goodput ratio") {
		t.Fatalf("expected a goodput-band violation, got: %v", repErr)
	}
}

func TestDifferentialRejectsEmptyWorkload(t *testing.T) {
	g := topology.New("pair", 2, 3)
	if err := g.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	g.SetServers(0, 1)
	g.SetServers(1, 1)
	if _, err := Differential(g, routing.NewECMP(g), nil, DiffConfig{
		Net:  netsim.DefaultConfig(),
		Link: flowsim.DefaultConfig(),
	}); err == nil {
		t.Fatal("empty workload accepted")
	}
}

// TestDifferentialTelemetryRejected is the failing-before guard test for
// the audit config layer: the sharded leg has no tracer slot and the
// serial leg's slot is owned by the Auditor, so a telemetry recorder must
// be rejected loudly in both modes rather than silently observing nothing.
func TestDifferentialTelemetryRejected(t *testing.T) {
	g := topology.New("pair", 2, 6)
	for i := 0; i < 2; i++ {
		if err := g.AddLink(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	g.SetServers(0, 4)
	g.SetServers(1, 4)
	flows := diffWorkload(g, 8, 500e3)
	cfg := DiffConfig{
		Net:       netsim.DefaultConfig(),
		Link:      flowsim.DefaultConfig(),
		Telemetry: telemetry.NewRecorder(telemetry.Config{}),
	}
	if _, err := Differential(g, routing.NewECMP(g), flows, cfg); err == nil {
		t.Fatal("Telemetry accepted on the audited serial leg")
	} else if !strings.Contains(err.Error(), "tracer slot") {
		t.Fatalf("unhelpful error: %v", err)
	}
	cfg.Shards = 2
	if _, err := Differential(g, routing.NewECMP(g), flows, cfg); err == nil {
		t.Fatal("Shards>0 with Telemetry accepted")
	} else if !strings.Contains(err.Error(), "serial engine") {
		t.Fatalf("unhelpful error: %v", err)
	}
}
