package audit

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"spineless/internal/faults"
	"spineless/internal/netsim"
	"spineless/internal/routing"
	"spineless/internal/topology"
	"spineless/internal/workload"
)

// pairFabric: two ToRs joined by `links` parallel links, `hosts` servers each.
func pairFabric(t *testing.T, links, hosts int) *topology.Graph {
	t.Helper()
	g := topology.New("pair", 2, links+hosts)
	for i := 0; i < links; i++ {
		if err := g.AddLink(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	g.SetServers(0, hosts)
	g.SetServers(1, hosts)
	return g
}

// triangleFabric: three ToRs in a cycle, two hosts each — the smallest
// fabric where a cut link leaves an alternate path.
func triangleFabric(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.New("triangle", 3, 4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if err := g.AddLink(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 3; r++ {
		g.SetServers(r, 2)
	}
	return g
}

// auditedRun runs flows on g under a fresh Auditor and returns the auditor,
// results, and Finish error.
func auditedRun(t *testing.T, g *topology.Graph, scheme routing.Scheme, cfg netsim.Config,
	flows []workload.Flow, sched *faults.Schedule) (*Auditor, netsim.Results, error) {
	t.Helper()
	sim, err := netsim.New(g, scheme, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.InstallFaults(sched); err != nil {
		t.Fatal(err)
	}
	aud, err := Attach(sim, flows)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	return aud, res, aud.Finish(res)
}

func TestAuditedCleanRun(t *testing.T) {
	g := pairFabric(t, 2, 8)
	var flows []workload.Flow
	for i := 0; i < 40; i++ {
		flows = append(flows, workload.Flow{
			ID: uint64(i), Src: i % 8, Dst: 8 + (i+3)%8,
			SizeBytes: int64(20e3 + 1000*i), StartNS: int64(i) * 5000,
		})
	}
	_, res, err := auditedRun(t, g, routing.NewECMP(g), netsim.DefaultConfig(), flows, nil)
	if err != nil {
		t.Fatalf("clean run reported violations: %v", err)
	}
	if res.Completed != len(flows) {
		t.Fatalf("completed %d/%d flows", res.Completed, len(flows))
	}
}

func TestAuditedIncastWithDrops(t *testing.T) {
	// Heavy incast forces queue drops and retransmissions; conservation must
	// still balance because every loss is classified.
	g := topology.New("incast", 5, 32)
	for r := 1; r < 5; r++ {
		if err := g.AddLink(0, r); err != nil {
			t.Fatal(err)
		}
	}
	g.SetServers(0, 1)
	for r := 1; r < 5; r++ {
		g.SetServers(r, 4)
	}
	var flows []workload.Flow
	for i := 0; i < 16; i++ {
		flows = append(flows, workload.Flow{
			ID: uint64(i + 1), Src: 1 + i, Dst: 0, SizeBytes: 400e3,
		})
	}
	_, res, err := auditedRun(t, g, routing.NewECMP(g), netsim.DefaultConfig(), flows, nil)
	if err != nil {
		t.Fatalf("audited incast reported violations: %v", err)
	}
	if res.Stats.Drops == 0 {
		t.Fatal("incast produced no drops — scenario is not exercising loss accounting")
	}
	if res.Completed != len(flows) {
		t.Fatalf("completed %d/%d flows", res.Completed, len(flows))
	}
}

func TestAuditedFlowletDCTCPRun(t *testing.T) {
	g := pairFabric(t, 2, 4)
	cfg := netsim.DefaultConfig().WithDCTCP().WithFlowlets(50 * time.Microsecond)
	var flows []workload.Flow
	for i := 0; i < 12; i++ {
		flows = append(flows, workload.Flow{
			ID: uint64(i), Src: i % 4, Dst: 4 + (i+1)%4,
			SizeBytes: 150e3, StartNS: int64(i) * 400_000,
		})
	}
	_, res, err := auditedRun(t, g, routing.NewECMP(g), cfg, flows, nil)
	if err != nil {
		t.Fatalf("audited DCTCP+flowlet run reported violations: %v", err)
	}
	if res.Completed != len(flows) {
		t.Fatalf("completed %d/%d flows", res.Completed, len(flows))
	}
}

func TestAuditedFaultInjectionRun(t *testing.T) {
	// Cut and restore a triangle edge mid-run with a reconvergence boundary:
	// blackholes, reroutes, and RTO recovery all under audit.
	g := triangleFabric(t)
	ecmp := routing.NewECMP(g)
	cut := g.Clone()
	if !cut.RemoveLink(0, 1) {
		t.Fatal("triangle edge 0-1 missing")
	}
	tv, err := routing.NewTimeVarying(
		routing.Phase{StartNS: 0, Scheme: ecmp},
		routing.Phase{StartNS: 2_000_000, Scheme: routing.NewECMP(cut)},
		routing.Phase{StartNS: 6_000_000, Scheme: ecmp},
	)
	if err != nil {
		t.Fatal(err)
	}
	sched := &faults.Schedule{Seed: 7}
	sched.Cut(1_500_000, 0, 1)
	sched.Restore(5_500_000, 0, 1)
	sched.Gray(3_000_000, 1, 2, 0.01, 0.5)
	sched.ClearGray(5_000_000, 1, 2)

	var flows []workload.Flow
	for i := 0; i < 18; i++ {
		flows = append(flows, workload.Flow{
			ID: uint64(i + 1), Src: i % 6, Dst: (i + 2) % 6,
			SizeBytes: 200e3, StartNS: int64(i) * 300_000,
		})
	}
	for i, f := range flows {
		if f.Src == f.Dst {
			flows[i].Dst = (f.Dst + 1) % 6
		}
	}
	_, res, err := auditedRun(t, g, tv, netsim.DefaultConfig(), flows, sched)
	if err != nil {
		t.Fatalf("audited fault-injection run reported violations: %v", err)
	}
	if res.Stats.Blackholed == 0 && res.Stats.GrayDrops == 0 {
		t.Fatal("fault schedule produced no losses — scenario is not exercising fault accounting")
	}
	if res.Completed != len(flows) {
		t.Fatalf("completed %d/%d flows after repair", res.Completed, len(flows))
	}
}

func TestAuditedDRingWorkload(t *testing.T) {
	// A fig4-shaped tier-1 scenario: DRing fabric, skewed rack-level matrix,
	// Pareto sizes over a start window.
	g, err := topology.DRing(topology.Uniform(6, 2, 24))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	flows, err := workload.GenerateFlows(g, workload.FBSkewed(len(g.Racks()), rng), workload.GenConfig{
		Flows:    150,
		Sizes:    workload.Pareto{MeanBytes: 60e3, Alpha: 1.05},
		WindowNS: 2_000_000,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	_, _, finErr := auditedRun(t, g, routing.NewECMP(g), netsim.DefaultConfig(), flows, nil)
	if finErr != nil {
		t.Fatalf("audited DRing workload reported violations: %v", finErr)
	}
}

func TestAuditorDetectsConservationBreach(t *testing.T) {
	g := pairFabric(t, 1, 2)
	flows := []workload.Flow{{ID: 1, Src: 0, Dst: 2, SizeBytes: 50e3}}
	sim, err := netsim.New(g, routing.NewECMP(g), netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	aud, err := Attach(sim, flows)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	// Forge one extra delivery: conservation must catch the imbalance.
	aud.OnDeliver(res.EndNS, 0, false, 0)
	finErr := aud.Finish(res)
	if finErr == nil {
		t.Fatal("auditor missed a forged extra delivery")
	}
	if !strings.Contains(finErr.Error(), "conservation") {
		t.Fatalf("expected a conservation violation, got: %v", finErr)
	}
}

func TestAuditorDetectsTCPInsanity(t *testing.T) {
	g := pairFabric(t, 1, 2)
	flows := []workload.Flow{{ID: 1, Src: 0, Dst: 2, SizeBytes: 50e3}}
	sim, err := netsim.New(g, routing.NewECMP(g), netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	aud, err := Attach(sim, flows)
	if err != nil {
		t.Fatal(err)
	}
	aud.OnCwnd(0, 0, 0.5, 10, 5)  // cwnd < 1 and sndUna > sndNxt
	aud.OnCwnd(0, 0, 2, 0, 1<<40) // sndNxt beyond flow size
	aud.OnCwnd(0, 5, 2, 0, 0)     // flow index out of range
	v := strings.Join(aud.Violations(), "\n")
	for _, want := range []string{"cwnd", "sndUna", "beyond flow size", "out of range"} {
		if !strings.Contains(v, want) {
			t.Errorf("missing %q violation in:\n%s", want, v)
		}
	}
}

func TestAuditorDetectsTimeRegression(t *testing.T) {
	g := pairFabric(t, 1, 2)
	flows := []workload.Flow{{ID: 1, Src: 0, Dst: 2, SizeBytes: 50e3}}
	sim, err := netsim.New(g, routing.NewECMP(g), netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	aud, err := Attach(sim, flows)
	if err != nil {
		t.Fatal(err)
	}
	aud.OnTxStart(1000, 0, 0, false, 1500)
	aud.OnTxStart(999, 0, 0, false, 1500)
	v := strings.Join(aud.Violations(), "\n")
	if !strings.Contains(v, "time moved backwards") {
		t.Fatalf("missing time-regression violation in:\n%s", v)
	}
}

func TestAuditorDeduplicatesViolations(t *testing.T) {
	g := pairFabric(t, 1, 2)
	flows := []workload.Flow{{ID: 1, Src: 0, Dst: 2, SizeBytes: 50e3}}
	sim, err := netsim.New(g, routing.NewECMP(g), netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	aud, err := Attach(sim, flows)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		aud.OnCwnd(0, 0, 0.5, 0, 0)
	}
	if n := len(aud.Violations()); n != 1 {
		t.Fatalf("identical violation recorded %d times, want 1", n)
	}
}

func TestAttachAfterRunFails(t *testing.T) {
	g := pairFabric(t, 1, 2)
	flows := []workload.Flow{{ID: 1, Src: 0, Dst: 2, SizeBytes: 10e3}}
	sim, err := netsim.New(g, routing.NewECMP(g), netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(flows); err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(sim, flows); err == nil {
		t.Fatal("Attach after Run should fail")
	}
}
