// Package audit provides the runtime correctness backstop for the
// packet-level simulator: an invariant Auditor implementing netsim.Tracer
// that cross-checks the simulator's manual accounting (packet conservation,
// FIFO bookkeeping, event-time ordering, pool hygiene, TCP sender sanity),
// and a Differential harness validating netsim against the flow-level
// (flowsim) and fluid (fluid) models on a shared workload.
//
// The invariant catalog the Auditor enforces is documented in DESIGN.md §9.
package audit

import (
	"fmt"
	"strings"

	"spineless/internal/netsim"
	"spineless/internal/workload"
)

// maxViolations caps the violation log so a systematically broken run
// cannot grow memory without bound; the count still reflects how many
// distinct violations were observed up to the cap.
const maxViolations = 100

// Auditor observes one netsim run through the Tracer hooks and verifies the
// invariant catalog of DESIGN.md §9. Attach it before Run, then call Finish
// with the run's Results; Finish returns an error listing every distinct
// violation found (nil for a clean run).
//
// The Auditor allocates only when recording a violation, so auditing a
// clean run adds no steady-state allocations beyond the per-flow state
// built at Attach.
type Auditor struct {
	sim  *netsim.Simulator
	size []int64 // per-flow transfer size, for TCP sanity bounds

	lastNS int64 // most recent hook timestamp, for monotonicity

	// Packet conservation counters, split by packet kind and drop reason.
	deliveredData uint64
	deliveredAck  uint64
	dropsData     [3]uint64 // indexed by netsim.DropReason
	dropsAck      [3]uint64

	// Per-flow sender state mirrored from OnCwnd.
	lastUna []int64
	sawCwnd []bool

	seen       map[string]struct{}
	violations []string
}

// Attach installs a new Auditor as sim's tracer. flows must be the same
// slice later passed to Run (the auditor bounds sender state against each
// flow's SizeBytes). It fails if the simulator has already run.
func Attach(sim *netsim.Simulator, flows []workload.Flow) (*Auditor, error) {
	if sim == nil {
		return nil, fmt.Errorf("audit: nil simulator")
	}
	a := &Auditor{
		sim:     sim,
		size:    make([]int64, len(flows)),
		lastUna: make([]int64, len(flows)),
		sawCwnd: make([]bool, len(flows)),
		seen:    make(map[string]struct{}),
	}
	for i, f := range flows {
		a.size[i] = f.SizeBytes
	}
	if err := sim.SetTracer(a); err != nil {
		return nil, err
	}
	return a, nil
}

// violate records a violation once: duplicates (the same message repeating
// every event) collapse to a single entry so persistent breaches do not
// drown distinct ones.
func (a *Auditor) violate(format string, args ...interface{}) {
	msg := fmt.Sprintf(format, args...)
	if _, dup := a.seen[msg]; dup {
		return
	}
	a.seen[msg] = struct{}{}
	if len(a.violations) < maxViolations {
		a.violations = append(a.violations, msg)
	}
}

// tick enforces hook-time monotonicity: simulated time may not move
// backwards across any pair of tracer callbacks.
func (a *Auditor) tick(nowNS int64, hook string) {
	if nowNS < a.lastNS {
		a.violate("%s: time moved backwards: %d after %d", hook, nowNS, a.lastNS)
		return
	}
	a.lastNS = nowNS
}

func (a *Auditor) flowOK(flow int32, hook string) bool {
	if flow < 0 || int(flow) >= len(a.size) {
		a.violate("%s: flow index %d out of range [0,%d)", hook, flow, len(a.size))
		return false
	}
	return true
}

// OnEnqueue checks FIFO occupancy sanity at packet acceptance.
func (a *Auditor) OnEnqueue(nowNS int64, link, flow int32, hop int, isAck bool, wireBytes int32, queueBytes int64, queueCount int) {
	a.tick(nowNS, "OnEnqueue")
	a.flowOK(flow, "OnEnqueue")
	if wireBytes <= 0 {
		a.violate("OnEnqueue: non-positive wire size %d (flow %d)", wireBytes, flow)
	}
	if queueBytes < 0 || queueCount < 0 {
		a.violate("OnEnqueue: negative FIFO occupancy bytes=%d count=%d (link %d)", queueBytes, queueCount, link)
	}
	if (queueCount == 0) != (queueBytes == 0) {
		a.violate("OnEnqueue: FIFO count/bytes disagree: count=%d bytes=%d (link %d)", queueCount, queueBytes, link)
	}
	if queueCount > 0 && queueBytes < int64(wireBytes) {
		a.violate("OnEnqueue: FIFO holds %d bytes but just accepted a %dB packet (link %d)", queueBytes, wireBytes, link)
	}
}

// OnTxStart checks the serialization hook's timestamp ordering.
func (a *Auditor) OnTxStart(nowNS int64, link, flow int32, isAck bool, wireBytes int32) {
	a.tick(nowNS, "OnTxStart")
}

// OnDeliver counts end-to-end deliveries for conservation.
func (a *Auditor) OnDeliver(nowNS int64, flow int32, isAck bool, seq int64) {
	a.tick(nowNS, "OnDeliver")
	if isAck {
		a.deliveredAck++
	} else {
		a.deliveredData++
	}
	if a.flowOK(flow, "OnDeliver") && !isAck {
		if seq < 0 || seq >= a.size[flow] {
			a.violate("OnDeliver: data seq %d outside [0,%d) (flow %d)", seq, a.size[flow], flow)
		}
	}
}

// OnDrop counts losses by reason for conservation and counter cross-checks.
func (a *Auditor) OnDrop(nowNS int64, link, flow int32, isAck bool, reason netsim.DropReason) {
	a.tick(nowNS, "OnDrop")
	if int(reason) >= len(a.dropsData) {
		a.violate("OnDrop: unknown drop reason %d", reason)
		return
	}
	if isAck {
		a.dropsAck[reason]++
	} else {
		a.dropsData[reason]++
	}
}

// OnCwnd checks TCP sender sanity after every control-state change.
func (a *Auditor) OnCwnd(nowNS int64, flow int32, cwnd float64, sndUna, sndNxt int64) {
	a.tick(nowNS, "OnCwnd")
	if !a.flowOK(flow, "OnCwnd") {
		return
	}
	if cwnd < 1 {
		a.violate("OnCwnd: cwnd %.4f < 1 segment (flow %d)", cwnd, flow)
	}
	if sndUna < 0 || sndUna > sndNxt {
		a.violate("OnCwnd: sndUna %d outside [0, sndNxt=%d] (flow %d)", sndUna, sndNxt, flow)
	}
	if sndNxt > a.size[flow] {
		a.violate("OnCwnd: sndNxt %d beyond flow size %d (flow %d)", sndNxt, a.size[flow], flow)
	}
	if sndUna < a.lastUna[flow] {
		a.violate("OnCwnd: sndUna regressed %d → %d (flow %d)", a.lastUna[flow], sndUna, flow)
	}
	a.lastUna[flow] = sndUna
	a.sawCwnd[flow] = true
}

// OnStateChange triggers a full simulator self-audit at every fault
// boundary, so FIFO corruption introduced by a link transition is caught at
// the transition rather than at end-of-run.
func (a *Auditor) OnStateChange(nowNS int64, link int32, down bool, lossProb, rateFactor float64) {
	a.tick(nowNS, "OnStateChange")
	if lossProb < 0 || lossProb > 1 {
		a.violate("OnStateChange: loss probability %v outside [0,1] (link %d)", lossProb, link)
	}
	if !down && rateFactor <= 0 {
		a.violate("OnStateChange: up link %d with non-positive rate factor %v", link, rateFactor)
	}
	for _, v := range a.sim.SelfAudit() {
		a.violate("%s", v)
	}
}

// Finish runs the end-of-run invariant checks against the Results of the
// audited Run and returns an error enumerating every distinct violation
// observed (nil when the run was clean). It must be called exactly once,
// after Run returns.
func (a *Auditor) Finish(res netsim.Results) error {
	st := res.Stats

	// Packet conservation: every packet the sender side created is
	// delivered, dropped (with a classified reason), or still in flight.
	dropData := a.dropsData[netsim.DropQueue] + a.dropsData[netsim.DropGray] + a.dropsData[netsim.DropBlackhole]
	dropAck := a.dropsAck[netsim.DropQueue] + a.dropsAck[netsim.DropGray] + a.dropsAck[netsim.DropBlackhole]
	dataOut := a.deliveredData + dropData
	ackOut := a.deliveredAck + dropAck
	if dataOut > st.DataPackets {
		a.violate("conservation: %d data packets delivered+dropped but only %d sent", dataOut, st.DataPackets)
	}
	if ackOut > st.AckPackets {
		a.violate("conservation: %d acks delivered+dropped but only %d sent", ackOut, st.AckPackets)
	}
	if dataOut <= st.DataPackets && ackOut <= st.AckPackets {
		live := (st.DataPackets - dataOut) + (st.AckPackets - ackOut)
		if inFlight := a.sim.PacketsInFlight(); live != inFlight {
			a.violate("conservation: %d packets unaccounted for but %d outstanding in the pool", live, inFlight)
		}
	}

	// Drop counters must agree with the per-reason callback counts.
	if q := a.dropsData[netsim.DropQueue] + a.dropsAck[netsim.DropQueue]; st.Drops != q {
		a.violate("Stats.Drops=%d but tracer observed %d queue drops", st.Drops, q)
	}
	if gr := a.dropsData[netsim.DropGray] + a.dropsAck[netsim.DropGray]; st.GrayDrops != gr {
		a.violate("Stats.GrayDrops=%d but tracer observed %d gray drops", st.GrayDrops, gr)
	}
	if bh := a.dropsData[netsim.DropBlackhole] + a.dropsAck[netsim.DropBlackhole]; st.Blackholed != bh {
		a.violate("Stats.Blackholed=%d but tracer observed %d blackholed packets", st.Blackholed, bh)
	}

	// Completed flows must have acknowledged every byte.
	for i, fct := range res.FCTNS {
		if fct < 0 {
			continue
		}
		if !a.sawCwnd[i] {
			a.violate("flow %d completed without any sender-state callback", i)
			continue
		}
		if a.lastUna[i] != a.size[i] {
			a.violate("flow %d completed with sndUna=%d of %d bytes acked", i, a.lastUna[i], a.size[i])
		}
	}

	// Structural self-audit: FIFO bookkeeping, drop-counter agreement, and
	// any violations (double frees, time regressions) the simulator itself
	// recorded during the run.
	for _, v := range a.sim.SelfAudit() {
		a.violate("%s", v)
	}

	if len(a.violations) == 0 {
		return nil
	}
	return fmt.Errorf("audit: %d invariant violation(s):\n  %s",
		len(a.violations), strings.Join(a.violations, "\n  "))
}

// Violations returns the distinct violations recorded so far (nil when
// clean). The slice is the auditor's own log; callers must not mutate it.
func (a *Auditor) Violations() []string { return a.violations }
