package audit

import (
	"fmt"
	"sort"

	"spineless/internal/flowsim"
	"spineless/internal/fluid"
	"spineless/internal/netsim"
	"spineless/internal/routing"
	"spineless/internal/telemetry"
	"spineless/internal/topology"
	"spineless/internal/workload"
)

// DiffConfig declares the tolerance bands for the differential harness.
type DiffConfig struct {
	// Net configures the packet-level run.
	Net netsim.Config
	// Link sets the flow-level models' rates; LinkRateBps must match
	// Net.LinkRateBps for the comparison to be meaningful.
	Link flowsim.Config
	// Epsilon is the fluid FPTAS accuracy knob (default 0.1; must stay
	// below 1/3 so the (1−3ε) guarantee is meaningful).
	Epsilon float64
	// GoodputBand brackets the acceptable ratio of netsim aggregate goodput
	// to the flowsim max-min aggregate. The band is declared, not derived:
	// packet effects (TCP inefficiency, queueing, unlucky hashing) push the
	// ratio below 1; flows that finish early and free capacity push it
	// above. Default [0.35, 1.35], calibrated for simultaneous-start,
	// near-equal-size workloads.
	GoodputBand [2]float64
	// Slack is the relative tolerance on the flowsim-vs-fluid bound,
	// absorbing FPTAS and float rounding (default 0.01).
	Slack float64
	// Shards > 0 runs the packet leg on the sharded conservative-window
	// engine with that many workers instead of the serial simulator. The
	// invariant Auditor only observes the serial engine's single event
	// stream, so that leg's runtime invariants go unchecked; the cross-model
	// tolerance bands still apply, which makes the differential a
	// cross-engine physics check on the sharded engine itself.
	Shards int
	// Telemetry is rejected in both engine modes and exists only so callers
	// that thread one recorder through every run config get a loud error
	// instead of a silently event-less sink: the sharded leg has no tracer
	// slot at all, and the serial leg's slot is always occupied by the
	// invariant Auditor — the differential's whole point.
	Telemetry *telemetry.Recorder
}

func (c *DiffConfig) defaults() {
	if c.Epsilon <= 0 || c.Epsilon >= 1.0/3 {
		c.Epsilon = 0.1
	}
	if c.GoodputBand[0] <= 0 && c.GoodputBand[1] <= 0 {
		c.GoodputBand = [2]float64{0.35, 1.35}
	}
	if c.Slack <= 0 {
		c.Slack = 0.01
	}
}

// DiffReport holds the three models' throughput figures for one workload
// plus every tolerance-band violation found.
type DiffReport struct {
	// NetsimBps is the packet-level aggregate goodput: Σ SizeBytes·8/FCT
	// over completed flows.
	NetsimBps float64
	// FlowsimBps and FlowsimMinBps are the max-min fair aggregate and
	// minimum per-flow rate on the same pairs and routing scheme.
	FlowsimBps    float64
	FlowsimMinBps float64
	// FluidLambdaBps is the fluid model's feasible per-flow rate under
	// optimal fractional routing (0 when the workload has no inter-rack
	// flows); FluidUpperBps = λ/(1−3ε) is the FPTAS upper bound on the
	// optimum, which no oblivious scheme's max-min minimum may exceed.
	FluidLambdaBps float64
	FluidUpperBps  float64
	// Violations lists every band breach; empty means the three models
	// agree within the declared tolerances.
	Violations []string
}

// Err returns an error enumerating the report's violations, nil when clean.
func (r DiffReport) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return fmt.Errorf("audit: differential violation(s): %v", r.Violations)
}

// Differential cross-validates the packet simulator against the flow-level
// and fluid models on one shared workload:
//
//   - netsim runs flows under the invariant Auditor (its violations are
//     included in the report);
//   - flowsim computes the max-min fair allocation for the same host pairs
//     on the same scheme;
//   - fluid bounds what any scheme could achieve on the topology, checking
//     flowsim's minimum rate ≤ λ/(1−3ε).
//
// The netsim/flowsim comparison is only meaningful for simultaneous-start,
// near-equal-size workloads (flowsim models steady state); size flows so
// they complete within Net.MaxSimTime. The returned error covers setup and
// simulation failures; band breaches land in DiffReport.Violations.
func Differential(g *topology.Graph, scheme routing.Scheme, flows []workload.Flow, cfg DiffConfig) (DiffReport, error) {
	cfg.defaults()
	var rep DiffReport
	if len(flows) == 0 {
		return rep, fmt.Errorf("audit: differential needs at least one flow")
	}
	if cfg.Telemetry != nil {
		if cfg.Shards > 0 {
			return rep, fmt.Errorf("audit: Telemetry needs the serial engine's event stream; set Shards=0")
		}
		return rep, fmt.Errorf("audit: the differential's serial leg runs under the invariant Auditor, which owns the simulator's single tracer slot; run Telemetry separately")
	}

	// Packet level — audited on the serial engine, band-checked only on the
	// sharded one.
	var res netsim.Results
	if cfg.Shards > 0 {
		ss, err := netsim.NewSharded(g, scheme, cfg.Net, cfg.Shards)
		if err != nil {
			return rep, err
		}
		if res, err = ss.Run(flows); err != nil {
			return rep, err
		}
	} else {
		sim, err := netsim.New(g, scheme, cfg.Net)
		if err != nil {
			return rep, err
		}
		aud, err := Attach(sim, flows)
		if err != nil {
			return rep, err
		}
		if res, err = sim.Run(flows); err != nil {
			return rep, err
		}
		if err := aud.Finish(res); err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("netsim invariants: %v", err))
		}
	}
	incomplete := 0
	for i, fct := range res.FCTNS {
		if fct <= 0 {
			incomplete++
			continue
		}
		rep.NetsimBps += float64(flows[i].SizeBytes) * 8e9 / float64(fct)
	}
	if incomplete > 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("netsim left %d/%d flows incomplete — workload too large for MaxSimTime", incomplete, len(flows)))
	}

	// Flow level: max-min on the same pairs and scheme.
	pairs := make([][2]int, len(flows))
	for i, f := range flows {
		pairs[i] = [2]int{f.Src, f.Dst}
	}
	rates, agg, err := flowsim.Throughput(g, scheme, pairs, cfg.Link)
	if err != nil {
		return rep, err
	}
	rep.FlowsimBps = agg
	rep.FlowsimMinBps = rates[0]
	for _, r := range rates[1:] {
		if r < rep.FlowsimMinBps {
			rep.FlowsimMinBps = r
		}
	}

	// Fluid bound: aggregate inter-rack flows into rack-level demands, one
	// unit each, so λ is a per-flow rate. Intra-rack flows use no network
	// links and place no demand.
	type rackPair struct{ src, dst int }
	rp := make([]rackPair, 0, len(flows))
	for _, f := range flows {
		sr, dr := g.RackOf(f.Src), g.RackOf(f.Dst)
		if sr != dr {
			rp = append(rp, rackPair{sr, dr})
		}
	}
	sort.Slice(rp, func(i, j int) bool {
		if rp[i].src != rp[j].src {
			return rp[i].src < rp[j].src
		}
		return rp[i].dst < rp[j].dst
	})
	var demands []fluid.Demand
	for _, p := range rp {
		if n := len(demands); n > 0 && demands[n-1].Src == p.src && demands[n-1].Dst == p.dst {
			demands[n-1].Amount++
			continue
		}
		demands = append(demands, fluid.Demand{Src: p.src, Dst: p.dst, Amount: 1})
	}
	if len(demands) > 0 {
		lambda, err := fluid.MaxConcurrentFlow(g, demands, fluid.Options{
			Epsilon:      cfg.Epsilon,
			LinkCapacity: cfg.Link.LinkRateBps,
		})
		if err != nil {
			return rep, err
		}
		rep.FluidLambdaBps = lambda
		rep.FluidUpperBps = lambda / (1 - 3*cfg.Epsilon)
		// The max-min minimum is a feasible concurrent rate on pinned
		// paths, so the fluid optimum — and hence λ/(1−3ε) — dominates it.
		// (Host-link caps only lower the flowsim side, preserving the
		// direction of the bound.)
		if rep.FlowsimMinBps > rep.FluidUpperBps*(1+cfg.Slack) {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("flowsim min rate %.3g bps exceeds fluid upper bound %.3g bps — one of the flow models is broken",
					rep.FlowsimMinBps, rep.FluidUpperBps))
		}
	}

	// Packet vs flow level, inside the declared band.
	if incomplete == 0 && rep.FlowsimBps > 0 {
		ratio := rep.NetsimBps / rep.FlowsimBps
		if ratio < cfg.GoodputBand[0] || ratio > cfg.GoodputBand[1] {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("netsim/flowsim aggregate goodput ratio %.3f outside band [%.2f, %.2f] (netsim %.3g, flowsim %.3g bps)",
					ratio, cfg.GoodputBand[0], cfg.GoodputBand[1], rep.NetsimBps, rep.FlowsimBps))
		}
	}
	return rep, nil
}
