// Package prof wires the conventional -cpuprofile/-memprofile flags into
// the figure drivers with one call, so every cmd exposes identical
// profiling behavior without repeating pprof plumbing.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and schedules a heap profile to
// memPath; either may be empty to skip that profile. The returned stop
// function flushes both and must run before process exit — call it via
// defer, and avoid os.Exit on the success path (it would skip the defer).
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prof:", err)
			return
		}
		defer f.Close()
		runtime.GC() // settle allocation stats before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "prof:", err)
		}
	}, nil
}
