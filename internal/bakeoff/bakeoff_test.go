package bakeoff

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// tinyConfig is the paper-scale geometry with a workload small enough for
// unit tests: the fabric construction is the real thing, the simulations
// are capped.
func tinyConfig() Config {
	cfg := Scaled(1)
	cfg.Util = 0.2
	cfg.WindowSec = 0.002
	cfg.MaxFlows = 120
	cfg.MaxPairs = 32
	cfg.LiveFlows = 80
	return cfg
}

// TestRunShardInvariance is the subsystem's core contract: the scorecard —
// every float, the ranking, the spec hash — is byte-identical at every
// shard count >= 1.
func TestRunShardInvariance(t *testing.T) {
	cfg := tinyConfig()
	cfg.Topos = []string{"dring", "debruijn", "rng"}

	cfg.Shards = 1
	one, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 2
	two, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := one.CheckComplete(); err != nil {
		t.Fatal(err)
	}
	if got, want := one.Table(), two.Table(); got != want {
		t.Fatalf("scorecard differs between 1 and 2 shards:\n--- shards=1\n%s\n--- shards=2\n%s", want, got)
	}
	if got, want := one.CSV(), two.CSV(); got != want {
		t.Fatalf("CSV differs between 1 and 2 shards")
	}
	if len(one.Cells) != 5 { // dring, debruijn×2 schemes, rng×2 schemes
		t.Fatalf("want 5 cells, got %d", len(one.Cells))
	}
	if len(one.Winners) != len(scoredMetrics) {
		t.Fatalf("want %d winners, got %d", len(scoredMetrics), len(one.Winners))
	}
	if one.SpecHash == "" {
		t.Fatal("empty spec hash")
	}
}

// TestRunCacheRoundTrip pins that a cached rerun reproduces the scorecard
// bytes (the store path decodes cells instead of recomputing them).
func TestRunCacheRoundTrip(t *testing.T) {
	cfg := tinyConfig()
	cfg.Topos = []string{"dring"}
	cfg.StoreDir = t.TempDir()

	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	cfg.Logf = func(format string, args ...any) {
		if strings.Contains(fmt.Sprintf(format, args...), "hit") {
			hits++
		}
	}
	second, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hits == 0 {
		t.Fatal("second run never hit the cell cache")
	}
	if first.Table() != second.Table() || first.CSV() != second.CSV() {
		t.Fatal("cached rerun changed the scorecard")
	}
}

func TestConfigRejects(t *testing.T) {
	cfg := tinyConfig()
	cfg.Topos = []string{"mesh"}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), `"mesh"`) {
		t.Fatalf("unknown topology: got %v", err)
	}

	cfg = tinyConfig()
	cfg.Audit = true
	cfg.Shards = 4
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "serial engine") {
		t.Fatalf("audit+shards: got %v", err)
	}

	cfg = tinyConfig()
	cfg.Switches = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero switches accepted")
	}

	// A scheme the fabric cannot support fails with the routing layer's
	// error, not a panic or a silent skip.
	cfg = tinyConfig()
	cfg.Topos = []string{"rrg"}
	cfg.Schemes = []string{"selfroute"}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "not a De Bruijn fabric") {
		t.Fatalf("selfroute on rrg: got %v", err)
	}
}

// TestScoreRanking pins the rank-based composite on synthetic cells:
// per-metric ranks average into Score, ties resolve by the canonical
// (topology, scheme) order, winners follow the fixed metric order.
func TestScoreRanking(t *testing.T) {
	mk := func(topo, scheme string, udf, med, p99, sla, tput, bh float64) Cell {
		return Cell{
			Topo: topo, Scheme: scheme, Flows: 1,
			UDF: udf, MedianMS: med, P99MS: p99,
			SLAMin: sla, TputNorm: tput, BlackholeMS: bh,
		}
	}
	sc := &Scorecard{Cells: []Cell{
		// good wins everything; tied and tied2 are equal on every metric,
		// so canonical order (rng before its lexicographically later
		// scheme) must break the tie deterministically.
		mk("rng", "su2", 1, 2, 2, 0.5, 0.5, 2),
		mk("rng", "spvlb", 1, 2, 2, 0.5, 0.5, 2),
		mk("dring", "su2", 2, 1, 1, 1.0, 1.0, 1),
	}}
	sc.score()

	if sc.Cells[0].Topo != "dring" || sc.Cells[0].Rank != 1 {
		t.Fatalf("winner = %s/%s rank %d, want dring/su2 rank 1",
			sc.Cells[0].Topo, sc.Cells[0].Scheme, sc.Cells[0].Rank)
	}
	if sc.Cells[0].Score != 1 {
		t.Fatalf("winner score = %v, want 1 (best on every metric)", sc.Cells[0].Score)
	}
	// The tied pair keeps canonical scheme order: spvlb < su2.
	if sc.Cells[1].Scheme != "spvlb" || sc.Cells[2].Scheme != "su2" {
		t.Fatalf("tie-break order: got %s then %s, want spvlb then su2",
			sc.Cells[1].Scheme, sc.Cells[2].Scheme)
	}
	for i, m := range scoredMetrics {
		if sc.Winners[i].Metric != m.name {
			t.Fatalf("winner %d = %s, want %s", i, sc.Winners[i].Metric, m.name)
		}
		if sc.Winners[i].Topo != "dring" {
			t.Fatalf("metric %s winner = %s, want dring", m.name, sc.Winners[i].Topo)
		}
	}
	// Rank-sum check for the tied pair: rank 2 and 3 on every metric, but
	// which cell gets 2 is the canonical order, identically per metric —
	// spvlb ranks 2 everywhere, su2 ranks 3 everywhere.
	if sc.Cells[1].Score != 2 || sc.Cells[2].Score != 3 {
		t.Fatalf("tied scores = %v, %v; want 2, 3", sc.Cells[1].Score, sc.Cells[2].Score)
	}
}

func TestServerPairsNeverSelfPair(t *testing.T) {
	pairs := serverPairs(9, 5, rand.New(rand.NewSource(7)))
	if len(pairs) != 5 {
		t.Fatalf("want 5 pairs, got %d", len(pairs))
	}
	for _, p := range pairs {
		if p[0] == p[1] {
			t.Fatalf("self pair %v", p)
		}
	}
	uncapped := serverPairs(9, 0, rand.New(rand.NewSource(7)))
	if len(uncapped) != 9 {
		t.Fatalf("want one pair per server, got %d", len(uncapped))
	}
}
