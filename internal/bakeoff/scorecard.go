package bakeoff

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"spineless/internal/metrics"
)

// metricDef is one scored column of the scorecard.
type metricDef struct {
	name         string
	higherBetter bool
	get          func(c *Cell) float64
}

// scoredMetrics is the fixed metric order: per-metric winners and the
// composite rank score both follow it. Cells are ranked per metric
// (1 = best, ties broken by the canonical cell order, never by float
// equality) and the composite Score is the mean rank across metrics.
var scoredMetrics = []metricDef{
	{"udf", true, func(c *Cell) float64 { return c.UDF }},
	{"median_ms", false, func(c *Cell) float64 { return c.MedianMS }},
	{"p99_ms", false, func(c *Cell) float64 { return c.P99MS }},
	{"sla_min", true, func(c *Cell) float64 { return c.SLAMin }},
	{"tput", true, func(c *Cell) float64 { return c.TputNorm }},
	{"blackhole_ms", false, func(c *Cell) float64 { return c.BlackholeMS }},
}

// Winner records the best cell of one metric.
type Winner struct {
	Metric string  `json:"metric"`
	Topo   string  `json:"topo"`
	Scheme string  `json:"scheme"`
	Value  float64 `json:"value"`
}

// Scorecard is the ranked bake-off result: one cell per (topology, scheme)
// with the per-metric winners and the spec hash that reproduces it.
type Scorecard struct {
	SpecHash   string   `json:"spec_hash"`
	Switches   int      `json:"switches"`
	Supernodes int      `json:"supernodes"`
	Ports      int      `json:"ports"`
	Cells      []Cell   `json:"cells"`   // ranked, best composite first
	Winners    []Winner `json:"winners"` // one per scored metric, in metric order
}

// score assigns per-metric ranks, the composite Score (mean rank) and the
// final Rank, reorders Cells best-first, and fills Winners. Deterministic:
// every sort key ends in the canonical (topology, scheme) total order.
func (s *Scorecard) score() {
	sortCanonical(s.Cells)
	n := len(s.Cells)
	if n == 0 {
		return
	}
	idx := make([]int, n)
	rankSum := make([]float64, n)
	s.Winners = s.Winners[:0]
	for _, m := range scoredMetrics {
		for i := range idx {
			idx[i] = i
		}
		// Better value first; equal values keep canonical order (the sort
		// is stable and Cells is canonically ordered), so ranks and
		// winners never depend on float-equality comparisons.
		sort.SliceStable(idx, func(a, b int) bool {
			va, vb := m.get(&s.Cells[idx[a]]), m.get(&s.Cells[idx[b]])
			if m.higherBetter {
				return va > vb
			}
			return va < vb
		})
		for rank, ci := range idx {
			rankSum[ci] += float64(rank + 1)
		}
		best := &s.Cells[idx[0]]
		s.Winners = append(s.Winners, Winner{
			Metric: m.name, Topo: best.Topo, Scheme: best.Scheme,
			Value: m.get(best),
		})
	}
	for i := range s.Cells {
		s.Cells[i].Score = rankSum[i] / float64(len(scoredMetrics))
	}
	sort.SliceStable(s.Cells, func(i, j int) bool {
		// Cells is canonically ordered, so stability is the tie-break.
		return s.Cells[i].Score < s.Cells[j].Score
	})
	for i := range s.Cells {
		s.Cells[i].Rank = i + 1
	}
}

// CheckComplete rejects a scorecard with missing cells or non-finite
// numbers — the smoke gate's definition of "complete".
func (s *Scorecard) CheckComplete() error {
	if len(s.Cells) == 0 {
		return fmt.Errorf("bakeoff: empty scorecard")
	}
	for i := range s.Cells {
		c := &s.Cells[i]
		vals := []struct {
			name string
			v    float64
		}{
			{"udf", c.UDF}, {"median_ms", c.MedianMS}, {"p99_ms", c.P99MS},
			{"sla_min", c.SLAMin}, {"tput_norm", c.TputNorm},
			{"blackhole_ms", c.BlackholeMS}, {"score", c.Score},
		}
		for _, x := range vals {
			if math.IsNaN(x.v) || math.IsInf(x.v, 0) {
				return fmt.Errorf("bakeoff: cell %s/%s has non-finite %s", c.Topo, c.Scheme, x.name)
			}
		}
		if c.Flows == 0 {
			return fmt.Errorf("bakeoff: cell %s/%s ran no flows", c.Topo, c.Scheme)
		}
	}
	return nil
}

// Table renders the ranked scorecard and the per-metric winners as text.
func (s *Scorecard) Table() string {
	var t metrics.Table
	t.AddRow("rank", "fabric", "scheme", "switches", "servers", "udf",
		"median ms", "p99 ms", "sla min", "tput", "blackhole ms", "score")
	for i := range s.Cells {
		c := &s.Cells[i]
		t.AddRow(
			fmt.Sprintf("%d", c.Rank), c.Topo, c.Scheme,
			fmt.Sprintf("%d", c.Switches), fmt.Sprintf("%d", c.Servers),
			fmt.Sprintf("%.3f", c.UDF),
			fmt.Sprintf("%.3f", c.MedianMS), fmt.Sprintf("%.3f", c.P99MS),
			fmt.Sprintf("%.3f", c.SLAMin), fmt.Sprintf("%.3f", c.TputNorm),
			fmt.Sprintf("%.3f", c.BlackholeMS), fmt.Sprintf("%.2f", c.Score),
		)
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("\nwinners:\n")
	var w metrics.Table
	for _, win := range s.Winners {
		w.AddRow("  "+win.Metric, win.Topo+"/"+win.Scheme, fmt.Sprintf("%.4g", win.Value))
	}
	b.WriteString(w.String())
	b.WriteString(fmt.Sprintf("\nspec %s  (lower score is better: mean per-metric rank over %d metrics)\n",
		s.SpecHash, len(scoredMetrics)))
	return b.String()
}

// CSV renders the scorecard as a machine-readable table, one row per cell
// plus per-class SLA columns, stamped with the spec hash.
func (s *Scorecard) CSV() string {
	var b strings.Builder
	b.WriteString("rank,fabric,scheme,switches,servers,degree,flows,udf,median_ms,p99_ms")
	if len(s.Cells) > 0 {
		for _, cl := range s.Cells[0].Classes {
			fmt.Fprintf(&b, ",sla_%s", cl.Class)
		}
	}
	b.WriteString(",sla_min,tput_norm,blackhole_ms,live_completed,live_incomplete,score,spec\n")
	for i := range s.Cells {
		c := &s.Cells[i]
		fmt.Fprintf(&b, "%d,%s,%s,%d,%d,%d,%d,%.6g,%.6g,%.6g",
			c.Rank, c.Topo, c.Scheme, c.Switches, c.Servers, c.Degree,
			c.Flows, c.UDF, c.MedianMS, c.P99MS)
		for _, cl := range c.Classes {
			fmt.Fprintf(&b, ",%.6g", cl.SLAAttained)
		}
		fmt.Fprintf(&b, ",%.6g,%.6g,%.6g,%d,%d,%.6g,%s\n",
			c.SLAMin, c.TputNorm, c.BlackholeMS,
			c.LiveCompleted, c.LiveIncomplete, c.Score, s.SpecHash)
	}
	return b.String()
}
