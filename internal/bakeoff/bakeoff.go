// Package bakeoff runs the flat-topology bake-off: every candidate fabric
// built on one equipment budget — the paper's DRing, its equipment-matched
// RRG, an Xpander, a De Bruijn fabric and an AWS-style random neighbor
// graph — measured under the same workloads and faults and ranked into a
// scorecard. Per cell (fabric × routing scheme) it reports:
//
//   - UDF — the §3.1 uplink-to-downlink factor of the fabric's mean NSR
//     against the paper's leaf-spine(48,16) baseline (analytic NSR = 1/3);
//   - FCT — median and p99 flow completion time under the three-tier
//     job-class mix on the packet simulator (Figure 4 methodology);
//   - SLA — per-class SLA attainment from the same classed run, scored on
//     the worst class;
//   - throughput — mean max-min fair rate of a seeded random permutation
//     of long flows, as a fraction of the NIC rate (§6.2 methodology);
//   - resilience — blackhole window and flow completion under the
//     live fault-injection schedule (SU(K) routing, like cmd/failures).
//
// Every number replays byte-identically from the seed: the sharded netsim
// engine is byte-identical at every shard count >= 1, flowsim and the
// topology metrics are deterministic, and the cells are cached through
// internal/store keyed by their full spec. The package is in spinelint's
// SimulatorScope, so wall-clock and global-rand use is rejected at lint
// time.
package bakeoff

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"spineless/internal/core"
	"spineless/internal/flowsim"
	"spineless/internal/memo"
	"spineless/internal/parallel"
	"spineless/internal/resilience"
	"spineless/internal/store"
	"spineless/internal/topology"
	"spineless/internal/workload"
)

// specVersion is bumped whenever the cell computation changes meaning, so
// stale cached cells from older code are never reused.
const specVersion = 1

// AllTopologies is the canonical bake-off field, in scorecard order.
var AllTopologies = []string{"dring", "rrg", "xpander", "debruijn", "rng"}

// DefaultSchemes returns the routing schemes a topology competes with:
// every fabric runs the paper's SU(2), and the two new fabrics also run
// their native scheme (De Bruijn shift-register self-routing, RNG
// shortest-path with VLB fallback).
func DefaultSchemes(topo string) []string {
	switch topo {
	case "debruijn":
		return []string{"selfroute", "su2"}
	case "rng":
		return []string{"spvlb", "su2"}
	default:
		return []string{"su2"}
	}
}

// Config parameterizes one bake-off. The equipment budget is a DRing
// geometry (Switches ToRs of Ports ports in Supernodes supernodes); every
// other fabric is built on the same switch count, radix and server total,
// mirroring the paper's §5.1 equipment-matching rule.
type Config struct {
	// Switches, Supernodes and Ports set the equipment budget. Scaled(x)
	// gives the paper's §6.3 proportions at x times paper scale.
	Switches   int
	Supernodes int
	Ports      int

	// Topos is the fabric subset to race (nil = AllTopologies). Order is
	// ignored: cells always appear in canonical AllTopologies order.
	Topos []string
	// Schemes overrides the per-topology scheme list (nil = DefaultSchemes
	// per topology). A scheme a fabric cannot support — e.g. selfroute on
	// a non-De-Bruijn graph — fails the run with the routing layer's error.
	Schemes []string

	// Util, WindowSec, MaxFlows and Trials parameterize the classed FCT
	// run exactly as in core.FCTConfig; offered load is scaled against
	// half the fabric's aggregate server bandwidth so every cell sees the
	// same per-server load regardless of its switch count.
	Util      float64
	WindowSec float64
	MaxFlows  int
	Trials    int

	// MaxPairs caps the long-flow count of the max-min throughput cell
	// (0 = one flow per server).
	MaxPairs int
	// LiveFlows is the flow count of the resilience cell (0 = the
	// resilience package default).
	LiveFlows int

	// Seed drives all sampling: fabric construction, workloads, faults.
	Seed int64
	// Workers bounds cell-level parallelism (0 = one per CPU). A pure
	// throughput knob — cells are independent and reseed from Seed.
	Workers int
	// Shards > 0 runs every packet simulation on the sharded
	// conservative-window engine with that many workers. Byte-identical at
	// every count >= 1 but a distinct engine from the serial one, so the
	// cache keys only record whether the engine was sharded, not the
	// count. Incompatible with Audit.
	Shards int
	// Audit runs every packet simulation under the runtime invariant
	// auditor; violations fail the run. Needs the serial engine.
	Audit bool

	// StoreDir, when non-empty, caches finished cells content-addressed by
	// their spec hash; repeated runs reuse them. Logf, when non-nil,
	// receives cache hit/miss lines.
	StoreDir string
	Logf     func(format string, args ...any)
}

// Scaled returns the bake-off configuration at x times paper scale: the
// §6.3 DRing proportions (80 ToRs in 12 supernodes at x=1) on 64-port
// switches, the paper's 30% offered load over a 4 ms window capped at
// 5000 flows, and one throughput flow per server up to 512.
func Scaled(x int) Config {
	return Config{
		Switches:   80 * x,
		Supernodes: 12 * x,
		Ports:      64,
		Util:       0.30,
		WindowSec:  0.004,
		MaxFlows:   5000,
		MaxPairs:   512,
		Seed:       1,
	}
}

// Validate rejects inconsistent configurations with layer-tagged errors.
func (c Config) Validate() error {
	if c.Switches <= 0 || c.Supernodes <= 0 || c.Ports <= 0 {
		return fmt.Errorf("bakeoff: need positive switches/supernodes/ports, have %d/%d/%d",
			c.Switches, c.Supernodes, c.Ports)
	}
	for _, topo := range c.Topos {
		if !knownTopo(topo) {
			return fmt.Errorf("bakeoff: unknown topology %q (want dring, rrg, xpander, debruijn or rng)", topo)
		}
	}
	if c.Audit && c.Shards > 0 {
		return fmt.Errorf("bakeoff: -audit needs the serial engine's event stream; drop -shards")
	}
	if c.Util <= 0 || c.WindowSec <= 0 {
		return fmt.Errorf("bakeoff: need positive util and window, have %g/%g", c.Util, c.WindowSec)
	}
	return nil
}

func knownTopo(name string) bool {
	for _, t := range AllTopologies {
		if t == name {
			return true
		}
	}
	return false
}

// topos resolves the requested subset into canonical order, deduplicated.
func (c Config) topos() []string {
	if len(c.Topos) == 0 {
		return AllTopologies
	}
	var out []string
	for _, t := range AllTopologies {
		for _, want := range c.Topos {
			if want == t {
				out = append(out, t)
				break
			}
		}
	}
	return out
}

func (c Config) schemesFor(topo string) []string {
	if len(c.Schemes) > 0 {
		return c.Schemes
	}
	return DefaultSchemes(topo)
}

// Cell is one scored (topology, scheme) row of the scorecard.
type Cell struct {
	Topo   string `json:"topo"`
	Scheme string `json:"scheme"`

	Switches int `json:"switches"`
	Servers  int `json:"servers"`
	Degree   int `json:"degree"` // max network degree

	UDF float64 `json:"udf"`

	Flows    int                 `json:"flows"`
	MedianMS float64             `json:"median_ms"`
	P99MS    float64             `json:"p99_ms"`
	Classes  []workload.ClassFCT `json:"classes"`
	SLAMin   float64             `json:"sla_min"`

	TputNorm float64 `json:"tput_norm"`

	BlackholeMS    float64 `json:"blackhole_ms"`
	LiveCompleted  int     `json:"live_completed"`
	LiveIncomplete int     `json:"live_incomplete"`

	// Score is the mean across scored metrics of this cell's rank (1 =
	// best); Rank orders cells by Score. Both are assigned by the
	// scorecard assembly, never cached.
	Score float64 `json:"score"`
	Rank  int     `json:"rank"`
}

// cellSpec is the cache key of one cell: everything result-affecting and
// nothing else (worker counts and shard counts beyond "sharded or not"
// never change bytes).
type cellSpec struct {
	V          int     `json:"v"`
	Switches   int     `json:"switches"`
	Supernodes int     `json:"supernodes"`
	Ports      int     `json:"ports"`
	Topo       string  `json:"topo"`
	Scheme     string  `json:"scheme"`
	Util       float64 `json:"util"`
	WindowSec  float64 `json:"window_sec"`
	MaxFlows   int     `json:"max_flows"`
	Trials     int     `json:"trials"`
	MaxPairs   int     `json:"max_pairs"`
	LiveFlows  int     `json:"live_flows"`
	Seed       int64   `json:"seed"`
	Sharded    bool    `json:"sharded"`
}

func (c Config) cellSpec(topo, scheme string) cellSpec {
	return cellSpec{
		V: specVersion, Switches: c.Switches, Supernodes: c.Supernodes,
		Ports: c.Ports, Topo: topo, Scheme: scheme, Util: c.Util,
		WindowSec: c.WindowSec, MaxFlows: c.MaxFlows, Trials: c.Trials,
		MaxPairs: c.MaxPairs, LiveFlows: c.LiveFlows, Seed: c.Seed,
		Sharded: c.Shards > 0,
	}
}

// SpecHash is the reproducibility stamp printed on the scorecard: the
// content hash of the full resolved matrix spec. Two runs with equal
// hashes produce byte-identical scorecards.
func (c Config) SpecHash() (string, error) {
	type matrixSpec struct {
		Cells []cellSpec `json:"cells"`
	}
	var m matrixSpec
	for _, topo := range c.topos() {
		for _, scheme := range c.schemesFor(topo) {
			m.Cells = append(m.Cells, c.cellSpec(topo, scheme))
		}
	}
	return store.Key(m)
}

// buildFabric constructs one bake-off fabric on the config's equipment
// budget. Every topology starts from the same DRing geometry: the DRing
// itself is the reference, the RRG is its §5.1 equipment match, and the
// flat extras get the same switch count and radix with the network degree
// chosen so the server total matches.
func buildFabric(cfg Config, topo string) (*topology.Graph, error) {
	dspec := topology.BalancedDRing(cfg.Switches, cfg.Supernodes, cfg.Ports)
	if err := dspec.Validate(); err != nil {
		return nil, fmt.Errorf("bakeoff: dring budget: %w", err)
	}
	dr, err := topology.DRing(dspec)
	if err != nil {
		return nil, fmt.Errorf("bakeoff: dring: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	switch topo {
	case "dring":
		return dr, nil
	case "rrg":
		g, err := core.MatchedRRG(dr, rng)
		if err != nil {
			return nil, fmt.Errorf("bakeoff: rrg: %w", err)
		}
		return g, nil
	case "xpander", "debruijn", "rng":
		n := dr.N()
		perSwitch := (dr.Servers() + n - 1) / n
		g, err := core.FlatFabric(topo, n, cfg.Ports-perSwitch, cfg.Ports, dr.Servers(), rng)
		if err != nil {
			return nil, fmt.Errorf("bakeoff: %s: %w", topo, err)
		}
		return g, nil
	default:
		return nil, fmt.Errorf("bakeoff: unknown topology %q (want dring, rrg, xpander, debruijn or rng)", topo)
	}
}

// udfOf scores the fabric's mean NSR against the paper's leaf-spine(48,16)
// analytic baseline (§3.1): UDF 2 means twice the per-server network
// capacity of the reference leaf-spine.
func udfOf(g *topology.Graph) (float64, error) {
	nsr, err := topology.NSR(g)
	if err != nil {
		return 0, err
	}
	base, _, _ := topology.UDFLeafSpineAnalytic(topology.PaperLeafSpine)
	return nsr.Mean / base, nil
}

// serverPairs pairs servers along a seeded random permutation ring, so
// src != dst always and every server sources at most one flow.
func serverPairs(servers, maxPairs int, rng *rand.Rand) [][2]int {
	perm := rng.Perm(servers)
	n := servers
	if maxPairs > 0 && maxPairs < n {
		n = maxPairs
	}
	pairs := make([][2]int, n)
	for i := 0; i < n; i++ {
		pairs[i] = [2]int{perm[i], perm[(i+1)%servers]}
	}
	return pairs
}

// measureCell computes one cell's numbers on an already-built fabric.
func measureCell(cfg Config, topo, scheme string, g *topology.Graph) (Cell, error) {
	cell := Cell{
		Topo: topo, Scheme: scheme,
		Switches: g.N(), Servers: g.Servers(),
	}
	for v := 0; v < g.N(); v++ {
		if d := g.NetworkDegree(v); d > cell.Degree {
			cell.Degree = d
		}
	}

	udf, err := udfOf(g)
	if err != nil {
		return Cell{}, fmt.Errorf("bakeoff: %s udf: %w", topo, err)
	}
	cell.UDF = udf

	combo, err := core.NewCombo(topo+"/"+scheme, g, scheme)
	if err != nil {
		return Cell{}, fmt.Errorf("bakeoff: %s: %w", topo, err)
	}

	// One classed packet-simulator run yields both the FCT distribution
	// and the per-class SLA attainment. The capacity reference is half the
	// fabric's aggregate server bandwidth (the Figure 6 rule), so cells
	// with different switch counts see the same per-server offered load.
	fct := core.DefaultFCTConfig()
	fct.Util = cfg.Util
	fct.WindowSec = cfg.WindowSec
	fct.Seed = cfg.Seed
	fct.MaxFlows = cfg.MaxFlows
	fct.Trials = cfg.Trials
	fct.Shards = cfg.Shards
	fct.Audit = cfg.Audit
	fct.JobClasses = workload.ThreeTier()
	fct.CapacityBps = float64(g.Servers()) * fct.Net.LinkRateBps / 2
	fs := &core.FabricSet{LeafSpineSpec: topology.LeafSpineSpec{X: 1, Y: 1}} // unused with CapacityBps set
	res, err := core.RunFCT(fs, combo, core.TMA2A, fct)
	if err != nil {
		return Cell{}, fmt.Errorf("bakeoff: %s/%s fct: %w", topo, scheme, err)
	}
	cell.Flows = res.Flows
	cell.MedianMS = res.Stats.MedianMS
	cell.P99MS = res.Stats.P99MS
	cell.Classes = res.Classes
	cell.SLAMin = math.Inf(1)
	for _, cl := range res.Classes {
		cell.SLAMin = math.Min(cell.SLAMin, cl.SLAAttained)
	}

	// Max-min fair throughput of long flows over a seeded random
	// permutation of servers (§6.2 methodology), normalized to the NIC
	// rate so 1.0 means every flow runs at line rate.
	fcfg := flowsim.DefaultConfig()
	pairs := serverPairs(g.Servers(), cfg.MaxPairs, rand.New(rand.NewSource(cfg.Seed)))
	_, agg, err := flowsim.Throughput(g, combo.Scheme, pairs, fcfg)
	if err != nil {
		return Cell{}, fmt.Errorf("bakeoff: %s/%s throughput: %w", topo, scheme, err)
	}
	cell.TputNorm = agg / (float64(len(pairs)) * fcfg.LinkRateBps)

	// Live fault injection with the resilience defaults. Reroutes come
	// from SU(K) path diversity inside the resilience package for every
	// fabric — self-routing has no reroute story, so the resilience score
	// is a property of the topology, shared by its schemes.
	lc := resilience.DefaultLiveConfig()
	lc.Seed = cfg.Seed
	lc.Shards = cfg.Shards
	lc.Audit = cfg.Audit
	if cfg.LiveFlows > 0 {
		lc.Flows = cfg.LiveFlows
	}
	live, err := resilience.RunLive(g, lc)
	if err != nil {
		return Cell{}, fmt.Errorf("bakeoff: %s resilience: %w", topo, err)
	}
	cell.BlackholeMS = float64(live.MeasuredBlackholeNS) / 1e6
	cell.LiveCompleted = live.Completed
	cell.LiveIncomplete = live.Incomplete

	return cell, nil
}

// Run executes the bake-off matrix and returns the ranked scorecard.
// Cells run in parallel across cfg.Workers and are cached one at a time
// through cfg.StoreDir; results are byte-identical at any worker count and
// at any shard count >= 1.
func Run(cfg Config) (*Scorecard, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cache, err := memo.Open(cfg.StoreDir, "bakeoff", cfg.Logf)
	if err != nil {
		return nil, err
	}
	defer cache.Close()

	type cellKey struct{ topo, scheme string }
	var keys []cellKey
	fabrics := make(map[string]*topology.Graph)
	for _, topo := range cfg.topos() {
		g, err := buildFabric(cfg, topo)
		if err != nil {
			return nil, err
		}
		fabrics[topo] = g
		for _, scheme := range cfg.schemesFor(topo) {
			keys = append(keys, cellKey{topo, scheme})
		}
	}

	cells := make([]Cell, len(keys))
	err = parallel.ForEach(cfg.Workers, len(keys), func(i int) error {
		k := keys[i]
		label := k.topo + "/" + k.scheme
		cell, err := memo.Do(cache, label, cfg.cellSpec(k.topo, k.scheme), func() (Cell, error) {
			return measureCell(cfg, k.topo, k.scheme, fabrics[k.topo])
		})
		if err != nil {
			return err
		}
		cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}

	hash, err := cfg.SpecHash()
	if err != nil {
		return nil, err
	}
	sc := &Scorecard{
		SpecHash:   hash,
		Switches:   cfg.Switches,
		Supernodes: cfg.Supernodes,
		Ports:      cfg.Ports,
		Cells:      cells,
	}
	sc.score()
	return sc, nil
}

// sortCanonical orders cells topology-first in AllTopologies order, then
// by scheme name — the total order used for every tie-break.
func sortCanonical(cells []Cell) {
	topoIdx := func(name string) int {
		for i, t := range AllTopologies {
			if t == name {
				return i
			}
		}
		return len(AllTopologies)
	}
	sort.SliceStable(cells, func(i, j int) bool {
		if a, b := topoIdx(cells[i].Topo), topoIdx(cells[j].Topo); a != b {
			return a < b
		}
		return cells[i].Scheme < cells[j].Scheme
	})
}
