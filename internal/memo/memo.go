// Package memo gives the command-line drivers (fig4, fig5, fig6,
// failures) a shared -store cache: each driver describes a cell of its
// figure as a small JSON spec, and memo wraps store.Memoize with per-cell
// hit/miss logging and a tool tag so different drivers' cells can share
// one store directory without key collisions.
package memo

import (
	"spineless/internal/store"
)

// Cache is an optional content-addressed result cache for one driver.
// The zero value (and any nil *Cache) is disabled: every cell computes.
type Cache struct {
	st   *store.Store
	tool string
	logf func(format string, args ...any)
}

// Open opens (or creates) the store at dir for the named tool. An empty
// dir returns a disabled cache; logf may be nil.
func Open(dir, tool string, logf func(format string, args ...any)) (*Cache, error) {
	if dir == "" {
		return nil, nil
	}
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return nil, err
	}
	return &Cache{st: st, tool: tool, logf: logf}, nil
}

// Close flushes the store index. Safe on a disabled cache.
func (c *Cache) Close() error {
	if c == nil || c.st == nil {
		return nil
	}
	return c.st.Close()
}

// envelope namespaces a driver's cell spec under its tool tag, so fig4 and
// fig6 cells with coincidentally equal specs never share a hash.
type envelope struct {
	Tool string `json:"tool"`
	Spec any    `json:"spec"`
}

// Do memoizes one cell: on a hit the value is decoded from the committed
// bytes, on a miss compute runs and its result is committed. label is only
// for the hit/miss log line.
func Do[T any](c *Cache, label string, spec any, compute func() (T, error)) (T, error) {
	if c == nil || c.st == nil {
		return compute()
	}
	v, outcome, err := store.Memoize(c.st, envelope{Tool: c.tool, Spec: spec}, compute)
	if err == nil && c.logf != nil {
		c.logf("cache %-4s %s", outcome, label)
	}
	return v, err
}
