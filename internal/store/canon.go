// Package store is spinelessd's content-addressed result cache: experiment
// results keyed by the SHA-256 of a canonical JSON encoding of the full
// experiment spec. Because every experiment in this tree is deterministic
// given its spec (the PR-2 lint contract, the PR-3 parallel-engine
// contract), a cache hit is semantically identical to a re-run — the store
// is a pure memoization layer, and spinelessd's sampled re-execution audit
// (internal/jobs) keeps that equivalence honest at runtime.
//
// On disk a store is a directory of immutable entry files committed by
// atomic rename, plus a best-effort index carrying logical-clock recency
// for LRU size capping. Every load path is corruption-tolerant: a torn,
// truncated or hand-edited entry demotes to a cache miss, never an error.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
)

// Canonical returns the canonical JSON encoding of v: object keys sorted,
// no insignificant whitespace, number literals preserved verbatim. Two
// specs that encode to the same canonical bytes are the same experiment;
// the encoding is the store's hash preimage, so it must be stable across
// struct field reordering and map iteration order.
func Canonical(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("store: encoding spec: %w", err)
	}
	return CanonicalBytes(raw)
}

// CanonicalBytes canonicalizes an existing JSON document (see Canonical).
// Numbers round-trip as json.Number so int64 seeds above 2^53 survive
// exactly instead of being flattened through float64.
func CanonicalBytes(raw []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("store: parsing spec JSON: %w", err)
	}
	// Reject trailing garbage: "{}x" must not canonicalize to "{}".
	if dec.More() {
		return nil, fmt.Errorf("store: spec JSON has trailing data")
	}
	var b bytes.Buffer
	if err := writeCanonical(&b, v); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// writeCanonical renders the decoded document with sorted object keys.
// encoding/json already sorts map keys, but re-implementing the walk keeps
// the output byte-stable by construction (compact, HTML escaping applied
// uniformly via json.Marshal on leaves) rather than by implementation
// accident.
func writeCanonical(b *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			kb, err := json.Marshal(k)
			if err != nil {
				return fmt.Errorf("store: encoding key %q: %w", k, err)
			}
			b.Write(kb)
			b.WriteByte(':')
			if err := writeCanonical(b, x[k]); err != nil {
				return err
			}
		}
		b.WriteByte('}')
	case []any:
		b.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				b.WriteByte(',')
			}
			if err := writeCanonical(b, e); err != nil {
				return err
			}
		}
		b.WriteByte(']')
	case json.Number:
		b.WriteString(x.String())
	default:
		eb, err := json.Marshal(x)
		if err != nil {
			return fmt.Errorf("store: encoding leaf: %w", err)
		}
		b.Write(eb)
	}
	return nil
}

// Key returns the store key for a spec: the lowercase hex SHA-256 of its
// canonical JSON encoding.
func Key(spec any) (string, error) {
	c, err := Canonical(spec)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}

// KeyBytes is Key over an already-encoded JSON spec document.
func KeyBytes(raw []byte) (string, error) {
	c, err := CanonicalBytes(raw)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}

// ValidKey reports whether s is syntactically a store key (64 hex bytes),
// used by the HTTP layer to reject path garbage before touching the disk.
func ValidKey(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
