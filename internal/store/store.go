package store

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Options tunes an on-disk store.
type Options struct {
	// MaxBytes caps the total size of committed entry files; once exceeded,
	// least-recently-used entries are evicted until the store fits.
	// 0 means unbounded.
	MaxBytes int64
}

// Entry is one committed result: the spec that produced it and the result
// document, both verbatim JSON.
type Entry struct {
	Spec   json.RawMessage `json:"spec"`
	Result json.RawMessage `json:"result"`
}

// envelope is the on-disk entry file layout. The hash is recorded
// redundantly so a file inspected by hand identifies itself, and so loads
// can verify the content still matches its address.
type envelope struct {
	Hash   string          `json:"hash"`
	Spec   json.RawMessage `json:"spec"`
	Result json.RawMessage `json:"result"`
}

// Counters is a point-in-time snapshot of store activity.
type Counters struct {
	Hits      uint64
	Misses    uint64
	Puts      uint64
	Evictions uint64
	Corrupt   uint64 // entries demoted to misses by a failed integrity check
	Entries   int
	Bytes     int64
}

type entryMeta struct {
	Size int64  `json:"size"`
	Used uint64 `json:"used"` // logical recency clock at last access
}

// Store is a content-addressed on-disk result cache. All methods are safe
// for concurrent use; entry files are immutable once committed (rename is
// the commit point), so readers never observe a torn entry.
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	clock   uint64
	entries map[string]*entryMeta
	total   int64
	dirty   int // in-memory recency updates not yet flushed to the index
	c       Counters
}

const (
	objectsDir = "objects"
	tmpDir     = "tmp"
	indexFile  = "index.json"
	// indexFlushEvery bounds how many recency-only updates may be lost to a
	// crash before the index is rewritten (losing them is benign: eviction
	// order degrades, correctness does not).
	indexFlushEvery = 32
)

// Open opens (or creates) the store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	for _, sub := range []string{objectsDir, tmpDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s := &Store{dir: dir, maxBytes: opts.MaxBytes, entries: map[string]*entryMeta{}}
	if !s.loadIndex() {
		if err := s.rebuildIndex(); err != nil {
			return nil, err
		}
	}
	for _, m := range s.entries {
		s.total += m.Size
	}
	s.c.Entries = len(s.entries)
	s.c.Bytes = s.total
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// loadIndex restores entry metadata from the index file; any problem —
// missing file, torn write, schema drift — reports false so Open falls back
// to a directory scan.
func (s *Store) loadIndex() bool {
	raw, err := os.ReadFile(filepath.Join(s.dir, indexFile))
	if err != nil {
		return false
	}
	var idx struct {
		Clock   uint64                `json:"clock"`
		Entries map[string]*entryMeta `json:"entries"`
	}
	if err := json.Unmarshal(raw, &idx); err != nil || idx.Entries == nil {
		return false
	}
	for h := range idx.Entries {
		if !ValidKey(h) {
			return false
		}
	}
	s.clock = idx.Clock
	s.entries = idx.Entries
	return true
}

// rebuildIndex reconstructs metadata by scanning objects/. Recency is lost;
// entries restart with equal (zero) recency and evict in hash order until
// touched again.
func (s *Store) rebuildIndex() error {
	s.entries = map[string]*entryMeta{}
	root := filepath.Join(s.dir, objectsDir)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		hash := name[:len(name)-len(filepath.Ext(name))]
		if !ValidKey(hash) {
			return nil // stray file; ignore
		}
		info, err := d.Info()
		if err != nil {
			return nil // raced with eviction; skip
		}
		s.entries[hash] = &entryMeta{Size: info.Size()}
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: scanning %s: %w", root, err)
	}
	return nil
}

// flushIndexLocked rewrites the index file atomically. Callers hold s.mu.
func (s *Store) flushIndexLocked() {
	idx := struct {
		Clock   uint64                `json:"clock"`
		Entries map[string]*entryMeta `json:"entries"`
	}{Clock: s.clock, Entries: s.entries}
	raw, err := json.Marshal(idx)
	if err != nil {
		return // metadata only; next Open rescans
	}
	tmp, err := os.CreateTemp(filepath.Join(s.dir, tmpDir), "index.*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, filepath.Join(s.dir, indexFile)); err != nil {
		os.Remove(name)
	}
	s.dirty = 0
}

func (s *Store) entryPath(hash string) string {
	return filepath.Join(s.dir, objectsDir, hash[:2], hash+".json")
}

// Get returns the committed entry for hash, if any. A missing, torn or
// hash-mismatched entry file is a cache miss (the offender is removed), so
// a corrupted store heals by re-running instead of failing.
func (s *Store) Get(hash string) (Entry, bool) {
	s.mu.Lock()
	_, known := s.entries[hash]
	s.mu.Unlock()
	if !known {
		s.miss()
		return Entry{}, false
	}
	raw, err := os.ReadFile(s.entryPath(hash))
	if err != nil {
		s.drop(hash, false)
		s.miss()
		return Entry{}, false
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Hash != hash ||
		len(env.Spec) == 0 || len(env.Result) == 0 || !specMatches(env.Spec, hash) {
		s.drop(hash, true)
		s.miss()
		return Entry{}, false
	}
	s.mu.Lock()
	if m, ok := s.entries[hash]; ok {
		s.clock++
		m.Used = s.clock
		s.dirty++
		if s.dirty >= indexFlushEvery {
			s.flushIndexLocked()
		}
	}
	s.c.Hits++
	s.mu.Unlock()
	return Entry{Spec: env.Spec, Result: env.Result}, true
}

// specMatches verifies the stored spec still canonicalizes to the entry's
// address — the content-addressed integrity check.
func specMatches(spec json.RawMessage, hash string) bool {
	k, err := KeyBytes(spec)
	return err == nil && k == hash
}

func (s *Store) miss() {
	s.mu.Lock()
	s.c.Misses++
	s.mu.Unlock()
}

// drop removes a broken entry (file and metadata).
func (s *Store) drop(hash string, corrupt bool) {
	s.mu.Lock()
	if m, ok := s.entries[hash]; ok {
		s.total -= m.Size
		delete(s.entries, hash)
	}
	if corrupt {
		s.c.Corrupt++
	}
	s.flushIndexLocked()
	s.mu.Unlock()
	os.Remove(s.entryPath(hash))
}

// Put commits (spec, result) under hash. The write is atomic — a temp file
// in the store's own filesystem renamed onto the final path — so concurrent
// writers of the same hash race harmlessly: every rename installs identical
// bytes and the index counts the entry exactly once. The spec must
// canonicalize to hash (callers derive hash via Key on the same spec).
func (s *Store) Put(hash string, spec, result json.RawMessage) error {
	if !ValidKey(hash) {
		return fmt.Errorf("store: invalid key %q", hash)
	}
	if !specMatches(spec, hash) {
		return fmt.Errorf("store: spec does not hash to %s", hash)
	}
	if !json.Valid(result) {
		return fmt.Errorf("store: result for %s is not valid JSON", hash)
	}
	raw, err := json.Marshal(envelope{Hash: hash, Spec: spec, Result: result})
	if err != nil {
		return fmt.Errorf("store: encoding entry %s: %w", hash, err)
	}
	dst := s.entryPath(hash)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Join(s.dir, tmpDir), hash[:8]+".*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("store: writing entry %s: %w", hash, err)
	}
	// Sync before rename: the commit point must not expose a file whose
	// bytes are still only in the page cache when the daemon is SIGKILLed.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("store: syncing entry %s: %w", hash, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(name, dst); err != nil {
		os.Remove(name)
		return fmt.Errorf("store: committing entry %s: %w", hash, err)
	}

	s.mu.Lock()
	s.clock++
	if old, ok := s.entries[hash]; ok {
		// Concurrent writer already counted this entry; refresh recency and
		// size (identical content, but sizes could differ if result JSON
		// formatting ever changes between versions).
		s.total += int64(len(raw)) - old.Size
		old.Size = int64(len(raw))
		old.Used = s.clock
	} else {
		s.entries[hash] = &entryMeta{Size: int64(len(raw)), Used: s.clock}
		s.total += int64(len(raw))
	}
	s.c.Puts++
	s.evictLocked()
	s.flushIndexLocked()
	s.mu.Unlock()
	return nil
}

// evictLocked removes least-recently-used entries until the store fits
// MaxBytes. Ties (e.g. after an index rebuild zeroed recency) break by hash
// so eviction order is deterministic. Callers hold s.mu.
func (s *Store) evictLocked() {
	if s.maxBytes <= 0 || s.total <= s.maxBytes {
		return
	}
	type cand struct {
		hash string
		m    *entryMeta
	}
	cands := make([]cand, 0, len(s.entries))
	for h, m := range s.entries {
		cands = append(cands, cand{h, m})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].m.Used != cands[j].m.Used {
			return cands[i].m.Used < cands[j].m.Used
		}
		return cands[i].hash < cands[j].hash
	})
	for _, c := range cands {
		if s.total <= s.maxBytes {
			break
		}
		s.total -= c.m.Size
		delete(s.entries, c.hash)
		s.c.Evictions++
		os.Remove(s.entryPath(c.hash))
	}
}

// Invalidate removes the entry for hash, if present. It is the sampled
// re-execution audit's mismatch path: an entry whose stored result no
// longer matches a fresh run of its spec is evidence of corruption (or a
// determinism regression) and must not be served again.
func (s *Store) Invalidate(hash string) {
	if ValidKey(hash) {
		s.drop(hash, true)
	}
}

// Len returns the number of committed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Snapshot returns current activity counters.
func (s *Store) Snapshot() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.c
	c.Entries = len(s.entries)
	c.Bytes = s.total
	return c
}

// Hashes returns the committed keys in sorted order (diagnostics, audit
// sampling).
func (s *Store) Hashes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.entries))
	for h := range s.entries {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Close flushes the index. The store is unusable afterwards only by
// convention; there is no open file state to tear down.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushIndexLocked()
	return nil
}

// Outcome classifies one Memoize call.
type Outcome int

const (
	// OutcomeBypass: no store configured; computed directly.
	OutcomeBypass Outcome = iota
	// OutcomeHit: served from the cache without computing.
	OutcomeHit
	// OutcomeMiss: computed and committed to the cache.
	OutcomeMiss
	// OutcomeUncacheable: computed, but the result could not be encoded or
	// committed (e.g. NaN statistics, a read-only store directory); the
	// returned value is still valid.
	OutcomeUncacheable
)

// String renders the outcome for per-cell hit/miss logging.
func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeMiss:
		return "miss"
	case OutcomeUncacheable:
		return "uncacheable"
	default:
		return "bypass"
	}
}

// Memoize returns the cached result for spec, computing and committing it
// on a miss. A nil store computes directly (OutcomeBypass). On a hit the
// value is decoded from the committed bytes, so hit and miss observers see
// results that round-trip through the identical JSON document.
func Memoize[T any](st *Store, spec any, compute func() (T, error)) (T, Outcome, error) {
	var zero T
	if st == nil {
		v, err := compute()
		return v, OutcomeBypass, err
	}
	hash, err := Key(spec)
	if err != nil {
		return zero, OutcomeBypass, err
	}
	if e, ok := st.Get(hash); ok {
		var v T
		if err := json.Unmarshal(e.Result, &v); err == nil {
			return v, OutcomeHit, nil
		}
		// Entry decodes as JSON but not as T (schema drift): recompute and
		// overwrite below.
	}
	v, err := compute()
	if err != nil {
		return zero, OutcomeMiss, err
	}
	specRaw, err := Canonical(spec)
	if err != nil {
		return v, OutcomeUncacheable, nil
	}
	resRaw, err := json.Marshal(v)
	if err != nil {
		return v, OutcomeUncacheable, nil
	}
	if err := st.Put(hash, specRaw, resRaw); err != nil {
		return v, OutcomeUncacheable, nil
	}
	return v, OutcomeMiss, nil
}
