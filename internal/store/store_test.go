package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

func TestCanonicalKeyStability(t *testing.T) {
	// Field order and map order must not matter.
	a := map[string]any{"seed": int64(1), "util": 0.3, "tm": "A2A"}
	b := map[string]any{"tm": "A2A", "util": 0.3, "seed": int64(1)}
	ka, err := Key(a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := Key(b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("map order changed the key: %s vs %s", ka, kb)
	}
	if !ValidKey(ka) {
		t.Fatalf("key %q not 64 hex bytes", ka)
	}

	type s1 struct {
		Seed int64   `json:"seed"`
		Util float64 `json:"util"`
		TM   string  `json:"tm"`
	}
	type s2 struct {
		TM   string  `json:"tm"`
		Seed int64   `json:"seed"`
		Util float64 `json:"util"`
	}
	k1, err := Key(s1{1, 0.3, "A2A"})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key(s2{"A2A", 1, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 || k1 != ka {
		t.Fatalf("struct field order changed the key: %s %s %s", k1, k2, ka)
	}
}

func TestCanonicalPreservesBigInt64(t *testing.T) {
	// Seeds above 2^53 must survive canonicalization exactly (a float64
	// round-trip would corrupt them).
	seed := int64(1<<62 + 12345)
	c, err := Canonical(map[string]any{"seed": seed})
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(`{"seed":%d}`, seed)
	if string(c) != want {
		t.Fatalf("canonical = %s, want %s", c, want)
	}
}

func TestCanonicalRejectsTrailingGarbage(t *testing.T) {
	if _, err := CanonicalBytes([]byte(`{"a":1} extra`)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func mustKey(t *testing.T, spec any) (string, json.RawMessage) {
	t.Helper()
	h, err := Key(spec)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Canonical(spec)
	if err != nil {
		t.Fatal(err)
	}
	return h, raw
}

func TestPutGetRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := map[string]any{"exp": "fct", "seed": int64(7)}
	hash, specRaw := mustKey(t, spec)
	result := json.RawMessage(`{"p99":1.25,"flows":120}`)

	if _, ok := st.Get(hash); ok {
		t.Fatal("hit before put")
	}
	if err := st.Put(hash, specRaw, result); err != nil {
		t.Fatal(err)
	}
	e, ok := st.Get(hash)
	if !ok {
		t.Fatal("miss after put")
	}
	if string(e.Result) != string(result) {
		t.Fatalf("result = %s, want %s", e.Result, result)
	}
	c := st.Snapshot()
	if c.Hits != 1 || c.Misses != 1 || c.Puts != 1 || c.Entries != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestPutRejectsMismatchedSpec(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	hash, _ := mustKey(t, map[string]any{"a": 1})
	if err := st.Put(hash, json.RawMessage(`{"a":2}`), json.RawMessage(`{}`)); err == nil {
		t.Fatal("mismatched spec accepted")
	}
	if err := st.Put("nothex", json.RawMessage(`{}`), json.RawMessage(`{}`)); err == nil {
		t.Fatal("invalid key accepted")
	}
}

func TestCorruptEntryDemotesToMiss(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hash, specRaw := mustKey(t, map[string]any{"x": 1})
	if err := st.Put(hash, specRaw, json.RawMessage(`{"v":42}`)); err != nil {
		t.Fatal(err)
	}
	// Truncate the committed file mid-document.
	path := filepath.Join(dir, "objects", hash[:2], hash+".json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(hash); ok {
		t.Fatal("torn entry served as a hit")
	}
	if st.Len() != 0 {
		t.Fatalf("broken entry not dropped: len=%d", st.Len())
	}
	if c := st.Snapshot(); c.Corrupt != 1 {
		t.Fatalf("corrupt counter = %d, want 1", c.Corrupt)
	}
	// The store heals: a fresh Put works again.
	if err := st.Put(hash, specRaw, json.RawMessage(`{"v":42}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(hash); !ok {
		t.Fatal("miss after re-put")
	}
}

func TestTamperedSpecDemotesToMiss(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hash, specRaw := mustKey(t, map[string]any{"x": 1})
	if err := st.Put(hash, specRaw, json.RawMessage(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	// Hand-edit the spec so it no longer hashes to its address.
	path := filepath.Join(dir, "objects", hash[:2], hash+".json")
	edited := []byte(fmt.Sprintf(`{"hash":%q,"spec":{"x":2},"result":{"v":1}}`, hash))
	if err := os.WriteFile(path, edited, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(hash); ok {
		t.Fatal("tampered entry served as a hit")
	}
}

func TestReopenRestoresEntries(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hash, specRaw := mustKey(t, map[string]any{"k": "v"})
	if err := st.Put(hash, specRaw, json.RawMessage(`{"r":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Get(hash); !ok {
		t.Fatal("entry lost across reopen")
	}

	// A deleted index must rebuild from the objects scan.
	if err := os.Remove(filepath.Join(dir, "index.json")); err != nil {
		t.Fatal(err)
	}
	st3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st3.Get(hash); !ok {
		t.Fatal("entry lost after index rebuild")
	}
}

func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	// Size one entry, then cap the store at roughly three of them.
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	put := func(st *Store, i int) string {
		t.Helper()
		spec := map[string]any{"i": i}
		hash, specRaw := mustKey(t, spec)
		if err := st.Put(hash, specRaw, json.RawMessage(`{"v":"0123456789"}`)); err != nil {
			t.Fatal(err)
		}
		return hash
	}
	h0 := put(st, 0)
	sz := st.Snapshot().Bytes
	st.Close()

	st, err = Open(dir, Options{MaxBytes: 3*sz + sz/2})
	if err != nil {
		t.Fatal(err)
	}
	h1, h2 := put(st, 1), put(st, 2) // 3 entries: fits the 3.5-entry cap
	// Touch h1 so h2 is the LRU candidate once h0 (oldest, recency restored
	// from the index) is gone.
	if _, ok := st.Get(h1); !ok {
		t.Fatal("h1 missing")
	}
	h3 := put(st, 3) // exceeds cap → evict h0
	if _, ok := st.Get(h0); ok {
		t.Fatal("h0 survived eviction")
	}
	put(st, 4) // exceeds cap again → evict h2 (h1 was touched)
	if _, ok := st.Get(h2); ok {
		t.Fatal("h2 survived eviction despite being LRU")
	}
	if _, ok := st.Get(h1); !ok {
		t.Fatal("recently-used h1 evicted")
	}
	if _, ok := st.Get(h3); !ok {
		t.Fatal("h3 evicted out of order")
	}
	if c := st.Snapshot(); c.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", c.Evictions)
	}
}

// TestConcurrentSameHashWriters is the satellite regression test: parallel
// writers of the same hash must produce exactly one committed entry, and
// concurrent readers must never observe a torn file — every read is either
// a miss or the complete, valid entry.
func TestConcurrentSameHashWriters(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := map[string]any{"exp": "race", "seed": int64(1)}
	hash, specRaw := mustKey(t, spec)
	result := json.RawMessage(`{"payload":"` + string(make([]byte, 0)) + `0123456789abcdef"}`)

	const writers, readers, rounds = 8, 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := st.Put(hash, specRaw, result); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}()
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds*4; r++ {
				e, ok := st.Get(hash)
				if !ok {
					continue // miss is legal before the first commit
				}
				if string(e.Result) != string(result) {
					t.Errorf("torn/wrong read: %q", e.Result)
					return
				}
			}
		}()
	}
	wg.Wait()

	if st.Len() != 1 {
		t.Fatalf("entries = %d, want exactly 1", st.Len())
	}
	// Exactly one file on disk, no leaked temp files.
	var files []string
	filepath.Walk(filepath.Join(dir, "objects"), func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			files = append(files, p)
		}
		return nil
	})
	if len(files) != 1 {
		t.Fatalf("object files = %v, want exactly one", files)
	}
	tmps, _ := os.ReadDir(filepath.Join(dir, "tmp"))
	if len(tmps) != 0 {
		t.Fatalf("%d temp files leaked", len(tmps))
	}
	if c := st.Snapshot(); c.Corrupt != 0 {
		t.Fatalf("corrupt reads observed: %+v", c)
	}
}

func TestMemoize(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		P99   float64 `json:"p99"`
		Flows int     `json:"flows"`
	}
	spec := map[string]any{"exp": "memo", "seed": int64(3)}
	calls := 0
	compute := func() (res, error) {
		calls++
		return res{P99: 1.5, Flows: 10}, nil
	}

	v1, o1, err := Memoize(st, spec, compute)
	if err != nil || o1 != OutcomeMiss || calls != 1 {
		t.Fatalf("first call: %v %v calls=%d", v1, o1, calls)
	}
	v2, o2, err := Memoize(st, spec, compute)
	if err != nil || o2 != OutcomeHit || calls != 1 {
		t.Fatalf("second call: %v %v calls=%d err=%v", v2, o2, calls, err)
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Fatalf("hit differs from miss: %+v vs %+v", v1, v2)
	}

	// nil store bypasses.
	_, o3, err := Memoize(nil, spec, compute)
	if err != nil || o3 != OutcomeBypass || calls != 2 {
		t.Fatalf("bypass: %v calls=%d", o3, calls)
	}

	// NaN results are uncacheable but still returned.
	nan := func() (map[string]float64, error) {
		return map[string]float64{"v": nanValue()}, nil
	}
	_, o4, err := Memoize(st, map[string]any{"exp": "nan"}, nan)
	if err != nil || o4 != OutcomeUncacheable {
		t.Fatalf("nan outcome = %v err=%v", o4, err)
	}
}

// nanValue builds a NaN without a float-literal division the floateq
// checker might one day frown at.
func nanValue() float64 {
	zero := 0.0
	return zero / zero //lint:allow floateq
}
