// Package trace imports and exports the experiment artifacts as CSV:
// rack-level traffic matrices (so operators can replay their own telemetry
// instead of the synthetic FB-like stand-ins), generated flow sets, and
// per-flow completion times. All formats are plain CSV with a header row,
// written deterministically.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"spineless/internal/workload"
)

// WriteMatrix emits a rack-level matrix as CSV: header "src\dst,0,1,..."
// then one row per source rack.
func WriteMatrix(w io.Writer, m *workload.Matrix) error {
	if err := m.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	n := m.N()
	head := make([]string, n+1)
	head[0] = `src\dst`
	for j := 0; j < n; j++ {
		head[j+1] = strconv.Itoa(j)
	}
	if err := cw.Write(head); err != nil {
		return err
	}
	row := make([]string, n+1)
	for i := 0; i < n; i++ {
		row[0] = strconv.Itoa(i)
		for j := 0; j < n; j++ {
			row[j+1] = strconv.FormatFloat(m.W[i][j], 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadMatrix parses a matrix written by WriteMatrix (or any CSV with the
// same shape: a header row plus n rows of n+1 cells).
func ReadMatrix(r io.Reader, name string) (*workload.Matrix, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("trace: matrix CSV needs a header and at least one row")
	}
	n := len(records) - 1
	if len(records[0]) != n+1 {
		return nil, fmt.Errorf("trace: matrix CSV header has %d columns for %d rows", len(records[0]), n)
	}
	m := workload.NewMatrix(name, n)
	for i, rec := range records[1:] {
		if len(rec) != n+1 {
			return nil, fmt.Errorf("trace: row %d has %d cells, want %d", i, len(rec), n+1)
		}
		for j := 0; j < n; j++ {
			v, err := strconv.ParseFloat(rec[j+1], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: row %d col %d: %w", i, j, err)
			}
			m.W[i][j] = v
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// WriteFlows emits a flow set: id,src,dst,bytes,start_ns.
func WriteFlows(w io.Writer, flows []workload.Flow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "src", "dst", "bytes", "start_ns"}); err != nil {
		return err
	}
	for _, f := range flows {
		if err := cw.Write([]string{
			strconv.FormatUint(f.ID, 10),
			strconv.Itoa(f.Src),
			strconv.Itoa(f.Dst),
			strconv.FormatInt(f.SizeBytes, 10),
			strconv.FormatInt(f.StartNS, 10),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadFlows parses a flow set written by WriteFlows.
func ReadFlows(r io.Reader) ([]workload.Flow, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(records) == 0 || len(records[0]) != 5 {
		return nil, fmt.Errorf("trace: flow CSV needs the 5-column header")
	}
	flows := make([]workload.Flow, 0, len(records)-1)
	for i, rec := range records[1:] {
		if len(rec) != 5 {
			return nil, fmt.Errorf("trace: flow row %d has %d cells", i, len(rec))
		}
		id, err1 := strconv.ParseUint(rec[0], 10, 64)
		src, err2 := strconv.Atoi(rec[1])
		dst, err3 := strconv.Atoi(rec[2])
		size, err4 := strconv.ParseInt(rec[3], 10, 64)
		start, err5 := strconv.ParseInt(rec[4], 10, 64)
		for _, e := range []error{err1, err2, err3, err4, err5} {
			if e != nil {
				return nil, fmt.Errorf("trace: flow row %d: %w", i, e)
			}
		}
		flows = append(flows, workload.Flow{ID: id, Src: src, Dst: dst, SizeBytes: size, StartNS: start})
	}
	return flows, nil
}

// WriteFCTs emits per-flow completion times next to their flows:
// id,src,dst,bytes,start_ns,fct_ns (fct −1 = incomplete).
func WriteFCTs(w io.Writer, flows []workload.Flow, fctNS []int64) error {
	if len(flows) != len(fctNS) {
		return fmt.Errorf("trace: %d flows but %d FCTs", len(flows), len(fctNS))
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "src", "dst", "bytes", "start_ns", "fct_ns"}); err != nil {
		return err
	}
	for i, f := range flows {
		if err := cw.Write([]string{
			strconv.FormatUint(f.ID, 10),
			strconv.Itoa(f.Src),
			strconv.Itoa(f.Dst),
			strconv.FormatInt(f.SizeBytes, 10),
			strconv.FormatInt(f.StartNS, 10),
			strconv.FormatInt(fctNS[i], 10),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
