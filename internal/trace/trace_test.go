package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"spineless/internal/workload"
)

func TestMatrixRoundTrip(t *testing.T) {
	m := workload.FBSkewed(12, rand.New(rand.NewSource(6)))
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrix(&buf, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != m.N() {
		t.Fatalf("size %d, want %d", got.N(), m.N())
	}
	for i := range m.W {
		for j := range m.W {
			if got.W[i][j] != m.W[i][j] {
				t.Fatalf("cell (%d,%d): %v != %v", i, j, got.W[i][j], m.W[i][j])
			}
		}
	}
}

func TestWriteMatrixRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, workload.NewMatrix("zero", 3)); err == nil {
		t.Fatal("zero matrix written")
	}
}

func TestReadMatrixRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"src\\dst,0\n",                  // header only
		"src\\dst,0,1\n0,1,2\n",         // 1 row for a 2-col header... (n=1, header 3)
		"src\\dst,0\n0,abc\n",           // non-numeric
		"src\\dst,0,1\n0,0,1\n1,-1,0\n", // negative weight
	}
	for i, c := range cases {
		if _, err := ReadMatrix(strings.NewReader(c), "bad"); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestFlowsRoundTrip(t *testing.T) {
	flows := []workload.Flow{
		{ID: 1, Src: 0, Dst: 9, SizeBytes: 1000, StartNS: 0},
		{ID: 2, Src: 4, Dst: 2, SizeBytes: 1 << 30, StartNS: 123456789},
	}
	var buf bytes.Buffer
	if err := WriteFlows(&buf, flows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(flows) {
		t.Fatalf("flows = %d", len(got))
	}
	for i := range flows {
		if got[i] != flows[i] {
			t.Fatalf("flow %d: %+v != %+v", i, got[i], flows[i])
		}
	}
}

func TestReadFlowsRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"id,src,dst,bytes\n", // wrong header width
		"id,src,dst,bytes,start_ns\n1,2,3,x,5\n",
	}
	for i, c := range cases {
		if _, err := ReadFlows(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestWriteFCTs(t *testing.T) {
	flows := []workload.Flow{{ID: 7, Src: 1, Dst: 2, SizeBytes: 99, StartNS: 5}}
	var buf bytes.Buffer
	if err := WriteFCTs(&buf, flows, []int64{42}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fct_ns") || !strings.Contains(out, "7,1,2,99,5,42") {
		t.Fatalf("output: %q", out)
	}
	if err := WriteFCTs(&buf, flows, []int64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
