package flowsim

import (
	"math"
	"math/rand"
	"testing"

	"spineless/internal/routing"
	"spineless/internal/topology"
	"spineless/internal/workload"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// twoRackFabric: two ToRs joined by one link, two servers each.
func twoRackFabric(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.New("pair", 2, 3)
	if err := g.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	g.SetServers(0, 2)
	g.SetServers(1, 2)
	return g
}

func TestMaxMinSingleFlow(t *testing.T) {
	g := twoRackFabric(t)
	cfg := Config{LinkRateBps: 10e9}
	rates, err := MaxMin(g, []PathFlow{{Src: 0, Dst: 2, Path: []int{0, 1}}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(rates[0], 10e9, 1) {
		t.Fatalf("rate = %v, want 10e9", rates[0])
	}
}

func TestMaxMinHostNICLimits(t *testing.T) {
	g := twoRackFabric(t)
	cfg := Config{LinkRateBps: 10e9, HostRateBps: 1e9}
	rates, err := MaxMin(g, []PathFlow{{Src: 0, Dst: 2, Path: []int{0, 1}}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(rates[0], 1e9, 1) {
		t.Fatalf("rate = %v, want host-limited 1e9", rates[0])
	}
}

func TestMaxMinFairShare(t *testing.T) {
	g := twoRackFabric(t)
	cfg := Config{LinkRateBps: 10e9}
	// Two flows share the single inter-ToR link (distinct hosts).
	flows := []PathFlow{
		{Src: 0, Dst: 2, Path: []int{0, 1}},
		{Src: 1, Dst: 3, Path: []int{0, 1}},
	}
	rates, err := MaxMin(g, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rates {
		if !almost(r, 5e9, 1e3) {
			t.Fatalf("flow %d rate = %v, want 5e9", i, r)
		}
	}
}

func TestMaxMinClassicThreeFlows(t *testing.T) {
	// Classic water-filling: line fabric 0-1-2.
	// f1 crosses link A=0→1 only, f2 crosses A and B=1→2, f3 crosses B only.
	// With A=1 and B=2 units: f1=f2=0.5, f3=1.5.
	g := topology.New("line", 3, 4)
	if err := g.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(1, 2); err != nil {
		t.Fatal(err)
	}
	// Capacity trick: double the B link via a parallel link.
	if err := g.AddLink(1, 2); err != nil {
		t.Fatal(err)
	}
	g.SetServers(0, 2)
	g.SetServers(1, 2)
	g.SetServers(2, 2)
	// hosts: rack0 = {0,1}, rack1 = {2,3}, rack2 = {4,5}
	cfg := Config{LinkRateBps: 1e9, HostRateBps: 100e9}
	flows := []PathFlow{
		{Src: 0, Dst: 2, Path: []int{0, 1}},    // A only
		{Src: 1, Dst: 4, Path: []int{0, 1, 2}}, // A and B
		{Src: 3, Dst: 5, Path: []int{1, 2}},    // B only
	}
	rates, err := MaxMin(g, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5e9, 0.5e9, 1.5e9}
	for i := range want {
		if !almost(rates[i], want[i], 1e4) {
			t.Fatalf("rates = %v, want %v", rates, want)
		}
	}
}

func TestMaxMinParallelLinksAggregate(t *testing.T) {
	g := topology.New("dbl", 2, 4)
	for i := 0; i < 2; i++ {
		if err := g.AddLink(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	g.SetServers(0, 1)
	g.SetServers(1, 1)
	cfg := Config{LinkRateBps: 1e9, HostRateBps: 100e9}
	rates, err := MaxMin(g, []PathFlow{{Src: 0, Dst: 1, Path: []int{0, 1}}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(rates[0], 2e9, 1e3) {
		t.Fatalf("rate = %v, want aggregated 2e9", rates[0])
	}
}

func TestMaxMinErrors(t *testing.T) {
	g := twoRackFabric(t)
	cfg := DefaultConfig()
	if _, err := MaxMin(g, []PathFlow{{Src: 0, Dst: 0, Path: []int{0}}}, cfg); err == nil {
		t.Fatal("self flow accepted")
	}
	if _, err := MaxMin(g, []PathFlow{{Src: 0, Dst: 2, Path: nil}}, cfg); err == nil {
		t.Fatal("pathless flow accepted")
	}
	if _, err := MaxMin(g, []PathFlow{{Src: 0, Dst: 2, Path: []int{1, 0}}}, cfg); err == nil {
		t.Fatal("wrong-rack path accepted")
	}
	if _, err := MaxMin(g, []PathFlow{{Src: 0, Dst: 2, Path: []int{0, 1}}}, Config{}); err == nil {
		t.Fatal("zero link rate accepted")
	}
	// Path using a nonexistent link.
	g2 := topology.New("disc", 3, 4)
	if err := g2.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	g2.SetServers(0, 1)
	g2.SetServers(2, 1)
	if _, err := MaxMin(g2, []PathFlow{{Src: 0, Dst: 1, Path: []int{0, 2}}}, cfg); err == nil {
		t.Fatal("nonexistent link accepted")
	}
}

func TestThroughputLeafSpineUniform(t *testing.T) {
	spec := topology.LeafSpineSpec{X: 4, Y: 2}
	g, err := topology.LeafSpine(spec)
	if err != nil {
		t.Fatal(err)
	}
	ecmp := routing.NewECMP(g)
	rng := rand.New(rand.NewSource(3))
	// One flow per server to a random remote server.
	var pairs [][2]int
	n := g.Servers()
	for s := 0; s < n; s++ {
		d := rng.Intn(n)
		for d == s || g.RackOf(d) == g.RackOf(s) {
			d = rng.Intn(n)
		}
		pairs = append(pairs, [2]int{s, d})
	}
	rates, agg, err := Throughput(g, ecmp, pairs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != len(pairs) || agg <= 0 {
		t.Fatalf("rates=%d agg=%v", len(rates), agg)
	}
	// Aggregate cannot exceed total spine capacity ×2 (up+down) nor total
	// host capacity.
	spineCap := workload.SpineCapacityBps(spec, 10e9)
	if agg > spineCap {
		t.Fatalf("aggregate %v exceeds one-way spine capacity %v", agg, spineCap)
	}
}

// TestThroughputFlatBeatsLeafSpineSkewed reproduces the §3.1/§6.2 headline
// in miniature: under skewed traffic that bottlenecks at the sending ToRs,
// a flat rewiring of the same equipment approaches 2× the leaf-spine
// throughput (UDF = 2).
func TestThroughputFlatBeatsLeafSpineSkewed(t *testing.T) {
	spec := topology.LeafSpineSpec{X: 6, Y: 2}
	ls, err := topology.LeafSpine(spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	flat, err := topology.Flatten(ls, rng)
	if err != nil {
		t.Fatal(err)
	}

	aggFor := func(g *topology.Graph, sendRacks int) float64 {
		t.Helper()
		racks := g.Racks()
		var pairs [][2]int
		// Hosts in the first sendRacks racks each send one flow to a host in
		// the last racks (far side) — heavy outcast from few racks.
		dstRacks := racks[len(racks)-4:]
		di := 0
		for _, r := range racks[:sendRacks] {
			lo, hi := g.ServersOf(r)
			for s := lo; s < hi; s++ {
				dr := dstRacks[di%len(dstRacks)]
				dlo, dhi := g.ServersOf(dr)
				pairs = append(pairs, [2]int{s, dlo + di%(dhi-dlo)})
				di++
			}
		}
		_, agg, err := Throughput(g, routing.NewECMP(g), pairs, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return agg
	}

	lsAgg := aggFor(ls, 2)
	flatAgg := aggFor(flat, 2)
	ratio := flatAgg / lsAgg
	if ratio < 1.2 {
		t.Fatalf("flat/leaf-spine throughput ratio = %.2f, want > 1.2 (UDF predicts up to 2)", ratio)
	}
	if ratio > 2.3 {
		t.Fatalf("flat/leaf-spine throughput ratio = %.2f, absurdly above the UDF bound", ratio)
	}
}

func TestThroughputUnreachable(t *testing.T) {
	g := topology.New("disc", 2, 4)
	g.SetServers(0, 1)
	g.SetServers(1, 1)
	ecmp := routing.NewECMP(g)
	if _, _, err := Throughput(g, ecmp, [][2]int{{0, 1}}, DefaultConfig()); err == nil {
		t.Fatal("unreachable pair accepted")
	}
}
