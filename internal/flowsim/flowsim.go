// Package flowsim computes max-min fair throughput allocations for
// long-running flows over a fabric — the fluid counterpart of the packet
// simulator, used for the paper's C-S throughput experiments (§6.2), where
// all flows are long-running (as in the Jellyfish methodology [23]).
//
// Each flow occupies its source host's uplink, its destination host's
// downlink, and every directed network link along its switch path. Rates
// are assigned by progressive filling: all flows grow together until some
// resource saturates, flows through it freeze, and the rest keep growing.
package flowsim

import (
	"fmt"
	"math"

	"spineless/internal/routing"
	"spineless/internal/topology"
)

// Config sets the fabric's link speeds in bits per second.
type Config struct {
	LinkRateBps float64 // switch-to-switch links
	HostRateBps float64 // server NICs; 0 means same as LinkRateBps
}

// DefaultConfig is the paper's setup: 10 Gbps everywhere (§5.3).
func DefaultConfig() Config { return Config{LinkRateBps: 10e9} }

func (c Config) hostRate() float64 {
	if c.HostRateBps > 0 {
		return c.HostRateBps
	}
	return c.LinkRateBps
}

// PathFlow is a long-running flow pinned to a concrete switch path.
type PathFlow struct {
	Src, Dst int   // global server ids
	Path     []int // switch path from Src's rack to Dst's rack (inclusive)
}

// MaxMin returns the max-min fair rate (bits/s) of every flow.
func MaxMin(g *topology.Graph, flows []PathFlow, cfg Config) ([]float64, error) {
	if cfg.LinkRateBps <= 0 {
		return nil, fmt.Errorf("flowsim: non-positive link rate")
	}
	res := newResources(g, cfg)
	// flowRes[i] lists the resource indices flow i crosses.
	flowRes := make([][]int32, len(flows))
	for i, f := range flows {
		r, err := res.forFlow(g, f)
		if err != nil {
			return nil, fmt.Errorf("flowsim: flow %d: %w", i, err)
		}
		flowRes[i] = r
	}
	active := make([]int32, len(res.cap))
	for _, rs := range flowRes {
		for _, r := range rs {
			active[r]++
		}
	}
	rem := append([]float64(nil), res.cap...)
	rates := make([]float64, len(flows))
	frozen := make([]bool, len(flows))
	remaining := len(flows)

	for remaining > 0 {
		// Smallest per-flow headroom across loaded resources.
		inc := math.Inf(1)
		for r, a := range active {
			if a > 0 {
				if h := rem[r] / float64(a); h < inc {
					inc = h
				}
			}
		}
		if math.IsInf(inc, 1) {
			break // remaining flows cross no resources (shouldn't happen)
		}
		for r, a := range active {
			if a > 0 {
				rem[r] -= inc * float64(a)
			}
		}
		// Freeze flows crossing any saturated resource.
		const eps = 1e-6
		saturated := make([]bool, len(rem))
		for r := range rem {
			if active[r] > 0 && rem[r] <= eps*res.cap[r] {
				saturated[r] = true
			}
		}
		for i := range flows {
			if frozen[i] {
				continue
			}
			rates[i] += inc
			for _, r := range flowRes[i] {
				if saturated[r] {
					frozen[i] = true
					break
				}
			}
			if frozen[i] {
				for _, r := range flowRes[i] {
					active[r]--
				}
				remaining--
			}
		}
	}
	return rates, nil
}

// resources indexes every capacity-bearing element: directed network links
// (aggregated across parallel copies) plus one uplink and one downlink per
// host that appears in a flow.
type resources struct {
	cap      []float64
	linkIdx  map[[2]int]int32 // directed (u,v) → resource
	hostUp   map[int]int32
	hostDown map[int]int32
	linkBps  float64
	hostBps  float64
}

func newResources(g *topology.Graph, cfg Config) *resources {
	r := &resources{
		linkIdx:  make(map[[2]int]int32),
		hostUp:   make(map[int]int32),
		hostDown: make(map[int]int32),
		linkBps:  cfg.LinkRateBps,
		hostBps:  cfg.hostRate(),
	}
	for u := 0; u < g.N(); u++ {
		mult := map[int]int{}
		for _, v := range g.Neighbors(u) {
			mult[v]++
		}
		for v, m := range mult {
			r.linkIdx[[2]int{u, v}] = int32(len(r.cap))
			r.cap = append(r.cap, float64(m)*cfg.LinkRateBps)
		}
	}
	return r
}

func (r *resources) forFlow(g *topology.Graph, f PathFlow) ([]int32, error) {
	if f.Src == f.Dst {
		return nil, fmt.Errorf("flow from host %d to itself", f.Src)
	}
	if len(f.Path) == 0 {
		return nil, fmt.Errorf("flow %d→%d has no path", f.Src, f.Dst)
	}
	if g.RackOf(f.Src) != f.Path[0] || g.RackOf(f.Dst) != f.Path[len(f.Path)-1] {
		return nil, fmt.Errorf("path %v does not join racks of hosts %d and %d", f.Path, f.Src, f.Dst)
	}
	out := make([]int32, 0, len(f.Path)+1)
	out = append(out, r.host(r.hostUp, f.Src))
	for h := 0; h+1 < len(f.Path); h++ {
		idx, ok := r.linkIdx[[2]int{f.Path[h], f.Path[h+1]}]
		if !ok {
			return nil, fmt.Errorf("path %v uses nonexistent link %d→%d", f.Path, f.Path[h], f.Path[h+1])
		}
		out = append(out, idx)
	}
	out = append(out, r.host(r.hostDown, f.Dst))
	return out, nil
}

func (r *resources) host(m map[int]int32, h int) int32 {
	if idx, ok := m[h]; ok {
		return idx
	}
	idx := int32(len(r.cap))
	r.cap = append(r.cap, r.hostBps)
	m[h] = idx
	return idx
}

// Throughput routes each (client, server) host pair with the given scheme
// and returns the per-flow max-min rates plus their aggregate (bits/s).
// Flow ids are the pair indices, so path selection is deterministic.
func Throughput(g *topology.Graph, scheme routing.Scheme, pairs [][2]int, cfg Config) (rates []float64, aggregate float64, err error) {
	flows := make([]PathFlow, len(pairs))
	for i, p := range pairs {
		srcRack, dstRack := g.RackOf(p[0]), g.RackOf(p[1])
		path := scheme.Path(srcRack, dstRack, uint64(i))
		if path == nil {
			return nil, 0, fmt.Errorf("flowsim: no path between racks %d and %d", srcRack, dstRack)
		}
		flows[i] = PathFlow{Src: p[0], Dst: p[1], Path: path}
	}
	rates, err = MaxMin(g, flows, cfg)
	if err != nil {
		return nil, 0, err
	}
	for _, r := range rates {
		aggregate += r
	}
	return rates, aggregate, nil
}
