package bgp

import (
	"strings"
	"testing"

	"spineless/internal/topology"
)

func TestConfigNeighborCountsMatchSessions(t *testing.T) {
	g := ringFabric(t)
	n, err := Build(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Each unordered session pair involving router r appears as exactly one
	// "remote-as" neighbor statement in r's config.
	pairs := n.sessionPairs()
	for r := 0; r < g.N(); r++ {
		want := 0
		for _, p := range pairs {
			if p.a.Router == r || p.b.Router == r {
				want++
			}
		}
		cfg := n.GenerateConfig(r)
		got := strings.Count(cfg, "remote-as")
		if got != want {
			t.Fatalf("router %d: %d neighbor statements, want %d", r, got, want)
		}
		// Every neighbor also has an activate line.
		if strings.Count(cfg, "activate") != want {
			t.Fatalf("router %d: activate count mismatch", r)
		}
	}
}

func TestConfigSubinterfacesDistinct(t *testing.T) {
	g := ringFabric(t)
	n, err := Build(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := n.GenerateConfig(0)
	// Every subinterface id appears exactly once.
	seen := map[string]bool{}
	for _, line := range strings.Split(cfg, "\n") {
		if strings.HasPrefix(line, "interface Ethernet0/0.") {
			if seen[line] {
				t.Fatalf("duplicate %q", line)
			}
			seen[line] = true
		}
	}
	if len(seen) == 0 {
		t.Fatal("no subinterfaces emitted")
	}
	// K=3 must define three VRFs.
	for _, vrf := range []string{"vrf1", "vrf2", "vrf3"} {
		if !strings.Contains(cfg, "vrf definition "+vrf) {
			t.Fatalf("missing %s", vrf)
		}
	}
}

func TestConfigAddressesUniqueAcrossRouters(t *testing.T) {
	g, err := topology.DRing(topology.Uniform(5, 1, 12))
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	for name, cfg := range n.GenerateAll() {
		for _, line := range strings.Split(cfg, "\n") {
			line = strings.TrimSpace(line)
			if strings.HasPrefix(line, "ip address 172.") {
				if prev, dup := seen[line]; dup {
					t.Fatalf("address reused by %s and %s: %q", prev, name, line)
				}
				seen[line] = name
			}
		}
	}
	if len(seen) == 0 {
		t.Fatal("no session addresses emitted")
	}
}

func TestASNumbering(t *testing.T) {
	if AS(0) != 64512 || AS(79) != 64591 {
		t.Fatalf("AS numbering broken: %d %d", AS(0), AS(79))
	}
}

func TestConvergeOnFatTree(t *testing.T) {
	g, err := topology.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	rib, _, err := n.Converge()
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyTheorem1(n, rib); err != nil {
		t.Fatal(err)
	}
}
