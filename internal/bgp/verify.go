package bgp

import (
	"fmt"

	"spineless/internal/routing"
	"spineless/internal/topology"
)

// VerifyTheorem1 checks §4 Theorem 1 against the converged protocol state:
// for every router pair (R1, R2) at physical distance L, the routing
// distance from (VRF K, R1) to R2's prefix must equal max(L, K). It returns
// the first violation found, or nil.
func VerifyTheorem1(n *Network, rib Rib) error {
	dist := topology.AllPairsDistances(n.Topo)
	for src := 0; src < n.Topo.N(); src++ {
		for dst := 0; dst < n.Topo.N(); dst++ {
			if src == dst {
				continue
			}
			want := dist[src][dst]
			if want < 0 {
				continue // physically unreachable
			}
			if want < n.K {
				want = n.K
			}
			if got := rib.Distance(n, src, dst); got != want {
				return fmt.Errorf("bgp: theorem 1 violated: dist(r%d→r%d) = %d, want max(L=%d, K=%d)",
					src, dst, got, dist[src][dst], n.K)
			}
		}
	}
	return nil
}

// CrossCheckFib verifies that the converged BGP multipath next hops match
// the data-plane FIB computed directly by routing.NewShortestUnion — i.e.
// the protocol realizes exactly the Shortest-Union(K) forwarding state.
// With K=2 the match is exact; for K>=3 BGP's AS-path loop rejection can
// prune router-revisiting equal-cost walks the plain virtual-graph FIB
// admits, so the BGP set must be a subset. strict selects which check runs.
func CrossCheckFib(n *Network, rib Rib, fib *routing.Fib, strict bool) error {
	if fib.SchemeK() != n.K {
		return fmt.Errorf("bgp: FIB K=%d, network K=%d", fib.SchemeK(), n.K)
	}
	for _, node := range n.Nodes() {
		for dst := 0; dst < n.Topo.N(); dst++ {
			if node.Router == dst {
				// VRF K originates the prefix locally; lower VRFs of the
				// destination router reject every path as an AS loop (the
				// virtual-graph FIB keeps phantom out-and-back entries there,
				// but no forwarded packet can ever occupy those states).
				continue
			}
			want := fib.VirtualNextHops(node.VRF, node.Router, dst)
			wantSet := map[routing.VNode]bool{}
			for _, w := range want {
				wantSet[w] = true
			}
			got := rib[node][dst].NextHops
			for _, h := range got {
				if !wantSet[routing.VNode{VRF: h.VRF, Router: h.Router}] {
					return fmt.Errorf("bgp: %v → r%d: protocol next hop %v not in FIB set %v",
						node, dst, h, want)
				}
			}
			if strict && len(got) != len(want) {
				return fmt.Errorf("bgp: %v → r%d: protocol has %d next hops, FIB has %d (%v vs %v)",
					node, dst, len(got), len(want), got, want)
			}
		}
	}
	return nil
}
