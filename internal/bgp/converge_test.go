package bgp

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"spineless/internal/topology"
)

// denseConverge is the pre-dirty-set reference engine, kept verbatim as a
// test oracle: every round recomputes every entry from a full copy of the
// previous state. The incremental engine must match it bit for bit — RIB
// contents AND round counts — on both cold convergence and warm-start
// reconvergence.
func denseConverge(n *Network, seed Rib) (Rib, int, error) {
	nr := n.Topo.N()
	inbound := map[NodeID][]int{}
	for si, s := range n.Sessions {
		inbound[s.From] = append(inbound[s.From], si)
	}
	state := map[NodeID][]entry{}
	for _, node := range n.Nodes() {
		es := make([]entry, nr)
		for d := range es {
			es[d].len = inf
		}
		if node.VRF == n.K {
			es[node.Router] = entry{len: 1, path: []int{node.Router}}
		}
		state[node] = es
	}
	if seed != nil {
		for _, node := range n.Nodes() {
			old, ok := seed[node]
			if !ok || len(old) != nr {
				continue
			}
			for d, r := range old {
				if node.VRF == n.K && d == node.Router {
					continue
				}
				if r.ASPathLen < 0 {
					continue
				}
				state[node][d] = entry{
					len:      r.ASPathLen,
					path:     append([]int(nil), r.ASPath...),
					nextHops: append([]NodeID(nil), r.NextHops...),
				}
			}
		}
	}
	lexLess := func(a, b []int) bool {
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				return a[i] < b[i]
			}
		}
		return len(a) < len(b)
	}
	equal := func(a, b entry) bool {
		if a.len != b.len || len(a.path) != len(b.path) || len(a.nextHops) != len(b.nextHops) {
			return false
		}
		for i := range a.path {
			if a.path[i] != b.path[i] {
				return false
			}
		}
		for i := range a.nextHops {
			if a.nextHops[i] != b.nextHops[i] {
				return false
			}
		}
		return true
	}
	maxRounds := 4*n.K*nr + 16
	for round := 1; round <= maxRounds; round++ {
		changed := false
		next := map[NodeID][]entry{}
		for _, node := range n.Nodes() {
			cur := state[node]
			es := make([]entry, nr)
			copy(es, cur)
			for d := 0; d < nr; d++ {
				if node.VRF == n.K && d == node.Router {
					continue
				}
				best := inf
				var bestPath []int
				var hops []NodeID
				for _, si := range inbound[node] {
					s := n.Sessions[si]
					adv := state[s.To][d]
					if adv.len >= inf {
						continue
					}
					cand := adv.len + 1 + s.Prepend
					if containsRouter(adv.path, node.Router) || s.To.Router == node.Router {
						continue
					}
					if cand < best {
						best = cand
						bestPath = prependPath(s.To.Router, 1+s.Prepend, adv.path)
						hops = []NodeID{s.To}
					} else if cand == best {
						p := prependPath(s.To.Router, 1+s.Prepend, adv.path)
						if lexLess(p, bestPath) {
							bestPath = p
						}
						hops = append(hops, s.To)
					}
				}
				sort.Slice(hops, func(a, b int) bool {
					if hops[a].Router != hops[b].Router {
						return hops[a].Router < hops[b].Router
					}
					return hops[a].VRF < hops[b].VRF
				})
				ne := entry{len: best, path: bestPath, nextHops: hops}
				if !equal(cur[d], ne) {
					changed = true
				}
				es[d] = ne
			}
			next[node] = es
		}
		state = next
		if !changed {
			rib := make(Rib, len(state))
			for node, es := range state {
				rs := make([]Route, nr)
				for d, e := range es {
					if e.len >= inf {
						rs[d] = Route{ASPathLen: -1}
						continue
					}
					rs[d] = Route{ASPathLen: e.len, ASPath: e.path, NextHops: append([]NodeID(nil), e.nextHops...)}
				}
				rib[node] = rs
			}
			return rib, round, nil
		}
	}
	return nil, maxRounds, nil
}

func convergeTestFabrics(t *testing.T) map[string]*topology.Graph {
	t.Helper()
	out := map[string]*topology.Graph{}
	dring, err := topology.DRing(topology.Uniform(5, 2, 16))
	if err != nil {
		t.Fatal(err)
	}
	out["dring"] = dring
	degs := make([]int, 12)
	for i := range degs {
		degs[i] = 4
	}
	rrg, err := topology.RRG("rrg12", degs, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	out["rrg"] = rrg
	return out
}

// TestConvergeMatchesDenseReference pins the incremental engine against the
// dense oracle on cold starts: same RIB, same round count.
func TestConvergeMatchesDenseReference(t *testing.T) {
	for name, g := range convergeTestFabrics(t) {
		for _, K := range []int{2, 3} {
			n, err := Build(g, K)
			if err != nil {
				t.Fatal(err)
			}
			rib, rounds, err := n.Converge()
			if err != nil {
				t.Fatal(err)
			}
			wantRib, wantRounds, err := denseConverge(n, nil)
			if err != nil {
				t.Fatal(err)
			}
			if rounds != wantRounds {
				t.Fatalf("%s K=%d: incremental took %d rounds, dense %d", name, K, rounds, wantRounds)
			}
			if !reflect.DeepEqual(rib, wantRib) {
				t.Fatalf("%s K=%d: incremental RIB differs from dense reference", name, K)
			}
		}
	}
}

// failOneLink clones g without its i-th distinct adjacency, returning the
// failed graph and the link's endpoints.
func failOneLink(t *testing.T, g *topology.Graph, u int) (*topology.Graph, int, int) {
	t.Helper()
	v := g.Neighbors(u)[0]
	failed := g.Clone()
	for failed.RemoveLink(u, v) {
		// drop every parallel copy so the session set actually changes
	}
	return failed, u, v
}

// TestConvergeFromMatchesDenseReference pins warm-start reconvergence after
// a link failure against the oracle.
func TestConvergeFromMatchesDenseReference(t *testing.T) {
	for name, g := range convergeTestFabrics(t) {
		n, err := Build(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		base, _, err := n.Converge()
		if err != nil {
			t.Fatal(err)
		}
		failed, _, _ := failOneLink(t, g, 0)
		fn, err := Build(failed, 2)
		if err != nil {
			t.Fatal(err)
		}
		rib, rounds, err := fn.ConvergeFrom(base)
		if err != nil {
			t.Fatal(err)
		}
		wantRib, wantRounds, err := denseConverge(fn, base)
		if err != nil {
			t.Fatal(err)
		}
		if rounds != wantRounds {
			t.Fatalf("%s: ConvergeFrom took %d rounds, dense %d", name, rounds, wantRounds)
		}
		if !reflect.DeepEqual(rib, wantRib) {
			t.Fatalf("%s: ConvergeFrom RIB differs from dense reference", name)
		}
	}
}

// TestConvergeDirtyMatchesConvergeFrom is the incremental-reconvergence
// contract: seeding only the failure-incident routers must reproduce the
// full warm-start sweep exactly — RIB and round count — for single and
// multi-link failures on every test fabric.
func TestConvergeDirtyMatchesConvergeFrom(t *testing.T) {
	for name, g := range convergeTestFabrics(t) {
		for _, K := range []int{2, 3} {
			n, err := Build(g, K)
			if err != nil {
				t.Fatal(err)
			}
			base, _, err := n.Converge()
			if err != nil {
				t.Fatal(err)
			}
			for _, cut := range [][]int{{0}, {3}, {0, 3}} {
				failed := g.Clone()
				var dirty []int
				for _, u := range cut {
					v := g.Neighbors(u)[0]
					for failed.RemoveLink(u, v) {
					}
					dirty = append(dirty, u, v)
				}
				fn, err := Build(failed, K)
				if err != nil {
					t.Fatal(err)
				}
				wantRib, wantRounds, err := fn.ConvergeFrom(base)
				if err != nil {
					t.Fatal(err)
				}
				rib, rounds, err := fn.ConvergeDirty(base, dirty)
				if err != nil {
					t.Fatal(err)
				}
				if rounds != wantRounds {
					t.Fatalf("%s K=%d cut=%v: ConvergeDirty took %d rounds, ConvergeFrom %d",
						name, K, cut, rounds, wantRounds)
				}
				if !reflect.DeepEqual(rib, wantRib) {
					t.Fatalf("%s K=%d cut=%v: ConvergeDirty RIB differs from ConvergeFrom", name, K, cut)
				}
			}
		}
	}
}

// TestConvergeDirtyRejectsBadInput pins the guard rails: incomplete
// previous RIBs and out-of-range routers are errors, not silent staleness.
func TestConvergeDirtyRejectsBadInput(t *testing.T) {
	g := ringFabric(t)
	n, err := Build(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := n.Converge()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.ConvergeDirty(Rib{}, []int{0}); err == nil {
		t.Fatal("incomplete previous RIB accepted")
	}
	if _, _, err := n.ConvergeDirty(base, []int{g.N()}); err == nil {
		t.Fatal("out-of-range dirty router accepted")
	}
	// An empty dirty set on an unchanged network is already converged.
	rib, rounds, err := n.ConvergeDirty(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 1 {
		t.Fatalf("no-op reconvergence took %d rounds, want 1", rounds)
	}
	if !reflect.DeepEqual(rib, base) {
		t.Fatal("no-op reconvergence changed the RIB")
	}
}
