package bgp

import (
	"fmt"
	"sort"
	"strings"
)

// sessionPair is an unordered BGP adjacency between two VRF instances on
// neighboring routers; one TCP session carries advertisements both ways,
// with a per-direction outbound policy (prepend count, or deny when the §4
// cost is infinite).
type sessionPair struct {
	a, b NodeID
	// aOut is a's outbound policy toward b: prepend count, or -1 for deny.
	aOut, bOut int
}

// sessionPairs folds the directed advertisement arcs into bidirectional
// sessions, deterministically ordered.
func (n *Network) sessionPairs() []sessionPair {
	idx := map[[2]NodeID]*sessionPair{}
	canon := func(x, y NodeID) ([2]NodeID, bool) {
		if x.Router < y.Router || (x.Router == y.Router && x.VRF <= y.VRF) {
			return [2]NodeID{x, y}, false
		}
		return [2]NodeID{y, x}, true
	}
	for _, s := range n.Sessions {
		// Advertiser is s.To: its outbound policy toward s.From prepends.
		key, swapped := canon(s.From, s.To)
		p, ok := idx[key]
		if !ok {
			p = &sessionPair{a: key[0], b: key[1], aOut: -1, bOut: -1}
			idx[key] = p
		}
		if swapped {
			// key[0] == s.To: the advertiser is side a.
			p.aOut = s.Prepend
		} else {
			p.bOut = s.Prepend
		}
	}
	out := make([]sessionPair, 0, len(idx))
	for _, p := range idx {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.a != b.a {
			return nodeLess(a.a, b.a)
		}
		return nodeLess(a.b, b.b)
	})
	return out
}

func nodeLess(x, y NodeID) bool {
	if x.Router != y.Router {
		return x.Router < y.Router
	}
	return x.VRF < y.VRF
}

// pairAddr allocates the /31 of session pair index i and returns the two
// endpoint addresses (side a gets the even address).
func pairAddr(i int) (a, b string) {
	// 172.16.0.0/12 leaves room for 2^19 /31s.
	hi := i / (128 * 256)
	mid := (i / 128) % 256
	lo := (i % 128) * 2
	return fmt.Sprintf("172.%d.%d.%d", 16+hi, mid, lo),
		fmt.Sprintf("172.%d.%d.%d", 16+hi, mid, lo+1)
}

// GenerateConfig renders a Cisco-IOS-style configuration for one router:
// VRF definitions, the loopback holding the rack prefix in VRF K, one
// subinterface per BGP session, per-VRF BGP address families with
// "maximum-paths" multipath, and the prepend route-maps encoding the §4
// costs. It is the artifact the paper generates by script for its GNS3
// prototype.
func (n *Network) GenerateConfig(router int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "hostname r%d\n!\n", router)
	for v := 1; v <= n.K; v++ {
		fmt.Fprintf(&b, "vrf definition vrf%d\n address-family ipv4\n exit-address-family\n!\n", v)
	}
	// Host-facing prefix lives in VRF K.
	fmt.Fprintf(&b, "interface Loopback0\n vrf forwarding vrf%d\n ip address 10.%d.%d.1 255.255.255.0\n!\n",
		n.K, router/256, router%256)

	pairs := n.sessionPairs()
	type nbr struct {
		vrf     int
		peerIP  string
		peerAS  int
		policy  int // prepend count, -1 = deny
		ifName  string
		localIP string
	}
	var nbrs []nbr
	sub := 0
	for i, p := range pairs {
		var local, peer NodeID
		var localIP, peerIP string
		var policy int
		aIP, bIP := pairAddr(i)
		switch router {
		case p.a.Router:
			local, peer, localIP, peerIP, policy = p.a, p.b, aIP, bIP, p.aOut
		case p.b.Router:
			local, peer, localIP, peerIP, policy = p.b, p.a, bIP, aIP, p.bOut
		default:
			continue
		}
		sub++
		ifName := fmt.Sprintf("Ethernet0/0.%d", sub)
		fmt.Fprintf(&b, "interface %s\n encapsulation dot1Q %d\n vrf forwarding vrf%d\n ip address %s 255.255.255.254\n!\n",
			ifName, sub, local.VRF, localIP)
		nbrs = append(nbrs, nbr{vrf: local.VRF, peerIP: peerIP, peerAS: AS(peer.Router), policy: policy, ifName: ifName, localIP: localIP})
	}

	fmt.Fprintf(&b, "router bgp %d\n bgp log-neighbor-changes\n", AS(router))
	for v := 1; v <= n.K; v++ {
		fmt.Fprintf(&b, " address-family ipv4 vrf vrf%d\n", v)
		fmt.Fprintf(&b, "  maximum-paths 32\n")
		if v == n.K {
			fmt.Fprintf(&b, "  network 10.%d.%d.0 mask 255.255.255.0\n", router/256, router%256)
		}
		for _, x := range nbrs {
			if x.vrf != v {
				continue
			}
			fmt.Fprintf(&b, "  neighbor %s remote-as %d\n", x.peerIP, x.peerAS)
			fmt.Fprintf(&b, "  neighbor %s activate\n", x.peerIP)
			switch {
			case x.policy < 0:
				fmt.Fprintf(&b, "  neighbor %s route-map DENY-ALL out\n", x.peerIP)
			case x.policy > 0:
				fmt.Fprintf(&b, "  neighbor %s route-map PREPEND-%d out\n", x.peerIP, x.policy)
			}
		}
		fmt.Fprintf(&b, " exit-address-family\n")
	}
	fmt.Fprintf(&b, "!\n")

	// Route maps: deny-all plus every prepend depth used by this router.
	depths := map[int]bool{}
	for _, x := range nbrs {
		if x.policy > 0 {
			depths[x.policy] = true
		}
	}
	var ds []int
	for d := range depths {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	for _, d := range ds {
		fmt.Fprintf(&b, "route-map PREPEND-%d permit 10\n set as-path prepend%s\n!\n",
			d, strings.Repeat(fmt.Sprintf(" %d", AS(router)), d))
	}
	fmt.Fprintf(&b, "route-map DENY-ALL deny 10\n!\nend\n")
	return b.String()
}

// GenerateAll renders every router's configuration, keyed "r<id>".
func (n *Network) GenerateAll() map[string]string {
	out := make(map[string]string, n.Topo.N())
	for r := 0; r < n.Topo.N(); r++ {
		out[fmt.Sprintf("r%d", r)] = n.GenerateConfig(r)
	}
	return out
}
