// Package bgp simulates the paper's §4 routing prototype: Shortest-Union(K)
// realized with nothing but eBGP, ECMP and VRFs. Every router is its own AS;
// each router is partitioned into K VRFs; host interfaces live in VRF K; and
// the virtual links between VRFs across each physical link carry AS-path
// prepending that encodes the §4 costs. Running standard path-vector route
// propagation over this virtual graph yields FIBs whose equal-cost multipath
// sets are exactly the Shortest-Union(K) path sets.
//
// The paper prototyped this in GNS3 on Cisco 7200 images; this package
// replaces that with a faithful protocol simulation plus a generator for
// Cisco-style router configurations (see config.go), which is the artifact a
// network engineer would deploy.
package bgp

import (
	"fmt"

	"spineless/internal/topology"
)

// ASBase offsets router ids into AS numbers (private 4-byte range).
const ASBase = 64512

// Session is one eBGP adjacency in the VRF graph: To advertises routes to
// From with Prepend extra copies of To's AS (so the AS-path grows by
// 1+Prepend — the §4 link cost).
type Session struct {
	From, To NodeID
	Prepend  int // extra prepends; cost = 1 + Prepend
}

// NodeID identifies one VRF instance on one router.
type NodeID struct {
	Router int
	VRF    int // 1-based, as in the paper; hosts live in VRF K
}

func (n NodeID) String() string { return fmt.Sprintf("r%d/vrf%d", n.Router, n.VRF) }

// Network is the §4 virtual graph over a physical fabric.
type Network struct {
	Topo *topology.Graph
	K    int
	// Sessions, indexed by the receiving node for convergence sweeps.
	Sessions []Session

	// CSR session-graph indexes over dense node ids Router*K + (VRF-1),
	// built eagerly by Build (see buildIndexes in converge.go): inbound
	// sessions per node, advertiser-sorted, and the reverse dependents used
	// for dirty-set propagation. outSess parallels outDeps with the session
	// carrying the advertisement to each dependent, so propagation can tell
	// the dependent exactly which inbound candidate moved.
	inStart, inSess            []int32
	outStart, outDeps, outSess []int32
}

// Build constructs the VRF session graph for Shortest-Union(K) over g,
// translating each directed physical link u→v into the §4 virtual links:
//
//	(VRF K, u) ← advertisement from (VRF i, v), cost i      (i = 1..K)
//	(VRF i, u) ← advertisement from (VRF i+1, v), cost 1    (i < K)
//	(VRF 1, u) ← advertisement from (VRF 1, v), cost 1
//
// (Traffic flows opposite to advertisements, so the traffic-direction arcs
// match routing.Fib exactly.)
func Build(g *topology.Graph, k int) (*Network, error) {
	if k < 2 {
		return nil, fmt.Errorf("bgp: need K >= 2, got %d", k)
	}
	n := &Network{Topo: g, K: k}
	add := func(from, to NodeID, prepend int) {
		n.Sessions = append(n.Sessions, Session{From: from, To: to, Prepend: prepend})
	}
	for u := 0; u < g.N(); u++ {
		seen := map[int]bool{}
		for _, v := range g.Neighbors(u) {
			if seen[v] {
				continue // one session set per neighbor, regardless of parallel links
			}
			seen[v] = true
			// Traffic arcs (VRF K,u)→(VRF i,v) cost i: advertisements flow
			// v's VRF i → u's VRF K with i-1 extra prepends.
			for i := 1; i <= k; i++ {
				add(NodeID{u, k}, NodeID{v, i}, i-1)
			}
			// Traffic arcs (VRF i,u)→(VRF i+1,v) cost 1.
			for i := 1; i < k; i++ {
				add(NodeID{u, i}, NodeID{v, i + 1}, 0)
			}
			// Traffic arc (VRF 1,u)→(VRF 1,v) cost 1.
			add(NodeID{u, 1}, NodeID{v, 1}, 0)
		}
	}
	n.buildIndexes()
	return n, nil
}

// AS returns the AS number of a router.
func AS(router int) int { return ASBase + router }

// Nodes enumerates every VRF instance in deterministic order.
func (n *Network) Nodes() []NodeID {
	out := make([]NodeID, 0, n.K*n.Topo.N())
	for r := 0; r < n.Topo.N(); r++ {
		for v := 1; v <= n.K; v++ {
			out = append(out, NodeID{r, v})
		}
	}
	return out
}

// Prefix returns the rack prefix originated by a router, in the addressing
// plan used by the config generator.
func Prefix(router int) string {
	return fmt.Sprintf("10.%d.%d.0/24", router/256, router%256)
}
