package bgp

import (
	"math/rand"
	"strings"
	"testing"

	"spineless/internal/routing"
	"spineless/internal/topology"
)

func ringFabric(t *testing.T) *topology.Graph {
	t.Helper()
	g, err := topology.DRing(topology.Uniform(5, 2, 16))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildRejectsSmallK(t *testing.T) {
	g := ringFabric(t)
	if _, err := Build(g, 1); err == nil {
		t.Fatal("K=1 accepted")
	}
}

func TestBuildSessionCount(t *testing.T) {
	g := ringFabric(t)
	K := 2
	n, err := Build(g, K)
	if err != nil {
		t.Fatal(err)
	}
	// Per directed physical adjacency: K (rule A) + K-1 (rule B) + 1 (rule C).
	want := 2 * g.Links() * (2 * K)
	if len(n.Sessions) != want {
		t.Fatalf("sessions = %d, want %d", len(n.Sessions), want)
	}
	if len(n.Nodes()) != K*g.N() {
		t.Fatalf("nodes = %d, want %d", len(n.Nodes()), K*g.N())
	}
}

func TestConvergeTheorem1DRing(t *testing.T) {
	g := ringFabric(t)
	for _, K := range []int{2, 3} {
		n, err := Build(g, K)
		if err != nil {
			t.Fatal(err)
		}
		rib, rounds, err := n.Converge()
		if err != nil {
			t.Fatal(err)
		}
		if rounds < 2 {
			t.Fatalf("K=%d converged suspiciously fast (%d rounds)", K, rounds)
		}
		if err := VerifyTheorem1(n, rib); err != nil {
			t.Fatalf("K=%d: %v", K, err)
		}
	}
}

func TestConvergeTheorem1LeafSpine(t *testing.T) {
	g, err := topology.LeafSpine(topology.LeafSpineSpec{X: 4, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	rib, _, err := n.Converge()
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyTheorem1(n, rib); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolMatchesFibExactlyK2(t *testing.T) {
	g := ringFabric(t)
	n, err := Build(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	rib, _, err := n.Converge()
	if err != nil {
		t.Fatal(err)
	}
	fib, err := routing.NewShortestUnion(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := CrossCheckFib(n, rib, fib, true); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolSubsetOfFibK3(t *testing.T) {
	g := ringFabric(t)
	n, err := Build(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	rib, _, err := n.Converge()
	if err != nil {
		t.Fatal(err)
	}
	fib, err := routing.NewShortestUnion(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := CrossCheckFib(n, rib, fib, false); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolOnRRG(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := topology.RegularRRG("rrg", 14, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	rib, _, err := n.Converge()
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyTheorem1(n, rib); err != nil {
		t.Fatal(err)
	}
	fib, err := routing.NewShortestUnion(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := CrossCheckFib(n, rib, fib, true); err != nil {
		t.Fatal(err)
	}
}

func TestCrossCheckRejectsMismatchedK(t *testing.T) {
	g := ringFabric(t)
	n, err := Build(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	rib, _, err := n.Converge()
	if err != nil {
		t.Fatal(err)
	}
	fib, err := routing.NewShortestUnion(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := CrossCheckFib(n, rib, fib, true); err == nil {
		t.Fatal("mismatched K accepted")
	}
}

func TestRibDistanceSelfAndUnreachable(t *testing.T) {
	g := topology.New("disc", 2, 4)
	g.SetServers(0, 1)
	g.SetServers(1, 1)
	n, err := Build(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	rib, _, err := n.Converge()
	if err != nil {
		t.Fatal(err)
	}
	if d := rib.Distance(n, 0, 0); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
	if d := rib.Distance(n, 0, 1); d != -1 {
		t.Fatalf("unreachable distance = %d, want -1", d)
	}
}

func TestGenerateConfigContent(t *testing.T) {
	g := ringFabric(t)
	n, err := Build(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := n.GenerateConfig(0)
	for _, want := range []string{
		"hostname r0",
		"vrf definition vrf1",
		"vrf definition vrf2",
		"router bgp 64512",
		"maximum-paths 32",
		"network 10.0.0.0 mask 255.255.255.0",
		"route-map PREPEND-1 permit 10",
		"set as-path prepend 64512",
		"route-map DENY-ALL deny 10",
		"address-family ipv4 vrf vrf1",
		"address-family ipv4 vrf vrf2",
	} {
		if !strings.Contains(cfg, want) {
			t.Fatalf("config missing %q:\n%s", want, cfg)
		}
	}
	// Host prefix must live in VRF K only.
	if strings.Contains(strings.SplitN(cfg, "address-family ipv4 vrf vrf2", 2)[0], "network 10.0.0.0") {
		t.Fatal("rack prefix announced outside VRF K")
	}
}

func TestGenerateAllCoversRouters(t *testing.T) {
	g := ringFabric(t)
	n, err := Build(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	all := n.GenerateAll()
	if len(all) != g.N() {
		t.Fatalf("configs = %d, want %d", len(all), g.N())
	}
	for name, cfg := range all {
		if !strings.Contains(cfg, "hostname "+name) {
			t.Fatalf("config %s has wrong hostname", name)
		}
	}
}

func TestSessionPairsSymmetricAddressing(t *testing.T) {
	g := ringFabric(t)
	n, err := Build(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	pairs := n.sessionPairs()
	if len(pairs) == 0 {
		t.Fatal("no session pairs")
	}
	seen := map[[2]NodeID]bool{}
	for _, p := range pairs {
		key := [2]NodeID{p.a, p.b}
		if seen[key] {
			t.Fatalf("duplicate session pair %v", key)
		}
		seen[key] = true
		if !nodeLess(p.a, p.b) && p.a != p.b {
			t.Fatalf("pair not canonical: %v", p)
		}
		if p.aOut < 0 && p.bOut < 0 {
			t.Fatalf("session %v useless in both directions", p)
		}
	}
}

func TestPrefixFormat(t *testing.T) {
	if Prefix(0) != "10.0.0.0/24" {
		t.Fatalf("Prefix(0) = %q", Prefix(0))
	}
	if Prefix(300) != "10.1.44.0/24" {
		t.Fatalf("Prefix(300) = %q", Prefix(300))
	}
}
