package bgp

import (
	"fmt"
	"sort"
)

// Route is one node's converged state for a destination prefix.
type Route struct {
	// ASPathLen is the length of the best AS-path (number of AS entries,
	// including prepends and the originator).
	ASPathLen int
	// ASPath is the canonical best path (lexicographically smallest among
	// equal-length bests), listing router ids, prepends included.
	ASPath []int
	// NextHops are the virtual nodes whose advertisements tied for best —
	// the ECMP set ("maximum-paths" with equal AS-path lengths).
	NextHops []NodeID
}

// Rib is the converged routing state: Rib[node][dstRouter].
type Rib map[NodeID][]Route

const inf = 1 << 30

// Converge runs synchronous path-vector iterations until a fixpoint: every
// round, every node advertises its single best path per prefix to its
// inbound peers (with per-session prepending); receivers drop paths that
// contain their own AS (BGP loop prevention) and keep all equal-best
// advertisements as ECMP next hops. It returns the converged RIB and the
// number of rounds taken.
func (n *Network) Converge() (Rib, int, error) {
	return n.converge(n.freshState())
}

// ConvergeFrom reconverges starting from a previous RIB — the §7 failure
// question: after links fail (the Network is built on the failed fabric but
// nodes still hold prev's routes), how many rounds until the protocol
// settles? prev entries for vanished nodes are ignored; local prefixes are
// re-originated.
func (n *Network) ConvergeFrom(prev Rib) (Rib, int, error) {
	state := n.freshState()
	nr := n.Topo.N()
	for _, node := range n.Nodes() {
		old, ok := prev[node]
		if !ok || len(old) != nr {
			continue
		}
		for d, r := range old {
			if node.VRF == n.K && d == node.Router {
				continue // keep the fresh origination
			}
			if r.ASPathLen < 0 {
				continue
			}
			state[node][d] = entry{
				len:      r.ASPathLen,
				path:     append([]int(nil), r.ASPath...),
				nextHops: append([]NodeID(nil), r.NextHops...),
			}
		}
	}
	return n.converge(state)
}

func (n *Network) freshState() map[NodeID][]entry {
	nr := n.Topo.N()
	state := make(map[NodeID][]entry, n.K*nr)
	for _, node := range n.Nodes() {
		es := make([]entry, nr)
		for d := range es {
			es[d].len = inf
		}
		if node.VRF == n.K {
			// Host interfaces live in VRF K: originate the rack prefix.
			es[node.Router] = entry{len: 1, path: []int{node.Router}}
		}
		state[node] = es
	}
	return state
}

func (n *Network) converge(state map[NodeID][]entry) (Rib, int, error) {
	nr := n.Topo.N()
	maxRounds := 4*n.K*nr + 16
	for round := 1; round <= maxRounds; round++ {
		changed := false
		next := make(map[NodeID][]entry, len(state))
		for _, node := range n.Nodes() {
			cur := state[node]
			es := make([]entry, nr)
			copy(es, cur)
			for d := 0; d < nr; d++ {
				if node.VRF == n.K && d == node.Router {
					continue // originated locally; never replaced
				}
				best := inf
				var bestPath []int
				var hops []NodeID
				for _, si := range n.inbound[node] {
					s := n.Sessions[si]
					adv := state[s.To][d]
					if adv.len >= inf {
						continue
					}
					// Sender prepends its own AS 1+Prepend times.
					cand := adv.len + 1 + s.Prepend
					if containsRouter(adv.path, node.Router) || s.To.Router == node.Router {
						continue // AS-path loop
					}
					if cand < best {
						best = cand
						bestPath = prependPath(s.To.Router, 1+s.Prepend, adv.path)
						hops = []NodeID{s.To}
					} else if cand == best {
						p := prependPath(s.To.Router, 1+s.Prepend, adv.path)
						if lexLessInts(p, bestPath) {
							bestPath = p
						}
						hops = append(hops, s.To)
					}
				}
				sort.Slice(hops, func(a, b int) bool {
					if hops[a].Router != hops[b].Router {
						return hops[a].Router < hops[b].Router
					}
					return hops[a].VRF < hops[b].VRF
				})
				ne := entry{len: best, path: bestPath, nextHops: hops}
				if !entryEqual(cur[d], ne) {
					changed = true
				}
				es[d] = ne
			}
			next[node] = es
		}
		state = next
		if !changed {
			rib := make(Rib, len(state))
			for node, es := range state {
				rs := make([]Route, nr)
				for d, e := range es {
					if e.len >= inf {
						rs[d] = Route{ASPathLen: -1}
						continue
					}
					// nextHops are already sorted by the round computation.
					rs[d] = Route{ASPathLen: e.len, ASPath: e.path, NextHops: append([]NodeID(nil), e.nextHops...)}
				}
				rib[node] = rs
			}
			return rib, round, nil
		}
	}
	return nil, maxRounds, fmt.Errorf("bgp: no convergence after %d rounds", maxRounds)
}

func containsRouter(path []int, r int) bool {
	for _, p := range path {
		if p == r {
			return true
		}
	}
	return false
}

func prependPath(router, times int, rest []int) []int {
	out := make([]int, 0, times+len(rest))
	for i := 0; i < times; i++ {
		out = append(out, router)
	}
	return append(out, rest...)
}

func lexLessInts(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// entry is one node's working route for one prefix during convergence.
type entry struct {
	len      int
	path     []int // router ids, nearest first
	nextHops []NodeID
}

func entryEqual(a, b entry) bool {
	if a.len != b.len || len(a.path) != len(b.path) || len(a.nextHops) != len(b.nextHops) {
		return false
	}
	for i := range a.path {
		if a.path[i] != b.path[i] {
			return false
		}
	}
	for i := range a.nextHops {
		if a.nextHops[i] != b.nextHops[i] {
			return false
		}
	}
	return true
}

// Distance returns the converged routing distance (AS-path length minus the
// originator entry) from (VRF K, src) to dst's prefix: Theorem 1 says this
// equals max(L, K). It returns -1 if the prefix is unreachable.
func (r Rib) Distance(n *Network, src, dst int) int {
	if src == dst {
		return 0
	}
	e := r[NodeID{src, n.K}][dst]
	if e.ASPathLen < 0 {
		return -1
	}
	return e.ASPathLen - 1
}
