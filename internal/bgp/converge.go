package bgp

import (
	"fmt"
	"sort"
)

// Route is one node's converged state for a destination prefix.
type Route struct {
	// ASPathLen is the length of the best AS-path (number of AS entries,
	// including prepends and the originator).
	ASPathLen int
	// ASPath is the canonical best path (lexicographically smallest among
	// equal-length bests), listing router ids, prepends included.
	ASPath []int
	// NextHops are the virtual nodes whose advertisements tied for best —
	// the ECMP set ("maximum-paths" with equal AS-path lengths).
	NextHops []NodeID
}

// Rib is the converged routing state: Rib[node][dstRouter]. Ribs are
// immutable by contract: an incremental reconvergence (ConvergeFrom,
// ConvergeDirty) returns a Rib whose unchanged routes share ASPath and
// NextHops storage with the previous one, so callers must not write
// through a Route's slices.
type Rib map[NodeID][]Route

const inf = 1 << 30

// The convergence engine is incremental: state is a flat []entry indexed
// (node, dst) and each synchronous round recomputes only the entries whose
// inputs changed in the previous round, tracked as per-destination dirty
// sets propagated through the session graph's out-dependents. A full
// recomputation is just the special case where round 1's candidate set is
// every entry; because a round is a pure function of the previous state, the
// dirty-set sweep commits exactly the writes the dense sweep would, so
// Converge and ConvergeFrom return bit-identical RIBs and round counts to a
// dense implementation while reconvergence work after a localized change is
// proportional to the affected region, not the fabric.
//
// Candidate best paths are compared virtually — (router, repeat count,
// advertised path) against the incumbent without materializing the prepended
// slice — and an entry is only materialized when it actually changes, so a
// steady-state round allocates nothing for the (vast) unchanged remainder.

// Converge runs synchronous path-vector iterations until a fixpoint: every
// round, every node advertises its single best path per prefix to its
// inbound peers (with per-session prepending); receivers drop paths that
// contain their own AS (BGP loop prevention) and keep all equal-best
// advertisements as ECMP next hops. It returns the converged RIB and the
// number of rounds taken.
func (n *Network) Converge() (Rib, int, error) {
	return n.converge(n.freshState(), n.allCandidates(), nil)
}

// ConvergeFrom reconverges starting from a previous RIB — the §7 failure
// question: after links fail (the Network is built on the failed fabric but
// nodes still hold prev's routes), how many rounds until the protocol
// settles? prev entries for vanished nodes are ignored; local prefixes are
// re-originated.
func (n *Network) ConvergeFrom(prev Rib) (Rib, int, error) {
	return n.converge(n.seededState(prev), n.allCandidates(), prev)
}

// ConvergeDirty reconverges after a change known to touch only the links
// incident to dirtyRouters: round 1 recomputes only those routers' VRF
// entries instead of sweeping the whole fabric, and change propagation takes
// over from there. When prev is a converged RIB of a network differing from
// n only at sessions incident to dirtyRouters, the result — RIB and round
// count — is identical to ConvergeFrom(prev), because every entry outside
// the dirty region is at its fixpoint and a dense round 1 would not change
// it either. prev must cover every node of n (use ConvergeFrom when it
// might not, e.g. after adding routers).
func (n *Network) ConvergeDirty(prev Rib, dirtyRouters []int) (Rib, int, error) {
	nr := n.Topo.N()
	for _, node := range n.Nodes() {
		if old, ok := prev[node]; !ok || len(old) != nr {
			return nil, 0, fmt.Errorf("bgp: ConvergeDirty needs a complete previous RIB (missing %v); use ConvergeFrom", node)
		}
	}
	routers := append([]int(nil), dirtyRouters...)
	sort.Ints(routers)
	var cands []int32
	prevR := -1
	for _, r := range routers {
		if r < 0 || r >= nr {
			return nil, 0, fmt.Errorf("bgp: dirty router %d out of range [0,%d)", r, nr)
		}
		if r == prevR {
			continue
		}
		prevR = r
		for vrf := 1; vrf <= n.K; vrf++ {
			x := r*n.K + vrf - 1
			for d := 0; d < nr; d++ {
				if vrf == n.K && d == r {
					continue // originated locally; never replaced
				}
				cands = append(cands, int32(x*nr+d))
			}
		}
	}
	return n.converge(n.seededState(prev), cands, prev)
}

// nodeIdx flattens a NodeID into the engine's dense index space.
func (n *Network) nodeIdx(id NodeID) int { return id.Router*n.K + id.VRF - 1 }

// nodeAt is the inverse of nodeIdx.
func (n *Network) nodeAt(i int) NodeID { return NodeID{Router: i / n.K, VRF: i%n.K + 1} }

// buildIndexes lays the session graph out as two CSR tables over dense node
// indices: inStart/inSess lists each node's inbound sessions sorted by
// advertiser (so ECMP hop sets come out pre-sorted), outStart/outDeps lists
// the nodes depending on each advertiser (the dirty-set fan-out). Build
// calls it eagerly so converge sweeps never mutate the Network.
func (n *Network) buildIndexes() {
	nn := n.Topo.N() * n.K
	n.inStart = make([]int32, nn+1)
	for _, s := range n.Sessions {
		n.inStart[n.nodeIdx(s.From)+1]++
	}
	for i := 1; i <= nn; i++ {
		n.inStart[i] += n.inStart[i-1]
	}
	n.inSess = make([]int32, len(n.Sessions))
	fill := make([]int32, nn)
	for si, s := range n.Sessions {
		x := n.nodeIdx(s.From)
		n.inSess[n.inStart[x]+fill[x]] = int32(si)
		fill[x]++
	}
	for x := 0; x < nn; x++ {
		seg := n.inSess[n.inStart[x]:n.inStart[x+1]]
		sort.Slice(seg, func(a, b int) bool {
			ta, tb := n.Sessions[seg[a]].To, n.Sessions[seg[b]].To
			if ta.Router != tb.Router {
				return ta.Router < tb.Router
			}
			return ta.VRF < tb.VRF
		})
	}

	n.outStart = make([]int32, nn+1)
	for _, s := range n.Sessions {
		n.outStart[n.nodeIdx(s.To)+1]++
	}
	for i := 1; i <= nn; i++ {
		n.outStart[i] += n.outStart[i-1]
	}
	n.outDeps = make([]int32, len(n.Sessions))
	n.outSess = make([]int32, len(n.Sessions))
	for i := range fill {
		fill[i] = 0
	}
	for si, s := range n.Sessions {
		w := n.nodeIdx(s.To)
		n.outDeps[n.outStart[w]+fill[w]] = int32(n.nodeIdx(s.From))
		n.outSess[n.outStart[w]+fill[w]] = int32(si)
		fill[w]++
	}
	for w := 0; w < nn; w++ {
		deps := n.outDeps[n.outStart[w]:n.outStart[w+1]]
		sess := n.outSess[n.outStart[w]:n.outStart[w+1]]
		sort.Sort(&depSessSort{deps, sess})
	}
}

// depSessSort keeps the outSess column aligned with outDeps while sorting a
// CSR segment by dependent node id.
type depSessSort struct{ deps, sess []int32 }

func (p *depSessSort) Len() int           { return len(p.deps) }
func (p *depSessSort) Less(i, j int) bool { return p.deps[i] < p.deps[j] }
func (p *depSessSort) Swap(i, j int) {
	p.deps[i], p.deps[j] = p.deps[j], p.deps[i]
	p.sess[i], p.sess[j] = p.sess[j], p.sess[i]
}

func (n *Network) freshState() []entry {
	nr := n.Topo.N()
	nn := nr * n.K
	state := make([]entry, nn*nr)
	for i := range state {
		state[i].len = inf
	}
	for r := 0; r < nr; r++ {
		// Host interfaces live in VRF K: originate the rack prefix.
		x := r*n.K + n.K - 1
		state[x*nr+r] = entry{len: 1, path: []int{r}}
	}
	return state
}

// seededState overlays prev onto a fresh state. The seeded entries alias
// prev's ASPath/NextHops slices: the sweep never mutates a slice in place
// (recompute materializes fresh slices for every change), so the sharing is
// read-only and the returned RIB of an incremental run may in turn share
// unchanged routes with prev. Ribs are immutable by contract. Entries for
// vanished nodes are ignored; local prefixes are re-originated.
func (n *Network) seededState(prev Rib) []entry {
	nr := n.Topo.N()
	state := make([]entry, nr*n.K*nr)
	for _, node := range n.Nodes() {
		x := n.nodeIdx(node)
		row := state[x*nr : (x+1)*nr]
		old, ok := prev[node]
		if !ok || len(old) != nr {
			for d := range row {
				row[d].len = inf
			}
		} else {
			for d, r := range old {
				if r.ASPathLen < 0 {
					row[d].len = inf
					continue
				}
				row[d] = entry{len: r.ASPathLen, path: r.ASPath, nextHops: r.NextHops}
			}
		}
		if node.VRF == n.K {
			// Host interfaces live in VRF K: re-originate the rack prefix.
			row[node.Router] = entry{len: 1, path: []int{node.Router}}
		}
	}
	return state
}

// allCandidates lists every non-origination entry — the dense round-1 sweep
// Converge and ConvergeFrom start from.
func (n *Network) allCandidates() []int32 {
	nr := n.Topo.N()
	nn := nr * n.K
	out := make([]int32, 0, nn*nr)
	for x := 0; x < nn; x++ {
		node := n.nodeAt(x)
		for d := 0; d < nr; d++ {
			if node.VRF == n.K && d == node.Router {
				continue
			}
			out = append(out, int32(x*nr+d))
		}
	}
	return out
}

// sweep holds the per-run scratch: pending writes (collect-then-commit
// keeps rounds synchronous), the epoch-stamped dedup table for next-round
// candidates, and a reusable ECMP hop buffer.
type sweep struct {
	n     *Network
	nr    int
	state []entry

	pendIdx []int32
	pendEnt []entry

	mark  []uint32
	epoch uint32

	// Sparse-round event buckets: for a next-round candidate entry di,
	// evBuf[evOff[di] : evOff[di]+evCnt[di]] lists exactly the inbound
	// sessions whose advertiser committed this round. Buckets are laid out
	// by a counting pass over the commit fan-out — no sorting.
	evCnt, evOff []int32
	evBuf        []int32

	// rowDirty[x] records that node x committed at least one write, so
	// buildRib knows which of prev's rows may be shared wholesale.
	rowDirty []bool

	hops []NodeID
}

func (n *Network) converge(state []entry, cands []int32, prev Rib) (Rib, int, error) {
	nr := n.Topo.N()
	s := &sweep{n: n, nr: nr, state: state, mark: make([]uint32, len(state)),
		evCnt: make([]int32, len(state)), evOff: make([]int32, len(state)),
		rowDirty: make([]bool, nr*n.K)}
	maxRounds := 4*n.K*nr + 16
	var next []int32
	sparse := false
	for round := 1; round <= maxRounds; round++ {
		s.pendIdx = s.pendIdx[:0]
		s.pendEnt = s.pendEnt[:0]
		if sparse {
			for _, di := range cands {
				evs := s.evBuf[s.evOff[di] : s.evOff[di]+s.evCnt[di]]
				if ne, changed := s.recomputeDelta(di, evs); changed {
					s.pendIdx = append(s.pendIdx, di)
					s.pendEnt = append(s.pendEnt, ne)
				}
			}
		} else {
			for _, ei := range cands {
				if ne, changed := s.recompute(ei); changed {
					s.pendIdx = append(s.pendIdx, ei)
					s.pendEnt = append(s.pendEnt, ne)
				}
			}
		}
		if len(s.pendIdx) == 0 {
			return n.buildRib(state, prev, s.rowDirty), round, nil
		}
		for i, ei := range s.pendIdx {
			state[ei] = s.pendEnt[i]
			s.rowDirty[int(ei)/nr] = true
		}
		// Dirty propagation: only entries reading a changed (node, dst) can
		// move next round — the out-dependents of each write, same dst,
		// mark-deduplicated. The next round goes sparse when visiting just
		// the moved candidates (nEv session events) is cheaper than fully
		// rescanning every candidate (scanCost inbound sessions); both
		// paths evaluate the same fixpoint function, so the choice cannot
		// change results.
		s.epoch++
		next = next[:0]
		nEv, scanCost := 0, 0
		for _, ei := range s.pendIdx {
			x, d := int(ei)/nr, int(ei)%nr
			for _, dep := range n.outDeps[n.outStart[x]:n.outStart[x+1]] {
				node := n.nodeAt(int(dep))
				if node.VRF == n.K && d == node.Router {
					continue // origination is never recomputed
				}
				di := int32(int(dep)*nr + d)
				if s.mark[di] != s.epoch {
					s.mark[di] = s.epoch
					next = append(next, di)
					s.evCnt[di] = 0
					scanCost += int(n.inStart[dep+1] - n.inStart[dep])
				}
				s.evCnt[di]++
				nEv++
			}
		}
		// The factor 3 prices sparse's overheads beyond the event visits
		// themselves: two bucket-building passes over the fan-out plus the
		// per-entry full rescans when an incumbent contributor moved (the
		// common case in dense early rounds, where almost everything is
		// still in motion).
		sparse = 3*nEv < scanCost
		if sparse {
			// Counting layout: evOff starts at each bucket's end and the
			// scatter pass walks it back to the bucket's start.
			off := int32(0)
			for _, di := range next {
				off += s.evCnt[di]
				s.evOff[di] = off
			}
			if cap(s.evBuf) < int(off) {
				s.evBuf = make([]int32, off)
			}
			for _, ei := range s.pendIdx {
				x, d := int(ei)/nr, int(ei)%nr
				for k := n.outStart[x]; k < n.outStart[x+1]; k++ {
					dep := int(n.outDeps[k])
					node := n.nodeAt(dep)
					if node.VRF == n.K && d == node.Router {
						continue // origination is never recomputed
					}
					di := dep*nr + d
					s.evOff[di]--
					s.evBuf[s.evOff[di]] = n.outSess[k]
				}
			}
		}
		cands, next = next, cands
	}
	return nil, maxRounds, fmt.Errorf("bgp: no convergence after %d rounds", maxRounds)
}

// recomputeDelta reevaluates one entry given exactly the inbound candidates
// that moved last round (evs holds their session indexes). If a moved
// advertiser was contributing to the incumbent ECMP set, the entry is fully
// rescanned; otherwise merging the moved candidates into the incumbent
// reaches the same fixpoint a full rescan would, because an unmoved
// non-contributing candidate it already lost to cannot start influencing
// the entry.
func (s *sweep) recomputeDelta(ei int32, evs []int32) (entry, bool) {
	n := s.n
	old := &s.state[ei]
	for _, si := range evs {
		if hopContains(old.nextHops, n.Sessions[si].To) {
			return s.recompute(ei)
		}
	}
	x, d := int(ei)/s.nr, int(ei)%s.nr
	router := x / n.K
	mLen := old.len
	mPath := old.path // incumbent canonical path; nil once a virtual best leads
	var mR, mT int
	var mRest []int
	hops := old.nextHops
	changed := false
	for _, si := range evs {
		sess := &n.Sessions[si]
		adv := &s.state[n.nodeIdx(sess.To)*s.nr+d]
		if adv.len >= inf {
			continue
		}
		cand := adv.len + 1 + sess.Prepend
		if cand > mLen {
			continue // cannot win or tie; the loop check is moot
		}
		if sess.To.Router == router || containsRouter(adv.path, router) {
			continue // AS-path loop
		}
		if cand < mLen {
			mLen = cand
			mPath, mR, mT, mRest = nil, sess.To.Router, 1+sess.Prepend, adv.path
			s.hops = append(s.hops[:0], sess.To)
			hops = s.hops
			changed = true
			continue
		}
		// Tie with the incumbent: the hop set gains sess.To and the
		// canonical path takes the lexicographic minimum.
		if mPath != nil {
			if lexLessVirtualMat(sess.To.Router, 1+sess.Prepend, adv.path, mPath) {
				mPath, mR, mT, mRest = nil, sess.To.Router, 1+sess.Prepend, adv.path
			}
		} else if lexLessVirtual(sess.To.Router, 1+sess.Prepend, adv.path, mR, mT, mRest) {
			mR, mT, mRest = sess.To.Router, 1+sess.Prepend, adv.path
		}
		if !changed {
			s.hops = append(s.hops[:0], old.nextHops...)
			hops = s.hops
		}
		// Sorted insert keeps the advertiser order a full rescan produces.
		pos := len(hops)
		for i, h := range hops {
			if h.Router > sess.To.Router || (h.Router == sess.To.Router && h.VRF > sess.To.VRF) {
				pos = i
				break
			}
		}
		hops = append(hops, NodeID{})
		copy(hops[pos+1:], hops[pos:])
		hops[pos] = sess.To
		s.hops = hops
		changed = true
	}
	if !changed {
		return entry{}, false
	}
	ne := entry{len: mLen, nextHops: append([]NodeID(nil), hops...)}
	if mPath != nil {
		ne.path = mPath
	} else {
		ne.path = prependPath(mR, mT, mRest)
	}
	return ne, true
}

// hopContains reports membership of t in an ECMP hop set.
func hopContains(hops []NodeID, t NodeID) bool {
	for _, h := range hops {
		if h == t {
			return true
		}
	}
	return false
}

// lexLessVirtualMat compares a virtual candidate path (router repeated
// times, then the advertised rest) against a materialized path of the same
// length.
func lexLessVirtualMat(rA, tA int, restA []int, b []int) bool {
	for i, v := range b {
		a := rA
		if i >= tA {
			a = restA[i-tA]
		}
		if a != v {
			return a < v
		}
	}
	return false
}

// recompute evaluates one (node, dst) entry against the current state and
// reports whether it changed, materializing the new entry only if so. The
// best path is tracked virtually as (advertiser router, prepend count,
// advertised path) until the comparison against the incumbent demands bytes.
func (s *sweep) recompute(ei int32) (entry, bool) {
	n := s.n
	x, d := int(ei)/s.nr, int(ei)%s.nr
	router := x / n.K
	best := inf
	var bestR, bestT int
	var bestRest []int
	s.hops = s.hops[:0]
	for _, si := range n.inSess[n.inStart[x]:n.inStart[x+1]] {
		sess := &n.Sessions[si]
		adv := &s.state[n.nodeIdx(sess.To)*s.nr+d]
		if adv.len >= inf {
			continue
		}
		// Sender prepends its own AS 1+Prepend times.
		cand := adv.len + 1 + sess.Prepend
		if cand > best {
			continue // cannot win or tie; the loop check is moot
		}
		if sess.To.Router == router || containsRouter(adv.path, router) {
			continue // AS-path loop
		}
		if cand < best {
			best = cand
			bestR, bestT, bestRest = sess.To.Router, 1+sess.Prepend, adv.path
			s.hops = append(s.hops[:0], sess.To)
		} else if cand == best {
			if lexLessVirtual(sess.To.Router, 1+sess.Prepend, adv.path, bestR, bestT, bestRest) {
				bestR, bestT, bestRest = sess.To.Router, 1+sess.Prepend, adv.path
			}
			// Inbound sessions are advertiser-sorted, so hops stay sorted.
			s.hops = append(s.hops, sess.To)
		}
	}
	old := &s.state[ei]
	if entryEqualVirtual(old, best, bestR, bestT, bestRest, s.hops) {
		return entry{}, false
	}
	ne := entry{len: best}
	if best < inf {
		ne.path = prependPath(bestR, bestT, bestRest)
		ne.nextHops = append([]NodeID(nil), s.hops...)
	}
	return ne, true
}

// buildRib materializes the converged state. When reconverging from a
// previous RIB, a node that never committed a write still holds exactly
// prev's routes (its entries were seeded from them), so its whole row is
// returned shared — Ribs are immutable by contract, and prev must be in
// this package's canonical form (as Converge produces) for the shared rows
// to match a fresh build bit for bit.
func (n *Network) buildRib(state []entry, prev Rib, rowDirty []bool) Rib {
	nr := n.Topo.N()
	nn := nr * n.K
	rib := make(Rib, nn)
	for x := 0; x < nn; x++ {
		node := n.nodeAt(x)
		if prev != nil && !rowDirty[x] {
			if old, ok := prev[node]; ok && len(old) == nr {
				rib[node] = old
				continue
			}
		}
		rs := make([]Route, nr)
		for d := 0; d < nr; d++ {
			e := &state[x*nr+d]
			if e.len >= inf {
				rs[d] = Route{ASPathLen: -1}
				continue
			}
			// nextHops are already advertiser-sorted by the sweep. The
			// state's slices move into the RIB unchanged — the sweep is
			// done with them, and Ribs are immutable by contract.
			rs[d] = Route{ASPathLen: e.len, ASPath: e.path, NextHops: e.nextHops}
		}
		rib[node] = rs
	}
	return rib
}

func containsRouter(path []int, r int) bool {
	for _, p := range path {
		if p == r {
			return true
		}
	}
	return false
}

func prependPath(router, times int, rest []int) []int {
	out := make([]int, 0, times+len(rest))
	for i := 0; i < times; i++ {
		out = append(out, router)
	}
	return append(out, rest...)
}

// lexLessVirtual compares two prepended candidate paths — router repeated
// times, then the advertised rest — without materializing either, with the
// same shorter-prefix rule as a materialized lexicographic compare.
func lexLessVirtual(rA, tA int, restA []int, rB, tB int, restB []int) bool {
	lA, lB := tA+len(restA), tB+len(restB)
	l := lA
	if lB < l {
		l = lB
	}
	for i := 0; i < l; i++ {
		a, b := rA, rB
		if i >= tA {
			a = restA[i-tA]
		}
		if i >= tB {
			b = restB[i-tB]
		}
		if a != b {
			return a < b
		}
	}
	return lA < lB
}

// entryEqualVirtual reports whether the incumbent entry equals the virtual
// candidate (len, prepended path, hop set) — the materialize-on-change test.
func entryEqualVirtual(old *entry, bLen, bR, bT int, bRest []int, hops []NodeID) bool {
	if old.len != bLen || len(old.nextHops) != len(hops) {
		return false
	}
	if bLen >= inf {
		return len(old.path) == 0 && len(old.nextHops) == 0
	}
	if len(old.path) != bT+len(bRest) {
		return false
	}
	for i, p := range old.path {
		c := bR
		if i >= bT {
			c = bRest[i-bT]
		}
		if p != c {
			return false
		}
	}
	for i := range hops {
		if old.nextHops[i] != hops[i] {
			return false
		}
	}
	return true
}

// entry is one node's working route for one prefix during convergence.
type entry struct {
	len      int
	path     []int // router ids, nearest first
	nextHops []NodeID
}

// Distance returns the converged routing distance (AS-path length minus the
// originator entry) from (VRF K, src) to dst's prefix: Theorem 1 says this
// equals max(L, K). It returns -1 if the prefix is unreachable.
func (r Rib) Distance(n *Network, src, dst int) int {
	if src == dst {
		return 0
	}
	e := r[NodeID{src, n.K}][dst]
	if e.ASPathLen < 0 {
		return -1
	}
	return e.ASPathLen - 1
}
