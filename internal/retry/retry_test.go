package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDelayDeterministicCappedAndJittered(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2, JitterFrac: 0.5}
	for attempt := 1; attempt <= 8; attempt++ {
		a := p.Delay("spec-hash-1", attempt)
		b := p.Delay("spec-hash-1", attempt)
		if a != b {
			t.Fatalf("attempt %d: jitter not deterministic: %v vs %v", attempt, a, b)
		}
		if a > time.Second {
			t.Fatalf("attempt %d: delay %v exceeds cap", attempt, a)
		}
		if a <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v", attempt, a)
		}
	}
	// The nominal (pre-jitter) delay doubles, so later attempts must not be
	// shorter than half the nominal of the previous attempt's lower bound;
	// at minimum the capped tail stays within [cap/2, cap].
	tail := p.Delay("spec-hash-1", 8)
	if tail < 500*time.Millisecond {
		t.Fatalf("capped tail delay %v fell below cap·(1-jitter)", tail)
	}
	// Different keys jitter differently (overwhelmingly likely).
	if p.Delay("k1", 3) == p.Delay("k2", 3) && p.Delay("k1", 4) == p.Delay("k2", 4) {
		t.Fatal("two keys produced identical jitter on consecutive attempts")
	}
}

func TestDoRetriesThenSucceeds(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	calls := 0
	err := p.Do(context.Background(), "k", func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestDoGivesUpAfterMaxAttempts(t *testing.T) {
	p := Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
	calls := 0
	sentinel := errors.New("still down")
	err := p.Do(context.Background(), "k", func(context.Context) error {
		calls++
		return sentinel
	})
	if calls != 3 {
		t.Fatalf("calls=%d, want 3", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err=%v does not wrap the last failure", err)
	}
}

func TestDoPermanentStopsImmediately(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	calls := 0
	bad := errors.New("400 bad spec")
	err := p.Do(context.Background(), "k", func(context.Context) error {
		calls++
		return Permanent(bad)
	})
	if calls != 1 {
		t.Fatalf("calls=%d, want 1", calls)
	}
	if !errors.Is(err, bad) || !IsPermanent(err) {
		t.Fatalf("err=%v, want permanent wrapping %v", err, bad)
	}
}

func TestDoAttemptTimeout(t *testing.T) {
	p := Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, AttemptTimeout: 20 * time.Millisecond}
	var deadlines []bool
	err := p.Do(context.Background(), "k", func(ctx context.Context) error {
		_, ok := ctx.Deadline()
		deadlines = append(deadlines, ok)
		<-ctx.Done() // simulate an attempt that hangs until its deadline
		return ctx.Err()
	})
	if err == nil {
		t.Fatal("want error from timed-out attempts")
	}
	if len(deadlines) != 2 || !deadlines[0] || !deadlines[1] {
		t.Fatalf("attempts did not all carry deadlines: %v", deadlines)
	}
}

func TestDoContextCancelStopsBackoff(t *testing.T) {
	p := Policy{MaxAttempts: 10, BaseDelay: time.Hour} // backoff would block forever
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := p.Do(ctx, "k", func(context.Context) error { return errors.New("transient") })
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancel did not interrupt the backoff sleep")
	}
}

func TestBudgetExhaustionStopsRetries(t *testing.T) {
	b := &Budget{Ratio: 0.1, Burst: 2}
	p := Policy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Budget: b}
	calls := 0
	err := p.Do(context.Background(), "k", func(context.Context) error {
		calls++
		return errors.New("down")
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err=%v, want budget exhaustion", err)
	}
	// Initial balance Burst=2: one first attempt plus two funded retries.
	if calls != 3 {
		t.Fatalf("calls=%d, want 3 (first + 2 budgeted retries)", calls)
	}
	// Successes refill the budget.
	for i := 0; i < 20; i++ {
		b.OnSuccess()
	}
	if b.Tokens() < 2 {
		t.Fatalf("tokens=%v after refills, want == burst", b.Tokens())
	}
	if !b.Spend() {
		t.Fatal("refilled budget refused a retry")
	}
}

func TestBudgetNilIsUnlimited(t *testing.T) {
	var b *Budget
	if !b.Spend() {
		t.Fatal("nil budget must not refuse")
	}
	b.OnSuccess() // must not panic
}

// TestDoBackoffAllocs pins the backoff loop's allocation behavior: one timer
// reused across every attempt, not a fresh time.After timer per attempt.
// Before the reuse fix this measured ~3 extra allocations per backoff (the
// runtime timer and its channel, each alive until it fired); with 15 backoffs
// per Do the old code lands far above the pinned bound.
func TestDoBackoffAllocs(t *testing.T) {
	p := Policy{MaxAttempts: 16, BaseDelay: 10 * time.Microsecond, MaxDelay: 10 * time.Microsecond}
	sentinel := errors.New("still down")
	ctx := context.Background()
	op := func(context.Context) error { return sentinel }
	allocs := testing.AllocsPerRun(10, func() {
		if err := p.Do(ctx, "k", op); err == nil {
			t.Fatal("op always fails; Do must not succeed")
		}
	})
	// Fixed costs per Do: the single reused timer, the wrapped give-up
	// error, and the deferred stop closure. 15 per-iteration timers would
	// add ~45 on top.
	if allocs > 12 {
		t.Fatalf("Do allocated %.0f times for 16 attempts; backoff timer is not being reused", allocs)
	}
}

// TestSleepHonorsContextAndDelay pins Sleep's two exits: the full delay when
// the context stays live, and a prompt return with the context's error when
// cancelled mid-sleep.
func TestSleepHonorsContextAndDelay(t *testing.T) {
	start := time.Now()
	if err := Sleep(context.Background(), 5*time.Millisecond); err != nil {
		t.Fatalf("Sleep returned %v on a live context", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("Sleep returned after %v, before the delay elapsed", d)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start = time.Now()
	if err := Sleep(ctx, time.Minute); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep on a cancelled context returned %v", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("Sleep took %v to notice cancellation", d)
	}

	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("zero-delay Sleep returned %v", err)
	}
}
