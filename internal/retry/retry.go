// Package retry is the fleet's shared retry/timeout/backoff machinery:
// capped exponential backoff with *deterministic* jitter, per-attempt
// deadlines, permanent-error short-circuits, and an SRE-style retry budget
// that keeps a struggling fleet from amplifying its own overload.
//
// Jitter is where most retry packages reach for a global RNG; this one
// derives it from a caller-supplied key (spinelessd uses the spec hash) and
// the attempt number via splitmix64, so a replayed run retries at exactly
// the same offsets. Two callers retrying *different* specs still spread out
// (their keys differ), which is all jitter is for — the determinism costs
// nothing and keeps fleet runs reproducible end to end.
package retry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Policy describes how an operation is retried. The zero value is usable:
// every field falls back to the package default at Do time.
type Policy struct {
	// MaxAttempts is the total number of tries, first included (default 4).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff between attempts (default 2s).
	MaxDelay time.Duration
	// Multiplier grows the backoff between attempts (default 2).
	Multiplier float64
	// JitterFrac is the fraction of each delay replaced by deterministic
	// jitter in [0, JitterFrac·delay) (default 0.5; negative disables).
	JitterFrac float64
	// AttemptTimeout bounds each attempt with its own deadline
	// (0 = attempts inherit ctx unmodified).
	AttemptTimeout time.Duration
	// Budget, when non-nil, globally limits how many retries (attempts
	// beyond the first) this policy may spend relative to its successes.
	Budget *Budget
}

// Defaults for zero-valued Policy fields.
const (
	DefaultMaxAttempts = 4
	DefaultBaseDelay   = 50 * time.Millisecond
	DefaultMaxDelay    = 2 * time.Second
	DefaultMultiplier  = 2.0
	DefaultJitterFrac  = 0.5
)

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.Multiplier < 1 {
		p.Multiplier = DefaultMultiplier
	}
	if p.JitterFrac == 0 { //lint:allow floateq
		p.JitterFrac = DefaultJitterFrac
	}
	return p
}

// permanentError marks an error as non-retryable.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Do stops retrying and returns it immediately.
// Use it for errors more tries cannot fix: validation failures, 4xx
// responses, malformed replies.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// Permanent. It walks the wrap chain by hand: errors.As would need an
// escaping **permanentError target, one heap allocation per call, and Do
// calls this once per attempt (TestDoBackoffAllocs pins the loop's total).
func IsPermanent(err error) bool {
	switch e := err.(type) {
	case nil:
		return false
	case *permanentError:
		return true
	case interface{ Unwrap() error }:
		return IsPermanent(e.Unwrap())
	case interface{ Unwrap() []error }:
		for _, u := range e.Unwrap() {
			if IsPermanent(u) {
				return true
			}
		}
	}
	return false
}

// ErrBudgetExhausted is wrapped into Do's return when the retry budget
// refuses further attempts; the last operation error is wrapped alongside.
var ErrBudgetExhausted = errors.New("retry: budget exhausted")

// Delay returns the backoff before attempt (1-based count of completed
// attempts: Delay(key, 1) precedes the second try). The jitter component is
// a pure function of (key, attempt), so identical runs back off identically.
func (p Policy) Delay(key string, attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.JitterFrac > 0 {
		span := d * p.JitterFrac
		// splitmix64 over (key, attempt) → uniform fraction of the span.
		h := splitmix64(hashKey(key) + uint64(attempt))
		frac := float64(h>>11) / float64(1<<53)
		d = d - span + span*frac // jitter shrinks the delay, never grows it
	}
	return time.Duration(d)
}

// Sleep blocks for d or until ctx is cancelled, whichever comes first, and
// returns ctx's error if it won. Unlike `case <-time.After(d):` in a select,
// the timer is always released: time.After's timer lives until it fires even
// after the select abandons it, so in a loop it piles up one pending runtime
// timer per iteration. Use Sleep for any cancellable backoff or poll delay.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do runs op until it succeeds, fails permanently, exhausts the policy, or
// ctx is cancelled. key seeds the deterministic jitter (use the request's
// content hash, or any stable identifier). Each attempt receives a context
// bounded by AttemptTimeout when set. The returned error is the last
// attempt's, wrapped with the attempt count.
func (p Policy) Do(ctx context.Context, key string, op func(ctx context.Context) error) error {
	p = p.withDefaults()
	var last error
	// One timer reused across every backoff: time.After in this loop would
	// allocate a timer per attempt that lives until it fires (see
	// TestDoBackoffAllocs, which pins the difference).
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if last != nil {
				return fmt.Errorf("retry: %w (after %d attempts, last error: %v)", err, attempt-1, last)
			}
			return err
		}
		actx := ctx
		var cancel context.CancelFunc
		if p.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		}
		err := op(actx)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			if p.Budget != nil {
				p.Budget.OnSuccess()
			}
			return nil
		}
		last = err
		if IsPermanent(err) {
			return fmt.Errorf("retry: permanent failure on attempt %d: %w", attempt, err)
		}
		if attempt >= p.MaxAttempts {
			return fmt.Errorf("retry: giving up after %d attempts: %w", attempt, last)
		}
		if p.Budget != nil && !p.Budget.Spend() {
			return fmt.Errorf("retry: %w after %d attempts: %w", ErrBudgetExhausted, attempt, last)
		}
		delay := p.Delay(key, attempt)
		if timer == nil {
			timer = time.NewTimer(delay)
		} else {
			// Drain-safe Reset for go1.22 (no go1.23 Reset semantics): we are
			// the sole receiver, so after Stop the channel holds at most one
			// stale tick, which the non-blocking receive clears.
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(delay)
		}
		select {
		case <-timer.C:
		case <-ctx.Done():
			return fmt.Errorf("retry: %w while backing off (after %d attempts, last error: %v)", ctx.Err(), attempt, last)
		}
	}
}

// Budget is a token bucket limiting retries fleet-wide: each success earns
// Ratio tokens (capped at Burst), each retry spends one. When the bucket is
// empty retries are refused, so a hard-down dependency costs one attempt
// per request instead of MaxAttempts — the classic retry-storm damper.
// The zero value refuses nothing until its first Spend, then behaves as
// Ratio=0.1, Burst=10. Safe for concurrent use.
type Budget struct {
	// Ratio is tokens earned per success (default 0.1).
	Ratio float64
	// Burst caps accumulated tokens (default 10; also the initial balance).
	Burst float64

	mu      sync.Mutex
	started bool
	tokens  float64
}

func (b *Budget) defaults() (ratio, burst float64) {
	ratio, burst = b.Ratio, b.Burst
	if ratio <= 0 {
		ratio = 0.1
	}
	if burst <= 0 {
		burst = 10
	}
	return ratio, burst
}

// OnSuccess credits the budget for a successful operation.
func (b *Budget) OnSuccess() {
	if b == nil {
		return
	}
	ratio, burst := b.defaults()
	b.mu.Lock()
	if !b.started {
		b.started, b.tokens = true, burst
	}
	b.tokens += ratio
	if b.tokens > burst {
		b.tokens = burst
	}
	b.mu.Unlock()
}

// Spend consumes one retry token, reporting false when the budget refuses
// the retry.
func (b *Budget) Spend() bool {
	if b == nil {
		return true
	}
	_, burst := b.defaults()
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.started {
		b.started, b.tokens = true, burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens returns the current balance (diagnostics and tests).
func (b *Budget) Tokens() float64 {
	if b == nil {
		return 0
	}
	_, burst := b.defaults()
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.started {
		return burst
	}
	return b.tokens
}

// hashKey is FNV-1a over the key, feeding splitmix64's avalanche.
func hashKey(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// splitmix64 is the same finalizer internal/parallel uses for per-trial
// seeds: a full-avalanche mix, so consecutive attempts land anywhere in the
// jitter span.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
