package topology

import (
	"fmt"
	"sort"
)

// DeBruijnSpec describes an undirected De Bruijn fabric (arXiv:1610.03245):
// the directed De Bruijn graph B(k, n) on N = k^n switches — node v has
// shift edges v → (v·k + y) mod N for every symbol y in [0, k) — is
// undirectified by merging each directed edge with its reverse and dropping
// self-loops. Nodes whose in- and out-neighborhoods overlap (fixed points
// and short cycles of the shift map) come out below the 2k target degree,
// so the builder tops them up with extra links ("degree regularization")
// until every switch has the same network degree. Servers fill each
// switch's remaining ports, exactly like DRing: the network is flat by
// construction and — the property the routing layer exploits — a packet can
// be self-routed by shifting the destination label in, digit by digit,
// without any FIB.
type DeBruijnSpec struct {
	Symbols int // alphabet size k ≥ 2
	Digits  int // label length n ≥ 2; switch count is k^n
	Ports   int // switch radix
}

// Switches returns the switch count k^n.
func (s DeBruijnSpec) Switches() int {
	t := 1
	for i := 0; i < s.Digits; i++ {
		t *= s.Symbols
	}
	return t
}

// NetworkDegree returns the regularized per-switch network degree:
// min(2k, N-1) — every node has k out- and k in-neighbors, capped by the
// simple-graph limit on tiny fabrics.
func (s DeBruijnSpec) NetworkDegree() int {
	d := 2 * s.Symbols
	if n := s.Switches() - 1; n < d {
		d = n
	}
	return d
}

// Validate checks that the construction is feasible: a real alphabet, at
// least two digits (one digit is just a clique with no shift structure),
// a switch count that fits in an int without overflow, and enough ports at
// every switch for the regularized network degree plus at least one server.
func (s DeBruijnSpec) Validate() error {
	if s.Symbols < 2 {
		return fmt.Errorf("debruijn: need alphabet of at least 2 symbols, have %d: %w", s.Symbols, ErrInfeasible)
	}
	if s.Digits < 2 {
		return fmt.Errorf("debruijn: need at least 2 digits, have %d: %w", s.Digits, ErrInfeasible)
	}
	n := 1
	for i := 0; i < s.Digits; i++ {
		if n > (1<<26)/s.Symbols {
			return fmt.Errorf("debruijn: %d^%d switches overflows the builder's limit: %w", s.Symbols, s.Digits, ErrInfeasible)
		}
		n *= s.Symbols
	}
	if d := s.NetworkDegree(); d >= s.Ports {
		return fmt.Errorf("debruijn: degree %d needs radix above %d, have %d: %w", d, d, s.Ports, ErrInfeasible)
	}
	return nil
}

// DeBruijn builds the fabric described by spec. Switch v's label is its
// base-k representation over Digits digits. The construction is fully
// deterministic — no randomness anywhere — so two builds of the same spec
// are identical, not merely isomorphic.
func DeBruijn(spec DeBruijnSpec) (*Graph, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	k, n := spec.Symbols, spec.Switches()
	g := New(fmt.Sprintf("debruijn(k=%d,n=%d)", k, spec.Digits), n, spec.Ports)

	// Undirectified shift edges: {v, (v·k + y) mod N}, self-loops dropped,
	// each undirected pair added once.
	for v := 0; v < n; v++ {
		for y := 0; y < k; y++ {
			w := (v*k + y) % n
			if w == v || g.HasLink(v, w) {
				continue
			}
			if err := g.AddLink(v, w); err != nil {
				return nil, err
			}
		}
	}

	// Degree regularization: fixed points of the shift map (all-equal
	// labels) lose their self-loop on both sides (deficit 2), and nodes on
	// 2-cycles (alternating labels) merged a forward edge with its reverse
	// (deficit 1). Pair the deficit "slots" greedily in node order; the
	// total deficit is always even because the target 2kN and the handshake
	// sum are both even.
	target := spec.NetworkDegree()
	var slots []int // node ids, one entry per missing link endpoint
	for v := 0; v < n; v++ {
		for d := g.NetworkDegree(v); d < target; d++ {
			slots = append(slots, v)
		}
	}
	sort.Ints(slots)
	budget := 1 << 22
	if !regularize(g, slots, &budget) {
		return nil, fmt.Errorf("debruijn: cannot regularize %d deficit slots to degree %d: %w", len(slots), target, ErrInfeasible)
	}

	for v := 0; v < g.N(); v++ {
		g.SetServers(v, spec.Ports-g.NetworkDegree(v))
	}
	return g, nil
}

// regularize pairs up the deficit slots (one entry per missing link
// endpoint, sorted by node) into new links that avoid existing edges, by
// deterministic backtracking. The first candidate tried for slot 0 is the
// half-offset slot: a deficit-2 fixed point contributes two adjacent slots,
// so the plain scan-from-1 greedy would eventually offer the last fixed
// point to itself. Dense small fabrics (degree close to N-1) can still
// force the greedy down a dead end — those are exactly the cases where
// only specific pairings stay simple — hence the backtracking, bounded so
// an adversarial spec fails as infeasible rather than spinning.
func regularize(g *Graph, slots []int, budget *int) bool {
	if len(slots) == 0 {
		return true
	}
	if *budget <= 0 {
		return false
	}
	*budget--
	v, m := slots[0], len(slots)
	tried := make(map[int]bool, m)
	for off := 0; off < m; off++ {
		j := (m/2 + off) % m
		if j == 0 {
			continue
		}
		w := slots[j]
		if w == v || tried[w] || g.HasLink(v, w) {
			continue
		}
		tried[w] = true
		if g.AddLink(v, w) != nil {
			continue
		}
		rest := make([]int, 0, m-2)
		rest = append(append(rest, slots[1:j]...), slots[j+1:]...)
		if regularize(g, rest, budget) {
			return true
		}
		g.RemoveLink(v, w)
	}
	return false
}

// FitDeBruijn picks the (Symbols, Digits) pair whose switch count k^n is
// closest to switches, subject to the regularized degree min(2k, k^n-1)
// fitting under ports with at least one server port left. Ties on switch
// count prefer the degree closest to wantDegree (the equipment the other
// fabrics in a comparison spend on network links), then the smaller
// alphabet. Deterministic; returns an error only when no feasible pair
// exists at all.
func FitDeBruijn(switches, ports, wantDegree int) (DeBruijnSpec, error) {
	if switches < 4 {
		return DeBruijnSpec{}, fmt.Errorf("debruijn: cannot fit a 2-digit fabric to %d switches: %w", switches, ErrInfeasible)
	}
	best := DeBruijnSpec{}
	bestSize, bestDeg := -1, -1
	abs := func(x int) int {
		if x < 0 {
			return -x
		}
		return x
	}
	for k := 2; k*k <= 4*switches; k++ {
		for digits, size := 2, k*k; size <= 2*switches; digits, size = digits+1, size*k {
			s := DeBruijnSpec{Symbols: k, Digits: digits, Ports: ports}
			if s.Validate() != nil {
				continue
			}
			d := s.NetworkDegree()
			switch {
			case bestSize < 0,
				abs(size-switches) < abs(bestSize-switches),
				abs(size-switches) == abs(bestSize-switches) && abs(d-wantDegree) < abs(bestDeg-wantDegree):
				best, bestSize, bestDeg = s, size, d
			}
		}
	}
	if bestSize < 0 {
		return DeBruijnSpec{}, fmt.Errorf("debruijn: no (symbols, digits) pair fits %d switches at radix %d: %w", switches, ports, ErrInfeasible)
	}
	return best, nil
}

// InferDeBruijn recovers the (Symbols, Digits) spec of a graph built by
// DeBruijn, by checking candidate factorizations k^digits = N against the
// shift edges actually present. Largest digit count wins (the smallest
// alphabet), which is the parameterization DeBruijn itself prefers. The
// second return is false when the graph is not a De Bruijn fabric.
func InferDeBruijn(g *Graph) (DeBruijnSpec, bool) {
	n := g.N()
	pow := func(k, digits int) int {
		size := 1
		for i := 0; i < digits; i++ {
			size *= k
			if size > n {
				return size
			}
		}
		return size
	}
	for digits := 26; digits >= 2; digits-- {
		k := 2
		for pow(k, digits) < n {
			k++
		}
		if pow(k, digits) != n {
			continue
		}
		ok := true
		for v := 0; v < n && ok; v++ {
			for y := 0; y < k; y++ {
				w := (v*k + y) % n
				if w != v && !g.HasLink(v, w) {
					ok = false
					break
				}
			}
		}
		if ok {
			return DeBruijnSpec{Symbols: k, Digits: digits, Ports: g.Ports}, true
		}
	}
	return DeBruijnSpec{}, false
}
