package topology

import (
	"errors"
	"testing"
)

func TestFatTreeStructure(t *testing.T) {
	k := 4
	g, err := FatTree(k)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 5*k*k/4 {
		t.Fatalf("switches = %d, want %d", g.N(), 5*k*k/4)
	}
	if g.Servers() != FatTreeServers(k) {
		t.Fatalf("servers = %d, want %d", g.Servers(), FatTreeServers(k))
	}
	if !g.Connected() {
		t.Fatal("fat-tree disconnected")
	}
	// Every switch uses exactly k ports.
	for v := 0; v < g.N(); v++ {
		if g.NetworkDegree(v)+g.ServerCount(v) != k {
			t.Fatalf("switch %d uses %d ports, want %d",
				v, g.NetworkDegree(v)+g.ServerCount(v), k)
		}
	}
	// Only edges (first k²/2 switches) host servers.
	for v := 0; v < g.N(); v++ {
		hostsServers := g.ServerCount(v) > 0
		isEdge := v < k*k/2
		if hostsServers != isEdge {
			t.Fatalf("switch %d: servers=%v edge=%v", v, hostsServers, isEdge)
		}
	}
}

func TestFatTreePathLengths(t *testing.T) {
	g, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	st, err := RackPathStats(g)
	if err != nil {
		t.Fatal(err)
	}
	// Same pod: 2 hops via aggregation; cross-pod: 4 hops via core.
	if st.Diameter != 4 {
		t.Fatalf("rack diameter = %d, want 4", st.Diameter)
	}
	if st.Hist[2] <= 0 || st.Hist[4] <= 0 || st.Hist[1] != 0 || st.Hist[3] != 0 {
		t.Fatalf("path histogram = %v, want mass only at 2 and 4", st.Hist)
	}
	// Leaf-spine racks are uniformly 2 apart — strictly shorter on average
	// than the 3-tier tree, the §2 observation motivating the paper's
	// question of whether expander gains survive at 2 tiers.
	ls, err := LeafSpine(LeafSpineSpec{X: 2, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	lst, err := RackPathStats(ls)
	if err != nil {
		t.Fatal(err)
	}
	if lst.Mean >= st.Mean {
		t.Fatalf("leaf-spine mean path %v not shorter than fat-tree %v", lst.Mean, st.Mean)
	}
}

func TestFatTreeRejectsOddK(t *testing.T) {
	for _, k := range []int{0, 1, 3, 5} {
		if _, err := FatTree(k); !errors.Is(err, ErrInfeasible) {
			t.Fatalf("k=%d accepted", k)
		}
	}
}

func TestFatTreeFlattens(t *testing.T) {
	// The §3.1 rewiring machinery applies to 3-tier trees too: flattening a
	// fat-tree spreads its servers over all 5k²/4 switches.
	g, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Flatten(g, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if flat.Servers() != g.Servers() || flat.N() != g.N() {
		t.Fatal("flatten changed equipment")
	}
	nsrBase, err := NSR(g)
	if err != nil {
		t.Fatal(err)
	}
	nsrFlat, err := NSR(flat)
	if err != nil {
		t.Fatal(err)
	}
	// Fat-tree edge NSR = 1 (k/2 up, k/2 down); the flat rewiring packs
	// ~16/5 servers per switch on radix 4... NSR must rise.
	if nsrFlat.Mean <= nsrBase.Mean {
		t.Fatalf("flattening did not raise NSR: %v vs %v", nsrFlat.Mean, nsrBase.Mean)
	}
}
