package topology

import "fmt"

// LeafSpineSpec describes a leaf-spine(x, y) network as defined in §3.1 of
// the paper: y spines each connected to all leaves, x+y leaves each connected
// to all spines, and x servers per leaf. Every switch has degree x+y.
type LeafSpineSpec struct {
	X int // servers per leaf (also: oversubscription numerator)
	Y int // number of spines
}

// Oversubscription returns the ToR oversubscription ratio x/y.
func (s LeafSpineSpec) Oversubscription() float64 { return float64(s.X) / float64(s.Y) }

// Leaves returns the number of leaf switches, x+y.
func (s LeafSpineSpec) Leaves() int { return s.X + s.Y }

// Switches returns the total switch count, x+2y.
func (s LeafSpineSpec) Switches() int { return s.X + 2*s.Y }

// TotalServers returns x*(x+y).
func (s LeafSpineSpec) TotalServers() int { return s.X * (s.X + s.Y) }

// Radix returns the per-switch port count, x+y.
func (s LeafSpineSpec) Radix() int { return s.X + s.Y }

// Validate reports whether the spec parameters are positive.
func (s LeafSpineSpec) Validate() error {
	if s.X <= 0 || s.Y <= 0 {
		return fmt.Errorf("leafspine(%d,%d): parameters must be positive: %w", s.X, s.Y, ErrInfeasible)
	}
	return nil
}

// LeafSpine builds the leaf-spine(x, y) fabric. Switch ids 0..x+y-1 are
// leaves (each hosting x servers); ids x+y..x+2y-1 are spines (no servers).
func LeafSpine(spec LeafSpineSpec) (*Graph, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	leaves, spines := spec.Leaves(), spec.Y
	g := New(fmt.Sprintf("leafspine(%d,%d)", spec.X, spec.Y), leaves+spines, spec.Radix())
	for l := 0; l < leaves; l++ {
		g.SetServers(l, spec.X)
		for sp := 0; sp < spines; sp++ {
			if err := g.AddLink(l, leaves+sp); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// IsSpine reports whether switch v is a spine in the fabric produced by
// LeafSpine(spec).
func (s LeafSpineSpec) IsSpine(v int) bool { return v >= s.Leaves() }

// PaperLeafSpine is the industry-recommended configuration evaluated in
// §5.1: leaf-spine(48, 16) — oversubscription 3:1, 64 racks, 3072 servers.
var PaperLeafSpine = LeafSpineSpec{X: 48, Y: 16}
