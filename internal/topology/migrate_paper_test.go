package topology

import "testing"

func TestPlanMigrationPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale migration")
	}
	base, err := LeafSpine(PaperLeafSpine)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Flatten(base, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanMigration(base, flat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Apply(base, flat); err != nil {
		t.Fatal(err)
	}
	t.Logf("paper-scale migration: %d cable moves, %d server moves", len(plan.Steps), plan.ServerMoves)
}
