package topology

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// adjacencySerialization renders the full adjacency structure in stored
// order — deliberately NOT sorted, so any construction-order nondeterminism
// (map iteration, unstable-sort ties) changes the string.
func adjacencySerialization(g *Graph) string {
	var b strings.Builder
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(&b, "%d:%v\n", v, g.Neighbors(v))
	}
	return b.String()
}

// TestRRGDeterministicFromSeed pins the determinism contract (DESIGN.md §6):
// two constructions from the same seed must produce byte-identical wiring.
func TestRRGDeterministicFromSeed(t *testing.T) {
	build := func() *Graph {
		g, err := RegularRRG("rrg", 40, 7, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	if a, b := adjacencySerialization(build()), adjacencySerialization(build()); a != b {
		t.Fatalf("same-seed RRG constructions differ:\n%s\nvs\n%s", a, b)
	}
	// The dense path goes through the complement construction; pin it too.
	dense := func() *Graph {
		g, err := RegularRRG("dense", 20, 15, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	if a, b := adjacencySerialization(dense()), adjacencySerialization(dense()); a != b {
		t.Fatal("same-seed dense (complement) RRG constructions differ")
	}
}

// TestDRingDeterministic pins DRing construction, which must be fully
// deterministic even without a seed (no randomness in the builder).
func TestDRingDeterministic(t *testing.T) {
	build := func() *Graph {
		g, err := DRing(Uniform(8, 4, 24))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	if a, b := adjacencySerialization(build()), adjacencySerialization(build()); a != b {
		t.Fatal("DRing constructions differ")
	}
}
