package topology

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestLeafSpineStructure(t *testing.T) {
	spec := LeafSpineSpec{X: 4, Y: 2}
	g, err := LeafSpine(spec)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != spec.Switches() {
		t.Fatalf("switches = %d, want %d", g.N(), spec.Switches())
	}
	if g.Servers() != spec.TotalServers() {
		t.Fatalf("servers = %d, want %d", g.Servers(), spec.TotalServers())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("leaf-spine disconnected")
	}
	// Every leaf connects to every spine exactly once; no leaf-leaf or
	// spine-spine links.
	for l := 0; l < spec.Leaves(); l++ {
		if g.ServerCount(l) != spec.X {
			t.Fatalf("leaf %d has %d servers, want %d", l, g.ServerCount(l), spec.X)
		}
		for sp := spec.Leaves(); sp < g.N(); sp++ {
			if m := g.LinkMultiplicity(l, sp); m != 1 {
				t.Fatalf("leaf %d - spine %d multiplicity %d", l, sp, m)
			}
		}
		for l2 := 0; l2 < spec.Leaves(); l2++ {
			if l != l2 && g.HasLink(l, l2) {
				t.Fatalf("leaf-leaf link %d-%d", l, l2)
			}
		}
	}
	for sp := spec.Leaves(); sp < g.N(); sp++ {
		if g.ServerCount(sp) != 0 {
			t.Fatalf("spine %d hosts servers", sp)
		}
		if g.NetworkDegree(sp) != spec.Leaves() {
			t.Fatalf("spine %d degree %d, want %d", sp, g.NetworkDegree(sp), spec.Leaves())
		}
	}
}

func TestLeafSpinePaperConfig(t *testing.T) {
	g, err := LeafSpine(PaperLeafSpine)
	if err != nil {
		t.Fatal(err)
	}
	// §5.1: 64 racks, 3072 servers, 3:1 oversubscription, 80 switches.
	if got := len(g.Racks()); got != 64 {
		t.Errorf("racks = %d, want 64", got)
	}
	if g.Servers() != 3072 {
		t.Errorf("servers = %d, want 3072", g.Servers())
	}
	if g.N() != 80 {
		t.Errorf("switches = %d, want 80", g.N())
	}
	if r := PaperLeafSpine.Oversubscription(); r != 3 {
		t.Errorf("oversubscription = %v, want 3", r)
	}
}

func TestLeafSpineRejectsBadSpec(t *testing.T) {
	for _, spec := range []LeafSpineSpec{{0, 1}, {1, 0}, {-2, 3}} {
		if _, err := LeafSpine(spec); !errors.Is(err, ErrInfeasible) {
			t.Errorf("LeafSpine(%v) err = %v, want ErrInfeasible", spec, err)
		}
	}
}

func TestRRGRegular(t *testing.T) {
	g, err := RegularRRG("rrg", 20, 5, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if g.NetworkDegree(v) != 5 {
			t.Fatalf("switch %d degree %d, want 5", v, g.NetworkDegree(v))
		}
		// Simple graph: no parallel links.
		for _, w := range g.Neighbors(v) {
			if g.LinkMultiplicity(v, w) != 1 {
				t.Fatalf("parallel link %d-%d", v, w)
			}
		}
	}
	if !g.Connected() {
		t.Fatal("RRG(20,5) disconnected (astronomically unlikely)")
	}
}

func TestRRGDegreeSequence(t *testing.T) {
	deg := []int{3, 3, 2, 2, 2, 2, 1, 1} // even sum = 16
	g, err := RRG("rrg", deg, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range deg {
		if g.NetworkDegree(v) != d {
			t.Fatalf("switch %d degree %d, want %d", v, g.NetworkDegree(v), d)
		}
	}
}

func TestRRGRejectsOddSum(t *testing.T) {
	if _, err := RRG("bad", []int{1, 1, 1}, testRNG()); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("odd degree sum: err = %v, want ErrInfeasible", err)
	}
	if _, err := RRG("bad", []int{-1, 1}, testRNG()); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("negative degree: err = %v, want ErrInfeasible", err)
	}
	if _, err := RegularRRG("bad", 4, 4, testRNG()); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("d >= n: err = %v, want ErrInfeasible", err)
	}
}

func TestRRGQuickSimpleAndExactDegrees(t *testing.T) {
	f := func(seed int64, nRaw, dRaw uint8) bool {
		n := 6 + int(nRaw%40)
		d := 2 + int(dRaw)%(n-3)
		if n*d%2 != 0 {
			n++ // make the sum even
		}
		rng := testRNG()
		rng.Seed(seed)
		g, err := RegularRRG("q", n, d, rng)
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if g.NetworkDegree(v) != d {
				return false
			}
			seen := map[int]bool{}
			for _, w := range g.Neighbors(v) {
				if w == v || seen[w] {
					return false
				}
				seen[w] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFlattenPreservesEquipment(t *testing.T) {
	spec := LeafSpineSpec{X: 6, Y: 2}
	base, err := LeafSpine(spec)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Flatten(base, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if flat.N() != base.N() {
		t.Fatalf("switch count changed: %d -> %d", base.N(), flat.N())
	}
	if flat.Servers() != base.Servers() {
		t.Fatalf("server count changed: %d -> %d", base.Servers(), flat.Servers())
	}
	if flat.Ports != base.Ports {
		t.Fatalf("radix changed: %d -> %d", base.Ports, flat.Ports)
	}
	if err := flat.Validate(); err != nil {
		t.Fatal(err)
	}
	if !flat.Connected() {
		t.Fatal("flat rewiring disconnected")
	}
	// Flat: every switch hosts servers, spread within ±1.
	lo, hi := math.MaxInt, 0
	for v := 0; v < flat.N(); v++ {
		s := flat.ServerCount(v)
		if s == 0 {
			t.Fatalf("flat switch %d hosts no servers", v)
		}
		lo = min(lo, s)
		hi = max(hi, s)
	}
	if hi-lo > 1 {
		t.Fatalf("uneven server spread: min %d max %d", lo, hi)
	}
}

func TestFlattenNSRDoubles(t *testing.T) {
	// §3.1: NSR(F(T)) = 2 · NSR(T) for leaf-spine equipment, so UDF = 2.
	base, err := LeafSpine(PaperLeafSpine)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Flatten(base, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	udf, err := UDF(base, flat)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(udf-2) > 0.05 {
		t.Fatalf("empirical UDF = %.4f, want ≈2", udf)
	}
	nsrBase, nsrFlat, analytic := UDFLeafSpineAnalytic(PaperLeafSpine)
	if math.Abs(analytic-2) > 1e-12 {
		t.Fatalf("analytic UDF = %v, want exactly 2", analytic)
	}
	if math.Abs(nsrBase-16.0/48.0) > 1e-12 || math.Abs(nsrFlat-32.0/48.0) > 1e-12 {
		t.Fatalf("analytic NSRs = %v, %v; want 1/3, 2/3", nsrBase, nsrFlat)
	}
}

func TestUDFIndependentOfYQuick(t *testing.T) {
	// §3.1: UDF(leaf-spine(x,y)) = 2 for all positive x, y.
	f := func(xr, yr uint8) bool {
		x, y := 1+int(xr%60), 1+int(yr%60)
		_, _, udf := UDFLeafSpineAnalytic(LeafSpineSpec{X: x, Y: y})
		return math.Abs(udf-2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDRingStructure(t *testing.T) {
	spec := Uniform(6, 3, 20) // network degree 4*3=12, 8 servers per ToR
	g, err := DRing(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 18 {
		t.Fatalf("switches = %d, want 18", g.N())
	}
	for v := 0; v < g.N(); v++ {
		if g.NetworkDegree(v) != 12 {
			t.Fatalf("ToR %d network degree %d, want 12", v, g.NetworkDegree(v))
		}
		if g.ServerCount(v) != 8 {
			t.Fatalf("ToR %d servers %d, want 8", v, g.ServerCount(v))
		}
	}
	// Links exist exactly between ToRs in supernodes at ring distance 1 or 2.
	m := spec.Supernodes()
	for a := 0; a < g.N(); a++ {
		for b := a + 1; b < g.N(); b++ {
			sa, sb := spec.SupernodeOf(a), spec.SupernodeOf(b)
			d := ringDist(sa, sb, m)
			want := d == 1 || d == 2
			if got := g.HasLink(a, b); got != want {
				t.Fatalf("link %d-%d (supernodes %d,%d, ringdist %d): got %v want %v",
					a, b, sa, sb, d, got, want)
			}
			if g.LinkMultiplicity(a, b) > 1 {
				t.Fatalf("parallel link %d-%d", a, b)
			}
		}
	}
	if !g.Connected() {
		t.Fatal("DRing disconnected")
	}
}

func ringDist(a, b, m int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if m-d < d {
		d = m - d
	}
	return d
}

func TestDRingRejectsSmallRing(t *testing.T) {
	if _, err := DRing(Uniform(4, 2, 20)); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("m=4: err = %v, want ErrInfeasible", err)
	}
	if _, err := DRing(Uniform(6, 5, 20)); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("no server ports: err = %v, want ErrInfeasible", err)
	}
	if _, err := DRing(DRingSpec{Sizes: []int{2, 2, 0, 2, 2}, Ports: 20}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("zero-size supernode: err = %v, want ErrInfeasible", err)
	}
}

func TestPaperDRingMatchesSection51(t *testing.T) {
	g, err := DRing(PaperDRing())
	if err != nil {
		t.Fatal(err)
	}
	// §5.1: 80 racks and ~2988 servers ("about 2.8% fewer" than 3072).
	if g.N() != 80 {
		t.Fatalf("racks = %d, want 80", g.N())
	}
	if s := g.Servers(); s < 2940 || s > 3040 {
		t.Fatalf("servers = %d, want ≈2988", s)
	}
	deficit := 1 - float64(g.Servers())/3072
	if deficit < 0 || deficit > 0.05 {
		t.Fatalf("server deficit vs leaf-spine = %.3f, want ≈0.028", deficit)
	}
}

func TestFig6DRingGeometry(t *testing.T) {
	g, err := DRing(Fig6DRing(10))
	if err != nil {
		t.Fatal(err)
	}
	// §6.3: 6 switches per supernode, 60 ports, 36 server links per ToR.
	if g.N() != 60 {
		t.Fatalf("racks = %d, want 60", g.N())
	}
	for v := 0; v < g.N(); v++ {
		if g.ServerCount(v) != 36 {
			t.Fatalf("ToR %d servers = %d, want 36", v, g.ServerCount(v))
		}
		if g.NetworkDegree(v) != 24 {
			t.Fatalf("ToR %d network degree = %d, want 24", v, g.NetworkDegree(v))
		}
	}
}

func TestBalancedDRingSizes(t *testing.T) {
	spec := BalancedDRing(80, 12, 64)
	if spec.Switches() != 80 {
		t.Fatalf("switches = %d, want 80", spec.Switches())
	}
	lo, hi := math.MaxInt, 0
	for _, s := range spec.Sizes {
		lo, hi = min(lo, s), max(hi, s)
	}
	if hi-lo > 1 {
		t.Fatalf("sizes differ by more than 1: %v", spec.Sizes)
	}
}

func TestXpanderRegular(t *testing.T) {
	g, err := Xpander(20, 4, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if g.N() < 20 {
		t.Fatalf("switches = %d, want >= 20", g.N())
	}
	for v := 0; v < g.N(); v++ {
		if g.NetworkDegree(v) != 4 {
			t.Fatalf("switch %d degree %d, want 4", v, g.NetworkDegree(v))
		}
	}
	if !g.Connected() {
		t.Fatal("xpander disconnected")
	}
	if err := AttachServersEvenly(g, g.N()*3, 8); err != nil {
		t.Fatal(err)
	}
	if g.Servers() != g.N()*3 {
		t.Fatalf("servers = %d, want %d", g.Servers(), g.N()*3)
	}
}

func TestAttachServersEvenlyOverflow(t *testing.T) {
	g, err := Xpander(10, 4, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if err := AttachServersEvenly(g, g.N()*10, 6); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSpreadEvenly(t *testing.T) {
	cases := []struct {
		total, n int
		want     []int
	}{
		{7, 3, []int{3, 2, 2}},
		{6, 3, []int{2, 2, 2}},
		{0, 2, []int{0, 0}},
		{5, 1, []int{5}},
	}
	for _, c := range cases {
		got := SpreadEvenly(c.total, c.n)
		if len(got) != len(c.want) {
			t.Fatalf("SpreadEvenly(%d,%d) = %v", c.total, c.n, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("SpreadEvenly(%d,%d) = %v, want %v", c.total, c.n, got, c.want)
			}
		}
	}
}

func TestSpreadEvenlyQuick(t *testing.T) {
	f := func(totalRaw, nRaw uint16) bool {
		total, n := int(totalRaw%5000), 1+int(nRaw%100)
		out := SpreadEvenly(total, n)
		sum, lo, hi := 0, math.MaxInt, 0
		for _, v := range out {
			sum += v
			lo, hi = min(lo, v), max(hi, v)
		}
		return sum == total && hi-lo <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
