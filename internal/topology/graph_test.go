package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGraphEmpty(t *testing.T) {
	g := New("empty", 4, 8)
	if g.N() != 4 || g.Links() != 0 || g.Servers() != 0 {
		t.Fatalf("unexpected empty graph: %v", g)
	}
	if !g.Connected() {
		// 4 isolated switches are not connected.
		t.Log("disconnected as expected")
	} else {
		t.Fatal("4 isolated switches reported connected")
	}
}

func TestAddLinkRejectsSelfLoop(t *testing.T) {
	g := New("g", 2, 4)
	if err := g.AddLink(0, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddLink(0, 2); err == nil {
		t.Fatal("out-of-range link accepted")
	}
	if err := g.AddLink(-1, 0); err == nil {
		t.Fatal("negative switch accepted")
	}
}

func TestAddRemoveLink(t *testing.T) {
	g := New("g", 3, 4)
	mustLink(t, g, 0, 1)
	mustLink(t, g, 0, 1) // parallel link
	mustLink(t, g, 1, 2)
	if g.Links() != 3 {
		t.Fatalf("links = %d, want 3", g.Links())
	}
	if got := g.LinkMultiplicity(0, 1); got != 2 {
		t.Fatalf("multiplicity(0,1) = %d, want 2", got)
	}
	if !g.RemoveLink(0, 1) {
		t.Fatal("RemoveLink failed")
	}
	if g.Links() != 2 || g.LinkMultiplicity(0, 1) != 1 {
		t.Fatalf("after remove: links=%d mult=%d", g.Links(), g.LinkMultiplicity(0, 1))
	}
	if g.RemoveLink(0, 2) {
		t.Fatal("removed nonexistent link")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestServerIndexing(t *testing.T) {
	g := New("g", 3, 8)
	g.SetServers(0, 2)
	g.SetServers(1, 0)
	g.SetServers(2, 3)
	if g.Servers() != 5 {
		t.Fatalf("Servers = %d, want 5", g.Servers())
	}
	wantRack := []int{0, 0, 2, 2, 2}
	for s, want := range wantRack {
		if got := g.RackOf(s); got != want {
			t.Errorf("RackOf(%d) = %d, want %d", s, got, want)
		}
	}
	lo, hi := g.ServersOf(2)
	if lo != 2 || hi != 5 {
		t.Fatalf("ServersOf(2) = [%d,%d), want [2,5)", lo, hi)
	}
	if g.ServerBase(1) != 2 {
		t.Fatalf("ServerBase(1) = %d, want 2", g.ServerBase(1))
	}
	// Mutate and re-query: the lazy index must refresh.
	g.SetServers(1, 4)
	if g.RackOf(2) != 1 {
		t.Fatalf("RackOf(2) after mutation = %d, want 1", g.RackOf(2))
	}
}

func TestValidatePortBudget(t *testing.T) {
	g := New("g", 2, 2)
	mustLink(t, g, 0, 1)
	g.SetServers(0, 2) // 1 network + 2 server = 3 > radix 2
	if err := g.Validate(); err == nil {
		t.Fatal("over-budget switch passed Validate")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New("g", 3, 4)
	mustLink(t, g, 0, 1)
	g.SetServers(0, 1)
	c := g.Clone()
	mustLink(t, c, 1, 2)
	c.SetServers(0, 3)
	if g.Links() != 1 || g.ServerCount(0) != 1 {
		t.Fatal("mutating clone affected original")
	}
	if c.Links() != 2 || c.ServerCount(0) != 3 {
		t.Fatal("clone did not record mutations")
	}
}

func TestConnected(t *testing.T) {
	g := New("g", 4, 4)
	mustLink(t, g, 0, 1)
	mustLink(t, g, 2, 3)
	if g.Connected() {
		t.Fatal("two components reported connected")
	}
	mustLink(t, g, 1, 2)
	if !g.Connected() {
		t.Fatal("path graph reported disconnected")
	}
}

func TestRacks(t *testing.T) {
	g := New("g", 4, 4)
	g.SetServers(1, 2)
	g.SetServers(3, 1)
	r := g.Racks()
	if len(r) != 2 || r[0] != 1 || r[1] != 3 {
		t.Fatalf("Racks = %v, want [1 3]", r)
	}
}

func TestRackOfQuick(t *testing.T) {
	// Property: for any server distribution, RackOf is the inverse of
	// ServersOf — every server id falls inside its rack's range.
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 32 {
			raw = raw[:32]
		}
		g := New("q", len(raw), 0)
		for i, c := range raw {
			g.SetServers(i, int(c%9))
		}
		for s := 0; s < g.Servers(); s++ {
			r := g.RackOf(s)
			lo, hi := g.ServersOf(r)
			if s < lo || s >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func mustLink(t *testing.T, g *Graph, a, b int) {
	t.Helper()
	if err := g.AddLink(a, b); err != nil {
		t.Fatalf("AddLink(%d,%d): %v", a, b, err)
	}
}

func testRNG() *rand.Rand { return rand.New(rand.NewSource(42)) }
