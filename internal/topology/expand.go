package topology

import (
	"fmt"
	"math/rand"
)

// ExpandReport quantifies the rewiring cost of growing a fabric — the
// §3.2 claim that the DRing "is easily incrementally expandable, by adding
// supernodes in the ring supergraph", made measurable.
type ExpandReport struct {
	// LinksAdded and LinksRemoved count physical cabling changes among
	// pre-existing and new switches.
	LinksAdded, LinksRemoved int
	// TouchedSwitches counts pre-existing switches whose cabling changed.
	TouchedSwitches int
	// ServerDelta is the change in total server ports across pre-existing
	// switches (ports freed or consumed by the rewiring).
	ServerDelta int
}

// ExpandDRing grows a DRing by appending new supernodes at the ring seam
// (between the last and first supernode). Pre-existing ToRs keep their ids;
// new ToRs are appended. It returns the expanded fabric and the rewiring
// cost relative to DRing(old).
//
// The cost is local to the seam: only ToRs within ring distance 2 of the
// insertion point are touched, independent of the ring's length — the
// property that makes incremental expansion cheap at small scale.
func ExpandDRing(old DRingSpec, extra []int) (*Graph, DRingSpec, ExpandReport, error) {
	if len(extra) == 0 {
		return nil, DRingSpec{}, ExpandReport{}, fmt.Errorf("dring: nothing to add: %w", ErrInfeasible)
	}
	for i, e := range extra {
		if e <= 0 {
			return nil, DRingSpec{}, ExpandReport{}, fmt.Errorf("dring: extra supernode %d has size %d: %w", i, e, ErrInfeasible)
		}
	}
	newSpec := DRingSpec{Sizes: append(append([]int(nil), old.Sizes...), extra...), Ports: old.Ports}
	gOld, err := DRing(old)
	if err != nil {
		return nil, DRingSpec{}, ExpandReport{}, err
	}
	gNew, err := DRing(newSpec)
	if err != nil {
		return nil, DRingSpec{}, ExpandReport{}, err
	}
	rep := diffGraphs(gOld, gNew)
	return gNew, newSpec, rep, nil
}

// diffGraphs compares edge sets over the shared id range (old switches keep
// their ids; new ones have ids >= old.N()).
func diffGraphs(old, new *Graph) ExpandReport {
	oldEdges := edgeSet(old)
	newEdges := edgeSet(new)
	var rep ExpandReport
	touched := map[int]bool{}
	for e := range oldEdges {
		if !newEdges[e] {
			rep.LinksRemoved++
			touched[e[0]] = true
			touched[e[1]] = true
		}
	}
	for e := range newEdges {
		if !oldEdges[e] {
			rep.LinksAdded++
			if e[0] < old.N() {
				touched[e[0]] = true
			}
			if e[1] < old.N() {
				touched[e[1]] = true
			}
		}
	}
	for v := range touched {
		if v < old.N() {
			rep.TouchedSwitches++
		}
	}
	for v := 0; v < old.N(); v++ {
		rep.ServerDelta += new.ServerCount(v) - old.ServerCount(v)
	}
	return rep
}

func edgeSet(g *Graph) map[[2]int]bool {
	out := make(map[[2]int]bool, g.Links())
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if v < w {
				out[[2]int{v, w}] = true
			}
		}
	}
	return out
}

// ExpandRRG grows a random regular graph the Jellyfish way: each new switch
// with degree d is attached by removing ⌊d/2⌋ random existing links and
// connecting both freed endpoints to the newcomer. Servers are not
// reassigned. It returns the expanded fabric and the rewiring cost.
func ExpandRRG(g *Graph, newSwitches, degree int, rng *rand.Rand) (*Graph, ExpandReport, error) {
	if newSwitches <= 0 || degree < 2 {
		return nil, ExpandReport{}, fmt.Errorf("rrg: bad expansion (%d switches, degree %d): %w",
			newSwitches, degree, ErrInfeasible)
	}
	out := g.Clone()
	var rep ExpandReport
	touched := map[int]bool{}
	for k := 0; k < newSwitches; k++ {
		v := out.AddSwitches(1)
		need := degree / 2
		for i := 0; i < need; i++ {
			a, b, ok := randomEdgeAvoiding(out, v, rng)
			if !ok {
				return nil, ExpandReport{}, fmt.Errorf("rrg: no removable links left: %w", ErrInfeasible)
			}
			out.RemoveLink(a, b)
			rep.LinksRemoved++
			if err := out.AddLink(a, v); err != nil {
				return nil, ExpandReport{}, err
			}
			if err := out.AddLink(b, v); err != nil {
				return nil, ExpandReport{}, err
			}
			rep.LinksAdded += 2
			if a < g.N() {
				touched[a] = true
			}
			if b < g.N() {
				touched[b] = true
			}
		}
	}
	rep.TouchedSwitches = len(touched)
	return out, rep, nil
}

// randomEdgeAvoiding picks a uniform random link not incident to v and not
// already duplicating a v-adjacency (keeps the graph simple).
func randomEdgeAvoiding(g *Graph, v int, rng *rand.Rand) (int, int, bool) {
	type edge struct{ a, b int }
	var candidates []edge
	for a := 0; a < g.N(); a++ {
		if a == v {
			continue
		}
		for _, b := range g.Neighbors(a) {
			if a < b && b != v && !g.HasLink(a, v) && !g.HasLink(b, v) {
				candidates = append(candidates, edge{a, b})
			}
		}
	}
	if len(candidates) == 0 {
		return 0, 0, false
	}
	e := candidates[rng.Intn(len(candidates))]
	return e.a, e.b, true
}
