package topology

import "fmt"

// DragonflySpec describes a canonical Dragonfly [16]: Groups groups of A
// routers each; routers within a group form a complete graph; each router
// contributes H global links, and the A×H global link endpoints of a group
// are spread across the other groups in the standard round-robin
// arrangement. §7 names Dragonfly (with Slim Fly) as another low-diameter
// flat network worth considering at small scale.
type DragonflySpec struct {
	A      int // routers per group
	H      int // global links per router
	Groups int // total groups; at most A*H + 1 for the canonical wiring
	Ports  int // switch radix; spare ports host servers
}

// MaxGroups returns the largest canonical group count, a*h+1.
func (s DragonflySpec) MaxGroups() int { return s.A*s.H + 1 }

// Switches returns the total router count.
func (s DragonflySpec) Switches() int { return s.A * s.Groups }

// NetworkDegree returns each router's network degree: (A-1) local + H global.
func (s DragonflySpec) NetworkDegree() int { return s.A - 1 + s.H }

// Validate checks the spec.
func (s DragonflySpec) Validate() error {
	if s.A < 2 || s.H < 1 {
		return fmt.Errorf("dragonfly: need A >= 2 and H >= 1, got A=%d H=%d: %w", s.A, s.H, ErrInfeasible)
	}
	if s.Groups < 2 || s.Groups > s.MaxGroups() {
		return fmt.Errorf("dragonfly: groups must be in [2, %d], got %d: %w", s.MaxGroups(), s.Groups, ErrInfeasible)
	}
	if s.NetworkDegree() >= s.Ports {
		return fmt.Errorf("dragonfly: network degree %d leaves no server ports on radix %d: %w",
			s.NetworkDegree(), s.Ports, ErrInfeasible)
	}
	return nil
}

// Dragonfly builds the fabric. Routers are numbered group-major; servers
// fill every router's spare ports, so the network is flat. With fewer than
// the maximum groups, global ports that would reach missing groups are
// reused as extra server ports.
func Dragonfly(spec DragonflySpec) (*Graph, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := New(fmt.Sprintf("dragonfly(a=%d,h=%d,g=%d)", spec.A, spec.H, spec.Groups),
		spec.Switches(), spec.Ports)
	// Local links: complete graph within each group.
	for grp := 0; grp < spec.Groups; grp++ {
		base := grp * spec.A
		for i := 0; i < spec.A; i++ {
			for j := i + 1; j < spec.A; j++ {
				if err := g.AddLink(base+i, base+j); err != nil {
					return nil, err
				}
			}
		}
	}
	// Global links: slot s ∈ [0, A*H) of group grp connects to group
	// (grp + s + 1) mod MaxGroups when that group exists; the canonical
	// pairing connects slot s of grp to the matching slot of the peer.
	maxG := spec.MaxGroups()
	for grp := 0; grp < spec.Groups; grp++ {
		for s := 0; s < spec.A*spec.H; s++ {
			peer := (grp + s + 1) % maxG
			if peer >= spec.Groups || peer == grp {
				continue // missing group: port becomes a server port
			}
			if grp < peer { // add each inter-group link once
				// Router owning slot s locally, and the peer's matching slot:
				// peer slot s' satisfies (peer + s' + 1) ≡ grp (mod maxG).
				sp := (grp - peer - 1 + maxG) % maxG
				if sp >= spec.A*spec.H {
					continue
				}
				a := grp*spec.A + s/spec.H
				b := peer*spec.A + sp/spec.H
				if err := g.AddLink(a, b); err != nil {
					return nil, err
				}
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		g.SetServers(v, spec.Ports-g.NetworkDegree(v))
	}
	return g, nil
}
