package topology

import (
	"testing"
)

func TestPlanMigrationLeafSpineToFlat(t *testing.T) {
	base, err := LeafSpine(LeafSpineSpec{X: 6, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Flatten(base, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanMigration(base, flat)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) == 0 {
		t.Fatal("empty plan for a real rewiring")
	}
	// Replaying must keep connectivity throughout and land on the target.
	final, err := plan.Apply(base, flat)
	if err != nil {
		t.Fatal(err)
	}
	if final.Links() != flat.Links() {
		t.Fatalf("final links = %d, want %d", final.Links(), flat.Links())
	}
	for a := 0; a < flat.N(); a++ {
		for b := a + 1; b < flat.N(); b++ {
			if final.LinkMultiplicity(a, b) != flat.LinkMultiplicity(a, b) {
				t.Fatalf("final fabric differs from target at %d-%d", a, b)
			}
		}
	}
	if final.Servers() != flat.Servers() {
		t.Fatalf("final servers = %d, want %d", final.Servers(), flat.Servers())
	}
	// Servers move from the old leaves to the former spines.
	if plan.ServerMoves == 0 {
		t.Fatal("flat rewiring should move servers")
	}
	if err := final.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanMigrationToDRing(t *testing.T) {
	base, err := LeafSpine(LeafSpineSpec{X: 6, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	dr, err := DRing(BalancedDRing(base.N(), 10, base.Ports))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanMigration(base, dr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Apply(base, dr); err != nil {
		t.Fatal(err)
	}
}

func TestPlanMigrationIdentity(t *testing.T) {
	g, err := DRing(Uniform(6, 2, 20))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanMigration(g, g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 0 || plan.ServerMoves != 0 {
		t.Fatalf("identity migration has %d steps, %d moves", len(plan.Steps), plan.ServerMoves)
	}
}

func TestPlanMigrationSizeMismatch(t *testing.T) {
	a := New("a", 3, 4)
	b := New("b", 4, 4)
	if _, err := PlanMigration(a, b); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestApplyDetectsCorruptPlan(t *testing.T) {
	base, err := LeafSpine(LeafSpineSpec{X: 4, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Flatten(base, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	bad := MigrationPlan{Steps: []CableMove{{RemoveA: 0, RemoveB: 1, AddA: -1, AddB: -1}}}
	if _, err := bad.Apply(base, flat); err == nil {
		t.Fatal("removal of nonexistent leaf-leaf link accepted")
	}
}

func TestPlanMigrationSurplusRemovals(t *testing.T) {
	// From a triangle to a path: one pure removal at the end.
	tri := New("tri", 3, 4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		mustLink(t, tri, e[0], e[1])
	}
	path := New("path", 3, 4)
	mustLink(t, path, 0, 1)
	mustLink(t, path, 1, 2)
	plan, err := PlanMigration(tri, path)
	if err != nil {
		t.Fatal(err)
	}
	final, err := plan.Apply(tri, path)
	if err != nil {
		t.Fatal(err)
	}
	if final.Links() != 2 {
		t.Fatalf("final links = %d", final.Links())
	}
}

func TestPlanMigrationPureAdditions(t *testing.T) {
	path := New("path", 3, 4)
	mustLink(t, path, 0, 1)
	mustLink(t, path, 1, 2)
	tri := New("tri", 3, 4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		mustLink(t, tri, e[0], e[1])
	}
	plan, err := PlanMigration(path, tri)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Apply(path, tri); err != nil {
		t.Fatal(err)
	}
}
