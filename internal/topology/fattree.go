package topology

import "fmt"

// FatTree builds the 3-tier k-ary fat-tree of Al-Fares et al. [4] — the
// hyperscale architecture the expander literature (§2) compares against.
// It is included so the moderate-scale story can be contrasted with the
// 3-tier world: k pods of k/2 edge and k/2 aggregation switches, (k/2)²
// cores, k³/4 servers, every switch radix k.
//
// Switch ids: edges first (pod-major), then aggregations (pod-major), then
// cores. Only edge switches host servers, so — like the leaf-spine — the
// fat-tree is not flat.
func FatTree(k int) (*Graph, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("fattree: k must be even and >= 2, got %d: %w", k, ErrInfeasible)
	}
	half := k / 2
	edges := k * half
	aggs := k * half
	cores := half * half
	g := New(fmt.Sprintf("fattree(%d)", k), edges+aggs+cores, k)

	edgeID := func(pod, i int) int { return pod*half + i }
	aggID := func(pod, j int) int { return edges + pod*half + j }
	coreID := func(c int) int { return edges + aggs + c }

	for pod := 0; pod < k; pod++ {
		for i := 0; i < half; i++ {
			g.SetServers(edgeID(pod, i), half)
			for j := 0; j < half; j++ {
				if err := g.AddLink(edgeID(pod, i), aggID(pod, j)); err != nil {
					return nil, err
				}
			}
		}
		// Aggregation j uplinks to cores [j·k/2, (j+1)·k/2).
		for j := 0; j < half; j++ {
			for c := j * half; c < (j+1)*half; c++ {
				if err := g.AddLink(aggID(pod, j), coreID(c)); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// FatTreeServers returns k³/4.
func FatTreeServers(k int) int { return k * k * k / 4 }
