package topology

import (
	"fmt"
	"math/rand"
)

// Flatten builds F(T): the flat rewiring of a baseline fabric with the exact
// same equipment (§3.1, §5.1). All switches of the baseline become ToRs, the
// baseline's servers are redistributed as evenly as possible across them, and
// the remaining ports are wired as a random regular graph (Jellyfish).
//
// The result has the same switch count, radix, and total server count as the
// baseline. If the leftover network-port sum is odd, one server port on the
// least-loaded switch is left unused (reported by the final port budget, not
// by dropping a server — a server is moved instead so totals are preserved
// whenever possible).
func Flatten(base *Graph, rng *rand.Rand) (*Graph, error) {
	if base.Ports <= 0 {
		return nil, fmt.Errorf("flatten: baseline %q has no radix set: %w", base.Name, ErrInfeasible)
	}
	n := base.N()
	total := base.Servers()
	servers := SpreadEvenly(total, n)
	degrees := make([]int, n)
	sum := 0
	for i, s := range servers {
		if s > base.Ports {
			return nil, fmt.Errorf("flatten: %d servers exceed radix %d at switch %d: %w", s, base.Ports, i, ErrInfeasible)
		}
		degrees[i] = base.Ports - s
		sum += degrees[i]
	}
	if sum%2 != 0 {
		// Leave one port idle at a switch with the largest network degree.
		maxI := 0
		for i, d := range degrees {
			if d > degrees[maxI] {
				maxI = i
			}
		}
		degrees[maxI]--
	}
	g, err := RRG(fmt.Sprintf("flat(%s)", base.Name), degrees, rng)
	if err != nil {
		return nil, err
	}
	g.Ports = base.Ports
	for i, s := range servers {
		g.SetServers(i, s)
	}
	return g, nil
}

// SpreadEvenly distributes total items over n bins as evenly as possible:
// the first total%n bins get one extra item.
func SpreadEvenly(total, n int) []int {
	out := make([]int, n)
	if n == 0 {
		return out
	}
	base, extra := total/n, total%n
	for i := range out {
		out[i] = base
		if i < extra {
			out[i]++
		}
	}
	return out
}
