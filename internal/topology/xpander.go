package topology

import (
	"fmt"
	"math/rand"
)

// Xpander builds an Xpander-style expander [27] by repeated random 2-lifts
// of the complete graph K_{d+1}, where d is the desired network degree.
// Each 2-lift doubles the switch count while preserving d-regularity; lifts
// are applied until the graph has at least minSwitches switches. Servers are
// not attached; callers typically follow with AttachServersEvenly.
//
// The paper's comparisons use the RRG ("a high-end expander"); Xpander is
// provided because §2 discusses it as the cabling-friendly alternative with
// matching performance.
func Xpander(minSwitches, d int, rng *rand.Rand) (*Graph, error) {
	if d < 2 {
		return nil, fmt.Errorf("xpander: degree %d too small: %w", d, ErrInfeasible)
	}
	if minSwitches < d+1 {
		minSwitches = d + 1
	}
	// Start from K_{d+1}.
	type edge struct{ a, b int }
	var edges []edge
	n := d + 1
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			edges = append(edges, edge{a, b})
		}
	}
	// Random 2-lift: vertex v becomes (v, v+n); edge (a,b) becomes either
	// {(a,b),(a+n,b+n)} (parallel) or {(a,b+n),(a+n,b)} (crossed).
	for n < minSwitches {
		lifted := make([]edge, 0, 2*len(edges))
		for _, e := range edges {
			if rng.Intn(2) == 0 {
				lifted = append(lifted, edge{e.a, e.b}, edge{e.a + n, e.b + n})
			} else {
				lifted = append(lifted, edge{e.a, e.b + n}, edge{e.a + n, e.b})
			}
		}
		edges = lifted
		n *= 2
	}
	g := New(fmt.Sprintf("xpander(n=%d,d=%d)", n, d), n, 0)
	for _, e := range edges {
		if err := g.AddLink(e.a, e.b); err != nil {
			return nil, err
		}
	}
	if !g.Connected() {
		// A disconnected lift is possible but rare; retry recursively with
		// fresh randomness (bounded by the caller's patience in practice —
		// each retry succeeds with high probability).
		return Xpander(minSwitches, d, rng)
	}
	return g, nil
}

// AttachServersEvenly sets the radix and spreads totalServers across all
// switches as evenly as possible, failing if any switch lacks spare ports.
func AttachServersEvenly(g *Graph, totalServers, ports int) error {
	g.Ports = ports
	counts := SpreadEvenly(totalServers, g.N())
	for v, c := range counts {
		if g.NetworkDegree(v)+c > ports {
			return fmt.Errorf("topology %q: switch %d needs %d ports, radix %d: %w",
				g.Name, v, g.NetworkDegree(v)+c, ports, ErrInfeasible)
		}
		g.SetServers(v, c)
	}
	return nil
}
