package topology

import (
	"math"
	"testing"
)

func TestNSRLeafSpine(t *testing.T) {
	g, err := LeafSpine(LeafSpineSpec{X: 6, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NSR(g)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 / 6.0
	if math.Abs(st.Mean-want) > 1e-12 || st.Min != st.Max {
		t.Fatalf("NSR = %+v, want uniform %v", st, want)
	}
	if st.Racks != 8 {
		t.Fatalf("racks = %d, want 8", st.Racks)
	}
}

func TestNSRErrorsWithoutServers(t *testing.T) {
	g := New("bare", 3, 4)
	if _, err := NSR(g); err == nil {
		t.Fatal("NSR of serverless fabric succeeded")
	}
}

func TestBFSDistances(t *testing.T) {
	// Path graph 0-1-2-3 plus isolated 4.
	g := New("path", 5, 4)
	mustLink(t, g, 0, 1)
	mustLink(t, g, 1, 2)
	mustLink(t, g, 2, 3)
	d := BFS(g, 0)
	want := []int{0, 1, 2, 3, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("BFS dist = %v, want %v", d, want)
		}
	}
}

func TestRackPathStatsLeafSpine(t *testing.T) {
	g, err := LeafSpine(LeafSpineSpec{X: 4, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := RackPathStats(g)
	if err != nil {
		t.Fatal(err)
	}
	// Any two leaves are exactly 2 hops apart (via a spine).
	if st.Diameter != 2 || st.Mean != 2 {
		t.Fatalf("leaf-spine rack paths: %+v, want all = 2", st)
	}
	if math.Abs(st.Hist[2]-1) > 1e-12 {
		t.Fatalf("hist = %v, want all mass at 2", st.Hist)
	}
}

func TestRackPathStatsDRingShorterThanRing(t *testing.T) {
	// DRing's +2 chords halve distances relative to a plain ring.
	spec := Uniform(8, 2, 40)
	g, err := DRing(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := RackPathStats(g)
	if err != nil {
		t.Fatal(err)
	}
	// Max supernode ring distance is 4; with +2 chords that is 2 ToR hops.
	if st.Diameter != 2 {
		t.Fatalf("diameter = %d, want 2", st.Diameter)
	}
}

func TestAllPairsSymmetric(t *testing.T) {
	g, err := DRing(Uniform(6, 2, 20))
	if err != nil {
		t.Fatal(err)
	}
	d := AllPairsDistances(g)
	for a := range d {
		for b := range d {
			if d[a][b] != d[b][a] {
				t.Fatalf("distance asymmetry %d-%d: %d vs %d", a, b, d[a][b], d[b][a])
			}
		}
	}
	if d[0][0] != 0 {
		t.Fatal("self distance nonzero")
	}
}

func TestBisectionEstimateCycle(t *testing.T) {
	// A cycle's balanced bisection is exactly 2 links.
	g := New("cycle", 10, 4)
	for i := 0; i < 10; i++ {
		mustLink(t, g, i, (i+1)%10)
	}
	if got := BisectionEstimate(g, 20, testRNG()); got != 2 {
		t.Fatalf("bisection(C10) = %d, want 2", got)
	}
}

func TestBisectionDRingIndependentOfRingLength(t *testing.T) {
	// §3.2/§6.3: DRing's bisection is O(n²) in supernode width, flat in ring
	// length m. Growing m must not grow the cut.
	small, err := DRing(Uniform(6, 2, 20))
	if err != nil {
		t.Fatal(err)
	}
	big, err := DRing(Uniform(12, 2, 20))
	if err != nil {
		t.Fatal(err)
	}
	bs := BisectionEstimate(small, 12, testRNG())
	bb := BisectionEstimate(big, 12, testRNG())
	if bb > bs {
		t.Fatalf("bisection grew with ring length: m=6 → %d, m=12 → %d", bs, bb)
	}
	// An RRG with the same per-switch degree keeps Θ(N) bisection, so at
	// m=12 the expander should beat the DRing's ring cut.
	rrg, err := RegularRRG("rrg", big.N(), 8, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if br := BisectionEstimate(rrg, 12, testRNG()); br <= bb {
		t.Fatalf("RRG bisection %d not larger than DRing's %d at m=12", br, bb)
	}
}

func TestBisectionTrivial(t *testing.T) {
	if got := BisectionEstimate(New("one", 1, 0), 4, testRNG()); got != 0 {
		t.Fatalf("bisection of single switch = %d, want 0", got)
	}
}
