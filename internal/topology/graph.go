// Package topology builds and analyzes the data-center fabrics studied in
// "Spineless Data Centers" (HotNets '20): 2-tier leaf-spine networks, their
// flat rewirings, random regular graphs (Jellyfish), the DRing topology, and
// Xpander-style lifted expanders.
//
// A Graph models the switch-level fabric: vertices are switches, edges are
// network links, and each switch hosts zero or more servers. Servers are
// addressed globally (0..Servers()-1) and mapped to their rack via RackOf.
package topology

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is a switch-level fabric. Switches are numbered 0..N-1. Network
// links are undirected; parallel links are permitted and appear once per
// copy in each endpoint's adjacency list. Each switch hosts ServerCount(i)
// servers on dedicated server ports.
//
// The zero value is an empty fabric ready for AddSwitches/AddLink.
type Graph struct {
	Name  string
	Ports int // switch radix (server + network ports); 0 if unconstrained

	servers   []int // servers hosted per switch
	adj       [][]int
	links     int
	serverPre []int // prefix sums of servers, built lazily by reindex
	dirty     bool
}

// New returns a fabric with n switches, no links and no servers.
func New(name string, n, ports int) *Graph {
	return &Graph{
		Name:    name,
		Ports:   ports,
		servers: make([]int, n),
		adj:     make([][]int, n),
	}
}

// N returns the number of switches.
func (g *Graph) N() int { return len(g.adj) }

// Links returns the number of undirected network links.
func (g *Graph) Links() int { return g.links }

// AddSwitches appends k switches and returns the id of the first one.
func (g *Graph) AddSwitches(k int) int {
	first := len(g.adj)
	g.adj = append(g.adj, make([][]int, k)...)
	g.servers = append(g.servers, make([]int, k)...)
	g.dirty = true
	return first
}

// AddLink adds an undirected network link between switches a and b.
// Self-loops are rejected; parallel links are allowed.
func (g *Graph) AddLink(a, b int) error {
	if a == b {
		return fmt.Errorf("topology: self-loop at switch %d", a)
	}
	if a < 0 || a >= len(g.adj) || b < 0 || b >= len(g.adj) {
		return fmt.Errorf("topology: link %d-%d out of range [0,%d)", a, b, len(g.adj))
	}
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
	g.links++
	return nil
}

// RemoveLink removes one copy of the undirected link a-b, if present.
func (g *Graph) RemoveLink(a, b int) bool {
	if !removeOne(&g.adj[a], b) {
		return false
	}
	if !removeOne(&g.adj[b], a) {
		// Adjacency lists disagreed; restore and report corruption loudly.
		g.adj[a] = append(g.adj[a], b)
		panic("topology: asymmetric adjacency")
	}
	g.links--
	return true
}

func removeOne(s *[]int, v int) bool {
	a := *s
	for i, x := range a {
		if x == v {
			a[i] = a[len(a)-1]
			*s = a[:len(a)-1]
			return true
		}
	}
	return false
}

// Neighbors returns the adjacency list of switch v. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// NetworkDegree returns the number of network ports in use at switch v.
func (g *Graph) NetworkDegree(v int) int { return len(g.adj[v]) }

// SetServers assigns k servers to switch v, replacing any previous count.
func (g *Graph) SetServers(v, k int) {
	g.servers[v] = k
	g.dirty = true
}

// ServerCount returns the number of servers hosted at switch v.
func (g *Graph) ServerCount(v int) int { return g.servers[v] }

// Servers returns the total number of servers in the fabric.
func (g *Graph) Servers() int {
	g.reindex()
	return g.serverPre[len(g.serverPre)-1]
}

// RackOf maps a global server id to its switch (rack).
func (g *Graph) RackOf(server int) int {
	g.reindex()
	// serverPre[i] = number of servers on switches < i.
	i := sort.SearchInts(g.serverPre, server+1) - 1
	return i
}

// ServerBase returns the global id of the first server on switch v.
func (g *Graph) ServerBase(v int) int {
	g.reindex()
	return g.serverPre[v]
}

// ServersOf returns the global id range [lo, hi) of servers on switch v.
func (g *Graph) ServersOf(v int) (lo, hi int) {
	g.reindex()
	return g.serverPre[v], g.serverPre[v] + g.servers[v]
}

// Reindex eagerly builds the server-prefix index that Servers, RackOf,
// ServerBase and ServersOf otherwise build lazily on first use. The lazy
// build is a write, so a graph that is still dirty must not be shared
// across goroutines; calling Reindex before a parallel phase makes every
// subsequent lookup a pure read. Reindexing is semantically invisible —
// it never changes any query's answer.
func (g *Graph) Reindex() { g.reindex() }

func (g *Graph) reindex() {
	if !g.dirty && g.serverPre != nil {
		return
	}
	g.serverPre = make([]int, len(g.servers)+1) //lint:allow hotpath (lazy one-time index build; clean runs Reindex before the event loop)
	for i, s := range g.servers {
		g.serverPre[i+1] = g.serverPre[i] + s
	}
	g.dirty = false
}

// HasLink reports whether at least one link a-b exists.
func (g *Graph) HasLink(a, b int) bool {
	for _, x := range g.adj[a] {
		if x == b {
			return true
		}
	}
	return false
}

// LinkMultiplicity returns the number of parallel links between a and b.
func (g *Graph) LinkMultiplicity(a, b int) int {
	m := 0
	for _, x := range g.adj[a] {
		if x == b {
			m++
		}
	}
	return m
}

// Validate checks internal consistency: symmetric adjacency, port budgets,
// and non-negative server counts. It returns the first problem found.
func (g *Graph) Validate() error {
	counts := make(map[[2]int]int)
	total := 0
	for v, nb := range g.adj {
		for _, w := range nb {
			if w == v {
				return fmt.Errorf("topology %q: self-loop at %d", g.Name, v)
			}
			if w < 0 || w >= len(g.adj) {
				return fmt.Errorf("topology %q: switch %d links to out-of-range %d", g.Name, v, w)
			}
			k := [2]int{min(v, w), max(v, w)}
			counts[k]++
			total++
		}
	}
	if total != 2*g.links {
		return fmt.Errorf("topology %q: link count %d inconsistent with adjacency (%d endpoints)", g.Name, g.links, total)
	}
	for k, c := range counts {
		if c%2 != 0 {
			return fmt.Errorf("topology %q: asymmetric adjacency between %d and %d", g.Name, k[0], k[1])
		}
	}
	for v, s := range g.servers {
		if s < 0 {
			return fmt.Errorf("topology %q: negative server count at %d", g.Name, v)
		}
		if g.Ports > 0 && s+len(g.adj[v]) > g.Ports {
			return fmt.Errorf("topology %q: switch %d uses %d ports, radix is %d",
				g.Name, v, s+len(g.adj[v]), g.Ports)
		}
	}
	return nil
}

// Connected reports whether every switch can reach every other switch.
func (g *Graph) Connected() bool {
	n := len(g.adj)
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	visited := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.adj[v] {
			if !seen[w] {
				seen[w] = true
				visited++
				stack = append(stack, w)
			}
		}
	}
	return visited == n
}

// Clone returns a deep copy of the fabric.
func (g *Graph) Clone() *Graph {
	c := &Graph{Name: g.Name, Ports: g.Ports, links: g.links, dirty: true}
	c.servers = append([]int(nil), g.servers...)
	c.adj = make([][]int, len(g.adj))
	for i, nb := range g.adj {
		c.adj[i] = append([]int(nil), nb...)
	}
	return c
}

// Racks returns the switches that host at least one server, in id order.
// In a flat network this is every switch; in a leaf-spine it is the leaves.
func (g *Graph) Racks() []int {
	var r []int
	for v, s := range g.servers {
		if s > 0 {
			r = append(r, v)
		}
	}
	return r
}

// String summarizes the fabric.
func (g *Graph) String() string {
	return fmt.Sprintf("%s{switches=%d links=%d servers=%d ports=%d}",
		g.Name, g.N(), g.links, g.Servers(), g.Ports)
}

// ErrInfeasible reports that a generator could not satisfy its constraints.
var ErrInfeasible = errors.New("topology: infeasible construction")
