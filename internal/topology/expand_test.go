package topology

import (
	"errors"
	"testing"
)

func TestExpandDRingSeamLocality(t *testing.T) {
	old := Uniform(8, 2, 24)
	g2, newSpec, rep, err := ExpandDRing(old, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if newSpec.Supernodes() != 9 || g2.N() != 18 {
		t.Fatalf("expanded to %d supernodes, %d switches", newSpec.Supernodes(), g2.N())
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g2.Connected() {
		t.Fatal("expanded DRing disconnected")
	}
	if rep.LinksAdded == 0 {
		t.Fatal("expansion added no links")
	}
	// Seam locality: only ToRs in the four supernodes near the insertion
	// point (old supernodes 6, 7, 0, 1) can be touched — 8 ToRs max.
	if rep.TouchedSwitches > 8 {
		t.Fatalf("expansion touched %d pre-existing switches, want <= 8", rep.TouchedSwitches)
	}
}

func TestExpandDRingCostIndependentOfRingLength(t *testing.T) {
	_, _, small, err := ExpandDRing(Uniform(6, 2, 24), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	_, _, big, err := ExpandDRing(Uniform(16, 2, 24), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if big.LinksRemoved != small.LinksRemoved || big.TouchedSwitches != small.TouchedSwitches {
		t.Fatalf("seam cost grew with ring length: small %+v, big %+v", small, big)
	}
}

func TestExpandDRingSingleSupernodeKeepsChord(t *testing.T) {
	// Inserting exactly one supernode: the old (m-1, 0) adjacency becomes a
	// ring-distance-2 chord, so those links survive.
	old := Uniform(6, 1, 24)
	gOld, err := DRing(old)
	if err != nil {
		t.Fatal(err)
	}
	g2, _, _, err := ExpandDRing(old, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if !gOld.HasLink(5, 0) || !g2.HasLink(5, 0) {
		t.Fatal("seam chord 5-0 should survive a single-supernode insertion")
	}
	// But the old distance-2 chord (5, 1) is now distance 3 and must go.
	if g2.HasLink(5, 1) {
		t.Fatal("stale chord 5-1 survived")
	}
}

func TestExpandDRingRejectsBadInput(t *testing.T) {
	if _, _, _, err := ExpandDRing(Uniform(6, 2, 24), nil); !errors.Is(err, ErrInfeasible) {
		t.Fatal("empty expansion accepted")
	}
	if _, _, _, err := ExpandDRing(Uniform(6, 2, 24), []int{0}); !errors.Is(err, ErrInfeasible) {
		t.Fatal("zero-size supernode accepted")
	}
}

func TestExpandRRG(t *testing.T) {
	g, err := RegularRRG("rrg", 16, 6, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	g2, rep, err := ExpandRRG(g, 2, 6, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 18 {
		t.Fatalf("switches = %d", g2.N())
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each new switch: remove 3 links, add 6 (degree 6).
	if rep.LinksRemoved != 6 || rep.LinksAdded != 12 {
		t.Fatalf("rewiring = %+v, want 6 removed / 12 added", rep)
	}
	for v := 16; v < 18; v++ {
		if g2.NetworkDegree(v) != 6 {
			t.Fatalf("new switch %d degree %d", v, g2.NetworkDegree(v))
		}
	}
	// Old switches keep their degree (each removal strips one port from two
	// switches, each gets one new link to the newcomer).
	for v := 0; v < 16; v++ {
		if g2.NetworkDegree(v) != 6 {
			t.Fatalf("old switch %d degree changed to %d", v, g2.NetworkDegree(v))
		}
	}
	if _, _, err := ExpandRRG(g, 0, 6, testRNG()); !errors.Is(err, ErrInfeasible) {
		t.Fatal("zero expansion accepted")
	}
}

func TestDragonflyCanonical(t *testing.T) {
	spec := DragonflySpec{A: 4, H: 2, Groups: 9, Ports: 16} // full: 4*2+1 = 9 groups
	g, err := Dragonfly(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 36 {
		t.Fatalf("switches = %d, want 36", g.N())
	}
	if !g.Connected() {
		t.Fatal("dragonfly disconnected")
	}
	// Full canonical wiring: every router has degree (A-1) + H = 5, and
	// every group pair shares exactly one global link.
	for v := 0; v < g.N(); v++ {
		if g.NetworkDegree(v) != 5 {
			t.Fatalf("router %d degree %d, want 5", v, g.NetworkDegree(v))
		}
		if g.ServerCount(v) != 16-5 {
			t.Fatalf("router %d servers %d", v, g.ServerCount(v))
		}
	}
	globals := map[[2]int]int{}
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			gv, gw := v/spec.A, w/spec.A
			if gv < gw {
				globals[[2]int{gv, gw}]++
			}
		}
	}
	if len(globals) != 9*8/2 {
		t.Fatalf("group pairs with links = %d, want 36", len(globals))
	}
	for pair, c := range globals {
		if c != 1 {
			t.Fatalf("group pair %v has %d global links, want 1", pair, c)
		}
	}
	// Dragonfly diameter is at most 3 (local, global, local).
	st, err := RackPathStats(g)
	if err != nil {
		t.Fatal(err)
	}
	if st.Diameter > 3 {
		t.Fatalf("diameter = %d, want <= 3", st.Diameter)
	}
}

func TestDragonflyTruncated(t *testing.T) {
	g, err := Dragonfly(DragonflySpec{A: 4, H: 2, Groups: 5, Ports: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("truncated dragonfly disconnected")
	}
	// Ports to missing groups become server ports: server counts vary but
	// are always >= radix - (A-1) - H.
	for v := 0; v < g.N(); v++ {
		if g.ServerCount(v) < 16-5 {
			t.Fatalf("router %d servers %d < 11", v, g.ServerCount(v))
		}
	}
}

func TestDragonflyRejectsBadSpec(t *testing.T) {
	bad := []DragonflySpec{
		{A: 1, H: 1, Groups: 2, Ports: 8},
		{A: 4, H: 2, Groups: 1, Ports: 16},
		{A: 4, H: 2, Groups: 10, Ports: 16}, // > a*h+1
		{A: 4, H: 2, Groups: 5, Ports: 5},   // no server ports
	}
	for _, spec := range bad {
		if _, err := Dragonfly(spec); !errors.Is(err, ErrInfeasible) {
			t.Fatalf("spec %+v accepted", spec)
		}
	}
}
