package topology

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g, err := LeafSpine(LeafSpineSpec{X: 2, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteDOT(&b, g); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "graph ") || !strings.HasSuffix(out, "}\n") {
		t.Fatalf("not a DOT graph:\n%s", out)
	}
	if strings.Count(out, " -- ") != g.Links() {
		t.Fatalf("edges = %d, want %d", strings.Count(out, " -- "), g.Links())
	}
	// Leaves show server labels; spines show the serverless tint.
	if !strings.Contains(out, "2 srv") {
		t.Fatal("missing server label")
	}
	if !strings.Contains(out, "#fbeeee") {
		t.Fatal("missing spine tint")
	}
}

func TestSanitizeDOT(t *testing.T) {
	if got := sanitizeDOT("a\"b\\c\nd"); got != "a_b_c_d" {
		t.Fatalf("sanitize = %q", got)
	}
}
