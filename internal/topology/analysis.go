package topology

import (
	"fmt"
	"math"
	"math/rand"
)

// NSRStats reports the Network-Server Ratio across the racks of a fabric.
// NSR (§3.1) is the ratio of network ports to server ports at a ToR that
// hosts servers; it measures outgoing network capacity per server in a rack.
type NSRStats struct {
	Mean, Min, Max float64
	Racks          int
}

// NSR computes Network-Server Ratio statistics over all server-hosting
// switches. Switches without servers (e.g. spines) do not contribute.
func NSR(g *Graph) (NSRStats, error) {
	st := NSRStats{Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for v := 0; v < g.N(); v++ {
		s := g.ServerCount(v)
		if s == 0 {
			continue
		}
		r := float64(g.NetworkDegree(v)) / float64(s)
		sum += r
		st.Min = math.Min(st.Min, r)
		st.Max = math.Max(st.Max, r)
		st.Racks++
	}
	if st.Racks == 0 {
		return NSRStats{}, fmt.Errorf("topology %q: no racks host servers", g.Name)
	}
	st.Mean = sum / float64(st.Racks)
	return st, nil
}

// UDF computes the Uplink-to-Downlink Factor of a baseline topology against
// its flat rewiring: UDF(T) = NSR(F(T)) / NSR(T) (§3.1). It is the expected
// best-case throughput gain of the flat network when traffic bottlenecks at
// the ToRs.
func UDF(baseline, flat *Graph) (float64, error) {
	b, err := NSR(baseline)
	if err != nil {
		return 0, err
	}
	f, err := NSR(flat)
	if err != nil {
		return 0, err
	}
	return f.Mean / b.Mean, nil
}

// UDFLeafSpineAnalytic returns the closed-form UDF of leaf-spine(x,y).
// From §3.1: NSR(T) = y/x and NSR(F(T)) = 2y/x, hence UDF = 2 regardless of
// x and y. The function exists so tests can pin the algebra:
//
//	NSR(F(T)) = ((x+y) − x(x+y)/(x+2y)) / (x(x+y)/(x+2y)) = 2y/x.
func UDFLeafSpineAnalytic(spec LeafSpineSpec) (nsrBase, nsrFlat, udf float64) {
	x, y := float64(spec.X), float64(spec.Y)
	nsrBase = y / x
	serversPerSwitch := x * (x + y) / (x + 2*y)
	nsrFlat = ((x + y) - serversPerSwitch) / serversPerSwitch
	return nsrBase, nsrFlat, nsrFlat / nsrBase
}

// BFS computes hop distances from src to every switch. Unreachable switches
// get distance -1.
func BFS(g *Graph, src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// AllPairsDistances returns the hop-distance matrix between all switches.
func AllPairsDistances(g *Graph) [][]int {
	d := make([][]int, g.N())
	for v := range d {
		d[v] = BFS(g, v)
	}
	return d
}

// PathStats summarizes shortest-path structure between racks.
type PathStats struct {
	Diameter int       // max rack-to-rack hop distance
	Mean     float64   // mean rack-to-rack hop distance
	Hist     []float64 // Hist[L] = fraction of rack pairs at distance L
}

// RackPathStats computes shortest-path statistics between all ordered pairs
// of distinct server-hosting switches.
func RackPathStats(g *Graph) (PathStats, error) {
	racks := g.Racks()
	if len(racks) < 2 {
		return PathStats{}, fmt.Errorf("topology %q: fewer than two racks", g.Name)
	}
	var st PathStats
	var counts []int
	sum, pairs := 0, 0
	for _, r := range racks {
		dist := BFS(g, r)
		for _, q := range racks {
			if q == r {
				continue
			}
			d := dist[q]
			if d < 0 {
				return PathStats{}, fmt.Errorf("topology %q: rack %d unreachable from %d", g.Name, q, r)
			}
			for len(counts) <= d {
				counts = append(counts, 0)
			}
			counts[d]++
			sum += d
			pairs++
			if d > st.Diameter {
				st.Diameter = d
			}
		}
	}
	st.Mean = float64(sum) / float64(pairs)
	st.Hist = make([]float64, len(counts))
	for i, c := range counts {
		st.Hist[i] = float64(c) / float64(pairs)
	}
	return st, nil
}

// BisectionEstimate estimates the bisection bandwidth (in links) of the
// fabric by sampling random balanced switch bisections and refining each
// with Kernighan–Lin passes, keeping the minimum cut observed. It is an
// upper bound on the true bisection width; trials controls sampling effort.
//
// For the DRing the estimate recovers the analytically small ring cut
// (Θ(n²) links for supernode width n, independent of ring length m), which
// is the paper's argument for why DRing degrades at scale (§6.3).
func BisectionEstimate(g *Graph, trials int, rng *rand.Rand) int {
	n := g.N()
	if n < 2 {
		return 0
	}
	best := math.MaxInt
	perm := make([]int, n)
	side := make([]bool, n)
	for t := 0; t < trials; t++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for i, v := range perm {
			side[v] = i < n/2
		}
		cut := kernighanLin(g, side)
		if cut < best {
			best = cut
		}
	}
	return best
}

// kernighanLin refines a balanced bisection in place with classic KL
// passes (swap the best pair under the gain function, lock, take the best
// prefix of the swap sequence) until a pass yields no improvement. Returns
// the final cut size.
func kernighanLin(g *Graph, side []bool) int {
	n := g.N()
	cut := cutSize(g, side)
	for {
		// D[v] = external degree − internal degree under the current side.
		d := make([]int, n)
		for v := 0; v < n; v++ {
			for _, w := range g.Neighbors(v) {
				if side[v] != side[w] {
					d[v]++
				} else {
					d[v]--
				}
			}
		}
		locked := make([]bool, n)
		type swap struct{ a, b, gain int }
		var seq []swap
		cum, bestCum, bestK := 0, 0, -1
		for step := 0; step < n/2; step++ {
			bestGain := math.MinInt
			ba, bb := -1, -1
			for a := 0; a < n; a++ {
				if locked[a] || !side[a] {
					continue
				}
				for b := 0; b < n; b++ {
					if locked[b] || side[b] {
						continue
					}
					gain := d[a] + d[b] - 2*g.LinkMultiplicity(a, b)
					if gain > bestGain {
						bestGain, ba, bb = gain, a, b
					}
				}
			}
			if ba < 0 {
				break
			}
			locked[ba], locked[bb] = true, true
			seq = append(seq, swap{ba, bb, bestGain})
			cum += bestGain
			if cum > bestCum {
				bestCum, bestK = cum, len(seq)
			}
			// Update D for unlocked vertices as if the swap were applied.
			for _, pair := range []struct {
				moved int
				from  bool
			}{{ba, true}, {bb, false}} {
				for _, w := range g.Neighbors(pair.moved) {
					if locked[w] {
						continue
					}
					if side[w] == pair.from {
						d[w] += 2
					} else {
						d[w] -= 2
					}
				}
			}
		}
		if bestK <= 0 || bestCum <= 0 {
			return cut
		}
		for i := 0; i < bestK; i++ {
			side[seq[i].a], side[seq[i].b] = side[seq[i].b], side[seq[i].a]
		}
		cut -= bestCum
	}
}

func cutSize(g *Graph, side []bool) int {
	cut := 0
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if v < w && side[v] != side[w] {
				cut++
			}
		}
	}
	return cut
}
