package topology

import (
	"fmt"
	"math"
	"sort"
)

// The paper motivates the DRing partly by deployment concerns: wiring and
// lifecycle complexity "has been a road block for adoption of large-scale
// expander DCs" (§1, citing Zhang et al. [31]). This file makes that
// tradeoff measurable: switches are laid out in a physical rack row and
// each network link is costed by the distance it must span and by whether
// it can share a cable bundle with parallel-running links.

// Placement assigns each switch a physical rack position (rack index in a
// row, unit spacing). For leaf-spines, spines conventionally sit in the
// middle of the row; flat fabrics place one ToR per rack in id order.
type Placement struct {
	Pos []int // Pos[switch] = rack position
}

// RowPlacement places switch i at position i — the natural layout for flat
// fabrics, and a pessimistic-but-fair one for leaf-spines.
func RowPlacement(g *Graph) Placement {
	pos := make([]int, g.N())
	for i := range pos {
		pos[i] = i
	}
	return Placement{Pos: pos}
}

// LeafSpinePlacement puts the y spines in the middle of the leaf row,
// mirroring standard end-of-row/middle-of-row builds.
func LeafSpinePlacement(spec LeafSpineSpec) Placement {
	n := spec.Switches()
	pos := make([]int, n)
	leaves := spec.Leaves()
	mid := leaves / 2
	// Leaves occupy positions 0..mid-1 and mid+y..n-1; spines sit in the gap.
	for l := 0; l < leaves; l++ {
		if l < mid {
			pos[l] = l
		} else {
			pos[l] = l + spec.Y
		}
	}
	for s := 0; s < spec.Y; s++ {
		pos[leaves+s] = mid + s
	}
	return Placement{Pos: pos}
}

// CablingReport summarizes the physical wiring of a fabric under a
// placement.
type CablingReport struct {
	Links int
	// TotalLength and MeanLength are in rack units (adjacent racks = 1).
	TotalLength float64
	MeanLength  float64
	MaxLength   int
	// LongHaul counts links spanning more than `longThreshold` racks —
	// the ones that need structured cabling trays.
	LongHaul int
	// Bundles counts distinct (ordered) rack-position pairs carrying at
	// least one link: links between the same two racks share a bundle, so
	// fewer bundles means simpler cabling even at equal link counts.
	Bundles int
	// MaxBundle is the largest number of links sharing one bundle.
	MaxBundle int
}

const longThreshold = 8

// Cabling costs every network link of g under placement p.
func Cabling(g *Graph, p Placement) (CablingReport, error) {
	if len(p.Pos) != g.N() {
		return CablingReport{}, fmt.Errorf("topology: placement covers %d switches, fabric has %d", len(p.Pos), g.N())
	}
	var rep CablingReport
	bundle := map[[2]int]int{}
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if v > w {
				continue
			}
			d := p.Pos[v] - p.Pos[w]
			if d < 0 {
				d = -d
			}
			rep.Links++
			rep.TotalLength += float64(d)
			if d > rep.MaxLength {
				rep.MaxLength = d
			}
			if d > longThreshold {
				rep.LongHaul++
			}
			key := [2]int{min(p.Pos[v], p.Pos[w]), max(p.Pos[v], p.Pos[w])}
			bundle[key]++
		}
	}
	if rep.Links > 0 {
		rep.MeanLength = rep.TotalLength / float64(rep.Links)
	}
	rep.Bundles = len(bundle)
	for _, c := range bundle {
		if c > rep.MaxBundle {
			rep.MaxBundle = c
		}
	}
	return rep, nil
}

// LifecycleReport scores a fabric on the §7/[31] management axes that do
// not depend on physical layout.
type LifecycleReport struct {
	// SwitchRoles counts distinct structural roles (degree, server-count)
	// classes. A flat network has one; a leaf-spine has two. Fewer roles
	// means uniform configs and interchangeable spares.
	SwitchRoles int
	// DegreeSpread is max minus min network degree across switches.
	DegreeSpread int
	// ExpansionUnit is the number of pre-existing switches whose cabling a
	// minimal expansion touches (math.MaxInt means unbounded/global).
	ExpansionUnit int
}

// Lifecycle computes role uniformity for any fabric; the expansion unit is
// filled in by topology-specific callers (see LifecycleDRing, etc.).
func Lifecycle(g *Graph) LifecycleReport {
	type role struct{ deg, servers int }
	roles := map[role]bool{}
	minD, maxD := math.MaxInt, 0
	for v := 0; v < g.N(); v++ {
		d := g.NetworkDegree(v)
		roles[role{d, g.ServerCount(v)}] = true
		minD, maxD = min(minD, d), max(maxD, d)
	}
	return LifecycleReport{
		SwitchRoles:   len(roles),
		DegreeSpread:  maxD - minD,
		ExpansionUnit: math.MaxInt,
	}
}

// LifecycleDRing annotates a DRing's lifecycle report with its measured
// seam-local expansion cost (switches touched when one supernode is added).
func LifecycleDRing(spec DRingSpec) (LifecycleReport, error) {
	g, err := DRing(spec)
	if err != nil {
		return LifecycleReport{}, err
	}
	rep := Lifecycle(g)
	_, _, exp, err := ExpandDRing(spec, []int{spec.Sizes[0]})
	if err != nil {
		return LifecycleReport{}, err
	}
	rep.ExpansionUnit = exp.TouchedSwitches
	return rep, nil
}

// CablingTableRow is a convenience for printing comparisons.
func (r CablingReport) String() string {
	return fmt.Sprintf("links=%d mean=%.2f max=%d longhaul=%d bundles=%d maxbundle=%d",
		r.Links, r.MeanLength, r.MaxLength, r.LongHaul, r.Bundles, r.MaxBundle)
}

// GroupedBundles evaluates trunk cabling: row positions are divided into
// groups of groupSize racks, and all links between the same two groups are
// assumed to share one trunk. It returns the trunk count and the largest
// trunk. Structured fabrics (DRing with groupSize = supernode width) need
// few fat trunks; random wiring needs many thin ones — the §1 wiring
// complexity difference, quantified.
func GroupedBundles(g *Graph, p Placement, groupSize int) (bundles, maxBundle int, err error) {
	if len(p.Pos) != g.N() {
		return 0, 0, fmt.Errorf("topology: placement covers %d switches, fabric has %d", len(p.Pos), g.N())
	}
	if groupSize < 1 {
		return 0, 0, fmt.Errorf("topology: group size %d < 1", groupSize)
	}
	trunk := map[[2]int]int{}
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if v > w {
				continue
			}
			a, b := p.Pos[v]/groupSize, p.Pos[w]/groupSize
			if a == b {
				continue // intra-group wiring is rack-local patching
			}
			trunk[[2]int{min(a, b), max(a, b)}]++
		}
	}
	for _, c := range trunk {
		if c > maxBundle {
			maxBundle = c
		}
	}
	return len(trunk), maxBundle, nil
}

// SortedBundleSizes returns the bundle-size distribution under a placement,
// largest first (diagnostic for cable-tray planning).
func SortedBundleSizes(g *Graph, p Placement) []int {
	bundle := map[[2]int]int{}
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if v > w {
				continue
			}
			key := [2]int{min(p.Pos[v], p.Pos[w]), max(p.Pos[v], p.Pos[w])}
			bundle[key]++
		}
	}
	out := make([]int, 0, len(bundle))
	for _, c := range bundle {
		out = append(out, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
